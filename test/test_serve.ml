(* Tests for the multi-tenant serving layer: admission control,
   priorities, deadlines, the circuit breaker, graceful degradation
   under permanent device loss, the engine's preempt/resume handoff,
   and the headline robustness property — every completed job's
   functional output is bit-identical to running it alone on the full
   machine, under any schedule. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest t = QCheck_alcotest.to_alcotest t

let compile_exn prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)

let fleet ?mem_capacity n = Gpusim.Config.test_box ~n_devices:n ?mem_capacity ()

let outcome_of (r : Serve.Scheduler.report) name =
  match
    List.find_opt (fun (j : Serve.Job.report) -> j.Serve.Job.r_name = name)
      r.Serve.Scheduler.r_jobs
  with
  | Some j -> j.Serve.Job.r_outcome
  | None -> Alcotest.failf "no job named %s in report" name

let count_outcome (r : Serve.Scheduler.report) pred =
  List.length
    (List.filter (fun (j : Serve.Job.report) -> pred j.Serve.Job.r_outcome)
       r.Serve.Scheduler.r_jobs)

let is_completed = function Serve.Job.Completed _ -> true | _ -> false
let is_rejected = function Serve.Job.Rejected _ -> true | _ -> false

(* ---------------- Satellite: domain-count validation ---------------- *)

let test_dpool_rejects_nonpositive () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "create ~domains:0 rejected" true
    (raises (fun () -> Gpu_runtime.Dpool.create ~domains:0 ()));
  checkb "create ~domains:-2 rejected" true
    (raises (fun () -> Gpu_runtime.Dpool.create ~domains:(-2) ()));
  checkb "set_default_domains 0 rejected" true
    (raises (fun () -> Gpu_runtime.Dpool.set_default_domains 0));
  (* Positive values still work. *)
  let p = Gpu_runtime.Dpool.create ~domains:1 () in
  Gpu_runtime.Dpool.shutdown p

(* ---------------- Satellite: typed total-loss failure ---------------- *)

let test_all_devices_lost_typed () =
  let prog, _, _ = Apps.Workloads.functional_vecadd ~n:256 in
  let exe = compile_exn prog in
  let m = Gpusim.Machine.create ~functional:true (fleet 2) in
  let spec =
    { Gpusim.Faults.null_spec with scheduled_losses = [ (0, 0.0); (1, 0.0) ] }
  in
  Gpusim.Machine.inject_faults m (Gpusim.Faults.create spec);
  checkb "raises All_devices_lost" true
    (match Mekong.Multi_gpu.run ~machine:m exe with
     | exception Mekong.Multi_gpu.All_devices_lost -> true
     | _ -> false)

(* ---------------- Config.lease ---------------- *)

let test_config_lease () =
  let box = fleet 8 in
  let l = Gpusim.Config.lease box ~n_devices:3 in
  checki "lease size" 3 l.Gpusim.Config.n_devices;
  checkb "lease name tagged" true
    (l.Gpusim.Config.name <> box.Gpusim.Config.name);
  let raises n =
    match Gpusim.Config.lease box ~n_devices:n with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "lease 0 rejected" true (raises 0);
  checkb "lease 9 rejected" true (raises 9)

(* ---------------- Engine preempt / resume ---------------- *)

let test_preempt_resume_bit_identical () =
  let prog, out, cpu = Apps.Workloads.functional_hotspot ~n:32 ~iterations:3 in
  let exe = compile_exn prog in
  (* Force at least one preemption by aborting very early, then resume
     on machines of varying device count until done. *)
  let handoff = ref None in
  let preempts = ref 0 in
  let devices = [| 4; 2; 3; 1; 2; 4; 1; 3 |] in
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    if !step >= 64 then Alcotest.fail "resume chain did not terminate";
    let g = devices.(!step mod Array.length devices) in
    let m = Gpusim.Machine.create ~functional:true (fleet g) in
    (match
       Mekong.Multi_gpu.run_bounded ~checkpoint_every:2 ~abort_at:2e-4
         ?resume:!handoff ~machine:m exe
     with
     | Mekong.Multi_gpu.Done _ -> finished := true
     | Mekong.Multi_gpu.Preempted (_, h) ->
       incr preempts;
       handoff := Some h);
    incr step
  done;
  checkb "at least one preemption" true (!preempts > 0);
  checkb "resumed output = CPU reference" true (out = cpu ())

let test_run_without_abort_never_preempts () =
  let prog, out, cpu = Apps.Workloads.functional_vecadd ~n:512 in
  let exe = compile_exn prog in
  let m = Gpusim.Machine.create ~functional:true (fleet 3) in
  (match Mekong.Multi_gpu.run_bounded ~machine:m exe with
   | Mekong.Multi_gpu.Done _ -> ()
   | Mekong.Multi_gpu.Preempted _ -> Alcotest.fail "preempted without abort_at");
  checkb "output = CPU" true (out = cpu ())

(* ---------------- Scheduler: happy path ---------------- *)

let test_mix_all_complete_bit_identical () =
  let built = Serve.Mix.generate ~seed:7 ~tenants:3 ~jobs:12 () in
  let cfg = Serve.Scheduler.config (fleet 4) in
  let r =
    Serve.Scheduler.run cfg
      (List.map (fun b -> b.Serve.Mix.b_spec) built)
  in
  checki "all completed" 12 (count_outcome r is_completed);
  (* Bit-identity: each job's output array equals a fresh solo run of
     the identical instance on the full machine. *)
  List.iter
    (fun (b : Serve.Mix.built) ->
       let exe', out' = b.Serve.Mix.b_solo () in
       let m = Gpusim.Machine.create ~functional:true (fleet 4) in
       ignore (Mekong.Multi_gpu.run ~machine:m exe');
       checkb (b.Serve.Mix.b_spec.Serve.Job.name ^ " bit-identical") true
         (b.Serve.Mix.b_output = out'))
    built;
  checkb "every job has a segment or rejection" true
    (List.length r.Serve.Scheduler.r_segments >= 12)

let test_queue_overflow_typed_rejection () =
  (* One device, tiny queue, many simultaneous arrivals: overflow must
     be a typed rejection, never a silent drop. *)
  let built = Serve.Mix.generate ~seed:3 ~jobs:10 ~mean_gap:0.0 () in
  let specs =
    List.map
      (fun b -> { b.Serve.Mix.b_spec with Serve.Job.devices = 1 })
      built
  in
  let cfg = Serve.Scheduler.config ~max_queue:2 (fleet 1) in
  let r = Serve.Scheduler.run cfg specs in
  let rejected = count_outcome r is_rejected in
  checkb "some overflow rejections" true (rejected > 0);
  List.iter
    (fun (j : Serve.Job.report) ->
       match j.Serve.Job.r_outcome with
       | Serve.Job.Rejected { reason = Serve.Job.Queue_full n; _ } ->
         checki "reason carries the bound" 2 n
       | _ -> ())
    r.Serve.Scheduler.r_jobs;
  checki "submitted = completed + rejected" 10
    (count_outcome r is_completed + rejected)

let test_priority_orders_dispatch () =
  let prog_lo, _, _ = Apps.Workloads.functional_vecadd ~n:1024 in
  let prog_hi, _, _ = Apps.Workloads.functional_vecadd ~n:1024 in
  let blocker, _, _ = Apps.Workloads.functional_matmul ~n:32 in
  (* The blocker occupies the single device; lo and hi then sit in the
     queue together, and hi (submitted later, higher priority) must
     start first. *)
  let specs =
    [
      Serve.Job.make ~name:"blocker" ~tenant:"a" ~arrival:0.0 blocker;
      Serve.Job.make ~name:"lo" ~tenant:"a" ~priority:0 ~arrival:1e-6 prog_lo;
      Serve.Job.make ~name:"hi" ~tenant:"b" ~priority:5 ~arrival:2e-6 prog_hi;
    ]
  in
  let r = Serve.Scheduler.run (Serve.Scheduler.config (fleet 1)) specs in
  let started n =
    match outcome_of r n with
    | Serve.Job.Completed { started; _ } -> started
    | o -> Alcotest.failf "%s not completed: %s" n (Serve.Job.outcome_name o)
  in
  checkb "high priority starts before low" true (started "hi" < started "lo")

(* ---------------- Deadlines ---------------- *)

let test_deadline_times_out () =
  let prog, _, _ = Apps.Workloads.functional_matmul ~n:32 in
  let quick, _, _ = Apps.Workloads.functional_vecadd ~n:256 in
  let specs =
    [
      Serve.Job.make ~name:"tight" ~tenant:"a" ~deadline:1e-6 prog;
      Serve.Job.make ~name:"ok" ~tenant:"a" ~arrival:1e-6 quick;
    ]
  in
  let r = Serve.Scheduler.run (Serve.Scheduler.config (fleet 2)) specs in
  checkb "tight deadline times out" true
    (match outcome_of r "tight" with Serve.Job.Timed_out _ -> true | _ -> false);
  checkb "other job unaffected" true (is_completed (outcome_of r "ok"))

let test_expired_in_queue_times_out () =
  let blocker, _, _ = Apps.Workloads.functional_matmul ~n:32 in
  let prog, _, _ = Apps.Workloads.functional_vecadd ~n:256 in
  let specs =
    [
      Serve.Job.make ~name:"blocker" ~tenant:"a" blocker;
      Serve.Job.make ~name:"starved" ~tenant:"b" ~arrival:1e-6 ~deadline:2e-6
        prog;
    ]
  in
  let r = Serve.Scheduler.run (Serve.Scheduler.config (fleet 1)) specs in
  match outcome_of r "starved" with
  | Serve.Job.Timed_out { started; _ } ->
    checkb "never dispatched" true (started = None)
  | o -> Alcotest.failf "starved: %s" (Serve.Job.outcome_name o)

(* A short-deadline job must not miss its deadline sitting behind an
   earlier-arrived long job with no deadline: the queue orders
   deadline-carrying jobs first, by latest feasible start time
   (arrival + deadline - predicted runtime).  Before the EDF key this
   scenario timed out "urgent" — FIFO dispatched "cheap" first. *)
let test_edf_short_deadline_not_starved () =
  (* The long job must dominate the short one well past the fixed
     memcpy/launch latencies, so an iterated stencil vs. a small
     vecadd (~4x on the test box). *)
  let mk_long () =
    let p, _, _ = Apps.Workloads.functional_hotspot ~n:64 ~iterations:20 in
    p
  in
  let long = mk_long () in
  let short, _, _ = Apps.Workloads.functional_vecadd ~n:256 in
  let solo prog =
    let exe = compile_exn prog in
    let m = Gpusim.Machine.create ~functional:true (fleet 1) in
    (Mekong.Multi_gpu.run ~machine:m exe).Mekong.Multi_gpu.time
  in
  let t_long = solo long and t_short = solo short in
  (* The static estimate must at least order these two correctly —
     that ordering is all the EDF key consumes. *)
  checkb "predicted_runtime orders long above short" true
    (Serve.Scheduler.predicted_runtime (fleet 1) (Serve.Job.make ~name:"l" ~tenant:"a" long)
     > Serve.Scheduler.predicted_runtime (fleet 1)
         (Serve.Job.make ~name:"s" ~tenant:"a" short));
  (* Enough slack to run right after the blocker, not enough to also
     wait for the cheap long job.  Arrivals are small fractions of the
     blocker's runtime so both queue while it occupies the device. *)
  let deadline = t_long +. (4.0 *. t_short) in
  checkb "scenario sound: urgent misses if dispatched after cheap" true
    (t_long +. t_long +. t_short > deadline);
  let specs =
    [
      Serve.Job.make ~name:"blocker" ~tenant:"a" ~arrival:0.0 long;
      Serve.Job.make ~name:"cheap" ~tenant:"a" ~arrival:(t_long /. 100.0)
        (mk_long ());
      Serve.Job.make ~name:"urgent" ~tenant:"b" ~arrival:(t_long /. 50.0)
        ~deadline short;
    ]
  in
  let r = Serve.Scheduler.run (Serve.Scheduler.config (fleet 1)) specs in
  let started n =
    match outcome_of r n with
    | Serve.Job.Completed { started; _ } -> started
    | o -> Alcotest.failf "%s not completed: %s" n (Serve.Job.outcome_name o)
  in
  checkb "urgent meets its deadline" true (is_completed (outcome_of r "urgent"));
  checkb "urgent dispatched before the earlier-arrived cheap job" true
    (started "urgent" < started "cheap");
  checkb "cheap still completes" true (is_completed (outcome_of r "cheap"))

(* ---------------- Circuit breaker ---------------- *)

let test_poison_quarantined () =
  let built = Serve.Mix.generate ~seed:5 ~jobs:6 ~poison:2 () in
  let cfg = Serve.Scheduler.config ~max_strikes:3 (fleet 2) in
  let r =
    Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
  in
  List.iter
    (fun (b : Serve.Mix.built) ->
       let name = b.Serve.Mix.b_spec.Serve.Job.name in
       match (b.Serve.Mix.b_poison, outcome_of r name) with
       | true, Serve.Job.Quarantined { strikes; _ } ->
         checki (name ^ " struck out") 3 strikes
       | true, o ->
         Alcotest.failf "%s should be quarantined, got %s" name
           (Serve.Job.outcome_name o)
       | false, Serve.Job.Completed _ -> ()
       | false, o ->
         Alcotest.failf "%s should complete, got %s" name
           (Serve.Job.outcome_name o))
    built

(* ---------------- Graceful degradation ---------------- *)

let run_with_losses ~fleet_n ~losses ~jobs ~seed =
  let built = Serve.Mix.generate ~seed ~tenants:3 ~jobs () in
  let cfg = Serve.Scheduler.config ~losses (fleet fleet_n) in
  let r =
    Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
  in
  (built, r)

let test_loss_degrades_gracefully () =
  (* Kill half the fleet almost immediately: in-flight jobs preempt and
     requeue; everything still completes bit-identically. *)
  let losses = [ (3, 5e-5); (2, 8e-5) ] in
  let built, r = run_with_losses ~fleet_n:4 ~losses ~jobs:14 ~seed:11 in
  checki "both losses applied" 2 r.Serve.Scheduler.r_devices_lost;
  checki "all jobs completed" 14 (count_outcome r is_completed);
  (* No segment may occupy a device after its death. *)
  List.iter
    (fun (s : Serve.Scheduler.segment) ->
       List.iter
         (fun d ->
            match List.assoc_opt d losses with
            | Some t ->
              checkb "no lease outlives the device" true
                (s.Serve.Scheduler.sg_start <= t)
            | None -> ())
         s.Serve.Scheduler.sg_devices)
    r.Serve.Scheduler.r_segments;
  List.iter
    (fun (b : Serve.Mix.built) ->
       let exe', out' = b.Serve.Mix.b_solo () in
       let m = Gpusim.Machine.create ~functional:true (fleet 4) in
       ignore (Mekong.Multi_gpu.run ~machine:m exe');
       checkb (b.Serve.Mix.b_spec.Serve.Job.name ^ " bit-identical") true
         (b.Serve.Mix.b_output = out'))
    built

let test_fleet_lost_rejects_rest () =
  let losses = [ (0, 1e-4); (1, 1e-4) ] in
  let built = Serve.Mix.generate ~seed:2 ~jobs:30 () in
  let cfg = Serve.Scheduler.config ~losses (fleet 2) in
  let r =
    Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
  in
  checki "fleet gone" 2 r.Serve.Scheduler.r_devices_lost;
  (* Everything is terminal and anything not completed was rejected
     with the typed Fleet_lost reason (arrivals after the loss) or
     completed before it. *)
  let fleet_lost =
    count_outcome r (function
      | Serve.Job.Rejected { reason = Serve.Job.Fleet_lost; _ } -> true
      | _ -> false)
  in
  checkb "late arrivals rejected as Fleet_lost" true (fleet_lost > 0);
  checki "all terminal" 30
    (count_outcome r (fun _ -> true))

(* ---------------- Observability ---------------- *)

let test_metrics_published () =
  let _, r = run_with_losses ~fleet_n:2 ~losses:[ (1, 1e-4) ] ~jobs:8 ~seed:4 in
  let reg = Obs.Metrics.create () in
  Serve.Scheduler.publish_metrics ~into:reg r;
  let gauge name =
    match Obs.Metrics.find reg name with
    | Some s -> Obs.Metrics.value s
    | None -> Alcotest.failf "missing metric %s" name
  in
  checkb "submitted gauge" true (gauge "serve.jobs.submitted" = 8.0);
  checkb "devices_lost gauge" true (gauge "serve.devices_lost" = 1.0);
  let tenant_rows =
    List.filter
      (fun (s : Obs.Metrics.sample) ->
         s.Obs.Metrics.m_name = "serve.tenant.submitted")
      (Obs.Metrics.snapshot reg)
  in
  checkb "per-tenant labelled gauges" true (List.length tenant_rows >= 1)

let test_trace_validates () =
  let _, r = run_with_losses ~fleet_n:3 ~losses:[ (2, 6e-5) ] ~jobs:9 ~seed:9 in
  match Obs.Chrome_trace.validate (Serve.Strace.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "scheduler trace invalid: %s" e

let test_report_json_shape () =
  let _, r = run_with_losses ~fleet_n:2 ~losses:[] ~jobs:5 ~seed:13 in
  match Serve.Scheduler.report_to_json r with
  | Obs.Json.Obj fields ->
    List.iter
      (fun k ->
         checkb ("field " ^ k) true (List.mem_assoc k fields))
      [ "fleet"; "submitted"; "completed"; "tenants"; "jobs";
        "makespan_seconds"; "utilization" ]
  | _ -> Alcotest.fail "report_to_json: expected an object"

(* ---------------- The headline property ---------------- *)

(* Any job mix, any fleet, any loss schedule: every job that completes
   is bit-identical to a solo run of the identical instance on the
   full healthy machine. *)
let prop_serving_bit_identical =
  QCheck.Test.make ~name:"serve: completed jobs bit-identical to solo runs"
    ~count:12
    QCheck.(
      quad (int_range 2 4) (int_range 1 8) (int_bound 1000) (int_bound 2))
    (fun (fleet_n, jobs, seed, n_losses) ->
      let losses =
        List.init (min n_losses (fleet_n - 1)) (fun i ->
            (i, 2e-5 +. (float_of_int (seed mod 7) *. 1e-5)))
      in
      let built = Serve.Mix.generate ~seed ~tenants:2 ~jobs () in
      let cfg = Serve.Scheduler.config ~losses (fleet fleet_n) in
      let r =
        Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
      in
      (* Terminality: every job has exactly one outcome. *)
      List.length r.Serve.Scheduler.r_jobs = jobs
      && List.for_all
           (fun (b : Serve.Mix.built) ->
              match outcome_of r b.Serve.Mix.b_spec.Serve.Job.name with
              | Serve.Job.Completed _ ->
                let exe', out' = b.Serve.Mix.b_solo () in
                let m =
                  Gpusim.Machine.create ~functional:true (fleet fleet_n)
                in
                ignore (Mekong.Multi_gpu.run ~machine:m exe');
                b.Serve.Mix.b_output = out'
              | _ -> true)
           built)

let () =
  Alcotest.run "serve"
    [
      ( "satellites",
        [
          Alcotest.test_case "dpool rejects non-positive domains" `Quick
            test_dpool_rejects_nonpositive;
          Alcotest.test_case "All_devices_lost is typed" `Quick
            test_all_devices_lost_typed;
          Alcotest.test_case "Config.lease" `Quick test_config_lease;
        ] );
      ( "engine",
        [
          Alcotest.test_case "preempt/resume bit-identical" `Quick
            test_preempt_resume_bit_identical;
          Alcotest.test_case "run_bounded without abort never preempts" `Quick
            test_run_without_abort_never_preempts;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "mix completes bit-identically" `Quick
            test_mix_all_complete_bit_identical;
          Alcotest.test_case "queue overflow is a typed rejection" `Quick
            test_queue_overflow_typed_rejection;
          Alcotest.test_case "priority orders dispatch" `Quick
            test_priority_orders_dispatch;
          Alcotest.test_case "running job times out at deadline" `Quick
            test_deadline_times_out;
          Alcotest.test_case "queued job times out at deadline" `Quick
            test_expired_in_queue_times_out;
          Alcotest.test_case "EDF: short deadline not starved by FIFO" `Quick
            test_edf_short_deadline_not_starved;
          Alcotest.test_case "poison jobs quarantined" `Quick
            test_poison_quarantined;
          Alcotest.test_case "device loss degrades gracefully" `Quick
            test_loss_degrades_gracefully;
          Alcotest.test_case "total fleet loss rejects the rest" `Quick
            test_fleet_lost_rejects_rest;
        ] );
      ( "observability",
        [
          Alcotest.test_case "serve.* metrics published" `Quick
            test_metrics_published;
          Alcotest.test_case "scheduler trace validates" `Quick
            test_trace_validates;
          Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
        ] );
      ("property", [ qtest prop_serving_bit_identical ]);
    ]
