(* Tests for asynchronous compute/communication overlap: the explicit
   event/stream API of the simulator, the topology-aware fabric with
   per-link contention and time-based (backfill) admission, and the
   overlap execution engine's bit-identity guarantee against the
   barriered engine — including under fault schedules and device
   memory caps. *)

let checkb = Alcotest.check Alcotest.bool
let checkf msg a b = Alcotest.check (Alcotest.float 1e-12) msg a b
let qtest t = QCheck_alcotest.to_alcotest t

open Gpusim

(* ---------------- Helpers ---------------- *)

let compile_exn prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)

(* Run a host program through the partitioned engine on a functional
   machine; returns the engine result and the machine. *)
let run_engine ?fault_spec ?mem_capacity ?topology ~overlap ~devices prog =
  let exe = compile_exn prog in
  let m =
    Machine.create ~functional:true
      (Config.test_box ~n_devices:devices ?mem_capacity ?topology ())
  in
  (match fault_spec with
   | Some s -> Machine.inject_faults m (Faults.create s)
   | None -> ());
  let r = Mekong.Multi_gpu.run ~checkpoint_every:3 ~overlap ~machine:m exe in
  (r, m)

let islands ?(island_size = 2) () =
  Config.Islands
    { island_size; link_bandwidth = 20.0e9; uplink_bandwidth = 12.0e9 }

(* ---------------- Engine bit-identity (differential) ----------------

   The overlap engine drops the host barrier between the read exchange
   and the launches; its functional results must stay bit-identical to
   the barriered engine (and thus to the CPU reference) on every
   machine. *)

let prop_vecadd_overlap =
  QCheck.Test.make ~name:"vecadd: overlap = CPU across random sizes/devices"
    ~count:20
    QCheck.(pair (int_range 1 600) (int_range 1 8))
    (fun (n, g) ->
      let prog, out, cpu = Apps.Workloads.functional_vecadd ~n in
      ignore (run_engine ~overlap:true ~devices:g prog);
      out = cpu ())

let prop_hotspot_overlap =
  QCheck.Test.make ~name:"hotspot: overlap = CPU across random sizes/devices"
    ~count:8
    QCheck.(pair (int_range 3 40) (int_range 1 6))
    (fun (n, g) ->
      let prog, out, cpu = Apps.Workloads.functional_hotspot ~n ~iterations:3 in
      ignore (run_engine ~overlap:true ~devices:g prog);
      out = cpu ())

let prop_topology_overlap =
  QCheck.Test.make
    ~name:"vecadd: overlap = CPU across random island topologies" ~count:12
    QCheck.(triple (int_range 1 400) (int_range 1 8) (int_range 1 4))
    (fun (n, g, island_size) ->
      let prog, out, cpu = Apps.Workloads.functional_vecadd ~n in
      ignore
        (run_engine ~topology:(islands ~island_size ()) ~overlap:true
           ~devices:g prog);
      out = cpu ())

(* Prefetches issued under a mid-run device loss plus transient
   kernel/transfer faults must not leak into results: the self-healing
   overlap engine stays bit-identical. *)
let test_overlap_under_faults () =
  let mk () = Apps.Workloads.functional_hotspot ~n:48 ~iterations:6 in
  let prog0, base, cpu0 = mk () in
  let r0, _ = run_engine ~overlap:true ~devices:3 prog0 in
  checkb "fault-free overlap = CPU" true (base = cpu0 ());
  let spec =
    {
      Faults.null_spec with
      seed = 42;
      kernel_fault_rate = 0.02;
      transfer_fault_rate = 0.02;
      scheduled_losses = [ (1, 0.3 *. r0.Mekong.Multi_gpu.time) ];
    }
  in
  let prog, out, cpu = mk () in
  let r, _ = run_engine ~fault_spec:spec ~overlap:true ~devices:3 prog in
  checkb "bit-identical under faults" true (out = cpu ());
  checkb "the device loss actually fired" true
    (r.Mekong.Multi_gpu.faults.Mekong.Multi_gpu.fr_devices_lost > 0)

(* Under a finite device-memory capacity the chunked path keeps its
   barrier (its eager tracker updates rely on it); the run must still
   complete bit-identically with overlap requested. *)
let test_overlap_under_memcap () =
  let mk () = Apps.Workloads.functional_hotspot ~n:64 ~iterations:4 in
  let prog0, base, _ = mk () in
  let _, m0 = run_engine ~overlap:false ~devices:4 prog0 in
  let hw = ref 0 in
  for d = 0 to 3 do
    hw := max !hw (Machine.mem_high_water m0 d)
  done;
  let prog, out, _ = mk () in
  let r, m = run_engine ~mem_capacity:(!hw / 2) ~overlap:true ~devices:4 prog in
  checkb "bit-identical under a memory cap" true (out = base);
  checkb "memory pressure actually engaged" true
    (r.Mekong.Multi_gpu.mem.Mekong.Multi_gpu.mr_chunked_launches > 0
     || (Machine.stats m).Machine.n_spills > 0)

(* On performance machines the overlap engine may only shift work
   earlier: never slower than the barriered engine, with the same
   traffic. *)
let test_overlap_not_slower () =
  let prog =
    Apps.Workloads.program ~iterations:4 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let exe = compile_exn prog in
  let time overlap =
    let m =
      Machine.create ~functional:false (Config.k80_box ~n_devices:4 ())
    in
    let r = Mekong.Multi_gpu.run ~overlap ~machine:m exe in
    (r.Mekong.Multi_gpu.time, Machine.stats m)
  in
  let tb, sb = time false in
  let t_o, so = time true in
  checkb "overlap not slower than barrier" true (t_o <= tb +. 1e-12);
  Alcotest.(check int) "same h2d traffic" sb.Machine.h2d_bytes so.Machine.h2d_bytes;
  Alcotest.(check int) "same d2h traffic" sb.Machine.d2h_bytes so.Machine.d2h_bytes;
  Alcotest.(check int) "same p2p traffic" sb.Machine.p2p_bytes so.Machine.p2p_bytes

(* ---------------- Explicit-stream pipelines ----------------

   A double-buffered streaming pipeline built directly on the
   event/stream API: the h2d of chunk c may not overwrite slot s
   before the kernel of the slot's previous tenant has read it;
   everything else chains through events with no host barrier until
   the end.  Must be bit-identical to the fully barriered schedule
   for every shape and topology. *)

let stream ~overlap m ~g ~chunks ~chunk_len =
  let input =
    Array.init chunks (fun c ->
        Array.init chunk_len (fun i ->
            float_of_int (((c * 31) + (i * 13)) mod 101) /. 7.0))
  in
  let output = Array.init chunks (fun _ -> Array.make chunk_len nan) in
  let bin =
    Array.init g (fun d ->
        Array.init 2 (fun _ -> Machine.alloc m ~device:d ~len:chunk_len))
  in
  let bout =
    Array.init g (fun d ->
        Array.init 2 (fun _ -> Machine.alloc m ~device:d ~len:chunk_len))
  in
  let body d s () =
    let src = Buffer.data_exn bin.(d).(s) in
    let dst = Buffer.data_exn bout.(d).(s) in
    for i = 0 to chunk_len - 1 do
      dst.(i) <- (2.0 *. src.(i)) -. 1.0
    done
  in
  if overlap then begin
    let slot_free = Array.make_matrix g 2 0.0 in
    for c = 0 to chunks - 1 do
      let d = c mod g and s = c / g mod 2 in
      let up =
        Machine.h2d_async ~deps:[ slot_free.(d).(s) ] m ~src:input.(c)
          ~src_off:0 ~dst:bin.(d).(s) ~dst_off:0 ~len:chunk_len
      in
      let k =
        Machine.launch_async ~deps:[ up ] m ~device:d ~blocks:1
          ~ops_per_block:1.0 ~run:(body d s)
      in
      slot_free.(d).(s) <- k;
      ignore
        (Machine.d2h_async ~deps:[ k ] m ~src:bout.(d).(s) ~src_off:0
           ~dst:output.(c) ~dst_off:0 ~len:chunk_len)
    done;
    Machine.synchronize m
  end
  else
    for c = 0 to chunks - 1 do
      let d = c mod g in
      Machine.h2d m ~src:input.(c) ~src_off:0 ~dst:bin.(d).(0) ~dst_off:0
        ~len:chunk_len;
      Machine.synchronize m;
      Machine.launch m ~device:d ~blocks:1 ~ops_per_block:1.0 ~run:(body d 0);
      Machine.synchronize m;
      Machine.d2h m ~src:bout.(d).(0) ~src_off:0 ~dst:output.(c) ~dst_off:0
        ~len:chunk_len;
      Machine.synchronize m
    done;
  output

let prop_stream_identity =
  QCheck.Test.make
    ~name:"streaming pipeline: overlap = barrier across shapes/topologies"
    ~count:30
    QCheck.(
      quad (int_range 1 6) (int_range 1 12) (int_range 1 64) (int_range 0 3))
    (fun (g, chunks, chunk_len, isl) ->
      let topology = if isl = 0 then None else Some (islands ~island_size:isl ()) in
      let mk () =
        Machine.create ~functional:true
          (Config.test_box ~n_devices:g ?topology ())
      in
      stream ~overlap:true (mk ()) ~g ~chunks ~chunk_len
      = stream ~overlap:false (mk ()) ~g ~chunks ~chunk_len)

(* ---------------- Per-link contention (hand-computed) ----------------

   Quiet islands machine: 4 devices in islands of 2; intra-island
   links at 2 GB/s, per-island host uplinks at 1 GB/s; zero latencies.
   1e6 elements * 4 bytes = 4 MB per transfer, so 2 ms on a link and
   4 ms on an uplink.  The windows below leave a few hundred
   microseconds of slack for issue overheads. *)

let quiet_islands () =
  {
    (Config.k80_box ~n_devices:4
       ~topology:
         (Config.Islands
            { island_size = 2; link_bandwidth = 2e9; uplink_bandwidth = 1e9 })
       ())
    with
    Config.transfer_latency = 0.0;
    launch_latency = 0.0;
    sync_device_seconds = 0.0;
    pcie_bandwidth = 1e9;
    p2p_bandwidth = 1e9;
    autoboost_derate = 0.0;
    elem_bytes = 4;
  }

let alloc4 m = Array.init 4 (fun d -> Machine.alloc m ~device:d ~len:1_000_000)

let test_islands_parallel_links () =
  (* Two intra-island copies in different islands run on different
     links: both finish in one link time (2 ms), not two. *)
  let m = Machine.create (quiet_islands ()) in
  let b = alloc4 m in
  Machine.p2p m ~src:b.(0) ~src_off:0 ~dst:b.(1) ~dst_off:0 ~len:1_000_000;
  Machine.p2p m ~src:b.(2) ~src_off:0 ~dst:b.(3) ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "parallel island links do not contend" true (t >= 0.002 && t < 0.0025);
  (* Each island link carried exactly its own 2 ms; the flat bus and
     the uplinks carried nothing. *)
  checkf "flat bus unused" 0.0 (Timeline.busy_in (Machine.fabric_timeline m) "bus");
  List.iter
    (fun (name, tl) ->
       let busy = Timeline.busy_in tl "bus" in
       if String.length name >= 6
          && String.sub name (String.length name - 6) 6 = "uplink"
       then checkf (name ^ " unused") 0.0 busy
       else checkf (name ^ " carried one copy") 0.002 busy)
    (Machine.link_timelines m)

let test_islands_same_link_serializes () =
  (* Two copies over the SAME island link (opposite directions, so
     they share no copy engine) serialize on the link: 4 ms total. *)
  let m = Machine.create (quiet_islands ()) in
  let b = alloc4 m in
  Machine.p2p m ~src:b.(0) ~src_off:0 ~dst:b.(1) ~dst_off:0 ~len:1_000_000;
  Machine.p2p m ~src:b.(1) ~src_off:0 ~dst:b.(0) ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "same-link copies serialize" true (t >= 0.004 && t < 0.0045)

let test_inter_island_both_uplinks () =
  (* An inter-island copy stages through the switch and occupies BOTH
     islands' uplinks for its full wire time. *)
  let m = Machine.create (quiet_islands ()) in
  let b = alloc4 m in
  Machine.p2p m ~src:b.(0) ~src_off:0 ~dst:b.(2) ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  List.iter
    (fun (name, tl) ->
       let busy = Timeline.busy_in tl "bus" in
       if String.length name >= 6
          && String.sub name (String.length name - 6) 6 = "uplink"
       then checkf (name ^ " occupied by the crossing") 0.004 busy
       else checkf (name ^ " untouched") 0.0 busy)
    (Machine.link_timelines m);
  (* A host transfer into island 0 now queues behind the crossing on
     that island's uplink: it cannot complete before 4 ms + its own
     1 ms, proving the source-side uplink really was held. *)
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b.(1) ~dst_off:0 ~len:250_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "h2d blocked by the crossing" true (t >= 0.005 && t < 0.0055)

(* ---------------- Backfill admission (hand-computed) ----------------

   Link admission is by time, not issue order: a transfer whose
   dependencies resolve early starts in a bus gap BEFORE an
   earlier-issued transfer whose dependencies park it in the far
   future.  Flat quiet machine: pcie 1 GB/s, fabric 2 GB/s; a 10 ms
   kernel on device 0 parks its d2h at t=10ms; an independent 4 MB
   h2d to device 1 (issued later) must run in the [0, 10ms) gap and
   finish around 4 ms — a FIFO bus would stall it to ~16 ms. *)
let test_backfill_gap () =
  let cfg =
    {
      (Config.k80_box ~n_devices:2 ()) with
      Config.transfer_latency = 0.0;
      launch_latency = 0.0;
      sync_device_seconds = 0.0;
      pcie_bandwidth = 1e9;
      p2p_bandwidth = 1e9;
      fabric_bandwidth = 2e9;
      autoboost_derate = 0.0;
      elem_bytes = 4;
      ops_per_sm = 1e9;
      sms_per_device = 10;
      blocks_per_sm = 2;
    }
  in
  let m = Machine.create cfg in
  let b0 = Machine.alloc m ~device:0 ~len:1_000_000 in
  let b1 = Machine.alloc m ~device:1 ~len:1_000_000 in
  (* 20 blocks of 5e6 ops = one wave of 10 ms on device 0. *)
  let k =
    Machine.launch_async m ~device:0 ~blocks:20 ~ops_per_block:5e6
      ~run:(fun () -> ())
  in
  checkb "kernel runs ~10ms" true (k >= 0.010 && k < 0.0105);
  (* Issued FIRST, parked at the kernel's end: bus [10ms, 12ms). *)
  let down =
    Machine.d2h_async ~deps:[ k ] m ~src:b0 ~src_off:0 ~dst:[||] ~dst_off:0
      ~len:1_000_000
  in
  (* Issued SECOND with no dependencies: backfills the [0, 10ms) gap. *)
  let up =
    Machine.h2d_async ~deps:[] m ~src:[||] ~src_off:0 ~dst:b1 ~dst_off:0
      ~len:1_000_000
  in
  checkb "late-issued h2d backfills the gap" true (up >= 0.004 && up < 0.0045);
  checkb "h2d finishes under the kernel" true (up < k);
  checkb "parked d2h keeps its slot" true (down >= 0.014 && down < 0.0145);
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "end-to-end bounded by the parked d2h" true
    (t >= 0.014 && t < 0.0145)

let () =
  Alcotest.run "overlap"
    [
      ( "engine",
        [
          qtest prop_vecadd_overlap;
          qtest prop_hotspot_overlap;
          qtest prop_topology_overlap;
          Alcotest.test_case "bit-identical under faults" `Quick
            test_overlap_under_faults;
          Alcotest.test_case "bit-identical under a memory cap" `Quick
            test_overlap_under_memcap;
          Alcotest.test_case "never slower than the barrier" `Quick
            test_overlap_not_slower;
        ] );
      ("streams", [ qtest prop_stream_identity ]);
      ( "topology",
        [
          Alcotest.test_case "parallel island links" `Quick
            test_islands_parallel_links;
          Alcotest.test_case "same-link serialization" `Quick
            test_islands_same_link_serializes;
          Alcotest.test_case "inter-island uplinks" `Quick
            test_inter_island_both_uplinks;
        ] );
      ( "backfill",
        [ Alcotest.test_case "gap admission" `Quick test_backfill_gap ] );
    ]
