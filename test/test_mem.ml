(* Tests for the device-memory capacity model end to end: the engine's
   memory-pressure-adaptive launching (spill + chunking), the OOM
   diagnostics, composition with fault injection, and a model-based
   property over random spill/ensure/checkpoint/restore schedules.

   The headline invariant (DESIGN.md §15): for any capacity under
   which the run is feasible, functional results are bit-identical to
   the uncapped run; infeasible runs fail with a one-line diagnostic
   naming the buffer, the device and the shortfall. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

open Gpu_runtime

let compile prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> failwith (Mekong.Toolchain.error_message e)

let run_with ?mem_capacity ?faults ?checkpoint_every ~devices prog =
  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:devices ?mem_capacity ())
  in
  (match faults with
   | Some spec -> Gpusim.Machine.inject_faults machine (Gpusim.Faults.create spec)
   | None -> ());
  let r = Mekong.Multi_gpu.run ?checkpoint_every ~machine (compile prog) in
  (r, machine)

let high_water m =
  let hw = ref 0 in
  for d = 0 to Gpusim.Machine.n_devices m - 1 do
    hw := max !hw (Gpusim.Machine.mem_high_water m d)
  done;
  !hw

(* ---------------- Feasible capped runs are bit-identical ----------- *)

(* The acceptance experiment: matmul capped at a quarter of its own
   uncapped per-device high-water mark must still complete, with the
   engine visibly working for it (nonzero spill traffic and chunked
   launches), and produce bit-identical output. *)
let test_matmul_quarter_capacity () =
  (* n must be large enough that a quarter of the high-water clears the
     single-axis chunking floor: the per-chunk footprint cannot drop
     below one partition's full band of A, which is hw/(g+2) plus one
     block-column of B — about 22% of hw at n = 256, g = 4. *)
  let prog, out, _ = Apps.Workloads.functional_matmul ~n:256 in
  let r0, m0 = run_with ~devices:4 prog in
  let baseline = Array.copy out in
  checkb "uncapped run uses no mem machinery" true
    (r0.Mekong.Multi_gpu.mem = Mekong.Multi_gpu.no_mem);
  checki "uncapped run spills nothing" 0
    (Gpusim.Machine.stats m0).Gpusim.Machine.n_spills;
  let hw = high_water m0 in
  checkb "high water measured" true (hw > 0);
  let prog, out, _ = Apps.Workloads.functional_matmul ~n:256 in
  let r, m = run_with ~devices:4 ~mem_capacity:(hw / 4) prog in
  checkb "quarter-capacity output bit-identical" true (out = baseline);
  let st = Gpusim.Machine.stats m in
  checkb "nonzero spill bytes" true (st.Gpusim.Machine.spill_bytes > 0);
  checkb "nonzero spills" true (st.Gpusim.Machine.n_spills > 0);
  let mem = r.Mekong.Multi_gpu.mem in
  checkb "chunked launches happened" true
    (mem.Mekong.Multi_gpu.mr_chunked_launches > 0);
  checkb "multiple chunks per launch" true
    (mem.Mekong.Multi_gpu.mr_chunks > mem.Mekong.Multi_gpu.mr_chunked_launches);
  checkb "capacity respected" true (high_water m <= hw / 4);
  checkb "capped run is not faster" true
    (r.Mekong.Multi_gpu.time >= r0.Mekong.Multi_gpu.time)

(* The same invariant on a stencil with halo exchanges, at 50% and 25%
   of the uncapped high-water. *)
let test_hotspot_under_pressure () =
  let mk () = Apps.Workloads.functional_hotspot ~n:64 ~iterations:6 in
  let prog, out, _ = mk () in
  let _, m0 = run_with ~devices:4 prog in
  let baseline = Array.copy out in
  let hw = high_water m0 in
  List.iter
    (fun denom ->
       let prog, out, _ = mk () in
       let r, m = run_with ~devices:4 ~mem_capacity:(hw / denom) prog in
       checkb
         (Printf.sprintf "1/%d capacity bit-identical" denom)
         true (out = baseline);
       checkb
         (Printf.sprintf "1/%d capacity spilled" denom)
         true
         ((Gpusim.Machine.stats m).Gpusim.Machine.spill_bytes > 0);
       ignore r)
    [ 2; 4 ]

(* A capacity above the uncapped working set must change nothing at
   all: same output, same simulated time, no spills, no chunking. *)
let test_loose_capacity_is_invisible () =
  let prog, out, _ = Apps.Workloads.functional_matmul ~n:64 in
  let r0, m0 = run_with ~devices:4 prog in
  let baseline = Array.copy out in
  let hw = high_water m0 in
  let prog, out, _ = Apps.Workloads.functional_matmul ~n:64 in
  let r, m = run_with ~devices:4 ~mem_capacity:hw prog in
  checkb "output identical" true (out = baseline);
  checkb "time identical" true
    (r.Mekong.Multi_gpu.time = r0.Mekong.Multi_gpu.time);
  checki "no spills" 0 (Gpusim.Machine.stats m).Gpusim.Machine.n_spills;
  checkb "no chunking" true
    (r.Mekong.Multi_gpu.mem = Mekong.Multi_gpu.no_mem)

(* ---------------- Infeasibility diagnostics ----------------------- *)

let one_line msg = not (String.contains msg '\n')

let test_infeasible_diagnostic () =
  let prog, _, _ = Apps.Workloads.functional_matmul ~n:64 in
  match run_with ~devices:4 ~mem_capacity:2048 prog with
  | _ -> Alcotest.fail "infeasible run completed"
  | exception Failure msg ->
    checkb "one line" true (one_line msg);
    let has s =
      Str.string_match (Str.regexp (".*" ^ Str.quote s)) msg 0
    in
    checkb "names the kernel" true (has "matmul");
    checkb "says infeasible" true (has "infeasible");
    checkb "names a buffer" true (has "buffer");
    checkb "names the device" true (has "device");
    checkb "states the shortfall" true (has "short")

let test_non_launch_oom_diagnostic () =
  (* An Out_of_memory escaping anything but a launch (here: forced
     directly against the machine) is not retryable; the engine turns
     it into a one-line failure rather than leaking the exception. *)
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:2 ~mem_capacity:100 ())
  in
  match Gpusim.Machine.mem_reserve m ~device:1 ~bytes:200 with
  | _ -> Alcotest.fail "over-capacity reserve accepted"
  | exception Gpusim.Machine.Out_of_memory { device; requested; free } ->
    checki "device" 1 device;
    checki "requested" 200 requested;
    checki "free" 100 free

(* ---------------- Composition with fault injection ----------------- *)

(* Memory pressure and self-healing are orthogonal robustness layers;
   the guarantee is their conjunction: under a capped machine AND a PR-2
   fault schedule (transient faults plus one permanent loss, >= 1
   survivor), outputs still match the uncapped fault-free baseline. *)
let test_capped_run_survives_faults () =
  let mk () = Apps.Workloads.functional_hotspot ~n:64 ~iterations:6 in
  let prog, out, _ = mk () in
  let _, m0 = run_with ~devices:4 prog in
  let baseline = Array.copy out in
  let hw = high_water m0 in
  let cap = hw / 2 in
  (* capped, fault-free: gives the loss schedule a realistic time *)
  let prog, out, _ = mk () in
  let r1, _ = run_with ~devices:4 ~mem_capacity:cap prog in
  checkb "capped clean run bit-identical" true (out = baseline);
  List.iter
    (fun seed ->
       let prog, out, _ = mk () in
       let spec =
         {
           Gpusim.Faults.null_spec with
           seed;
           (* Spilling multiplies the transfers per statement, so the
              per-transfer rate must stay low enough that a whole
              attempt can pass within the backoff budget. *)
           kernel_fault_rate = 0.01;
           transfer_fault_rate = 0.002;
           scheduled_losses = [ (2, 0.3 *. r1.Mekong.Multi_gpu.time) ];
         }
       in
       let r, _ =
         run_with ~devices:4 ~mem_capacity:cap ~faults:spec
           ~checkpoint_every:3 prog
       in
       checkb
         (Printf.sprintf "seed %d: capped+faulty bit-identical" seed)
         true (out = baseline);
       checki
         (Printf.sprintf "seed %d: loss fired" seed)
         1
         r.Mekong.Multi_gpu.faults.Mekong.Multi_gpu.fr_devices_lost)
    [ 11; 42; 1337 ]

(* ---------------- Model-based residency property ------------------ *)

(* Random schedules of device writes, synced reads, explicit spills,
   ensure_resident calls and checkpoint/restore cycles on a capacity-
   limited machine.  After every operation the segment trackers must
   satisfy their invariants and the residency accounting must be
   consistent (Vbuf.check_residency); every synced read and the final
   gather must agree with a flat reference array. *)
type mop =
  | MWrite of int * int * int (* device, lo, hi *)
  | MRead of int * int * int
  | MSpill of int * int * int
  | MEnsure of int * int * int
  | MCheckpoint
  | MRestore

let gen_mop =
  QCheck.Gen.(
    int_range 0 3 >>= fun dev ->
    int_range 0 79 >>= fun a ->
    int_range 0 23 >>= fun w ->
    let lo = min a 79 and hi = min (a + 1 + w) 80 in
    frequency
      [
        (4, return (MWrite (dev, lo, hi)));
        (4, return (MRead (dev, lo, hi)));
        (2, return (MSpill (dev, lo, hi)));
        (2, return (MEnsure (dev, lo, hi)));
        (1, return MCheckpoint);
        (1, return MRestore);
      ])

let print_mop = function
  | MWrite (d, l, h) -> Printf.sprintf "W%d[%d,%d)" d l h
  | MRead (d, l, h) -> Printf.sprintf "R%d[%d,%d)" d l h
  | MSpill (d, l, h) -> Printf.sprintf "S%d[%d,%d)" d l h
  | MEnsure (d, l, h) -> Printf.sprintf "E%d[%d,%d)" d l h
  | MCheckpoint -> "C"
  | MRestore -> "X"

let prop_residency_model =
  QCheck.Test.make ~name:"capped vbuf matches flat model" ~count:120
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map print_mop l))
       QCheck.Gen.(list_size (int_range 1 40) gen_mop))
    (fun ops ->
      let len = 80 in
      let m =
        Gpusim.Machine.create ~functional:true
          (* 32 elements per device: every single op range (<= 24
             elements) fits after eviction, but the whole buffer never
             does, so the schedule constantly spills and faults back. *)
          (Gpusim.Config.test_box ~n_devices:4 ~mem_capacity:256 ())
      in
      let vb = Vbuf.create m ~name:"v" ~len in
      let model = Array.init len float_of_int in
      Vbuf.h2d vb ~src:(Some (Array.copy model));
      let snap = ref None in
      let stamp = ref 100.0 in
      let ok = ref true in
      let validate () =
        Tracker.check_invariants (Vbuf.tracker vb);
        Vbuf.check_residency vb
      in
      validate ();
      List.iter
        (fun op ->
           (match op with
            | MWrite (dev, lo, hi) ->
              stamp := !stamp +. 1.0;
              (* make the range resident first, then store through the
                 instance like a kernel would, then declare the write *)
              Vbuf.ensure_resident vb ~dev ~ranges:[ (lo, hi) ];
              let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb dev) in
              for i = lo to hi - 1 do
                inst.(i) <- !stamp +. float_of_int i;
                model.(i) <- !stamp +. float_of_int i
              done;
              Vbuf.update_for_write vb ~dev ~ranges:[ (lo, hi) ]
            | MRead (dev, lo, hi) ->
              ignore (Vbuf.sync_for_read vb ~dev ~ranges:[ (lo, hi) ]);
              let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb dev) in
              for i = lo to hi - 1 do
                if inst.(i) <> model.(i) then ok := false
              done
            | MSpill (dev, lo, hi) ->
              ignore (Vbuf.spill vb ~dev ~ranges:[ (lo, hi) ])
            | MEnsure (dev, lo, hi) ->
              Vbuf.ensure_resident vb ~dev ~ranges:[ (lo, hi) ]
            | MCheckpoint -> snap := Some (Vbuf.checkpoint vb, Array.copy model)
            | MRestore -> (
                match !snap with
                | Some (s, saved) ->
                  Vbuf.restore vb s;
                  Array.blit saved 0 model 0 len
                | None -> ()));
           validate ())
        ops;
      let out = Array.make len nan in
      Vbuf.d2h vb ~dst:(Some out);
      !ok && out = model)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "mem"
    [
      ( "engine",
        [
          Alcotest.test_case "matmul @ 25% capacity" `Quick
            test_matmul_quarter_capacity;
          Alcotest.test_case "hotspot under pressure" `Quick
            test_hotspot_under_pressure;
          Alcotest.test_case "loose capacity invisible" `Quick
            test_loose_capacity_is_invisible;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "infeasible one-liner" `Quick
            test_infeasible_diagnostic;
          Alcotest.test_case "typed OOM payload" `Quick
            test_non_launch_oom_diagnostic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "capped + fault schedule" `Quick
            test_capped_run_survives_faults;
        ] );
      ("residency", [ qtest prop_residency_model ]);
    ]
