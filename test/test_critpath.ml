(* Tests for the causal critical-path analyzer: hand-computed DAGs
   (serial chain, fork-join, contended link), engine-level
   reconciliation (attribution tiles the makespan exactly on every
   example app, including the halo-tiled stencil), what-if validation
   against actual re-runs with a modified Config, and QCheck
   properties over randomly generated (but machine-consistent)
   schedules. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b

(* Per-category attribution must tile [0, makespan]: adjacency and the
   telescoping sum are exact by construction, so the tolerance only
   absorbs the float additions of the final fold. *)
let check_reconciles msg (an : Obs.Causal.analysis) =
  let total =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0 an.Obs.Causal.an_by_category
  in
  let tol = 1e-9 *. Float.max 1.0 an.Obs.Causal.an_makespan in
  if Float.abs (total -. an.Obs.Causal.an_makespan) > tol then
    Alcotest.failf "%s: categories sum to %.12g but makespan is %.12g" msg
      total an.Obs.Causal.an_makespan;
  (* Segments are adjacent, earliest first, starting at 0 and ending at
     the makespan. *)
  let rec tiles at = function
    | [] -> Float.abs (at -. an.Obs.Causal.an_makespan) <= tol
    | s :: rest ->
      Float.abs (s.Obs.Causal.sg_start -. at) <= tol
      && s.Obs.Causal.sg_finish >= s.Obs.Causal.sg_start
      && tiles s.Obs.Causal.sg_finish rest
  in
  checkb (msg ^ ": segments tile [0, makespan]") true
    (tiles 0.0 an.Obs.Causal.an_segments);
  checkb (msg ^ ": critical path <= makespan") true
    (Obs.Causal.critical_path_length an
     <= an.Obs.Causal.an_makespan +. tol)

let cat an c =
  Option.value ~default:0.0 (List.assoc_opt c an.Obs.Causal.an_by_category)

(* ---------------- Hand-computed DAGs ---------------- *)

(* Three ops back to back on one resource: the path is the whole chain
   and attribution is pure compute. *)
let test_serial_chain () =
  let b = Obs.Causal.builder () in
  let t = ref 0.0 in
  for i = 0 to 2 do
    let d = float_of_int (i + 1) in
    ignore
      (Obs.Causal.add b ~label:"op" ~category:"compute" ~phase:""
         ~resources:[ "r" ] ~ready:!t ~start:!t ~finish:(!t +. d) ~fixed:0.0
         ~legs:[] ~deps:[] ~wait:"");
    t := !t +. d
  done;
  let an = Obs.Causal.analyze (Obs.Causal.dag b) in
  checkf "makespan" 6.0 an.Obs.Causal.an_makespan;
  check_reconciles "serial chain" an;
  checkf "all compute" 6.0 (cat an "compute");
  (* Single serialized resource: critical path = makespan exactly. *)
  checkf "critpath = makespan" an.Obs.Causal.an_makespan
    (Obs.Causal.critical_path_length an);
  checkf "identity replay is exact" 6.0
    (Obs.Causal.identity_replay (Obs.Causal.dag b))

(* Fork-join: a 1s producer, two parallel consumers (3s and 5s) on
   separate resources, a join depending on both.  The path goes
   through the slow branch; the fast branch never appears. *)
let test_fork_join () =
  let b = Obs.Causal.builder () in
  let add ~label ~res ~ready ~start ~finish ~deps =
    Obs.Causal.add b ~label ~category:label ~phase:"" ~resources:[ res ]
      ~ready ~start ~finish ~fixed:0.0 ~legs:[] ~deps ~wait:""
  in
  let p = add ~label:"produce" ~res:"a" ~ready:0.0 ~start:0.0 ~finish:1.0 ~deps:[] in
  let fast = add ~label:"fast" ~res:"b" ~ready:1.0 ~start:1.0 ~finish:4.0 ~deps:[ p ] in
  let slow = add ~label:"slow" ~res:"c" ~ready:1.0 ~start:1.0 ~finish:6.0 ~deps:[ p ] in
  ignore
    (add ~label:"join" ~res:"a" ~ready:6.0 ~start:6.0 ~finish:7.0
       ~deps:[ fast; slow ]);
  let an = Obs.Causal.analyze (Obs.Causal.dag b) in
  checkf "makespan" 7.0 an.Obs.Causal.an_makespan;
  check_reconciles "fork-join" an;
  checkf "slow branch on the path" 5.0 (cat an "slow");
  checkf "fast branch absent" 0.0 (cat an "fast");
  checkf "produce + slow + join" 7.0
    (cat an "produce" +. cat an "slow" +. cat an "join");
  (* What-if: removing the slow branch entirely re-routes the path
     through the fast one -> makespan 5 (produce 1, fast 3, join 1). *)
  checkf "what-if slow = 0" 5.0
    (Obs.Causal.what_if (Obs.Causal.dag b) ~category:"slow" ~factor:0.0)

(* Two transfers contending for one link: the second is ready at 0 but
   admitted at 2; the stall shows up as link_wait on the path. *)
let test_contended_link () =
  let b = Obs.Causal.builder () in
  ignore
    (Obs.Causal.add b ~label:"h2d" ~category:"h2d" ~phase:""
       ~resources:[ "dev0.copy_in" ] ~ready:0.0 ~start:0.0 ~finish:2.0
       ~fixed:0.0 ~legs:[ ("bus", 2.0) ] ~deps:[] ~wait:"link_wait");
  ignore
    (Obs.Causal.add b ~label:"h2d" ~category:"h2d" ~phase:""
       ~resources:[ "dev1.copy_in" ] ~ready:0.0 ~start:2.0 ~finish:4.0
       ~fixed:0.0 ~legs:[ ("bus", 2.0) ] ~deps:[] ~wait:"link_wait");
  let an = Obs.Causal.analyze (Obs.Causal.dag b) in
  checkf "makespan" 4.0 an.Obs.Causal.an_makespan;
  check_reconciles "contended link" an;
  checkf "wire time attributed" 2.0 (cat an "h2d");
  checkf "contention attributed" 2.0 (cat an "link_wait");
  (* Infinite link: both transfers start at 0, makespan 2. *)
  checkf "what-if link = 0" 2.0
    (Obs.Causal.what_if (Obs.Causal.dag b) ~category:"link" ~factor:0.0)

(* ---------------- Engine-level reconciliation ---------------- *)

let compile prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> failwith (Mekong.Toolchain.error_message e)

let run_causal ?(gpus = 4) ?(cfg = fun c -> c) ?autotune prog =
  let config = cfg (Gpusim.Config.k80_box ~n_devices:gpus ()) in
  let m = Gpusim.Machine.create ~functional:false config in
  Gpusim.Machine.enable_causal m;
  let r = Mekong.Multi_gpu.run ?autotune ~machine:m (compile prog) in
  let dag = Option.get (Gpusim.Machine.causal_dag m) in
  (m, r, dag)

(* Attribution reconciles on every example app (acceptance criterion):
   per-category critical-path times sum to the simulated makespan. *)
let test_apps_reconcile () =
  List.iter
    (fun bench ->
       let prog =
         Apps.Workloads.program ~iterations:3 bench Apps.Workloads.Small
       in
       let m, r, dag = run_causal prog in
       let an = Obs.Causal.analyze dag in
       let name = Apps.Workloads.benchmark_name bench in
       check_reconciles name an;
       checki (name ^ ": nothing dropped") 0 an.Obs.Causal.an_dropped;
       (* The DAG's makespan is the run's simulated time: the final
          barrier's host op finishes last. *)
       checkf (name ^ ": makespan = engine time") r.Mekong.Multi_gpu.time
         an.Obs.Causal.an_makespan;
       ignore m)
    Apps.Workloads.benchmarks

(* Halo-tiled stencil (autotuned deep hotspot): the temporal-blocking
   schedule must reconcile too, and its path must contain compute. *)
let test_halo_tiled_reconciles () =
  let prog =
    Apps.Workloads.program ~iterations:12 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let _, _, dag = run_causal ~autotune:true prog in
  let an = Obs.Causal.analyze dag in
  check_reconciles "halo-tiled hotspot" an;
  checkb "compute on the path" true (cat an "compute" > 0.0);
  checkb "replay fidelity under 2%" true
    (an.Obs.Causal.an_replay_drift < 0.02)

(* ---------------- What-if vs. actual re-run ---------------- *)

(* Acceptance criterion: the rescaled-bandwidth what-if prediction
   matches an actual re-run with the modified Config within 10% on
   hotspot and matmul.  Doubling every fabric bandwidth halves wire
   time, i.e. what-if factor 0.5 on "xfer". *)
let double_bandwidth (c : Gpusim.Config.t) =
  {
    c with
    Gpusim.Config.pcie_bandwidth = c.Gpusim.Config.pcie_bandwidth *. 2.0;
    p2p_bandwidth = c.Gpusim.Config.p2p_bandwidth *. 2.0;
    fabric_bandwidth = c.Gpusim.Config.fabric_bandwidth *. 2.0;
  }

let test_what_if_validates () =
  List.iter
    (fun bench ->
       let prog =
         Apps.Workloads.program ~iterations:3 bench Apps.Workloads.Small
       in
       let _, _, dag = run_causal prog in
       let predicted = Obs.Causal.what_if dag ~category:"xfer" ~factor:0.5 in
       let _, r2, _ = run_causal ~cfg:double_bandwidth prog in
       let actual = r2.Mekong.Multi_gpu.time in
       let err = Float.abs (predicted -. actual) /. actual in
       if err > 0.10 then
         Alcotest.failf "%s: what-if predicted %.6gs, actual %.6gs (%.1f%%)"
           (Apps.Workloads.benchmark_name bench)
           predicted actual (100.0 *. err))
    [ Apps.Workloads.Hotspot_b; Apps.Workloads.Matmul_b ]

(* ---------------- Bounded builder ---------------- *)

let test_builder_bounds () =
  let b = Obs.Causal.builder ~capacity:2 () in
  let add () =
    Obs.Causal.add b ~label:"op" ~category:"compute" ~phase:""
      ~resources:[ "r" ] ~ready:0.0 ~start:0.0 ~finish:1.0 ~fixed:0.0
      ~legs:[] ~deps:[] ~wait:""
  in
  checki "first id" 0 (add ());
  checki "second id" 1 (add ());
  checki "overflow returns -1" (-1) (add ());
  checki "drop counted" 1 (Obs.Causal.builder_dropped b);
  let an = Obs.Causal.analyze (Obs.Causal.dag b) in
  checki "dag flags truncation" 1 an.Obs.Causal.an_dropped

(* ---------------- JSON round-trip ---------------- *)

let test_json_roundtrip () =
  let prog =
    Apps.Workloads.program ~iterations:2 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let _, _, dag = run_causal ~gpus:2 prog in
  let j = Obs.Causal.to_json dag in
  let dag' =
    match Obs.Causal.of_json (Result.get_ok (Obs.Json.parse (Obs.Json.to_string j))) with
    | Ok d -> d
    | Error e -> Alcotest.failf "round-trip failed: %s" e
  in
  let an = Obs.Causal.analyze dag and an' = Obs.Causal.analyze dag' in
  checkf "makespan survives" an.Obs.Causal.an_makespan
    an'.Obs.Causal.an_makespan;
  checki "nodes survive" an.Obs.Causal.an_nodes an'.Obs.Causal.an_nodes;
  Alcotest.(check (list (pair string (float 1e-12))))
    "attribution survives" an.Obs.Causal.an_by_category
    an'.Obs.Causal.an_by_category

(* ---------------- Trace validator: flows and the critpath lane ------ *)

let validate events = Obs.Chrome_trace.validate (Obs.Chrome_trace.to_json events)

let check_rejects msg needle events =
  match validate events with
  | Ok () -> Alcotest.failf "%s: expected validation to fail" msg
  | Error e ->
    if
      not
        (Str.string_match (Str.regexp (".*" ^ Str.quote needle)) e 0)
    then Alcotest.failf "%s: error %S does not mention %S" msg e needle

let flow ph ~ts ~id =
  let open Obs.Chrome_trace in
  if ph = `S then Flow_start { name = "f"; cat = "c"; pid = 0; tid = 0; ts; id }
  else Flow_finish { name = "f"; cat = "c"; pid = 0; tid = 0; ts; id }

let test_flow_validation () =
  checkb "paired flow is valid" true
    (Result.is_ok (validate [ flow `S ~ts:1.0 ~id:7; flow `F ~ts:2.0 ~id:7 ]));
  check_rejects "backwards edge" "backwards"
    [ flow `S ~ts:5.0 ~id:1; flow `F ~ts:3.0 ~id:1 ];
  check_rejects "dangling flow" "never finishes" [ flow `S ~ts:1.0 ~id:2 ];
  check_rejects "finish before start" "before it starts"
    [ flow `F ~ts:1.0 ~id:3 ];
  check_rejects "double start" "started twice"
    [ flow `S ~ts:1.0 ~id:4; flow `S ~ts:2.0 ~id:4 ];
  check_rejects "double finish" "finished twice"
    [ flow `S ~ts:1.0 ~id:5; flow `F ~ts:2.0 ~id:5; flow `F ~ts:3.0 ~id:5 ]

let seg ~ts ~dur =
  Obs.Chrome_trace.Complete
    { name = "s"; cat = "c"; pid = 0; tid = 9; ts; dur; args = [] }

let test_critpath_lane_validation () =
  let lane = Obs.Chrome_trace.Thread_name { pid = 0; tid = 9; name = "critical path" } in
  checkb "contiguous critpath lane is valid" true
    (Result.is_ok (validate [ lane; seg ~ts:0.0 ~dur:2.0; seg ~ts:2.0 ~dur:1.0 ]));
  check_rejects "gap in critpath lane" "gap"
    [ lane; seg ~ts:0.0 ~dur:2.0; seg ~ts:3.0 ~dur:1.0 ];
  (* The same gap on an unnamed lane is fine: only the promise of the
     "critical path" name is enforced. *)
  checkb "gaps allowed elsewhere" true
    (Result.is_ok (validate [ seg ~ts:0.0 ~dur:2.0; seg ~ts:3.0 ~dur:1.0 ]))

(* End-to-end: a traced + causally-recorded run exports a trace whose
   critical-path lane and flow chain pass the tightened validator. *)
let test_traced_export_validates () =
  let prog =
    Apps.Workloads.program ~iterations:3 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let config = Gpusim.Config.k80_box ~n_devices:4 () in
  let m = Gpusim.Machine.create ~functional:false config in
  Gpusim.Machine.enable_trace m;
  Gpusim.Machine.enable_causal m;
  ignore (Mekong.Multi_gpu.run ~machine:m (compile prog));
  let an = Obs.Causal.analyze (Option.get (Gpusim.Machine.causal_dag m)) in
  let j = Gpusim.Trace_export.to_json ~critpath:an m in
  (match Obs.Chrome_trace.validate j with
   | Ok () -> ()
   | Error e -> Alcotest.failf "critpath trace rejected: %s" e);
  checkb "critical-path lane present" true
    (List.mem (0, 3) (Obs.Chrome_trace.lanes j))

(* ---------------- bench compare (Obs.Regress) ---------------- *)

let bench_doc entries =
  Obs.Json.Obj [ ("timings", Obs.Json.List entries) ]

let entry ?wall_stddev ?wall app sim =
  Obs.Json.Obj
    ([
      ("kind", Obs.Json.Str "partitioned");
      ("app", Obs.Json.Str app);
      ("gpus", Obs.Json.Int 4);
      ("sim_seconds", Obs.Json.Float sim);
    ]
     @ (match wall with
        | Some w -> [ ("wall_seconds", Obs.Json.Float w) ]
        | None -> [])
     @
     match wall_stddev with
     | Some sd -> [ ("wall_stddev_seconds", Obs.Json.Float sd) ]
     | None -> [])

let regressions old_doc new_doc =
  (Obs.Regress.compare_docs ~old_doc ~new_doc ()).Obs.Regress.regressions

let test_regress_gate () =
  let base = bench_doc [ entry "hotspot" 1.0; entry "matmul" 2.0 ] in
  (* Identical documents: quiet. *)
  checki "same doc is quiet" 0 (regressions base base);
  (* A 20% simulated slowdown on one app: caught (sim is deterministic,
     zero noise bound). *)
  let slow = bench_doc [ entry "hotspot" 1.2; entry "matmul" 2.0 ] in
  checki "injected 20% slowdown caught" 1 (regressions base slow);
  (* 10% stays under the 15% threshold. *)
  let mild = bench_doc [ entry "hotspot" 1.1; entry "matmul" 2.0 ] in
  checki "10% is within threshold" 0 (regressions base mild);
  (* Improvements are never regressions. *)
  let fast = bench_doc [ entry "hotspot" 0.5; entry "matmul" 2.0 ] in
  checki "improvement is quiet" 0 (regressions base fast);
  (* Wall clock with no spread info gets the noise floor: a 30% wall
     slowdown stays under 15% + 20%-floor... *)
  let wold = bench_doc [ entry ~wall:1.0 "hotspot" 1.0 ] in
  let wnew = bench_doc [ entry ~wall:1.3 "hotspot" 1.0 ] in
  checki "wall slowdown within noise floor is quiet" 0 (regressions wold wnew);
  (* ...but a 40% one does not. *)
  let wbad = bench_doc [ entry ~wall:1.4 "hotspot" 1.0 ] in
  checki "wall slowdown beyond noise caught" 1 (regressions wold wbad);
  (* Tight measured spread narrows the bound: stddev 1% of the median
     grants the floor? no - max(floor, 2 sd) = floor; stddev 15% grants
     30% and lets the same 40% slip only if 40 > 15+30 fails. *)
  let tight = bench_doc [ entry ~wall:1.0 ~wall_stddev:0.15 "hotspot" 1.0 ] in
  let tbad = bench_doc [ entry ~wall:1.5 ~wall_stddev:0.15 "hotspot" 1.0 ] in
  checki "50% beyond a 30% noise bound caught" 1 (regressions tight tbad);
  (* Added / removed keys report but never gate. *)
  let extra = bench_doc [ entry "hotspot" 1.0; entry "nbody" 9.9 ] in
  checki "added and removed keys do not gate" 0 (regressions base extra)

let test_regress_json () =
  let base = bench_doc [ entry "hotspot" 1.0 ] in
  let slow = bench_doc [ entry "hotspot" 1.3 ] in
  let r = Obs.Regress.compare_docs ~old_doc:base ~new_doc:slow () in
  checki "one regression" 1 r.Obs.Regress.regressions;
  (* The diff artifact round-trips through the JSON emitter/parser. *)
  let j =
    Result.get_ok (Obs.Json.parse (Obs.Json.to_string (Obs.Regress.to_json r)))
  in
  match Obs.Json.member "regressions" j with
  | Some (Obs.Json.Int 1) -> ()
  | _ -> Alcotest.fail "diff artifact lost the regression count"

(* ---------------- Serve: burn attribution and scheduler DAG -------- *)

let serve_report () =
  let built = Serve.Mix.generate ~seed:3 ~tenants:2 ~jobs:8 () in
  let cfg =
    Serve.Scheduler.config (Gpusim.Config.k80_box ~n_devices:4 ())
  in
  Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)

let test_serve_burn () =
  let r = serve_report () in
  let turnaround_by_tenant = Hashtbl.create 4 in
  List.iter
    (fun (j : Serve.Job.report) ->
       match j.Serve.Job.r_outcome with
       | Serve.Job.Completed { turnaround; _ } ->
         let prev =
           Option.value ~default:0.0
             (Hashtbl.find_opt turnaround_by_tenant j.Serve.Job.r_tenant)
         in
         Hashtbl.replace turnaround_by_tenant j.Serve.Job.r_tenant
           (prev +. turnaround)
       | _ -> ())
    r.Serve.Scheduler.r_jobs;
  List.iter
    (fun (t : Serve.Slo.tenant) ->
       checkb (t.Serve.Slo.t_name ^ ": burns non-negative") true
         (t.Serve.Slo.t_burn_queue >= 0.0
          && t.Serve.Slo.t_burn_run >= 0.0
          && t.Serve.Slo.t_burn_stall >= 0.0);
       (* queue + run + stall = sum over jobs of max(q+e, turnaround),
          so it covers the tenant's total turnaround. *)
       let total =
         Option.value ~default:0.0
           (Hashtbl.find_opt turnaround_by_tenant t.Serve.Slo.t_name)
       in
       checkb (t.Serve.Slo.t_name ^ ": burn covers turnaround") true
         (t.Serve.Slo.t_burn_queue +. t.Serve.Slo.t_burn_run
          +. t.Serve.Slo.t_burn_stall
          >= total -. 1e-9))
    (Serve.Scheduler.tenants r)

let test_serve_causal_dag () =
  let r = serve_report () in
  let an = Obs.Causal.analyze (Serve.Scheduler.causal_dag r) in
  check_reconciles "scheduler DAG" an;
  checkb "lease time on the path" true (cat an "run" > 0.0);
  checkb "makespan positive" true (an.Obs.Causal.an_makespan > 0.0);
  (* The DAG ends when the last lease releases, never after the
     scheduler's own makespan. *)
  checkb "within scheduler makespan" true
    (an.Obs.Causal.an_makespan <= r.Serve.Scheduler.r_makespan +. 1e-9)

(* ---------------- QCheck properties ---------------- *)

(* Random machine-consistent schedules: ops with random durations,
   resources and dependencies on earlier ops, scheduled by the same
   rule the simulator uses (start = max over resource ready and dep
   finishes).  The analyzer's invariants must hold on all of them. *)
let random_dag_gen =
  QCheck.Gen.(
    let* n = int_range 1 40 in
    let* n_res = int_range 1 4 in
    let* specs =
      list_repeat n
        (triple (int_range 0 (n_res - 1)) (float_range 0.0 2.0)
           (list_size (int_range 0 3) (int_range 0 (max 0 (n - 1)))))
    in
    return (n_res, specs))

let build_random_dag (n_res, specs) =
  let b = Obs.Causal.builder () in
  let res_ready = Array.make n_res 0.0 in
  let finishes = ref [] in
  List.iteri
    (fun i (res, dur, deps) ->
       let res = res mod n_res in
       let deps = List.filter (fun d -> d < i) deps in
       let ready =
         List.fold_left
           (fun acc d -> Float.max acc (List.nth (List.rev !finishes) d))
           res_ready.(res) deps
       in
       let finish = ready +. dur in
       ignore
         (Obs.Causal.add b ~label:"op" ~category:"compute" ~phase:""
            ~resources:[ Printf.sprintf "r%d" res ] ~ready ~start:ready
            ~finish ~fixed:0.0 ~legs:[] ~deps ~wait:"");
       res_ready.(res) <- finish;
       finishes := finish :: !finishes)
    specs;
  Obs.Causal.dag b

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"critpath <= makespan, sums exact"
      (QCheck.make random_dag_gen) (fun spec ->
          let dag = build_random_dag spec in
          let an = Obs.Causal.analyze dag in
          let total =
            List.fold_left
              (fun acc (_, t) -> acc +. t)
              0.0 an.Obs.Causal.an_by_category
          in
          let tol = 1e-9 *. Float.max 1.0 an.Obs.Causal.an_makespan in
          Obs.Causal.critical_path_length an
          <= an.Obs.Causal.an_makespan +. tol
          && Float.abs (total -. an.Obs.Causal.an_makespan) <= tol);
    QCheck.Test.make ~count:200
      ~name:"single serialized resource: critpath = makespan"
      (QCheck.make random_dag_gen) (fun (_, specs) ->
          let dag = build_random_dag (1, specs) in
          let an = Obs.Causal.analyze dag in
          let tol = 1e-9 *. Float.max 1.0 an.Obs.Causal.an_makespan in
          Float.abs
            (Obs.Causal.critical_path_length an -. an.Obs.Causal.an_makespan)
          <= tol);
    QCheck.Test.make ~count:100 ~name:"identity replay matches on barriered DAGs"
      (QCheck.make random_dag_gen) (fun spec ->
          let dag = build_random_dag spec in
          let an = Obs.Causal.analyze dag in
          (* No links in these DAGs, so replay has no backfill
             approximation to make: it must be exact. *)
          Float.abs (Obs.Causal.identity_replay dag -. an.Obs.Causal.an_makespan)
          <= 1e-9 *. Float.max 1.0 an.Obs.Causal.an_makespan);
  ]

let () =
  Alcotest.run "critpath"
    [
      ( "hand-computed",
        [
          Alcotest.test_case "serial chain" `Quick test_serial_chain;
          Alcotest.test_case "fork-join" `Quick test_fork_join;
          Alcotest.test_case "contended link" `Quick test_contended_link;
        ] );
      ( "engine",
        [
          Alcotest.test_case "apps reconcile" `Quick test_apps_reconcile;
          Alcotest.test_case "halo-tiled stencil" `Quick
            test_halo_tiled_reconciles;
        ] );
      ( "what-if",
        [ Alcotest.test_case "bandwidth what-if validates" `Quick
            test_what_if_validates ] );
      ( "bounds",
        [ Alcotest.test_case "builder bounds" `Quick test_builder_bounds ] );
      ( "json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "validator",
        [
          Alcotest.test_case "flow events" `Quick test_flow_validation;
          Alcotest.test_case "critpath lane tiling" `Quick
            test_critpath_lane_validation;
          Alcotest.test_case "traced export validates" `Quick
            test_traced_export_validates;
        ] );
      ( "regress",
        [
          Alcotest.test_case "noise-aware gate" `Quick test_regress_gate;
          Alcotest.test_case "diff artifact" `Quick test_regress_json;
        ] );
      ( "serve",
        [
          Alcotest.test_case "burn attribution" `Quick test_serve_burn;
          Alcotest.test_case "scheduler causal DAG" `Quick
            test_serve_causal_dag;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
