(* Tests for the runtime library: B-tree map (model-checked against
   Stdlib.Map), segment tracker (model-checked against a flat owner
   array) and virtual buffers on the simulated machine. *)

open Gpu_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module M = Btree.Int_map
module IM = Map.Make (Int)

(* ---------------- B-tree ---------------- *)

let test_btree_basic () =
  let t = M.create () in
  checkb "empty" true (M.is_empty t);
  M.add t 5 "five";
  M.add t 1 "one";
  M.add t 9 "nine";
  checki "size" 3 (M.size t);
  Alcotest.(check (option string)) "find 5" (Some "five") (M.find_opt t 5);
  Alcotest.(check (option string)) "find 2" None (M.find_opt t 2);
  M.add t 5 "FIVE";
  checki "size after replace" 3 (M.size t);
  Alcotest.(check (option string)) "replaced" (Some "FIVE") (M.find_opt t 5);
  Alcotest.(check (option (pair int string)))
    "floor 7" (Some (5, "FIVE")) (M.floor t 7);
  Alcotest.(check (option (pair int string)))
    "floor 5" (Some (5, "FIVE")) (M.floor t 5);
  Alcotest.(check (option (pair int string))) "floor 0" None (M.floor t 0);
  Alcotest.(check (option (pair int string)))
    "min" (Some (1, "one")) (M.min_binding t);
  Alcotest.(check (option (pair int string)))
    "max" (Some (9, "nine")) (M.max_binding t);
  M.remove t 5;
  checki "size after remove" 2 (M.size t);
  Alcotest.(check (option string)) "removed" None (M.find_opt t 5);
  ignore (M.validate t)

let test_btree_bulk () =
  (* Enough keys to force several levels of splits. *)
  let t = M.create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    M.add t ((i * 7919) mod n) ((i * 7919) mod n)
  done;
  ignore (M.validate t);
  checki "all distinct" n (M.size t);
  let sorted = M.to_list t in
  checkb "sorted" true
    (List.for_all2
       (fun (k, _) i -> k = i)
       sorted
       (List.init n (fun i -> i)));
  (* Delete every third key, validating along the way. *)
  for i = 0 to n - 1 do
    if i mod 3 = 0 then M.remove t i
  done;
  ignore (M.validate t);
  checki "size after deletes" (n - ((n + 2) / 3)) (M.size t);
  for i = 0 to n - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" i)
      (if i mod 3 = 0 then None else Some i)
      (M.find_opt t i)
  done

let test_btree_iter_from () =
  let t = M.create () in
  List.iter (fun k -> M.add t k (k * 10)) [ 2; 4; 6; 8; 10; 12 ];
  let seen = ref [] in
  M.iter_from t 5 (fun k _ ->
      seen := k :: !seen;
      k < 10);
  Alcotest.(check (list int)) "iter_from 5 until >= 10" [ 6; 8; 10 ]
    (List.rev !seen);
  let all = ref [] in
  M.iter_from t 0 (fun k _ ->
      all := k :: !all;
      true);
  Alcotest.(check (list int)) "iter_from 0" [ 2; 4; 6; 8; 10; 12 ]
    (List.rev !all)

(* Model-based test: random interleavings of add/remove/find/floor
   against Stdlib.Map. *)
type op = Add of int * int | Remove of int | Find of int | Floor of int

let gen_op =
  QCheck.Gen.(
    int_range 0 199 >>= fun k ->
    int_range 0 999 >>= fun v ->
    oneof
      [ return (Add (k, v)); return (Remove k); return (Find k);
        return (Floor k) ])

let print_op = function
  | Add (k, v) -> Printf.sprintf "Add(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Find k -> Printf.sprintf "Find %d" k
  | Floor k -> Printf.sprintf "Floor %d" k

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches Map model" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map print_op l))
       QCheck.Gen.(list_size (int_range 0 400) gen_op))
    (fun ops ->
      let t = M.create () in
      let model = ref IM.empty in
      List.for_all
        (fun op ->
          match op with
          | Add (k, v) ->
              M.add t k v;
              model := IM.add k v !model;
              true
          | Remove k ->
              M.remove t k;
              model := IM.remove k !model;
              true
          | Find k -> M.find_opt t k = IM.find_opt k !model
          | Floor k ->
              let expected = IM.fold
                  (fun k' v' acc -> if k' <= k then Some (k', v') else acc)
                  !model None
              in
              M.floor t k = expected)
        ops
      && (ignore (M.validate t);
          M.size t = IM.cardinal !model
          && M.to_list t = IM.bindings !model))

(* ---------------- Tracker ---------------- *)

let test_tracker_basic () =
  let t = Tracker.create ~len:100 ~initial_owner:0 in
  Tracker.check_invariants t;
  checki "one segment" 1 (Tracker.segment_count t);
  Tracker.write t ~start:10 ~stop:20 ~owner:1;
  Tracker.check_invariants t;
  checki "three segments" 3 (Tracker.segment_count t);
  checki "owner at 15" 1 (Tracker.owner_at t 15);
  checki "owner at 5" 0 (Tracker.owner_at t 5);
  checki "owner at 20" 0 (Tracker.owner_at t 20);
  (* Overwrite with the same owner as neighbours: everything merges
     back to one segment. *)
  Tracker.write t ~start:10 ~stop:20 ~owner:0;
  Tracker.check_invariants t;
  checki "merged back" 1 (Tracker.segment_count t)

let test_tracker_query_clip () =
  let t = Tracker.create ~len:100 ~initial_owner:0 in
  Tracker.write t ~start:30 ~stop:60 ~owner:2;
  let segs = Tracker.query t ~start:40 ~stop:80 in
  Alcotest.(check (list (triple int int int)))
    "clipped query"
    [ (40, 60, 2); (60, 80, 0) ]
    (List.map (fun s -> Tracker.(s.start, s.stop, s.owner)) segs)

let test_tracker_spanning_write () =
  let t = Tracker.create ~len:100 ~initial_owner:0 in
  Tracker.write t ~start:10 ~stop:20 ~owner:1;
  Tracker.write t ~start:30 ~stop:40 ~owner:2;
  Tracker.write t ~start:50 ~stop:60 ~owner:3;
  Tracker.check_invariants t;
  (* A write spanning several existing segments absorbs them all. *)
  Tracker.write t ~start:5 ~stop:95 ~owner:4;
  Tracker.check_invariants t;
  checki "absorbed" 3 (Tracker.segment_count t);
  checki "owner mid" 4 (Tracker.owner_at t 50);
  checki "owner head" 0 (Tracker.owner_at t 2);
  checki "owner tail" 0 (Tracker.owner_at t 97)

(* Model-based: the tracker against a flat per-element owner array. *)
let gen_tracker_op =
  QCheck.Gen.(
    int_range 0 99 >>= fun a ->
    int_range 0 99 >>= fun b ->
    int_range 0 3 >>= fun owner ->
    bool >>= fun is_write ->
    let lo = min a b and hi = max a b + 1 in
    return (is_write, lo, hi, owner))

let prop_tracker_model =
  QCheck.Test.make ~name:"tracker matches flat-array model" ~count:300
    (QCheck.make
       ~print:(fun l ->
         String.concat "; "
           (List.map
              (fun (w, lo, hi, o) ->
                Printf.sprintf "%s[%d,%d)o%d" (if w then "W" else "Q") lo hi o)
              l))
       QCheck.Gen.(list_size (int_range 1 60) gen_tracker_op))
    (fun ops ->
      let t = Tracker.create ~len:100 ~initial_owner:0 in
      let model = Array.make 100 0 in
      List.for_all
        (fun (is_write, lo, hi, owner) ->
          if is_write then begin
            Tracker.write t ~start:lo ~stop:hi ~owner;
            Array.fill model lo (hi - lo) owner;
            Tracker.check_invariants t;
            true
          end
          else
            let segs = Tracker.query t ~start:lo ~stop:hi in
            (* coverage and agreement *)
            let covered = Array.make (hi - lo) false in
            List.for_all
              (fun { Tracker.start; stop; owner } ->
                let ok = ref true in
                for i = start to stop - 1 do
                  if model.(i) <> owner then ok := false;
                  if covered.(i - lo) then ok := false;
                  covered.(i - lo) <- true
                done;
                !ok)
              segs
            && Array.for_all (fun c -> c) covered)
        ops)

(* Ownership queries never lose or double-count an element: after any
   sequence of random owned-range writes, the per-owner segment lists
   partition the index space exactly like the flat model, stay
   coalesced, and their lengths sum to the full extent. *)
let prop_tracker_ownership =
  QCheck.Test.make ~name:"tracker ownership partitions the space" ~count:300
    (QCheck.make
       ~print:(fun l ->
         String.concat "; "
           (List.map
              (fun (_, lo, hi, o) -> Printf.sprintf "W[%d,%d)o%d" lo hi o)
              l))
       QCheck.Gen.(list_size (int_range 1 60) gen_tracker_op))
    (fun ops ->
      let t = Tracker.create ~len:100 ~initial_owner:0 in
      let model = Array.make 100 0 in
      List.iter
        (fun (_, lo, hi, owner) ->
          Tracker.write t ~start:lo ~stop:hi ~owner;
          Array.fill model lo (hi - lo) owner)
        ops;
      Tracker.check_invariants t;
      let owners = [ 0; 1; 2; 3 ] in
      (* every element accounted for exactly once across owners *)
      List.fold_left (fun acc o -> acc + Tracker.owned_count t ~owner:o) 0 owners
      = 100
      && List.for_all
           (fun o ->
             let segs = Tracker.owned_by t ~owner:o in
             (* segments agree with the model and are coalesced *)
             List.for_all
               (fun { Tracker.start; stop; owner } ->
                 owner = o
                 && (let ok = ref true in
                     for i = start to stop - 1 do
                       if model.(i) <> o then ok := false
                     done;
                     !ok))
               segs
             && (let rec no_adjacent = function
                   | a :: (b :: _ as rest) ->
                     a.Tracker.stop < b.Tracker.start && no_adjacent rest
                   | _ -> true
                 in
                 no_adjacent segs)
             (* and no model element of this owner is missed *)
             && Tracker.owned_count t ~owner:o
                = Array.fold_left
                    (fun acc x -> if x = o then acc + 1 else acc)
                    0 model)
           owners)

(* ---------------- Virtual buffers ---------------- *)

let machine4 () =
  Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:4 ())

let test_vbuf_h2d_d2h_roundtrip () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:103 in
  let src = Array.init 103 (fun i -> float_of_int i *. 0.5) in
  Vbuf.h2d vb ~src:(Some src);
  Tracker.check_invariants (Vbuf.tracker vb);
  (* Linear distribution: 4 devices get ceil(103/4)=26-element chunks. *)
  checki "4 segments" 4 (Tracker.segment_count (Vbuf.tracker vb));
  checki "owner of 0" 0 (Tracker.owner_at (Vbuf.tracker vb) 0);
  checki "owner of 60" 2 (Tracker.owner_at (Vbuf.tracker vb) 60);
  checki "owner of 102" 3 (Tracker.owner_at (Vbuf.tracker vb) 102);
  let dst = Array.make 103 nan in
  Vbuf.d2h vb ~dst:(Some dst);
  checkb "roundtrip" true (src = dst)

let test_vbuf_sync_for_read () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:100 in
  let src = Array.init 100 float_of_int in
  Vbuf.h2d vb ~src:(Some src);
  (* Device 1 wants to read [0, 50): elements [0,25) live on device 0,
     [25,50) already on device 1. *)
  let n = Vbuf.sync_for_read vb ~dev:1 ~ranges:[ (0, 50) ] in
  checki "one transfer issued" 1 n;
  let inst1 = Gpusim.Buffer.data_exn (Vbuf.instance vb 1) in
  checkb "data arrived" true (inst1.(10) = 10.0);
  (* Owners unchanged by reads. *)
  checki "owner still 0" 0 (Tracker.owner_at (Vbuf.tracker vb) 10);
  (* Writes change ownership. *)
  Vbuf.update_for_write vb ~dev:1 ~ranges:[ (0, 50) ];
  checki "owner now 1" 1 (Tracker.owner_at (Vbuf.tracker vb) 10);
  Tracker.check_invariants (Vbuf.tracker vb)

let test_vbuf_gather_after_writes () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:40 in
  let src = Array.init 40 float_of_int in
  Vbuf.h2d vb ~src:(Some src);
  (* Each device overwrites its chunk with dev-id marks. *)
  for d = 0 to 3 do
    let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb d) in
    for i = d * 10 to (d * 10) + 9 do
      inst.(i) <- float_of_int (1000 + d)
    done;
    Vbuf.update_for_write vb ~dev:d ~ranges:[ (d * 10, (d * 10) + 10) ]
  done;
  let dst = Array.make 40 nan in
  Vbuf.d2h vb ~dst:(Some dst);
  checkb "gather picks owners" true
    (Array.for_all (fun v -> v >= 1000.0) dst);
  checkb "right owners" true
    (dst.(5) = 1000.0 && dst.(15) = 1001.0 && dst.(25) = 1002.0
     && dst.(35) = 1003.0)

let test_vbuf_beta_gamma () =
  (* beta: patterns on, transfers off -> tracker changes, no transfer
     stats.  gamma: nothing. *)
  let cfg_m = Gpusim.Config.test_box ~n_devices:2 () in
  let m = Gpusim.Machine.create ~functional:false cfg_m in
  let vb = Vbuf.create m ~name:"a" ~len:100 in
  let src = Array.make 100 0.0 in
  Vbuf.h2d ~cfg:Rconfig.beta vb ~src:(Some src);
  checki "beta: no h2d bytes" 0 (Gpusim.Machine.stats m).Gpusim.Machine.h2d_bytes;
  checki "beta: tracker updated" 2 (Tracker.segment_count (Vbuf.tracker vb));
  let n = Vbuf.sync_for_read ~cfg:Rconfig.beta vb ~dev:1 ~ranges:[ (0, 100) ] in
  checki "beta: stale segments counted" 1 n;
  checki "beta: no p2p bytes" 0 (Gpusim.Machine.stats m).Gpusim.Machine.p2p_bytes;
  let vb2 = Vbuf.create m ~name:"b" ~len:100 in
  Vbuf.h2d ~cfg:Rconfig.gamma vb2 ~src:(Some src);
  checki "gamma: tracker untouched" 1 (Tracker.segment_count (Vbuf.tracker vb2));
  checki "gamma: no sync work" 0
    (Vbuf.sync_for_read ~cfg:Rconfig.gamma vb2 ~dev:1 ~ranges:[ (0, 100) ])

let test_linear_chunk () =
  (* Chunks partition [0,len) and are balanced. *)
  List.iter
    (fun (len, n) ->
      let stops = ref 0 in
      for d = 0 to n - 1 do
        let a, b = Vbuf.linear_chunk ~len ~n_devices:n d in
        checkb "ordered" true (a <= b);
        if d = 0 then checki "starts at 0" 0 a;
        if d > 0 then begin
          let _, prev_b = Vbuf.linear_chunk ~len ~n_devices:n (d - 1) in
          checki "contiguous" prev_b a
        end;
        stops := b
      done;
      checki "covers len" len !stops)
    [ (100, 4); (103, 4); (7, 16); (16, 16); (1, 3) ]

let test_vbuf_host_array_validation () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"temps" ~len:10 in
  Alcotest.check_raises "h2d length mismatch"
    (Invalid_argument
       "Vbuf.h2d(temps): host array has 7 elements, buffer has 10 across 4 devices")
    (fun () -> Vbuf.h2d vb ~src:(Some (Array.make 7 0.0)));
  Vbuf.h2d vb ~src:(Some (Array.make 10 1.0));
  Alcotest.check_raises "d2h length mismatch"
    (Invalid_argument
       "Vbuf.d2h(temps): host array has 11 elements, buffer has 10 across 4 devices")
    (fun () -> Vbuf.d2h vb ~dst:(Some (Array.make 11 0.0)))

(* ---------------- Checkpoint / restore / recovery ---------------- *)

(* A functional machine with fault state attached (rates all zero:
   deterministic, but validity tracking is armed) so Vbuf maintains
   replica-freshness metadata. *)
let faulty_machine4 () =
  let m = machine4 () in
  Gpusim.Machine.inject_faults m
    (Gpusim.Faults.create { Gpusim.Faults.null_spec with seed = 1 });
  m

let test_vbuf_checkpoint_restore () =
  let m = faulty_machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:50 in
  let v1 = Array.init 50 float_of_int in
  Vbuf.h2d vb ~src:(Some v1);
  let snap = Vbuf.checkpoint vb in
  (* Overwrite with different content... *)
  Vbuf.h2d vb ~src:(Some (Array.make 50 (-1.0)));
  let mid = Array.make 50 nan in
  Vbuf.d2h vb ~dst:(Some mid);
  checkb "overwritten" true (Array.for_all (fun x -> x = -1.0) mid);
  (* ...and roll back: the snapshot content returns bit-identically. *)
  Vbuf.restore vb snap;
  let out = Array.make 50 nan in
  Vbuf.d2h vb ~dst:(Some out);
  checkb "restored" true (out = v1);
  Tracker.check_invariants (Vbuf.tracker vb);
  (* a snapshot of one buffer cannot restore another *)
  let other = Vbuf.create m ~name:"b" ~len:50 in
  checkb "wrong-buffer restore rejected" true
    (try
       Vbuf.restore other snap;
       false
     with Invalid_argument _ -> true)

let test_vbuf_recover_fresh_replica () =
  let m = faulty_machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:40 in
  let src = Array.init 40 float_of_int in
  Vbuf.h2d vb ~src:(Some src);
  (* Device 1 owns [10,20); the host holds a fresh copy of everything
     (the h2d source), so losing device 1 loses no data. *)
  Gpusim.Faults.mark_lost (Option.get (Gpusim.Machine.fault_state m)) 1;
  let lost = Vbuf.recover vb ~dev:1 ~live:[ 0; 2; 3 ] in
  checkb "nothing lost" true (lost = []);
  checkb "dead device owns nothing" true
    (Tracker.owned_by (Vbuf.tracker vb) ~owner:1 = []);
  Tracker.check_invariants (Vbuf.tracker vb);
  (* the gather still produces the full content, without device 1 *)
  let out = Array.make 40 nan in
  Vbuf.d2h vb ~dst:(Some out);
  checkb "content intact" true (out = src)

let test_vbuf_recover_lost_data () =
  let m = faulty_machine4 () in
  let vb = Vbuf.create m ~name:"a" ~len:40 in
  Vbuf.h2d vb ~src:(Some (Array.init 40 float_of_int));
  (* Device 1 writes [12,18): that range now exists nowhere else. *)
  Vbuf.update_for_write vb ~dev:1 ~ranges:[ (12, 18) ];
  Gpusim.Faults.mark_lost (Option.get (Gpusim.Machine.fault_state m)) 1;
  let lost = Vbuf.recover vb ~dev:1 ~live:[ 0; 2; 3 ] in
  checkb "exactly the written range is lost" true (lost = [ (12, 18) ]);
  (* The unrecoverable hole stays owned by the dead device: reading it
     before the replay raises instead of serving wrong data silently. *)
  checkb "only the hole remains on the dead device" true
    (List.map
       (fun s -> Tracker.(s.start, s.stop))
       (Tracker.owned_by (Vbuf.tracker vb) ~owner:1)
    = [ (12, 18) ]);
  Tracker.check_invariants (Vbuf.tracker vb)

(* Model-based virtual-buffer property: a random interleaving of
   device writes (update_for_write + direct stores into the instance)
   and reads (sync_for_read on a random device) must keep every synced
   range equal to a flat reference array. *)
type vop =
  | VWrite of int * int * int (* device, lo, hi *)
  | VRead of int * int * int (* device, lo, hi *)

let gen_vop =
  QCheck.Gen.(
    int_range 0 3 >>= fun dev ->
    int_range 0 79 >>= fun a ->
    int_range 0 79 >>= fun b ->
    bool >>= fun w ->
    let lo = min a b and hi = max a b + 1 in
    return (if w then VWrite (dev, lo, hi) else VRead (dev, lo, hi)))

let print_vop = function
  | VWrite (d, l, h) -> Printf.sprintf "W%d[%d,%d)" d l h
  | VRead (d, l, h) -> Printf.sprintf "R%d[%d,%d)" d l h

let prop_vbuf_model =
  QCheck.Test.make ~name:"vbuf coherence matches flat model" ~count:150
    (QCheck.make
       ~print:(fun l -> String.concat "; " (List.map print_vop l))
       QCheck.Gen.(list_size (int_range 1 40) gen_vop))
    (fun ops ->
      let len = 80 in
      let m =
        Gpusim.Machine.create ~functional:true
          (Gpusim.Config.test_box ~n_devices:4 ())
      in
      let vb = Vbuf.create m ~name:"v" ~len in
      let model = Array.make len 0.0 in
      let init = Array.init len float_of_int in
      Vbuf.h2d vb ~src:(Some init);
      Array.blit init 0 model 0 len;
      let stamp = ref 100.0 in
      let ok = ref true in
      List.iter
        (fun op ->
           match op with
           | VWrite (dev, lo, hi) ->
             (* the device produces new values for [lo,hi) *)
             stamp := !stamp +. 1.0;
             let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb dev) in
             for i = lo to hi - 1 do
               inst.(i) <- !stamp +. float_of_int i;
               model.(i) <- !stamp +. float_of_int i
             done;
             Vbuf.update_for_write vb ~dev ~ranges:[ (lo, hi) ];
             Tracker.check_invariants (Vbuf.tracker vb)
           | VRead (dev, lo, hi) ->
             ignore (Vbuf.sync_for_read vb ~dev ~ranges:[ (lo, hi) ]);
             let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb dev) in
             for i = lo to hi - 1 do
               if inst.(i) <> model.(i) then ok := false
             done)
        ops;
      (* final gather agrees with the model *)
      let out = Array.make len nan in
      Vbuf.d2h vb ~dst:(Some out);
      !ok && out = model)

(* Regression: segments owned by the host must be served from the host
   copy (d2h) or uploaded over PCIe (sync_for_read) — never gathered
   from a device instance, whose copy may be stale. *)
let test_vbuf_host_owned_segments () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"h" ~len:40 in
  let src = Array.init 40 float_of_int in
  Vbuf.h2d vb ~src:(Some src);
  (* Pretend the host re-produced [10,20) (e.g. a host-side loop
     between launches): mark it host-owned and corrupt every device
     instance there, so any device gather returns garbage. *)
  Tracker.write (Vbuf.tracker vb) ~start:10 ~stop:20 ~owner:Tracker.host;
  for d = 0 to 3 do
    let inst = Gpusim.Buffer.data_exn (Vbuf.instance vb d) in
    for i = 10 to 19 do
      inst.(i) <- -1.0
    done
  done;
  let dst = Array.make 40 nan in
  Vbuf.d2h vb ~dst:(Some dst);
  checkb "d2h serves host-owned from host copy" true (dst = src);
  let p2p_before = (Gpusim.Machine.stats m).Gpusim.Machine.p2p_bytes in
  let h2d_before = (Gpusim.Machine.stats m).Gpusim.Machine.h2d_bytes in
  let n = Vbuf.sync_for_read vb ~dev:2 ~ranges:[ (10, 20) ] in
  checki "one upload" 1 n;
  let inst2 = Gpusim.Buffer.data_exn (Vbuf.instance vb 2) in
  checkb "sync uploads host data" true
    (Array.for_all (fun i -> inst2.(i) = src.(i)) (Array.init 10 (fun i -> i + 10)));
  let stats = Gpusim.Machine.stats m in
  checki "no peer traffic" p2p_before stats.Gpusim.Machine.p2p_bytes;
  checkb "went over PCIe" true (stats.Gpusim.Machine.h2d_bytes > h2d_before);
  (* Batch mode cannot pack host-owned segments into a peer copy. *)
  let n = Vbuf.sync_for_read ~batch:true vb ~dev:3 ~ranges:[ (10, 20) ] in
  checki "batch uploads individually" 1 n;
  let inst3 = Gpusim.Buffer.data_exn (Vbuf.instance vb 3) in
  checkb "batch data correct" true (inst3.(15) = 15.0)

(* Regression: enumerator ranges over-approximate, so both ends must be
   clamped to the buffer and empty/out-of-bounds ranges dropped (the
   tracker rejects them with Invalid_argument). *)
let test_vbuf_range_clamping () =
  let m = machine4 () in
  let vb = Vbuf.create m ~name:"c" ~len:100 in
  let src = Array.init 100 float_of_int in
  Vbuf.h2d vb ~src:(Some src);
  let wild = [ (-5, 3); (95, 200); (150, 160); (4, 4) ] in
  let n = Vbuf.sync_for_read vb ~dev:1 ~ranges:wild in
  checkb "some transfers" true (n > 0);
  let inst1 = Gpusim.Buffer.data_exn (Vbuf.instance vb 1) in
  checkb "head synced" true (inst1.(0) = 0.0 && inst1.(2) = 2.0);
  checkb "tail synced" true (inst1.(95) = 95.0 && inst1.(99) = 99.0);
  Vbuf.update_for_write vb ~dev:1 ~ranges:wild;
  Tracker.check_invariants (Vbuf.tracker vb);
  checki "head owned" 1 (Tracker.owner_at (Vbuf.tracker vb) 0);
  checki "tail owned" 1 (Tracker.owner_at (Vbuf.tracker vb) 99);
  checki "middle untouched" 2 (Tracker.owner_at (Vbuf.tracker vb) 60)

(* Tracker op accounting increases monotonically and reset works. *)
let test_tracker_ops_accounting () =
  let t = Tracker.create ~len:100 ~initial_owner:0 in
  let o0 = Tracker.ops t in
  ignore (Tracker.query t ~start:0 ~stop:100);
  checkb "query counted" true (Tracker.ops t > o0);
  Tracker.reset_ops t;
  checki "reset" 0 (Tracker.ops t);
  Tracker.write t ~start:10 ~stop:20 ~owner:1;
  checkb "write counted" true (Tracker.ops t > 0)

let test_rconfig () =
  checkb "alpha valid" true (Rconfig.is_valid Rconfig.alpha);
  checkb "beta valid" true (Rconfig.is_valid Rconfig.beta);
  checkb "gamma valid" true (Rconfig.is_valid Rconfig.gamma);
  checkb "transfers without patterns invalid" false
    (Rconfig.is_valid { Rconfig.transfers = true; patterns = false });
  Alcotest.(check string) "names" "alpha,beta,gamma"
    (String.concat ","
       (List.map Rconfig.name [ Rconfig.alpha; Rconfig.beta; Rconfig.gamma ]))

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "runtime"
    [
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "bulk insert/delete" `Quick test_btree_bulk;
          Alcotest.test_case "iter_from" `Quick test_btree_iter_from;
          qtest prop_btree_model;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "basic" `Quick test_tracker_basic;
          Alcotest.test_case "query clipping" `Quick test_tracker_query_clip;
          Alcotest.test_case "spanning write" `Quick test_tracker_spanning_write;
          qtest prop_tracker_model;
          qtest prop_tracker_ownership;
        ] );
      ( "vbuf",
        [
          Alcotest.test_case "h2d/d2h roundtrip" `Quick test_vbuf_h2d_d2h_roundtrip;
          Alcotest.test_case "sync for read" `Quick test_vbuf_sync_for_read;
          Alcotest.test_case "gather after writes" `Quick test_vbuf_gather_after_writes;
          Alcotest.test_case "beta/gamma configs" `Quick test_vbuf_beta_gamma;
          Alcotest.test_case "linear chunks" `Quick test_linear_chunk;
          Alcotest.test_case "host-owned segments" `Quick test_vbuf_host_owned_segments;
          Alcotest.test_case "range clamping" `Quick test_vbuf_range_clamping;
          Alcotest.test_case "tracker ops accounting" `Quick test_tracker_ops_accounting;
          Alcotest.test_case "rconfig" `Quick test_rconfig;
          qtest prop_vbuf_model;
        ] );
      ( "fault-recovery",
        [
          Alcotest.test_case "host-array validation" `Quick
            test_vbuf_host_array_validation;
          Alcotest.test_case "checkpoint/restore" `Quick
            test_vbuf_checkpoint_restore;
          Alcotest.test_case "recover via fresh replicas" `Quick
            test_vbuf_recover_fresh_replica;
          Alcotest.test_case "recover reports lost data" `Quick
            test_vbuf_recover_lost_data;
        ] );
    ]
