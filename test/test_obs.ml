(* Tests for the observability layer: ring buffer bounds, JSON
   round-trips on pathological strings, span nesting, the metrics
   registry, timeline idle/utilization accessors, byte-matrix
   reconciliation, Chrome-trace validity and a golden trace of a small
   fig6-style run. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf msg a b = Alcotest.check (Alcotest.float 1e-12) msg a b

(* ---------------- Ring ---------------- *)

let test_ring_bounds () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
        ignore (Obs.Ring.create ~capacity:0));
  let r = Obs.Ring.create ~capacity:3 in
  checki "empty" 0 (Obs.Ring.length r);
  for i = 1 to 3 do
    Obs.Ring.push r i
  done;
  checki "full" 3 (Obs.Ring.length r);
  checki "no drops yet" 0 (Obs.Ring.dropped r);
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] (Obs.Ring.to_list r);
  for i = 4 to 10 do
    Obs.Ring.push r i
  done;
  checki "still full" 3 (Obs.Ring.length r);
  checki "drops counted" 7 (Obs.Ring.dropped r);
  Alcotest.(check (list int)) "newest survive" [ 8; 9; 10 ] (Obs.Ring.to_list r);
  Obs.Ring.clear r;
  checki "cleared" 0 (Obs.Ring.length r);
  checki "drop count cleared" 0 (Obs.Ring.dropped r);
  checki "capacity unchanged" 3 (Obs.Ring.capacity r)

(* ---------------- JSON ---------------- *)

(* Every control character U+0000-U+001F, plus the characters with
   short escapes and some multi-byte UTF-8. *)
let pathological =
  let b = Buffer.create 64 in
  for c = 0 to 0x1f do
    Buffer.add_char b (Char.chr c)
  done;
  Buffer.add_string b "\"\\/ plain text \xc3\xa9\xe2\x82\xac";
  Buffer.contents b

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str pathological);
        (pathological, Obs.Json.Bool true);
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5e-3);
        ("l", Obs.Json.List [ Obs.Json.Null; Obs.Json.Str "" ]);
      ]
  in
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
   | Ok j' -> checkb "round-trips" true (j = j')
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (* the emitter must never produce raw control characters *)
  String.iter
    (fun c -> checkb "no raw control chars" false (Char.code c < 0x20 && c <> '\n'))
    s

let test_json_nonfinite () =
  checks "nan is null" "null\n" (Obs.Json.to_string (Obs.Json.Float nan));
  checks "inf is null" "null\n" (Obs.Json.to_string (Obs.Json.Float infinity))

let test_json_rejects () =
  let bad = [ "{"; "[1,]"; "\"\x01\""; "\"\\ud800\""; "1 2"; "tru" ] in
  List.iter
    (fun s ->
       match Obs.Json.parse s with
       | Ok _ -> Alcotest.failf "parser accepted %S" s
       | Error _ -> ())
    bad;
  (* escaped control characters and surrogate pairs are fine *)
  (match Obs.Json.parse "\"\\u0000\\ud83d\\ude00\"" with
   | Ok (Obs.Json.Str s) ->
     checks "surrogate pair decoded" "\x00\xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "escapes rejected")

(* ---------------- Spans ---------------- *)

let test_span_nesting () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) @@ fun () ->
  let v =
    Obs.Span.with_span ~cat:"t" "outer" (fun () ->
        Obs.Span.with_span ~cat:"t" "inner" (fun () -> ());
        17)
  in
  checki "value through" 17 v;
  (try
     Obs.Span.with_span ~cat:"t" "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Obs.Span.records () with
  | [ inner; outer; raiser ] ->
    checks "inner first (completion order)" "inner" inner.Obs.Span.sp_name;
    checki "inner depth" 1 inner.Obs.Span.sp_depth;
    checki "inner parent" outer.Obs.Span.sp_id inner.Obs.Span.sp_parent;
    checki "outer is root" (-1) outer.Obs.Span.sp_parent;
    checkb "sim nan without sampler" true
      (Float.is_nan outer.Obs.Span.sp_sim_start);
    checks "raising spans recorded" "raiser" raiser.Obs.Span.sp_name;
    checki "stack unwound" 0 raiser.Obs.Span.sp_depth
  | l -> Alcotest.failf "expected 3 records, got %d" (List.length l)

let test_span_disabled () =
  Obs.Span.reset ();
  Obs.Span.with_span "off" (fun () -> ());
  checki "nothing recorded when disabled" 0 (List.length (Obs.Span.records ()))

(* ---------------- Metrics ---------------- *)

let test_metrics () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr r "c";
  Obs.Metrics.incr r ~by:4 "c";
  Obs.Metrics.set r "g" 2.5;
  Obs.Metrics.set r "g" 7.5;
  Obs.Metrics.observe r "h" 1.0;
  Obs.Metrics.observe r "h" 3.0;
  Obs.Metrics.incr r ~labels:[ ("dst", "1"); ("src", "0") ] ~by:8 "pair";
  let v name = Option.map Obs.Metrics.value (Obs.Metrics.find r name) in
  checkb "counter sums" true (v "c" = Some 5.0);
  checkb "gauge keeps last" true (v "g" = Some 7.5);
  checkb "histogram sums" true (v "h" = Some 4.0);
  (match Obs.Metrics.find r "h" with
   | Some s ->
     checki "histogram count" 2 s.Obs.Metrics.m_count;
     checkf "histogram min" 1.0 s.Obs.Metrics.m_min;
     checkf "histogram max" 3.0 s.Obs.Metrics.m_max
   | None -> Alcotest.fail "histogram lost");
  (* labels are canonicalized by sorting *)
  (match Obs.Metrics.find r ~labels:[ ("src", "0"); ("dst", "1") ] "pair" with
   | Some s -> checkf "labelled series found" 8.0 (Obs.Metrics.value s)
   | None -> Alcotest.fail "label order must not matter");
  checki "four series" 4 (List.length (Obs.Metrics.snapshot r))

(* ---------------- Timeline idle / utilization ---------------- *)

let test_timeline_idle_util () =
  let t = Gpusim.Timeline.create "t" in
  (* busy [0,1] and [5,5.5]: 1.5 busy seconds *)
  ignore (Gpusim.Timeline.schedule t ~after:0.0 ~duration:1.0 ~category:"a");
  ignore (Gpusim.Timeline.schedule t ~after:5.0 ~duration:0.5 ~category:"b");
  checkf "idle in 10s span" 8.5 (Gpusim.Timeline.idle_in t ~span:10.0);
  checkf "utilization of 10s span" 0.15 (Gpusim.Timeline.utilization t ~span:10.0);
  (* a span shorter than the busy time clamps *)
  checkf "idle clamped at 0" 0.0 (Gpusim.Timeline.idle_in t ~span:1.0);
  checkf "utilization clamped at 1" 1.0 (Gpusim.Timeline.utilization t ~span:1.0);
  checkf "empty span" 0.0 (Gpusim.Timeline.utilization t ~span:0.0)

(* ---------------- Machine byte matrix ---------------- *)

let quiet_cfg n =
  {
    (Gpusim.Config.k80_box ~n_devices:n ()) with
    Gpusim.Config.transfer_latency = 0.0;
    launch_latency = 0.0;
    sync_device_seconds = 0.0;
    pcie_bandwidth = 1e9;
    p2p_bandwidth = 1e9;
    fabric_bandwidth = 2e9;
    autoboost_derate = 0.0;
    elem_bytes = 4;
  }

let test_byte_matrix_reconciles () =
  let open Gpusim in
  let m = Machine.create (quiet_cfg 2) in
  let b0 = Machine.alloc m ~device:0 ~len:1000 in
  let b1 = Machine.alloc m ~device:1 ~len:1000 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b0 ~dst_off:0 ~len:1000;
  Machine.d2h m ~src:b0 ~src_off:0 ~dst:[||] ~dst_off:0 ~len:250;
  Machine.p2p m ~src:b0 ~src_off:0 ~dst:b1 ~dst_off:0 ~len:500;
  Machine.p2p_multi m ~src:b1 ~dst:b0 ~segments:[ (0, 0, 100); (200, 200, 50) ];
  Machine.synchronize m;
  let stats = Machine.stats m in
  let h2d, d2h, p2p =
    List.fold_left
      (fun (h, d, p) ((src, dst), bytes) ->
         if src < 0 then (h + bytes, d, p)
         else if dst < 0 then (h, d + bytes, p)
         else (h, d, p + bytes))
      (0, 0, 0) (Machine.byte_matrix m)
  in
  checki "h2d reconciles" stats.Machine.h2d_bytes h2d;
  checki "d2h reconciles" stats.Machine.d2h_bytes d2h;
  checki "p2p reconciles" stats.Machine.p2p_bytes p2p;
  checki "pair 0->1" (500 * 4)
    (List.assoc (0, 1) (Machine.byte_matrix m));
  checki "pair 1->0" (150 * 4)
    (List.assoc (1, 0) (Machine.byte_matrix m))

(* ---------------- A small fig6-style run ---------------- *)

(* Compile and run vecadd on a 2-GPU performance machine with tracing
   on — everything simulated, hence deterministic. *)
let fig6_machine () =
  let prog =
    Apps.Workloads.program ~iterations:2 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let a =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:2 ())
  in
  Gpusim.Machine.enable_trace m;
  let r = Mekong.Multi_gpu.run ~machine:m a.Mekong.Toolchain.exe in
  (m, r)

let test_trace_valid_and_lanes () =
  let m, _ = fig6_machine () in
  let s = Gpusim.Trace_export.to_string m in
  (match Obs.Chrome_trace.validate_string s with
   | Ok () -> ()
   | Error e -> Alcotest.failf "invalid trace: %s" e);
  let j = Result.get_ok (Obs.Json.parse s) in
  let lanes = Obs.Chrome_trace.lanes j in
  (* one lane per engine: each (pid, tid) appears once in the sorted
     list, and every timing lane maps to a known engine *)
  let expected (pid, tid) =
    (pid = 0 && tid <= 2) (* host timeline / spans / faults *)
    || (pid = 1 && tid = 0) (* fabric *)
    || (pid >= 2 && pid <= 3 && tid <= 2)
    (* 2 devices x (compute, copy_in, copy_out) *)
  in
  List.iter
    (fun lane -> checkb "lane maps to an engine" true (expected lane))
    lanes;
  let rec no_dups = function
    | a :: (b :: _ as rest) -> a <> b && no_dups rest
    | _ -> true
  in
  checkb "lanes are distinct" true (no_dups lanes);
  checkb "both compute lanes present" true
    (List.mem (2, 0) lanes && List.mem (3, 0) lanes)

let test_profile_reconciles () =
  let m, r = fig6_machine () in
  let report = Mekong.Profile.collect ~result:r m in
  let stats = Gpusim.Machine.stats m in
  let h2d, d2h, p2p = Obs.Report.matrix_totals report in
  checki "report h2d = stats" stats.Gpusim.Machine.h2d_bytes h2d;
  checki "report d2h = stats" stats.Gpusim.Machine.d2h_bytes d2h;
  checki "report p2p = stats" stats.Gpusim.Machine.p2p_bytes p2p;
  checki "one row per device" 2 (List.length report.Obs.Report.rp_devices);
  List.iter
    (fun (row : Obs.Report.device_row) ->
       checkb "utilization in [0,1]" true
         (row.Obs.Report.dr_util >= 0.0 && row.Obs.Report.dr_util <= 1.0);
       checkf "idle + compute consistent" report.Obs.Report.rp_elapsed
         (row.Obs.Report.dr_idle +. row.Obs.Report.dr_compute))
    report.Obs.Report.rp_devices;
  (* the report must itself serialize to valid JSON *)
  match Obs.Json.parse (Obs.Json.to_string (Obs.Report.to_json report)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON invalid: %s" e

let test_trace_ring_bounded () =
  let prog =
    Apps.Workloads.program ~iterations:2 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let a =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:2 ())
  in
  Gpusim.Machine.enable_trace ~capacity:4 m;
  ignore (Mekong.Multi_gpu.run ~machine:m a.Mekong.Toolchain.exe);
  let tr = Gpusim.Machine.trace m in
  checki "trace bounded" 4 (List.length tr);
  checkb "drops counted" true (Gpusim.Machine.trace_dropped m > 0);
  (* the surviving suffix is still chronological *)
  let rec mono = function
    | (a : Gpusim.Machine.event) :: (b :: _ as rest) ->
      a.Gpusim.Machine.ev_start <= b.Gpusim.Machine.ev_start && mono rest
    | _ -> true
  in
  checkb "chronological" true (mono tr)

(* ---------------- Golden trace ---------------- *)

(* The exact exporter output for the deterministic fig6-style run
   above (spans excluded: they carry wall-clock times).  Regenerate
   after an intentional schema change with:

     OBS_GOLDEN_WRITE=$PWD/test/golden_trace.json \
       dune exec test/test_obs.exe -- test golden *)
let test_golden_trace () =
  let m, _ = fig6_machine () in
  let s = Gpusim.Trace_export.to_string m in
  match Sys.getenv_opt "OBS_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    output_string oc s;
    close_out oc
  | None ->
    let ic = open_in_bin "golden_trace.json" in
    let golden =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    checks "matches golden trace" golden s

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [ Alcotest.test_case "bounds and drops" `Quick test_ring_bounds ] );
      ( "json",
        [
          Alcotest.test_case "pathological round-trip" `Quick
            test_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "parser rejects garbage" `Quick test_json_rejects;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled is silent" `Quick test_span_disabled;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics ]);
      ( "timeline",
        [ Alcotest.test_case "idle and utilization" `Quick test_timeline_idle_util ] );
      ( "machine",
        [
          Alcotest.test_case "byte matrix reconciles" `Quick
            test_byte_matrix_reconciles;
          Alcotest.test_case "trace ring bounded" `Quick test_trace_ring_bounded;
        ] );
      ( "trace",
        [
          Alcotest.test_case "valid with one lane per engine" `Quick
            test_trace_valid_and_lanes;
          Alcotest.test_case "golden" `Quick test_golden_trace;
        ] );
      ( "profile",
        [
          Alcotest.test_case "reconciles with stats" `Quick
            test_profile_reconciles;
        ] );
    ]
