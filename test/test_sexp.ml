(* Tests for the s-expression reader/printer used by the on-disk
   application model. *)

open Mekong

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let roundtrip x = Sexp.to_string (Sexp.parse (Sexp.to_string x))

let test_print () =
  checks "atom" "foo" (Sexp.to_string (Sexp.atom "foo"));
  checks "int" "-42" (Sexp.to_string (Sexp.int (-42)));
  checks "list" "(a b (c 1))"
    (Sexp.to_string
       Sexp.(list [ atom "a"; atom "b"; list [ atom "c"; int 1 ] ]));
  checks "empty list" "()" (Sexp.to_string (Sexp.list []));
  checks "quoted" "\"a b\"" (Sexp.to_string (Sexp.atom "a b"));
  checks "escapes" "\"a\\\"b\"" (Sexp.to_string (Sexp.atom "a\"b"))

let test_parse () =
  (match Sexp.parse "(hello (world 42))" with
   | Sexp.List [ Sexp.Atom "hello"; Sexp.List [ Sexp.Atom "world"; n ] ] ->
     Alcotest.(check int) "nested int" 42 (Sexp.as_int n)
   | _ -> Alcotest.fail "bad parse");
  (match Sexp.parse "  atom  " with
   | Sexp.Atom "atom" -> ()
   | _ -> Alcotest.fail "atom with spaces");
  (match Sexp.parse "(a ; comment\n b)" with
   | Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ] -> ()
   | _ -> Alcotest.fail "comment skipping");
  (match Sexp.parse "\"with space\"" with
   | Sexp.Atom "with space" -> ()
   | _ -> Alcotest.fail "quoted atom")

let test_parse_errors () =
  let fails s =
    match Sexp.parse s with
    | exception Sexp.Parse_error _ -> true
    | _ -> false
  in
  checkb "unterminated list" true (fails "(a b");
  checkb "stray paren" true (fails ")");
  checkb "trailing garbage" true (fails "(a) b");
  checkb "unterminated string" true (fails "\"abc");
  checkb "empty input" true (fails "")

let test_parse_many () =
  let forms = Sexp.parse_many "(a 1) (b 2)\n(c 3)" in
  Alcotest.(check int) "three forms" 3 (List.length forms)

let test_fields () =
  let x = Sexp.parse "((name foo) (dims 1 2 3) (flag))" in
  checks "field name" "foo" (Sexp.as_atom (List.hd (Sexp.field "name" x)));
  Alcotest.(check int) "field dims" 3 (List.length (Sexp.field "dims" x));
  checkb "field_opt present" true (Sexp.field_opt "flag" x <> None);
  checkb "field_opt absent" true (Sexp.field_opt "nope" x = None);
  checkb "field missing raises" true
    (match Sexp.field "nope" x with
     | exception Sexp.Parse_error _ -> true
     | _ -> false)

let gen_sexp =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          map (fun s -> Sexp.Atom s)
            (oneof
               [ string_size ~gen:(char_range 'a' 'z') (int_range 1 8);
                 return "with space";
                 return "quote\"inside";
                 map string_of_int int ])
        else
          frequency
            [ (1, map (fun s -> Sexp.Atom s)
                 (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)));
              (2, map (fun l -> Sexp.List l)
                 (list_size (int_range 0 4) (self (n / 2)))) ]))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make ~print:Sexp.to_string gen_sexp)
    (fun x -> Sexp.parse (Sexp.to_string x) = x)

let prop_roundtrip_stable =
  QCheck.Test.make ~name:"roundtrip is stable" ~count:100
    (QCheck.make ~print:Sexp.to_string gen_sexp)
    (fun x -> roundtrip x = Sexp.to_string x)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "sexp"
    [
      ( "sexp",
        [
          Alcotest.test_case "printing" `Quick test_print;
          Alcotest.test_case "parsing" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parse_many" `Quick test_parse_many;
          Alcotest.test_case "fields" `Quick test_fields;
          qtest prop_roundtrip;
          qtest prop_roundtrip_stable;
        ] );
    ]
