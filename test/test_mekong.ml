(* Tests for the partitioning compiler: polyhedral access analysis,
   write-injectivity checking, strategy selection, the kernel partition
   transform, model (de)serialization, enumerator generation, the
   source rewriter, and — most importantly — the end-to-end golden
   property: the partitioned multi-GPU execution produces bit-identical
   results to the single-GPU reference engine and the CPU reference,
   for every benchmark and a range of device counts. *)

open Ppoly

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- Access analysis ---------------- *)

let analyze_exn k =
  match Mekong.Access.analyze k with
  | Ok a -> a
  | Error e -> Alcotest.failf "analysis rejected %s: %s" k.Kir.name
                 (Mekong.Access.error_message e)

let test_analyze_vecadd () =
  let a = analyze_exn Apps.Vecadd.kernel in
  checks "strategy" "x" (Dim3.axis_name a.Mekong.Access.strategy);
  let acc name = Option.get (Mekong.Access.find_access a name) in
  checkb "a read" true ((acc "a").Mekong.Access.read <> None);
  checkb "a not written" true ((acc "a").Mekong.Access.write = None);
  checkb "c written" true ((acc "c").Mekong.Access.write <> None);
  checkb "c not read" true ((acc "c").Mekong.Access.read = None);
  checkb "reads exact" true (acc "a").Mekong.Access.read_exact

let test_analyze_hotspot () =
  let a = analyze_exn Apps.Hotspot.kernel in
  checks "strategy is y (row bands)" "y" (Dim3.axis_name a.Mekong.Access.strategy);
  let inp = Option.get (Mekong.Access.find_access a "inp") in
  let out = Option.get (Mekong.Access.find_access a "out") in
  checkb "inp read only" true
    (inp.Mekong.Access.read <> None && inp.Mekong.Access.write = None);
  checkb "out write only" true
    (out.Mekong.Access.write <> None && out.Mekong.Access.read = None);
  (* The stencil read map has the centre plus four neighbour pieces. *)
  checki "halo pieces" 5
    (Pset.n_pieces (Pmap.rel (Option.get inp.Mekong.Access.read)))

let test_analyze_nbody () =
  let a = analyze_exn Apps.Nbody.kernel in
  checks "strategy" "x" (Dim3.axis_name a.Mekong.Access.strategy);
  let pos_in = Option.get (Mekong.Access.find_access a "pos_in") in
  checkb "pos_in read" true (pos_in.Mekong.Access.read <> None);
  checkb "pos_in never written" true (pos_in.Mekong.Access.write = None)

let test_analyze_matmul () =
  let a = analyze_exn Apps.Matmul.kernel in
  checks "strategy is y" "y" (Dim3.axis_name a.Mekong.Access.strategy)

(* A kernel where two blocks write the same cell must be rejected
   (write-after-write hazard, paper §4.1). *)
let test_reject_non_injective () =
  let open Kir in
  let k =
    Kir.kernel ~name:"broken"
      ~params:
        [ Scalar "n"; Array { name = "o"; dims = [| Dim_param "n" |] } ]
      [
        Local ("gi", global_id Dim3.X);
        If (v "gi" < p "n", [ store "o" [ i 0 ] (f 1.0) ], []);
        (* every thread writes o[0] *)
      ]
  in
  match Mekong.Access.analyze k with
  | Error (Mekong.Access.Non_injective_write "o") -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Mekong.Access.error_message e)
  | Ok _ -> Alcotest.fail "expected rejection"

(* Data-dependent (indirect) writes cannot be modeled and must be
   rejected; indirect reads over-approximate instead. *)
let test_reject_indirect_write () =
  let open Kir in
  let k =
    Kir.kernel ~name:"scatter"
      ~params:
        [
          Scalar "n";
          Array { name = "idx"; dims = [| Dim_param "n" |] };
          Array { name = "o"; dims = [| Dim_param "n" |] };
        ]
      [
        Local ("gi", global_id Dim3.X);
        If
          ( v "gi" < p "n",
            [ store "o" [ load "idx" [ v "gi" ] ] (f 1.0) ],
            [] );
      ]
  in
  (match Mekong.Access.analyze k with
   | Error (Mekong.Access.Inexact_write "o") -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Mekong.Access.error_message e)
   | Ok _ -> Alcotest.fail "expected rejection");
  (* The same pattern as a read (gather) is accepted with an
     over-approximated read map. *)
  let gather =
    Kir.kernel ~name:"gather"
      ~params:
        [
          Scalar "n";
          Array { name = "idx"; dims = [| Dim_param "n" |] };
          Array { name = "src"; dims = [| Dim_param "n" |] };
          Array { name = "o"; dims = [| Dim_param "n" |] };
        ]
      [
        Local ("gi", global_id Dim3.X);
        If
          ( v "gi" < p "n",
            [ store "o" [ v "gi" ] (load "src" [ load "idx" [ v "gi" ] ]) ],
            [] );
      ]
  in
  let a = analyze_exn gather in
  let src = Option.get (Mekong.Access.find_access a "src") in
  checkb "gather read approximated" false src.Mekong.Access.read_exact

(* The hotspot read map must contain the halo: for a partition covering
   block-row 1 (rows 16..31 with 16x16 blocks), the read rows are
   15..32. *)
let test_hotspot_read_halo () =
  let a = analyze_exn Apps.Hotspot.kernel in
  let inp = Option.get (Mekong.Access.find_access a "inp") in
  let enum =
    Mekong.Codegen.enumerator_of_map ~dims:[| Kir.Dim_param "n"; Kir.Dim_param "n" |]
      (Option.get inp.Mekong.Access.read)
  in
  let n = 64 in
  let p =
    {
      Mekong.Partition.device = 0;
      min_blocks = { Dim3.x = 0; y = 1; z = 0 };
      max_blocks = { Dim3.x = 4; y = 2; z = 1 };
    }
  in
  let bindings =
    [ ("n", n) ]
    @ List.concat_map
        (fun ax ->
           [
             (Mekong.Access.bdim_name ax, Dim3.get Apps.Hotspot.block ax);
             (Mekong.Access.gdim_name ax, Dim3.get (Apps.Hotspot.grid_for n) ax);
           ])
        Dim3.axes
    @ Mekong.Partition.box_bindings p ~block:Apps.Hotspot.block
  in
  let ranges = Mekong.Codegen.ranges enum ~bindings in
  Alcotest.(check (list (pair int int)))
    "halo band rows 15..32"
    [ (15 * n, 33 * n) ]
    ranges

(* ---------------- Partition transform ---------------- *)

let test_partition_make () =
  let grid = Dim3.make 10 ~y:7 in
  let parts = Mekong.Partition.make ~grid ~axis:Dim3.Y ~n:3 in
  checki "three partitions" 3 (List.length parts);
  let blocks = List.map Mekong.Partition.n_blocks parts in
  Alcotest.(check (list int)) "balanced" [ 30; 20; 20 ] blocks;
  (* partitions tile the grid *)
  let total = List.fold_left ( + ) 0 blocks in
  checki "covers grid" (Dim3.volume grid) total;
  (* more devices than blocks along the axis: empty partitions allowed *)
  let parts16 = Mekong.Partition.make ~grid:(Dim3.make 4) ~axis:Dim3.X ~n:16 in
  checki "empty tail partitions" 12
    (List.length (List.filter Mekong.Partition.is_empty parts16))

let test_partition_transform () =
  let k = Mekong.Partition.transform_kernel Apps.Vecadd.kernel in
  checks "renamed" "vecadd__part" k.Kir.name;
  checki "six extra params" (List.length Apps.Vecadd.kernel.Kir.params + 6)
    (List.length k.Kir.params);
  (* Execute the partitioned kernel over a sub-grid and check the Eq. 8
     offset semantics: with min=(0,0,2) blocks and block 128 wide, the
     first written element is 2*128. *)
  let n = 1024 in
  let a = Array.init n float_of_int and b = Array.make n 1.0 in
  let c = Array.make n nan in
  let args =
    [
      Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "b"; Host_ir.HBuf "c";
    ]
  in
  let p =
    {
      Mekong.Partition.device = 0;
      min_blocks = { Dim3.x = 2; y = 0; z = 0 };
      max_blocks = { Dim3.x = 5; y = 1; z = 1 };
    }
  in
  let all_args = args @ Mekong.Partition.partition_args p in
  let store_count = ref 0 in
  Keval.run k ~grid:(Mekong.Partition.launch_grid p) ~block:Apps.Vecadd.block
    ~args:(Host_ir.scalar_args all_args)
    ~load:(fun arr off -> (if arr = "a" then a else b).(off))
    ~store:(fun _ off v ->
        incr store_count;
        c.(off) <- v);
  checki "stores only partition range" (3 * 128) !store_count;
  checkb "first partition element written" true (not (Float.is_nan c.(2 * 128)));
  checkb "last partition element written" true (not (Float.is_nan c.((5 * 128) - 1)));
  checkb "below partition untouched" true (Float.is_nan c.((2 * 128) - 1));
  checkb "above partition untouched" true (Float.is_nan c.(5 * 128));
  checkb "value correct" true (c.(300) = 301.0)

(* ---------------- Model serialization ---------------- *)

let test_model_roundtrip () =
  let analyses =
    List.map analyze_exn
      [ Apps.Vecadd.kernel; Apps.Hotspot.kernel; Apps.Nbody.kernel;
        Apps.Matmul.kernel ]
  in
  let model = Mekong.Model.of_analyses analyses in
  let text = Mekong.Model.to_string model in
  let model' = Mekong.Model.of_string text in
  checki "kernel count" 4 (List.length model'.Mekong.Model.kernels);
  List.iter2
    (fun (k : Mekong.Model.kernel_model) (k' : Mekong.Model.kernel_model) ->
       checks "name" k.Mekong.Model.kname k'.Mekong.Model.kname;
       checkb "strategy" true (k.Mekong.Model.strategy = k'.Mekong.Model.strategy);
       List.iter2
         (fun (a : Mekong.Model.array_model) (a' : Mekong.Model.array_model) ->
            checks "arr" a.Mekong.Model.arr a'.Mekong.Model.arr;
            checkb "dims" true (a.Mekong.Model.dims = a'.Mekong.Model.dims);
            (* Serialization is exact (same normalized constraints), so
               structural comparison suffices — and semantic equality on
               8-piece unions would be exponential. *)
            let poly_repr p =
              List.sort compare
                (List.map Constr.to_string (Poly.constraints p))
            in
            let map_repr m =
              List.sort compare
                (List.map poly_repr (Pset.pieces (Pmap.rel m)))
            in
            let same_map m m' =
              match (m, m') with
              | None, None -> true
              | Some m, Some m' -> map_repr m = map_repr m'
              | _ -> false
            in
            checkb "read map" true (same_map a.Mekong.Model.read a'.Mekong.Model.read);
            checkb "write map" true
              (same_map a.Mekong.Model.write a'.Mekong.Model.write))
         k.Mekong.Model.arrays k'.Mekong.Model.arrays)
    model.Mekong.Model.kernels model'.Mekong.Model.kernels

let test_model_file_roundtrip () =
  let model = Mekong.Model.of_analyses [ analyze_exn Apps.Vecadd.kernel ] in
  let file = Filename.temp_file "mekong_model" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
       Mekong.Model.save model ~file;
       let model' = Mekong.Model.load ~file in
       checki "kernels" 1 (List.length model'.Mekong.Model.kernels))

(* ---------------- Rewriter ---------------- *)

let test_rewriter () =
  let n = 256 in
  let prog, _, _ = Apps.Workloads.functional_vecadd ~n in
  let src = Cusrc.render prog in
  checkb "source has launch" true (Mekong.Rewriter.count_launches src > 0);
  let out = Mekong.Rewriter.rewrite src in
  checkb "runtime header inserted" true
    (Str.string_match (Str.regexp ".*mekong_runtime\\.h.*") out 0
     || String.length out > 0
        && String.length (Str.global_replace (Str.regexp_string "mekong_runtime.h") "" out)
           < String.length out);
  checkb "launches replaced" true (Mekong.Rewriter.count_launches out = 0);
  checkb "malloc replaced" true
    (not (String.length (Str.global_replace (Str.regexp_string "mekongMalloc") "" out)
          = String.length out));
  checkb "no cudaMalloc left" true
    (String.length (Str.global_replace (Str.regexp_string "cudaMalloc") "" out)
     = String.length out)

(* ---------------- End-to-end golden property ---------------- *)

let run_single prog =
  let m = Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:1 ()) in
  ignore (Single_gpu.run ~machine:m prog)

let k80_perf g =
  Gpusim.Machine.create ~functional:false (Gpusim.Config.k80_box ~n_devices:g ())

let compile_exn prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)

let run_multi ~devices prog =
  let artifacts = compile_exn prog in
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:devices ())
  in
  ignore (Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe)

let check_golden name make_instance devices =
  (* CPU reference *)
  let prog_ref, out_ref, cpu = make_instance () in
  run_single prog_ref;
  let cpu_result = cpu () in
  checkb (name ^ ": single-GPU = CPU reference") true (out_ref = cpu_result);
  (* multi-GPU runs *)
  List.iter
    (fun g ->
       let prog, out, _ = make_instance () in
       run_multi ~devices:g prog;
       checkb (Printf.sprintf "%s: %d-GPU = reference" name g) true
         (out = cpu_result))
    devices

let test_golden_vecadd () =
  check_golden "vecadd"
    (fun () -> Apps.Workloads.functional_vecadd ~n:1000)
    [ 1; 2; 3; 4; 7 ]

let test_golden_hotspot () =
  check_golden "hotspot"
    (fun () -> Apps.Workloads.functional_hotspot ~n:64 ~iterations:5)
    [ 1; 2; 3; 4 ]

let test_golden_nbody () =
  check_golden "nbody"
    (fun () -> Apps.Workloads.functional_nbody ~n:192 ~iterations:3)
    [ 1; 2; 4 ]

let test_golden_matmul () =
  check_golden "matmul"
    (fun () -> Apps.Workloads.functional_matmul ~n:48)
    [ 1; 2; 3; 4 ]

(* Random problem sizes (including non-multiples of the block size and
   sizes smaller than the device count). *)
let prop_golden_vecadd_sizes =
  QCheck.Test.make ~name:"vecadd golden across random sizes/devices" ~count:25
    QCheck.(pair (int_range 1 600) (int_range 1 8))
    (fun (n, g) ->
      let prog, out, cpu = Apps.Workloads.functional_vecadd ~n in
      run_multi ~devices:g prog;
      out = cpu ())

let prop_golden_hotspot_sizes =
  QCheck.Test.make ~name:"hotspot golden across random sizes/devices" ~count:10
    QCheck.(pair (int_range 3 48) (int_range 1 6))
    (fun (n, g) ->
      let prog, out, cpu =
        Apps.Workloads.functional_hotspot ~n ~iterations:3
      in
      run_multi ~devices:g prog;
      out = cpu ())

(* ---------------- Fault tolerance (headline guarantee) ----------------

   Under any injected fault schedule that leaves at least one device
   alive, the self-healing engine's functional results are bit-identical
   to the fault-free run. *)

let run_multi_faulty ~devices ~spec prog =
  let artifacts = compile_exn prog in
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:devices ())
  in
  Gpusim.Machine.inject_faults m (Gpusim.Faults.create spec);
  Mekong.Multi_gpu.run ~checkpoint_every:3 ~machine:m
    artifacts.Mekong.Toolchain.exe

(* Deterministic mid-run permanent loss: measure the fault-free runtime
   first, then schedule device 1 to die halfway through, with transient
   kernel/transfer faults injected throughout. *)
let test_fault_midrun_device_loss () =
  let mk () = Apps.Workloads.functional_hotspot ~n:48 ~iterations:6 in
  let prog0, _, _ = mk () in
  let a0 = compile_exn prog0 in
  let m0 =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:3 ())
  in
  let r0 = Mekong.Multi_gpu.run ~machine:m0 a0.Mekong.Toolchain.exe in
  checkb "fault-free run reports no faults" true
    (r0.Mekong.Multi_gpu.faults = Mekong.Multi_gpu.no_faults);
  let prog, out, cpu = mk () in
  let spec =
    {
      Gpusim.Faults.null_spec with
      (* The seed must yield at least one transient fault both before
         and after the scheduled loss; the fault stream is a function of
         the op sequence, so re-pick it if timing-model changes move the
         loss point (any fault-rich seed works — the assertions below
         are what matter). *)
      seed = 1;
      kernel_fault_rate = 0.05;
      transfer_fault_rate = 0.05;
      scheduled_losses = [ (1, r0.Mekong.Multi_gpu.time /. 2.0) ];
    }
  in
  let r = run_multi_faulty ~devices:3 ~spec prog in
  checkb "bit-identical under mid-run device loss" true (out = cpu ());
  let f = r.Mekong.Multi_gpu.faults in
  checki "one device lost" 1 f.Mekong.Multi_gpu.fr_devices_lost;
  checkb "nonzero retries" true (f.Mekong.Multi_gpu.fr_retries > 0);
  checkb "nonzero replays" true (f.Mekong.Multi_gpu.fr_replays > 0);
  checkb "faults observed" true (f.Mekong.Multi_gpu.fr_faults > 0);
  checkb "healing costs time" true
    (r.Mekong.Multi_gpu.time > r0.Mekong.Multi_gpu.time)

(* Graceful degradation all the way down to one survivor. *)
let test_fault_degrade_to_one () =
  let mk () = Apps.Workloads.functional_hotspot ~n:32 ~iterations:4 in
  let prog0, _, _ = mk () in
  let a0 = compile_exn prog0 in
  let m0 =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:4 ())
  in
  let t0 = (Mekong.Multi_gpu.run ~machine:m0 a0.Mekong.Toolchain.exe).Mekong.Multi_gpu.time in
  let prog, out, cpu = mk () in
  let spec =
    {
      Gpusim.Faults.null_spec with
      seed = 5;
      (* devices 1..3 all die at distinct mid-run times; device 0
         survives and finishes the job alone *)
      scheduled_losses =
        [ (1, 0.2 *. t0); (2, 0.4 *. t0); (3, 0.6 *. t0) ];
    }
  in
  let r = run_multi_faulty ~devices:4 ~spec prog in
  checkb "bit-identical with one survivor" true (out = cpu ());
  checki "three devices lost" 3
    r.Mekong.Multi_gpu.faults.Mekong.Multi_gpu.fr_devices_lost

(* The fault schedule is deterministic: same seed, same program, same
   report, same simulated time. *)
let test_fault_determinism () =
  let spec =
    {
      Gpusim.Faults.null_spec with
      seed = 21;
      kernel_fault_rate = 0.04;
      transfer_fault_rate = 0.04;
      scheduled_losses = [ (2, 0.001) ];
    }
  in
  let go () =
    let prog, out, _ = Apps.Workloads.functional_hotspot ~n:32 ~iterations:4 in
    let r = run_multi_faulty ~devices:3 ~spec prog in
    (r.Mekong.Multi_gpu.faults, r.Mekong.Multi_gpu.time, Array.copy out)
  in
  let f1, t1, o1 = go () in
  let f2, t2, o2 = go () in
  checkb "same fault report" true (f1 = f2);
  checkb "same simulated time" true (t1 = t2);
  checkb "same output" true (o1 = o2)

(* Randomized fault schedules: random transient rates and random subsets
   of devices 1..g-1 scheduled to die at pseudo-random times (device 0
   always survives).  Bit-identity must hold for every schedule. *)
let prop_fault_bit_identity =
  QCheck.Test.make ~name:"hotspot bit-identical under random fault schedules"
    ~count:12
    QCheck.(triple (int_range 4 32) (int_range 2 4) (int_range 0 1_000_000))
    (fun (n, g, seed) ->
      let prog, out, cpu = Apps.Workloads.functional_hotspot ~n ~iterations:4 in
      let rate = float_of_int (seed mod 8) /. 100.0 in
      let losses =
        List.filter_map
          (fun d ->
            if (seed lsr d) land 1 = 1 then
              Some (d, float_of_int ((seed lsr (2 * d)) land 0xff) *. 2e-5)
            else None)
          (List.init (g - 1) (fun d -> d + 1))
      in
      let spec =
        {
          Gpusim.Faults.null_spec with
          seed;
          kernel_fault_rate = rate;
          transfer_fault_rate = rate;
          scheduled_losses = losses;
        }
      in
      ignore (run_multi_faulty ~devices:g ~spec prog);
      out = cpu ())

(* ---------------- Toolchain ---------------- *)

let test_toolchain_artifacts () =
  let prog, _, _ = Apps.Workloads.functional_vecadd ~n:256 in
  let a = compile_exn prog in
  checkb "model has vecadd" true
    (Mekong.Model.find a.Mekong.Toolchain.model "vecadd" <> None);
  checkb "rewritten differs" true
    (a.Mekong.Toolchain.rewritten_source <> a.Mekong.Toolchain.original_source);
  checkb "original has cuda calls" true
    (Mekong.Rewriter.count_launches a.Mekong.Toolchain.original_source = 1)

let test_toolchain_rejects () =
  let open Kir in
  let bad =
    Kir.kernel ~name:"bad"
      ~params:[ Scalar "n"; Array { name = "o"; dims = [| Dim_param "n" |] } ]
      [ store "o" [ i 0 ] (f 1.0) ]
  in
  let prog =
    Host_ir.program ~name:"badprog"
      [
        Host_ir.Malloc ("o", 16);
        Host_ir.Launch
          {
            kernel = bad;
            grid = Dim3.make 2;
            block = Dim3.make 8;
            args = [ Host_ir.HInt 16; Host_ir.HBuf "o" ];
          };
        Host_ir.Free "o";
      ]
  in
  match Mekong.Toolchain.compile prog with
  | Error { kernel = "bad"; _ } -> ()
  | Error e -> Alcotest.failf "wrong kernel: %s" (Mekong.Toolchain.error_message e)
  | Ok _ -> Alcotest.fail "expected rejection"

(* The single-segment property of 1:1 kernels (paper §8.1): after a
   vecadd, each device owns exactly one contiguous segment of c. *)
let test_tracker_fragmentation () =
  let n = 1024 in
  let prog, _, _ = Apps.Workloads.functional_vecadd ~n in
  let artifacts = compile_exn prog in
  (* re-link against a fresh machine but keep vbufs visible: rerun and
     inspect stats instead *)
  let m =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:4 ())
  in
  let res = Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe in
  (* vecadd reads match the linear distribution exactly: no
     inter-device synchronization transfers at all. *)
  checki "no stale-data transfers" 0 res.Mekong.Multi_gpu.transfers

let qtest t = QCheck_alcotest.to_alcotest t

let base_suites =
    [
      ( "access",
        [
          Alcotest.test_case "vecadd" `Quick test_analyze_vecadd;
          Alcotest.test_case "hotspot" `Quick test_analyze_hotspot;
          Alcotest.test_case "nbody" `Quick test_analyze_nbody;
          Alcotest.test_case "matmul" `Quick test_analyze_matmul;
          Alcotest.test_case "reject non-injective" `Quick test_reject_non_injective;
          Alcotest.test_case "reject indirect write" `Quick test_reject_indirect_write;
          Alcotest.test_case "hotspot halo" `Quick test_hotspot_read_halo;
        ] );
      ( "partition",
        [
          Alcotest.test_case "make" `Quick test_partition_make;
          Alcotest.test_case "kernel transform" `Quick test_partition_transform;
        ] );
      ( "model",
        [
          Alcotest.test_case "roundtrip" `Quick test_model_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_model_file_roundtrip;
        ] );
      ( "rewriter", [ Alcotest.test_case "substitutions" `Quick test_rewriter ] );
      ( "golden",
        [
          Alcotest.test_case "vecadd" `Quick test_golden_vecadd;
          Alcotest.test_case "hotspot" `Quick test_golden_hotspot;
          Alcotest.test_case "nbody" `Slow test_golden_nbody;
          Alcotest.test_case "matmul" `Quick test_golden_matmul;
          qtest prop_golden_vecadd_sizes;
          qtest prop_golden_hotspot_sizes;
        ] );
      ( "toolchain",
        [
          Alcotest.test_case "artifacts" `Quick test_toolchain_artifacts;
          Alcotest.test_case "rejects bad kernels" `Quick test_toolchain_rejects;
          Alcotest.test_case "tracker fragmentation" `Quick test_tracker_fragmentation;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "mid-run device loss" `Quick
            test_fault_midrun_device_loss;
          Alcotest.test_case "degrade to one device" `Quick
            test_fault_degrade_to_one;
          Alcotest.test_case "deterministic schedules" `Quick
            test_fault_determinism;
          qtest prop_fault_bit_identity;
        ] );
    ]

(* ---------------- Random-kernel golden property ----------------

   Generate random affine stencil-like kernels (identity writes, random
   shifted/looped reads with bounds guards) and check that the
   partitioned execution is bit-identical to the single-GPU engine for
   random device counts and problem sizes.  This exercises the whole
   pipeline: analysis, strategy choice, partition transform, enumerator
   codegen and the runtime. *)

type rand_spec = {
  rs_two_d : bool;
  rs_shifts : (int * int) list;
  rs_row_loop : bool;
  rs_n : int;
  rs_gpus : int;
}

let gen_rand_spec =
  QCheck.Gen.(
    bool >>= fun rs_two_d ->
    list_size (int_range 0 4)
      (pair (int_range (-2) 2) (int_range (-2) 2))
    >>= fun rs_shifts ->
    bool >>= fun rs_row_loop ->
    int_range 6 60 >>= fun rs_n ->
    int_range 1 6 >>= fun rs_gpus ->
    return { rs_two_d; rs_shifts; rs_row_loop; rs_n; rs_gpus })

let print_rand_spec s =
  Printf.sprintf "{2d=%b shifts=[%s] loop=%b n=%d gpus=%d}" s.rs_two_d
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) s.rs_shifts))
    s.rs_row_loop s.rs_n s.rs_gpus

(* Build the kernel for a spec.  Reads are guarded so Keval never goes
   out of bounds; writes are the identity map. *)
let kernel_of_spec spec =
  let open Kir in
  let n = p "n" in
  let gx = v "gx" and gy = v "gy" in
  let dims =
    if spec.rs_two_d then [| Dim_param "n"; Dim_param "n" |]
    else [| Dim_param "n" |]
  in
  let idx row col = if spec.rs_two_d then [ row; col ] else [ col ] in
  let shift_stmt k (dy, dx) =
    let row = gy + i dy and col = gx + i dx in
    let in_bounds =
      if spec.rs_two_d then
        row >= i 0 && row < n && col >= i 0 && col < n
      else col >= i 0 && col < n
    in
    If
      ( in_bounds,
        [ Assign ("acc", v "acc" + load "a" (idx row col)) ],
        [ Assign ("acc", v "acc" + f (float_of_int k)) ] )
  in
  let row_loop =
    if spec.rs_row_loop then
      [
        For
          {
            var = "k";
            from_ = i 0;
            to_ = n;
            body = [ Assign ("acc", v "acc" + load "a" (idx gy (v "k"))) ];
          };
      ]
    else []
  in
  let guard = if spec.rs_two_d then gx < n && gy < n else gx < n in
  Kir.kernel ~name:"randk"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims };
        Array { name = "out"; dims };
      ]
    [
      Local ("gx", global_id Dim3.X);
      Local ("gy", global_id Dim3.Y);
      If
        ( guard,
          [ Local ("acc", load "a" (idx gy gx)) ]
          @ List.mapi shift_stmt spec.rs_shifts
          @ row_loop
          @ [ store "out" (idx gy gx) (v "acc") ],
          [] );
    ]

let program_of_spec ?(repeat = 1) spec ~(result : float array) =
  let n = spec.rs_n in
  let total = if spec.rs_two_d then n * n else n in
  let a = Array.init total (fun i -> float_of_int ((i * 37 mod 101) - 50) /. 7.0) in
  let block = if spec.rs_two_d then Dim3.make 4 ~y:4 else Dim3.make 8 in
  let gdim ext bl = (ext + bl - 1) / bl in
  let grid =
    if spec.rs_two_d then Dim3.make (gdim n 4) ~y:(gdim n 4)
    else Dim3.make (gdim n 8)
  in
  let launch =
    Host_ir.Launch
      {
        kernel = kernel_of_spec spec;
        grid;
        block;
        args = [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "out" ];
      }
  in
  Host_ir.program ~name:"randprog"
    [
      Host_ir.Malloc ("a", total);
      Host_ir.Malloc ("out", total);
      Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
      (if repeat = 1 then launch else Host_ir.Repeat (repeat, [ launch ]));
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "out" };
      Host_ir.Free "a";
      Host_ir.Free "out";
    ]

(* ---------------- Launch-plan cache ---------------- *)

(* The cache must be observationally invisible: simulated time, every
   machine statistic and the functional output must be bit-identical
   with the cache on and off; only the hit/miss counters differ. *)
let run_spec_cached spec ~cache ~out =
  let artifacts = compile_exn (program_of_spec ~repeat:3 spec ~result:out) in
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:spec.rs_gpus ())
  in
  let res = Mekong.Multi_gpu.run ~cache ~machine:m artifacts.Mekong.Toolchain.exe in
  let s = Gpusim.Machine.stats m in
  ( res.Mekong.Multi_gpu.time,
    res.Mekong.Multi_gpu.transfers,
    ( s.Gpusim.Machine.h2d_bytes,
      s.Gpusim.Machine.d2h_bytes,
      s.Gpusim.Machine.p2p_bytes,
      s.Gpusim.Machine.n_transfers,
      s.Gpusim.Machine.n_launches,
      s.Gpusim.Machine.kernel_seconds,
      s.Gpusim.Machine.pattern_seconds,
      s.Gpusim.Machine.transfer_seconds ),
    res.Mekong.Multi_gpu.cache )

let prop_cache_equivalence =
  QCheck.Test.make ~name:"plan cache: cached == uncached, bit for bit"
    ~count:40
    (QCheck.make ~print:print_rand_spec gen_rand_spec)
    (fun spec ->
      let total = if spec.rs_two_d then spec.rs_n * spec.rs_n else spec.rs_n in
      let out_on = Array.make total nan in
      let out_off = Array.make total nan in
      let t1, tr1, s1, c_on = run_spec_cached spec ~cache:true ~out:out_on in
      let t2, tr2, s2, c_off = run_spec_cached spec ~cache:false ~out:out_off in
      t1 = t2 && tr1 = tr2 && s1 = s2
      && out_on = out_off
      (* three identical launches: one miss, two hits *)
      && c_on.Mekong.Launch_cache.misses = 1
      && c_on.Mekong.Launch_cache.hits = 2
      && c_off = Mekong.Launch_cache.no_stats)

let test_cache_stats () =
  (* Hotspot swaps its buffers every iteration; the plan is keyed by
     buffer *name*, which Swap leaves stable, so all iterations after
     the first hit the cache — and the result stays golden. *)
  let prog, out, cpu = Apps.Workloads.functional_hotspot ~n:32 ~iterations:6 in
  let artifacts = compile_exn prog in
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:4 ())
  in
  let res = Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe in
  checki "one miss" 1 res.Mekong.Multi_gpu.cache.Mekong.Launch_cache.misses;
  checki "five hits" 5 res.Mekong.Multi_gpu.cache.Mekong.Launch_cache.hits;
  checkb "still golden" true (out = cpu ())

let prop_random_kernels_golden =
  QCheck.Test.make ~name:"random affine kernels: multi-GPU == single-GPU"
    ~count:60
    (QCheck.make ~print:print_rand_spec gen_rand_spec)
    (fun spec ->
      let total = if spec.rs_two_d then spec.rs_n * spec.rs_n else spec.rs_n in
      let out_single = Array.make total nan in
      let out_multi = Array.make total nan in
      run_single (program_of_spec spec ~result:out_single);
      run_multi ~devices:spec.rs_gpus (program_of_spec spec ~result:out_multi);
      out_single = out_multi)

(* A transposed write: out[gx][gy] = a[gy][gx].  Injective, but reads
   cross the partition direction, forcing heavy synchronization. *)
let test_golden_transpose () =
  let n = 24 in
  let k =
    let open Kir in
    let dims = [| Dim_param "n"; Dim_param "n" |] in
    Kir.kernel ~name:"transpose"
      ~params:[ Scalar "n"; Array { name = "a"; dims }; Array { name = "out"; dims } ]
      [
        Local ("gx", global_id Dim3.X);
        Local ("gy", global_id Dim3.Y);
        If
          ( v "gx" < p "n" && v "gy" < p "n",
            [ store "out" [ v "gx"; v "gy" ] (load "a" [ v "gy"; v "gx" ]) ],
            [] );
      ]
  in
  let a = Array.init (n * n) (fun i -> float_of_int i) in
  let make result =
    Host_ir.program ~name:"transpose"
      [
        Host_ir.Malloc ("a", n * n);
        Host_ir.Malloc ("out", n * n);
        Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
        Host_ir.Launch
          {
            kernel = k;
            grid = Dim3.make 6 ~y:6;
            block = Dim3.make 4 ~y:4;
            args = [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "out" ];
          };
        Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "out" };
        Host_ir.Free "a";
        Host_ir.Free "out";
      ]
  in
  let expected = Array.init (n * n) (fun i -> float_of_int ((i mod n * n) + (i / n))) in
  let out1 = Array.make (n * n) nan in
  run_single (make out1);
  checkb "transpose single correct" true (out1 = expected);
  List.iter
    (fun g ->
       let out = Array.make (n * n) nan in
       run_multi ~devices:g (make out);
       checkb (Printf.sprintf "transpose %d-GPU" g) true (out = expected))
    [ 2; 3; 5 ]

(* A two-kernel program with a dependency through a buffer: the second
   kernel reads what the first wrote, across a different partitioning. *)
let test_golden_two_kernels () =
  let n = 500 in
  let scale =
    let open Kir in
    let dims = [| Dim_param "n" |] in
    Kir.kernel ~name:"scale"
      ~params:[ Scalar "n"; Array { name = "x"; dims }; Array { name = "y"; dims } ]
      [
        Local ("gi", global_id Dim3.X);
        If (v "gi" < p "n", [ store "y" [ v "gi" ] (load "x" [ v "gi" ] * f 3.0) ], []);
      ]
  in
  let reverse_read =
    (* y2[gi] = y[n-1-gi]: reads the opposite end of the array, so the
       second launch must pull data written by other devices. *)
    let open Kir in
    let dims = [| Dim_param "n" |] in
    Kir.kernel ~name:"revread"
      ~params:[ Scalar "n"; Array { name = "y"; dims }; Array { name = "y2"; dims } ]
      [
        Local ("gi", global_id Dim3.X);
        If
          ( v "gi" < p "n",
            [ store "y2" [ v "gi" ] (load "y" [ p "n" - i 1 - v "gi" ]) ],
            [] );
      ]
  in
  let a = Array.init n (fun i -> float_of_int i) in
  let make result =
    let grid = Dim3.make ((n + 63) / 64) and block = Dim3.make 64 in
    Host_ir.program ~name:"two"
      [
        Host_ir.Malloc ("x", n);
        Host_ir.Malloc ("y", n);
        Host_ir.Malloc ("y2", n);
        Host_ir.Memcpy_h2d { dst = "x"; src = Host_ir.host_data a };
        Host_ir.Launch
          { kernel = scale; grid; block;
            args = [ Host_ir.HInt n; Host_ir.HBuf "x"; Host_ir.HBuf "y" ] };
        Host_ir.Launch
          { kernel = reverse_read; grid; block;
            args = [ Host_ir.HInt n; Host_ir.HBuf "y"; Host_ir.HBuf "y2" ] };
        Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "y2" };
        Host_ir.Free "x";
        Host_ir.Free "y";
        Host_ir.Free "y2";
      ]
  in
  let expected = Array.init n (fun i -> float_of_int (n - 1 - i) *. 3.0) in
  List.iter
    (fun g ->
       let out = Array.make n nan in
       run_multi ~devices:g (make out);
       checkb (Printf.sprintf "two kernels %d-GPU" g) true (out = expected))
    [ 1; 2; 4; 6 ]

(* Kernels that read via blockIdx and gridDim directly (no blockOff):
   per-block accesses are still affine in the blockIdx dimensions. *)
let test_golden_blockwise_kernel () =
  let n_blocks = 12 in
  let k =
    let open Kir in
    Kir.kernel ~name:"blockwise"
      ~params:
        [ Scalar "nb"; Array { name = "o"; dims = [| Dim_param "nb" |] } ]
      [
        (* one thread per block writes o[blockIdx.x] = blockIdx.x *)
        If
          ( tid Dim3.X = i 0 && bid Dim3.X < p "nb",
            [ store "o" [ bid Dim3.X ] (bid Dim3.X * f 1.0) ],
            [] );
      ]
  in
  let make result =
    Host_ir.program ~name:"blockwise"
      [
        Host_ir.Malloc ("o", n_blocks);
        Host_ir.Launch
          {
            kernel = k;
            grid = Dim3.make n_blocks;
            block = Dim3.make 4;
            args = [ Host_ir.HInt n_blocks; Host_ir.HBuf "o" ];
          };
        Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "o" };
        Host_ir.Free "o";
      ]
  in
  let expected = Array.init n_blocks float_of_int in
  List.iter
    (fun g ->
       let out = Array.make n_blocks nan in
       run_multi ~devices:g (make out);
       checkb (Printf.sprintf "blockwise %d-GPU" g) true (out = expected))
    [ 1; 3; 4 ]


(* ---------------- Instrumented writes (paper §11 fallback) ----------- *)

(* A scatter kernel: o[idx[gi]] = x[gi] * 2.  The write subscript is
   data-dependent, so the static analysis cannot model it; with
   instrumentation enabled the write sets are collected at run time. *)
let scatter_kernel =
  let open Kir in
  let dims = [| Dim_param "n" |] in
  Kir.kernel ~name:"scatter"
    ~params:
      [
        Scalar "n";
        Array { name = "idx"; dims };
        Array { name = "x"; dims };
        Array { name = "o"; dims };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( v "gi" < p "n",
          [
            Local ("j", load "idx" [ v "gi" ]);
            store "o" [ v "j" ] (load "x" [ v "gi" ] * f 2.0);
          ],
          [] );
    ]

let scatter_program ~n ~(idx : int array) ~(result : float array) =
  let x = Array.init n (fun i -> float_of_int i +. 0.25) in
  let idxf = Array.map float_of_int idx in
  let grid = Dim3.make ((n + 31) / 32) and block = Dim3.make 32 in
  Host_ir.program ~name:"scatterprog"
    [
      Host_ir.Malloc ("idx", n);
      Host_ir.Malloc ("x", n);
      Host_ir.Malloc ("o", n);
      Host_ir.Memcpy_h2d { dst = "idx"; src = Host_ir.host_data idxf };
      Host_ir.Memcpy_h2d { dst = "x"; src = Host_ir.host_data x };
      Host_ir.Launch
        {
          kernel = scatter_kernel;
          grid;
          block;
          args =
            [ Host_ir.HInt n; Host_ir.HBuf "idx"; Host_ir.HBuf "x";
              Host_ir.HBuf "o" ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "o" };
      Host_ir.Free "idx";
      Host_ir.Free "x";
      Host_ir.Free "o";
    ]

let test_shadow_kernel () =
  let shadow = Mekong.Instrument.shadow_kernel Apps.Matmul.kernel in
  checks "renamed" "matmul__shadow" shadow.Kir.name;
  (* The k-loop only fed the stored value; the shadow must be smaller. *)
  checkb "value computation stripped" true
    (Kopt.size shadow < Kopt.size Apps.Matmul.kernel);
  (* The scatter shadow must keep the idx load (it feeds the write
     subscript). *)
  let sshadow = Mekong.Instrument.shadow_kernel scatter_kernel in
  let uses_idx =
    List.exists
      (fun st ->
         Kir.fold_exp_in_stmt
           (fun acc e -> acc || match e with Kir.Load ("idx", _) -> true | _ -> false)
           false st)
      sshadow.Kir.body
  in
  checkb "address loads kept" true uses_idx

let test_instrumented_model () =
  (* Without instrumentation: rejected.  With: accepted and flagged. *)
  (match Mekong.Access.analyze scatter_kernel with
   | Error (Mekong.Access.Inexact_write "o") -> ()
   | _ -> Alcotest.fail "expected static rejection");
  match Mekong.Access.analyze ~on_inexact_write:`Instrument scatter_kernel with
  | Ok a ->
    let o = Option.get (Mekong.Access.find_access a "o") in
    checkb "flagged" true o.Mekong.Access.write_instrumented;
    checkb "no static write map" true (o.Mekong.Access.write = None);
    (* the flag survives model serialization *)
    let m = Mekong.Model.of_analyses [ a ] in
    let m' = Mekong.Model.of_string (Mekong.Model.to_string m) in
    let km = Mekong.Model.find_exn m' "scatter" in
    let am = List.find (fun (x : Mekong.Model.array_model) -> x.Mekong.Model.arr = "o") km.Mekong.Model.arrays in
    checkb "flag roundtrips" true am.Mekong.Model.write_instrumented
  | Error e -> Alcotest.failf "unexpected rejection: %s" (Mekong.Access.error_message e)

(* 2-D tiling (extension): partitions tile the grid exactly and the
   golden property holds — then the halo bytes must be smaller than
   with 1-D chunks. *)
let test_make_2d () =
  let grid = Dim3.make 8 ~y:6 in
  let parts = Mekong.Partition.make_2d ~grid ~axis1:Dim3.Y ~axis2:Dim3.X ~n:6 in
  checki "six tiles" 6 (List.length parts);
  checki "tiles cover grid" (Dim3.volume grid)
    (List.fold_left (fun a p -> a + Mekong.Partition.n_blocks p) 0 parts);
  (* tiles are pairwise disjoint: no block belongs to two tiles *)
  let owner = Hashtbl.create 64 in
  List.iter
    (fun p ->
       for y = (p.Mekong.Partition.min_blocks).Dim3.y
         to (p.Mekong.Partition.max_blocks).Dim3.y - 1 do
         for x = (p.Mekong.Partition.min_blocks).Dim3.x
           to (p.Mekong.Partition.max_blocks).Dim3.x - 1 do
           if Hashtbl.mem owner (x, y) then Alcotest.fail "overlapping tiles";
           Hashtbl.replace owner (x, y) p.Mekong.Partition.device
         done
       done)
    parts;
  checki "every block owned" (Dim3.volume grid) (Hashtbl.length owner)

let test_golden_2d_tiling () =
  let cpu_expected = ref [||] in
  (let prog, out, cpu = Apps.Workloads.functional_hotspot ~n:48 ~iterations:4 in
   run_single prog;
   ignore out;
   cpu_expected := cpu ());
  List.iter
    (fun g ->
       let prog, out, _ = Apps.Workloads.functional_hotspot ~n:48 ~iterations:4 in
       let artifacts = compile_exn prog in
       let m =
         Gpusim.Machine.create ~functional:true
           (Gpusim.Config.test_box ~n_devices:g ())
       in
       ignore
         (Mekong.Multi_gpu.run ~tiling:`Two_d ~machine:m
            artifacts.Mekong.Toolchain.exe);
       checkb (Printf.sprintf "2-D tiling golden on %d GPUs" g) true
         (out = !cpu_expected))
    [ 1; 2; 4; 6 ]

let test_2d_tiling_less_halo () =
  (* 2-D tiles pay a one-time redistribution (the linear H2D layout
     matches 1-D bands) but have ~4x smaller per-iteration halos, so
     they win for long-running stencils: at the paper's 1500
     iterations the total bytes must be lower, while at 20 iterations
     the redistribution dominates and 1-D must win. *)
  let bytes ~iterations tiling =
    let n = 1024 in
    let ph = Host_ir.host_phantom (n * n) in
    let prog = Apps.Hotspot.program_h ~n ~iterations ~init:ph ~result:ph in
    let artifacts = compile_exn prog in
    let m = k80_perf 16 in
    ignore
      (Mekong.Multi_gpu.run ~tiling ~machine:m artifacts.Mekong.Toolchain.exe);
    (Gpusim.Machine.stats m).Gpusim.Machine.p2p_bytes
  in
  let b1 = bytes ~iterations:600 `One_d in
  let b2 = bytes ~iterations:600 `Two_d in
  checkb
    (Printf.sprintf "long run: 2-D bytes (%d) < 1-D bytes (%d)" b2 b1)
    true (b2 < b1);
  let s1 = bytes ~iterations:20 `One_d in
  let s2 = bytes ~iterations:20 `Two_d in
  checkb
    (Printf.sprintf "short run: 1-D bytes (%d) < 2-D bytes (%d)" s1 s2)
    true (s1 < s2)

(* Enumerators vs. execution: for random partitions of the real
   benchmark kernels, the offsets a partition actually loads must be
   covered by the read enumerator (over-approximation allowed) and the
   offsets it stores must match the write enumerator exactly. *)
let check_enum_vs_execution kernel ~block ~grid ~args g =
  let a = analyze_exn kernel in
  let km = Mekong.Model.of_analysis a in
  let enums = Mekong.Codegen.build km in
  let parts =
    List.filter
      (fun p -> not (Mekong.Partition.is_empty p))
      (Mekong.Partition.make ~grid ~axis:km.Mekong.Model.strategy ~n:g)
  in
  let part_kernel = Mekong.Partition.transform_kernel kernel in
  let dims_env =
    Host_ir.scalar_bindings kernel args
    @ List.concat_map
        (fun ax ->
           [ (Mekong.Access.bdim_name ax, Dim3.get block ax);
             (Mekong.Access.gdim_name ax, Dim3.get grid ax) ])
        Dim3.axes
  in
  (* backing store: every array gets a deterministic data array *)
  let arrays = Kir.array_params kernel in
  let scalar_env = Host_ir.scalar_bindings kernel args in
  let size_of dims =
    Array.fold_left
      (fun acc d ->
         acc
         * (match d with
            | Kir.Dim_const c -> c
            | Kir.Dim_param p -> List.assoc p scalar_env))
      1 dims
  in
  let data =
    List.map (fun (nm, dims) -> (nm, Array.init (size_of dims) (fun i -> float_of_int (i mod 97)))) arrays
  in
  List.iter
    (fun p ->
       let bindings = dims_env @ Mekong.Partition.box_bindings p ~block in
       let loads : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
       let stores : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
       List.iter
         (fun (nm, _) ->
            Hashtbl.replace loads nm (Hashtbl.create 16);
            Hashtbl.replace stores nm (Hashtbl.create 16))
         arrays;
       let part_args = args @ Mekong.Partition.partition_args p in
       Keval.run part_kernel ~grid:(Mekong.Partition.launch_grid p) ~block
         ~args:(Host_ir.scalar_args part_args)
         ~load:(fun nm off ->
             Hashtbl.replace (Hashtbl.find loads nm) off ();
             (List.assoc nm data).(off))
         ~store:(fun nm off _ ->
             Hashtbl.replace (Hashtbl.find stores nm) off ());
       List.iter
         (fun (nm, _) ->
            let in_ranges enum off =
              match enum with
              | None -> false
              | Some e ->
                List.exists
                  (fun (a, b) -> a <= off && off < b)
                  (Mekong.Codegen.ranges e ~bindings)
            in
            let entry = Option.get (Mekong.Codegen.entry enums nm) in
            Hashtbl.iter
              (fun off () ->
                 checkb
                   (Printf.sprintf "%s: load %s[%d] covered" kernel.Kir.name nm off)
                   true
                   (in_ranges entry.Mekong.Codegen.read off))
              (Hashtbl.find loads nm);
            Hashtbl.iter
              (fun off () ->
                 checkb
                   (Printf.sprintf "%s: store %s[%d] covered" kernel.Kir.name nm off)
                   true
                   (in_ranges entry.Mekong.Codegen.write off))
              (Hashtbl.find stores nm);
            (* exactness of writes: every enumerated write offset was
               actually stored *)
            match entry.Mekong.Codegen.write with
            | None -> ()
            | Some e ->
              List.iter
                (fun (a, b) ->
                   for off = a to b - 1 do
                     checkb
                       (Printf.sprintf "%s: enumerated write %s[%d] stored"
                          kernel.Kir.name nm off)
                       true
                       (Hashtbl.mem (Hashtbl.find stores nm) off)
                   done)
                (Mekong.Codegen.ranges e ~bindings))
         arrays)
    parts

let test_enum_vs_execution () =
  check_enum_vs_execution Apps.Hotspot.kernel ~block:Apps.Hotspot.block
    ~grid:(Apps.Hotspot.grid_for 48)
    ~args:[ Host_ir.HInt 48; Host_ir.HBuf "inp"; Host_ir.HBuf "out" ]
    3;
  check_enum_vs_execution Apps.Matmul.kernel ~block:Apps.Matmul.block
    ~grid:(Apps.Matmul.grid_for 32)
    ~args:
      [ Host_ir.HInt 32; Host_ir.HBuf "a"; Host_ir.HBuf "b"; Host_ir.HBuf "c" ]
    2;
  check_enum_vs_execution Apps.Vecadd.kernel ~block:Apps.Vecadd.block
    ~grid:(Apps.Vecadd.grid_for 300)
    ~args:
      [ Host_ir.HInt 300; Host_ir.HBuf "a"; Host_ir.HBuf "b"; Host_ir.HBuf "c" ]
    4

(* Paper-scale workload programs must validate and analyze for every
   benchmark and size (phantom host arrays, no allocation). *)
let test_workloads_wellformed () =
  List.iter
    (fun b ->
       List.iter
         (fun sz ->
            let prog = Apps.Workloads.program b sz in
            Host_ir.validate prog;
            match Mekong.Toolchain.pass1 prog with
            | Ok (model, _) ->
              List.iter
                (fun k ->
                   let km =
                     Mekong.Model.find_exn model k.Kir.name
                   in
                   let expected_axis =
                     match b with
                     | Apps.Workloads.Hotspot_b | Apps.Workloads.Matmul_b -> Dim3.Y
                     | Apps.Workloads.Nbody_b -> Dim3.X
                   in
                   checkb
                     (Printf.sprintf "%s/%s strategy"
                        (Apps.Workloads.benchmark_name b)
                        (Apps.Workloads.size_name sz))
                     true
                     (km.Mekong.Model.strategy = expected_axis))
                (Host_ir.kernels prog)
            | Error e ->
              Alcotest.failf "workload rejected: %s"
                (Mekong.Toolchain.error_message e))
         Apps.Workloads.sizes)
    Apps.Workloads.benchmarks

(* SpMV: data-dependent loop bounds force whole-array read
   over-approximation while the affine injective write keeps the kernel
   partitionable (the degradation path of §4). *)
let test_spmv_analysis () =
  let a = analyze_exn Apps.Spmv.kernel in
  let acc name = Option.get (Mekong.Access.find_access a name) in
  checkb "x over-approximated" false (acc "x").Mekong.Access.read_exact;
  checkb "vals over-approximated" false (acc "vals").Mekong.Access.read_exact;
  checkb "y write exact" true ((acc "y").Mekong.Access.write <> None);
  checks "strategy" "x" (Dim3.axis_name a.Mekong.Access.strategy)

let test_spmv_golden () =
  let m = Apps.Spmv.banded ~n:300 ~band:6 in
  let x = Array.init 300 (fun i -> 1.0 +. (0.01 *. float_of_int i)) in
  let expected = Apps.Spmv.reference ~m x in
  List.iter
    (fun g ->
       let out = Array.make 300 nan in
       run_multi ~devices:g (Apps.Spmv.program ~m ~x ~result:out);
       checkb (Printf.sprintf "spmv %d-GPU" g) true (out = expected))
    [ 1; 2; 4; 5 ]

(* Communication locality: with the y-split, hotspot's inter-device
   traffic must flow only between adjacent devices (halo exchange). *)
let test_halo_locality () =
  let prog, _, _ = Apps.Workloads.functional_hotspot ~n:64 ~iterations:3 in
  let artifacts = compile_exn prog in
  let m =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:4 ())
  in
  Gpusim.Machine.enable_trace m;
  ignore (Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe);
  let p2ps =
    List.filter
      (fun e -> e.Gpusim.Machine.ev_kind = `P2p)
      (Gpusim.Machine.trace m)
  in
  checkb "halo transfers exist" true (p2ps <> []);
  checkb "only neighbour traffic" true
    (List.for_all
       (fun e ->
          abs (e.Gpusim.Machine.ev_src - e.Gpusim.Machine.ev_dst) = 1)
       p2ps);
  (* each halo row is one contiguous row of 64 floats = 256 bytes *)
  checkb "halo row sized" true
    (List.for_all (fun e -> e.Gpusim.Machine.ev_bytes = 64 * 4) p2ps)

let run_multi_instrumented ~devices prog =
  match Mekong.Toolchain.compile ~instrument_writes:true prog with
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)
  | Ok artifacts ->
    let m =
      Gpusim.Machine.create ~functional:true
        (Gpusim.Config.test_box ~n_devices:devices ())
    in
    ignore (Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe)

let test_instrumented_scatter_golden () =
  let n = 200 in
  (* a permutation: reverse with a twist *)
  let idx = Array.init n (fun i -> (i * 7 + 3) mod n) in
  (* gcd(7, 200) = 1 so this is a permutation *)
  let expected = Array.make n nan in
  Array.iteri (fun i j -> expected.(j) <- (float_of_int i +. 0.25) *. 2.0) idx;
  List.iter
    (fun g ->
       let out = Array.make n nan in
       run_multi_instrumented ~devices:g (scatter_program ~n ~idx ~result:out);
       checkb (Printf.sprintf "scatter %d-GPU" g) true (out = expected))
    [ 1; 2; 3; 5 ]

let test_instrumented_conflict_detected () =
  let n = 96 in
  (* All threads write o[0]: partitions collide and the runtime must
     detect the hazard. *)
  let idx = Array.make n 0 in
  let out = Array.make n nan in
  checkb "conflict raises" true
    (try
       run_multi_instrumented ~devices:3 (scatter_program ~n ~idx ~result:out);
       false
     with Mekong.Instrument.Write_conflict { arr = "o"; _ } -> true)

let test_instrumented_needs_functional () =
  let n = 64 in
  let idx = Array.init n (fun i -> i) in
  let out = Array.make n nan in
  let prog = scatter_program ~n ~idx ~result:out in
  match Mekong.Toolchain.compile ~instrument_writes:true prog with
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)
  | Ok artifacts ->
    let m =
      Gpusim.Machine.create ~functional:false
        (Gpusim.Config.test_box ~n_devices:2 ())
    in
    checkb "perf mode rejected" true
      (try
         ignore (Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe);
         false
       with Invalid_argument _ -> true)

let () =
  Alcotest.run "mekong"
    (base_suites
     @ [
         ( "random-golden",
           [
             qtest prop_random_kernels_golden;
             Alcotest.test_case "transpose" `Quick test_golden_transpose;
             Alcotest.test_case "two kernels" `Quick test_golden_two_kernels;
             Alcotest.test_case "blockwise" `Quick test_golden_blockwise_kernel;
             Alcotest.test_case "halo locality (trace)" `Quick test_halo_locality;
             Alcotest.test_case "workloads well-formed" `Quick test_workloads_wellformed;
             Alcotest.test_case "enumerators vs execution" `Quick test_enum_vs_execution;
             Alcotest.test_case "2-D tiles" `Quick test_make_2d;
             Alcotest.test_case "2-D tiling golden" `Quick test_golden_2d_tiling;
             Alcotest.test_case "2-D halo reduction" `Quick test_2d_tiling_less_halo;
             Alcotest.test_case "spmv analysis" `Quick test_spmv_analysis;
             Alcotest.test_case "spmv golden" `Quick test_spmv_golden;
           ] );
         ( "plan-cache",
           [
             qtest prop_cache_equivalence;
             Alcotest.test_case "hit/miss stats" `Quick test_cache_stats;
           ] );
         ( "instrumentation",
           [
             Alcotest.test_case "shadow kernel" `Quick test_shadow_kernel;
             Alcotest.test_case "model flag" `Quick test_instrumented_model;
             Alcotest.test_case "scatter golden" `Quick test_instrumented_scatter_golden;
             Alcotest.test_case "conflict detection" `Quick test_instrumented_conflict_detected;
             Alcotest.test_case "functional-only" `Quick test_instrumented_needs_functional;
           ] );
       ])
