(* Tests for the polyhedral library: exact integer helpers, affine
   expressions, convex polyhedra (Fourier-Motzkin), unions, maps,
   code generation and enumerators. *)

open Ppoly

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Ints ---------------- *)

let test_fdiv_cdiv () =
  checki "fdiv 7 2" 3 (Ints.fdiv 7 2);
  checki "fdiv -7 2" (-4) (Ints.fdiv (-7) 2);
  checki "fdiv 7 -2" (-4) (Ints.fdiv 7 (-2));
  checki "fdiv -7 -2" 3 (Ints.fdiv (-7) (-2));
  checki "cdiv 7 2" 4 (Ints.cdiv 7 2);
  checki "cdiv -7 2" (-3) (Ints.cdiv (-7) 2);
  checki "cdiv 7 -2" (-3) (Ints.cdiv 7 (-2));
  checki "cdiv -7 -2" 4 (Ints.cdiv (-7) (-2));
  checki "emod -7 3" 2 (Ints.emod (-7) 3)

let test_gcd () =
  checki "gcd 12 18" 6 (Ints.gcd 12 18);
  checki "gcd 0 5" 5 (Ints.gcd 0 5);
  checki "gcd -12 18" 6 (Ints.gcd (-12) 18);
  checki "lcm 4 6" 12 (Ints.lcm 4 6);
  checki "gcd_array" 3 (Ints.gcd_array [| 6; 9; 0; 15 |])

let test_overflow () =
  Alcotest.check_raises "mul overflow" Ints.Overflow (fun () ->
      ignore (Ints.mul max_int 2));
  Alcotest.check_raises "add overflow" Ints.Overflow (fun () ->
      ignore (Ints.add max_int 1));
  checki "mul ok" 6 (Ints.mul 2 3);
  checki "mul neg" (-6) (Ints.mul 2 (-3))

let prop_fdiv_cdiv =
  QCheck.Test.make ~name:"fdiv/cdiv consistency" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let q = Ints.fdiv a b in
      (q * b <= a && a < (q + 1) * b)
      && Ints.cdiv a b = -Ints.fdiv (-a) b)

let prop_gcd_lcm_extremes =
  (* gcd/lcm must never return a negative value: [abs min_int] is
     min_int again, so those inputs must raise Overflow instead. *)
  let edgy =
    QCheck.Gen.(
      oneof
        [
          oneofl [ min_int; min_int + 1; max_int; 0; 1; -1; 2; -2 ];
          int;
        ])
  in
  QCheck.Test.make ~name:"gcd/lcm never negative, Overflow on min_int"
    ~count:1000
    (QCheck.make
       ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
       QCheck.Gen.(pair edgy edgy))
    (fun (a, b) ->
      let gcd_ok =
        match Ints.gcd a b with
        | g ->
          a <> min_int && b <> min_int && g >= 0
          && (if g = 0 then a = 0 && b = 0 else a mod g = 0 && b mod g = 0)
        | exception Ints.Overflow -> a = min_int || b = min_int
      in
      let lcm_ok =
        match Ints.lcm a b with
        | l ->
          l >= 0
          && (if l = 0 then a = 0 || b = 0 else l mod a = 0 && l mod b = 0)
        | exception Ints.Overflow ->
          (* legitimate when |lcm| exceeds the word, and mandatory on
             min_int arguments *)
          true
      in
      gcd_ok && lcm_ok)

(* ---------------- Spaces and affine expressions ---------------- *)

let sp2 = Space.make ~params:[| "n" |] ~dims:[| "x"; "y" |]

let test_space () =
  checki "n_total" 3 (Space.n_total sp2);
  checki "param idx" 0 (Space.var_index_exn sp2 "n");
  checki "dim idx x" 1 (Space.var_index_exn sp2 "x");
  checki "dim idx y" 2 (Space.var_index_exn sp2 "y");
  check Alcotest.string "var_name" "y" (Space.var_name sp2 2);
  let dropped = Space.drop_dim sp2 1 in
  checki "after drop" 1 (Space.n_dims dropped);
  check Alcotest.string "remaining dim" "y" (Space.dims dropped).(0)

let test_aff () =
  let a = Aff.of_terms sp2 [ (2, "x"); (-1, "y"); (3, "n") ] ~const:5 in
  checki "eval" (2 * 7 - 4 + 3 * 10 + 5) (Aff.eval a [| 10; 7; 4 |]);
  let b = Aff.add a (Aff.var sp2 "y") in
  checki "coeff y after add" 0 (Aff.coeff_of b "y");
  let c = Aff.substitute a (Space.var_index_exn sp2 "x") (Aff.var sp2 "y") in
  checki "subst coeff x" 0 (Aff.coeff_of c "x");
  checki "subst coeff y" 1 (Aff.coeff_of c "y");
  checkb "is_param_only" true
    (Aff.is_param_only (Aff.of_terms sp2 [ (4, "n") ] ~const:1));
  checkb "not param only" false (Aff.is_param_only a)

(* ---------------- Convex polyhedra ---------------- *)

(* Helper: the box lo <= x <= hi (inclusive) for each listed dim. *)
let box space bounds =
  Poly.make space
    (List.concat_map
       (fun (name, lo, hi) ->
         let v = Aff.var space name in
         [ Constr.ge2 v (Aff.const space lo); Constr.le2 v (Aff.const space hi) ])
       bounds)

let spxy = Space.make ~params:[||] ~dims:[| "x"; "y" |]

let test_poly_membership () =
  let p = box spxy [ ("x", 0, 4); ("y", 1, 3) ] in
  checkb "inside" true (Poly.mem p [| 2; 2 |]);
  checkb "boundary" true (Poly.mem p [| 4; 1 |]);
  checkb "outside" false (Poly.mem p [| 5; 2 |]);
  checkb "outside y" false (Poly.mem p [| 0; 0 |])

let test_poly_empty () =
  let p = box spxy [ ("x", 3, 2) ] in
  checkb "empty interval" true (Poly.is_empty p);
  let q = box spxy [ ("x", 0, 10); ("y", 0, 10) ] in
  checkb "box nonempty" false (Poly.is_empty q);
  (* x = y, x >= 5, y <= 3 is infeasible *)
  let vx = Aff.var spxy "x" and vy = Aff.var spxy "y" in
  let r =
    Poly.make spxy
      [ Constr.eq2 vx vy;
        Constr.ge2 vx (Aff.const spxy 5);
        Constr.le2 vy (Aff.const spxy 3) ]
  in
  checkb "eq chain infeasible" true (Poly.is_empty r);
  (* unbounded but satisfiable *)
  let s = Poly.make spxy [ Constr.ge2 vx vy ] in
  checkb "halfplane nonempty" false (Poly.is_empty s)

let test_poly_param_empty () =
  (* 0 <= x < n and n <= 0: no valuation admits a point. *)
  let v n = Aff.var sp2 n in
  let p =
    Poly.make sp2
      [ Constr.ge2 (v "x") (Aff.const sp2 0);
        Constr.lt2 (v "x") (v "n");
        Constr.le2 (v "n") (Aff.const sp2 0) ]
  in
  checkb "param-infeasible" true (Poly.is_empty p);
  let q =
    Poly.make sp2
      [ Constr.ge2 (v "x") (Aff.const sp2 0); Constr.lt2 (v "x") (v "n") ]
  in
  checkb "param-feasible" false (Poly.is_empty q)

let test_poly_project () =
  (* Project the triangle 0 <= y <= x <= 4 onto x: 0 <= x <= 4. *)
  let vx = Aff.var spxy "x" and vy = Aff.var spxy "y" in
  let tri =
    Poly.make spxy
      [ Constr.ge2 vy (Aff.const spxy 0);
        Constr.le2 vy vx;
        Constr.le2 vx (Aff.const spxy 4) ]
  in
  let px = Poly.project_onto tri [ 0 ] in
  checki "1 dim left" 1 (Space.n_dims (Poly.space px));
  checkb "x=0 in" true (Poly.mem px [| 0 |]);
  checkb "x=4 in" true (Poly.mem px [| 4 |]);
  checkb "x=5 out" false (Poly.mem px [| 5 |]);
  checkb "x=-1 out" false (Poly.mem px [| -1 |])

let test_poly_sample () =
  let p = box spxy [ ("x", 10, 12); ("y", -3, -3) ] in
  (match Poly.sample p with
  | Some pt ->
      checkb "sample mem" true (Poly.mem p pt);
      checki "y forced" (-3) pt.(1)
  | None -> Alcotest.fail "expected a sample");
  let e = box spxy [ ("x", 1, 0) ] in
  checkb "no sample in empty" true (Poly.sample e = None)

let test_poly_subsumes () =
  let big = box spxy [ ("x", 0, 10); ("y", 0, 10) ] in
  let small = box spxy [ ("x", 2, 5); ("y", 3, 4) ] in
  checkb "big >= small" true (Poly.subsumes big small);
  checkb "small !>= big" false (Poly.subsumes small big);
  checkb "self" true (Poly.subsumes big big)

(* Random conjunctions of constraints inside a bounded box: check that
   FM-based emptiness agrees with brute force. *)
let gen_constr =
  QCheck.Gen.(
    int_range (-3) 3 >>= fun cx ->
    int_range (-3) 3 >>= fun cy ->
    int_range (-8) 8 >>= fun c ->
    frequency [ (4, return Constr.Ge); (1, return Constr.Eq) ] >>= fun kind ->
    return (cx, cy, c, kind))

let poly_of_spec specs =
  let base = box spxy [ ("x", -4, 4); ("y", -4, 4) ] in
  Poly.add_constrs base
    (List.map
       (fun (cx, cy, c, kind) ->
         Constr.make kind (Aff.of_terms spxy [ (cx, "x"); (cy, "y") ] ~const:c))
       specs)

let brute_empty specs =
  let p = poly_of_spec specs in
  let found = ref false in
  for x = -4 to 4 do
    for y = -4 to 4 do
      if Poly.mem p [| x; y |] then found := true
    done
  done;
  not !found

let prop_emptiness =
  QCheck.Test.make ~name:"FM emptiness is sound (never claims empty wrongly)"
    ~count:300
    QCheck.(make Gen.(list_size (int_range 0 4) gen_constr))
    (fun specs ->
      let fm = Poly.is_empty (poly_of_spec specs) in
      let bf = brute_empty specs in
      (* FM emptiness over Q: if FM says empty, brute force must agree.
         (The converse can fail only for Z-empty but Q-nonempty sets.) *)
      if fm then bf else true)

let prop_projection_sound =
  QCheck.Test.make ~name:"projection contains the shadow of every point"
    ~count:200
    QCheck.(make Gen.(list_size (int_range 0 3) gen_constr))
    (fun specs ->
      let p = poly_of_spec specs in
      let px = Poly.project_onto p [ 0 ] in
      let ok = ref true in
      for x = -4 to 4 do
        for y = -4 to 4 do
          if Poly.mem p [| x; y |] && not (Poly.mem px [| x |]) then ok := false
        done
      done;
      !ok)

(* ---------------- Pset ---------------- *)

let pset_of_boxes boxes =
  Pset.of_polys spxy (List.map (fun b -> box spxy b) boxes)

let points s = Pset.enumerate ~default_radius:10 s

let test_pset_union_subtract () =
  let a = pset_of_boxes [ [ ("x", 0, 2); ("y", 0, 2) ] ] in
  let b = pset_of_boxes [ [ ("x", 2, 4); ("y", 0, 2) ] ] in
  let u = Pset.union a b in
  checki "union size" (9 + 9 - 3) (List.length (points u));
  let d = Pset.subtract u a in
  checki "difference size" (15 - 9) (List.length (points d));
  checkb "difference disjoint from a" true
    (List.for_all (fun pt -> not (Pset.mem a (Array.of_list pt))) (points d));
  checkb "subsumes" true (Pset.subsumes u a);
  checkb "not subsumes" false (Pset.subsumes a u)

let test_pset_equal_coalesce () =
  let a = pset_of_boxes [ [ ("x", 0, 4) ]; [ ("x", 2, 4) ] ] in
  let b = pset_of_boxes [ [ ("x", 0, 4) ] ] in
  checkb "redundant piece equal" true (Pset.equal a b);
  let c = Pset.coalesce a in
  checki "coalesced to 1 piece" 1 (Pset.n_pieces c)

let gen_boxes =
  QCheck.Gen.(
    list_size (int_range 1 3)
      ( int_range (-4) 3 >>= fun x0 ->
        int_range x0 4 >>= fun x1 ->
        int_range (-4) 3 >>= fun y0 ->
        int_range y0 4 >>= fun y1 ->
        return [ ("x", x0, x1); ("y", y0, y1) ] ))

let prop_set_algebra =
  QCheck.Test.make ~name:"pset algebra matches brute force" ~count:100
    QCheck.(make Gen.(pair gen_boxes gen_boxes))
    (fun (ba, bb) ->
      let a = pset_of_boxes ba and b = pset_of_boxes bb in
      let inside s (x, y) = Pset.mem s [| x; y |] in
      let all =
        List.concat_map
          (fun x -> List.map (fun y -> (x, y)) (List.init 11 (fun i -> i - 5)))
          (List.init 11 (fun i -> i - 5))
      in
      List.for_all
        (fun pt ->
          let u = inside (Pset.union a b) pt = (inside a pt || inside b pt) in
          let i =
            inside (Pset.intersect a b) pt = (inside a pt && inside b pt)
          in
          let d =
            inside (Pset.subtract a b) pt = (inside a pt && not (inside b pt))
          in
          u && i && d)
        all)

(* ---------------- Pmap ---------------- *)

let test_pmap_image () =
  (* The paper's Figure 1: S1 = { [y,x] | 0<=y<=x<=4 },
     M = { [y,x] -> [y+1, x+3] }. *)
  let dom = Space.make ~params:[||] ~dims:[| "y"; "x" |] in
  let ran = Space.make ~params:[||] ~dims:[| "y'"; "x'" |] in
  let vy = Aff.var dom "y" and vx = Aff.var dom "x" in
  let s1 =
    Pset.of_poly
      (Poly.make dom
         [ Constr.ge2 vy (Aff.const dom 0);
           Constr.le2 vy vx;
           Constr.le2 vx (Aff.const dom 4) ])
  in
  let m =
    Pmap.of_affs ~dom ~ran
      ~affs:[| Aff.add_const vy 1; Aff.add_const vx 3 |]
      ~guards:[]
  in
  let s2 = Pmap.image m s1 in
  (* Equation 3: S2 = { [y,x] | 1 <= y <= x-2 and 3 <= x <= 7 } *)
  let expected =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y ->
            if 1 <= y && y <= x - 2 && 3 <= x && x <= 7 then Some [ y; x ]
            else None)
          (List.init 20 (fun i -> i - 5)))
      (List.init 20 (fun i -> i - 5))
  in
  check
    Alcotest.(list (list int))
    "figure 1 image" (List.sort compare expected)
    (Pset.enumerate ~default_radius:10 s2)

let test_pmap_injective () =
  let dom = Space.make ~params:[| "n" |] ~dims:[| "x" |] in
  let ran1 = Space.make ~params:[| "n" |] ~dims:[| "o" |] in
  let vx = Aff.var dom "x" in
  (* o = x  with 0 <= x < n : injective *)
  let comb = Pmap.combined_space dom ran1 in
  let dom_guards =
    [ Constr.ge (Aff.var comb "x");
      Constr.lt2 (Aff.var comb "x") (Aff.var comb "n") ]
  in
  let ident = Pmap.of_affs ~dom ~ran:ran1 ~affs:[| vx |] ~guards:dom_guards in
  checkb "identity injective" true (Pmap.is_injective ident);
  (* o = 0 for 0 <= x < n : not injective when n >= 2 *)
  let const0 =
    Pmap.of_affs ~dom ~ran:ran1 ~affs:[| Aff.zero dom |] ~guards:dom_guards
  in
  checkb "constant not injective" false (Pmap.is_injective const0);
  (* 2-d -> 1-d sum is not injective *)
  let dom2 = Space.make ~params:[||] ~dims:[| "x"; "y" |] in
  let ran2 = Space.make ~params:[||] ~dims:[| "o" |] in
  let sum =
    Pmap.of_affs ~dom:dom2 ~ran:ran2
      ~affs:[| Aff.add (Aff.var dom2 "x") (Aff.var dom2 "y") |]
      ~guards:[]
  in
  checkb "sum not injective" false (Pmap.is_injective sum);
  (* o = 2x is injective (gaps allowed) *)
  let stride =
    Pmap.of_affs ~dom ~ran:ran1 ~affs:[| Aff.scale 2 vx |] ~guards:[]
  in
  checkb "stride-2 injective" true (Pmap.is_injective stride)

let test_pmap_domain_range () =
  let dom = Space.make ~params:[||] ~dims:[| "x" |] in
  let ran = Space.make ~params:[||] ~dims:[| "o" |] in
  let comb = Pmap.combined_space dom ran in
  let m =
    Pmap.of_affs ~dom ~ran
      ~affs:[| Aff.add_const (Aff.var dom "x") 10 |]
      ~guards:
        [ Constr.ge (Aff.var comb "x");
          Constr.le2 (Aff.var comb "x") (Aff.const comb 3) ]
  in
  check
    Alcotest.(list (list int))
    "domain" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (Pset.enumerate ~default_radius:10 (Pmap.domain m));
  check
    Alcotest.(list (list int))
    "range"
    [ [ 10 ]; [ 11 ]; [ 12 ]; [ 13 ] ]
    (Pset.enumerate ~default_radius:20 (Pmap.range m));
  (* preimage of {12} is {2} *)
  let target =
    Pset.of_poly
      (Poly.make ran [ Constr.eq2 (Aff.var ran "o") (Aff.const ran 12) ])
  in
  check
    Alcotest.(list (list int))
    "preimage" [ [ 2 ] ]
    (Pset.enumerate ~default_radius:20 (Pmap.preimage m target))

(* ---------------- Ast / codegen ---------------- *)

let collect_points stmt env =
  let pts = ref [] in
  Ast.exec env stmt
    ~on_point:(fun p -> pts := Array.to_list p :: !pts)
    ~on_range:(fun rows lo hi ->
      for v = lo to hi do
        pts := (Array.to_list rows @ [ v ]) :: !pts
      done);
  List.sort compare !pts

let test_scan_triangle () =
  let vx = Aff.var spxy "x" and vy = Aff.var spxy "y" in
  let tri =
    Poly.make spxy
      [ Constr.ge2 vy (Aff.const spxy 0);
        Constr.le2 vy vx;
        Constr.le2 vx (Aff.const spxy 3) ]
  in
  let expected = points (Pset.of_poly tri) in
  let got = collect_points (Ast.scan_poly tri) (Hashtbl.create 8) in
  check Alcotest.(list (list int)) "scan = enumerate" expected got;
  let got_ranges =
    collect_points (Ast.scan_poly ~emit_ranges:true tri) (Hashtbl.create 8)
  in
  check Alcotest.(list (list int)) "range scan = enumerate" expected got_ranges

let test_scan_parametric () =
  (* 0 <= x < n scanned with n bound at execution time. *)
  let sp = Space.make ~params:[| "n" |] ~dims:[| "x" |] in
  let p =
    Poly.make sp
      [ Constr.ge (Aff.var sp "x"); Constr.lt2 (Aff.var sp "x") (Aff.var sp "n") ]
  in
  let env = Hashtbl.create 8 in
  Hashtbl.replace env "n" 5;
  let got = collect_points (Ast.scan_poly p) env in
  check Alcotest.(list (list int)) "parametric scan"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]
    got

let prop_scan_matches_enumerate =
  QCheck.Test.make ~name:"scan_set enumerates exactly the set" ~count:100
    QCheck.(make gen_boxes)
    (fun boxes ->
      let s = pset_of_boxes boxes in
      let expected = points s in
      let got =
        collect_points (Ast.scan_set s) (Hashtbl.create 8)
        |> List.sort_uniq compare
      in
      got = expected)

let test_unbounded_scan () =
  let p = Poly.make spxy [ Constr.ge (Aff.var spxy "x") ] in
  Alcotest.check_raises "unbounded raises" (Ast.Unbounded "x") (fun () ->
      ignore (Ast.scan_poly p))

(* ---------------- Enumerate ---------------- *)

let test_enumerate_full_rows () =
  (* rows 2..5 of an n x n array, full width: must collapse to a single
     linear range [2n, 6n). *)
  let sp = Space.make ~params:[| "n" |] ~dims:[| "y"; "x" |] in
  let v nm = Aff.var sp nm in
  let s =
    Pset.of_poly
      (Poly.make sp
         [ Constr.ge2 (v "y") (Aff.const sp 2);
           Constr.le2 (v "y") (Aff.const sp 5);
           Constr.ge (v "x");
           Constr.lt2 (v "x") (v "n") ])
  in
  let e = Enumerate.of_set ~sizes:[| Ast.Var "n"; Ast.Var "n" |] s in
  let env = Enumerate.env_of_bindings [ ("n", 8) ] in
  check
    Alcotest.(list (pair int int))
    "collapsed band"
    [ (16, 48) ]
    (Enumerate.eval e env);
  (* The plan should contain a row-block node (collapse happened). *)
  let rec has_block = function
    | Enumerate.P_row_block _ -> true
    | Enumerate.P_seq l -> List.exists has_block l
    | Enumerate.P_for (_, _, _, b) | Enumerate.P_guard (_, b) -> has_block b
    | Enumerate.P_point _ | Enumerate.P_ranges _ -> false
  in
  checkb "row-block collapse applied" true (has_block e.Enumerate.plan)

let test_enumerate_partial_rows () =
  (* columns 1..2 of rows 0..1 in a 4x4 array: two ranges. *)
  let sp = Space.make ~params:[||] ~dims:[| "y"; "x" |] in
  let s = Pset.of_poly (box sp [ ("y", 0, 1); ("x", 1, 2) ]) in
  let e = Enumerate.of_set ~sizes:[| Ast.Int 4; Ast.Int 4 |] s in
  check
    Alcotest.(list (pair int int))
    "two row fragments"
    [ (1, 3); (5, 7) ]
    (Enumerate.eval e (Hashtbl.create 4))

let test_enumerate_merge () =
  check
    Alcotest.(list (pair int int))
    "canonicalize merges"
    [ (0, 10); (12, 15) ]
    (Enumerate.canonicalize
       [ (5, 10); (0, 5); (3, 7); (12, 14); (14, 15); (9, 9) ])

let prop_enumerate_covers =
  QCheck.Test.make ~name:"enumerator covers exactly the set points" ~count:100
    QCheck.(make gen_boxes)
    (fun boxes ->
      (* Interpret the boxes as sets over a 12x12 array at offset +5. *)
      let sp = Space.make ~params:[||] ~dims:[| "x"; "y" |] in
      let shift (nm, a, b) = (nm, a + 5, b + 5) in
      let s =
        Pset.of_polys sp (List.map (fun b -> box sp (List.map shift b)) boxes)
      in
      let e = Enumerate.of_set ~sizes:[| Ast.Int 12; Ast.Int 12 |] s in
      let ranges = Enumerate.eval e (Hashtbl.create 4) in
      let in_ranges off =
        List.exists (fun (a, b) -> a <= off && off < b) ranges
      in
      let ok = ref true in
      for x = 0 to 11 do
        for y = 0 to 11 do
          let off = (x * 12) + y in
          if Pset.mem s [| x; y |] <> in_ranges off then ok := false
        done
      done;
      (* Canonical ranges are sorted, disjoint and nonempty. *)
      let rec canon = function
        | [] | [ _ ] -> true
        | (a1, b1) :: ((a2, _) :: _ as rest) -> a1 < b1 && b1 < a2 && canon rest
      in
      !ok
      && canon ranges
      && match ranges with [] -> true | (a, b) :: _ -> a < b)

let qtest t = QCheck_alcotest.to_alcotest t

let base_suites =
    [
      ( "ints",
        [
          Alcotest.test_case "fdiv/cdiv" `Quick test_fdiv_cdiv;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd;
          Alcotest.test_case "overflow" `Quick test_overflow;
          qtest prop_fdiv_cdiv;
          qtest prop_gcd_lcm_extremes;
        ] );
      ( "space-aff",
        [
          Alcotest.test_case "space" `Quick test_space;
          Alcotest.test_case "aff" `Quick test_aff;
        ] );
      ( "poly",
        [
          Alcotest.test_case "membership" `Quick test_poly_membership;
          Alcotest.test_case "emptiness" `Quick test_poly_empty;
          Alcotest.test_case "parametric emptiness" `Quick test_poly_param_empty;
          Alcotest.test_case "projection" `Quick test_poly_project;
          Alcotest.test_case "sampling" `Quick test_poly_sample;
          Alcotest.test_case "subsumption" `Quick test_poly_subsumes;
          qtest prop_emptiness;
          qtest prop_projection_sound;
        ] );
      ( "pset",
        [
          Alcotest.test_case "union/subtract" `Quick test_pset_union_subtract;
          Alcotest.test_case "equal/coalesce" `Quick test_pset_equal_coalesce;
          qtest prop_set_algebra;
        ] );
      ( "pmap",
        [
          Alcotest.test_case "figure-1 image" `Quick test_pmap_image;
          Alcotest.test_case "injectivity" `Quick test_pmap_injective;
          Alcotest.test_case "domain/range/preimage" `Quick test_pmap_domain_range;
        ] );
      ( "ast",
        [
          Alcotest.test_case "scan triangle" `Quick test_scan_triangle;
          Alcotest.test_case "scan parametric" `Quick test_scan_parametric;
          Alcotest.test_case "unbounded" `Quick test_unbounded_scan;
          qtest prop_scan_matches_enumerate;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "full-row collapse" `Quick test_enumerate_full_rows;
          Alcotest.test_case "partial rows" `Quick test_enumerate_partial_rows;
          Alcotest.test_case "merge" `Quick test_enumerate_merge;
          qtest prop_enumerate_covers;
        ] );
    ]

(* ---------------- Constraint normalization ---------------- *)

let test_constr_normalize () =
  (* 2x + 2y + 3 >= 0 tightens to x + y + 1 >= 0 over Z *)
  let aff = Aff.of_terms spxy [ (2, "x"); (2, "y") ] ~const:3 in
  let c = Constr.normalize (Constr.ge aff) in
  checki "tightened coeff" 1 (Aff.coeff_of (Constr.aff c) "x");
  checki "floored constant" 1 (Aff.constant (Constr.aff c));
  (* equality with non-dividing constant is infeasible *)
  let e = Constr.normalize (Constr.eq (Aff.of_terms spxy [ (2, "x") ] ~const:1)) in
  checkb "infeasible eq detected" true
    (Constr.triviality e = Constr.Trivially_false);
  (* equality sign canonicalization *)
  let e2 = Constr.normalize (Constr.eq (Aff.of_terms spxy [ (-1, "x") ] ~const:5)) in
  checki "sign flipped" 1 (Aff.coeff_of (Constr.aff e2) "x")

let prop_normalize_preserves_integers =
  QCheck.Test.make ~name:"normalization preserves integer solutions" ~count:300
    QCheck.(quad (int_range (-4) 4) (int_range (-4) 4) (int_range (-10) 10) bool)
    (fun (cx, cy, c, is_eq) ->
      let aff = Aff.of_terms spxy [ (cx, "x"); (cy, "y") ] ~const:c in
      let k = if is_eq then Constr.eq aff else Constr.ge aff in
      let k' = Constr.normalize k in
      let ok = ref true in
      for x = -6 to 6 do
        for y = -6 to 6 do
          let env = [| x; y |] in
          let before = Constr.eval k env in
          let after =
            match Constr.triviality k' with
            | Constr.Trivially_true -> true
            | Constr.Trivially_false -> false
            | Constr.Nontrivial -> Constr.eval k' env
          in
          if before <> after then ok := false
        done
      done;
      !ok)

(* ---------------- Map algebra ---------------- *)

let prop_image_soundness =
  (* Every point of a set maps into the image under a random affine
     translation/scaling map. *)
  QCheck.Test.make ~name:"image contains all mapped points" ~count:100
    QCheck.(pair (make gen_boxes) (pair (int_range (-3) 3) (int_range (-3) 3)))
    (fun (boxes, (dx, dy)) ->
      let dom = Space.make ~params:[||] ~dims:[| "x"; "y" |] in
      let ran = Space.make ~params:[||] ~dims:[| "u"; "v" |] in
      let set =
        Pset.of_polys dom (List.map (fun b -> box dom b) boxes)
      in
      let m =
        Pmap.of_affs ~dom ~ran
          ~affs:
            [| Aff.add_const (Aff.var dom "x") dx;
               Aff.add_const (Aff.scale 2 (Aff.var dom "y")) dy |]
          ~guards:[]
      in
      let img = Pmap.image m set in
      List.for_all
        (fun pt ->
           match pt with
           | [ x; y ] -> Pset.mem img [| x + dx; (2 * y) + dy |]
           | _ -> false)
        (points set))

let test_map_inverse_roundtrip () =
  let dom = Space.make ~params:[||] ~dims:[| "x" |] in
  let ran = Space.make ~params:[||] ~dims:[| "u" |] in
  let m =
    Pmap.of_affs ~dom ~ran
      ~affs:[| Aff.add_const (Aff.var dom "x") 7 |]
      ~guards:[]
  in
  let s =
    Pset.of_poly
      (Poly.make dom
         [ Constr.ge (Aff.var dom "x");
           Constr.le2 (Aff.var dom "x") (Aff.const dom 5) ])
  in
  let back = Pmap.preimage m (Pmap.image m s) in
  (* for a bijective map, preimage(image(S)) = S *)
  check Alcotest.(list (list int)) "roundtrip"
    (Pset.enumerate ~default_radius:20 s)
    (Pset.enumerate ~default_radius:20 back)

(* ---------------- Parametric codegen ---------------- *)

let prop_parametric_scan =
  (* Scan a parametric trapezoid 0 <= y < h, 0 <= x < w - y for random
     (w, h) and compare against direct enumeration. *)
  QCheck.Test.make ~name:"parametric scan matches direct enumeration" ~count:60
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (w, h) ->
      let sp = Space.make ~params:[| "w"; "h" |] ~dims:[| "y"; "x" |] in
      let vy = Aff.var sp "y" and vx = Aff.var sp "x" in
      let poly =
        Poly.make sp
          [ Constr.ge2 vy (Aff.zero sp);
            Constr.lt2 vy (Aff.var sp "h");
            Constr.ge2 vx (Aff.zero sp);
            Constr.lt2 vx (Aff.sub (Aff.var sp "w") vy) ]
      in
      let env = Hashtbl.create 4 in
      Hashtbl.replace env "w" w;
      Hashtbl.replace env "h" h;
      let got = collect_points (Ast.scan_poly poly) env in
      let expected =
        List.concat_map
          (fun y ->
             List.filter_map
               (fun x -> if x < w - y then Some [ y; x ] else None)
               (List.init (max 0 (w - y)) (fun i -> i)))
          (List.init h (fun i -> i))
        |> List.sort compare
      in
      got = expected)

(* ---------------- Rectangle merging ---------------- *)

let prop_merge_rects =
  QCheck.Test.make ~name:"merge_rects preserves coverage and shrinks" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 6)
            ( int_range 0 7 >>= fun r0 ->
              int_range r0 7 >>= fun r1 ->
              int_range 0 7 >>= fun c0 ->
              int_range c0 7 >>= fun c1 -> return (r0, r1, c0, c1) )))
    (fun rects ->
      let merged = Enumerate.merge_rects rects in
      let covered rs (r, c) =
        List.exists (fun (r0, r1, c0, c1) -> r0 <= r && r <= r1 && c0 <= c && c <= c1) rs
      in
      let ok = ref (List.length merged <= List.length rects) in
      for r = 0 to 7 do
        for c = 0 to 7 do
          if covered rects (r, c) <> covered merged (r, c) then ok := false
        done
      done;
      !ok)

let test_merge_rects_cases () =
  let eq_rects msg expected got = checkb msg true (expected = got) in
  (* column-adjacent same-rows rects merge *)
  eq_rects "columns merge" [ (0, 3, 0, 3) ]
    (Enumerate.merge_rects [ (0, 3, 0, 1); (0, 3, 2, 3) ]);
  (* row-adjacent same-cols rects merge *)
  eq_rects "rows merge" [ (0, 5, 1, 2) ]
    (Enumerate.merge_rects [ (0, 2, 1, 2); (3, 5, 1, 2) ]);
  (* subsumed rect dropped *)
  eq_rects "subsumption" [ (0, 5, 0, 5) ]
    (Enumerate.merge_rects [ (1, 2, 1, 2); (0, 5, 0, 5) ]);
  (* disjoint rects stay *)
  checki "disjoint stay" 2
    (List.length (Enumerate.merge_rects [ (0, 1, 0, 1); (4, 5, 4, 5) ]))

(* ---------------- Aff rebasing ---------------- *)

let prop_coalesce_preserves =
  QCheck.Test.make ~name:"coalesce preserves set membership" ~count:100
    (QCheck.make gen_boxes)
    (fun boxes ->
      let s = pset_of_boxes boxes in
      let c = Pset.coalesce s in
      let ok = ref true in
      for x = -5 to 5 do
        for y = -5 to 5 do
          if Pset.mem s [| x; y |] <> Pset.mem c [| x; y |] then ok := false
        done
      done;
      !ok && Pset.n_pieces c <= Pset.n_pieces s)

let prop_inverse_involution =
  QCheck.Test.make ~name:"map inverse is an involution (semantically)"
    ~count:60
    QCheck.(pair (int_range (-3) 3) (int_range (-3) 3))
    (fun (dx, dy) ->
      let dom = Space.make ~params:[||] ~dims:[| "x"; "y" |] in
      let ran = Space.make ~params:[||] ~dims:[| "u"; "v" |] in
      let m =
        Pmap.of_affs ~dom ~ran
          ~affs:
            [| Aff.add_const (Aff.var dom "x") dx;
               Aff.add_const (Aff.var dom "y") dy |]
          ~guards:[]
      in
      let mm = Pmap.inverse (Pmap.inverse m) in
      let s = pset_of_boxes [ [ ("x", -2, 2); ("y", -1, 1) ] ] in
      Pset.enumerate ~default_radius:10 (Pmap.image m s)
      = Pset.enumerate ~default_radius:10 (Pmap.image mm s))

let prop_substitute_semantics =
  QCheck.Test.make ~name:"substitution preserves semantics" ~count:100
    QCheck.(pair (int_range (-3) 3) (int_range (-5) 5))
    (fun (k, c) ->
      (* P: 0 <= x <= 8, x <= y; substitute x := k*y + c and compare
         membership against manual evaluation. *)
      let vx = Aff.var spxy "x" and vy = Aff.var spxy "y" in
      let p =
        Poly.make spxy
          [ Constr.ge2 vx (Aff.const spxy 0);
            Constr.le2 vx (Aff.const spxy 8);
            Constr.le2 vx vy ]
      in
      let e = Aff.add_const (Aff.scale k vy) c in
      let q = Poly.substitute p (Space.var_index_exn spxy "x") e in
      let ok = ref true in
      for y = -6 to 6 do
        let x = (k * y) + c in
        let expect = 0 <= x && x <= 8 && x <= y in
        (* q no longer constrains x *)
        if Poly.mem q [| 0; y |] <> expect then ok := false
      done;
      !ok)

let test_aff_rebase () =
  let small = Space.make ~params:[| "n" |] ~dims:[| "a" |] in
  let big = Space.make ~params:[| "n" |] ~dims:[| "z"; "a"; "b" |] in
  let aff = Aff.of_terms small [ (2, "a"); (3, "n") ] ~const:1 in
  let remap =
    Array.init (Space.n_total small) (fun i ->
        Space.var_index_exn big (Space.var_name small i))
  in
  let aff' = Aff.rebase aff big remap in
  checki "coeff a" 2 (Aff.coeff_of aff' "a");
  checki "coeff n" 3 (Aff.coeff_of aff' "n");
  checki "coeff z" 0 (Aff.coeff_of aff' "z");
  checki "const" 1 (Aff.constant aff')

let () =
  Alcotest.run "poly"
    (base_suites
     @ [
         ( "constr",
           [
             Alcotest.test_case "normalization" `Quick test_constr_normalize;
             qtest prop_normalize_preserves_integers;
           ] );
         ( "map-algebra",
           [
             qtest prop_image_soundness;
             Alcotest.test_case "inverse roundtrip" `Quick test_map_inverse_roundtrip;
           ] );
         ( "codegen-parametric", [ qtest prop_parametric_scan ] );
         ( "rects",
           [
             qtest prop_merge_rects;
             Alcotest.test_case "merge cases" `Quick test_merge_rects_cases;
           ] );
         ("aff-rebase", [ Alcotest.test_case "rebase" `Quick test_aff_rebase ]);
         ( "more-properties",
           [
             qtest prop_coalesce_preserves;
             qtest prop_inverse_involution;
             qtest prop_substitute_semantics;
           ] );
       ])
