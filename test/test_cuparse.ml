(* Tests for the toy-CUDA parser: expression/statement grammar,
   render/parse round-trips over all bundled applications, and the
   text-to-execution pipeline. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- Kernel parsing ---------------- *)

let parse_kernel_str src =
  let kernels, _ =
    Cuparse.parse_cu ~name:"t" (src ^ "\nint main() { return 0; }\n")
  in
  match kernels with [ k ] -> k | _ -> Alcotest.fail "expected one kernel"

let test_parse_simple_kernel () =
  let k =
    parse_kernel_str
      {|__global__ void axpy(int n, float alpha, float *x /* [n] */, float *y /* [n] */) {
          auto gi = (threadIdx.x + (blockIdx.x * blockDim.x));
          if ((gi < n)) {
            y[gi] = ((alpha * x[gi]) + y[gi]);
          }
        }|}
  in
  checks "name" "axpy" k.Kir.name;
  checki "params" 4 (List.length k.Kir.params);
  (match k.Kir.params with
   | [ Kir.Scalar "n"; Kir.Fscalar "alpha"; Kir.Array { name = "x"; dims };
       Kir.Array { name = "y"; _ } ] ->
     checkb "dims" true (dims = [| Kir.Dim_param "n" |])
   | _ -> Alcotest.fail "bad params");
  match k.Kir.body with
  | [ Kir.Local ("gi", _); Kir.If (_, [ Kir.Store ("y", [ _ ], _) ], []) ] -> ()
  | _ -> Alcotest.fail "bad body shape"

let test_parse_operators () =
  let k =
    parse_kernel_str
      {|__global__ void ops(int n, float *o /* [8] */) {
          auto a = min(1, max(2, 3));
          auto b = sqrtf(2.0f);
          auto c = rsqrtf(4.0f);
          auto d = fabsf(-2.5f);
          auto e = ((1 <= 2) && ((3 > 2) || (n != 4)));
          auto g = (7 % 3);
          o[0] = ((a + b) - ((c * d) / 2.0f));
          __syncthreads();
        }|}
  in
  checki "statements" 8 (List.length k.Kir.body);
  (* evaluate to validate semantics survived parsing *)
  let out = Array.make 8 nan in
  Keval.run k ~grid:Dim3.one ~block:Dim3.one ~args:[ Keval.AInt 5 ]
    ~load:(fun _ off -> out.(off))
    ~store:(fun _ off v -> out.(off) <- v);
  let expected = (1.0 +. sqrt 2.0) -. (0.5 *. 2.5 /. 2.0) in
  Alcotest.(check (float 1e-12)) "value" expected out.(0)

let test_parse_for_loop () =
  let k =
    parse_kernel_str
      {|__global__ void loop(int n, float *o /* [n] */) {
          auto acc = 0f;
          for (int k = 0; k < n; k++) {
            acc = (acc + k);
          }
          o[0] = acc;
        }|}
  in
  let out = Array.make 4 nan in
  Keval.run k ~grid:Dim3.one ~block:Dim3.one ~args:[ Keval.AInt 4 ]
    ~load:(fun _ off -> out.(off))
    ~store:(fun _ off v -> out.(off) <- v);
  Alcotest.(check (float 0.0)) "sum 0..3" 6.0 out.(0)

let test_parse_errors () =
  let fails src =
    match Cuparse.parse_cu ~name:"t" src with
    | exception Cuparse.Error _ -> true
    | _ -> false
  in
  checkb "no main" true (fails "__global__ void k() { }");
  checkb "unterminated" true (fails "int main() { ");
  checkb "bad stmt" true (fails "int main() { cudaBogus(); }");
  checkb "unknown kernel" true (fails "int main() { foo<<<1, 1>>>(); }")

(* ---------------- Round-trips over the bundled apps ---------------- *)

(* Host programs compare up to host-array data (the text carries only
   extents). *)
let normalize_stmt (s : Host_ir.stmt) : Host_ir.stmt =
  match s with
  | Host_ir.Memcpy_h2d { dst; src } ->
    Host_ir.Memcpy_h2d { dst; src = Host_ir.host_phantom src.Host_ir.len }
  | Host_ir.Memcpy_d2h { dst; src } ->
    Host_ir.Memcpy_d2h { dst = Host_ir.host_phantom dst.Host_ir.len; src }
  | other -> other

let rec normalize_stmts l =
  List.map
    (function
      | Host_ir.Repeat (n, body) -> Host_ir.Repeat (n, normalize_stmts body)
      | s -> normalize_stmt s)
    l

let roundtrip_app name (prog : Host_ir.t) =
  let src = Cusrc.render prog in
  let kernels, parsed = Cuparse.parse_cu ~name:prog.Host_ir.name src in
  (* kernels round-trip structurally *)
  List.iter2
    (fun (k : Kir.t) (k' : Kir.t) ->
       checkb (name ^ ": kernel " ^ k.Kir.name ^ " round-trips") true (k = k'))
    (Host_ir.kernels prog) kernels;
  (* the host program round-trips up to host data *)
  checkb (name ^ ": host program round-trips") true
    (normalize_stmts prog.Host_ir.body = normalize_stmts parsed.Host_ir.body);
  (* and the rendered text reaches a fixpoint *)
  checks (name ^ ": render fixpoint") src (Cusrc.render parsed)

let test_roundtrip_all_apps () =
  let vec, _, _ = Apps.Workloads.functional_vecadd ~n:100 in
  roundtrip_app "vecadd" vec;
  let hs, _, _ = Apps.Workloads.functional_hotspot ~n:32 ~iterations:3 in
  roundtrip_app "hotspot" hs;
  let nb, _, _ = Apps.Workloads.functional_nbody ~n:64 ~iterations:2 in
  roundtrip_app "nbody" nb;
  let mm, _, _ = Apps.Workloads.functional_matmul ~n:16 in
  roundtrip_app "matmul" mm;
  let sp = Apps.Spmv.banded ~n:40 ~band:4 in
  let x = Array.make 40 1.0 in
  let out = Array.make 40 nan in
  roundtrip_app "spmv" (Apps.Spmv.program ~m:sp ~x ~result:out);
  let hg, _, _ = Apps.Workloads.functional_histogram ~n:64 ~nbins:7 in
  roundtrip_app "histogram" hg;
  let dp, _, _ = Apps.Workloads.functional_dot ~n:64 in
  roundtrip_app "dot" dp

(* ---------------- Text-to-execution pipeline ---------------- *)

let test_compile_from_text () =
  (* Render hotspot to text, parse it back, compile the parsed program
     and run it in performance mode on 8 GPUs. *)
  let prog = Apps.Workloads.program ~iterations:10 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small in
  let src = Cusrc.render prog in
  let _, parsed = Cuparse.parse_cu ~name:"hotspot_from_text" src in
  match Mekong.Toolchain.compile parsed with
  | Error e -> Alcotest.failf "compile: %s" (Mekong.Toolchain.error_message e)
  | Ok artifacts ->
    let m =
      Gpusim.Machine.create ~functional:false
        (Gpusim.Config.k80_box ~n_devices:8 ())
    in
    let r = Mekong.Multi_gpu.run ~machine:m artifacts.Mekong.Toolchain.exe in
    checkb "simulated time advanced" true (r.Mekong.Multi_gpu.time > 0.0);
    checki "launches: 10 iterations x 8 devices" 80
      (Gpusim.Machine.stats m).Gpusim.Machine.n_launches

let () =
  Alcotest.run "cuparse"
    [
      ( "kernels",
        [
          Alcotest.test_case "simple kernel" `Quick test_parse_simple_kernel;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "for loop" `Quick test_parse_for_loop;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [ Alcotest.test_case "all bundled apps" `Quick test_roundtrip_all_apps ] );
      ( "pipeline",
        [ Alcotest.test_case "compile from text" `Quick test_compile_from_text ] );
    ]
