(* Tests for the machine simulator: timelines, transfer/kernel timing
   semantics, fabric contention, autoboost derating, and the
   functional-mode data movement. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg a b = Alcotest.check (Alcotest.float 1e-12) msg a b

open Gpusim

(* ---------------- Timeline ---------------- *)

let test_timeline_order () =
  let t = Timeline.create "t" in
  let s1, e1 = Timeline.schedule t ~after:0.0 ~duration:1.0 ~category:"a" in
  checkf "starts at 0" 0.0 s1;
  checkf "ends at 1" 1.0 e1;
  (* next op cannot start before the previous completes *)
  let s2, e2 = Timeline.schedule t ~after:0.5 ~duration:0.25 ~category:"a" in
  checkf "serialized start" 1.0 s2;
  checkf "serialized end" 1.25 e2;
  (* an op issued after idle time starts at its issue time *)
  let s3, _ = Timeline.schedule t ~after:5.0 ~duration:0.1 ~category:"b" in
  checkf "idle gap respected" 5.0 s3;
  checkf "busy a" 1.25 (Timeline.busy_in t "a");
  checkf "busy b" 0.1 (Timeline.busy_in t "b");
  checkf "total busy" 1.35 (Timeline.total_busy t)

let test_timeline_wait () =
  let t = Timeline.create "t" in
  Timeline.wait_until t 3.0;
  checkf "waited" 3.0 (Timeline.ready t);
  Timeline.wait_until t 1.0;
  checkf "no backwards wait" 3.0 (Timeline.ready t);
  Timeline.reset t;
  checkf "reset" 0.0 (Timeline.ready t)

(* Regression: zero-length and empty measurement windows must yield 0,
   not NaN (0/0) or a negative idle.  Hand-computed: 1.5s busy in a 2s
   window = 75% utilization, 0.5s idle; the same timeline against a
   zero, negative or NaN window reports 0. *)
let test_timeline_empty_windows () =
  let t = Timeline.create "t" in
  checkf "empty utilization" 0.0 (Timeline.utilization t ~span:0.0);
  checkf "empty idle" 0.0 (Timeline.idle_in t ~span:0.0);
  ignore (Timeline.schedule t ~after:0.0 ~duration:1.5 ~category:"k");
  checkf "busy" 1.5 (Timeline.total_busy t);
  checkf "utilization 75%" 0.75 (Timeline.utilization t ~span:2.0);
  checkf "idle 0.5s" 0.5 (Timeline.idle_in t ~span:2.0);
  checkf "zero window utilization" 0.0 (Timeline.utilization t ~span:0.0);
  checkf "zero window idle" 0.0 (Timeline.idle_in t ~span:0.0);
  checkf "negative window utilization" 0.0 (Timeline.utilization t ~span:(-1.0));
  checkf "negative window idle" 0.0 (Timeline.idle_in t ~span:(-1.0));
  checkf "nan window utilization" 0.0 (Timeline.utilization t ~span:nan);
  checkf "nan window idle" 0.0 (Timeline.idle_in t ~span:nan);
  (* a window shorter than the busy time clamps instead of exceeding 1 *)
  checkf "clamped utilization" 1.0 (Timeline.utilization t ~span:1.0);
  checkf "clamped idle" 0.0 (Timeline.idle_in t ~span:1.0)

(* Regression: [categories] must come back sorted regardless of
   insertion order, so reports and JSON artifacts are stable across
   hash-table seeds and OCaml versions. *)
let test_timeline_categories_sorted () =
  let t = Timeline.create "t" in
  List.iter
    (fun c -> ignore (Timeline.schedule t ~after:0.0 ~duration:0.1 ~category:c))
    [ "zeta"; "alpha"; "mid"; "beta" ];
  Alcotest.(check (list string))
    "sorted" [ "alpha"; "beta"; "mid"; "zeta" ] (Timeline.categories t)

(* schedule_at records at exactly the given start, without clamping
   against ready — a later-recorded op may start before an earlier
   reservation ends — while ready still covers every finish. *)
let test_timeline_schedule_at () =
  let t = Timeline.create "t" in
  let s1, e1 = Timeline.schedule_at t ~start:10.0 ~duration:2.0 ~category:"bus" in
  checkf "parked start" 10.0 s1;
  checkf "parked end" 12.0 e1;
  let s2, e2 = Timeline.schedule_at t ~start:1.0 ~duration:3.0 ~category:"bus" in
  checkf "backfilled start not clamped" 1.0 s2;
  checkf "backfilled end" 4.0 e2;
  checkf "ready covers the latest finish" 12.0 (Timeline.ready t);
  checkf "busy accumulates" 5.0 (Timeline.busy_in t "bus")

(* ---------------- Machine timing ---------------- *)

let quiet_cfg n =
  (* A machine with zeroed latencies for precise arithmetic checks. *)
  {
    (Config.k80_box ~n_devices:n ()) with
    Config.transfer_latency = 0.0;
    launch_latency = 0.0;
    sync_device_seconds = 0.0;
    pcie_bandwidth = 1e9;
    p2p_bandwidth = 1e9;
    fabric_bandwidth = 2e9;
    autoboost_derate = 0.0;
    elem_bytes = 4;
  }

let test_transfer_time () =
  let m = Machine.create (quiet_cfg 2) in
  let b = Machine.alloc m ~device:0 ~len:1_000_000 in
  (* 4 MB at 1 GB/s = 4 ms on the copy engine. *)
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "h2d takes ~4ms" true (t >= 0.004 && t < 0.0045);
  checki "bytes counted" 4_000_000 (Machine.stats m).Machine.h2d_bytes

let test_fabric_contention () =
  (* Two h2d transfers to different devices share the fabric: with
     fabric at 2 GB/s and links at 1 GB/s, each link alone would give
     4ms, but fabric admission spaces the second transfer by 2ms. *)
  let m = Machine.create (quiet_cfg 2) in
  let b0 = Machine.alloc m ~device:0 ~len:1_000_000 in
  let b1 = Machine.alloc m ~device:1 ~len:1_000_000 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b0 ~dst_off:0 ~len:1_000_000;
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b1 ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "fabric spacing observed" true (t >= 0.006 && t < 0.0066)

let test_p2p_double_fabric () =
  (* p2p charges the fabric twice (through-host staging). *)
  let m = Machine.create (quiet_cfg 2) in
  let b0 = Machine.alloc m ~device:0 ~len:500_000 in
  let b1 = Machine.alloc m ~device:1 ~len:500_000 in
  Machine.p2p m ~src:b0 ~src_off:0 ~dst:b1 ~dst_off:0 ~len:500_000;
  let fabric = Machine.fabric_timeline m in
  (* 2 MB crossing twice at 2 GB/s = 2 ms of bus. *)
  checkf "double bus time" 0.002 (Timeline.busy_in fabric "bus")

let test_p2p_same_device () =
  (* Regression: a copy between two buffers on the same device never
     crosses the fabric — it moves at device-memory bandwidth with zero
     bus occupancy (a cudaMemcpyDeviceToDevice within one GPU). *)
  let cfg = { (quiet_cfg 2) with Config.dmem_bandwidth = 4e9 } in
  let m = Machine.create cfg in
  let a = Machine.alloc m ~device:0 ~len:1_000_000 in
  let b = Machine.alloc m ~device:0 ~len:1_000_000 in
  Machine.p2p m ~src:a ~src_off:0 ~dst:b ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let fabric = Machine.fabric_timeline m in
  checkf "no bus time" 0.0 (Timeline.busy_in fabric "bus");
  (* 4 MB at 4 GB/s = 1 ms, not the 4 ms the 1 GB/s peer path charges. *)
  let t = Machine.host_time m in
  checkb "device-memory bandwidth" true (t >= 0.001 && t < 0.0015);
  checki "bytes still counted" 4_000_000 (Machine.stats m).Machine.p2p_bytes;
  (* the packed variant takes the same shortcut *)
  Machine.p2p_multi m ~src:a ~dst:b
    ~segments:[ (0, 0, 1000); (5000, 5000, 1000) ];
  Machine.synchronize m;
  checkf "multi: still no bus time" 0.0 (Timeline.busy_in fabric "bus")

let test_kernel_time_waves () =
  let cfg = { (quiet_cfg 1) with Config.ops_per_sm = 1e9; sms_per_device = 10; blocks_per_sm = 2 } in
  let m = Machine.create cfg in
  (* 20 slots; 40 blocks of 1e6 ops: per-block time = 1e6*2/1e9 = 2ms;
     40/20 = 2 "waves" -> 4ms. *)
  Machine.launch m ~device:0 ~blocks:40 ~ops_per_block:1e6 ~run:(fun () -> ());
  Machine.synchronize m;
  checkf "two waves" 0.004 (Machine.device_time m 0);
  (* below full occupancy: one block still takes one block-time *)
  let m2 = Machine.create cfg in
  Machine.launch m2 ~device:0 ~blocks:1 ~ops_per_block:1e6 ~run:(fun () -> ());
  Machine.synchronize m2;
  checkf "latency bound" 0.002 (Machine.device_time m2 0)

let test_autoboost () =
  let cfg =
    { (quiet_cfg 16) with Config.ops_per_sm = 1e9; sms_per_device = 10;
      blocks_per_sm = 2; autoboost_derate = 0.15; total_dies = 16 }
  in
  (* one active die: full speed *)
  checkf "boost alone" 1.0 (Config.boost_factor cfg ~active:1);
  checkf "boost all" 0.85 (Config.boost_factor cfg ~active:16);
  let m = Machine.create cfg in
  Machine.set_active_devices m 16;
  Machine.launch m ~device:0 ~blocks:20 ~ops_per_block:1e6 ~run:(fun () -> ());
  Machine.synchronize m;
  (* 20 blocks = 1 wave at 2ms/0.85 *)
  checkb "derated" true
    (abs_float (Machine.device_time m 0 -. (0.002 /. 0.85)) < 1e-9)

let test_default_stream_ordering () =
  (* A kernel issued after an h2d to the same device must wait for it. *)
  let m = Machine.create (quiet_cfg 1) in
  let b = Machine.alloc m ~device:0 ~len:1_000_000 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:1_000_000;
  Machine.launch m ~device:0 ~blocks:1 ~ops_per_block:0.0 ~run:(fun () -> ());
  Machine.synchronize m;
  checkb "kernel after transfer" true (Machine.device_time m 0 >= 0.004)

let test_p2p_waits_src_compute () =
  (* A p2p reading a buffer must wait for the source device's kernel. *)
  let cfg = { (quiet_cfg 2) with Config.ops_per_sm = 1e9; sms_per_device = 10; blocks_per_sm = 2 } in
  let m = Machine.create cfg in
  let b0 = Machine.alloc m ~device:0 ~len:1000 in
  let b1 = Machine.alloc m ~device:1 ~len:1000 in
  Machine.launch m ~device:0 ~blocks:20 ~ops_per_block:1e6 ~run:(fun () -> ());
  (* kernel: 2ms *)
  Machine.p2p m ~src:b0 ~src_off:0 ~dst:b1 ~dst_off:0 ~len:1000;
  Machine.synchronize m;
  checkb "transfer after source kernel" true (Machine.host_time m >= 0.002)

(* Regression: synchronize charges its serial per-context cost AFTER
   the devices drain, not concurrently with them.  Hand-computed: a
   4 ms h2d followed by a synchronize over 2 contexts at 1 ms each
   puts the host at ~6 ms; the old accounting overlapped the sync with
   the transfer and reported ~4 ms. *)
let test_sync_charged_after_drain () =
  let cfg = { (quiet_cfg 2) with Config.sync_device_seconds = 1.0e-3 } in
  let m = Machine.create cfg in
  let b = Machine.alloc m ~device:0 ~len:1_000_000 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:1_000_000;
  Machine.synchronize m;
  let t = Machine.host_time m in
  checkb "sync serialized after the drain" true (t >= 0.006 && t < 0.0065);
  checkf "sync cost visible on the host lane" 2.0e-3
    (Timeline.busy_in (Machine.host_timeline m) "sync")

(* ---------------- Functional data movement ---------------- *)

let test_functional_copies () =
  let m = Machine.create ~functional:true (Config.test_box ~n_devices:2 ()) in
  let b0 = Machine.alloc m ~device:0 ~len:10 in
  let b1 = Machine.alloc m ~device:1 ~len:10 in
  let src = Array.init 10 float_of_int in
  Machine.h2d m ~src ~src_off:0 ~dst:b0 ~dst_off:0 ~len:10;
  Machine.p2p m ~src:b0 ~src_off:2 ~dst:b1 ~dst_off:5 ~len:3;
  let out = Array.make 3 nan in
  Machine.d2h m ~src:b1 ~src_off:5 ~dst:out ~dst_off:0 ~len:3;
  Alcotest.(check (array (float 0.0))) "p2p moved data" [| 2.; 3.; 4. |] out

let test_range_checks () =
  let m = Machine.create (quiet_cfg 1) in
  let b = Machine.alloc m ~device:0 ~len:10 in
  Alcotest.check_raises "h2d oob"
    (Invalid_argument "h2d: range [5,15) outside buffer 0 of length 10 on device 0")
    (fun () -> Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:5 ~len:10)

let test_trace () =
  let m = Machine.create (quiet_cfg 2) in
  Machine.enable_trace m;
  let b0 = Machine.alloc m ~device:0 ~len:100 in
  let b1 = Machine.alloc m ~device:1 ~len:100 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b0 ~dst_off:0 ~len:100;
  Machine.p2p m ~src:b0 ~src_off:0 ~dst:b1 ~dst_off:0 ~len:50;
  Machine.launch m ~device:1 ~blocks:1 ~ops_per_block:1e3 ~run:(fun () -> ());
  let tr = Machine.trace m in
  checki "three events" 3 (List.length tr);
  (match tr with
   | [ e1; e2; e3 ] ->
     checkb "h2d first" true (e1.Machine.ev_kind = `H2d);
     checki "h2d bytes" 400 e1.Machine.ev_bytes;
     checkb "p2p second" true
       (e2.Machine.ev_kind = `P2p && e2.Machine.ev_src = 0
        && e2.Machine.ev_dst = 1);
     checkb "kernel third" true
       (e3.Machine.ev_kind = `Kernel && e3.Machine.ev_src = 1);
     checkb "ordered" true
       (e1.Machine.ev_start <= e2.Machine.ev_start
        && e2.Machine.ev_finish <= e3.Machine.ev_start
        +. 1e-9)
   | _ -> Alcotest.fail "unexpected trace shape");
  (* tracing off by default *)
  let m2 = Machine.create (quiet_cfg 1) in
  let b = Machine.alloc m2 ~device:0 ~len:10 in
  Machine.h2d m2 ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:10;
  checki "no trace by default" 0 (List.length (Machine.trace m2))

(* ---------------- Fault injection ---------------- *)

let test_faults_deterministic () =
  let spec = { Faults.null_spec with seed = 42; kernel_fault_rate = 0.3 } in
  let a = Faults.create spec and b = Faults.create spec in
  for _ = 1 to 100 do
    checkb "same stream" true (Faults.uniform a = Faults.uniform b)
  done;
  (* a different seed gives a different stream *)
  let c = Faults.create { spec with seed = 43 } in
  let differs = ref false in
  let a' = Faults.create spec in
  for _ = 1 to 100 do
    if Faults.uniform a' <> Faults.uniform c then differs := true
  done;
  checkb "seed changes stream" true !differs

let test_faults_spec_parse () =
  (match Faults.spec_of_string "42,0.01,2@0.5" with
   | Ok s ->
     checki "seed" 42 s.Faults.seed;
     checkf "kernel rate" 0.01 s.Faults.kernel_fault_rate;
     checkf "transfer rate" 0.01 s.Faults.transfer_fault_rate;
     checkb "scheduled loss" true (s.Faults.scheduled_losses = [ (2, 0.5) ])
   | Error e -> Alcotest.failf "parse failed: %s" e);
  checkb "bad spec rejected" true
    (match Faults.spec_of_string "nope" with Error _ -> true | Ok _ -> false);
  checkb "rate >= 1 rejected" true
    (match Faults.spec_of_string "1,1.5" with Error _ -> true | Ok _ -> false);
  checkb "null is null" true (Faults.is_null Faults.null_spec);
  checkb "rate makes non-null" false
    (Faults.is_null { Faults.null_spec with kernel_fault_rate = 0.1 })

let test_faults_consecutive_cap () =
  (* Rate ~1 would starve a retry loop forever without the cap. *)
  let spec =
    { Faults.null_spec with seed = 1; kernel_fault_rate = 0.999;
      max_consecutive = 5 }
  in
  let f = Faults.create spec in
  let worst = ref 0 and streak = ref 0 in
  for _ = 1 to 1000 do
    match Faults.kernel_outcome f ~device:0 ~now:0.0 with
    | `Transient ->
      incr streak;
      worst := max !worst !streak
    | `Ok -> streak := 0
    | `Lost -> Alcotest.fail "no loss configured"
  done;
  checkb "cap enforced" true (!worst <= 5);
  checkb "faults do occur" true ((Faults.counters f).Faults.kernel_faults > 0)

let test_machine_transient_fault () =
  let m = Machine.create (quiet_cfg 2) in
  Machine.enable_trace m;
  Machine.inject_faults m
    (Faults.create
       { Faults.null_spec with seed = 3; kernel_fault_rate = 0.999;
         max_consecutive = 2 });
  let saw_fault = ref false in
  (try Machine.launch m ~device:0 ~blocks:1 ~ops_per_block:1e3 ~run:(fun () -> ())
   with Machine.Transient_fault { op = "kernel"; device = 0 } ->
     saw_fault := true);
  checkb "launch raised" true !saw_fault;
  checki "fault counted" 1 (Machine.stats m).Machine.n_faults;
  checkb "fault event on trace" true
    (List.exists (fun e -> e.Machine.ev_kind = `Fault) (Machine.trace m));
  (* the faulted launch still consumed kernel time *)
  checkb "time charged" true ((Machine.stats m).Machine.kernel_seconds > 0.0);
  (* the consecutive cap guarantees a retry loop terminates *)
  let ok = ref false in
  let attempts = ref 0 in
  while not !ok do
    incr attempts;
    if !attempts > 10 then Alcotest.fail "retry loop did not terminate";
    try
      Machine.launch m ~device:0 ~blocks:1 ~ops_per_block:1e3 ~run:(fun () -> ());
      ok := true
    with Machine.Transient_fault _ -> ()
  done;
  checkb "eventually succeeds" true !ok

(* Regression: a transiently faulted transfer paid its wire time and
   its bytes really crossed the fabric, so it must be charged to the
   byte counters and the pair matrix like any other transfer (a retry
   legitimately charges the traffic again); the dedicated faulted
   counters keep the failures visible, and seconds/bytes
   reconciliation stays exact under faults. *)
let test_faulted_transfer_accounting () =
  let m = Machine.create (quiet_cfg 2) in
  Machine.inject_faults m
    (Faults.create
       { Faults.null_spec with seed = 7; transfer_fault_rate = 0.999;
         max_consecutive = 2 });
  let b = Machine.alloc m ~device:0 ~len:1_000_000 in
  let attempts = ref 0 and faults = ref 0 in
  let ok = ref false in
  while not !ok do
    incr attempts;
    if !attempts > 10 then Alcotest.fail "retry loop did not terminate";
    try
      Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:1_000_000;
      ok := true
    with Machine.Transient_fault { op = "h2d"; device = 0 } -> incr faults
  done;
  checkb "at least one transfer faulted" true (!faults > 0);
  let st = Machine.stats m in
  checki "every attempt charged h2d bytes" (4_000_000 * !attempts)
    st.Machine.h2d_bytes;
  checki "faulted transfers counted" !faults st.Machine.faulted_transfers;
  checki "faulted bytes counted" (4_000_000 * !faults) st.Machine.faulted_bytes;
  (match List.assoc_opt (-1, 0) (Machine.byte_matrix m) with
   | Some bytes ->
     checki "pair matrix includes the faulted traffic" (4_000_000 * !attempts)
       bytes
   | None -> Alcotest.fail "missing host->device pair");
  (* every attempt paid its 4 ms of wire time *)
  checkb "transfer seconds include faulted attempts" true
    (st.Machine.transfer_seconds
     >= (0.004 *. float_of_int !attempts) -. 1e-9)

let test_machine_device_loss () =
  let m = Machine.create ~functional:true (Config.test_box ~n_devices:3 ()) in
  Machine.inject_faults m
    (Faults.create
       { Faults.null_spec with seed = 1; scheduled_losses = [ (1, 0.0) ] });
  checkb "all live initially" true (Machine.live_devices m = [ 0; 1; 2 ]);
  let b = Machine.alloc m ~device:1 ~len:8 in
  let raised =
    try
      Machine.h2d m ~src:(Array.make 8 1.0) ~src_off:0 ~dst:b ~dst_off:0 ~len:8;
      false
    with Machine.Device_lost 1 -> true
  in
  checkb "h2d raised Device_lost" true raised;
  checkb "device marked lost" true (Machine.device_lost m 1);
  checkb "survivors" true (Machine.live_devices m = [ 0; 2 ]);
  (* every later operation touching the device raises too *)
  let again =
    try
      Machine.launch m ~device:1 ~blocks:1 ~ops_per_block:1e3 ~run:(fun () -> ());
      false
    with Machine.Device_lost 1 -> true
  in
  checkb "launch on lost device raises" true again;
  (* other devices unaffected *)
  let b0 = Machine.alloc m ~device:0 ~len:8 in
  Machine.h2d m ~src:(Array.make 8 2.0) ~src_off:0 ~dst:b0 ~dst_off:0 ~len:8;
  checkb "device 0 still works" true true

let test_machine_faults_off_by_default () =
  let m = Machine.create (quiet_cfg 2) in
  checkb "no fault state" true (Machine.fault_state m = None);
  checkb "all live" true (Machine.live_devices m = [ 0; 1 ]);
  let b = Machine.alloc m ~device:0 ~len:10 in
  Machine.h2d m ~src:[||] ~src_off:0 ~dst:b ~dst_off:0 ~len:10;
  checki "no faults" 0 (Machine.stats m).Machine.n_faults;
  (* a null spec in the config arms nothing *)
  let m2 =
    Machine.create { (quiet_cfg 2) with Config.faults = Some Faults.null_spec }
  in
  checkb "null spec ignored" true (Machine.fault_state m2 = None);
  let m3 =
    Machine.create
      {
        (quiet_cfg 2) with
        Config.faults =
          Some { Faults.null_spec with seed = 5; kernel_fault_rate = 0.5 };
      }
  in
  checkb "real spec armed" true (Machine.fault_state m3 <> None)

(* ---------------- Config validation ---------------- *)

(* Every numeric field is validated by the constructors: one test per
   field asserting the descriptive Invalid_argument.  The error must
   name the config and the field so a bad sweep configuration is
   diagnosable from the one-line message. *)
let test_config_validation () =
  let base = Config.k80_box () in
  let rejects field mk =
    match Config.validate (mk base) with
    | _ -> Alcotest.failf "field %s: bad value accepted" field
    | exception Invalid_argument msg ->
      checkb
        (Printf.sprintf "field %s named in %S" field msg)
        true
        (String.length msg > 0
         && Str.string_match (Str.regexp (".*" ^ Str.quote field)) msg 0)
  in
  ignore (Config.validate base);
  rejects "n_devices" (fun c -> { c with Config.n_devices = 0 });
  rejects "sms_per_device" (fun c -> { c with Config.sms_per_device = -1 });
  rejects "blocks_per_sm" (fun c -> { c with Config.blocks_per_sm = 0 });
  rejects "total_dies" (fun c -> { c with Config.total_dies = 0 });
  rejects "elem_bytes" (fun c -> { c with Config.elem_bytes = 0 });
  rejects "mem_capacity" (fun c -> { c with Config.mem_capacity = 0 });
  rejects "mem_capacity" (fun c -> { c with Config.mem_capacity = -4096 });
  rejects "ops_per_sm" (fun c -> { c with Config.ops_per_sm = 0.0 });
  rejects "ops_per_sm" (fun c -> { c with Config.ops_per_sm = nan });
  rejects "pcie_bandwidth" (fun c -> { c with Config.pcie_bandwidth = -1.0 });
  rejects "p2p_bandwidth" (fun c -> { c with Config.p2p_bandwidth = 0.0 });
  rejects "dmem_bandwidth" (fun c -> { c with Config.dmem_bandwidth = 0.0 });
  rejects "fabric_bandwidth" (fun c ->
      { c with Config.fabric_bandwidth = -2.0 });
  rejects "autoboost_derate" (fun c ->
      { c with Config.autoboost_derate = 1.0 });
  rejects "autoboost_derate" (fun c ->
      { c with Config.autoboost_derate = -0.1 });
  rejects "transfer_latency" (fun c ->
      { c with Config.transfer_latency = -1e-6 });
  rejects "launch_latency" (fun c -> { c with Config.launch_latency = nan });
  rejects "sync_device_seconds" (fun c ->
      { c with Config.sync_device_seconds = -1.0 });
  let isl ?(size = 2) ?(link = 1e9) ?(uplink = 1e9) () =
    Config.Islands
      { island_size = size; link_bandwidth = link; uplink_bandwidth = uplink }
  in
  ignore (Config.validate { base with Config.topology = isl () });
  rejects "topology.island_size" (fun c ->
      { c with Config.topology = isl ~size:0 () });
  rejects "topology.link_bandwidth" (fun c ->
      { c with Config.topology = isl ~link:0.0 () });
  rejects "topology.uplink_bandwidth" (fun c ->
      { c with Config.topology = isl ~uplink:(-1.0) () });
  (* the machine constructor validates too *)
  (match Machine.create { base with Config.n_devices = -2 } with
   | _ -> Alcotest.fail "Machine.create accepted a bad config"
   | exception Invalid_argument _ -> ());
  (* finite capacities are accepted and preserved *)
  let c = Config.k80_box ~mem_capacity:4096 () in
  checki "capacity kept" 4096 c.Config.mem_capacity;
  checkb "default unlimited" true
    ((Config.k80_box ()).Config.mem_capacity = max_int)

(* CLI topology specs: the parser and printer must be inverses, and
   malformed or non-positive specs must be rejected with an error
   (never a crash or a silently-flat topology). *)
let test_topology_spec () =
  checkb "flat parses" true (Config.topology_of_string "flat" = Ok Config.Flat);
  (match Config.topology_of_string "islands:4,80,12" with
   | Ok (Config.Islands { island_size; link_bandwidth; uplink_bandwidth }) ->
     checki "island size" 4 island_size;
     checkf "link GB/s scaled" 80e9 link_bandwidth;
     checkf "uplink GB/s scaled" 12e9 uplink_bandwidth
   | _ -> Alcotest.fail "islands spec rejected");
  List.iter
    (fun s ->
       checkb (Printf.sprintf "%S rejected" s) true
         (match Config.topology_of_string s with
          | Error _ -> true
          | Ok _ -> false))
    [ "nope"; "islands:0,80,12"; "islands:4,-1,12"; "islands:4,80";
      "islands:a,b,c"; "islands:4,80,12,1" ];
  List.iter
    (fun t ->
       checkb "printer/parser roundtrip" true
         (Config.topology_of_string (Config.topology_to_string t) = Ok t))
    [ Config.Flat;
      Config.Islands
        { island_size = 2; link_bandwidth = 20e9; uplink_bandwidth = 12e9 } ]

(* ---------------- Device-memory accounting ---------------- *)

let test_mem_accounting () =
  let m = Machine.create (Config.test_box ~n_devices:2 ~mem_capacity:1000 ()) in
  checki "capacity" 1000 (Machine.mem_capacity m);
  checki "free at start" 1000 (Machine.mem_free m 0);
  Machine.mem_reserve m ~device:0 ~bytes:600;
  checki "used" 600 (Machine.mem_used m 0);
  checki "free" 400 (Machine.mem_free m 0);
  checki "other device untouched" 0 (Machine.mem_used m 1);
  checki "high water" 600 (Machine.mem_high_water m 0);
  (* over-capacity reservations raise the typed exception with the
     device, the request and what was free *)
  Alcotest.check_raises "oom"
    (Machine.Out_of_memory { device = 0; requested = 500; free = 400 })
    (fun () -> Machine.mem_reserve m ~device:0 ~bytes:500);
  checki "failed reserve charges nothing" 600 (Machine.mem_used m 0);
  Machine.mem_release m ~device:0 ~bytes:200;
  checki "released" 400 (Machine.mem_used m 0);
  checki "high water sticks" 600 (Machine.mem_high_water m 0);
  (* releasing more than held is an accounting bug, not an OOM *)
  (match Machine.mem_release m ~device:0 ~bytes:401 with
   | _ -> Alcotest.fail "over-release accepted"
   | exception Invalid_argument _ -> ());
  (* charged allocation reserves; uncharged (virtual) does not *)
  let m2 = Machine.create (Config.test_box ~n_devices:2 ~mem_capacity:1000 ()) in
  let eb = (Machine.config m2).Config.elem_bytes in
  let b = Machine.alloc m2 ~device:1 ~len:10 in
  checki "alloc charges" (10 * eb) (Machine.mem_used m2 1);
  let v = Machine.alloc ~charge:false m2 ~device:1 ~len:1000 in
  checki "virtual alloc free" (10 * eb) (Machine.mem_used m2 1);
  Machine.free m2 b;
  checki "free releases" 0 (Machine.mem_used m2 1);
  Machine.free m2 v;
  checki "virtual free releases nothing" 0 (Machine.mem_used m2 1);
  (* LRU stamps are monotonic *)
  let s1 = Machine.lru_tick m2 in
  let s2 = Machine.lru_tick m2 in
  checkb "lru monotonic" true (s2 > s1 && s1 > 0);
  (* spill accounting *)
  Machine.note_spill m2 ~bytes:64;
  Machine.note_spill m2 ~bytes:36;
  let st = Machine.stats m2 in
  checki "spills" 2 st.Machine.n_spills;
  checki "spill bytes" 100 st.Machine.spill_bytes

let test_buffer_basics () =
  let b = Buffer.create ~id:7 ~device:3 ~len:5 ~charged_bytes:20 ~functional:true in
  checki "id" 7 (Buffer.id b);
  checki "device" 3 (Buffer.device b);
  checki "len" 5 (Buffer.len b);
  checkb "has data" true (Buffer.has_data b);
  let p = Buffer.create ~id:8 ~device:0 ~len:5 ~charged_bytes:20 ~functional:false in
  checkb "perf mode has no data" false (Buffer.has_data p);
  (* perf-mode blits are no-ops *)
  Buffer.blit_from_host ~src:[| 1.0 |] ~src_off:0 p ~dst_off:0 ~len:1;
  Alcotest.check_raises "data_exn on perf buffer"
    (Invalid_argument "Buffer.data_exn: performance-mode buffer has no data")
    (fun () -> ignore (Buffer.data_exn p))

let () =
  Alcotest.run "gpusim"
    [
      ( "timeline",
        [
          Alcotest.test_case "ordering" `Quick test_timeline_order;
          Alcotest.test_case "wait/reset" `Quick test_timeline_wait;
          Alcotest.test_case "empty windows" `Quick
            test_timeline_empty_windows;
          Alcotest.test_case "sorted categories" `Quick
            test_timeline_categories_sorted;
          Alcotest.test_case "schedule_at backfill" `Quick
            test_timeline_schedule_at;
        ] );
      ( "config",
        [
          Alcotest.test_case "field validation" `Quick test_config_validation;
          Alcotest.test_case "topology specs" `Quick test_topology_spec;
        ] );
      ( "memory",
        [ Alcotest.test_case "accounting" `Quick test_mem_accounting ] );
      ( "timing",
        [
          Alcotest.test_case "transfer duration" `Quick test_transfer_time;
          Alcotest.test_case "fabric contention" `Quick test_fabric_contention;
          Alcotest.test_case "p2p double fabric" `Quick test_p2p_double_fabric;
          Alcotest.test_case "p2p same device" `Quick test_p2p_same_device;
          Alcotest.test_case "kernel waves" `Quick test_kernel_time_waves;
          Alcotest.test_case "autoboost derate" `Quick test_autoboost;
          Alcotest.test_case "default-stream order" `Quick test_default_stream_ordering;
          Alcotest.test_case "p2p waits source" `Quick test_p2p_waits_src_compute;
          Alcotest.test_case "sync after drain" `Quick
            test_sync_charged_after_drain;
        ] );
      ( "data",
        [
          Alcotest.test_case "functional copies" `Quick test_functional_copies;
          Alcotest.test_case "event trace" `Quick test_trace;
          Alcotest.test_case "range checks" `Quick test_range_checks;
          Alcotest.test_case "buffer basics" `Quick test_buffer_basics;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_faults_deterministic;
          Alcotest.test_case "spec parsing" `Quick test_faults_spec_parse;
          Alcotest.test_case "consecutive cap" `Quick
            test_faults_consecutive_cap;
          Alcotest.test_case "transient fault" `Quick
            test_machine_transient_fault;
          Alcotest.test_case "faulted transfer accounting" `Quick
            test_faulted_transfer_accounting;
          Alcotest.test_case "device loss" `Quick test_machine_device_loss;
          Alcotest.test_case "off by default" `Quick
            test_machine_faults_off_by_default;
        ] );
    ]
