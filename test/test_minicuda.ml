(* Tests for the CUDA-like programming model: Dim3, the kernel IR and
   its interpreter, the cost model, the optimization passes, host
   program validation, and the toy .cu rendering. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkfl msg a b = Alcotest.check (Alcotest.float 1e-9) msg a b

(* ---------------- Dim3 ---------------- *)

let test_dim3 () =
  let d = Dim3.make 4 ~y:3 ~z:2 in
  checki "volume" 24 (Dim3.volume d);
  checki "get x" 4 (Dim3.get d Dim3.X);
  checki "get y" 3 (Dim3.get d Dim3.Y);
  checki "get z" 2 (Dim3.get d Dim3.Z);
  let count = ref 0 in
  Dim3.iter d (fun _ -> incr count);
  checki "iter visits all" 24 !count;
  checkb "one" true (Dim3.equal Dim3.one (Dim3.make 1));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Dim3.make: extents must be >= 1") (fun () ->
      ignore (Dim3.make 0));
  Alcotest.(check string) "axis names" "zyx"
    (String.concat "" (List.map Dim3.axis_name Dim3.axes))

(* ---------------- Keval ---------------- *)

(* Kernel: c[gi] = a[gi] * 2 + gi for gi < n *)
let double_kernel =
  let open Kir in
  Kir.kernel ~name:"dbl"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "c"; dims = [| Dim_param "n" |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( v "gi" < p "n",
          [ store "c" [ v "gi" ] ((load "a" [ v "gi" ] * f 2.0) + v "gi") ],
          [] );
    ]

let run_simple kernel ~n ~a =
  let c = Array.make n nan in
  Keval.run kernel ~grid:(Dim3.make ((n + 3) / 4)) ~block:(Dim3.make 4)
    ~args:[ Keval.AInt n ]
    ~load:(fun _ off -> a.(off))
    ~store:(fun _ off v -> c.(off) <- v);
  c

let test_keval_basic () =
  let n = 10 in
  let a = Array.init n (fun i -> float_of_int (100 + i)) in
  let c = run_simple double_kernel ~n ~a in
  checkb "values" true
    (Array.for_all (fun x -> x = x) c
     && c.(3) = (103.0 *. 2.0) +. 3.0
     && c.(9) = (109.0 *. 2.0) +. 9.0)

let test_keval_guard () =
  (* n smaller than the grid: threads beyond n must not store. *)
  let n = 5 in
  let a = Array.make 5 1.0 in
  let c = run_simple double_kernel ~n ~a in
  checki "stores" 5 (Array.length c)

let test_keval_loop_and_locals () =
  let open Kir in
  (* sum[0] written by thread 0 only: sum of k*k for k < n *)
  let k =
    Kir.kernel ~name:"sumsq"
      ~params:[ Scalar "n"; Array { name = "out"; dims = [| Dim_const 1 |] } ]
      [
        Local ("gi", global_id Dim3.X);
        If
          ( v "gi" = i 0,
            [
              Local ("acc", f 0.0);
              For
                {
                  var = "k";
                  from_ = i 0;
                  to_ = p "n";
                  body = [ Assign ("acc", v "acc" + (v "k" * v "k")) ];
                };
              store "out" [ i 0 ] (v "acc");
            ],
            [] );
      ]
  in
  let out = Array.make 1 nan in
  Keval.run k ~grid:(Dim3.make 2) ~block:(Dim3.make 2) ~args:[ Keval.AInt 5 ]
    ~load:(fun _ off -> out.(off))
    ~store:(fun _ off v -> out.(off) <- v);
  checkfl "sum of squares" 30.0 out.(0)

let test_keval_int_float_ops () =
  let open Kir in
  let k =
    Kir.kernel ~name:"ops"
      ~params:[ Array { name = "out"; dims = [| Dim_const 8 |] } ]
      [
        If
          ( global_id Dim3.X = i 0,
            [
              store "out" [ i 0 ] (Binop (Idiv, i 7, i 2));
              store "out" [ i 1 ] (Binop (Imod, i 7, i 2));
              store "out" [ i 2 ] (i 7 / i 2); (* float division *)
              store "out" [ i 3 ] (min_ (i 3) (i 5));
              store "out" [ i 4 ] (max_ (f 3.5) (f 1.5));
              store "out" [ i 5 ] (sqrt_ (f 16.0));
              store "out" [ i 6 ] (rsqrt (f 4.0));
              store "out" [ i 7 ] (Unop (Abs, f (-2.5)));
            ],
            [] );
      ]
  in
  let out = Array.make 8 nan in
  Keval.run k ~grid:Dim3.one ~block:Dim3.one ~args:[]
    ~load:(fun _ off -> out.(off))
    ~store:(fun _ off v -> out.(off) <- v);
  Alcotest.(check (array (float 1e-12)))
    "op semantics"
    [| 3.0; 1.0; 3.5; 3.0; 3.5; 4.0; 0.5; 2.5 |]
    out

let test_keval_oob () =
  let open Kir in
  let k =
    Kir.kernel ~name:"oob"
      ~params:[ Array { name = "out"; dims = [| Dim_const 2 |] } ]
      [ store "out" [ i 5 ] (f 1.0) ]
  in
  checkb "out of bounds raises" true
    (try
       Keval.run k ~grid:Dim3.one ~block:Dim3.one ~args:[]
         ~load:(fun _ _ -> 0.0)
         ~store:(fun _ _ _ -> ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Cost model ---------------- *)

let test_costmodel_trip_counts () =
  (* nbody's j-loop runs n times: ops per thread must grow ~linearly
     with n. *)
  let small = Costmodel.ops_per_thread Apps.Nbody.kernel ~scalar_env:[ ("n", 100) ] in
  let large = Costmodel.ops_per_thread Apps.Nbody.kernel ~scalar_env:[ ("n", 1000) ] in
  checkb "linear in n" true (large > small *. 8.0 && large < small *. 12.0);
  (* hotspot has no loops: constant per-thread cost *)
  let h1 = Costmodel.ops_per_thread Apps.Hotspot.kernel ~scalar_env:[ ("n", 64) ] in
  let h2 = Costmodel.ops_per_thread Apps.Hotspot.kernel ~scalar_env:[ ("n", 4096) ] in
  checkfl "constant" h1 h2;
  (* block cost scales with threads *)
  let per_block =
    Costmodel.ops_per_block Apps.Hotspot.kernel ~scalar_env:[ ("n", 64) ]
      ~block:(Dim3.make 16 ~y:16)
  in
  checkfl "block = 256 threads" (h1 *. 256.0) per_block

let test_costmodel_eval () =
  let e = Kir.Binop (Kir.Mul, Kir.Param "n", Kir.Iconst 3) in
  Alcotest.(check (option int)) "eval" (Some 30)
    (Costmodel.try_eval_int [ ("n", 10) ] e);
  Alcotest.(check (option int)) "unbound" None
    (Costmodel.try_eval_int [] (Kir.Param "m"));
  Alcotest.(check (option int)) "runtime value" None
    (Costmodel.try_eval_int [] (Kir.Special (Kir.Thread_idx Dim3.X)))

(* ---------------- Kopt ---------------- *)

let test_kopt_folding () =
  let open Kir in
  let e = (i 2 + i 3) * v "x" + i 0 in
  (match Kopt.fold_exp e with
   | Binop (Mul, Iconst 5, Var "x") -> ()
   | other -> Alcotest.failf "unexpected fold: %s" (Format.asprintf "%a" Kir.pp_exp other));
  (* x + 0 and x * 1 *)
  checkb "add zero" true (Stdlib.( = ) (Kopt.fold_exp (v "x" + i 0)) (v "x"));
  checkb "mul one" true (Stdlib.( = ) (Kopt.fold_exp (v "x" * i 1)) (v "x"));
  (* float zero is NOT annihilated (NaN semantics) *)
  (match Kopt.fold_exp (v "x" * f 0.0) with
   | Binop (Mul, _, _) -> ()
   | _ -> Alcotest.fail "float x*0 must not fold")

let test_kopt_dead_branches () =
  let open Kir in
  let body =
    [
      If (i 1 < i 2, [ store "o" [ i 0 ] (f 1.0) ], [ store "o" [ i 0 ] (f 2.0) ]);
      If (i 5 < i 2, [ store "o" [ i 1 ] (f 3.0) ], []);
      For { var = "k"; from_ = i 3; to_ = i 3; body = [ store "o" [ i 2 ] (f 4.0) ] };
    ]
  in
  match Kopt.optimize_body body with
  | [ Store ("o", [ Iconst 0 ], Fconst 1.0) ] -> ()
  | other ->
    Alcotest.failf "unexpected optimization result (%d stmts)"
      (List.length other)

let test_kopt_dead_locals () =
  let open Kir in
  let body =
    [
      Local ("used", f 1.0);
      Local ("unused", f 2.0);
      store "o" [ i 0 ] (v "used");
    ]
  in
  checki "dead local removed" 2 (List.length (Kopt.optimize_body body))

let test_kopt_preserves_semantics () =
  (* Optimized kernels must compute the same values. *)
  let n = 64 in
  let a = Array.init n (fun i -> float_of_int i *. 0.5) in
  let k_opt = Kopt.optimize double_kernel in
  let c1 = run_simple double_kernel ~n ~a in
  let c2 = run_simple k_opt ~n ~a in
  checkb "same results" true (c1 = c2);
  (* The partitioned+optimized benchmarks keep semantics too. *)
  List.iter
    (fun k ->
       let k' = Kopt.optimize k in
       checkb (k.Kir.name ^ " size not larger") true
         (Kopt.size k' <= Kopt.size k))
    [ Apps.Hotspot.kernel; Apps.Nbody.kernel; Apps.Matmul.kernel ]

(* ---------------- Host_ir validation ---------------- *)

let test_validate_catches () =
  let open Host_ir in
  let bad_uses_unallocated =
    program ~name:"p" [ Memcpy_h2d { dst = "x"; src = host_data [| 1.0 |] } ]
  in
  checkb "unallocated" true
    (try validate bad_uses_unallocated; false with Invalid_argument _ -> true);
  let double_malloc =
    program ~name:"p" [ Malloc ("x", 4); Malloc ("x", 4) ]
  in
  checkb "double malloc" true
    (try validate double_malloc; false with Invalid_argument _ -> true);
  let size_mismatch =
    program ~name:"p"
      [ Malloc ("x", 4); Memcpy_h2d { dst = "x"; src = host_data [| 1.0 |] } ]
  in
  checkb "size mismatch" true
    (try validate size_mismatch; false with Invalid_argument _ -> true);
  let wrong_args =
    program ~name:"p"
      [
        Malloc ("x", 4);
        Launch
          {
            kernel = Apps.Vecadd.kernel;
            grid = Dim3.one;
            block = Dim3.one;
            args = [ HInt 4; HBuf "x" ];
          };
      ]
  in
  checkb "arity mismatch" true
    (try validate wrong_args; false with Invalid_argument _ -> true);
  (* a correct program passes *)
  let ok_prog, _, _ = Apps.Workloads.functional_vecadd ~n:16 in
  validate ok_prog

let test_phantom_arrays () =
  let ph = Host_ir.host_phantom 42 in
  checki "phantom length" 42 ph.Host_ir.len;
  checkb "no data" true (ph.Host_ir.data = None);
  Alcotest.check_raises "phantom in functional context"
    (Invalid_argument "Host_ir: phantom host array used in a functional run")
    (fun () -> ignore (Host_ir.host_data_exn ph))

let test_kernels_dedup () =
  let prog, _, _ = Apps.Workloads.functional_hotspot ~n:32 ~iterations:3 in
  checki "one kernel despite repeats" 1 (List.length (Host_ir.kernels prog))

(* ---------------- Cusrc rendering ---------------- *)

let test_cusrc_render () =
  let prog, _, _ = Apps.Workloads.functional_matmul ~n:32 in
  let src = Cusrc.render prog in
  let has needle =
    let re = Str.regexp_string needle in
    try ignore (Str.search_forward re src 0); true with Not_found -> false
  in
  checkb "kernel signature" true (has "__global__ void matmul");
  checkb "launch syntax" true (has "matmul<<<");
  checkb "cudaMalloc" true (has "cudaMalloc");
  checkb "cudaMemcpy" true (has "cudaMemcpyHostToDevice");
  checkb "main" true (has "int main()");
  (* hotspot's loop + swap also render *)
  let hs, _, _ = Apps.Workloads.functional_hotspot ~n:32 ~iterations:2 in
  let hsrc = Cusrc.render hs in
  let has2 needle =
    let re = Str.regexp_string needle in
    try ignore (Str.search_forward re hsrc 0); true with Not_found -> false
  in
  checkb "iteration loop" true (has2 "for (int it = 0; it < 2; it++)");
  checkb "swap" true (has2 "std::swap(t_in, t_out)")

(* ---------------- Single_gpu engine ---------------- *)

let test_single_gpu_vecadd () =
  let prog, result, cpu = Apps.Workloads.functional_vecadd ~n:300 in
  let r = Single_gpu.run prog in
  checkb "result" true (result = cpu ());
  checkb "time advanced" true (r.Single_gpu.time > 0.0)

let test_single_gpu_swap_semantics () =
  (* After an odd number of hotspot iterations plus swaps, the result
     must come from the freshly-written buffer. *)
  let prog, result, cpu = Apps.Workloads.functional_hotspot ~n:20 ~iterations:1 in
  ignore (Single_gpu.run prog);
  checkb "one-iteration swap" true (result = cpu ())

let test_single_gpu_machine_reuse () =
  (* Regression: a machine reused after a multi-GPU run carries the
     active-device high-water mark, and the single-GPU baseline must
     not inherit its autoboost derate.  The kernel time shows on the
     device compute timeline (host-side sync charges can swallow it in
     the end-to-end figure). *)
  let prog, result, cpu = Apps.Workloads.functional_vecadd ~n:65536 in
  let mk () =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:8 ())
  in
  let fresh = Single_gpu.run ~machine:(mk ()) prog in
  let reused_m = mk () in
  (* as if a multi-GPU run had kept all 8 dies busy before *)
  Gpusim.Machine.set_active_devices reused_m 8;
  let reused = Single_gpu.run ~machine:reused_m prog in
  let exact = Alcotest.check (Alcotest.float 1e-12) in
  exact "same kernel time"
    (Gpusim.Machine.device_time fresh.Single_gpu.machine 0)
    (Gpusim.Machine.device_time reused_m 0);
  exact "same baseline time" fresh.Single_gpu.time reused.Single_gpu.time;
  checkb "functional result intact" true (result = cpu ())

let () =
  Alcotest.run "minicuda"
    [
      ("dim3", [ Alcotest.test_case "basics" `Quick test_dim3 ]);
      ( "keval",
        [
          Alcotest.test_case "basic kernel" `Quick test_keval_basic;
          Alcotest.test_case "guards" `Quick test_keval_guard;
          Alcotest.test_case "loops and locals" `Quick test_keval_loop_and_locals;
          Alcotest.test_case "operator semantics" `Quick test_keval_int_float_ops;
          Alcotest.test_case "bounds checking" `Quick test_keval_oob;
        ] );
      ( "costmodel",
        [
          Alcotest.test_case "trip counts" `Quick test_costmodel_trip_counts;
          Alcotest.test_case "static eval" `Quick test_costmodel_eval;
        ] );
      ( "kopt",
        [
          Alcotest.test_case "constant folding" `Quick test_kopt_folding;
          Alcotest.test_case "dead branches" `Quick test_kopt_dead_branches;
          Alcotest.test_case "dead locals" `Quick test_kopt_dead_locals;
          Alcotest.test_case "semantics preserved" `Quick test_kopt_preserves_semantics;
        ] );
      ( "host_ir",
        [
          Alcotest.test_case "validation" `Quick test_validate_catches;
          Alcotest.test_case "phantom arrays" `Quick test_phantom_arrays;
          Alcotest.test_case "kernel dedup" `Quick test_kernels_dedup;
        ] );
      ("cusrc", [ Alcotest.test_case "rendering" `Quick test_cusrc_render ]);
      ( "single_gpu",
        [
          Alcotest.test_case "vecadd" `Quick test_single_gpu_vecadd;
          Alcotest.test_case "swap semantics" `Quick test_single_gpu_swap_semantics;
          Alcotest.test_case "machine reuse" `Quick test_single_gpu_machine_reuse;
        ] );
    ]
