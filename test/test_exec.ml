(* Tests for the compiled kernel executor (Kcompile), the domain pool
   (Dpool) and the race-freedom gate (Model.parallel_safe): the
   compiled path must be bit-identical to the Keval interpreter, both
   sequentially and when a launch is split over several domains, and
   the gate must only admit kernels whose write maps prove distinct
   blocks disjoint. *)

(* Size the global pool before anything touches it, so the Multi_gpu
   integration tests exercise the parallel path even on single-CPU CI
   machines (the recommended domain count there is 1). *)
let () = Gpu_runtime.Dpool.set_default_domains 2

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Dpool ---------------- *)

(* One shared pool for the direct executor tests; three participants so
   chunking, claim capping and the submitter's participation all
   engage.  Joined at exit (the pool is idle between tests). *)
let pool = lazy (Gpu_runtime.Dpool.create ~domains:3 ())
let () = at_exit (fun () -> if Lazy.is_val pool then Gpu_runtime.Dpool.shutdown (Lazy.force pool))

let test_dpool_empty_range () =
  let p = Lazy.force pool in
  let calls = ref 0 in
  checki "n=0 engages nobody" 0
    (Gpu_runtime.Dpool.parallel_for p ~n:0 (fun _ _ -> incr calls));
  checki "n<0 engages nobody" 0
    (Gpu_runtime.Dpool.parallel_for p ~n:(-5) (fun _ _ -> incr calls));
  checki "callback never ran" 0 !calls

let test_dpool_coverage () =
  let p = Lazy.force pool in
  (* n = 1 (inline), n < domains, n barely above, n >> domains: every
     index must be covered exactly once by disjoint chunks. *)
  List.iter
    (fun n ->
       let marks = Array.make n 0 in
       let d =
         Gpu_runtime.Dpool.parallel_for p ~n (fun lo hi ->
             for i = lo to hi - 1 do
               marks.(i) <- marks.(i) + 1
             done)
       in
       checkb
         (Printf.sprintf "n=%d covered exactly once" n)
         true
         (Array.for_all (fun c -> c = 1) marks);
       checkb
         (Printf.sprintf "n=%d participants within bounds" n)
         true
         (d >= 1 && d <= min n 3))
    [ 1; 2; 3; 7; 64; 1000 ]

let test_dpool_max_domains () =
  let p = Lazy.force pool in
  checki "max_domains:1 runs inline" 1
    (Gpu_runtime.Dpool.parallel_for ~max_domains:1 p ~n:1000 (fun _ _ -> ()));
  checki "large range engages the whole pool" 3
    (Gpu_runtime.Dpool.parallel_for p ~n:1000 (fun _ _ -> ()))

let test_dpool_single_domain_pool () =
  (* A 1-domain pool spawns nothing and runs inline. *)
  let p1 = Gpu_runtime.Dpool.create ~domains:1 () in
  checki "size clamps to 1" 1 (Gpu_runtime.Dpool.size p1);
  let covered = ref 0 in
  checki "inline execution" 1
    (Gpu_runtime.Dpool.parallel_for p1 ~n:5 (fun lo hi ->
         covered := !covered + (hi - lo)));
  checki "full coverage" 5 !covered;
  Gpu_runtime.Dpool.shutdown p1

let test_dpool_exception () =
  let p = Lazy.force pool in
  checkb "chunk exception reaches the submitter" true
    (try
       ignore
         (Gpu_runtime.Dpool.parallel_for p ~n:100 (fun lo _ ->
              if lo = 0 then failwith "boom"));
       false
     with Failure m -> m = "boom");
  (* the pool survives a failed job *)
  let covered = ref (Atomic.make 0) in
  ignore
    (Gpu_runtime.Dpool.parallel_for p ~n:50 (fun lo hi ->
         ignore (Atomic.fetch_and_add !covered (hi - lo))));
  checki "usable after failure" 50 (Atomic.get !covered)

(* ---------------- The race-freedom gate ---------------- *)

let model_of k =
  match Mekong.Access.analyze k with
  | Ok a -> Mekong.Model.of_analysis a
  | Error e -> Alcotest.failf "analysis failed: %s" (Mekong.Access.error_message e)

let test_gate_admits_injective () =
  List.iter
    (fun k ->
       checkb (k.Kir.name ^ " is parallel-safe") true
         (Mekong.Model.parallel_safe ~kernel:k (model_of k)))
    [ Apps.Matmul.kernel; Apps.Hotspot.kernel; Apps.Vecadd.kernel ]

(* In-place update reading a cell every block shares: the write map is
   injective, but block b1 reads a[0] while block 0 writes it. *)
let read_write_overlap_kernel =
  let open Kir in
  Kir.kernel ~name:"rw_overlap"
    ~params:[ Scalar "n"; Array { name = "a"; dims = [| Dim_param "n" |] } ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( v "gi" < p "n",
          [ store "a" [ v "gi" ] (load "a" [ i 0 ] + f 1.0) ],
          [] );
    ]

let test_gate_rejects_races () =
  checkb "cross-block read/write overlap rejected" false
    (Mekong.Model.parallel_safe ~kernel:read_write_overlap_kernel
       (model_of read_write_overlap_kernel));
  (* an instrumented write (run-time-collected pattern, paper §11) has
     no static injectivity proof: a statically-safe model flips to
     unsafe the moment one array's writes become instrumented *)
  let km = model_of Apps.Matmul.kernel in
  let km_instr =
    {
      km with
      Mekong.Model.arrays =
        List.map
          (fun (am : Mekong.Model.array_model) ->
             if am.Mekong.Model.write <> None then
               { am with Mekong.Model.write_instrumented = true }
             else am)
          km.Mekong.Model.arrays;
    }
  in
  checkb "instrumented writes rejected" false
    (Mekong.Model.parallel_safe ~kernel:Apps.Matmul.kernel km_instr)

(* ---------------- Kcompile unit tests ---------------- *)

let compile_exn k ~grid ~block ~args =
  match Kcompile.compile k ~grid ~block ~args with
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected interpreter fallback: %s" e

(* Run a kernel under both engines with identical inputs; return the
   outcome (normal or the Invalid_argument message) and the output bit
   pattern. *)
let both_engines k ~grid ~block ~args ~n_out =
  let run exec =
    let out = Array.make n_out nan in
    let load _ off = out.(off) in
    let store _ off v = out.(off) <- v in
    let outcome =
      try
        (match exec with
         | `Interp -> Keval.run k ~grid ~block ~args ~load ~store
         | `Compiled ->
           let c = compile_exn k ~grid ~block ~args in
           ignore (Kcompile.run c ~load ~store : [ `Seq | `Par of int ]));
        Ok ()
      with Invalid_argument m -> Error m
    in
    (outcome, Array.map Int64.bits_of_float out)
  in
  (run `Interp, run `Compiled)

let ops_kernel =
  let open Kir in
  let k =
    Kir.kernel ~name:"ops"
      ~params:[ Array { name = "out"; dims = [| Dim_const 10 |] } ]
      [
        If
          ( global_id Dim3.X = i 0,
            [
              store "out" [ i 0 ] (Binop (Idiv, i (-7), i 2));
              store "out" [ i 1 ] (Binop (Imod, i (-7), i 2));
              store "out" [ i 2 ] (i 7 / i 2);
              store "out" [ i 3 ] (min_ (i 3) (i 5));
              store "out" [ i 4 ] (max_ (f 3.5) (f 1.5));
              store "out" [ i 5 ] (sqrt_ (f 16.0));
              store "out" [ i 6 ] (rsqrt (f 4.0));
              store "out" [ i 7 ] (Unop (Abs, f (-2.5)));
              (* ties must follow Stdlib min/max exactly *)
              store "out" [ i 8 ] (min_ (f 0.0) (f (-0.0)));
              store "out" [ i 9 ] (max_ (f (-0.0)) (f 0.0));
            ],
            [] );
      ]
  in
  k

let test_kcompile_ops_bit_identity () =
  let (ri, bi), (rc, bc) =
    both_engines ops_kernel ~grid:Dim3.one ~block:Dim3.one ~args:[] ~n_out:10
  in
  checkb "both complete" true (ri = Ok () && rc = Ok ());
  checkb "bit-identical" true (bi = bc)

let oob_kernel =
  let open Kir in
  Kir.kernel ~name:"oob"
    ~params:[ Array { name = "out"; dims = [| Dim_const 2 |] } ]
    [ store "out" [ i 5 ] (f 1.0) ]

let test_kcompile_oob_names_array () =
  let (ri, _), (rc, _) =
    both_engines oob_kernel ~grid:Dim3.one ~block:Dim3.one ~args:[] ~n_out:2
  in
  match (ri, rc) with
  | Error mi, Error mc ->
    checkb "same diagnostic" true (mi = mc);
    checkb "names the array" true
      (try
         ignore (Str.search_forward (Str.regexp_string "array out") mi 0);
         true
       with Not_found -> false);
    checkb "mentions the bound" true
      (try
         ignore (Str.search_forward (Str.regexp_string "[0,2)") mi 0);
         true
       with Not_found -> false)
  | _ -> Alcotest.fail "both engines must reject the out-of-bounds store"

let arity_kernel =
  let open Kir in
  Kir.kernel ~name:"arity"
    ~params:[ Array { name = "a"; dims = [| Dim_const 4 |] } ]
    [ store "a" [ i 0; i 1 ] (f 1.0) ]

let test_kcompile_arity_names_array () =
  let (ri, _), (rc, _) =
    both_engines arity_kernel ~grid:Dim3.one ~block:Dim3.one ~args:[] ~n_out:4
  in
  match (ri, rc) with
  | Error mi, Error mc ->
    checkb "same diagnostic" true (mi = mc);
    checkb "names array and arity" true
      (try
         ignore
           (Str.search_forward
              (Str.regexp_string "array a has 1 dimension(s), got 2") mi 0);
         true
       with Not_found -> false)
  | _ -> Alcotest.fail "both engines must reject the arity mismatch"

(* a local bound only under a condition is not definitely bound *)
let maybe_unbound_kernel =
  let open Kir in
  Kir.kernel ~name:"maybe"
    ~params:[ Scalar "n"; Array { name = "out"; dims = [| Dim_param "n" |] } ]
    [
      Local ("gi", global_id Dim3.X);
      If (v "gi" < p "n", [ Local ("t", f 1.0) ], []);
      If (v "gi" < p "n", [ store "out" [ v "gi" ] (v "t") ], []);
    ]

(* a float condition is outside the typed fragment *)
let float_cond_kernel =
  let open Kir in
  Kir.kernel ~name:"fcond"
    ~params:[ Array { name = "out"; dims = [| Dim_const 1 |] } ]
    [ If (f 1.0, [ store "out" [ i 0 ] (f 1.0) ], []) ]

let test_kcompile_fallback_cases () =
  let is_error = function Error _ -> true | Ok _ -> false in
  checkb "possibly-unbound local falls back" true
    (is_error
       (Kcompile.compile maybe_unbound_kernel ~grid:(Dim3.make 2)
          ~block:(Dim3.make 4) ~args:[ Keval.AInt 8 ]));
  checkb "float condition falls back" true
    (is_error
       (Kcompile.compile float_cond_kernel ~grid:Dim3.one ~block:Dim3.one
          ~args:[]))

let missing_arg_kernel =
  let open Kir in
  Kir.kernel ~name:"args"
    ~params:[ Scalar "n"; Array { name = "out"; dims = [| Dim_param "n" |] } ]
    [ store "out" [ i 0 ] (f 1.0) ]

let test_kcompile_arg_mismatch_raises () =
  (* Like Keval, a scalar-argument count mismatch raises before any
     thread runs — compile time for the compiled engine. *)
  checkb "arg-count mismatch raises" true
    (try
       ignore
         (Kcompile.compile missing_arg_kernel ~grid:Dim3.one ~block:Dim3.one
            ~args:[]);
       false
     with Invalid_argument _ -> true)

(* The engine-level fallback: Single_gpu must run non-compilable
   kernels through the interpreter with correct results, and count
   them. *)
let fallback_dbl_kernel =
  let open Kir in
  Kir.kernel ~name:"maybe"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "out"; dims = [| Dim_param "n" |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If (v "gi" < p "n", [ Local ("t", load "a" [ v "gi" ]) ], []);
      If (v "gi" < p "n", [ store "out" [ v "gi" ] (v "t" * f 2.0) ], []);
    ]

let compiled_dbl_kernel =
  let open Kir in
  Kir.kernel ~name:"dbl"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "out"; dims = [| Dim_param "n" |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( v "gi" < p "n",
          [ store "out" [ v "gi" ] (load "a" [ v "gi" ] * f 2.0) ],
          [] );
    ]

let test_single_gpu_fallback_and_cache () =
  let n = 16 in
  let a = Array.init n float_of_int in
  let result = Array.make n nan in
  let prog kernel =
    Host_ir.program ~name:"p"
      [
        Host_ir.Malloc ("a", n);
        Host_ir.Malloc ("out", n);
        Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
        Host_ir.Repeat
          ( 3,
            [
              Host_ir.Launch
                {
                  kernel;
                  grid = Dim3.make 4;
                  block = Dim3.make 4;
                  args = [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "out" ];
                };
            ] );
        Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "out" };
        Host_ir.Free "a";
        Host_ir.Free "out";
      ]
  in
  let r = Single_gpu.run (prog fallback_dbl_kernel) in
  checkb "fallback result correct" true
    (Array.for_all2 (fun x y -> x *. 2.0 = y) a result);
  checki "all launches interpreted" 3 r.Single_gpu.exec.Kcompile.st_interpreted;
  (* the failed compile attempt is cached, so it is paid once *)
  checki "one compile attempt" 1 r.Single_gpu.exec.Kcompile.st_compiles;
  checki "failure reused from cache" 2 r.Single_gpu.exec.Kcompile.st_cache_hits;
  checki "no compiled launches" 0 r.Single_gpu.exec.Kcompile.st_seq;
  (* a compilable kernel is compiled once and reused *)
  let r2 = Single_gpu.run (prog compiled_dbl_kernel) in
  checkb "compiled result correct" true
    (Array.for_all2 (fun x y -> x *. 2.0 = y) a result);
  checki "compiled once" 1 r2.Single_gpu.exec.Kcompile.st_compiles;
  checki "two cache hits" 2 r2.Single_gpu.exec.Kcompile.st_cache_hits;
  checki "three sequential launches" 3 r2.Single_gpu.exec.Kcompile.st_seq

(* ---------------- Differential QCheck property ----------------

   Random guarded kernels out[gi] = f(a[gi], b[gi], gi, scalars ...),
   optionally with a reduction loop over a, run through the Keval
   interpreter, the compiled executor, and the compiled executor with
   the launch split over a 3-domain pool.  All three must agree bit
   for bit (the kernels write out[gi] under a gi < n guard, so blocks
   are disjoint by construction and parallel execution is admissible). *)

let gen_leaf_i =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun k -> Kir.Iconst k) (QCheck.Gen.int_range (-3) 9);
      QCheck.Gen.return (Kir.Param "n");
      QCheck.Gen.return (Kir.Var "gi");
      QCheck.Gen.return (Kir.Special (Kir.Thread_idx Dim3.X));
      QCheck.Gen.return (Kir.Special (Kir.Block_idx Dim3.X));
      QCheck.Gen.return (Kir.Special (Kir.Block_dim Dim3.X));
      QCheck.Gen.return (Kir.Special (Kir.Grid_dim Dim3.X));
    ]

let rec gen_iexp fuel =
  if fuel <= 0 then gen_leaf_i
  else
    QCheck.Gen.frequency
      [
        (2, gen_leaf_i);
        ( 3,
          QCheck.Gen.map3
            (fun op a b -> Kir.Binop (op, a, b))
            (QCheck.Gen.oneofl [ Kir.Add; Kir.Sub; Kir.Mul; Kir.Minb; Kir.Maxb ])
            (gen_iexp (fuel - 1)) (gen_iexp (fuel - 1)) );
        (* integer division/modulo with a constant positive divisor:
           both engines must agree on truncation of negatives *)
        ( 1,
          QCheck.Gen.map3
            (fun op a d -> Kir.Binop (op, a, Kir.Iconst d))
            (QCheck.Gen.oneofl [ Kir.Idiv; Kir.Imod ])
            (gen_iexp (fuel - 1))
            (QCheck.Gen.int_range 1 5) );
        (1, QCheck.Gen.map (fun a -> Kir.Unop (Kir.Neg, a)) (gen_iexp (fuel - 1)));
      ]

let gen_leaf_f =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map
        (fun k -> Kir.Fconst (float_of_int k /. 4.0))
        (QCheck.Gen.int_range (-20) 20);
      QCheck.Gen.return (Kir.Param "s");
      QCheck.Gen.return (Kir.Load ("a", [ Kir.Var "gi" ]));
      QCheck.Gen.return (Kir.Load ("b", [ Kir.Var "gi" ]));
    ]

let rec gen_fexp fuel =
  if fuel <= 0 then gen_leaf_f
  else
    QCheck.Gen.frequency
      [
        (2, gen_leaf_f);
        ( 3,
          QCheck.Gen.map3
            (fun op a b -> Kir.Binop (op, a, b))
            (QCheck.Gen.oneofl
               [ Kir.Add; Kir.Sub; Kir.Mul; Kir.Div; Kir.Minb; Kir.Maxb ])
            (gen_fexp (fuel - 1)) (gen_fexp (fuel - 1)) );
        (* mixed int/float arithmetic promotes to float *)
        ( 1,
          QCheck.Gen.map3
            (fun op a b -> Kir.Binop (op, a, b))
            (QCheck.Gen.oneofl [ Kir.Add; Kir.Mul ])
            (gen_iexp (fuel - 1)) (gen_fexp (fuel - 1)) );
        (1, QCheck.Gen.map (fun a -> Kir.Unop (Kir.Neg, a)) (gen_fexp (fuel - 1)));
        (1, QCheck.Gen.map (fun a -> Kir.Unop (Kir.Abs, a)) (gen_fexp (fuel - 1)));
        ( 1,
          QCheck.Gen.map
            (fun a -> Kir.Unop (Kir.Sqrt, Kir.Unop (Kir.Abs, a)))
            (gen_fexp (fuel - 1)) );
        ( 1,
          QCheck.Gen.map
            (fun a -> Kir.Unop (Kir.Rsqrt, Kir.Unop (Kir.Abs, a)))
            (gen_fexp (fuel - 1)) );
      ]

let gen_cmp fuel =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map3
        (fun op a b -> Kir.Binop (op, a, b))
        (QCheck.Gen.oneofl [ Kir.Lt; Kir.Le; Kir.Gt; Kir.Ge; Kir.Eq; Kir.Ne ])
        (gen_fexp fuel) (gen_fexp fuel);
      QCheck.Gen.map3
        (fun op a b -> Kir.Binop (op, a, b))
        (QCheck.Gen.oneofl [ Kir.Lt; Kir.Le; Kir.Gt; Kir.Ge; Kir.Eq; Kir.Ne ])
        (gen_iexp fuel) (gen_iexp fuel);
    ]

let gen_bexp fuel =
  QCheck.Gen.frequency
    [
      (3, gen_cmp fuel);
      ( 1,
        QCheck.Gen.map3
          (fun op a b -> Kir.Binop (op, a, b))
          (QCheck.Gen.oneofl [ Kir.And; Kir.Or ])
          (gen_cmp (fuel - 1)) (gen_cmp (fuel - 1)) );
      (1, QCheck.Gen.map (fun a -> Kir.Unop (Kir.Not, a)) (gen_cmp (fuel - 1)));
    ]

type dspec = { dk : Kir.t; d_n : int; d_bx : int; d_gx : int; d_s : float }

let gen_dspec =
  let open QCheck.Gen in
  gen_fexp 3 >>= fun init ->
  opt (gen_fexp 2) >>= fun loop ->
  gen_bexp 2 >>= fun cond ->
  gen_fexp 3 >>= fun e_then ->
  gen_fexp 3 >>= fun e_else ->
  int_range 3 40 >>= fun n ->
  int_range 1 8 >>= fun bx ->
  int_range 0 2 >>= fun extra_blocks ->
  int_range (-12) 12 >>= fun s4 ->
  let gx = ((n + bx - 1) / bx) + extra_blocks in
  let open Kir in
  let body =
    [ Local ("acc", init) ]
    @ (match loop with
       | Some factor ->
         [
           For
             {
               var = "k";
               from_ = i 0;
               to_ = p "n";
               body = [ Assign ("acc", v "acc" + (load "a" [ v "k" ] * factor)) ];
             };
         ]
       | None -> [])
    @ [
        If
          ( cond,
            [ store "out" [ v "gi" ] (v "acc" + e_then) ],
            [ store "out" [ v "gi" ] (v "acc" - e_else) ] );
      ]
  in
  let dk =
    Kir.kernel ~name:"rand_exec"
      ~params:
        [
          Scalar "n";
          Fscalar "s";
          Array { name = "a"; dims = [| Dim_param "n" |] };
          Array { name = "b"; dims = [| Dim_param "n" |] };
          Array { name = "out"; dims = [| Dim_param "n" |] };
        ]
      [
        Local ("gi", global_id Dim3.X);
        If (v "gi" < p "n", body, []);
      ]
  in
  return
    {
      dk;
      d_n = n;
      d_bx = bx;
      d_gx = gx;
      d_s = float_of_int s4 /. 4.0;
    }

let print_dspec s =
  Printf.sprintf "n=%d block=%d grid=%d s=%g\n%s" s.d_n s.d_bx s.d_gx s.d_s
    (Kir.to_string s.dk)

let run_dspec spec engine =
  let n = spec.d_n in
  let a = Array.init n (fun i -> float_of_int ((i * 13 mod 23) - 11) /. 8.0) in
  let b = Array.init n (fun i -> float_of_int ((i * 7 mod 17) - 8) /. 4.0) in
  let out = Array.make n nan in
  let load name off =
    match name with
    | "a" -> a.(off)
    | "b" -> b.(off)
    | "out" -> out.(off)
    | _ -> assert false
  in
  let store name off v =
    assert (name = "out");
    out.(off) <- v
  in
  let grid = Dim3.make spec.d_gx and block = Dim3.make spec.d_bx in
  let args = [ Keval.AInt n; Keval.AFloat spec.d_s ] in
  let outcome =
    try
      (match engine with
       | `Interp -> Keval.run spec.dk ~grid ~block ~args ~load ~store
       | `Seq | `Par ->
         (match Kcompile.compile spec.dk ~grid ~block ~args with
          | Error e -> QCheck.Test.fail_reportf "fell out of the fragment: %s" e
          | Ok ck ->
            let pool =
              match engine with `Par -> Some (Lazy.force pool) | _ -> None
            in
            ignore (Kcompile.run ?pool ck ~load ~store : [ `Seq | `Par of int ])));
      `Completed
    with Invalid_argument m -> `Raised m
  in
  (outcome, Array.map Int64.bits_of_float out)

let prop_differential =
  QCheck.Test.make
    ~name:"random kernels: interpreter == compiled == compiled-parallel" ~count:150
    (QCheck.make ~print:print_dspec gen_dspec)
    (fun spec ->
       let ri = run_dspec spec `Interp in
       let rs = run_dspec spec `Seq in
       let rp = run_dspec spec `Par in
       ri = rs && ri = rp)

(* ---------------- Multi_gpu integration ---------------- *)

let compile_exe prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)

let test_multi_gpu_parallel_golden () =
  (* With the pool sized 2 (top of file), a race-free kernel's
     partitions run domain-parallel — and stay golden. *)
  let prog, out, cpu = Apps.Workloads.functional_matmul ~n:32 in
  let m =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:2 ())
  in
  let r = Mekong.Multi_gpu.run ~domains:2 ~machine:m (compile_exe prog) in
  checkb "golden" true (out = cpu ());
  checkb "parallel path engaged" true (r.Mekong.Multi_gpu.exec.Kcompile.st_par >= 1);
  checki "two domains engaged" 2 r.Mekong.Multi_gpu.exec.Kcompile.st_domains;
  checki "no interpreter fallback" 0 r.Mekong.Multi_gpu.exec.Kcompile.st_interpreted

let test_multi_gpu_domains1_sequential_golden () =
  let prog, out, cpu = Apps.Workloads.functional_matmul ~n:32 in
  let m =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:2 ())
  in
  let r = Mekong.Multi_gpu.run ~domains:1 ~machine:m (compile_exe prog) in
  checkb "golden" true (out = cpu ());
  checki "no parallel launches" 0 r.Mekong.Multi_gpu.exec.Kcompile.st_par;
  checkb "sequential launches" true (r.Mekong.Multi_gpu.exec.Kcompile.st_seq >= 1)

let test_multi_gpu_domains_bit_identity () =
  (* domains=1 vs domains=2 must produce bit-identical buffers. *)
  let run domains =
    let prog, out, _ = Apps.Workloads.functional_hotspot ~n:32 ~iterations:4 in
    let m =
      Gpusim.Machine.create ~functional:true
        (Gpusim.Config.test_box ~n_devices:3 ())
    in
    ignore (Mekong.Multi_gpu.run ~domains ~machine:m (compile_exe prog));
    Array.map Int64.bits_of_float out
  in
  checkb "bit-identical across domain counts" true (run 1 = run 2)

let test_multi_gpu_gate_blocks_unsafe () =
  (* SpMV's indirect accesses leave the provable fragment: even with
     domains available, every launch must stay sequential. *)
  let mat = Apps.Spmv.banded ~n:64 ~band:3 in
  let x = Array.make 64 1.0 in
  let result = Array.make 64 nan in
  let prog = Apps.Spmv.program ~m:mat ~x ~result in
  let m =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:2 ())
  in
  let r = Mekong.Multi_gpu.run ~domains:2 ~machine:m (compile_exe prog) in
  checki "no parallel launches for unsafe kernels" 0
    r.Mekong.Multi_gpu.exec.Kcompile.st_par;
  checkb "ran something" true
    (r.Mekong.Multi_gpu.exec.Kcompile.st_seq
     + r.Mekong.Multi_gpu.exec.Kcompile.st_interpreted
     >= 1)

let () =
  Alcotest.run "exec"
    [
      ( "dpool",
        [
          Alcotest.test_case "empty range" `Quick test_dpool_empty_range;
          Alcotest.test_case "coverage" `Quick test_dpool_coverage;
          Alcotest.test_case "max_domains cap" `Quick test_dpool_max_domains;
          Alcotest.test_case "single-domain pool" `Quick
            test_dpool_single_domain_pool;
          Alcotest.test_case "exception propagation" `Quick test_dpool_exception;
        ] );
      ( "gate",
        [
          Alcotest.test_case "admits injective kernels" `Quick
            test_gate_admits_injective;
          Alcotest.test_case "rejects races" `Quick test_gate_rejects_races;
        ] );
      ( "kcompile",
        [
          Alcotest.test_case "operator bit-identity" `Quick
            test_kcompile_ops_bit_identity;
          Alcotest.test_case "oob diagnostic" `Quick test_kcompile_oob_names_array;
          Alcotest.test_case "arity diagnostic" `Quick
            test_kcompile_arity_names_array;
          Alcotest.test_case "fallback cases" `Quick test_kcompile_fallback_cases;
          Alcotest.test_case "argument mismatch" `Quick
            test_kcompile_arg_mismatch_raises;
          Alcotest.test_case "engine fallback + cache" `Quick
            test_single_gpu_fallback_and_cache;
          qtest prop_differential;
        ] );
      ( "multi_gpu",
        [
          Alcotest.test_case "parallel partitions golden" `Quick
            test_multi_gpu_parallel_golden;
          Alcotest.test_case "domains=1 sequential" `Quick
            test_multi_gpu_domains1_sequential_golden;
          Alcotest.test_case "domains bit-identity" `Quick
            test_multi_gpu_domains_bit_identity;
          Alcotest.test_case "gate blocks unsafe kernels" `Quick
            test_multi_gpu_gate_blocks_unsafe;
        ] );
    ]
