(* Tests for the polyhedral data-race verifier (Verify, DESIGN.md §20):
   atomics through the parser/interpreter/compiler, witness extraction
   on genuinely racy kernels, the differential property against the
   dynamic sanitizer, partitioned execution of reducible kernels, and
   the regression tying the engine's block-parallel gate to the
   verifier's verdicts. *)

(* Size the global pool before anything touches it (same reason as
   test_exec: CI machines may recommend a single domain). *)
let () = Gpu_runtime.Dpool.set_default_domains 2

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let qtest = QCheck_alcotest.to_alcotest

let analyze_exn ?(check_writes = true) k =
  match
    Mekong.Access.analyze ~check_writes ~on_inexact_write:`Instrument k
  with
  | Ok a -> a
  | Error e ->
    Alcotest.failf "analysis rejected %s: %s" k.Kir.name
      (Mekong.Access.error_message e)

let model_of ?check_writes k = Mekong.Model.of_analysis (analyze_exn ?check_writes k)

let verdict_of ?check_writes k =
  Mekong.Verify.verify ~kernel:k (model_of ?check_writes k)

(* ---------------- Atomics through the stack ---------------- *)

let parse_kernel_str src =
  let kernels, _ =
    Cuparse.parse_cu ~name:"t" (src ^ "\nint main() { return 0; }\n")
  in
  match kernels with [ k ] -> k | _ -> Alcotest.fail "expected one kernel"

let test_cuparse_atomics () =
  let k =
    parse_kernel_str
      {|__global__ void atomics(int n, float *h /* [n] */) {
          auto gi = (threadIdx.x + (blockIdx.x * blockDim.x));
          if ((gi < n)) {
            atomicAdd(&h[0], 1.0f);
            atomicMin(&h[1], gi);
            atomicMax(&h[2], gi);
          }
        }|}
  in
  (match k.Kir.body with
   | [ Kir.Local _;
       Kir.If
         ( _,
           [ Kir.Atomic (Kir.AAdd, "h", [ _ ], _);
             Kir.Atomic (Kir.AMin, "h", [ _ ], _);
             Kir.Atomic (Kir.AMax, "h", [ _ ], _) ],
           [] ) ] -> ()
   | _ -> Alcotest.fail "bad body shape");
  (* renders back to the same source fragment and re-parses equal *)
  let k' = parse_kernel_str (Kir.to_string k) in
  checkb "atomics round-trip through render/parse" true (k = k')

(* Interpreter and compiled executor must agree bit for bit on
   atomics.  Exact-arithmetic inputs so the accumulation order (which
   both engines fix to the same sequential thread order) is not even
   load-bearing for add. *)
let atomic_kernel =
  let open Kir in
  let n = p "n" in
  let gi = v "gi" in
  Kir.kernel ~name:"atomics3"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "h"; dims = [| Dim_const 3 |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( gi < n,
          [
            atomic_add "h" [ i 0 ] (load "a" [ gi ]);
            atomic_min "h" [ i 1 ] (load "a" [ gi ]);
            atomic_max "h" [ i 2 ] (load "a" [ gi ]);
          ],
          [] );
    ]

let run_atomic_kernel engine =
  let n = 100 in
  let a = Array.init n (fun idx -> float_of_int ((idx * 11 mod 37) - 18)) in
  let h = [| 0.0; infinity; neg_infinity |] in
  let load name off = match name with "a" -> a.(off) | _ -> h.(off) in
  let store name off v =
    assert (name = "h");
    h.(off) <- v
  in
  let grid = Dim3.make 13 and block = Dim3.make 8 in
  let args = [ Keval.AInt n ] in
  (match engine with
   | `Interp -> Keval.run atomic_kernel ~grid ~block ~args ~load ~store
   | `Compiled ->
     (match Kcompile.compile atomic_kernel ~grid ~block ~args with
      | Error e -> Alcotest.failf "atomics fell out of the fragment: %s" e
      | Ok ck -> ignore (Kcompile.run ck ~load ~store : [ `Seq | `Par of int ])));
  Array.map Int64.bits_of_float h

let test_keval_kcompile_atomic_bit_identity () =
  let hi = run_atomic_kernel `Interp in
  let hc = run_atomic_kernel `Compiled in
  checkb "interpreter == compiled on atomics" true (hi = hc);
  (* and both actually reduced something *)
  checkb "add accumulated" true (hi.(0) <> Int64.bits_of_float 0.0);
  checkb "min found" true (hi.(1) <> Int64.bits_of_float infinity)

(* ---------------- Verdicts and witnesses ---------------- *)

let racy_kernel =
  let open Kir in
  let n = p "n" in
  let gi = v "gi" in
  Kir.kernel ~name:"racy"
    ~params:[ Scalar "n"; Array { name = "a"; dims = [| Dim_param "n" |] } ]
    [
      Local ("gi", global_id Dim3.X);
      If (gi < n, [ store "a" [ gi ] (load "a" [ i 0 ] + f 1.0) ], []);
    ]

let test_verify_racy_witness () =
  match verdict_of racy_kernel with
  | Mekong.Verify.Racy (w :: _ as ws) ->
    checkb "at least one witness" true (List.length ws >= 1);
    checks "witness names the array" "a" w.Mekong.Verify.w_arr;
    checkb "blocks are distinct" true
      (w.Mekong.Verify.w_block1 <> w.Mekong.Verify.w_block2);
    (* a write is involved on at least one side *)
    checkb "conflicting pair involves a write" true
      (w.Mekong.Verify.w_kind1 = Mekong.Verify.Write
       || w.Mekong.Verify.w_kind2 = Mekong.Verify.Write);
    (* the printed form is what mekongc verify shows; keep it stable *)
    checkb "witness renders" true
      (String.length (Mekong.Verify.witness_to_string w) > 0)
  | v ->
    Alcotest.failf "expected racy, got %s" (Mekong.Verify.verdict_to_string v)

let test_verify_safe_and_reducible () =
  checks "vecadd safe" "safe"
    (Mekong.Verify.verdict_name (verdict_of Apps.Vecadd.kernel));
  (match verdict_of Apps.Dot.kernel with
   | Mekong.Verify.Reducible [ ("out", Kir.AAdd) ] -> ()
   | v ->
     Alcotest.failf "dot: expected reducible out/add, got %s"
       (Mekong.Verify.verdict_to_string v));
  match verdict_of Apps.Histogram.kernel with
  | Mekong.Verify.Reducible [ ("hist", Kir.AAdd) ] -> ()
  | v ->
    Alcotest.failf "histogram: expected reducible hist/add, got %s"
      (Mekong.Verify.verdict_to_string v)

let test_sanitizer_flags_racy () =
  let confl =
    Mekong.Verify.sanitize racy_kernel ~grid:(Dim3.make 4)
      ~block:(Dim3.make 8) ~args:[ Keval.AInt 32 ]
  in
  checkb "sanitizer sees the race" true (confl <> []);
  (* same-operator atomics are not conflicts *)
  let confl_dot =
    Mekong.Verify.sanitize Apps.Dot.kernel ~grid:(Dim3.make 4)
      ~block:(Dim3.make 8) ~args:[ Keval.AInt 32 ]
  in
  checki "dot's atomics are clean" 0 (List.length confl_dot)

(* ---------------- Differential QCheck property ----------------

   Random one/two-access kernels over out[idx] with idx drawn from a
   pool of affine and non-affine expressions, access kinds spanning
   plain stores, atomics of each operator, and plain reads.  Whatever
   the dynamic sanitizer catches under a concrete launch, the static
   verdict must not be Safe; and every Racy verdict carries validated
   witnesses from distinct blocks. *)

type vspec = { vk : Kir.t; v_n : int; v_bx : int; v_gx : int }

let gen_idx =
  QCheck.Gen.oneofl
    [
      Kir.Var "gi";
      Kir.Iconst 0;
      Kir.Binop (Kir.Idiv, Kir.Var "gi", Kir.Iconst 2);
      Kir.Binop (Kir.Imod, Kir.Var "gi", Kir.Iconst 3);
      Kir.Binop (Kir.Sub, Kir.Binop (Kir.Sub, Kir.Param "n", Kir.Iconst 1),
                 Kir.Var "gi");
    ]

let gen_access =
  let open QCheck.Gen in
  gen_idx >>= fun idx ->
  oneofl
    [
      Kir.store "out" [ idx ] (Kir.load "a" [ Kir.Var "gi" ]);
      Kir.atomic_add "out" [ idx ] (Kir.load "a" [ Kir.Var "gi" ]);
      Kir.atomic_min "out" [ idx ] (Kir.load "a" [ Kir.Var "gi" ]);
      Kir.atomic_max "out" [ idx ] (Kir.f 2.0);
      Kir.Local ("r", Kir.load "out" [ idx ]);
    ]

let gen_vspec =
  let open QCheck.Gen in
  gen_access >>= fun a1 ->
  opt gen_access >>= fun a2 ->
  int_range 4 24 >>= fun n ->
  int_range 1 4 >>= fun bx ->
  int_range 0 1 >>= fun extra ->
  let gx = ((n + bx - 1) / bx) + extra in
  let open Kir in
  (* locals need distinct names if both accesses read *)
  let rename i = function
    | Local (_, e) -> Local (Printf.sprintf "r%d" i, e)
    | s -> s
  in
  let body = [ rename 1 a1 ] @ (match a2 with Some a -> [ rename 2 a ] | None -> []) in
  let vk =
    Kir.kernel ~name:"rand_verify"
      ~params:
        [
          Scalar "n";
          Array { name = "a"; dims = [| Dim_param "n" |] };
          Array { name = "out"; dims = [| Dim_param "n" |] };
        ]
      [ Local ("gi", global_id Dim3.X); If (v "gi" < p "n", body, []) ]
  in
  return { vk; v_n = n; v_bx = bx; v_gx = gx }

let print_vspec s =
  Printf.sprintf "n=%d block=%d grid=%d\n%s" s.v_n s.v_bx s.v_gx
    (Kir.to_string s.vk)

let prop_sanitizer_vs_verdict =
  QCheck.Test.make
    ~name:"random kernels: sanitizer conflicts imply verdict is not safe"
    ~count:60
    (QCheck.make ~print:print_vspec gen_vspec)
    (fun spec ->
       let confl =
         Mekong.Verify.sanitize spec.vk ~grid:(Dim3.make spec.v_gx)
           ~block:(Dim3.make spec.v_bx)
           ~args:[ Keval.AInt spec.v_n ]
       in
       let verdict = verdict_of ~check_writes:false spec.vk in
       let sound =
         confl = [] || verdict <> Mekong.Verify.Safe
       in
       let witnesses_valid =
         match verdict with
         | Mekong.Verify.Racy ws ->
           ws <> []
           && List.for_all
                (fun w ->
                   w.Mekong.Verify.w_block1 <> w.Mekong.Verify.w_block2)
                ws
         | _ -> true
       in
       if not sound then
         QCheck.Test.fail_reportf
           "sanitizer caught %d conflicts but verdict is safe"
           (List.length confl);
       sound && witnesses_valid)

(* ---------------- Partitioned reducible execution ---------------- *)

let compile_exe prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> a.Mekong.Toolchain.exe
  | Error e -> Alcotest.failf "toolchain: %s" (Mekong.Toolchain.error_message e)

(* Reducible kernels must be bit-identical to the CPU reference and to
   themselves across 1/2/4 devices (exact-arithmetic data, so the
   partition-local accumulation + ordered merge has nothing to hide
   behind). *)
let device_sweep name mk =
  let results =
    List.map
      (fun n_devices ->
         let prog, out, cpu = mk () in
         let m =
           Gpusim.Machine.create ~functional:true
             (Gpusim.Config.test_box ~n_devices ())
         in
         let r = Mekong.Multi_gpu.run ~machine:m (compile_exe prog) in
         checkb
           (Printf.sprintf "%s golden on %d devices" name n_devices)
           true
           (Array.map Int64.bits_of_float out
            = Array.map Int64.bits_of_float (cpu ()));
         checki
           (Printf.sprintf "%s gated reducible on %d devices" name n_devices)
           1 r.Mekong.Multi_gpu.gate.Mekong.Multi_gpu.gr_reducible;
         checkb
           (Printf.sprintf "%s merged on %d devices" name n_devices)
           true
           (r.Mekong.Multi_gpu.gate.Mekong.Multi_gpu.gr_merges >= 1);
         Array.map Int64.bits_of_float out)
      [ 1; 2; 4 ]
  in
  match results with
  | r1 :: rest ->
    checkb (name ^ " bit-identical across device counts") true
      (List.for_all (fun r -> r = r1) rest)
  | [] -> assert false

let test_histogram_partitioned () =
  device_sweep "histogram" (fun () ->
      Apps.Workloads.functional_histogram ~n:2048 ~nbins:53)

let test_dot_partitioned () =
  device_sweep "dot" (fun () -> Apps.Workloads.functional_dot ~n:2048)

let test_link_rejects_racy_atomics () =
  (* An atomic kernel that ALSO plainly writes the reduced array is
     neither safe nor reducible; link must refuse it rather than let
     the merge silently corrupt it. *)
  let k =
    let open Kir in
    Kir.kernel ~name:"mixed"
      ~params:[ Scalar "n"; Array { name = "o"; dims = [| Dim_param "n" |] } ]
      [
        Local ("gi", global_id Dim3.X);
        If
          ( v "gi" < p "n",
            [
              atomic_add "o" [ i 0 ] (f 1.0); store "o" [ v "gi" ] (f 0.0);
            ],
            [] );
      ]
  in
  let prog =
    Host_ir.program ~name:"mixed"
      [
        Host_ir.Malloc ("o", 64);
        Host_ir.Launch
          {
            kernel = k;
            grid = Dim3.make 8;
            block = Dim3.make 8;
            args = [ Host_ir.HInt 64; Host_ir.HBuf "o" ];
          };
        Host_ir.Free "o";
      ]
  in
  match Mekong.Toolchain.compile prog with
  | Error _ -> () (* front-end may already reject; also fine *)
  | Ok _ -> Alcotest.fail "link accepted an unsound atomic kernel"
  | exception Invalid_argument m ->
    checkb "diagnostic names the kernel" true
      (String.length m > 0
       && Str.string_match (Str.regexp ".*mixed.*") m 0)

(* ---------------- Gate/verifier regression ---------------- *)

let test_gate_agrees_with_verifier () =
  (* Every kernel the engine's boolean gate admits for block-parallel
     execution must be verifier-Safe (the typed verdict strictly
     refines the old gate; it must never regress it). *)
  List.iter
    (fun (name, k) ->
       let km = model_of k in
       let gate = Mekong.Model.parallel_safe ~kernel:k km in
       let verdict = Mekong.Verify.verify ~kernel:k km in
       if gate then
         checks (name ^ ": gate-admitted kernel is verifier-safe") "safe"
           (Mekong.Verify.verdict_name verdict))
    [
      ("vecadd", Apps.Vecadd.kernel);
      ("hotspot", Apps.Hotspot.kernel);
      ("nbody", Apps.Nbody.kernel);
      ("matmul", Apps.Matmul.kernel);
      ("dot", Apps.Dot.kernel);
      ("histogram", Apps.Histogram.kernel);
    ]

let () =
  Alcotest.run "verify"
    [
      ( "atomics",
        [
          Alcotest.test_case "cuparse round-trip" `Quick test_cuparse_atomics;
          Alcotest.test_case "keval == kcompile" `Quick
            test_keval_kcompile_atomic_bit_identity;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "racy witness" `Quick test_verify_racy_witness;
          Alcotest.test_case "safe and reducible" `Quick
            test_verify_safe_and_reducible;
          Alcotest.test_case "sanitizer" `Quick test_sanitizer_flags_racy;
          qtest prop_sanitizer_vs_verdict;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "histogram 1/2/4 devices" `Quick
            test_histogram_partitioned;
          Alcotest.test_case "dot 1/2/4 devices" `Quick test_dot_partitioned;
          Alcotest.test_case "link rejects unsound atomics" `Quick
            test_link_rejects_racy_atomics;
        ] );
      ( "gate",
        [
          Alcotest.test_case "gate implies verifier-safe" `Quick
            test_gate_agrees_with_verifier;
        ] );
    ]
