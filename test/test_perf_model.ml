(* Sanity net over the performance model: invariants the simulated
   timings must satisfy regardless of calibration — determinism, the
   alpha/beta/gamma ordering of §9.2, speedup bounds, and monotonicity
   properties the figures rely on. *)

let checkb = Alcotest.check Alcotest.bool

let artifacts bench size iters =
  let prog = Apps.Workloads.program ~iterations:iters bench size in
  match Mekong.Toolchain.compile prog with
  | Ok a -> a
  | Error e -> failwith (Mekong.Toolchain.error_message e)

let run ?cfg art g =
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:g ())
  in
  (Mekong.Multi_gpu.run ?cfg ~machine:m art.Mekong.Toolchain.exe)
    .Mekong.Multi_gpu.time

let reference bench size iters =
  let prog = Apps.Workloads.program ~iterations:iters bench size in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:1 ())
  in
  (Single_gpu.run ~machine:m prog).Single_gpu.time

let benches =
  [
    (Apps.Workloads.Hotspot_b, 40, "hotspot");
    (Apps.Workloads.Nbody_b, 4, "nbody");
    (Apps.Workloads.Matmul_b, 1, "matmul");
  ]

let test_determinism () =
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t1 = run art 8 and t2 = run art 8 in
       checkb (name ^ " deterministic") true (t1 = t2))
    benches

let test_alpha_beta_gamma_order () =
  (* Disabling work can only shorten the simulated run:
     gamma <= beta <= alpha. *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       List.iter
         (fun g ->
            let a = run ~cfg:Gpu_runtime.Rconfig.alpha art g in
            let bt = run ~cfg:Gpu_runtime.Rconfig.beta art g in
            let c = run ~cfg:Gpu_runtime.Rconfig.gamma art g in
            checkb
              (Printf.sprintf "%s g=%d: gamma<=beta<=alpha (%g %g %g)" name g
                 c bt a)
              true
              (c <= bt +. 1e-12 && bt <= a +. 1e-12))
         [ 2; 8; 16 ])
    benches

let test_speedup_bounds () =
  (* Speedup on g devices can exceed neither g (no superlinearity in
     this model modulo boost: 1-active-die boost makes the reference
     FASTER, so the bound holds) nor fall below what a single device
     would give (adding devices to an alpha run never helps the model
     lie below 0). *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t_ref = reference b Apps.Workloads.Small iters in
       List.iter
         (fun g ->
            let t = run art g in
            let sp = t_ref /. t in
            checkb
              (Printf.sprintf "%s g=%d speedup %.2f within (0, %d]" name g sp g)
              true
              (sp > 0.0 && sp <= float_of_int g +. 1e-6))
         [ 1; 2; 4; 8; 16 ])
    benches

let test_partitioned_not_faster_than_reference_on_one () =
  (* On one device the partitioned binary can only add overhead. *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t_ref = reference b Apps.Workloads.Small iters in
       let t1 = run art 1 in
       checkb (name ^ " single-GPU overhead >= 0") true (t1 >= t_ref -. 1e-9))
    benches

let test_more_work_takes_longer () =
  (* Monotonicity in problem size and iteration count. *)
  let t_small = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 20) 8 in
  let t_medium = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Medium 20) 8 in
  checkb "medium > small" true (t_medium > t_small);
  let t10 = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 10) 8 in
  let t40 = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 40) 8 in
  checkb "more iterations take longer" true (t40 > t10)

let test_transfers_grow_with_devices () =
  (* Figure 7's mechanism: the transfer fraction grows with the device
     count. *)
  let art = artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 40 in
  let frac g =
    let a = run ~cfg:Gpu_runtime.Rconfig.alpha art g in
    let b = run ~cfg:Gpu_runtime.Rconfig.beta art g in
    (a -. b) /. a
  in
  checkb "transfer fraction grows 2 -> 16" true (frac 16 > frac 2)

let test_stats_consistency () =
  (* Byte counters match what the workloads move. *)
  let n = Apps.Workloads.problem_size Apps.Workloads.Matmul_b Apps.Workloads.Small in
  let art = artifacts Apps.Workloads.Matmul_b Apps.Workloads.Small 1 in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:4 ())
  in
  ignore (Mekong.Multi_gpu.run ~machine:m art.Mekong.Toolchain.exe);
  let s = Gpusim.Machine.stats m in
  (* h2d: A and B fully uploaded once *)
  Alcotest.(check int) "h2d bytes" (2 * n * n * 4) s.Gpusim.Machine.h2d_bytes;
  (* d2h: C fully downloaded once *)
  Alcotest.(check int) "d2h bytes" (n * n * 4) s.Gpusim.Machine.d2h_bytes;
  (* p2p: the B all-gather moves 3/4 of B (n*n*4 bytes) to each of the
     4 devices = 12*n*n bytes; A rows match the linear distribution
     exactly at this size, so nothing else moves. *)
  Alcotest.(check int) "p2p = B all-gather" (3 * n * n * 4)
    s.Gpusim.Machine.p2p_bytes

(* ---------------- Autotuner cost model ---------------- *)

let qtest t = QCheck_alcotest.to_alcotest t

let choices_of ~cfg prog =
  match Mekong.Toolchain.compile prog with
  | Ok a -> Mekong.Toolchain.explain_plans ~cfg a
  | Error e -> failwith (Mekong.Toolchain.error_message e)

let candidate (ch : Mekong.Autotune.choice) name =
  match
    List.find_opt
      (fun (c : Mekong.Autotune.candidate) ->
         Mekong.Autotune.shape_name c.Mekong.Autotune.shape = name)
      ch.Mekong.Autotune.c_candidates
  with
  | Some c -> c
  | None ->
    Alcotest.failf "no candidate %s for kernel %s" name
      ch.Mekong.Autotune.c_kernel

(* Hand-computed steady-state cross-device footprints on 4 devices.

   matmul n=64, 1-D over rows: every device reads all of B but homes
   only its linear quarter, so the per-launch exchange is the B
   all-gather: 4 * (3/4 * n^2) elements = 3 n^2 * 4 bytes.  A rows and
   C tiles match the distribution exactly and move nothing.

   hotspot n=128, 1-D over rows: each of the 3 interior cuts exchanges
   one halo row in each direction: 2 * 3 * n elements * 4 bytes. *)
let test_autotune_cost_cases () =
  let cfg = Gpusim.Config.k80_box ~n_devices:4 () in
  (* matmul *)
  let prog, _, _ = Apps.Workloads.functional_matmul ~n:64 in
  (match choices_of ~cfg prog with
   | [ ch ] ->
     let fixed = candidate ch "fixed-1d-y" in
     Alcotest.(check int) "matmul 1-D bytes = B all-gather" (3 * 64 * 64 * 4)
       fixed.Mekong.Autotune.cross_bytes;
     let two_d = candidate ch "2d-yx" in
     checkb "matmul 2-D moves fewer bytes than 1-D" true
       (two_d.Mekong.Autotune.cross_bytes < fixed.Mekong.Autotune.cross_bytes);
     (* ...but per-row range emission makes 2-D lose on this host. *)
     checkb "matmul 2-D host cost dominates" true
       (two_d.Mekong.Autotune.host_s > fixed.Mekong.Autotune.host_s);
     checkb "winner never scores above fixed" true
       (ch.Mekong.Autotune.c_winner.Mekong.Autotune.score
        <= fixed.Mekong.Autotune.score)
   | l -> Alcotest.failf "matmul: expected 1 choice, got %d" (List.length l));
  (* hotspot *)
  let prog, _, _ = Apps.Workloads.functional_hotspot ~n:128 ~iterations:4 in
  match choices_of ~cfg prog with
  | [ ch ] ->
    let fixed = candidate ch "fixed-1d-y" in
    Alcotest.(check int) "hotspot 1-D bytes = row halos" (2 * 3 * 128 * 4)
      fixed.Mekong.Autotune.cross_bytes;
    let xsplit = candidate ch "1d-x" in
    checkb "column halos cost more transfer time than row halos" true
      (xsplit.Mekong.Autotune.transfer_s > fixed.Mekong.Autotune.transfer_s);
    checkb "hotspot winner carries a halo plan" true
      (Mekong.Autotune.halo_depth ch.Mekong.Autotune.c_winner >= 2);
    checkb "winner never scores above fixed" true
      (ch.Mekong.Autotune.c_winner.Mekong.Autotune.score
       <= fixed.Mekong.Autotune.score)
  | l -> Alcotest.failf "hotspot: expected 1 choice, got %d" (List.length l)

(* Uneven splits on a heterogeneous fleet: the rounded cumulative
   prefix gives each device a share proportional to its speed, and the
   scored makespan of the weighted candidate beats the balanced fixed
   split (which is pinned to the slowest device). *)
let test_autotune_weighted_hetero () =
  let parts =
    Mekong.Partition.make_weighted
      ~grid:{ Dim3.x = 1; y = 16; z = 1 }
      ~axis:Dim3.Y
      ~weights:[| 1.0; 1.0; 2.0 |]
  in
  let sizes =
    List.map (fun (p : Mekong.Partition.t) -> Mekong.Partition.n_blocks p) parts
  in
  Alcotest.(check (list int)) "weighted 1:1:2 over 16 rows" [ 4; 4; 8 ] sizes;
  let cfg =
    Gpusim.Config.k80_box ~n_devices:4
      ~device_speeds:[| 1.0; 1.0; 0.5; 0.25 |] ()
  in
  let prog, _, _ = Apps.Workloads.functional_matmul ~n:64 in
  match choices_of ~cfg prog with
  | [ ch ] ->
    let fixed = candidate ch "fixed-1d-y" in
    let weighted = candidate ch "weighted-1d-y" in
    (* Balanced: the 0.25x device runs a full quarter at 4x block time.
       Weighted: it gets ~1/11 of the rows, so the makespan drops. *)
    checkb "weighted compute makespan beats balanced on 1:1:0.5:0.25" true
      (weighted.Mekong.Autotune.compute_s < fixed.Mekong.Autotune.compute_s)
  | l -> Alcotest.failf "expected 1 choice, got %d" (List.length l)

(* The headline safety property: the autotuned engine is a pure
   schedule change.  On random functional instances, fleets and
   speed mixes, its output is bit-identical to the fixed-strategy
   engine (both equal the CPU reference). *)
let prop_autotune_bit_identical =
  QCheck.Test.make ~name:"autotuned = fixed-axis across random apps/fleets"
    ~count:25
    QCheck.(triple (int_range 0 3) (int_range 1 6) bool)
    (fun (app, g, hetero) ->
       let instance () =
         match app with
         | 0 ->
           let n = 17 + (app * 7) + (g * 31) in
           let p, out, cpu = Apps.Workloads.functional_vecadd ~n in
           (p, out, cpu)
         | 1 ->
           let p, out, cpu =
             Apps.Workloads.functional_hotspot ~n:(8 + (4 * g)) ~iterations:(1 + g)
           in
           (p, out, cpu)
         | 2 ->
           let p, out, cpu = Apps.Workloads.functional_matmul ~n:(4 + (3 * g)) in
           (p, out, cpu)
         | _ ->
           let p, out, cpu =
             Apps.Workloads.functional_nbody ~n:(16 + (8 * g)) ~iterations:2
           in
           (p, out, cpu)
       in
       let device_speeds =
         if hetero then
           Some (Array.init g (fun d -> 1.0 /. float_of_int (1 + (d mod 3))))
         else None
       in
       let run_engine ~autotune =
         let prog, out, cpu = instance () in
         let exe =
           match Mekong.Toolchain.compile prog with
           | Ok a -> a.Mekong.Toolchain.exe
           | Error e -> failwith (Mekong.Toolchain.error_message e)
         in
         let m =
           Gpusim.Machine.create ~functional:true
             (Gpusim.Config.test_box ~n_devices:g ?device_speeds ())
         in
         ignore (Mekong.Multi_gpu.run ~autotune ~machine:m exe);
         (out, cpu)
       in
       let fixed_out, cpu = run_engine ~autotune:false in
       let tuned_out, _ = run_engine ~autotune:true in
       fixed_out = tuned_out && tuned_out = cpu ())

(* Halo-tiling regression: with autotuning on, the steady-state
   per-iteration exchanged bytes on the iterated stencil shrink
   against the seed engine.  Differencing two iteration counts
   removes the one-time distribution/consolidation traffic. *)
let test_autotune_halo_bytes_shrink () =
  let p2p ~autotune ~iterations =
    let prog, out, cpu =
      Apps.Workloads.functional_hotspot ~n:128 ~iterations
    in
    let exe =
      match Mekong.Toolchain.compile prog with
      | Ok a -> a.Mekong.Toolchain.exe
      | Error e -> failwith (Mekong.Toolchain.error_message e)
    in
    let m =
      Gpusim.Machine.create ~functional:true
        (Gpusim.Config.k80_box ~n_devices:4 ())
    in
    let r = Mekong.Multi_gpu.run ~autotune ~machine:m exe in
    checkb "bit-identical to CPU" true (out = cpu ());
    if autotune then
      checkb "halo tiling engaged" true
        (r.Mekong.Multi_gpu.tune.Mekong.Multi_gpu.tn_halo_steps > 0);
    (Gpusim.Machine.stats m).Gpusim.Machine.p2p_bytes
  in
  let per_iter ~autotune =
    (p2p ~autotune ~iterations:24 - p2p ~autotune ~iterations:8) / (24 - 8)
  in
  let seed = per_iter ~autotune:false in
  let tuned = per_iter ~autotune:true in
  checkb
    (Printf.sprintf "per-iteration p2p bytes shrink (%d < %d)" tuned seed)
    true (tuned < seed)

let () =
  Alcotest.run "perf-model"
    [
      ( "invariants",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "alpha/beta/gamma order" `Quick
            test_alpha_beta_gamma_order;
          Alcotest.test_case "speedup bounds" `Quick test_speedup_bounds;
          Alcotest.test_case "single-GPU overhead sign" `Quick
            test_partitioned_not_faster_than_reference_on_one;
          Alcotest.test_case "work monotonicity" `Quick test_more_work_takes_longer;
          Alcotest.test_case "transfer fraction growth" `Quick
            test_transfers_grow_with_devices;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
        ] );
      ( "autotune",
        [
          Alcotest.test_case "hand-computed cost cases" `Quick
            test_autotune_cost_cases;
          Alcotest.test_case "weighted split on heterogeneous fleet" `Quick
            test_autotune_weighted_hetero;
          Alcotest.test_case "halo tiling shrinks per-iteration bytes" `Quick
            test_autotune_halo_bytes_shrink;
          qtest prop_autotune_bit_identical;
        ] );
    ]
