(* Sanity net over the performance model: invariants the simulated
   timings must satisfy regardless of calibration — determinism, the
   alpha/beta/gamma ordering of §9.2, speedup bounds, and monotonicity
   properties the figures rely on. *)

let checkb = Alcotest.check Alcotest.bool

let artifacts bench size iters =
  let prog = Apps.Workloads.program ~iterations:iters bench size in
  match Mekong.Toolchain.compile prog with
  | Ok a -> a
  | Error e -> failwith (Mekong.Toolchain.error_message e)

let run ?cfg art g =
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:g ())
  in
  (Mekong.Multi_gpu.run ?cfg ~machine:m art.Mekong.Toolchain.exe)
    .Mekong.Multi_gpu.time

let reference bench size iters =
  let prog = Apps.Workloads.program ~iterations:iters bench size in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:1 ())
  in
  (Single_gpu.run ~machine:m prog).Single_gpu.time

let benches =
  [
    (Apps.Workloads.Hotspot_b, 40, "hotspot");
    (Apps.Workloads.Nbody_b, 4, "nbody");
    (Apps.Workloads.Matmul_b, 1, "matmul");
  ]

let test_determinism () =
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t1 = run art 8 and t2 = run art 8 in
       checkb (name ^ " deterministic") true (t1 = t2))
    benches

let test_alpha_beta_gamma_order () =
  (* Disabling work can only shorten the simulated run:
     gamma <= beta <= alpha. *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       List.iter
         (fun g ->
            let a = run ~cfg:Gpu_runtime.Rconfig.alpha art g in
            let bt = run ~cfg:Gpu_runtime.Rconfig.beta art g in
            let c = run ~cfg:Gpu_runtime.Rconfig.gamma art g in
            checkb
              (Printf.sprintf "%s g=%d: gamma<=beta<=alpha (%g %g %g)" name g
                 c bt a)
              true
              (c <= bt +. 1e-12 && bt <= a +. 1e-12))
         [ 2; 8; 16 ])
    benches

let test_speedup_bounds () =
  (* Speedup on g devices can exceed neither g (no superlinearity in
     this model modulo boost: 1-active-die boost makes the reference
     FASTER, so the bound holds) nor fall below what a single device
     would give (adding devices to an alpha run never helps the model
     lie below 0). *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t_ref = reference b Apps.Workloads.Small iters in
       List.iter
         (fun g ->
            let t = run art g in
            let sp = t_ref /. t in
            checkb
              (Printf.sprintf "%s g=%d speedup %.2f within (0, %d]" name g sp g)
              true
              (sp > 0.0 && sp <= float_of_int g +. 1e-6))
         [ 1; 2; 4; 8; 16 ])
    benches

let test_partitioned_not_faster_than_reference_on_one () =
  (* On one device the partitioned binary can only add overhead. *)
  List.iter
    (fun (b, iters, name) ->
       let art = artifacts b Apps.Workloads.Small iters in
       let t_ref = reference b Apps.Workloads.Small iters in
       let t1 = run art 1 in
       checkb (name ^ " single-GPU overhead >= 0") true (t1 >= t_ref -. 1e-9))
    benches

let test_more_work_takes_longer () =
  (* Monotonicity in problem size and iteration count. *)
  let t_small = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 20) 8 in
  let t_medium = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Medium 20) 8 in
  checkb "medium > small" true (t_medium > t_small);
  let t10 = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 10) 8 in
  let t40 = run (artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 40) 8 in
  checkb "more iterations take longer" true (t40 > t10)

let test_transfers_grow_with_devices () =
  (* Figure 7's mechanism: the transfer fraction grows with the device
     count. *)
  let art = artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small 40 in
  let frac g =
    let a = run ~cfg:Gpu_runtime.Rconfig.alpha art g in
    let b = run ~cfg:Gpu_runtime.Rconfig.beta art g in
    (a -. b) /. a
  in
  checkb "transfer fraction grows 2 -> 16" true (frac 16 > frac 2)

let test_stats_consistency () =
  (* Byte counters match what the workloads move. *)
  let n = Apps.Workloads.problem_size Apps.Workloads.Matmul_b Apps.Workloads.Small in
  let art = artifacts Apps.Workloads.Matmul_b Apps.Workloads.Small 1 in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:4 ())
  in
  ignore (Mekong.Multi_gpu.run ~machine:m art.Mekong.Toolchain.exe);
  let s = Gpusim.Machine.stats m in
  (* h2d: A and B fully uploaded once *)
  Alcotest.(check int) "h2d bytes" (2 * n * n * 4) s.Gpusim.Machine.h2d_bytes;
  (* d2h: C fully downloaded once *)
  Alcotest.(check int) "d2h bytes" (n * n * 4) s.Gpusim.Machine.d2h_bytes;
  (* p2p: the B all-gather moves 3/4 of B (n*n*4 bytes) to each of the
     4 devices = 12*n*n bytes; A rows match the linear distribution
     exactly at this size, so nothing else moves. *)
  Alcotest.(check int) "p2p = B all-gather" (3 * n * n * 4)
    s.Gpusim.Machine.p2p_bytes

let () =
  Alcotest.run "perf-model"
    [
      ( "invariants",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "alpha/beta/gamma order" `Quick
            test_alpha_beta_gamma_order;
          Alcotest.test_case "speedup bounds" `Quick test_speedup_bounds;
          Alcotest.test_case "single-GPU overhead sign" `Quick
            test_partitioned_not_faster_than_reference_on_one;
          Alcotest.test_case "work monotonicity" `Quick test_more_work_takes_longer;
          Alcotest.test_case "transfer fraction growth" `Quick
            test_transfers_grow_with_devices;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
        ] );
    ]
