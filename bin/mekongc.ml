(* mekongc: command-line driver for the partitioning toolchain.

   Operates on the built-in demo applications (the paper's benchmarks),
   since kernels live in the embedded IR rather than in CUDA C++ files:

     mekongc analyze  <app|f>    causal critical-path and what-if
                                 bottleneck analysis of a run (or of a
                                 DAG dumped by --dump-dag)
     mekongc poly     <app>      print the polyhedral application model
     mekongc rewrite  <app>      print the rewritten multi-GPU host source
     mekongc kernels  <app>      print original and partitioned kernel IR
     mekongc run      <app>      compile and run on N simulated GPUs
     mekongc verify   <app>      data-race verdict per kernel (witnesses
                                 for races; exit 0 safe/reducible,
                                 2 racy, 3 unknown)
     mekongc plan     <app>      print the autotuner's candidate plans
     mekongc serve               run a multi-tenant serving campaign
     mekongc profile  <app>      run with full observability and report
     mekongc check-trace <f>     validate a Chrome trace-event file
     mekongc model    <app> -o F save the application model to a file
     mekongc compile-file <f.cu> parse a toy .cu file, compile it and
                                 run it on N simulated GPUs

   apps: vecadd, hotspot, nbody, matmul, spmv, histogram, dot, racy *)

open Cmdliner

(* Deliberately racy demo app: every thread reads a[0] while thread 0
   overwrites it, so distinct blocks conflict and no reduction
   operator explains the collision.  `mekongc verify racy` prints the
   concrete witness pair and exits 2. *)
let racy_program () =
  let kernel =
    let open Kir in
    let n = p "n" in
    let gi = v "gi" in
    Kir.kernel ~name:"racy"
      ~params:[ Scalar "n"; Array { name = "a"; dims = [| Dim_param "n" |] } ]
      [
        Local ("gi", global_id Dim3.X);
        If (gi < n, [ store "a" [ gi ] (load "a" [ i 0 ] + f 1.0) ], []);
      ]
  in
  let n = 4096 in
  let a = Array.init n float_of_int in
  Host_ir.program ~name:"racy"
    [
      Host_ir.Malloc ("a", n);
      Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
      Host_ir.Launch
        {
          kernel;
          grid = Dim3.make ((n + 127) / 128);
          block = Dim3.make 128;
          args = [ Host_ir.HInt n; Host_ir.HBuf "a" ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data (Array.make n nan); src = "a" };
      Host_ir.Free "a";
    ]

let apps =
  [
    ("vecadd", fun () -> let p, _, _ = Apps.Workloads.functional_vecadd ~n:4096 in p);
    ("hotspot", fun () -> let p, _, _ = Apps.Workloads.functional_hotspot ~n:128 ~iterations:4 in p);
    ("nbody", fun () -> let p, _, _ = Apps.Workloads.functional_nbody ~n:512 ~iterations:2 in p);
    ("matmul", fun () -> let p, _, _ = Apps.Workloads.functional_matmul ~n:64 in p);
    ("spmv",
     fun () ->
       let m = Apps.Spmv.banded ~n:256 ~band:5 in
       let x = Array.make 256 1.0 in
       let result = Array.make 256 nan in
       Apps.Spmv.program ~m ~x ~result);
    ("histogram",
     fun () ->
       let p, _, _ = Apps.Workloads.functional_histogram ~n:4096 ~nbins:97 in
       p);
    ("dot", fun () -> let p, _, _ = Apps.Workloads.functional_dot ~n:4096 in p);
    ("racy", fun () -> racy_program ());
  ]

let app_arg =
  let conv_app =
    Arg.enum (List.map (fun (n, f) -> (n, (n, f))) apps)
  in
  Arg.(required & pos 0 (some conv_app) None & info [] ~docv:"APP")

(* All user-facing failures (parse, compile/link, IO) leave through
   here: one-line diagnostic on stderr, exit code 2.  Exit 2 is
   reserved for "the input was bad", distinct from cmdliner's own CLI
   errors (124/125). *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
       Printf.eprintf "mekongc: %s\n" msg;
       exit 2)
    fmt

let compile_app (name, mk) =
  match Mekong.Toolchain.compile (mk ()) with
  | Ok a -> a
  | Error e -> die "%s: %s" name (Mekong.Toolchain.error_message e)

let poly_cmd =
  let run app =
    let artifacts = compile_app app in
    List.iter
      (fun (km : Mekong.Model.kernel_model) ->
         Printf.printf "kernel %s: partition along %s\n" km.Mekong.Model.kname
           (Dim3.axis_name km.Mekong.Model.strategy);
         List.iter
           (fun (am : Mekong.Model.array_model) ->
              Printf.printf "  array %s (rank %d): %s%s\n" am.Mekong.Model.arr
                (Array.length am.Mekong.Model.dims)
                (if am.Mekong.Model.read <> None then
                   if am.Mekong.Model.read_exact then "read " else "read(approx) "
                 else "")
                (if am.Mekong.Model.write <> None then "write" else ""))
           km.Mekong.Model.arrays;
         print_newline ())
      artifacts.Mekong.Toolchain.model.Mekong.Model.kernels;
    print_endline "--- model (s-expression) ---";
    print_endline (Mekong.Model.to_string artifacts.Mekong.Toolchain.model)
  in
  Cmd.v (Cmd.info "poly" ~doc:"print the polyhedral application model")
    Term.(const run $ app_arg)

let rewrite_cmd =
  let run app =
    let artifacts = compile_app app in
    print_endline artifacts.Mekong.Toolchain.rewritten_source
  in
  Cmd.v (Cmd.info "rewrite" ~doc:"print the rewritten multi-GPU host source")
    Term.(const run $ app_arg)

let kernels_cmd =
  let run app =
    let artifacts = compile_app app in
    List.iter
      (fun k ->
         print_endline "=== original kernel ===";
         print_string (Kir.to_string k);
         print_endline "=== partitioned kernel (Eq. 8-10 applied) ===";
         print_string (Kir.to_string (Mekong.Partition.transform_kernel k)))
      (Host_ir.kernels artifacts.Mekong.Toolchain.exe.Mekong.Multi_gpu.prog)
  in
  Cmd.v (Cmd.info "kernels" ~doc:"print original and partitioned kernel IR")
    Term.(const run $ app_arg)

let gpus_arg =
  Arg.(value & opt int 4 & info [ "gpus"; "g" ] ~docv:"N" ~doc:"simulated GPUs")

let faults_arg =
  let conv_spec =
    let parse s =
      match Gpusim.Faults.spec_of_string s with
      | Ok spec -> Ok spec
      | Error e -> Error (`Msg e)
    in
    let print fmt (s : Gpusim.Faults.spec) =
      Format.fprintf fmt "%d,%g" s.Gpusim.Faults.seed
        s.Gpusim.Faults.kernel_fault_rate
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some conv_spec) None
    & info [ "faults" ] ~docv:"SEED,RATE[,DEV@TIME...]"
        ~doc:
          "inject seeded faults into the simulated machine; the engine \
           self-heals (retry, re-partition, replay) and reports what it did")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "host domains (OS threads) for domain-parallel kernel execution of \
           race-free kernels; 1 forces sequential execution (default: \
           \\$MEKONG_DOMAINS, else the machine's recommended domain count)")

(* Validated before it reaches the pool: a non-positive count is a
   user error (one-line diagnostic, exit 2), not an internal one. *)
let set_domains domains =
  (match domains with
   | Some d when d < 1 -> die "--domains must be a positive integer (got %d)" d
   | _ -> ());
  Option.iter Gpu_runtime.Dpool.set_default_domains domains

(* Observability is off by default (the instrumentation points cost
   one load-and-branch); --trace and the profile subcommand switch it
   on and give spans the real wall clock. *)
let enable_observability () =
  Obs.Span.set_clock Unix.gettimeofday;
  Obs.Span.set_enabled true

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "write a Chrome trace-event JSON of the simulated run (open in \
           Perfetto or chrome://tracing); also enables span recording")

let overlap_arg =
  Arg.(
    value & flag
    & info [ "overlap" ]
        ~doc:
          "overlap compute and communication: drop the host barrier between \
           the read exchange and the partition launches (results stay \
           bit-identical; only simulated time changes)")

let topology_arg =
  let conv_topo =
    let parse s =
      match Gpusim.Config.topology_of_string s with
      | Ok t -> Ok t
      | Error e -> Error (`Msg e)
    in
    let print fmt t =
      Format.pp_print_string fmt (Gpusim.Config.topology_to_string t)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt conv_topo Gpusim.Config.Flat
    & info [ "topology" ] ~docv:"flat|islands:SIZE,LINK_GBS,UPLINK_GBS"
        ~doc:
          "fabric topology: $(b,flat) (single shared PCIe bus, the default) \
           or $(b,islands:SIZE,LINK_GBS,UPLINK_GBS) (NVLink-style islands of \
           SIZE devices with a LINK_GBS GB/s intra-island link each and a \
           host uplink per island at UPLINK_GBS GB/s)")

let mem_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-cap" ] ~docv:"BYTES"
        ~doc:
          "per-device memory capacity in bytes (default: unlimited); the \
           engine spills cold segments to the host and chunks launches \
           that do not fit, and exits with code 2 and a one-line \
           diagnostic when no chunking fits")

let autotune_arg =
  Arg.(
    value & flag
    & info [ "autotune" ]
        ~doc:
          "replace the fixed partitioning strategy with the cost-driven \
           per-launch search (1-D on every viable axis, 2-D tile grids, \
           throughput-proportional uneven splits, fewer-device splits) and \
           halo-tile eligible double-buffered stencil loops; results stay \
           bit-identical, only the schedule changes")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain-plan" ]
        ~doc:
          "before running, print every candidate partition plan the \
           autotuner scored per kernel — predicted compute/transfer/host \
           costs, cross-device bytes, halo depth — with the winner marked")

let speeds_arg =
  Arg.(
    value
    & opt (some (list float)) None
    & info [ "speeds" ] ~docv:"S1,S2,..."
        ~doc:
          "relative per-device throughputs for a heterogeneous fleet (one \
           value per GPU, 1.0 = nominal); the autotuner's weighted \
           candidates split work proportionally")

let device_speeds_of ~gpus speeds =
  match speeds with
  | None -> None
  | Some l ->
    if List.length l <> gpus then
      die "--speeds needs exactly %d values (got %d)" gpus (List.length l);
    Some (Array.of_list l)

let print_choices choices =
  List.iter
    (fun (ch : Mekong.Autotune.choice) ->
       Format.printf "kernel %s  grid %a  block %a  (%d raw ranges searched)@."
         ch.Mekong.Autotune.c_kernel Dim3.pp ch.Mekong.Autotune.c_grid Dim3.pp
         ch.Mekong.Autotune.c_block ch.Mekong.Autotune.c_raw_ranges;
       List.iter
         (fun c ->
            Format.printf "  %s %a@."
              (if c == ch.Mekong.Autotune.c_winner then "*" else " ")
              Mekong.Autotune.pp_candidate c)
         ch.Mekong.Autotune.c_candidates)
    choices

let run_cmd =
  let run app gpus faults domains trace mem_cap overlap topology autotune
      explain speeds =
    (match mem_cap with
     | Some c when c <= 0 -> die "--mem-cap must be positive (got %d)" c
     | _ -> ());
    let device_speeds = device_speeds_of ~gpus speeds in
    (* The shared pool is sized from the default at first use; a
       --domains larger than the machine's recommended count would
       otherwise be silently capped by a smaller pool. *)
    set_domains domains;
    if trace <> None then enable_observability ();
    let artifacts = compile_app app in
    let cfg =
      Gpusim.Config.k80_box ~n_devices:gpus ?mem_capacity:mem_cap ~topology
        ?device_speeds ()
    in
    if explain then print_choices (Mekong.Toolchain.explain_plans ~cfg artifacts);
    let machine = Gpusim.Machine.create ~functional:true cfg in
    if trace <> None then begin
      Gpusim.Machine.enable_trace machine;
      (* Causal recording rides along so the exported trace carries
         the critical-path lane. *)
      Gpusim.Machine.enable_causal machine
    end;
    (match faults with
     | Some spec when not (Gpusim.Faults.is_null spec) ->
       Gpusim.Machine.inject_faults machine (Gpusim.Faults.create spec)
     | _ -> ());
    let res =
      Mekong.Multi_gpu.run ?domains ~overlap ~autotune ~machine
        artifacts.Mekong.Toolchain.exe
    in
    let stats = Gpusim.Machine.stats machine in
    Printf.printf "%s on %d GPUs: %.3f ms simulated\n" (fst app) gpus
      (res.Mekong.Multi_gpu.time *. 1e3);
    Format.printf "%a@." Gpusim.Machine.pp_stats stats;
    Format.printf "%a@." Mekong.Launch_cache.pp_stats res.Mekong.Multi_gpu.cache;
    Format.printf "%a@." Kcompile.pp_stats res.Mekong.Multi_gpu.exec;
    Format.printf "race gate: %a@." Mekong.Multi_gpu.pp_gate_report
      res.Mekong.Multi_gpu.gate;
    if Gpusim.Machine.fault_state machine <> None then
      Format.printf "%a@." Mekong.Multi_gpu.pp_fault_report
        res.Mekong.Multi_gpu.faults;
    if mem_cap <> None then
      Format.printf "%a@." Mekong.Multi_gpu.pp_mem_report
        res.Mekong.Multi_gpu.mem;
    if autotune then
      Format.printf "%a@." Mekong.Multi_gpu.pp_tune_report
        res.Mekong.Multi_gpu.tune;
    match trace with
    | Some file ->
      let critpath =
        Option.map Obs.Causal.analyze (Gpusim.Machine.causal_dag machine)
      in
      Gpusim.Trace_export.write ~spans:(Obs.Span.records ()) ?critpath ~file
        machine;
      Printf.printf "trace written to %s\n" file
    | None -> ()
  in
  Cmd.v (Cmd.info "run" ~doc:"compile and run on simulated GPUs")
    Term.(
      const run $ app_arg $ gpus_arg $ faults_arg $ domains_arg $ trace_arg
      $ mem_cap_arg $ overlap_arg $ topology_arg $ autotune_arg $ explain_arg
      $ speeds_arg)

(* Static race verdicts, one line per kernel.  Exit codes are part of
   the contract (CI scripts assert them): 0 when every kernel is safe
   or reducible, 2 when any kernel is racy (witnesses printed in the
   verdict line), 3 when any verdict is unknown.  Uses pass 1 only:
   racy kernels must still get their witnesses printed, and the full
   pipeline's link step refuses atomic kernels that are neither safe
   nor reducible. *)
let verify_cmd =
  let run (name, mk) =
    let prog = mk () in
    let model =
      match Mekong.Toolchain.pass1 ~instrument_writes:true prog with
      | Ok (m, _) -> m
      | Error e -> die "%s: %s" name (Mekong.Toolchain.error_message e)
    in
    let racy = ref false and unknown = ref false in
    List.iter
      (fun (kernel : Kir.t) ->
         let km = Mekong.Model.find_exn model kernel.Kir.name in
         let verdict = Mekong.Verify.verify ~kernel km in
         Printf.printf "%s: %s\n" kernel.Kir.name
           (Mekong.Verify.verdict_to_string verdict);
         match verdict with
         | Mekong.Verify.Racy _ -> racy := true
         | Mekong.Verify.Unknown _ -> unknown := true
         | Mekong.Verify.Safe | Mekong.Verify.Reducible _ -> ())
      (Host_ir.kernels prog);
    if !racy then exit 2 else if !unknown then exit 3
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"prove kernels race-free or print concrete race witnesses")
    Term.(const run $ app_arg)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"emit the report as JSON")

let plan_cmd =
  let run app gpus topology speeds json =
    if gpus < 1 then die "--gpus must be positive (got %d)" gpus;
    let device_speeds = device_speeds_of ~gpus speeds in
    let artifacts = compile_app app in
    let cfg =
      try Gpusim.Config.k80_box ~n_devices:gpus ~topology ?device_speeds ()
      with Invalid_argument m -> die "%s" m
    in
    let choices = Mekong.Toolchain.explain_plans ~cfg artifacts in
    if json then
      print_endline
        ("["
         ^ String.concat "," (List.map Mekong.Autotune.choice_json choices)
         ^ "]")
    else begin
      Printf.printf "%s: %d launch shape(s) on %d GPUs (%s)\n" (fst app)
        (List.length choices) gpus
        (Gpusim.Config.topology_to_string topology);
      print_choices choices
    end
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "print the autotuner's candidate partition plans per kernel launch \
          — predicted compute/transfer/host costs, cross-device bytes and \
          halo depth for each candidate — with the chosen winner marked")
    Term.(
      const run $ app_arg $ gpus_arg $ topology_arg $ speeds_arg $ json_flag)

let serve_cmd =
  let jobs_arg =
    Arg.(value & opt int 40 & info [ "jobs" ] ~docv:"N" ~doc:"jobs in the mix")
  in
  let tenants_arg =
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc:"tenants")
  in
  let poison_arg =
    Arg.(
      value & opt int 0
      & info [ "poison" ] ~docv:"N"
          ~doc:"poison jobs (always-faulting kernels) spread through the mix")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"mix seed")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N" ~doc:"bounded pending-queue limit")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"per-job turnaround deadline in simulated seconds")
  in
  let lose_arg =
    Arg.(
      value
      & opt (list (pair ~sep:'@' int float)) []
      & info [ "lose" ] ~docv:"DEV@TIME[,DEV@TIME...]"
          ~doc:
            "permanently lose fleet device DEV at simulated time TIME; \
             in-flight jobs preempt into a checkpoint handoff, re-queue \
             and re-admit onto the surviving devices")
  in
  let analyze_flag =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "append a causal critical-path analysis of the scheduler run: \
             time attribution across queue wait, lease occupancy and \
             requeue stalls")
  in
  let run gpus jobs tenants poison seed max_queue mem_cap deadline losses
      domains json trace analyze =
    if gpus < 1 then die "--gpus must be positive (got %d)" gpus;
    (match mem_cap with
     | Some c when c <= 0 -> die "--mem-cap must be positive (got %d)" c
     | _ -> ());
    set_domains domains;
    let built =
      try Serve.Mix.generate ~seed ~tenants ~poison ?deadline ~jobs ()
      with Invalid_argument m -> die "%s" m
    in
    let fleet =
      Gpusim.Config.k80_box ~n_devices:gpus ?mem_capacity:mem_cap ()
    in
    let cfg =
      try Serve.Scheduler.config ~max_queue ~losses ?domains fleet
      with Invalid_argument m -> die "%s" m
    in
    let r =
      Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
    in
    Serve.Scheduler.publish_metrics r;
    if json then
      print_endline (Obs.Json.to_string (Serve.Scheduler.report_to_json r))
    else Format.printf "%a@?" Serve.Scheduler.pp r;
    if analyze then begin
      let an = Obs.Causal.analyze (Serve.Scheduler.causal_dag r) in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ( "makespan_seconds",
                    Obs.Json.Float an.Obs.Causal.an_makespan );
                  ( "by_category",
                    Obs.Json.Obj
                      (List.map
                         (fun (c, s) -> (c, Obs.Json.Float s))
                         an.Obs.Causal.an_by_category) );
                ]))
      else begin
        Printf.printf "\ncritical path (%.6f s makespan)\n"
          an.Obs.Causal.an_makespan;
        List.iter
          (fun (cat, s) ->
             Printf.printf "  %-14s %12.6f s %6.1f%%\n" cat s
               (if an.Obs.Causal.an_makespan > 0.0 then
                  100.0 *. s /. an.Obs.Causal.an_makespan
                else 0.0))
          an.Obs.Causal.an_by_category
      end
    end;
    match trace with
    | Some file ->
      Serve.Strace.write ~file r;
      if not json then Printf.printf "scheduler trace written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run a multi-tenant serving campaign: a seeded mix of jobs through \
          the admission-controlled scheduler, with optional deadlines, \
          poison jobs and permanent device losses")
    Term.(
      const run $ gpus_arg $ jobs_arg $ tenants_arg $ poison_arg $ seed_arg
      $ max_queue_arg $ mem_cap_arg $ deadline_arg $ lose_arg $ domains_arg
      $ json_flag $ trace_arg $ analyze_flag)

let profile_cmd =
  let run app gpus faults domains json trace overlap topology =
    set_domains domains;
    enable_observability ();
    let artifacts = compile_app app in
    let machine =
      Gpusim.Machine.create ~functional:true
        (Gpusim.Config.k80_box ~n_devices:gpus ~topology ())
    in
    Gpusim.Machine.enable_trace machine;
    (* The profile always records causally: its report carries the
       critpath.* counters and the obs.dropped.* warning. *)
    Gpusim.Machine.enable_causal machine;
    (match faults with
     | Some spec when not (Gpusim.Faults.is_null spec) ->
       Gpusim.Machine.inject_faults machine (Gpusim.Faults.create spec)
     | _ -> ());
    let res =
      Mekong.Multi_gpu.run ?domains ~overlap ~machine
        artifacts.Mekong.Toolchain.exe
    in
    let report = Mekong.Profile.collect ~result:res machine in
    if json then
      print_endline (Obs.Json.to_string (Obs.Report.to_json report))
    else begin
      Printf.printf "%s on %d GPUs\n" (fst app) gpus;
      print_string (Obs.Report.to_string report)
    end;
    match trace with
    | Some file ->
      let critpath =
        Option.map Obs.Causal.analyze (Gpusim.Machine.causal_dag machine)
      in
      Gpusim.Trace_export.write ~spans:(Obs.Span.records ()) ?critpath ~file
        machine;
      if not json then Printf.printf "trace written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "run with full observability: per-device utilization, the (src, \
          dst) byte matrix, counters and span summary")
    Term.(
      const run $ app_arg $ gpus_arg $ faults_arg $ domains_arg $ json_flag
      $ trace_arg $ overlap_arg $ topology_arg)

(* mekongc analyze: causal critical-path analysis and what-if
   bottleneck modeling.  The positional argument is either a built-in
   app (compile + run with causal recording on) or a path to a DAG
   previously saved with --dump-dag (re-analyze offline, no run). *)
let analyze_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP|DAG.json"
          ~doc:"built-in app to run, or a causal DAG file to re-analyze")
  in
  let what_if_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "what-if" ] ~docv:"CAT[:FACTOR]"
          ~doc:
            "predict the makespan with category $(docv)'s cost multiplied \
             by FACTOR (default 0, i.e. removed): bandwidth-like categories \
             (h2d, d2h, p2p, spill, xfer) rescale transfer variable time \
             plus link occupancy, \"link\" rescales only contention, \
             anything else rescales full durations")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-dag" ] ~docv:"FILE"
          ~doc:"save the causal DAG as JSON for offline re-analysis")
  in
  let parse_what_if spec =
    match String.index_opt spec ':' with
    | None -> (spec, 0.0)
    | Some i ->
      let cat = String.sub spec 0 i in
      let f = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match float_of_string_opt f with
       | Some factor when factor >= 0.0 -> (cat, factor)
       | _ -> die "--what-if factor must be a non-negative number (got %S)" f)
  in
  let load_dag file =
    let src =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.parse src with
    | Error e -> die "%s is not valid JSON: %s" file e
    | Ok j -> (
        match Obs.Causal.of_json j with
        | Ok dag -> dag
        | Error e -> die "%s is not a causal DAG dump: %s" file e)
  in
  let run target gpus faults domains trace mem_cap overlap topology autotune
      what_if_opt dump json =
    (match mem_cap with
     | Some c when c <= 0 -> die "--mem-cap must be positive (got %d)" c
     | _ -> ());
    let dag, machine =
      match List.assoc_opt target apps with
      | Some mk ->
        set_domains domains;
        if trace <> None then enable_observability ();
        let artifacts = compile_app (target, mk) in
        let cfg =
          Gpusim.Config.k80_box ~n_devices:gpus ?mem_capacity:mem_cap
            ~topology ()
        in
        let machine = Gpusim.Machine.create ~functional:true cfg in
        Gpusim.Machine.enable_causal machine;
        if trace <> None then Gpusim.Machine.enable_trace machine;
        (match faults with
         | Some spec when not (Gpusim.Faults.is_null spec) ->
           Gpusim.Machine.inject_faults machine (Gpusim.Faults.create spec)
         | _ -> ());
        ignore
          (Mekong.Multi_gpu.run ?domains ~overlap ~autotune ~machine
             artifacts.Mekong.Toolchain.exe);
        (Option.get (Gpusim.Machine.causal_dag machine), Some machine)
      | None ->
        if Sys.file_exists target then (load_dag target, None)
        else
          die "unknown app or missing DAG file %S (apps: %s)" target
            (String.concat ", " (List.map fst apps))
    in
    let an = Obs.Causal.analyze dag in
    let what_if_rows =
      match what_if_opt with
      | Some spec ->
        let cat, factor = parse_what_if spec in
        [ (cat, factor, Obs.Causal.what_if dag ~category:cat ~factor) ]
      | None ->
        (* The standard sweep: each category removed outright, the
           upper bound of what fixing that bottleneck could buy. *)
        List.filter_map
          (fun cat ->
             if List.mem_assoc cat an.Obs.Causal.an_by_category then
               Some (cat, 0.0, Obs.Causal.what_if dag ~category:cat ~factor:0.0)
             else None)
          Obs.Causal.what_if_categories
    in
    (match dump with
     | Some file ->
       Obs.Json.write ~file (Obs.Causal.to_json dag);
       if not json then Printf.printf "causal DAG written to %s\n" file
     | None -> ());
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("target", Obs.Json.Str target);
                ("makespan_seconds", Obs.Json.Float an.Obs.Causal.an_makespan);
                ( "critical_path_seconds",
                  Obs.Json.Float (Obs.Causal.critical_path_length an) );
                ("replay_drift", Obs.Json.Float an.Obs.Causal.an_replay_drift);
                ("nodes", Obs.Json.Int an.Obs.Causal.an_nodes);
                ("dropped", Obs.Json.Int an.Obs.Causal.an_dropped);
                ( "by_category",
                  Obs.Json.Obj
                    (List.map
                       (fun (c, s) -> (c, Obs.Json.Float s))
                       an.Obs.Causal.an_by_category) );
                ( "what_if",
                  Obs.Json.List
                    (List.map
                       (fun (cat, factor, predicted) ->
                          Obs.Json.Obj
                            [
                              ("category", Obs.Json.Str cat);
                              ("factor", Obs.Json.Float factor);
                              ("predicted_seconds", Obs.Json.Float predicted);
                            ])
                       what_if_rows) );
              ]))
    else begin
      Printf.printf "causal analysis: %s (%d nodes, makespan %.6f s)\n" target
        an.Obs.Causal.an_nodes an.Obs.Causal.an_makespan;
      Printf.printf
        "critical path: %.6f s attributed (identity-replay drift %.2f%%)\n\n"
        (Obs.Causal.critical_path_length an)
        (100.0 *. an.Obs.Causal.an_replay_drift);
      Printf.printf "%-16s %12s %8s\n" "category" "seconds" "share";
      List.iter
        (fun (cat, s) ->
           Printf.printf "%-16s %12.6f %7.1f%%\n" cat s
             (if an.Obs.Causal.an_makespan > 0.0 then
                100.0 *. s /. an.Obs.Causal.an_makespan
              else 0.0))
        an.Obs.Causal.an_by_category;
      if what_if_rows <> [] then begin
        Printf.printf "\nwhat-if (predicted makespan under rescaled cost)\n";
        List.iter
          (fun (cat, factor, predicted) ->
             Printf.printf "  %-12s x%-4g %12.6f s  (%+.1f%%)\n" cat factor
               predicted
               (if an.Obs.Causal.an_makespan > 0.0 then
                  100.0
                  *. (predicted -. an.Obs.Causal.an_makespan)
                  /. an.Obs.Causal.an_makespan
                else 0.0))
          what_if_rows
      end;
      if an.Obs.Causal.an_dropped > 0 then
        Printf.printf
          "\nWARNING: %d node(s) dropped from the causal DAG; the analysis \
           is INCOMPLETE\n"
          an.Obs.Causal.an_dropped
    end;
    match (trace, machine) with
    | Some file, Some m ->
      Gpusim.Trace_export.write ~spans:(Obs.Span.records ()) ~critpath:an
        ~file m;
      if not json then Printf.printf "trace written to %s\n" file
    | Some _, None -> die "--trace needs an app run, not a DAG file"
    | None, _ -> ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "causal critical-path analysis of a run: per-category time \
          attribution that sums exactly to the makespan, plus what-if \
          bottleneck modeling (predicted makespan with one cost category \
          rescaled or removed)")
    Term.(
      const run $ target_arg $ gpus_arg $ faults_arg $ domains_arg $ trace_arg
      $ mem_cap_arg $ overlap_arg $ topology_arg $ autotune_arg $ what_if_arg
      $ dump_arg $ json_flag)

let check_trace_cmd =
  let run file =
    match Obs.Chrome_trace.validate_file ~file with
    | Ok () -> Printf.printf "%s: valid Chrome trace\n" file
    | Error e -> die "%s: %s" file e
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json")
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:"validate a Chrome trace-event JSON file (schema + per-lane \
             timestamp monotonicity)")
    Term.(const run $ file_arg)

let out_arg =
  Arg.(value & opt string "model.sexp" & info [ "o" ] ~docv:"FILE" ~doc:"output file")

let model_cmd =
  let run app out =
    let artifacts = compile_app app in
    Mekong.Model.save artifacts.Mekong.Toolchain.model ~file:out;
    Printf.printf "model written to %s\n" out
  in
  Cmd.v (Cmd.info "model" ~doc:"save the application model to a file")
    Term.(const run $ app_arg $ out_arg)

let compile_file_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cu")
  in
  let run file gpus =
    let src =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let kernels, prog =
      try Cuparse.parse_cu ~name:(Filename.remove_extension (Filename.basename file)) src
      with Cuparse.Error m -> die "parse error in %s: %s" file m
    in
    Printf.printf "parsed %d kernel(s) from %s\n" (List.length kernels) file;
    match Mekong.Toolchain.compile prog with
    | Error e -> die "%s" (Mekong.Toolchain.error_message e)
    | Ok artifacts ->
      List.iter
        (fun (km : Mekong.Model.kernel_model) ->
           Printf.printf "kernel %s: partition along %s\n" km.Mekong.Model.kname
             (Dim3.axis_name km.Mekong.Model.strategy))
        artifacts.Mekong.Toolchain.model.Mekong.Model.kernels;
      (* host data is phantom (text carries no values): run in
         performance mode *)
      let machine =
        Gpusim.Machine.create ~functional:false
          (Gpusim.Config.k80_box ~n_devices:gpus ())
      in
      let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in
      let stats = Gpusim.Machine.stats machine in
      Printf.printf "simulated on %d GPUs: %.3f ms\n" gpus
        (res.Mekong.Multi_gpu.time *. 1e3);
      Format.printf "%a@." Gpusim.Machine.pp_stats stats;
      Format.printf "%a@." Mekong.Launch_cache.pp_stats
        res.Mekong.Multi_gpu.cache
  in
  Cmd.v
    (Cmd.info "compile-file" ~doc:"parse, compile and run a toy .cu file")
    Term.(const run $ file_arg $ gpus_arg)

let () =
  let info = Cmd.info "mekongc" ~doc:"automatic multi-GPU partitioning toolchain" in
  (* catch:false so failures reach our handlers instead of cmdliner's
     backtrace printer; anything not already routed through [die] (IO
     errors, internal invariant failures) gets the same one-line
     treatment here. *)
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group info
            [ analyze_cmd; poly_cmd; rewrite_cmd; kernels_cmd; run_cmd;
              verify_cmd; plan_cmd; serve_cmd; profile_cmd; check_trace_cmd;
              model_cmd; compile_file_cmd ]))
  with
  | Sys_error m -> die "%s" m
  | Cuparse.Error m -> die "parse error: %s" m
  | Mekong.Multi_gpu.All_devices_lost ->
    die "all simulated devices were lost; no replica survives to recover from"
  | Failure m -> die "%s" m
  | Invalid_argument m -> die "internal error: %s" m
