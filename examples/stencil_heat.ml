(* Heat-diffusion stencil on multiple GPUs.

     dune exec examples/stencil_heat.exe -- [--n N] [--iters K] [--gpus G]

   Runs the Hotspot 5-point stencil functionally on G simulated GPUs and
   validates against the CPU reference, then prints what the runtime did:
   the halo-exchange transfers between neighbouring devices each
   iteration are exactly the read-set/owner mismatches the tracker
   detects (paper §8.3 and Figure 3). *)

let () =
  let n = ref 128 and iters = ref 8 and gpus = ref 4 in
  let args =
    [
      ("--n", Arg.Set_int n, "grid side length (default 128)");
      ("--iters", Arg.Set_int iters, "stencil iterations (default 8)");
      ("--gpus", Arg.Set_int gpus, "simulated GPUs (default 4)");
    ]
  in
  Arg.parse args (fun _ -> ()) "stencil_heat";

  let init = Apps.Hotspot.initial ~n:!n in
  let result = Array.make (!n * !n) nan in
  let program = Apps.Hotspot.program ~n:!n ~iterations:!iters ~init ~result in

  let artifacts =
    match Mekong.Toolchain.compile program with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in

  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:!gpus ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in

  let expected = Apps.Hotspot.reference ~n:!n ~iterations:!iters init in
  let ok = result = expected in
  let stats = Gpusim.Machine.stats machine in
  Printf.printf "hotspot %dx%d, %d iterations on %d GPUs\n" !n !n !iters !gpus;
  Printf.printf "bit-exact vs CPU reference: %b\n" ok;
  Printf.printf "halo-exchange transfers: %d (expect ~2*(G-1) per iteration)\n"
    res.Mekong.Multi_gpu.transfers;
  Printf.printf "p2p bytes moved: %d\n" stats.Gpusim.Machine.p2p_bytes;
  Printf.printf "simulated time: %.3f ms\n" (res.Mekong.Multi_gpu.time *. 1e3);
  (* Centre temperature as a sanity check. *)
  Printf.printf "centre temperature after diffusion: %.4f\n"
    result.(((!n / 3) * !n) + (!n / 2));
  if not ok then exit 1
