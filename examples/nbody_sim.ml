(* Direct N-body simulation on multiple GPUs.

     dune exec examples/nbody_sim.exe -- [--n N] [--iters K] [--gpus G]

   Every body interacts with every other body, so each device must
   gather all positions before each step (the read map covers the whole
   pos array) while writing only its own band — the compute-heavy,
   communication-light profile that scales best in the paper (12.4x on
   16 GPUs). *)

let () =
  let n = ref 512 and iters = ref 4 and gpus = ref 4 in
  let args =
    [
      ("--n", Arg.Set_int n, "number of bodies (default 512)");
      ("--iters", Arg.Set_int iters, "time steps (default 4)");
      ("--gpus", Arg.Set_int gpus, "simulated GPUs (default 4)");
    ]
  in
  Arg.parse args (fun _ -> ()) "nbody_sim";

  let pos, vel = Apps.Nbody.initial ~n:!n in
  let pos_result = Array.make (!n * 4) nan in
  let program =
    Apps.Nbody.program ~n:!n ~iterations:!iters ~dt:Apps.Workloads.nbody_dt
      ~pos ~vel ~pos_result
  in

  let artifacts =
    match Mekong.Toolchain.compile program with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in

  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:!gpus ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in

  let expected, _ =
    Apps.Nbody.reference ~n:!n ~iterations:!iters ~dt:Apps.Workloads.nbody_dt
      pos vel
  in
  let ok = pos_result = expected in
  Printf.printf "nbody n=%d, %d steps on %d GPUs\n" !n !iters !gpus;
  Printf.printf "bit-exact vs CPU reference: %b\n" ok;
  Printf.printf "all-gather transfers: %d\n" res.Mekong.Multi_gpu.transfers;
  Printf.printf "simulated time: %.3f ms\n" (res.Mekong.Multi_gpu.time *. 1e3);
  (* Report the centre of mass drift as a physics sanity check. *)
  let com axis =
    let s = ref 0.0 and m = ref 0.0 in
    for b = 0 to !n - 1 do
      s := !s +. (pos_result.((b * 4) + axis) *. pos_result.((b * 4) + 3));
      m := !m +. pos_result.((b * 4) + 3)
    done;
    !s /. !m
  in
  Printf.printf "centre of mass: (%.5f, %.5f, %.5f)\n" (com 0) (com 1) (com 2);
  if not ok then exit 1
