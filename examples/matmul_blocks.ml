(* Dense matrix multiply on multiple GPUs, with a look inside the
   generated communication.

     dune exec examples/matmul_blocks.exe -- [--n N] [--gpus G]

   The suggested strategy splits C (and A) into row bands; B, read
   column-wise by every thread, was scattered linearly at H2D time, so
   the runtime all-gathers it before the kernel starts — the
   "mismatched data distribution corrected by the runtime" of paper
   §9.1.  The example also prints the generated enumerator plans for
   the kernel's access maps (paper §6). *)

let () =
  let n = ref 96 and gpus = ref 4 in
  let args =
    [
      ("--n", Arg.Set_int n, "matrix side length (default 96)");
      ("--gpus", Arg.Set_int gpus, "simulated GPUs (default 4)");
    ]
  in
  Arg.parse args (fun _ -> ()) "matmul_blocks";

  let a, b = Apps.Matmul.initial ~n:!n in
  let result = Array.make (!n * !n) nan in
  let program = Apps.Matmul.program ~n:!n ~a ~b ~result in

  let artifacts =
    match Mekong.Toolchain.compile program with
    | Ok art -> art
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in

  (* Show the generated enumerators (the paper's §6 code generation). *)
  let km = Mekong.Model.find_exn artifacts.Mekong.Toolchain.model "matmul" in
  let enums = Mekong.Codegen.build km in
  print_endline "=== generated enumerator plans ===";
  List.iter
    (fun e -> print_string (Mekong.Codegen.render_entry e))
    enums.Mekong.Codegen.entries;

  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:!gpus ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in

  let expected = Apps.Matmul.reference ~n:!n a b in
  let ok = result = expected in
  let stats = Gpusim.Machine.stats machine in
  Printf.printf "\nmatmul %dx%d on %d GPUs\n" !n !n !gpus;
  Printf.printf "bit-exact vs CPU reference: %b\n" ok;
  Printf.printf
    "redistribution transfers before launch: %d (B all-gather: G-1 per device)\n"
    res.Mekong.Multi_gpu.transfers;
  Printf.printf "p2p bytes: %d (~= (G-1) * n*n * 4 = %d)\n"
    stats.Gpusim.Machine.p2p_bytes
    ((!gpus - 1) * !n * !n * 4);
  Printf.printf "simulated time: %.3f ms\n" (res.Mekong.Multi_gpu.time *. 1e3);
  if not ok then exit 1
