(* Quickstart: compile a single-GPU vector-add program for four
   simulated GPUs and check the result.

     dune exec examples/quickstart.exe

   The program is written once against the single-GPU model
   (malloc / memcpy / one kernel launch / memcpy back); the toolchain
   analyzes the kernel's memory accesses, partitions the grid, inserts
   the buffer synchronization, and runs the same source on all four
   devices. *)

let () =
  let n = 1 lsl 16 in
  let a = Array.init n (fun i -> float_of_int i) in
  let b = Array.init n (fun i -> float_of_int (2 * i)) in
  let result = Array.make n nan in

  (* The single-GPU host program, as a user would write it. *)
  let program = Apps.Vecadd.program ~n ~a ~b ~result in

  (* Show the toy CUDA source and what the rewriter does to it. *)
  print_endline "=== original single-GPU source (excerpt) ===";
  let src = Cusrc.render program in
  String.split_on_char '\n' src
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;

  (* Compile: pass 1 (analysis) -> model -> rewrite -> pass 2 (link). *)
  let artifacts =
    match Mekong.Toolchain.compile program with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let km = Mekong.Model.find_exn artifacts.Mekong.Toolchain.model "vecadd" in
  Printf.printf "\nanalysis: kernel vecadd partitioned along %s\n"
    (Dim3.axis_name km.Mekong.Model.strategy);

  (* Run on a simulated 4-GPU machine (functional mode: real data). *)
  let machine =
    Gpusim.Machine.create ~functional:true (Gpusim.Config.k80_box ~n_devices:4 ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in

  (* Validate against the CPU reference. *)
  let expected = Apps.Vecadd.reference a b in
  let ok = result = expected in
  Printf.printf "4-GPU result correct: %b\n" ok;
  Printf.printf "simulated time: %.3f ms, stale-data transfers: %d\n"
    (res.Mekong.Multi_gpu.time *. 1e3)
    res.Mekong.Multi_gpu.transfers;
  let stats = Gpusim.Machine.stats machine in
  Printf.printf "kernel launches: %d (1 per device)\n"
    stats.Gpusim.Machine.n_launches;
  if not ok then exit 1
