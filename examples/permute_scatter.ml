(* Indirect scatter with instrumented write sets (the paper's §11
   fallback).

     dune exec examples/permute_scatter.exe -- [--n N] [--gpus G]

   The kernel writes o[idx[i]] = 2*x[i]: the write subscript is
   data-dependent, so the polyhedral analysis cannot model it and the
   static pipeline rejects the kernel.  With --instrument the compiler
   builds a minimal shadow clone that records each partition's writes
   at run time (and checks dynamically that no two partitions collide),
   which is exactly the remedy the paper's conclusion proposes. *)

let scatter_kernel =
  let open Kir in
  let dims = [| Dim_param "n" |] in
  Kir.kernel ~name:"scatter"
    ~params:
      [
        Scalar "n";
        Array { name = "idx"; dims };
        Array { name = "x"; dims };
        Array { name = "o"; dims };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( v "gi" < p "n",
          [
            Local ("j", load "idx" [ v "gi" ]);
            store "o" [ v "j" ] (load "x" [ v "gi" ] * f 2.0);
          ],
          [] );
    ]

let () =
  let n = ref 4096 and gpus = ref 4 in
  Arg.parse
    [
      ("--n", Arg.Set_int n, "elements (default 4096)");
      ("--gpus", Arg.Set_int gpus, "simulated GPUs (default 4)");
    ]
    (fun _ -> ()) "permute_scatter";
  let n = !n in

  (* A permutation via a unit stride coprime to n. *)
  let stride = 7 in
  let stride = if n mod stride = 0 then stride + 1 else stride in
  let idx = Array.init n (fun i -> float_of_int ((i * stride + 1) mod n)) in
  let x = Array.init n (fun i -> float_of_int i) in
  let result = Array.make n nan in

  let program =
    let grid = Dim3.make ((n + 127) / 128) and block = Dim3.make 128 in
    Host_ir.program ~name:"permute_scatter"
      [
        Host_ir.Malloc ("idx", n);
        Host_ir.Malloc ("x", n);
        Host_ir.Malloc ("o", n);
        Host_ir.Memcpy_h2d { dst = "idx"; src = Host_ir.host_data idx };
        Host_ir.Memcpy_h2d { dst = "x"; src = Host_ir.host_data x };
        Host_ir.Launch
          {
            kernel = scatter_kernel;
            grid;
            block;
            args =
              [ Host_ir.HInt n; Host_ir.HBuf "idx"; Host_ir.HBuf "x";
                Host_ir.HBuf "o" ];
          };
        Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "o" };
        Host_ir.Free "idx";
        Host_ir.Free "x";
        Host_ir.Free "o";
      ]
  in

  (* The static pipeline rejects the kernel... *)
  (match Mekong.Toolchain.compile program with
   | Error e ->
     Printf.printf "static analysis: %s\n" (Mekong.Toolchain.error_message e)
   | Ok _ -> print_endline "static analysis unexpectedly succeeded");

  (* ...the instrumented pipeline accepts it. *)
  let artifacts =
    match Mekong.Toolchain.compile ~instrument_writes:true program with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  print_endline "instrumented pipeline: accepted (write sets collected at run time)";

  let shadow = Mekong.Instrument.shadow_kernel scatter_kernel in
  Printf.printf "shadow kernel size: %d statements (original %d)\n"
    (Kopt.size shadow) (Kopt.size scatter_kernel);

  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:!gpus ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in

  let expected = Array.make n nan in
  Array.iteri (fun i j -> expected.(int_of_float j) <- 2.0 *. x.(i)) idx;
  Printf.printf "%d-GPU scatter correct: %b\n" !gpus (result = expected);
  Printf.printf "simulated time: %.3f ms (%d sync transfers)\n"
    (res.Mekong.Multi_gpu.time *. 1e3)
    res.Mekong.Multi_gpu.transfers;
  if result <> expected then exit 1
