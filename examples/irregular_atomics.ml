(* Irregular workloads through the data-race verifier: a histogram
   whose bins are data-dependent and a dot product accumulating into
   one element.  Both kernels' blocks collide on purpose — the boolean
   race gate had to reject them; the verifier proves the collisions
   reducible (same-operator atomics) and the engine runs them with
   partition-local accumulation plus an ordered merge.

     dune exec examples/irregular_atomics.exe *)

let run_app name program result reference =
  let artifacts =
    match Mekong.Toolchain.compile program with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let km = Mekong.Model.find_exn artifacts.Mekong.Toolchain.model name in
  let kernel =
    List.find
      (fun (k : Kir.t) -> k.Kir.name = name)
      (Host_ir.kernels program)
  in
  Printf.printf "%s: verifier verdict = %s\n" name
    (Mekong.Verify.verdict_to_string (Mekong.Verify.verify ~kernel km));
  let machine =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:4 ())
  in
  let res = Mekong.Multi_gpu.run ~machine artifacts.Mekong.Toolchain.exe in
  let expected = reference () in
  let ok = result = expected in
  Printf.printf "%s: 4-GPU result correct: %b (gate: %s)\n" name ok
    (Format.asprintf "%a" Mekong.Multi_gpu.pp_gate_report
       res.Mekong.Multi_gpu.gate);
  if not ok then exit 1

let () =
  let prog, result, reference =
    Apps.Workloads.functional_histogram ~n:(1 lsl 14) ~nbins:97
  in
  run_app "histogram" prog result reference;
  let prog, result, reference = Apps.Workloads.functional_dot ~n:(1 lsl 14) in
  run_app "dot" prog result reference;
  print_endline "irregular workloads partitioned correctly"
