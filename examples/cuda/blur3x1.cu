// A 2-D horizontal 3-tap blur written directly in the toy CUDA syntax,
// with a dim3 launch configuration:
//   dune exec bin/mekongc.exe -- compile-file examples/cuda/blur3x1.cu -g 8
#include <cuda_runtime.h>

__global__ void blur3(int n, float *src /* [n][n] */, float *dst /* [n][n] */) {
  auto gx = (threadIdx.x + (blockIdx.x * blockDim.x));
  auto gy = (threadIdx.y + (blockIdx.y * blockDim.y));
  if (((gx < n) && (gy < n))) {
    auto c = src[gy][gx];
    auto l = c;
    if ((gx > 0)) {
      l = src[gy][(gx - 1)];
    }
    auto r = c;
    if ((gx < (n - 1))) {
      r = src[gy][(gx + 1)];
    }
    dst[gy][gx] = (((l + c) + r) / 3.0f);
  }
}

int main() {
  float *src;
  cudaMalloc(&src, 1048576 * sizeof(float));
  float *dst;
  cudaMalloc(&dst, 1048576 * sizeof(float));
  cudaMemcpy(src, host_src, 1048576 * sizeof(float), cudaMemcpyHostToDevice);
  for (int it = 0; it < 8; it++) {
    blur3<<<dim3(64, 64, 1), dim3(16, 16, 1)>>>(1024, src, dst);
    std::swap(src, dst);
  }
  cudaMemcpy(host_out_src, src, 1048576 * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(src);
  cudaFree(dst);
  cudaDeviceSynchronize();
  return 0;
}
