// A hand-written toy-CUDA source: an iterated fused scale-and-shift
// over two ping-pong buffers, driven end-to-end from this text file by
//   dune exec bin/mekongc.exe -- compile-file examples/cuda/saxpy_iter.cu
#include <cuda_runtime.h>
#include <utility>

__global__ void saxpy(int n, float alpha, float *x /* [n] */, float *y /* [n] */) {
  auto gi = (threadIdx.x + (blockIdx.x * blockDim.x));
  if ((gi < n)) {
    y[gi] = ((alpha * x[gi]) + 1.0f);
  }
}

int main() {
  float *x;
  cudaMalloc(&x, 65536 * sizeof(float));
  float *y;
  cudaMalloc(&y, 65536 * sizeof(float));
  cudaMemcpy(x, host_x, 65536 * sizeof(float), cudaMemcpyHostToDevice);
  for (int it = 0; it < 50; it++) {
    saxpy<<<512, 128>>>(65536, 0.5f, x, y);
    std::swap(x, y);
  }
  cudaMemcpy(host_out_x, x, 65536 * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(x);
  cudaFree(y);
  cudaDeviceSynchronize();
  return 0;
}
