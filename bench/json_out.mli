(** JSON construction + serialization for the bench harness's
    [BENCH_<campaign>.json] reports — a re-export of {!Obs.Json}, so
    every JSON artifact in the tree escapes and formats identically.
    Non-finite floats serialize as [null]. *)

type t = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write : file:string -> t -> unit
