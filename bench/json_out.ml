(* Minimal JSON emitter for the bench harness.

   The harness writes one machine-readable BENCH_<campaign>.json per
   experiment (consumed by CI and by plotting scripts); depending on a
   JSON library for that would drag a new package into the build, so
   this is the 60-line subset we need: construction and serialization
   only, no parsing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

(* Shortest decimal that round-trips; JSON has no NaN/infinity, so
   non-finite values serialize as null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "%g" can print "1" or "1e+06": both are valid JSON numbers. *)
    s

let rec emit buf indent j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_string buf ",\n";
         pad (indent + 2);
         emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string buf ",\n";
         pad (indent + 2);
         Buffer.add_char buf '"';
         escape buf k;
         Buffer.add_string buf "\": ";
         emit buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j))
