(* JSON for the bench harness.

   The emitter used to live here; it moved to [Obs.Json] so the whole
   tree (bench reports, Chrome traces, profile reports) serializes —
   and escapes — identically.  This module stays as the harness-facing
   name, re-exporting the constructors so existing call sites build
   unchanged. *)

type t = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let to_string = Obs.Json.to_string
let write = Obs.Json.write
