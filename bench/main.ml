(* The evaluation harness: regenerates every table and figure of the
   paper's §9 on the simulated 16-GPU K80 box, plus Bechamel
   micro-benchmarks of the runtime primitives.

     dune exec bench/main.exe             -- run everything
     dune exec bench/main.exe -- table1   -- benchmark configurations
     dune exec bench/main.exe -- fig6     -- speedup curves
     dune exec bench/main.exe -- fig7     -- execution-time breakdown
     dune exec bench/main.exe -- fig8     -- runtime-system overhead
     dune exec bench/main.exe -- overhead1-- single-GPU slowdown
     dune exec bench/main.exe -- compile  -- compile-time overhead
     dune exec bench/main.exe -- cache    -- launch-plan cache wall-clock
     dune exec bench/main.exe -- faults   -- fault-injection campaign
     dune exec bench/main.exe -- exec     -- interpreter vs compiled executor
     dune exec bench/main.exe -- serve    -- multi-tenant serving campaign
     dune exec bench/main.exe -- micro    -- Bechamel micro-benchmarks

   Any experiment accepts --faults SEED,RATE[,DEV@TIME...] to inject
   faults into the partitioned-application runs (the single-GPU
   reference machines stay ideal); the self-healing counters are then
   reported alongside the launch-plan cache statistics.

   Common flags:
     --repeat N     warmup + median-of-N for the wall-clock campaigns
                    (exec, cache); simulated times are deterministic
                    and never repeated
     --domains N    size of the domain pool for parallel kernel
                    execution (default $MEKONG_DOMAINS, else the
                    machine's recommended domain count)
     --json PATH    override the report path (default
                    BENCH_<campaign>.json per campaign, in the cwd)
     --trace PATH   enable span recording and machine tracing, and
                    write a Chrome trace-event JSON of the campaign's
                    last simulated run (open in Perfetto)

   Every campaign additionally writes a machine-readable
   BENCH_<campaign>.json recording its wall-clock, per-app timings,
   executor/plan-cache/fault counters, a profile breakdown of the last
   simulated machine (device utilization, byte matrix), a metrics
   snapshot and host info; CI archives these as artifacts.

   All application measurements are simulated times from the calibrated
   machine model (see DESIGN.md §4); the micro-benchmarks and the exec
   campaign measure real wall time. *)

let gpu_counts = [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]

(* ------------------------------------------------------------------ *)
(* Shared plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let compiled :
  ( Apps.Workloads.benchmark * Apps.Workloads.size,
    Mekong.Toolchain.artifacts )
  Hashtbl.t =
  Hashtbl.create 16

let artifacts bench size =
  match Hashtbl.find_opt compiled (bench, size) with
  | Some a -> a
  | None ->
    let prog = Apps.Workloads.program bench size in
    let a =
      match Mekong.Toolchain.compile prog with
      | Ok a -> a
      | Error e -> failwith (Mekong.Toolchain.error_message e)
    in
    Hashtbl.replace compiled (bench, size) a;
    a

(* --trace PATH: spans + machine tracing on, Chrome trace of the
   campaign's last simulated run written at the end. *)
let trace_path : string option ref = ref None

(* The most recent partitioned-run machine: its profile becomes the
   report's "breakdown" section (campaigns sweep many machines; the
   last one is the largest configuration swept). *)
let last_machine : Gpusim.Machine.t option ref = ref None

(* --mem-cap BYTES: finite per-device memory on the partitioned-run
   machines only (the single-GPU reference keeps unlimited memory — a
   capped reference would raw-OOM, since [Single_gpu] allocates whole
   buffers up front with no spill path). *)
let mem_cap : int option ref = ref None

(* --topology SPEC: fabric topology of the partitioned-run machines
   ("flat", the default, or "islands:SIZE,LINK_GBS,UPLINK_GBS"). *)
let topology : Gpusim.Config.topology ref = ref Gpusim.Config.Flat

let k80 ?(capped = true) g =
  let mem_capacity = if capped then !mem_cap else None in
  let m =
    Gpusim.Machine.create ~functional:false
      (Gpusim.Config.k80_box ~n_devices:g ?mem_capacity ~topology:!topology ())
  in
  if !trace_path <> None then begin
    Gpusim.Machine.enable_trace m;
    (* Causal recording rides along with tracing so the exported trace
       carries the critical-path lane and the report the critpath.*
       counters (its cost is only paid when --trace asks for it). *)
    Gpusim.Machine.enable_causal m
  end;
  m

(* Fault spec from --faults SEED,RATE[,DEV@TIME...]; injected into the
   partitioned-run machines only (the single-GPU reference stays the
   ideal baseline).  A null spec is ignored, so "--faults 0,0" leaves
   every experiment byte-identical to a run without the flag. *)
let fault_spec : Gpusim.Faults.spec option ref = ref None

(* Cumulative launch-plan cache counters across an experiment. *)
let cache_hits = ref 0
let cache_misses = ref 0

(* Cumulative self-healing counters (all zero without --faults). *)
let fault_totals = ref Mekong.Multi_gpu.no_faults

(* Cumulative autotuner calibration counters (all zero in campaigns
   that never enable autotuning). *)
let tune_totals = ref Mekong.Multi_gpu.no_tune

(* Cumulative race-gate counters: verifier verdicts of the compiled
   kernels plus reducible-merge work (DESIGN.md §20). *)
let gate_totals = ref Mekong.Multi_gpu.no_gate

(* Cumulative executor counters (compiled vs interpreted launches). *)
let exec_totals = Kcompile.new_stats ()

let reset_exec () =
  let open Kcompile in
  exec_totals.st_compiles <- 0;
  exec_totals.st_cache_hits <- 0;
  exec_totals.st_interpreted <- 0;
  exec_totals.st_seq <- 0;
  exec_totals.st_par <- 0;
  exec_totals.st_domains <- 0

(* --repeat N / --json PATH (see the header comment). *)
let repeat = ref 1
let json_path : string option ref = ref None

(* Per-campaign timing entries for the BENCH_<campaign>.json report;
   [multi_time] and [reference_time] record automatically, campaigns
   with bespoke measurements (exec, cache, faults, micro) add their
   own. *)
let timings : Json_out.t list ref = ref []
let add_timing fields = timings := Json_out.Obj fields :: !timings

let jstr s = Json_out.Str s
let jint i = Json_out.Int i
let jflt x = Json_out.Float x

(* Campaigns that gate CI (faults, exec) record failure here; the
   driver exits 1 only after every JSON report is written. *)
let campaign_failed = ref false

let add_fault_report r =
  let open Mekong.Multi_gpu in
  let t = !fault_totals and f = r.faults in
  fault_totals :=
    {
      fr_faults = t.fr_faults + f.fr_faults;
      fr_retries = t.fr_retries + f.fr_retries;
      fr_replays = t.fr_replays + f.fr_replays;
      fr_devices_lost = t.fr_devices_lost + f.fr_devices_lost;
    }

let add_tune_report (r : Mekong.Multi_gpu.result) =
  let open Mekong.Multi_gpu in
  let t = !tune_totals and u = r.tune in
  tune_totals :=
    {
      tn_launches = t.tn_launches + u.tn_launches;
      tn_predicted_s = t.tn_predicted_s +. u.tn_predicted_s;
      tn_actual_s = t.tn_actual_s +. u.tn_actual_s;
      tn_err_hist =
        Array.init
          (Array.length u.tn_err_hist)
          (fun i -> t.tn_err_hist.(i) + u.tn_err_hist.(i));
      tn_halo_blocks = t.tn_halo_blocks + u.tn_halo_blocks;
      tn_halo_steps = t.tn_halo_steps + u.tn_halo_steps;
    }

let add_gate_report (r : Mekong.Multi_gpu.result) =
  let open Mekong.Multi_gpu in
  let t = !gate_totals and g = r.gate in
  gate_totals :=
    {
      gr_safe = t.gr_safe + g.gr_safe;
      gr_reducible = t.gr_reducible + g.gr_reducible;
      gr_racy = t.gr_racy + g.gr_racy;
      gr_unknown = t.gr_unknown + g.gr_unknown;
      gr_merges = t.gr_merges + g.gr_merges;
      gr_merged_elems = t.gr_merged_elems + g.gr_merged_elems;
    }

(* Simulated time of the partitioned application on [g] GPUs. *)
let multi_time ?cfg ?(autotune = false) bench size g =
  let a = artifacts bench size in
  let m = k80 g in
  (match !fault_spec with
   | Some spec when not (Gpusim.Faults.is_null spec) ->
     Gpusim.Machine.inject_faults m (Gpusim.Faults.create spec)
   | _ -> ());
  let r = Mekong.Multi_gpu.run ?cfg ~autotune ~machine:m a.Mekong.Toolchain.exe in
  cache_hits := !cache_hits + r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.hits;
  cache_misses :=
    !cache_misses + r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.misses;
  add_fault_report r;
  add_tune_report r;
  add_gate_report r;
  Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
  last_machine := Some m;
  add_timing
    [
      ("kind", jstr "partitioned");
      ("app", jstr (Apps.Workloads.benchmark_name bench));
      ("size", jstr (Apps.Workloads.size_name size));
      ("gpus", jint g);
      ("sim_seconds", jflt r.Mekong.Multi_gpu.time);
    ];
  (r.Mekong.Multi_gpu.time, m)

(* Simulated time of the NVCC-style single-GPU reference binary. *)
let reference_time bench size =
  let prog = Apps.Workloads.program bench size in
  let m = k80 ~capped:false 1 in
  let r = Single_gpu.run ~machine:m prog in
  Kcompile.add_stats ~into:exec_totals r.Single_gpu.exec;
  add_timing
    [
      ("kind", jstr "reference");
      ("app", jstr (Apps.Workloads.benchmark_name bench));
      ("size", jstr (Apps.Workloads.size_name size));
      ("gpus", jint 1);
      ("sim_seconds", jflt r.Single_gpu.time);
    ];
  r.Single_gpu.time

let ref_cache = Hashtbl.create 16

let reference bench size =
  match Hashtbl.find_opt ref_cache (bench, size) with
  | Some t -> t
  | None ->
    let t = reference_time bench size in
    Hashtbl.replace ref_cache (bench, size) t;
    t

let all_benchmarks = Apps.Workloads.benchmarks
let all_sizes = Apps.Workloads.sizes

let line width = String.make width '-'

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let stats_of values =
  let a = Array.of_list values in
  Array.sort compare a;
  ( percentile a 0.0,
    percentile a 25.0,
    percentile a 50.0,
    percentile a 75.0,
    percentile a 100.0 )

(* --repeat support for the wall-clock measurements: one warmup run
   (when N > 1), then summary statistics over N timed runs.  [f]
   performs the complete setup and execution and returns its own
   result, so repeated runs never share mutated state; the result of
   the last run is returned alongside the stats.  The raw per-repeat
   samples ride along into the BENCH json so `bench compare` can
   derive a noise bound instead of guessing one. *)
type wall_stats = {
  ws_median : float;
  ws_min : float;
  ws_max : float;
  ws_stddev : float;
  ws_samples : float array; (* chronological, unsorted *)
}

let median_wall f =
  let n = max 1 !repeat in
  if n > 1 then ignore (f ());
  let walls = Array.make n 0.0 in
  let last = ref None in
  for i = 0 to n - 1 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    walls.(i) <- Unix.gettimeofday () -. t0;
    last := Some r
  done;
  let samples = Array.copy walls in
  Array.sort compare walls;
  let mean = Array.fold_left ( +. ) 0.0 walls /. float_of_int n in
  let var =
    Array.fold_left (fun a w -> a +. ((w -. mean) *. (w -. mean))) 0.0 walls
    /. float_of_int n
  in
  ( {
      ws_median = percentile walls 50.0;
      ws_min = walls.(0);
      ws_max = walls.(n - 1);
      ws_stddev = sqrt var;
      ws_samples = samples;
    },
    Option.get !last )

(* The wall-clock fields every timing entry carries: the median plus
   the spread `bench compare` needs for its noise bound. *)
let wall_fields (s : wall_stats) =
  [
    ("wall_seconds", jflt s.ws_median);
    ("wall_min_seconds", jflt s.ws_min);
    ("wall_max_seconds", jflt s.ws_max);
    ("wall_stddev_seconds", jflt s.ws_stddev);
    ( "wall_samples",
      Json_out.List (Array.to_list (Array.map (fun w -> jflt w) s.ws_samples))
    );
  ]

(* ------------------------------------------------------------------ *)
(* Table 1: benchmark configurations                                    *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  Printf.printf "Table 1: Configurations of the benchmark applications.\n";
  Printf.printf "%s\n" (line 64);
  Printf.printf "%-10s %10s %10s %10s %12s\n" "Benchmark" "Small" "Medium"
    "Large" "Iterations";
  Printf.printf "%s\n" (line 64);
  List.iter
    (fun b ->
       let sz s = Apps.Workloads.problem_size b s in
       Printf.printf "%-10s %10d %10d %10d %12s\n"
         (Apps.Workloads.benchmark_name b)
         (sz Apps.Workloads.Small) (sz Apps.Workloads.Medium)
         (sz Apps.Workloads.Large)
         (match b with
          | Apps.Workloads.Matmul_b -> "N/A"
          | _ -> string_of_int (Apps.Workloads.iterations b)))
    all_benchmarks;
  Printf.printf "%s\n\n" (line 64)

(* ------------------------------------------------------------------ *)
(* Figure 6: speedup curves                                             *)
(* ------------------------------------------------------------------ *)

let run_fig6 () =
  Printf.printf "Figure 6: Speedup of the benchmarks for up to 16 GPUs.\n";
  Printf.printf "(speedup vs the single-GPU reference binary; paper maxima:\n";
  Printf.printf " Hotspot 7.1x @ 14, N-Body 12.4x @ 16, Matmul 6.3x @ 14)\n\n";
  cache_hits := 0;
  cache_misses := 0;
  fault_totals := Mekong.Multi_gpu.no_faults;
  List.iter
    (fun b ->
       Printf.printf "%s\n" (Apps.Workloads.benchmark_name b);
       Printf.printf "%s\n" (line 46);
       Printf.printf "%5s %12s %12s %12s\n" "GPUs" "Small" "Medium" "Large";
       Printf.printf "%s\n" (line 46);
       let maxima : (Apps.Workloads.size, float * int) Hashtbl.t =
         Hashtbl.create 4
       in
       List.iter
         (fun g ->
            Printf.printf "%5d" g;
            List.iter
              (fun s ->
                 let t, _ = multi_time b s g in
                 let sp = reference b s /. t in
                 (match Hashtbl.find_opt maxima s with
                  | Some (best, _) when best >= sp -> ()
                  | _ -> Hashtbl.replace maxima s (sp, g));
                 Printf.printf " %12.2f" sp)
              all_sizes;
            Printf.printf "\n%!")
         gpu_counts;
       Printf.printf "%s\n" (line 46);
       List.iter
         (fun s ->
            match Hashtbl.find_opt maxima s with
            | Some (sp, g) ->
              Printf.printf "  max %-6s: %.2fx at %d GPUs\n"
                (Apps.Workloads.size_name s) sp g
            | None -> ())
         all_sizes;
       Printf.printf "\n%!")
    all_benchmarks;
  Printf.printf "launch-plan cache over the sweep: %d hits / %d misses\n"
    !cache_hits !cache_misses;
  (match !fault_spec with
   | Some spec when not (Gpusim.Faults.is_null spec) ->
     Format.printf "self-healing over the sweep: %a@."
       Mekong.Multi_gpu.pp_fault_report !fault_totals
   | _ -> ());
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Figure 7: execution-time breakdown (alpha/beta/gamma, paper §9.2)    *)
(* ------------------------------------------------------------------ *)

let breakdown bench size g =
  let alpha, _ = multi_time ~cfg:Gpu_runtime.Rconfig.alpha bench size g in
  let beta, _ = multi_time ~cfg:Gpu_runtime.Rconfig.beta bench size g in
  let gamma, _ = multi_time ~cfg:Gpu_runtime.Rconfig.gamma bench size g in
  let t_app = gamma /. alpha in
  let t_transfers = Float.max 0.0 ((alpha -. beta) /. alpha) in
  let t_patterns = Float.max 0.0 ((beta -. gamma) /. alpha) in
  (t_app, t_transfers, t_patterns)

let run_fig7 () =
  Printf.printf
    "Figure 7: Breakdown of the execution time of transformed applications\n";
  Printf.printf
    "(Medium problems; relative time per task from the alpha/beta/gamma runs)\n\n";
  List.iter
    (fun b ->
       Printf.printf "%s\n" (Apps.Workloads.benchmark_name b);
       Printf.printf "%s\n" (line 54);
       Printf.printf "%5s %14s %14s %14s\n" "GPUs" "Application" "Transfers"
         "Patterns";
       Printf.printf "%s\n" (line 54);
       List.iter
         (fun g ->
            let app, tr, pat = breakdown b Apps.Workloads.Medium g in
            Printf.printf "%5d %14.3f %14.3f %14.3f\n%!" g app tr pat)
         [ 2; 4; 6; 8; 10; 12; 14; 16 ];
       Printf.printf "%s\n\n" (line 54))
    all_benchmarks

(* ------------------------------------------------------------------ *)
(* Figure 8: overhead of the runtime system                             *)
(* ------------------------------------------------------------------ *)

let run_fig8 () =
  Printf.printf "Figure 8: Overhead of the runtime system\n";
  Printf.printf
    "(non-transfer overhead (beta-gamma)/alpha over all benchmarks and sizes;\n";
  Printf.printf
    " paper: 25th pct 0.001%%, median 0.51%%, 75th pct 3.5%%, max 6.8%%)\n\n";
  Printf.printf "%5s %9s %9s %9s %9s %9s\n" "GPUs" "min" "p25" "median" "p75"
    "max";
  Printf.printf "%s\n" (line 58);
  let all = ref [] in
  List.iter
    (fun g ->
       let values =
         List.concat_map
           (fun b ->
              List.map
                (fun s ->
                   let _, _, pat = breakdown b s g in
                   pat *. 100.0)
                all_sizes)
           all_benchmarks
       in
       all := values @ !all;
       let mn, p25, med, p75, mx = stats_of values in
       Printf.printf "%5d %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%%\n%!" g mn p25
         med p75 mx)
    gpu_counts;
  Printf.printf "%s\n" (line 58);
  let mn, p25, med, p75, mx = stats_of !all in
  Printf.printf "%5s %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%%\n\n" "all" mn p25
    med p75 mx

(* ------------------------------------------------------------------ *)
(* Single-GPU slowdown of the partitioned binaries (paper §9.2 text)    *)
(* ------------------------------------------------------------------ *)

let run_overhead1 () =
  Printf.printf "Single-GPU overhead: partitioned binaries on one GPU\n";
  Printf.printf
    "(paper: median 2.1%%, 25th pct 0.13%%, 75th pct 3.1%% slow-down)\n\n";
  Printf.printf "%-10s %-8s %14s %15s %10s\n" "Benchmark" "Size"
    "reference(s)" "partitioned(s)" "slowdown";
  Printf.printf "%s\n" (line 62);
  let values = ref [] in
  List.iter
    (fun b ->
       List.iter
         (fun s ->
            let tr = reference b s in
            let tp, _ = multi_time b s 1 in
            let slow = (tp -. tr) /. tr *. 100.0 in
            values := slow :: !values;
            add_timing
              [
                ("kind", jstr "slowdown");
                ("app", jstr (Apps.Workloads.benchmark_name b));
                ("size", jstr (Apps.Workloads.size_name s));
                ("slowdown_percent", jflt slow);
              ];
            Printf.printf "%-10s %-8s %14.3f %15.3f %9.2f%%\n%!"
              (Apps.Workloads.benchmark_name b) (Apps.Workloads.size_name s)
              tr tp slow)
         all_sizes)
    all_benchmarks;
  Printf.printf "%s\n" (line 62);
  let _, p25, med, p75, _ = stats_of !values in
  Printf.printf "median %.2f%%  p25 %.2f%%  p75 %.2f%%\n\n" med p25 p75

(* ------------------------------------------------------------------ *)
(* Compile-time overhead (paper §3: 1.9x - 2.2x)                        *)
(* ------------------------------------------------------------------ *)

let run_compile () =
  Printf.printf "Compile-time overhead of the two-pass pipeline\n";
  Printf.printf "(paper: 1.9x - 2.2x over a single gpucc invocation)\n\n";
  Printf.printf "%-10s %12s %12s %8s | %10s %10s %10s\n" "App" "1-pass(s)"
    "2-pass(s)" "ratio" "analysis" "rewrite" "link";
  Printf.printf "%s\n" (line 84);
  List.iter
    (fun (b, name) ->
       let prog =
         Apps.Workloads.program ~iterations:4 b Apps.Workloads.Small
       in
       let t_ref, t_mek, ratio = Mekong.Toolchain.compile_time_ratio prog in
       let p = Mekong.Toolchain.compile_profile prog in
       add_timing
        [
          ("kind", jstr "compile");
          ("app", jstr name);
          ("one_pass_seconds", jflt t_ref);
          ("two_pass_seconds", jflt t_mek);
          ("ratio", jflt ratio);
        ];
       Printf.printf "%-10s %12.6f %12.6f %7.2fx | %10.6f %10.6f %10.6f\n%!"
         name t_ref t_mek ratio p.Mekong.Toolchain.p_analysis
         p.Mekong.Toolchain.p_rewrite p.Mekong.Toolchain.p_link)
    [
      (Apps.Workloads.Hotspot_b, "hotspot");
      (Apps.Workloads.Nbody_b, "nbody");
      (Apps.Workloads.Matmul_b, "matmul");
    ];
  Printf.printf
    "\nNote: the paper's ~2x is structural (gpucc, the dominant cost, runs\n";
  Printf.printf
    "twice).  Our front-end is an embedded DSL (microseconds), so the\n";
  Printf.printf
    "polyhedral analysis dominates the measured ratio instead; the pipeline\n";
  Printf.printf "structure (two full front-end passes) is identical.\n\n"

(* ------------------------------------------------------------------ *)
(* Ablation: rectangle-union enumerators vs per-row scanning            *)
(* ------------------------------------------------------------------ *)

(* DESIGN.md calls out the rectangle-union optimization in the
   enumerators (full-width row bands collapse to one range instead of
   one range per row, paper §6.1 only computes per-row first/last).
   This ablation runs Hotspot with both variants and reports the
   dependency-resolution cost and the harness wall time. *)
let run_ablation () =
  Printf.printf "Ablation: enumerator rectangle-union vs per-row scanning\n";
  Printf.printf "(Hotspot Small, 50 iterations, 16 GPUs)\n\n";
  let prog =
    Apps.Workloads.program ~iterations:50 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let model =
    match Mekong.Toolchain.pass1 prog with
    | Ok (model, _) -> model
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  Printf.printf "%-22s %14s %16s %14s\n" "variant" "sim total(s)"
    "sim patterns(s)" "wall time(s)";
  Printf.printf "%s\n" (line 70);
  List.iter
    (fun (name, rectangles) ->
       let exe = Mekong.Multi_gpu.link ~rectangles ~model prog in
       let m = k80 16 in
       let w0 = Unix.gettimeofday () in
       let r = Mekong.Multi_gpu.run ~machine:m exe in
       let wall = Unix.gettimeofday () -. w0 in
       let s = Gpusim.Machine.stats m in
       Printf.printf "%-22s %14.4f %16.6f %14.3f\n%!" name
         r.Mekong.Multi_gpu.time s.Gpusim.Machine.pattern_seconds wall)
    [ ("rectangle-union", true); ("per-row (paper §6.1)", false) ];
  Printf.printf "\n";
  (* Second ablation: the suggested partitioning strategy vs. the naive
     alternative axis.  Matmul's model suggests splitting along y (row
     bands of C and A match the linear distribution); forcing x makes
     every device read all of A as well as all of B. *)
  Printf.printf "Ablation: partitioning strategy (Matmul Medium, 8 GPUs)\n\n";
  let mm = Apps.Workloads.program Apps.Workloads.Matmul_b Apps.Workloads.Medium in
  let mm_model =
    match Mekong.Toolchain.pass1 mm with
    | Ok (model, _) -> model
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  Printf.printf "%-26s %14s %14s\n" "strategy" "sim total(s)" "p2p GB moved";
  Printf.printf "%s\n" (line 60);
  List.iter
    (fun (name, force) ->
       let exe = Mekong.Multi_gpu.link ?force_strategy:force ~model:mm_model mm in
       let m = k80 8 in
       let r = Mekong.Multi_gpu.run ~machine:m exe in
       let st = Gpusim.Machine.stats m in
       Printf.printf "%-26s %14.3f %14.2f\n%!" name r.Mekong.Multi_gpu.time
         (float_of_int st.Gpusim.Machine.p2p_bytes /. 1e9))
    [ ("suggested (split y)", None); ("forced x (naive)", Some Dim3.X) ];
  Printf.printf "\n";
  (* Third ablation: 1-D bands (the paper's partitioning) vs 2-D tiles
     (our extension).  Tiles shrink the per-iteration stencil halo ~4x
     but pay a one-time redistribution against the linear H2D layout,
     so they only win for long-running stencils. *)
  Printf.printf
    "Ablation: 1-D bands vs 2-D tiles (Hotspot 2048^2, 16 GPUs)\n";
  Printf.printf
    "(tiles halve the halo bytes for long runs, but their per-row\n";
  Printf.printf
    " fragments explode the 1-D segment tracker's dependency-resolution\n";
  Printf.printf
    " cost - the fragmentation rationale behind the paper's contiguous\n";
  Printf.printf " 1-D chunks, Section 8.1)\n\n";
  Printf.printf "%-12s %16s %16s %16s %16s\n" "iterations" "1-D total(s)"
    "2-D total(s)" "1-D p2p GB" "2-D p2p GB";
  Printf.printf "%s\n" (line 80);
  List.iter
    (fun iterations ->
       let n = 2048 in
       let ph = Host_ir.host_phantom (n * n) in
       let prog = Apps.Hotspot.program_h ~n ~iterations ~init:ph ~result:ph in
       let model =
         match Mekong.Toolchain.pass1 prog with
         | Ok (model, _) -> model
         | Error e -> failwith (Mekong.Toolchain.error_message e)
       in
       let exe = Mekong.Multi_gpu.link ~model prog in
       let run tiling =
         let m = k80 16 in
         let r = Mekong.Multi_gpu.run ~tiling ~machine:m exe in
         (r.Mekong.Multi_gpu.time,
          float_of_int (Gpusim.Machine.stats m).Gpusim.Machine.p2p_bytes /. 1e9)
       in
       let t1, g1 = run `One_d in
       let t2, g2 = run `Two_d in
       Printf.printf "%-12d %16.4f %16.4f %16.2f %16.2f\n%!" iterations t1 t2
         g1 g2)
    [ 20; 150; 600 ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Launch-plan cache: host-engine wall-clock with and without           *)
(* ------------------------------------------------------------------ *)

(* A Repeat-heavy workload re-issues the same launch key hundreds of
   times; this measures how much host-side engine work the launch-plan
   cache amortizes.  Simulated results are bit-identical either way
   (asserted below); only the harness wall-clock changes. *)
let run_cachebench () =
  Printf.printf "Launch-plan cache (Hotspot Small, 200 iterations, 8 GPUs)\n\n";
  let prog =
    Apps.Workloads.program ~iterations:200 Apps.Workloads.Hotspot_b
      Apps.Workloads.Small
  in
  let model =
    match Mekong.Toolchain.pass1 prog with
    | Ok (model, _) -> model
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let exe = Mekong.Multi_gpu.link ~model prog in
  Printf.printf "%-12s %14s %14s %8s %8s\n" "variant" "sim total(s)"
    "wall time(s)" "hits" "misses";
  Printf.printf "%s\n" (line 60);
  let measure cache =
    let ws, r =
      median_wall (fun () ->
          let m = k80 8 in
          Mekong.Multi_gpu.run ~cache ~machine:m exe)
    in
    Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
    add_gate_report r;
    Printf.printf "%-12s %14.4f %14.3f %8d %8d\n%!"
      (if cache then "cache on" else "cache off")
      r.Mekong.Multi_gpu.time ws.ws_median
      r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.hits
      r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.misses;
    add_timing
      ([
        ("kind", jstr "cache");
        ("variant", jstr (if cache then "cache_on" else "cache_off"));
        ("sim_seconds", jflt r.Mekong.Multi_gpu.time);
      ]
       @ wall_fields ws
       @ [
         ("hits", jint r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.hits);
         ("misses", jint r.Mekong.Multi_gpu.cache.Mekong.Launch_cache.misses);
       ]);
    (r.Mekong.Multi_gpu.time, ws.ws_median)
  in
  let t_on, w_on = measure true in
  let t_off, w_off = measure false in
  assert (t_on = t_off);
  Printf.printf "\nhost-engine speedup: %.1fx (identical simulated time)\n\n"
    (w_off /. w_on)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the runtime primitives                  *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let tracker_write =
    Test.make ~name:"tracker.write x64"
      (Staged.stage (fun () ->
           let t =
             Gpu_runtime.Tracker.create ~len:1_000_000 ~initial_owner:0
           in
           for i = 0 to 63 do
             Gpu_runtime.Tracker.write t ~start:(i * 1000)
               ~stop:((i * 1000) + 500) ~owner:(i mod 16)
           done))
  in
  let tracker_query =
    let t = Gpu_runtime.Tracker.create ~len:1_000_000 ~initial_owner:0 in
    for i = 0 to 255 do
      Gpu_runtime.Tracker.write t ~start:(i * 3000) ~stop:((i * 3000) + 1500)
        ~owner:(i mod 16)
    done;
    Test.make ~name:"tracker.query (512 segs)"
      (Staged.stage (fun () ->
           ignore (Gpu_runtime.Tracker.query t ~start:100_000 ~stop:900_000)))
  in
  let btree_ops =
    Test.make ~name:"btree.add+find x256"
      (Staged.stage (fun () ->
           let module M = Gpu_runtime.Btree.Int_map in
           let t = M.create () in
           for i = 0 to 255 do
             M.add t ((i * 7919) mod 1024) i
           done;
           for i = 0 to 255 do
             ignore (M.find_opt t i)
           done))
  in
  let enum_eval =
    let a = artifacts Apps.Workloads.Hotspot_b Apps.Workloads.Small in
    let km = Mekong.Model.find_exn a.Mekong.Toolchain.model "hotspot" in
    let enums = Mekong.Codegen.build km in
    let entry = Option.get (Mekong.Codegen.entry enums "inp") in
    let enum = Option.get entry.Mekong.Codegen.read in
    let n =
      Apps.Workloads.problem_size Apps.Workloads.Hotspot_b Apps.Workloads.Small
    in
    let p =
      List.nth
        (Mekong.Partition.make ~grid:(Apps.Hotspot.grid_for n) ~axis:Dim3.Y
           ~n:16)
        7
    in
    let bindings =
      [ ("n", n) ]
      @ List.concat_map
          (fun ax ->
             [
               (Mekong.Access.bdim_name ax, Dim3.get Apps.Hotspot.block ax);
               (Mekong.Access.gdim_name ax,
                Dim3.get (Apps.Hotspot.grid_for n) ax);
             ])
          Dim3.axes
      @ Mekong.Partition.box_bindings p ~block:Apps.Hotspot.block
    in
    Test.make ~name:"enumerator.eval (hotspot read)"
      (Staged.stage (fun () -> ignore (Mekong.Codegen.ranges enum ~bindings)))
  in
  let analysis =
    Test.make ~name:"access.analyze (hotspot)"
      (Staged.stage (fun () ->
           ignore (Mekong.Access.analyze Apps.Hotspot.kernel)))
  in
  [ tracker_write; tracker_query; btree_ops; enum_eval; analysis ]

let run_micro () =
  let open Bechamel in
  Printf.printf
    "Micro-benchmarks of the runtime primitives (real wall time, OLS fit)\n\n";
  let benchmark test =
    let cfg =
      Benchmark.cfg ~limit:512 ~quota:(Time.second 0.5) ~kde:(Some 512) ()
    in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
       let results = analyze (benchmark test) in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
              add_timing
                [ ("kind", jstr "micro"); ("name", jstr name);
                  ("ns_per_run", jflt est) ];
              Printf.printf "  %-34s %12.1f ns/run\n%!" name est
            | _ -> Printf.printf "  %-34s (no estimate)\n%!" name)
         results)
    (micro_tests ());
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Fault campaign: self-healing under injected faults                   *)
(* ------------------------------------------------------------------ *)

(* Three fixed seeds, each adding transient kernel/transfer faults plus
   one permanent device loss scheduled mid-run.  Every functional run
   must finish bit-identical to its fault-free baseline; any mismatch
   (or a loss schedule that never fires) fails the campaign with exit
   code 1 — this is the headline robustness guarantee, enforced in CI. *)
let campaign_seeds = [ 11; 42; 1337 ]

let run_faultcampaign () =
  Printf.printf "Fault campaign: self-healing engine under injected faults\n";
  Printf.printf
    "(functional runs on the K80 box; each seed adds 2%% transient\n";
  Printf.printf
    " kernel/transfer faults and one permanent device loss mid-run;\n";
  Printf.printf
    " outputs must stay bit-identical to the fault-free baseline)\n\n";
  let devices = 4 in
  let workloads =
    [
      ( "hotspot",
        (* 64x64 cells = a 4x4 block grid, one row band per device
           (48x48 would leave the fourth device without compute). *)
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_hotspot ~n:64 ~iterations:6
          in
          (p, out) );
      ( "nbody",
        (* 1024 bodies = 4 blocks of 256, so the grid actually spans
           all four devices (smaller instances collapse onto one). *)
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_nbody ~n:1024 ~iterations:3
          in
          (p, out) );
      ( "matmul",
        fun () ->
          let p, out, _ = Apps.Workloads.functional_matmul ~n:24 in
          (p, out) );
    ]
  in
  let compile prog =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a.Mekong.Toolchain.exe
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let machine () =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:devices ())
  in
  let violations = ref 0 in
  Printf.printf "%-8s %6s %11s %11s %7s %8s %8s %5s  %s\n" "App" "seed"
    "clean(s)" "faulty(s)" "faults" "retries" "replays" "lost" "verdict";
  Printf.printf "%s\n" (line 86);
  List.iter
    (fun (name, mk) ->
       (* Fault-free baseline: reference output bytes and runtime. *)
       let prog, out = mk () in
       let m = machine () in
       let r0 = Mekong.Multi_gpu.run ~machine:m (compile prog) in
       assert (r0.Mekong.Multi_gpu.faults = Mekong.Multi_gpu.no_faults);
       Kcompile.add_stats ~into:exec_totals r0.Mekong.Multi_gpu.exec;
       add_gate_report r0;
       let baseline = Array.copy out in
       let t0 = r0.Mekong.Multi_gpu.time in
       List.iteri
         (fun i seed ->
            let prog, out = mk () in
            let m = machine () in
            let dead = 1 + (i mod (devices - 1)) in
            let spec =
              {
                Gpusim.Faults.null_spec with
                seed;
                kernel_fault_rate = 0.02;
                transfer_fault_rate = 0.02;
                scheduled_losses =
                  [ (dead, (0.15 +. (0.15 *. float_of_int i)) *. t0) ];
              }
            in
            Gpusim.Machine.inject_faults m (Gpusim.Faults.create spec);
            let r =
              Mekong.Multi_gpu.run ~checkpoint_every:3 ~machine:m (compile prog)
            in
            let ok = out = baseline in
            if not ok then incr violations;
            add_fault_report r;
            Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
            add_gate_report r;
            let f = r.Mekong.Multi_gpu.faults in
            add_timing
              [
                ("kind", jstr "fault_run");
                ("app", jstr name);
                ("seed", jint seed);
                ("clean_seconds", jflt t0);
                ("faulty_seconds", jflt r.Mekong.Multi_gpu.time);
                ("faults", jint f.Mekong.Multi_gpu.fr_faults);
                ("retries", jint f.Mekong.Multi_gpu.fr_retries);
                ("replays", jint f.Mekong.Multi_gpu.fr_replays);
                ("devices_lost", jint f.Mekong.Multi_gpu.fr_devices_lost);
                ("bit_identical", Json_out.Bool ok);
              ];
            Printf.printf "%-8s %6d %11.5f %11.5f %7d %8d %8d %5d  %s\n%!" name
              seed t0 r.Mekong.Multi_gpu.time f.Mekong.Multi_gpu.fr_faults
              f.Mekong.Multi_gpu.fr_retries f.Mekong.Multi_gpu.fr_replays
              f.Mekong.Multi_gpu.fr_devices_lost
              (if ok then "OK" else "FAIL: output diverged");
            if f.Mekong.Multi_gpu.fr_devices_lost = 0 then begin
              incr violations;
              Printf.printf
                "  ^ FAIL: scheduled loss of device %d never triggered\n" dead
            end)
         campaign_seeds)
    workloads;
  Printf.printf "%s\n" (line 86);
  if !violations > 0 then begin
    Printf.printf
      "FAULT CAMPAIGN FAILED: %d bit-identity/coverage violation(s)\n\n"
      !violations;
    campaign_failed := true
  end
  else
    Printf.printf
      "fault campaign passed: all runs bit-identical to the fault-free \
       baseline\n\n"

(* ------------------------------------------------------------------ *)
(* Memory pressure: spill-to-host + chunked launches under a capacity   *)
(* ------------------------------------------------------------------ *)

(* Each workload first runs uncapped to measure its own per-device
   high-water mark, then again at 100%, 50% and 25% of that capacity.
   Every capped run must stay bit-identical to the uncapped baseline
   (the DESIGN.md §15 invariant); the report records the spill traffic,
   chunk counts and slowdown the capacity costs.  Any divergence or
   unexpected infeasibility fails the campaign (exit 1). *)
let run_memcampaign () =
  Printf.printf "Memory campaign: OOM-safe execution under device capacities\n";
  Printf.printf
    "(functional runs on the K80 box; capacity = a fraction of the\n";
  Printf.printf
    " workload's own uncapped high-water mark; outputs must stay\n";
  Printf.printf " bit-identical to the uncapped baseline)\n\n";
  let devices = 4 in
  let workloads =
    [
      ( "matmul",
        (* 256x256: large enough that a quarter of the high-water
           clears the single-axis chunking floor (one partition's full
           band of A plus one block-column of B). *)
        fun () ->
          let p, out, _ = Apps.Workloads.functional_matmul ~n:256 in
          (p, out) );
      ( "hotspot",
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_hotspot ~n:64 ~iterations:6
          in
          (p, out) );
    ]
  in
  let compile prog =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a.Mekong.Toolchain.exe
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let machine cap =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.k80_box ~n_devices:devices ?mem_capacity:cap ())
  in
  let violations = ref 0 in
  Printf.printf "%-8s %5s %9s %11s %9s %7s %9s %7s  %s\n" "App" "frac"
    "cap(B)" "time(s)" "slowdown" "spills" "spill(B)" "chunks" "verdict";
  Printf.printf "%s\n" (line 86);
  List.iter
    (fun (name, mk) ->
       let prog, out = mk () in
       let m0 = machine None in
       let r0 = Mekong.Multi_gpu.run ~machine:m0 (compile prog) in
       Kcompile.add_stats ~into:exec_totals r0.Mekong.Multi_gpu.exec;
       add_gate_report r0;
       let baseline = Array.copy out in
       let t0 = r0.Mekong.Multi_gpu.time in
       let hw = ref 0 in
       for d = 0 to devices - 1 do
         hw := max !hw (Gpusim.Machine.mem_high_water m0 d)
       done;
       Printf.printf "%-8s %5s %9d %11.5f %9s %7d %9d %7d  %s\n%!" name
         "free" !hw t0 "1.00x" 0 0 0 "baseline";
       List.iter
         (fun denom ->
            let cap = !hw / denom in
            let frac = Printf.sprintf "1/%d" denom in
            let prog, out = mk () in
            let m = machine (Some cap) in
            match Mekong.Multi_gpu.run ~machine:m (compile prog) with
            | exception Failure msg ->
              incr violations;
              Printf.printf "%-8s %5s %9d %s\n%!" name frac cap
                ("FAIL: " ^ msg)
            | r ->
              let ok = out = baseline in
              if not ok then incr violations;
              Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
              add_gate_report r;
              let st = Gpusim.Machine.stats m in
              let mem = r.Mekong.Multi_gpu.mem in
              let t = r.Mekong.Multi_gpu.time in
              last_machine := Some m;
              add_timing
                [
                  ("kind", jstr "mem_run");
                  ("app", jstr name);
                  ("fraction", jstr frac);
                  ("capacity_bytes", jint cap);
                  ("high_water_bytes", jint !hw);
                  ("uncapped_seconds", jflt t0);
                  ("capped_seconds", jflt t);
                  ("spills", jint st.Gpusim.Machine.n_spills);
                  ("spill_bytes", jint st.Gpusim.Machine.spill_bytes);
                  ( "chunked_launches",
                    jint mem.Mekong.Multi_gpu.mr_chunked_launches );
                  ("chunks", jint mem.Mekong.Multi_gpu.mr_chunks);
                  ( "oom_refinements",
                    jint mem.Mekong.Multi_gpu.mr_oom_refinements );
                  ("bit_identical", Json_out.Bool ok);
                ];
              Printf.printf "%-8s %5s %9d %11.5f %8.2fx %7d %9d %7d  %s\n%!"
                name frac cap t (t /. t0) st.Gpusim.Machine.n_spills
                st.Gpusim.Machine.spill_bytes mem.Mekong.Multi_gpu.mr_chunks
                (if ok then "OK" else "FAIL: output diverged"))
         [ 1; 2; 4 ])
    workloads;
  Printf.printf "%s\n" (line 86);
  if !violations > 0 then begin
    Printf.printf
      "MEMORY CAMPAIGN FAILED: %d bit-identity/feasibility violation(s)\n\n"
      !violations;
    campaign_failed := true
  end
  else
    Printf.printf
      "memory campaign passed: all capped runs bit-identical to the \
       uncapped baseline\n\n"

(* ------------------------------------------------------------------ *)
(* Executor: interpreter vs compiled closures vs domain-parallel        *)
(* ------------------------------------------------------------------ *)

(* Real wall time of the functional execution engines (the simulated
   times are identical by construction).  Three variants per app:

     interpreter   Single_gpu with the Keval tree-walker
     compiled      Single_gpu with the Kcompile closure executor
     parallel      the partitioned engine on ONE device, so the same
                   total work, with the compiled executor splitting
                   each race-free launch over >= 2 domains

   All three must produce bit-identical output arrays, and compiled
   must not be slower than the interpreter on matmul — the CI gate
   (exit 1).  Honors --repeat (warmup + median-of-N). *)
let run_exec () =
  let domains = max 2 (Gpu_runtime.Dpool.default_domains ()) in
  Printf.printf "Executor: Keval interpreter vs Kcompile closures\n";
  Printf.printf
    "(functional runs, real wall time; 'parallel' is the partitioned\n";
  Printf.printf
    " engine on 1 device with up to %d domains; outputs must be\n"
    domains;
  Printf.printf " bit-identical across all variants)\n\n";
  let workloads =
    [
      ( "matmul",
        fun () ->
          let p, out, _ = Apps.Workloads.functional_matmul ~n:64 in
          (p, out) );
      ( "hotspot",
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_hotspot ~n:64 ~iterations:4
          in
          (p, out) );
      ( "nbody",
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_nbody ~n:512 ~iterations:2
          in
          (p, out) );
      (* irregular (reducible-atomic) workloads: exact-arithmetic
         data, so the partition-local accumulation + ordered merge
         must land on the interpreter's bits exactly *)
      ( "histogram",
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_histogram ~n:4096 ~nbins:97
          in
          (p, out) );
      ( "dot",
        fun () ->
          let p, out, _ = Apps.Workloads.functional_dot ~n:4096 in
          (p, out) );
    ]
  in
  Printf.printf "%-8s %11s %11s %11s %9s %9s  %s\n" "App" "interp(s)"
    "compiled(s)" "parallel(s)" "comp-spd" "par-spd" "verdict";
  Printf.printf "%s\n" (line 78);
  let matmul_speedup = ref nan in
  List.iter
    (fun (name, mk) ->
       let single executor () =
         let prog, out = mk () in
         let m =
           Gpusim.Machine.create ~functional:true
             (Gpusim.Config.k80_box ~n_devices:1 ())
         in
         let r = Single_gpu.run ~machine:m ~executor prog in
         Kcompile.add_stats ~into:exec_totals r.Single_gpu.exec;
         out
       in
       let ws_int, out_int = median_wall (single `Interpreter) in
       let ws_cmp, out_cmp = median_wall (single `Compiled) in
       let ws_par, (out_par, r_par) =
         median_wall (fun () ->
             let prog, out = mk () in
             let a =
               match Mekong.Toolchain.compile prog with
               | Ok a -> a
               | Error e -> failwith (Mekong.Toolchain.error_message e)
             in
             let m =
               Gpusim.Machine.create ~functional:true
                 (Gpusim.Config.k80_box ~n_devices:1 ())
             in
             let r =
               Mekong.Multi_gpu.run ~domains ~machine:m a.Mekong.Toolchain.exe
             in
             Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
             add_gate_report r;
             last_machine := Some m;
             (out, r))
       in
       let identical = out_cmp = out_int && out_par = out_int in
       if not identical then campaign_failed := true;
       let w_int = ws_int.ws_median
       and w_cmp = ws_cmp.ws_median
       and w_par = ws_par.ws_median in
       let spd = w_int /. w_cmp and pspd = w_int /. w_par in
       if name = "matmul" then begin
         matmul_speedup := spd;
         if Float.compare spd 1.0 < 0 then campaign_failed := true
       end;
       let engaged = r_par.Mekong.Multi_gpu.exec.Kcompile.st_domains in
       List.iter
         (fun (variant, ws, extra) ->
            add_timing
              ((("kind", jstr "exec") :: ("app", jstr name)
                :: ("variant", jstr variant) :: wall_fields ws)
               @ extra
               @ [ ("bit_identical", Json_out.Bool identical) ]))
         [
           ("interpreter", ws_int, []);
           ("compiled", ws_cmp, [ ("speedup", jflt spd) ]);
           ( "parallel", ws_par,
             [ ("speedup", jflt pspd); ("domains_engaged", jint engaged) ] );
         ];
       Printf.printf "%-8s %11.4f %11.4f %11.4f %8.2fx %8.2fx  %s\n%!" name
         w_int w_cmp w_par spd pspd
         (if identical then
            if engaged > 1 then "OK (parallel)" else "OK (sequential)"
          else "FAIL: output diverged"))
    workloads;
  Printf.printf "%s\n" (line 78);
  Printf.printf
    "matmul compiled-executor speedup: %.2fx over the interpreter\n"
    !matmul_speedup;
  if !campaign_failed then
    Printf.printf
      "EXEC CAMPAIGN FAILED: output divergence or compiled slower than \
       the interpreter on matmul\n\n"
  else Printf.printf "exec campaign passed\n\n"

(* ------------------------------------------------------------------ *)
(* Overlap: asynchronous compute/communication on the stream API        *)
(* ------------------------------------------------------------------ *)

(* Three sections:

   1. Streaming pipelines on the raw machine stream/event API — the
      workloads asynchronous copy engines exist for.  The SAME chunk
      DAG is scheduled three ways:

        barrier  upload all / sync / compute all / sync / download all
                 / sync per round — what a barriered engine does;
        overlap  event-chained double buffering on explicit streams,
                 one final synchronize;
        ideal    compute only, transfers never issued (the lower
                 bound).

      hidden = (t_barrier - t_overlap) / (t_barrier - t_ideal) is the
      fraction of the exposed transfer time the overlap schedule
      hides; the CI gate is >= 0.5 and the target 0.8.  Functional
      replicas of the same DAGs must agree bit-exactly across
      schedules.

   2. The partitioned engine with ~overlap:true against the barriered
      engine: outputs bit-identical (also under injected faults and a
      memory capacity) and simulated time never worse.  Lockstep
      stencils cannot hide their halo latency — the kernel -> halo ->
      kernel chain is serial — so their hidden fraction is reported,
      not gated.

   3. Scheduling proof obligations: busy copy engines, at least one
      kernel strictly concurrent with a transfer under overlap (and
      none under the barrier schedule), every island link/uplink lane
      busy on an islands topology, and the islands fabric beating the
      flat bus when transfers are exposed.  The campaign's last
      machine carries the islands overlap trace, so --trace emits the
      concurrent per-link lanes for `mekongc check-trace`. *)

(* Calibrate ops_per_block so one chunk kernel takes [target] seconds
   on [m] (the wave model is linear in ops_per_block). *)
let calibrate_ops m ~blocks ~target =
  let d1 = Gpusim.Machine.kernel_duration m ~blocks ~ops_per_block:1.0e6 in
  1.0e6 *. target /. d1

(* Does any kernel run concurrently with any transfer anywhere on the
   machine?  Uses the per-engine operation logs (enable_trace). *)
let kernel_transfer_concurrency m =
  let g = Gpusim.Machine.n_devices m in
  let ops tl = Gpusim.Timeline.log tl in
  let kernels = ref [] and copies = ref [] in
  for d = 0 to g - 1 do
    let compute, cin, cout = Gpusim.Machine.device_timelines m d in
    kernels := ops compute @ !kernels;
    copies := ops cin @ ops cout @ !copies
  done;
  List.exists
    (fun (k : Gpusim.Timeline.op) ->
       k.Gpusim.Timeline.op_category = "kernel"
       && List.exists
            (fun (t : Gpusim.Timeline.op) ->
               t.Gpusim.Timeline.op_category = "transfer"
               && k.Gpusim.Timeline.op_start < t.Gpusim.Timeline.op_finish
               && t.Gpusim.Timeline.op_start < k.Gpusim.Timeline.op_finish)
            !copies)
    !kernels

let aggregate_util m ~engine =
  let g = Gpusim.Machine.n_devices m in
  let span = Gpusim.Machine.elapsed m in
  if span <= 0.0 then 0.0
  else begin
    let busy = ref 0.0 in
    for d = 0 to g - 1 do
      let compute, cin, cout = Gpusim.Machine.device_timelines m d in
      let tl =
        match engine with
        | `Compute -> compute
        | `Copy_in -> cin
        | `Copy_out -> cout
      in
      busy := !busy +. Gpusim.Timeline.total_busy tl
    done;
    !busy /. (span *. float_of_int g)
  end

(* Host -> device -> kernel -> host streaming over [chunks] chunks of
   [chunk_len] elements, round-robin over [g] devices with two buffer
   pairs each.  Returns the output chunks (meaningful on functional
   machines only). *)
let h2d_stream ~mode m ~g ~chunks ~chunk_len ~ops_per_block =
  let open Gpusim in
  let functional = Machine.is_functional m in
  Machine.set_active_devices m g;
  let blocks = max 1 (chunk_len / 256) in
  (* In performance mode host arrays are never read: share one. *)
  let mk_host f = Array.init (if functional then chunks else 1) f in
  let input =
    mk_host (fun c ->
        Array.init chunk_len (fun i ->
            float_of_int (((c * 7919) + (i * 13)) mod 997) /. 31.0))
  in
  let output = mk_host (fun _ -> Array.make chunk_len nan) in
  let host a c = a.(if functional then c else 0) in
  let bin =
    Array.init g (fun d ->
        Array.init 2 (fun _ -> Machine.alloc m ~device:d ~len:chunk_len))
  in
  let bout =
    Array.init g (fun d ->
        Array.init 2 (fun _ -> Machine.alloc m ~device:d ~len:chunk_len))
  in
  let body d s () =
    let src = Buffer.data_exn bin.(d).(s) in
    let dst = Buffer.data_exn bout.(d).(s) in
    for i = 0 to chunk_len - 1 do
      dst.(i) <- (src.(i) *. 1.5) +. 2.0
    done
  in
  (match mode with
   | `Overlap ->
     (* Double buffered: the h2d of chunk c may not overwrite slot s
        before the kernel of chunk c-2g (the slot's previous tenant)
        has read it; everything else chains through events, no host
        barrier until the end. *)
     let slot_free = Array.make_matrix g 2 0.0 in
     for c = 0 to chunks - 1 do
       let d = c mod g and s = c / g mod 2 in
       let up =
         Machine.h2d_async ~deps:[ slot_free.(d).(s) ] m ~src:(host input c)
           ~src_off:0 ~dst:bin.(d).(s) ~dst_off:0 ~len:chunk_len
       in
       let k =
         Machine.launch_async ~deps:[ up ] m ~device:d ~blocks ~ops_per_block
           ~run:(body d s)
       in
       slot_free.(d).(s) <- k;
       ignore
         (Machine.d2h_async ~deps:[ k ] m ~src:bout.(d).(s) ~src_off:0
            ~dst:(host output c) ~dst_off:0 ~len:chunk_len)
     done;
     Machine.synchronize m
   | `Barrier ->
     let rounds = (chunks + g - 1) / g in
     for r = 0 to rounds - 1 do
       let batch =
         List.filter (fun c -> c < chunks)
           (List.init g (fun d -> (r * g) + d))
       in
       List.iter
         (fun c ->
            Machine.h2d m ~src:(host input c) ~src_off:0
              ~dst:bin.(c mod g).(0) ~dst_off:0 ~len:chunk_len)
         batch;
       Machine.synchronize m;
       List.iter
         (fun c ->
            Machine.launch m ~device:(c mod g) ~blocks ~ops_per_block
              ~run:(body (c mod g) 0))
         batch;
       Machine.synchronize m;
       List.iter
         (fun c ->
            Machine.d2h m ~src:bout.(c mod g).(0) ~src_off:0
              ~dst:(host output c) ~dst_off:0 ~len:chunk_len)
         batch;
       Machine.synchronize m
     done
   | `Ideal ->
     (* Compute lower bound; performance machines only (the kernels
        would read buffers no transfer ever filled). *)
     assert (not functional);
     for c = 0 to chunks - 1 do
       Machine.launch m ~device:(c mod g) ~blocks ~ops_per_block
         ~run:(body (c mod g) 0)
     done;
     Machine.synchronize m);
  output

(* Ring streaming over [rounds] rounds: each device computes on the
   chunk it received last round into a private accumulator while
   simultaneously forwarding that same chunk to the next device (both
   only read it), double-buffered so the incoming chunk lands in the
   other slot.  Returns the accumulator chunks. *)
let ring_stream ~mode m ~g ~rounds ~chunk_len ~ops_per_block =
  let open Gpusim in
  let functional = Machine.is_functional m in
  Machine.set_active_devices m g;
  let blocks = max 1 (chunk_len / 256) in
  let initial =
    Array.init g (fun d ->
        Array.init chunk_len (fun i ->
            float_of_int (((d * 131) + (i * 7)) mod 89) /. 17.0))
  in
  let out = Array.init g (fun _ -> Array.make chunk_len nan) in
  let chunk =
    Array.init g (fun d ->
        Array.init 2 (fun _ -> Machine.alloc m ~device:d ~len:chunk_len))
  in
  let acc = Array.init g (fun d -> Machine.alloc m ~device:d ~len:chunk_len) in
  let body d s () =
    let src = Buffer.data_exn chunk.(d).(s) in
    let dst = Buffer.data_exn acc.(d) in
    for i = 0 to chunk_len - 1 do
      dst.(i) <- dst.(i) +. src.(i)
    done
  in
  let zero = Array.make chunk_len 0.0 in
  (* Load the accumulators and round-0 chunks (slot 0). *)
  let recv_ev =
    Array.init g (fun d ->
        Machine.h2d m ~src:zero ~src_off:0 ~dst:acc.(d) ~dst_off:0
          ~len:chunk_len;
        Machine.h2d_async m ~src:initial.(d) ~src_off:0 ~dst:chunk.(d).(0)
          ~dst_off:0 ~len:chunk_len)
  in
  (* Last kernel that read slot s of device d — overwriting the slot
     must wait it (the concurrent send only reads, and its completion
     is recv_ev on the receiving side, also awaited). *)
  let consumed = Array.make_matrix g 2 0.0 in
  (match mode with
   | `Overlap ->
     for r = 0 to rounds - 1 do
       let s = r mod 2 in
       (* Kernels first: each device's copy engines hold only already
          chained work, so the launch's default-stream wait adds no
          false serialization against this round's sends. *)
       let kevs =
         Array.init g (fun d ->
             let k =
               Machine.launch_async ~deps:[ recv_ev.(d) ] m ~device:d ~blocks
                 ~ops_per_block ~run:(body d s)
             in
             consumed.(d).(s) <- k;
             k)
       in
       ignore kevs;
       if r < rounds - 1 then
         let next = Array.make g 0.0 in
         for d = 0 to g - 1 do
           let dst = (d + 1) mod g in
           (* The forward reads the chunk (needs recv_ev) and lands in
              the destination's other slot, whose old tenant had two
              readers: the destination's kernel (consumed) and the
              destination's own forward of it (recv_ev one hop on).
              It must NOT wait this round's kernel — both only read. *)
           next.(dst) <-
             Machine.p2p_async
               ~deps:
                 [ recv_ev.(d); consumed.(dst).(1 - s);
                   recv_ev.((dst + 1) mod g) ]
               m ~src:chunk.(d).(s) ~src_off:0 ~dst:chunk.(dst).(1 - s)
               ~dst_off:0 ~len:chunk_len
         done;
         Array.blit next 0 recv_ev 0 g
     done;
     Machine.synchronize m
   | `Barrier ->
     for r = 0 to rounds - 1 do
       let s = r mod 2 in
       for d = 0 to g - 1 do
         Machine.launch m ~device:d ~blocks ~ops_per_block ~run:(body d s)
       done;
       Machine.synchronize m;
       if r < rounds - 1 then begin
         for d = 0 to g - 1 do
           let dst = (d + 1) mod g in
           Machine.p2p m ~src:chunk.(d).(s) ~src_off:0
             ~dst:chunk.(dst).(1 - s) ~dst_off:0 ~len:chunk_len
         done;
         Machine.synchronize m
       end
     done
   | `Ideal ->
     assert (not functional);
     for r = 0 to rounds - 1 do
       for d = 0 to g - 1 do
         Machine.launch m ~device:d ~blocks ~ops_per_block
           ~run:(body d (r mod 2))
       done
     done;
     Machine.synchronize m);
  Array.iteri
    (fun d a ->
       Machine.d2h m ~src:a ~src_off:0 ~dst:out.(d) ~dst_off:0 ~len:chunk_len)
    acc;
  Machine.synchronize m;
  out

let run_overlapcampaign () =
  Printf.printf "Overlap campaign: async copy engines vs the host barrier\n";
  Printf.printf
    "(hidden = (t_barrier - t_overlap) / (t_barrier - t_ideal): the\n";
  Printf.printf
    " fraction of exposed transfer time the stream schedule hides;\n";
  Printf.printf " gate >= 0.50, target 0.80; outputs must stay bit-identical)\n\n";
  let violations = ref 0 in
  let check what ok =
    if not ok then begin
      incr violations;
      Printf.printf "  FAIL: %s\n%!" what
    end
  in
  let g = 4 in
  let islands =
    Gpusim.Config.Islands
      { island_size = 2; link_bandwidth = 20.0e9; uplink_bandwidth = 12.0e9 }
  in
  let perf ?topology () =
    let m =
      Gpusim.Machine.create ~functional:false
        (Gpusim.Config.k80_box ~n_devices:g ?topology ())
    in
    Gpusim.Machine.enable_trace m;
    m
  in
  let func ?topology () =
    Gpusim.Machine.create ~functional:true
      (Gpusim.Config.test_box ~n_devices:g ?topology ())
  in
  (* -- 1. streaming pipelines --------------------------------------- *)
  Printf.printf "%-12s %11s %11s %11s %8s %8s  %s\n" "Stream" "barrier(s)"
    "overlap(s)" "ideal(s)" "hidden" "target" "verdict";
  Printf.printf "%s\n" (line 78);
  let stream_machines = ref [] in
  let stream name ?topology run_mode =
    let time mode =
      let m = perf ?topology () in
      let blocks = max 1 (1 lsl 20 / 256) in
      let ops = calibrate_ops m ~blocks ~target:8.0e-3 in
      ignore (run_mode mode m ops);
      stream_machines := (name, mode, m) :: !stream_machines;
      Gpusim.Machine.host_time m
    in
    let tb = time `Barrier and t_o = time `Overlap and ti = time `Ideal in
    let hidden = if tb -. ti > 0.0 then (tb -. t_o) /. (tb -. ti) else 0.0 in
    check (name ^ ": hidden fraction under the 0.50 gate") (hidden >= 0.5);
    check (name ^ ": overlap slower than barrier") (t_o <= tb);
    add_timing
      [
        ("kind", jstr "stream");
        ("workload", jstr name);
        ("barrier_seconds", jflt tb);
        ("overlap_seconds", jflt t_o);
        ("ideal_seconds", jflt ti);
        ("hidden_fraction", jflt hidden);
        ("gate", jflt 0.5);
        ("target", jflt 0.8);
      ];
    Printf.printf "%-12s %11.5f %11.5f %11.5f %7.1f%% %7.0f%%  %s\n%!" name tb
      t_o ti (100.0 *. hidden) 80.0
      (if hidden >= 0.8 then "OK (target met)"
       else if hidden >= 0.5 then "OK (gate met)"
       else "FAIL: below gate");
    hidden
  in
  let h2d_hidden =
    stream "h2d-stream" (fun mode m ops ->
        h2d_stream ~mode m ~g ~chunks:24 ~chunk_len:(1 lsl 20)
          ~ops_per_block:ops)
  in
  let ring_hidden =
    stream "ring-stream" (fun mode m ops ->
        ring_stream ~mode m ~g ~rounds:8 ~chunk_len:(1 lsl 19)
          ~ops_per_block:ops)
  in
  ignore (h2d_hidden, ring_hidden);
  (* Functional replicas: the overlap schedule must produce the exact
     bytes the barrier schedule does. *)
  let fo = h2d_stream ~mode:`Overlap (func ()) ~g ~chunks:8 ~chunk_len:2048
      ~ops_per_block:1.0 in
  let fb = h2d_stream ~mode:`Barrier (func ()) ~g ~chunks:8 ~chunk_len:2048
      ~ops_per_block:1.0 in
  check "h2d-stream: functional overlap diverged from barrier" (fo = fb);
  let ro = ring_stream ~mode:`Overlap (func ()) ~g ~rounds:6 ~chunk_len:1024
      ~ops_per_block:1.0 in
  let rb = ring_stream ~mode:`Barrier (func ()) ~g ~rounds:6 ~chunk_len:1024
      ~ops_per_block:1.0 in
  check "ring-stream: functional overlap diverged from barrier" (ro = rb);
  let rbi =
    ring_stream ~mode:`Overlap (func ~topology:islands ()) ~g ~rounds:6
      ~chunk_len:1024 ~ops_per_block:1.0
  in
  check "ring-stream: islands topology changed functional results" (rbi = rb);
  (* -- 2. the partitioned engine ------------------------------------ *)
  Printf.printf "\n%-8s %4s %11s %11s %8s  %s\n" "App" "gpus" "barrier(s)"
    "overlap(s)" "hidden" "verdict";
  Printf.printf "%s\n" (line 78);
  let compile prog =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a.Mekong.Toolchain.exe
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let engine_time ~overlap ?cfg bench size gpus =
    let a = artifacts bench size in
    let m = k80 gpus in
    let r =
      Mekong.Multi_gpu.run ?cfg ~overlap ~machine:m a.Mekong.Toolchain.exe
    in
    Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
    add_gate_report r;
    (r.Mekong.Multi_gpu.time, Gpusim.Machine.stats m)
  in
  List.iter
    (fun (name, bench) ->
       List.iter
         (fun gpus ->
            let tb, sb = engine_time ~overlap:false bench Apps.Workloads.Small gpus in
            let t_o, so = engine_time ~overlap:true bench Apps.Workloads.Small gpus in
            let tbeta, _ =
              engine_time ~overlap:false ~cfg:Gpu_runtime.Rconfig.beta bench
                Apps.Workloads.Small gpus
            in
            let same_traffic =
              sb.Gpusim.Machine.h2d_bytes = so.Gpusim.Machine.h2d_bytes
              && sb.Gpusim.Machine.d2h_bytes = so.Gpusim.Machine.d2h_bytes
              && sb.Gpusim.Machine.p2p_bytes = so.Gpusim.Machine.p2p_bytes
            in
            check
              (Printf.sprintf "%s g=%d: overlap changed transfer traffic" name
                 gpus)
              same_traffic;
            check
              (Printf.sprintf "%s g=%d: overlap slower than barrier" name gpus)
              (t_o <= tb +. 1e-12);
            let hidden =
              if tb -. tbeta > 0.0 then (tb -. t_o) /. (tb -. tbeta) else 0.0
            in
            add_timing
              [
                ("kind", jstr "engine_overlap");
                ("app", jstr name);
                ("gpus", jint gpus);
                ("barrier_seconds", jflt tb);
                ("overlap_seconds", jflt t_o);
                ("beta_seconds", jflt tbeta);
                ("hidden_fraction", jflt hidden);
              ];
            Printf.printf "%-8s %4d %11.5f %11.5f %7.1f%%  %s\n%!" name gpus tb
              t_o (100.0 *. hidden)
              (if t_o <= tb +. 1e-12 && same_traffic then "OK" else "FAIL"))
         [ 4; 16 ])
    [ ("hotspot", Apps.Workloads.Hotspot_b);
      ("nbody", Apps.Workloads.Nbody_b);
      ("matmul", Apps.Workloads.Matmul_b) ];
  (* Functional engine bit-identity: plain, under faults, under a
     memory capacity. *)
  let func_engine ?fault_spec ?mem_capacity ~overlap mk =
    let prog, out = mk () in
    let m =
      Gpusim.Machine.create ~functional:true
        (Gpusim.Config.k80_box ~n_devices:g ?mem_capacity ())
    in
    (match fault_spec with
     | Some spec -> Gpusim.Machine.inject_faults m (Gpusim.Faults.create spec)
     | None -> ());
    let r =
      Mekong.Multi_gpu.run ~checkpoint_every:3 ~overlap ~machine:m
        (compile prog)
    in
    Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
    add_gate_report r;
    (Array.copy out, r, m)
  in
  List.iter
    (fun (name, mk) ->
       let base, _, m0 = func_engine ~overlap:false mk in
       let o, _, _ = func_engine ~overlap:true mk in
       check (name ^ ": engine overlap diverged") (o = base);
       let spec t0 =
         {
           Gpusim.Faults.null_spec with
           seed = 42;
           kernel_fault_rate = 0.02;
           transfer_fault_rate = 0.02;
           scheduled_losses = [ (1, 0.3 *. t0) ];
         }
       in
       let t0 = Gpusim.Machine.elapsed m0 in
       let f, rf, _ = func_engine ~fault_spec:(spec t0) ~overlap:true mk in
       check (name ^ ": engine overlap diverged under faults") (f = base);
       check
         (name ^ ": fault schedule never triggered the device loss")
         (rf.Mekong.Multi_gpu.faults.Mekong.Multi_gpu.fr_devices_lost > 0);
       let hw = ref 0 in
       for d = 0 to g - 1 do
         hw := max !hw (Gpusim.Machine.mem_high_water m0 d)
       done;
       let c, _, _ = func_engine ~mem_capacity:(!hw / 2) ~overlap:true mk in
       check (name ^ ": engine overlap diverged under a memory cap") (c = base))
    [
      ( "hotspot",
        fun () ->
          let p, out, _ =
            Apps.Workloads.functional_hotspot ~n:64 ~iterations:6
          in
          (p, out) );
      ( "matmul",
        fun () ->
          let p, out, _ = Apps.Workloads.functional_matmul ~n:256 in
          (p, out) );
    ];
  (* -- 3. scheduling proof obligations ------------------------------ *)
  let find name mode =
    let _, _, m =
      List.find (fun (n, md, _) -> n = name && md = mode) !stream_machines
    in
    m
  in
  let mo = find "h2d-stream" `Overlap and mb = find "h2d-stream" `Barrier in
  check "overlap schedule shows no concurrent kernel/transfer pair"
    (kernel_transfer_concurrency mo);
  check "barrier schedule shows a concurrent kernel/transfer pair"
    (not (kernel_transfer_concurrency mb));
  for d = 0 to g - 1 do
    let _, cin, cout = Gpusim.Machine.device_timelines mo d in
    check
      (Printf.sprintf "device %d copy engines idle under overlap" d)
      (Gpusim.Timeline.total_busy cin > 0.0
       && Gpusim.Timeline.total_busy cout > 0.0)
  done;
  let uo = aggregate_util mo ~engine:`Compute in
  let ub = aggregate_util mb ~engine:`Compute in
  check "overlap does not raise compute utilization" (uo > ub);
  add_timing
    [
      ("kind", jstr "utilization");
      ("workload", jstr "h2d-stream");
      ("compute_util_overlap", jflt uo);
      ("compute_util_barrier", jflt ub);
      ("copy_in_util_overlap", jflt (aggregate_util mo ~engine:`Copy_in));
      ("copy_out_util_overlap", jflt (aggregate_util mo ~engine:`Copy_out));
    ];
  Printf.printf
    "\ncompute utilization: %.1f%% overlap vs %.1f%% barrier (h2d-stream)\n"
    (100.0 *. uo) (100.0 *. ub);
  (* Topology: the ring's neighbor traffic runs on parallel island
     links, so the islands fabric must beat the flat bus while the
     transfers are exposed, and every link lane must carry traffic. *)
  let ring_time ?topology mode =
    let m = perf ?topology () in
    let blocks = max 1 (1 lsl 19 / 256) in
    let ops = calibrate_ops m ~blocks ~target:4.0e-3 in
    ignore (ring_stream ~mode m ~g ~rounds:8 ~chunk_len:(1 lsl 19)
              ~ops_per_block:ops);
    (Gpusim.Machine.host_time m, m)
  in
  let t_flat, _ = ring_time `Barrier in
  let t_isl, mi = ring_time ~topology:islands `Barrier in
  check "islands fabric not faster than the flat bus on the ring"
    (t_isl < t_flat);
  List.iter
    (fun (lname, tl) ->
       check
         (Printf.sprintf "link lane %s idle on the islands ring" lname)
         (Gpusim.Timeline.total_busy tl > 0.0))
    (Gpusim.Machine.link_timelines mi);
  add_timing
    [
      ("kind", jstr "topology");
      ("workload", jstr "ring-stream");
      ("flat_barrier_seconds", jflt t_flat);
      ("islands_barrier_seconds", jflt t_isl);
      ("islands_speedup", jflt (t_flat /. t_isl));
      ( "links",
        Json_out.List
          (List.map
             (fun (lname, tl) ->
                Json_out.Obj
                  [
                    ("name", jstr lname);
                    ("busy_seconds", jflt (Gpusim.Timeline.total_busy tl));
                  ])
             (Gpusim.Machine.link_timelines mi)) );
    ];
  Printf.printf "islands vs flat on the exposed ring: %.5fs vs %.5fs (%.2fx)\n"
    t_isl t_flat (t_flat /. t_isl);
  (* The islands overlap ring is the machine whose trace --trace
     writes: concurrent compute/copy lanes plus one lane per island
     link. *)
  let _, mi_overlap = ring_time ~topology:islands `Overlap in
  last_machine := Some mi_overlap;
  Printf.printf "%s\n" (line 78);
  if !violations > 0 then begin
    Printf.printf "OVERLAP CAMPAIGN FAILED: %d violation(s)\n\n" !violations;
    campaign_failed := true
  end
  else
    Printf.printf
      "overlap campaign passed: streams hide the gated fraction and stay \
       bit-identical\n\n"

(* ------------------------------------------------------------------ *)
(* Serving: multi-tenant campaign under faults, losses and overload     *)
(* ------------------------------------------------------------------ *)

(* A ≥200-job mixed campaign through the serving scheduler, three
   variants on an 8-GPU fleet:

     clean     the mix with two poison jobs, no losses
     loss      the same mix with two permanent device losses fired
               mid-stream (at the 30th/60th percentile of the clean
               variant's completion times, so they hit a busy fleet)
     overload  a burst arrival against a tiny queue bound plus a tight
               deadline (typed Queue_full rejections and timeouts)

   Gates (any violation exits 1 after the reports are written):
   - zero lost jobs: every submission reaches a typed outcome;
   - every healthy job in the clean and loss variants completes, and
     its output is bit-identical to a solo run of the identical
     instance on the full healthy machine;
   - poison jobs are quarantined by the circuit breaker, never retried
     forever;
   - the loss variant loses exactly its two scheduled devices, at
     least one in-flight job preempts and re-queues, and no lease
     occupies a device after its death;
   - the overload variant rejects with the typed queue bound;
   - per-tenant SLO percentiles are finite wherever defined, and the
     scheduler's Chrome trace validates. *)
let run_servecampaign () =
  let fleet_n = 8 in
  let n_jobs = 220 in
  let n_poison = 2 in
  let seed = 42 in
  Printf.printf "Serving campaign: %d-job multi-tenant mix on %d GPUs\n"
    n_jobs fleet_n;
  Printf.printf
    "(admission control, priorities, circuit breaker, graceful\n\
    \ degradation; completed outputs must be bit-identical to solo runs)\n\n";
  let violations = ref 0 in
  let check msg ok =
    if not ok then begin
      incr violations;
      Printf.printf "  FAIL: %s\n%!" msg
    end
  in
  let fleet () = Gpusim.Config.k80_box ~n_devices:fleet_n () in
  let run_variant ~variant ?(max_queue = 256) ?(losses = []) ?deadline
      ?(mean_gap = 2e-4) ~jobs ~poison ~seed () =
    let built =
      Serve.Mix.generate ~seed ~tenants:4 ~poison ?deadline ~mean_gap ~jobs ()
    in
    let cfg = Serve.Scheduler.config ~max_queue ~losses (fleet ()) in
    let r =
      Serve.Scheduler.run cfg (List.map (fun b -> b.Serve.Mix.b_spec) built)
    in
    add_timing
      [
        ("kind", jstr "serve_variant");
        ("variant", jstr variant);
        (* Flattened so `bench compare` can gate the scheduler makespan
           per variant; the full per-tenant breakdown stays nested. *)
        ("makespan_seconds", Obs.Json.Float r.Serve.Scheduler.r_makespan);
        ("report", Serve.Scheduler.report_to_json r);
      ];
    (built, r)
  in
  let outcome_of (r : Serve.Scheduler.report) name =
    let j =
      List.find (fun (j : Serve.Job.report) -> j.Serve.Job.r_name = name)
        r.Serve.Scheduler.r_jobs
    in
    j.Serve.Job.r_outcome
  in
  let counts (r : Serve.Scheduler.report) =
    List.fold_left
      (fun (c, rj, t, q) (j : Serve.Job.report) ->
         match j.Serve.Job.r_outcome with
         | Serve.Job.Completed _ -> (c + 1, rj, t, q)
         | Serve.Job.Rejected _ -> (c, rj + 1, t, q)
         | Serve.Job.Timed_out _ -> (c, rj, t + 1, q)
         | Serve.Job.Quarantined _ -> (c, rj, t, q + 1))
      (0, 0, 0, 0) r.Serve.Scheduler.r_jobs
  in
  (* Solo reference outputs, one per workload key: instances of a key
     are bit-identical by construction, so each key is run once, alone
     on the full healthy machine. *)
  let solo_outputs built =
    let tbl : (string, float array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (b : Serve.Mix.built) ->
         if
           (not b.Serve.Mix.b_poison)
           && not (Hashtbl.mem tbl b.Serve.Mix.b_key)
         then begin
           let exe', out' = b.Serve.Mix.b_solo () in
           let m = Gpusim.Machine.create ~functional:true (fleet ()) in
           ignore (Mekong.Multi_gpu.run ~machine:m exe');
           Hashtbl.replace tbl b.Serve.Mix.b_key out'
         end)
      built;
    tbl
  in
  let check_variant ~variant built r =
    let total = List.length r.Serve.Scheduler.r_jobs in
    check
      (Printf.sprintf "%s: every job must reach a typed outcome" variant)
      (total = List.length built);
    let solo = solo_outputs built in
    List.iter
      (fun (b : Serve.Mix.built) ->
         let name = b.Serve.Mix.b_spec.Serve.Job.name in
         match outcome_of r name with
         | Serve.Job.Completed _ ->
           check
             (Printf.sprintf "%s: %s bit-identical to its solo run" variant
                name)
             (b.Serve.Mix.b_output = Hashtbl.find solo b.Serve.Mix.b_key)
         | Serve.Job.Quarantined _ ->
           check
             (Printf.sprintf "%s: only poison jobs may be quarantined (%s)"
                variant name)
             b.Serve.Mix.b_poison
         | _ -> ())
      built;
    List.iter
      (fun (b : Serve.Mix.built) ->
         if not b.Serve.Mix.b_poison then
           check
             (Printf.sprintf "%s: healthy job %s must complete" variant
                b.Serve.Mix.b_spec.Serve.Job.name)
             (match outcome_of r b.Serve.Mix.b_spec.Serve.Job.name with
              | Serve.Job.Completed _ -> true
              | _ -> false)
         else
           check
             (Printf.sprintf "%s: poison job %s must be quarantined" variant
                b.Serve.Mix.b_spec.Serve.Job.name)
             (match outcome_of r b.Serve.Mix.b_spec.Serve.Job.name with
              | Serve.Job.Quarantined _ -> true
              | _ -> false))
      built;
    List.iter
      (fun (t : Serve.Slo.tenant) ->
         if t.Serve.Slo.t_completed > 0 then
           check
             (Printf.sprintf "%s: tenant %s percentiles finite" variant
                t.Serve.Slo.t_name)
             (List.for_all Float.is_finite
                [
                  t.Serve.Slo.t_queue_p50; t.Serve.Slo.t_queue_p99;
                  t.Serve.Slo.t_turnaround_p50; t.Serve.Slo.t_turnaround_p99;
                ]))
      (Serve.Scheduler.tenants r)
  in
  let print_variant variant (r : Serve.Scheduler.report) =
    let c, rj, t, q = counts r in
    Printf.printf
      "%-9s %4d jobs: %4d completed %3d rejected %3d timed-out %3d \
       quarantined | %d lost | makespan %.4fs | util %2.0f%%\n%!"
      variant
      (List.length r.Serve.Scheduler.r_jobs)
      c rj t q r.Serve.Scheduler.r_devices_lost r.Serve.Scheduler.r_makespan
      (100.0 *. r.Serve.Scheduler.r_utilization)
  in

  (* Variant 1: clean. *)
  let built_c, r_clean =
    run_variant ~variant:"clean" ~jobs:n_jobs ~poison:n_poison ~seed ()
  in
  print_variant "clean" r_clean;
  check_variant ~variant:"clean" built_c r_clean;

  (* Variant 2: the same mix with two mid-stream permanent losses.
     Times are percentiles of the clean variant's completion times, so
     both losses land while the fleet is saturated; devices 0 and 1
     die because low device ids are preferred by dispatch and are
     therefore the busiest. *)
  let finishes =
    List.filter_map
      (fun (j : Serve.Job.report) ->
         match j.Serve.Job.r_outcome with
         | Serve.Job.Completed { finished; _ } -> Some finished
         | _ -> None)
      r_clean.Serve.Scheduler.r_jobs
    |> Array.of_list
  in
  Array.sort compare finishes;
  let losses =
    [ (0, percentile finishes 30.0); (1, percentile finishes 60.0) ]
  in
  List.iter
    (fun (d, t) -> Printf.printf "  scheduling loss of device %d at %.4fs\n" d t)
    losses;
  let built_l, r_loss =
    run_variant ~variant:"loss" ~losses ~jobs:n_jobs ~poison:n_poison ~seed ()
  in
  print_variant "loss" r_loss;
  check_variant ~variant:"loss" built_l r_loss;
  check "loss: exactly the two scheduled devices die"
    (r_loss.Serve.Scheduler.r_devices_lost = 2);
  let preemptions =
    List.fold_left
      (fun acc (j : Serve.Job.report) ->
         match j.Serve.Job.r_outcome with
         | Serve.Job.Completed { preemptions; _ } -> acc + preemptions
         | _ -> acc)
      0 r_loss.Serve.Scheduler.r_jobs
  in
  Printf.printf
    "  loss variant: %d preempt/requeue cycle(s) across in-flight jobs\n"
    preemptions;
  check "loss: at least one in-flight job preempts and re-queues"
    (preemptions >= 1);
  List.iter
    (fun (s : Serve.Scheduler.segment) ->
       List.iter
         (fun d ->
            match List.assoc_opt d losses with
            | Some t ->
              check
                (Printf.sprintf "loss: no lease on device %d after its death" d)
                (s.Serve.Scheduler.sg_start <= t)
            | None -> ())
         s.Serve.Scheduler.sg_devices)
    r_loss.Serve.Scheduler.r_segments;
  (match Obs.Chrome_trace.validate (Serve.Strace.to_json r_loss) with
   | Ok () -> ()
   | Error e -> check (Printf.sprintf "loss: scheduler trace valid (%s)" e) false);

  (* Variant 3: overload — a burst arrival against a tiny queue bound
     and a tight per-job deadline.  Overflow must surface as typed
     Queue_full rejections, never silent drops. *)
  let _, r_over =
    run_variant ~variant:"overload" ~max_queue:8 ~mean_gap:0.0 ~deadline:5e-3
      ~jobs:64 ~poison:0 ~seed:7 ()
  in
  print_variant "overload" r_over;
  let c_o, rj_o, t_o, q_o = counts r_over in
  check "overload: all outcomes typed and accounted"
    (c_o + rj_o + t_o + q_o = 64);
  check "overload: the bounded queue rejects" (rj_o > 0);
  List.iter
    (fun (j : Serve.Job.report) ->
       match j.Serve.Job.r_outcome with
       | Serve.Job.Rejected { reason = Serve.Job.Queue_full n; _ } ->
         check "overload: rejection carries the queue bound" (n = 8)
       | Serve.Job.Rejected { reason; _ } ->
         check
           (Printf.sprintf "overload: unexpected rejection %s"
              (Serve.Job.reject_reason_to_string reason))
           false
       | _ -> ())
    r_over.Serve.Scheduler.r_jobs;

  Printf.printf "\nper-tenant SLOs of the loss variant:\n";
  Format.printf "%a@?" Serve.Slo.pp (Serve.Scheduler.tenants r_loss);
  (match !trace_path with
   | Some file ->
     Serve.Strace.write ~file r_loss;
     Printf.printf "[serve scheduler trace written to %s]\n%!" file
   | None -> ());
  Printf.printf "%s\n" (line 86);
  if !violations > 0 then begin
    Printf.printf "SERVE CAMPAIGN FAILED: %d gate violation(s)\n\n" !violations;
    campaign_failed := true
  end
  else
    Printf.printf
      "serve campaign passed: every job typed, completed outputs \
       bit-identical,\npoison quarantined, losses absorbed, overload \
       rejected with backpressure\n\n"

(* ------------------------------------------------------------------ *)
(* Autotune campaign: the cost-driven partition autotuner, gated      *)
(* ------------------------------------------------------------------ *)

(* Four hard gates (any violation exits 1 after the report is written):

   A  bit-identity: autotuned functional runs reproduce the CPU oracle
      on every app at 4 devices, hotspot also at 16 — the fleet size
      where the tuner must *reject* a narrow plan on its decisiveness
      margin and engage halo tiling on the fixed bands instead;
   B  never slower: on every app and fleet size in {1,2,4,8,16}, the
      autotuned simulated time is at most the fixed-axis engine's.
      The scorer's hysteresis band and structure-change margin, plus
      the engine keeping the seed's transfer schedule when the winner
      is the fixed shape, exist exactly for this gate;
   C  halo speedup: on an iterated stencil deep and wide enough to
      amortize barriers (2048^2, 50 iterations, 4 GPUs), halo tiling
      beats the per-step fixed schedule by >= 1.3x simulated;
   D  halo bytes: on small iterated stencils the tuner's narrow plan
      moves strictly fewer steady-state p2p bytes per iteration
      (differenced between a 24- and an 8-iteration run, so one-time
      distribution traffic cancels).  At large n the 1-D conservation
      law holds — same G, same boundary rows, same bytes — so the
      gate probes the sizes where fewer devices win outright. *)
let run_autotunecampaign () =
  let compile prog =
    match Mekong.Toolchain.compile prog with
    | Ok a -> a
    | Error e -> failwith (Mekong.Toolchain.error_message e)
  in
  let violations = ref 0 in
  let check ok what detail =
    Printf.printf "  %-4s %-28s %s\n%!"
      (if ok then "PASS" else "FAIL")
      what detail;
    if not ok then incr violations
  in
  let sim ?(functional = false) ~g ~autotune prog =
    let m =
      if functional then
        Gpusim.Machine.create ~functional:true
          (Gpusim.Config.k80_box ~n_devices:g ())
      else k80 g
    in
    let a = compile prog in
    let r = Mekong.Multi_gpu.run ~autotune ~machine:m a.Mekong.Toolchain.exe in
    add_tune_report r;
    Kcompile.add_stats ~into:exec_totals r.Mekong.Multi_gpu.exec;
    add_gate_report r;
    if not functional then last_machine := Some m;
    r
  in
  Printf.printf "autotune campaign: %s\n%s\n" "cost-driven partition tuning"
    (line 72);
  Printf.printf "Gate A: autotuned functional runs vs CPU oracle\n";
  List.iter
    (fun (name, g, mk) ->
       let prog, out, cpu = mk () in
       ignore (sim ~functional:true ~g ~autotune:true prog);
       let ok = out = cpu () in
       check ok
         (Printf.sprintf "%s g=%d" name g)
         (if ok then "bit-identical" else "OUTPUT DIVERGED");
       add_timing
         [
           ("kind", jstr "autotune-identity");
           ("app", jstr name);
           ("gpus", jint g);
           ("bit_identical", Json_out.Bool ok);
         ])
    [
      ("matmul", 4, fun () -> Apps.Workloads.functional_matmul ~n:64);
      ( "hotspot", 4,
        fun () -> Apps.Workloads.functional_hotspot ~n:64 ~iterations:4 );
      ( "hotspot", 16,
        fun () -> Apps.Workloads.functional_hotspot ~n:64 ~iterations:4 );
      ( "nbody", 4,
        fun () -> Apps.Workloads.functional_nbody ~n:512 ~iterations:2 );
    ];
  Printf.printf "Gate B: autotuned never slower than the fixed axis\n";
  List.iter
    (fun (name, mk) ->
       List.iter
         (fun g ->
            let tf = (sim ~g ~autotune:false (mk ())).Mekong.Multi_gpu.time in
            let ta = (sim ~g ~autotune:true (mk ())).Mekong.Multi_gpu.time in
            let ok = ta <= tf *. 1.000001 in
            check ok
              (Printf.sprintf "%s g=%d" name g)
              (Printf.sprintf "fixed=%9.3fms auto=%9.3fms (%.3fx)"
                 (tf *. 1e3) (ta *. 1e3) (tf /. ta));
            add_timing
              [
                ("kind", jstr "autotune-pair");
                ("app", jstr name);
                ("gpus", jint g);
                ("fixed_seconds", jflt tf);
                ("autotuned_seconds", jflt ta);
                ("never_slower", Json_out.Bool ok);
              ])
         [ 1; 2; 4; 8; 16 ])
    [
      ( "hotspot",
        fun () ->
          Apps.Workloads.program ~iterations:20 Apps.Workloads.Hotspot_b
            Apps.Workloads.Small );
      ( "nbody",
        fun () ->
          Apps.Workloads.program ~iterations:4 Apps.Workloads.Nbody_b
            Apps.Workloads.Small );
      ( "matmul",
        fun () ->
          Apps.Workloads.program Apps.Workloads.Matmul_b Apps.Workloads.Small
      );
    ];
  let stencil n it =
    Apps.Hotspot.program_h ~n ~iterations:it
      ~init:(Host_ir.host_phantom (n * n))
      ~result:(Host_ir.host_phantom (n * n))
  in
  Printf.printf "Gate C: halo-tiled stencil speedup at 4 GPUs\n";
  let rf = sim ~g:4 ~autotune:false (stencil 2048 50) in
  let ra = sim ~g:4 ~autotune:true (stencil 2048 50) in
  let spd = rf.Mekong.Multi_gpu.time /. ra.Mekong.Multi_gpu.time in
  let halo_steps = ra.Mekong.Multi_gpu.tune.Mekong.Multi_gpu.tn_halo_steps in
  check
    (halo_steps > 0 && spd >= 1.3)
    "hotspot n=2048 it=50 g=4"
    (Printf.sprintf "speedup=%.2fx (gate 1.30x) halo_steps=%d" spd halo_steps);
  add_timing
    [
      ("kind", jstr "autotune-halo-speedup");
      ("app", jstr "hotspot");
      ("n", jint 2048);
      ("iterations", jint 50);
      ("gpus", jint 4);
      ("fixed_seconds", jflt rf.Mekong.Multi_gpu.time);
      ("autotuned_seconds", jflt ra.Mekong.Multi_gpu.time);
      ("speedup", jflt spd);
      ("halo_steps", jint halo_steps);
    ];
  Printf.printf "Gate D: steady-state p2p bytes reduced on small stencils\n";
  List.iter
    (fun n ->
       let per_iter autotune =
         let bytes it =
           let r = sim ~g:4 ~autotune (stencil n it) in
           (Gpusim.Machine.stats r.Mekong.Multi_gpu.machine)
             .Gpusim.Machine.p2p_bytes
         in
         (bytes 24 - bytes 8) / 16
       in
       let bf = per_iter false and ba = per_iter true in
       check (ba < bf)
         (Printf.sprintf "hotspot n=%d g=4" n)
         (Printf.sprintf "per-iter p2p fixed=%dB auto=%dB" bf ba);
       add_timing
         [
           ("kind", jstr "autotune-halo-bytes");
           ("app", jstr "hotspot");
           ("n", jint n);
           ("gpus", jint 4);
           ("fixed_bytes_per_iter", jint bf);
           ("autotuned_bytes_per_iter", jint ba);
         ])
    [ 512; 1024 ];
  Printf.printf "%s\n" (line 72);
  if !violations > 0 then begin
    Printf.printf "AUTOTUNE CAMPAIGN FAILED: %d gate violation(s)\n\n"
      !violations;
    campaign_failed := true
  end
  else
    Printf.printf
      "autotune campaign passed: bit-identical everywhere, never slower \
       than\nthe fixed axis, halo tiling %.2fx on the deep stencil, \
       narrow plans\nmove fewer steady-state bytes\n\n"
      spd

(* ------------------------------------------------------------------ *)
(* Per-campaign BENCH_<campaign>.json reports                           *)
(* ------------------------------------------------------------------ *)

let host_json () =
  Json_out.Obj
    [
      ("hostname", jstr (Unix.gethostname ()));
      ("os_type", jstr Sys.os_type);
      ("ocaml_version", jstr Sys.ocaml_version);
      ("word_size_bits", jint Sys.word_size);
      ("recommended_domains", jint (Domain.recommended_domain_count ()));
      ("pool_domains", jint (Gpu_runtime.Dpool.default_domains ()));
    ]

let json_file name =
  match !json_path with Some p -> p | None -> "BENCH_" ^ name ^ ".json"

(* Run one campaign and write its report: wall-clock, the timing
   entries it recorded, the counters it accumulated, host info.  The
   global counters are reset per campaign so an `all` run yields
   per-campaign numbers. *)
let run_campaign name f =
  timings := [];
  cache_hits := 0;
  cache_misses := 0;
  fault_totals := Mekong.Multi_gpu.no_faults;
  tune_totals := Mekong.Multi_gpu.no_tune;
  gate_totals := Mekong.Multi_gpu.no_gate;
  reset_exec ();
  last_machine := None;
  Obs.Span.reset ();
  let w0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. w0 in
  let ft = !fault_totals in
  (* Campaign-level metrics snapshot: the aggregate counters under the
     same stable names the library publishers use, plus the last
     machine's gpusim counters. *)
  let reg = Obs.Metrics.create () in
  let set k v = Obs.Metrics.set reg k (float_of_int v) in
  set "cache.plan_hits" !cache_hits;
  set "cache.plan_misses" !cache_misses;
  set "faults.observed" ft.Mekong.Multi_gpu.fr_faults;
  set "faults.retries" ft.Mekong.Multi_gpu.fr_retries;
  set "faults.replays" ft.Mekong.Multi_gpu.fr_replays;
  set "faults.devices_lost" ft.Mekong.Multi_gpu.fr_devices_lost;
  let tt = !tune_totals in
  set "autotune.launches" tt.Mekong.Multi_gpu.tn_launches;
  Obs.Metrics.set reg "autotune.predicted_us"
    (tt.Mekong.Multi_gpu.tn_predicted_s *. 1e6);
  Obs.Metrics.set reg "autotune.actual_us"
    (tt.Mekong.Multi_gpu.tn_actual_s *. 1e6);
  set "autotune.halo_blocks" tt.Mekong.Multi_gpu.tn_halo_blocks;
  let gt = !gate_totals in
  set "engine.gate.safe" gt.Mekong.Multi_gpu.gr_safe;
  set "engine.gate.reducible" gt.Mekong.Multi_gpu.gr_reducible;
  set "engine.gate.racy" gt.Mekong.Multi_gpu.gr_racy;
  set "engine.gate.unknown" gt.Mekong.Multi_gpu.gr_unknown;
  set "engine.gate.merges" gt.Mekong.Multi_gpu.gr_merges;
  set "engine.gate.merged_elems" gt.Mekong.Multi_gpu.gr_merged_elems;
  set "autotune.halo_steps" tt.Mekong.Multi_gpu.tn_halo_steps;
  Array.iteri
    (fun i n ->
       let buckets = Mekong.Multi_gpu.tune_err_buckets in
       let k =
         if i < Array.length buckets then
           Printf.sprintf "autotune.err_le_%.0fpct" buckets.(i)
         else "autotune.err_gt_100pct"
       in
       set k n)
    tt.Mekong.Multi_gpu.tn_err_hist;
  Kcompile.publish_metrics ~into:reg exec_totals;
  (match !last_machine with
   | Some m -> Gpusim.Machine.publish_metrics ~into:reg m
   | None -> ());
  let breakdown =
    match !last_machine with
    | Some m -> Obs.Report.to_json (Mekong.Profile.collect m)
    | None -> Json_out.Null
  in
  let j =
    Json_out.Obj
      [
        ("campaign", jstr name);
        ("wall_seconds", jflt wall);
        ("repeat", jint !repeat);
        ("timings", Json_out.List (List.rev !timings));
        ( "counters",
          Json_out.Obj
            [
              ( "plan_cache",
                Json_out.Obj
                  [
                    ("hits", jint !cache_hits);
                    ("misses", jint !cache_misses);
                  ] );
              ( "executor",
                Json_out.Obj
                  [
                    ("compiles", jint exec_totals.Kcompile.st_compiles);
                    ("cache_hits", jint exec_totals.Kcompile.st_cache_hits);
                    ("seq_launches", jint exec_totals.Kcompile.st_seq);
                    ("par_launches", jint exec_totals.Kcompile.st_par);
                    ("max_domains", jint exec_totals.Kcompile.st_domains);
                    ("interpreted", jint exec_totals.Kcompile.st_interpreted);
                  ] );
              ( "gate",
                Json_out.Obj
                  [
                    ("safe", jint gt.Mekong.Multi_gpu.gr_safe);
                    ("reducible", jint gt.Mekong.Multi_gpu.gr_reducible);
                    ("racy", jint gt.Mekong.Multi_gpu.gr_racy);
                    ("unknown", jint gt.Mekong.Multi_gpu.gr_unknown);
                    ("merges", jint gt.Mekong.Multi_gpu.gr_merges);
                    ( "merged_elems",
                      jint gt.Mekong.Multi_gpu.gr_merged_elems );
                  ] );
              ( "faults",
                Json_out.Obj
                  [
                    ("faults", jint ft.Mekong.Multi_gpu.fr_faults);
                    ("retries", jint ft.Mekong.Multi_gpu.fr_retries);
                    ("replays", jint ft.Mekong.Multi_gpu.fr_replays);
                    ( "devices_lost",
                      jint ft.Mekong.Multi_gpu.fr_devices_lost );
                  ] );
              ( "autotune",
                Json_out.Obj
                  [
                    ("launches", jint tt.Mekong.Multi_gpu.tn_launches);
                    ( "predicted_us",
                      jflt (tt.Mekong.Multi_gpu.tn_predicted_s *. 1e6) );
                    ( "actual_us",
                      jflt (tt.Mekong.Multi_gpu.tn_actual_s *. 1e6) );
                    ( "halo_blocks",
                      jint tt.Mekong.Multi_gpu.tn_halo_blocks );
                    ("halo_steps", jint tt.Mekong.Multi_gpu.tn_halo_steps);
                    ( "err_hist",
                      Json_out.List
                        (Array.to_list
                           (Array.map
                              (fun n -> jint n)
                              tt.Mekong.Multi_gpu.tn_err_hist)) );
                  ] );
            ] );
        ("breakdown", breakdown);
        ("metrics", Obs.Metrics.to_json reg);
        ("host", host_json ());
      ]
  in
  let file = json_file name in
  Json_out.write ~file j;
  Printf.printf "[%s report written to %s]\n%!" name file;
  match (!trace_path, !last_machine) with
  | Some file, Some m ->
    let critpath =
      Option.map Obs.Causal.analyze (Gpusim.Machine.causal_dag m)
    in
    Gpusim.Trace_export.write ~spans:(Obs.Span.records ()) ?critpath ~file m;
    Printf.printf "[%s trace written to %s]\n%!" name file
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let campaigns =
  [
    ("table1", run_table1);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("overhead1", run_overhead1);
    ("compile", run_compile);
    ("ablation", run_ablation);
    ("cache", run_cachebench);
    ("faults", run_faultcampaign);
    ("mem", run_memcampaign);
    ("exec", run_exec);
    ("overlap", run_overlapcampaign);
    ("serve", run_servecampaign);
    ("autotune", run_autotunecampaign);
    ("micro", run_micro);
  ]

let usage =
  String.concat "|" (List.map fst campaigns)
  ^ "|all [--faults SEED,RATE[,DEV@TIME...]] [--mem-cap BYTES] \
     [--topology flat|islands:SIZE,LINK_GBS,UPLINK_GBS] [--repeat N] \
     [--domains N] [--json PATH] [--trace PATH]\n\
     \       compare OLD.json NEW.json [--threshold PCT] [--json DIFF.json]"

(* `bench compare OLD.json NEW.json`: the perf-regression gate.  Exits
   1 when any timing slowed down beyond threshold + noise, quiet
   otherwise; --json writes the full diff (the CI artifact). *)
let threshold_pct = ref Obs.Regress.default_threshold_pct

let run_compare old_file new_file =
  let read file =
    let doc =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error e ->
        Printf.eprintf "cannot read %s: %s\n" file e;
        exit 2
    in
    match Obs.Json.parse doc with
    | Ok j -> j
    | Error e ->
      Printf.eprintf "%s is not valid JSON: %s\n" file e;
      exit 2
  in
  let old_doc = read old_file and new_doc = read new_file in
  let r =
    Obs.Regress.compare_docs ~threshold_pct:!threshold_pct ~old_doc ~new_doc
      ()
  in
  Format.printf "%a@?" Obs.Regress.pp r;
  (match !json_path with
   | Some file ->
     Obs.Json.write ~file (Obs.Regress.to_json r);
     Printf.printf "[diff written to %s]\n%!" file
   | None -> ());
  if r.Obs.Regress.regressions > 0 then exit 1

let () =
  let int_flag flag v rest k =
    match int_of_string_opt v with
    | Some n when n >= 1 -> k n rest
    | _ ->
      Printf.eprintf "%s needs a positive integer, got %S\n" flag v;
      exit 2
  in
  let rec parse acc = function
    | "--faults" :: spec :: rest ->
      (match Gpusim.Faults.spec_of_string spec with
       | Ok s ->
         fault_spec := Some s;
         parse acc rest
       | Error e ->
         Printf.eprintf "bad --faults spec %S: %s\n" spec e;
         exit 2)
    | "--mem-cap" :: v :: rest ->
      int_flag "--mem-cap" v rest (fun n rest ->
          mem_cap := Some n;
          parse acc rest)
    | "--topology" :: spec :: rest ->
      (match Gpusim.Config.topology_of_string spec with
       | Ok t ->
         topology := t;
         parse acc rest
       | Error e ->
         Printf.eprintf "bad --topology spec %S: %s\n" spec e;
         exit 2)
    | "--repeat" :: v :: rest ->
      int_flag "--repeat" v rest (fun n rest ->
          repeat := n;
          parse acc rest)
    | "--domains" :: v :: rest ->
      int_flag "--domains" v rest (fun n rest ->
          Gpu_runtime.Dpool.set_default_domains n;
          parse acc rest)
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t >= 0.0 ->
         threshold_pct := t;
         parse acc rest
       | _ ->
         Printf.eprintf "--threshold needs a non-negative number, got %S\n" v;
         exit 2)
    | "--trace" :: path :: rest ->
      trace_path := Some path;
      Obs.Span.set_clock Unix.gettimeofday;
      Obs.Span.set_enabled true;
      parse acc rest
    | [ ("--faults" | "--mem-cap" | "--topology" | "--repeat" | "--domains"
        | "--json" | "--trace" | "--threshold") as flag ]
      ->
      Printf.eprintf "%s needs an argument\n" flag;
      exit 2
    | a :: rest -> parse (a :: acc) rest
    | [] -> List.rev acc
  in
  let which =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [ "compare"; old_file; new_file ] ->
      run_compare old_file new_file;
      exit 0
    | [] -> "all"
    | [ w ] -> w
    | _ ->
      Printf.eprintf "usage: %s\n" usage;
      exit 2
  in
  let t0 = Unix.gettimeofday () in
  (match which with
   | "all" -> List.iter (fun (name, f) -> run_campaign name f) campaigns
   | name ->
     (match List.assoc_opt name campaigns with
      | Some f -> run_campaign name f
      | None ->
        Printf.eprintf "unknown experiment %s (%s)\n" name usage;
        exit 2));
  Printf.printf "[bench completed in %.1fs wall time]\n"
    (Unix.gettimeofday () -. t0);
  if !campaign_failed then exit 1
