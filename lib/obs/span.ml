(* Hierarchical spans over the host's execution.

   A span brackets one phase of work (parse, analyze, plan-build,
   sync-read-sets, launch, ...) and records wall-clock time always and
   *simulated* time when the caller supplies a sampler for it — the
   engine passes the machine's host clock, so a span can say both "this
   took 40 us of harness time" and "this covered 1.3 ms of simulated
   time".

   Spans are OFF by default and every instrumentation point is guarded
   by a single flag test, so the hot path pays one load-and-branch when
   observability is disabled.  Completed spans land in a bounded ring
   buffer (oldest dropped, drops counted); nesting is tracked with an
   explicit stack on the *calling* domain — instrumentation points live
   in host-side orchestration code only, never inside worker domains. *)

type record = {
  sp_id : int;
  sp_parent : int; (* id of the enclosing span, or -1 for roots *)
  sp_depth : int;
  sp_name : string;
  sp_cat : string;
  sp_wall_start : float;
  sp_wall_stop : float;
  sp_sim_start : float; (* nan when the span carried no sim sampler *)
  sp_sim_stop : float;
}

let enabled_flag = ref false
let enabled () = !enabled_flag

(* The wall clock is injectable so this library needs no [unix]
   dependency: [Sys.time] (CPU seconds) is the stdlib-only default and
   entry points that link unix install [Unix.gettimeofday]. *)
let clock = ref Sys.time
let set_clock f = clock := f

let default_capacity = 65536
let store = ref (Ring.create ~capacity:default_capacity)
let next_id = ref 0
let stack : (int * int) list ref = ref [] (* (id, depth), innermost first *)

let set_capacity capacity =
  store := Ring.create ~capacity;
  next_id := 0;
  stack := []

let set_enabled b = enabled_flag := b

let reset () =
  Ring.clear !store;
  next_id := 0;
  stack := []

let records () = Ring.to_list !store
let dropped () = Ring.dropped !store

let with_span ?(cat = "") ?sim name f =
  if not !enabled_flag then f ()
  else begin
    let id = !next_id in
    incr next_id;
    let parent, depth =
      match !stack with [] -> (-1, 0) | (p, d) :: _ -> (p, d + 1)
    in
    stack := (id, depth) :: !stack;
    let wall_start = !clock () in
    let sim_start = match sim with Some s -> s () | None -> nan in
    Fun.protect
      ~finally:(fun () ->
          let wall_stop = !clock () in
          let sim_stop = match sim with Some s -> s () | None -> nan in
          (match !stack with
           | (top, _) :: rest when top = id -> stack := rest
           | _ -> stack := []);
          Ring.push !store
            {
              sp_id = id;
              sp_parent = parent;
              sp_depth = depth;
              sp_name = name;
              sp_cat = cat;
              sp_wall_start = wall_start;
              sp_wall_stop = wall_stop;
              sp_sim_start = sim_start;
              sp_sim_stop = sim_stop;
            })
      f
  end

(* Aggregate completed spans per (category, name): count, total wall
   seconds, total simulated seconds (only spans that carried sim
   times contribute to the latter). *)
type summary = {
  su_cat : string;
  su_name : string;
  su_count : int;
  su_wall : float;
  su_sim : float;
}

let summarize recs =
  let tbl : (string * string, summary ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
       let key = (r.sp_cat, r.sp_name) in
       let sim =
         if Float.is_nan r.sp_sim_start then 0.0
         else r.sp_sim_stop -. r.sp_sim_start
       in
       let wall = r.sp_wall_stop -. r.sp_wall_start in
       match Hashtbl.find_opt tbl key with
       | Some s ->
         s :=
           {
             !s with
             su_count = !s.su_count + 1;
             su_wall = !s.su_wall +. wall;
             su_sim = !s.su_sim +. sim;
           }
       | None ->
         Hashtbl.add tbl key
           (ref
              {
                su_cat = r.sp_cat;
                su_name = r.sp_name;
                su_count = 1;
                su_wall = wall;
                su_sim = sim;
              }))
    recs;
  Hashtbl.fold (fun _ s acc -> !s :: acc) tbl []
  |> List.sort (fun a b -> compare (a.su_cat, a.su_name) (b.su_cat, b.su_name))
