(** Chrome trace-event JSON (loadable in Perfetto and
    chrome://tracing): complete/instant/metadata events over integer
    process and thread ids; timestamps in microseconds.  [validate] is
    the bundled checker enforcing what the exporters promise. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;  (** microseconds *)
      dur : float;  (** microseconds *)
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : (string * Json.t) list;
    }
  | Flow_start of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      id : int;  (** pairs a start with its finish *)
    }
  | Flow_finish of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      id : int;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

val to_json : event list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val to_string : event list -> string
val write : file:string -> event list -> unit

val validate : Json.t -> (unit, string) result
(** Structural check of a parsed trace: required fields with the right
    types on every event, non-negative durations, per-(pid, tid)-lane
    monotone timestamps, flow edges opened exactly once and finished
    exactly once with no edge pointing backwards in time, and lanes
    named "critical path" tiling contiguously (no gaps between
    segments).  Accepts both the object and bare-array forms. *)

val validate_string : string -> (unit, string) result
val validate_file : file:string -> (unit, string) result

val lanes : Json.t -> (int * int) list
(** Distinct (pid, tid) lanes carrying timing events, sorted. *)
