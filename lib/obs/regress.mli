(** Noise-aware comparison of two [BENCH_<campaign>.json] documents —
    the logic behind [bench compare OLD.json NEW.json] and the CI
    regression gate.

    Timing entries are matched by identity (every string field — kind,
    app, size, variant, fraction — plus gpus) and every time-valued
    ["*_seconds"] field is compared: simulated fields are
    deterministic and get a zero noise bound, wall-clock
    "wall_seconds" gets a bound derived from the per-repeat samples
    shipped in the entry (two relative standard deviations, floored at
    {!wall_noise_floor_pct} when the spread is unknown).  A row
    regresses only when its slowdown exceeds threshold + noise. *)

type verdict = Improved | Unchanged | Regressed | Added | Removed

val verdict_name : verdict -> string

type row = {
  rg_key : string;  (** entry identity, e.g. "kind=partitioned app=hotspot ..." *)
  rg_metric : string;  (** the time field compared, e.g. "sim_seconds" *)
  rg_old : float;  (** nan when the key is new *)
  rg_new : float;  (** nan when the key disappeared *)
  rg_delta_pct : float;  (** 100 * (new - old) / old *)
  rg_noise_pct : float;  (** noise granted on top of the threshold *)
  rg_verdict : verdict;
}

type result = {
  rows : row list;  (** old document's order, added keys last *)
  regressions : int;
  threshold_pct : float;
}

val wall_noise_floor_pct : float
(** 20: the bound granted to wall entries with no usable spread. *)

val default_threshold_pct : float
(** 15: slowdown beyond noise that fails the gate. *)

val compare_docs :
  ?threshold_pct:float -> old_doc:Json.t -> new_doc:Json.t -> unit -> result

val to_json : result -> Json.t
(** The diff artifact CI uploads. *)

val pp : Format.formatter -> result -> unit
(** Aligned table, one row per (configuration, metric). *)
