(* A registry of named counters, gauges and histograms with labels.

   This is the uniform read-out surface that subsumes the tree's
   ad-hoc mutable stats records (Machine.stats, Kcompile.stats,
   Launch_cache.stats, the engine's fault report): each of those
   records stays in place as the cheap hot-path view, and a [publish_*]
   function snapshots it into a registry under stable metric names so
   reports, the bench JSON and the CLI all read one schema.

   Names are dotted paths ("gpusim.h2d_bytes", "engine.cache.hits");
   labels are sorted (key, value) pairs, so two call sites naming the
   same labels in different orders update the same series. *)

type kind = Counter | Gauge | Histogram

type series = {
  mutable v_count : int; (* updates observed *)
  mutable v_sum : float;
  mutable v_min : float;
  mutable v_max : float;
  mutable v_last : float;
}

type t = {
  table : (string * (string * string) list, kind * series) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64 }

(* The process-wide default registry, for instrumentation points that
   have no registry to thread through. *)
let default = create ()

let reset t = Hashtbl.reset t.table

let normalize labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let series t ~kind ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some (k, s) ->
    if k <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s registered with a different kind" name);
    s
  | None ->
    let s =
      { v_count = 0; v_sum = 0.0; v_min = infinity; v_max = neg_infinity;
        v_last = 0.0 }
    in
    Hashtbl.add t.table key (kind, s);
    s

let update s v =
  s.v_count <- s.v_count + 1;
  s.v_sum <- s.v_sum +. v;
  if v < s.v_min then s.v_min <- v;
  if v > s.v_max then s.v_max <- v;
  s.v_last <- v

let incr t ?labels ?(by = 1) name =
  update (series t ~kind:Counter ?labels name) (float_of_int by)

let set t ?labels name v =
  let s = series t ~kind:Gauge ?labels name in
  update s v

let observe t ?labels name v =
  update (series t ~kind:Histogram ?labels name) v

(* --- Read-out ---------------------------------------------------------- *)

type sample = {
  m_name : string;
  m_labels : (string * string) list;
  m_kind : kind;
  m_count : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_last : float;
}

(* The headline value of a series: cumulative for counters, most
   recent for gauges, the sum for histograms (count/min/max qualify
   it). *)
let value s =
  match s.m_kind with
  | Counter -> s.m_sum
  | Gauge -> s.m_last
  | Histogram -> s.m_sum

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) (kind, s) acc ->
       {
         m_name = name;
         m_labels = labels;
         m_kind = kind;
         m_count = s.v_count;
         m_sum = s.v_sum;
         m_min = s.v_min;
         m_max = s.v_max;
         m_last = s.v_last;
       }
       :: acc)
    t.table []
  |> List.sort (fun a b -> compare (a.m_name, a.m_labels) (b.m_name, b.m_labels))

let find t ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some (kind, s) ->
    Some
      {
        m_name = name;
        m_labels = normalize labels;
        m_kind = kind;
        m_count = s.v_count;
        m_sum = s.v_sum;
        m_min = s.v_min;
        m_max = s.v_max;
        m_last = s.v_last;
      }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* One JSON object per series; histograms carry their distribution
   fields, counters and gauges just their value. *)
let to_json t =
  Json.List
    (List.map
       (fun s ->
          let base =
            [
              ("name", Json.Str s.m_name);
              ("kind", Json.Str (kind_name s.m_kind));
            ]
          in
          let labels =
            match s.m_labels with
            | [] -> []
            | l ->
              [ ("labels",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) l)) ]
          in
          let v = value s in
          let payload =
            if Float.is_integer v && Float.abs v < 1e15 then
              [ ("value", Json.Int (int_of_float v)) ]
            else [ ("value", Json.Float v) ]
          in
          let dist =
            match s.m_kind with
            | Histogram ->
              [
                ("count", Json.Int s.m_count);
                ("min", Json.Float s.m_min);
                ("max", Json.Float s.m_max);
              ]
            | Counter | Gauge -> []
          in
          Json.Obj (base @ labels @ payload @ dist))
       (snapshot t))
