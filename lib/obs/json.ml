(* Self-contained JSON: a value type, a pretty emitter, and a minimal
   strict parser.

   The emitter is the single source of truth for every JSON artifact
   the tree produces (BENCH_<campaign>.json reports, Chrome traces,
   profile reports); the parser exists so those artifacts can be
   *checked* — round-trip tests for the escaper and structural
   validation of exported traces — without dragging a JSON package
   into the build. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Emission ---------------------------------------------------------- *)

(* Escape per RFC 8259: the two mandatory characters plus short forms
   for the common control characters, and \u00XX for every remaining
   code point below U+0020.  Bytes >= 0x20 pass through untouched
   (strings are assumed UTF-8). *)
let escape buf s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s

(* Shortest decimal that round-trips; JSON has no NaN/infinity, so
   non-finite values serialize as null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* "%g" can print "1" or "1e+06": both are valid JSON numbers. *)
    s

let rec emit buf indent j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_string buf ",\n";
         pad (indent + 2);
         emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string buf ",\n";
         pad (indent + 2);
         Buffer.add_char buf '"';
         escape buf k;
         Buffer.add_string buf "\": ";
         emit buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ~file j =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j))

(* --- Parsing ----------------------------------------------------------- *)

exception Parse_error of string

(* Recursive-descent parser over the whole input string.  Strict where
   it matters for validation (escape sequences, literals, structure);
   numbers are handed to [int_of_string]/[float_of_string] after a
   permissive scan. *)
type cursor = { src : string; mutable pos : int }

let error cur fmt =
  Printf.ksprintf
    (fun m -> raise (Parse_error (Printf.sprintf "at byte %d: %s" cur.pos m)))
    fmt

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let continue_ = ref true in
  while !continue_ do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | _ -> continue_ := false
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> error cur "expected %C, found %C" c c'
  | None -> error cur "expected %C, found end of input" c

let expect_lit cur lit value =
  let n = String.length lit in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = lit
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur "invalid literal (expected %s)" lit

(* UTF-8 encode one scalar value (escape decoding). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 cur =
  let digit () =
    match peek cur with
    | Some c ->
      advance cur;
      (match c with
       | '0' .. '9' -> Char.code c - Char.code '0'
       | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
       | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
       | _ -> error cur "invalid \\u escape digit %C" c)
    | None -> error cur "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | None -> error cur "truncated escape"
       | Some c ->
         advance cur;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let u = hex4 cur in
            (* Combine a high surrogate with its following low
               surrogate; a lone surrogate is a validation failure. *)
            if u >= 0xD800 && u <= 0xDBFF then begin
              expect cur '\\';
              expect cur 'u';
              let lo = hex4 cur in
              if lo < 0xDC00 || lo > 0xDFFF then
                error cur "high surrogate not followed by a low surrogate";
              add_utf8 buf
                (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if u >= 0xDC00 && u <= 0xDFFF then
              error cur "lone low surrogate"
            else add_utf8 buf u
          | c -> error cur "invalid escape \\%C" c));
      go ()
    | Some c when Char.code c < 0x20 ->
      error cur "raw control character 0x%02x in string" (Char.code c)
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let continue_ = ref true in
  while !continue_ do
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') -> advance cur
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur
    | _ -> continue_ := false
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error cur "invalid number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> error cur "invalid number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          Obj (List.rev ((k, v) :: acc))
        | _ -> error cur "expected ',' or '}' in object"
      in
      fields []
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List (List.rev (v :: acc))
        | _ -> error cur "expected ',' or ']' in array"
      in
      items []
    end
  | Some 't' -> expect_lit cur "true" (Bool true)
  | Some 'f' -> expect_lit cur "false" (Bool false)
  | Some 'n' -> expect_lit cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur "unexpected character %C" c

let parse s =
  let cur = { src = s; pos = 0 } in
  try
    let v = parse_value cur in
    skip_ws cur;
    (match peek cur with
     | Some c -> error cur "trailing garbage starting with %C" c
     | None -> ());
    Ok v
  with Parse_error m -> Error m

(* --- Accessors (for validators and tests) ------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
