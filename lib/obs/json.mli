(** Self-contained JSON value type, pretty emitter and strict parser.

    The emitter backs every JSON artifact in the tree
    ([BENCH_<campaign>.json], Chrome traces, profile reports); string
    escaping covers the full mandatory set (the quote, the backslash
    and every control character U+0000–U+001F).  Non-finite floats
    serialize as [null].
    The parser is the base of the bundled trace checker and of the
    round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write : file:string -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document.  Rejects raw control
    characters in strings, bad escapes, lone surrogates and trailing
    garbage — everything the emitter must never produce. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k], if any. *)

val to_number : t -> float option
(** [Int] or [Float] as a float. *)
