(* Chrome trace-event JSON (the format Perfetto and chrome://tracing
   load): a {"traceEvents": [...]} document of complete ("X"), instant
   ("i") and metadata ("M") events.  Processes and threads are plain
   integer ids named through metadata events; the exporters map
   simulated devices to processes and execution engines to threads.

   Timestamps and durations are in microseconds, as the format
   requires.  [validate] is the bundled checker: it re-parses an
   exported document and enforces the structural invariants the
   exporters promise (field presence and types, non-negative
   durations, per-lane monotone timestamps, flow edges paired and
   never pointing backwards in time, critical-path lanes tiling
   contiguously). *)

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float; (* microseconds *)
      dur : float; (* microseconds *)
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      args : (string * Json.t) list;
    }
  | Flow_start of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      id : int; (* pairs a start with its finish *)
    }
  | Flow_finish of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : float;
      id : int;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

let args_json = function [] -> [] | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete e ->
    Json.Obj
      ([
        ("name", Json.Str e.name);
        ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
        ("ph", Json.Str "X");
        ("pid", Json.Int e.pid);
        ("tid", Json.Int e.tid);
        ("ts", Json.Float e.ts);
        ("dur", Json.Float e.dur);
      ]
       @ args_json e.args)
  | Instant e ->
    Json.Obj
      ([
        ("name", Json.Str e.name);
        ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("pid", Json.Int e.pid);
        ("tid", Json.Int e.tid);
        ("ts", Json.Float e.ts);
      ]
       @ args_json e.args)
  | Flow_start e ->
    Json.Obj
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
        ("ph", Json.Str "s");
        ("id", Json.Int e.id);
        ("pid", Json.Int e.pid);
        ("tid", Json.Int e.tid);
        ("ts", Json.Float e.ts);
      ]
  | Flow_finish e ->
    Json.Obj
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
        ("ph", Json.Str "f");
        (* bind the arrow to the enclosing slice's start *)
        ("bp", Json.Str "e");
        ("id", Json.Int e.id);
        ("pid", Json.Int e.pid);
        ("tid", Json.Int e.tid);
        ("ts", Json.Float e.ts);
      ]
  | Process_name e ->
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int e.pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str e.name) ]);
      ]
  | Thread_name e ->
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int e.pid);
        ("tid", Json.Int e.tid);
        ("args", Json.Obj [ ("name", Json.Str e.name) ]);
      ]

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string events = Json.to_string (to_json events)
let write ~file events = Json.write ~file (to_json events)

(* --- Validation -------------------------------------------------------- *)

let validate_events events =
  (* Last timestamp seen per (pid, tid) lane, for the monotonicity
     check over timing events. *)
  let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  (* Flow bookkeeping: each id must open ("s") exactly once before its
     single finish ("f"), and the edge must not point backwards in
     time. *)
  let flow_start : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let flow_done : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Lanes named "critical path" promise contiguous tiling: each
     complete event starts where the previous one ended. *)
  let lane_names : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
  let lane_end : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_event i ev =
    let field k =
      match Json.member k ev with
      | Some v -> Ok v
      | None -> err "event %d: missing field %S" i k
    in
    let int_field k =
      match field k with
      | Error _ as e -> e
      | Ok (Json.Int v) -> Ok v
      | Ok _ -> err "event %d: field %S is not an integer" i k
    in
    let num_field k =
      match field k with
      | Error _ as e -> e
      | Ok v -> (
          match Json.to_number v with
          | Some f -> Ok f
          | None -> err "event %d: field %S is not a number" i k)
    in
    let str_field k =
      match field k with
      | Error _ as e -> e
      | Ok (Json.Str s) -> Ok s
      | Ok _ -> err "event %d: field %S is not a string" i k
    in
    let ( let* ) = Result.bind in
    let* name = str_field "name" in
    let* ph = str_field "ph" in
    let* pid = int_field "pid" in
    let* tid = int_field "tid" in
    match ph with
    | "M" ->
      (if name = "thread_name" then
         match Json.member "args" ev with
         | Some args -> (
             match Json.member "name" args with
             | Some (Json.Str n) -> Hashtbl.replace lane_names (pid, tid) n
             | _ -> ())
         | None -> ());
      Ok ()
    | "X" | "i" ->
      let* ts = num_field "ts" in
      if not (Float.is_finite ts) then err "event %d: non-finite ts" i
      else
        let* dur =
          if ph = "X" then num_field "dur" else Ok 0.0
        in
        if not (Float.is_finite dur) then err "event %d: non-finite dur" i
        else if dur < 0.0 then err "event %d: negative dur %g" i dur
        else begin
          let lane = (pid, tid) in
          match Hashtbl.find_opt last_ts lane with
          | Some prev when ts < prev ->
            err
              "event %d: lane (pid=%d, tid=%d) timestamp %g before %g \
               (not monotone)"
              i pid tid ts prev
          | _ ->
            Hashtbl.replace last_ts lane ts;
            if ph = "X" && Hashtbl.find_opt lane_names lane = Some "critical path"
            then begin
              let tol = 1e-6 +. (1e-9 *. Float.abs ts) in
              match Hashtbl.find_opt lane_end lane with
              | Some stop when Float.abs (ts -. stop) > tol ->
                err
                  "event %d: critical-path lane (pid=%d, tid=%d) has a gap: \
                   segment starts at %g but the previous ended at %g"
                  i pid tid ts stop
              | _ ->
                Hashtbl.replace lane_end lane (ts +. dur);
                Ok ()
            end
            else Ok ()
        end
    | "s" | "f" ->
      let* ts = num_field "ts" in
      let* id = int_field "id" in
      if not (Float.is_finite ts) then err "event %d: non-finite ts" i
      else if ph = "s" then
        if Hashtbl.mem flow_start id then
          err "event %d: flow %d started twice" i id
        else begin
          Hashtbl.replace flow_start id ts;
          Ok ()
        end
      else begin
        match Hashtbl.find_opt flow_start id with
        | None -> err "event %d: flow %d finishes before it starts" i id
        | Some _ when Hashtbl.mem flow_done id ->
          err "event %d: flow %d finished twice" i id
        | Some start when ts < start ->
          err
            "event %d: flow %d points backwards in time (%g before its \
             start %g)"
            i id ts start
        | Some _ ->
          Hashtbl.replace flow_done id ();
          Ok ()
      end
    | ph -> err "event %d: unknown phase %S" i ph
  in
  let rec go i = function
    | [] ->
      Hashtbl.fold
        (fun id _ acc ->
           match acc with
           | Error _ -> acc
           | Ok () ->
             if Hashtbl.mem flow_done id then Ok ()
             else err "flow %d never finishes (dangling edge)" id)
        flow_start (Ok ())
    | ev :: rest -> (
        match check_event i ev with
        | Error _ as e -> e
        | Ok () -> go (i + 1) rest)
  in
  go 0 events

let validate json =
  match json with
  | Json.Obj _ -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) -> validate_events events
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "missing \"traceEvents\" array")
  | Json.List events ->
    (* The bare-array form is also legal Chrome trace JSON. *)
    validate_events events
  | _ -> Error "trace must be an object or an array"

let validate_string s =
  match Json.parse s with
  | Error m -> Error ("not valid JSON: " ^ m)
  | Ok j -> validate j

let validate_file ~file =
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string s

(* Distinct (pid, tid) lanes that carry timing events, for tests. *)
let lanes json =
  let events =
    match json with
    | Json.Obj _ -> (
        match Json.member "traceEvents" json with
        | Some (Json.List e) -> e
        | _ -> [])
    | Json.List e -> e
    | _ -> []
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
       match (Json.member "ph" ev, Json.member "pid" ev, Json.member "tid" ev) with
       | Some (Json.Str ("X" | "i")), Some (Json.Int pid), Some (Json.Int tid)
         -> Hashtbl.replace tbl (pid, tid) ()
       | _ -> ())
    events;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
