(* Causal DAG of one simulated run: every timeline operation becomes a
   node carrying its scheduling constraints — the causal predecessors
   (events, stream ordering, the host issue op) and the resources it
   occupied — recorded at the source as the simulator schedules it.

   The recording order is a valid topological order by construction:
   a dependency can only be expressed as a node id once the dependency
   has been recorded, and the simulator schedules an operation only
   after every constraint it waits on is known.  Two things follow:

   - the *critical path* is an exact backward walk: starting from the
     node with the latest finish, repeatedly step to the predecessor
     whose finish equals the node's constraint time.  Because every
     node records [ready] (the max over its predecessors' finishes)
     and [start >= ready] (the gap is contention wait), the emitted
     segments tile [0, makespan] exactly — per-category attribution
     telescopes to the makespan with no residual;

   - *what-if replay* is a single forward pass: rescale one category's
     durations (or link occupancies) and recompute every start as the
     max over the new predecessor finishes, per-resource ready times
     and per-link serial admission.  Links replay in recorded
     (admission) order, so backfill reordering is approximated — the
     replay of the identity transform can drift slightly from the
     recorded makespan on heavily backfilled schedules; [analysis]
     reports that drift so callers can judge the prediction.

   The builder is bounded: past [capacity] nodes it stops recording
   and counts the drops.  A truncated DAG would silently attribute
   nonsense, so the drop count travels with the DAG and every consumer
   is expected to warn loudly when it is non-zero. *)

type node = {
  n_id : int;
  n_label : string;  (* display name: "h2d", "kernel", job name, ... *)
  n_category : string;  (* attribution bucket: compute, h2d, p2p, ... *)
  n_phase : string;  (* engine phase active at record time, "" = none *)
  n_resources : string list;  (* engines held for [start, finish] *)
  n_ready : float;  (* max over predecessor finishes (constraint time) *)
  n_start : float;  (* actual start; start - ready = contention wait *)
  n_finish : float;
  n_fixed : float;  (* latency part of the duration: bandwidth-invariant *)
  n_legs : (string * float) list;  (* (link, occupancy seconds) held *)
  n_deps : int list;  (* causal predecessors (events, streams, issue) *)
  n_rpred : int list;  (* in-order predecessor per resource *)
  n_wait : string;  (* category of a [ready, start) stall, e.g. link_wait *)
}

type dag = { d_nodes : node array; d_dropped : int }

let nodes d = d.d_nodes
let dag_dropped d = d.d_dropped

(* --- Builder ----------------------------------------------------------- *)

type builder = {
  mutable b_nodes : node list;  (* newest first *)
  mutable b_count : int;
  b_capacity : int;
  mutable b_dropped : int;
  b_last_res : (string, int) Hashtbl.t;  (* resource -> last node id *)
  b_by_finish : (float, int) Hashtbl.t;  (* finish time -> newest node id *)
}

let default_capacity = 1_048_576

let builder ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Causal.builder: capacity must be positive";
  {
    b_nodes = [];
    b_count = 0;
    b_capacity = capacity;
    b_dropped = 0;
    b_last_res = Hashtbl.create 32;
    b_by_finish = Hashtbl.create 4096;
  }

(* Resolve an event (a completion time) to the node that produced it;
   [None] for times no recorded node finishes at (e.g. an empty
   multi-segment copy returns the host clock).  When several nodes
   share a finish time the newest wins — they impose the same
   constraint on a successor's start. *)
let node_at b t = Hashtbl.find_opt b.b_by_finish t

let last_on b resource = Hashtbl.find_opt b.b_last_res resource

let add b ~label ~category ~phase ~resources ~ready ~start ~finish ~fixed
    ~legs ~deps ~wait =
  if b.b_count >= b.b_capacity then begin
    b.b_dropped <- b.b_dropped + 1;
    -1
  end
  else begin
    let id = b.b_count in
    let rpred =
      List.filter_map (fun r -> Hashtbl.find_opt b.b_last_res r) resources
      |> List.sort_uniq compare
    in
    let deps = List.sort_uniq compare (List.filter (fun d -> d >= 0) deps) in
    let n =
      {
        n_id = id;
        n_label = label;
        n_category = category;
        n_phase = phase;
        n_resources = resources;
        n_ready = ready;
        n_start = start;
        n_finish = finish;
        n_fixed = fixed;
        n_legs = legs;
        n_deps = deps;
        n_rpred = rpred;
        n_wait = (if wait = "" then "wait" else wait);
      }
    in
    b.b_nodes <- n :: b.b_nodes;
    b.b_count <- id + 1;
    List.iter (fun r -> Hashtbl.replace b.b_last_res r id) resources;
    Hashtbl.replace b.b_by_finish finish id;
    id
  end

let builder_dropped b = b.b_dropped
let builder_count b = b.b_count

let dag b =
  { d_nodes = Array.of_list (List.rev b.b_nodes); d_dropped = b.b_dropped }

(* --- Critical path ----------------------------------------------------- *)

type segment = {
  sg_start : float;
  sg_finish : float;
  sg_category : string;
  sg_label : string;
  sg_node : int;  (* node id, or -1 for gap (wait / idle) segments *)
}

type analysis = {
  an_makespan : float;
  an_segments : segment list;  (* adjacent, earliest first, tile [0, T] *)
  an_by_category : (string * float) list;  (* sums exactly to makespan *)
  an_replay_drift : float;  (* |replay(id) - makespan| / makespan *)
  an_nodes : int;
  an_dropped : int;
}

let duration n = n.n_finish -. n.n_start

(* Forward replay of the recorded schedule under a transform.  [dur_of]
   gives each node's new duration, [leg_of] its new occupancy on one
   leg.  Nodes are processed in recorded order (a topological order);
   per-link admission is serial in that order — the backfill
   approximation documented above. *)
let replay d ~dur_of ~leg_of =
  let n = Array.length d.d_nodes in
  let finish = Array.make n 0.0 in
  let res_ready : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let link_ready : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let makespan = ref 0.0 in
  Array.iter
    (fun nd ->
       let ready =
         List.fold_left
           (fun acc dep -> Float.max acc finish.(dep))
           0.0 nd.n_deps
       in
       let ready =
         List.fold_left
           (fun acc r ->
              match Hashtbl.find_opt res_ready r with
              | None -> acc
              | Some t -> Float.max acc t)
           ready nd.n_resources
       in
       let start =
         List.fold_left
           (fun acc (l, _) ->
              match Hashtbl.find_opt link_ready l with
              | None -> acc
              | Some t -> Float.max acc t)
           ready nd.n_legs
       in
       let fin = start +. dur_of nd in
       finish.(nd.n_id) <- fin;
       List.iter (fun r -> Hashtbl.replace res_ready r fin) nd.n_resources;
       List.iter
         (fun (l, occ) -> Hashtbl.replace link_ready l (start +. leg_of nd l occ))
         nd.n_legs;
       if fin > !makespan then makespan := fin)
    d.d_nodes;
  !makespan

let identity_replay d =
  replay d ~dur_of:duration ~leg_of:(fun _ _ occ -> occ)

let analyze d =
  if Array.length d.d_nodes = 0 then
    {
      an_makespan = 0.0;
      an_segments = [];
      an_by_category = [];
      an_replay_drift = 0.0;
      an_nodes = 0;
      an_dropped = d.d_dropped;
    }
  else begin
    let eps_of t = 1e-9 *. Float.max 1e-3 (Float.abs t) in
    (* Walk tail: the node with the latest finish (newest wins ties,
       matching [node_at]). *)
    let tail =
      Array.fold_left
        (fun acc n ->
           match acc with
           | None -> Some n
           | Some a -> if n.n_finish >= a.n_finish then Some n else acc)
        None d.d_nodes
      |> Option.get
    in
    let makespan = tail.n_finish in
    let segments = ref [] in
    let emit ~start ~finish ~category ~label ~node =
      if finish > start then
        segments :=
          {
            sg_start = start;
            sg_finish = finish;
            sg_category = category;
            sg_label = label;
            sg_node = node;
          }
          :: !segments
    in
    (* Backward walk.  [frontier] is the time everything later has
       already been attributed down to; each step attributes
       [cur.ready, frontier] and moves the frontier to [cur.ready].
       Predecessor ids are always smaller than the node's own id, so
       the walk terminates. *)
    let rec walk cur frontier =
      (* A predecessor can finish strictly before the frontier when the
         binding constraint was a time no node produced (an empty copy's
         event, the initial host clock): attribute the residue as idle
         rather than inventing causality. *)
      let frontier =
        if cur.n_finish < frontier -. eps_of frontier then begin
          emit ~start:cur.n_finish ~finish:frontier ~category:"idle"
            ~label:"idle" ~node:(-1);
          cur.n_finish
        end
        else frontier
      in
      emit ~start:cur.n_start ~finish:frontier ~category:cur.n_category
        ~label:cur.n_label ~node:cur.n_id;
      let frontier = Float.min frontier cur.n_start in
      let frontier =
        if cur.n_ready < frontier -. eps_of frontier then begin
          (* The op was admissible at [ready] but a contended resource
             (a fabric link, a device lease) delayed it to [start]. *)
          emit ~start:cur.n_ready ~finish:frontier ~category:cur.n_wait
            ~label:cur.n_wait ~node:cur.n_id;
          cur.n_ready
        end
        else Float.min frontier cur.n_ready
      in
      let pred =
        List.fold_left
          (fun acc id ->
             let p = d.d_nodes.(id) in
             match acc with
             | None -> Some p
             | Some a -> if p.n_finish > a.n_finish then Some p else acc)
          None
          (cur.n_deps @ cur.n_rpred)
      in
      match pred with
      | Some p when p.n_finish > eps_of makespan -> walk p frontier
      | _ -> emit ~start:0.0 ~finish:frontier ~category:"idle" ~label:"idle"
               ~node:(-1)
    in
    walk tail makespan;
    let by_cat : (string, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
         let prev = Option.value ~default:0.0 (Hashtbl.find_opt by_cat s.sg_category) in
         Hashtbl.replace by_cat s.sg_category (prev +. (s.sg_finish -. s.sg_start)))
      !segments;
    let by_category =
      Hashtbl.fold (fun c t acc -> (c, t) :: acc) by_cat []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let drift =
      if makespan > 0.0 then
        Float.abs (identity_replay d -. makespan) /. makespan
      else 0.0
    in
    {
      an_makespan = makespan;
      an_segments = !segments;
      an_by_category = by_category;
      an_replay_drift = drift;
      an_nodes = Array.length d.d_nodes;
      an_dropped = d.d_dropped;
    }
  end

let critical_path_length an =
  List.fold_left
    (fun acc (c, t) -> if c = "idle" then acc else acc +. t)
    0.0 an.an_by_category

(* --- What-if ------------------------------------------------------------ *)

(* Categories whose durations carry a bandwidth-variable part: the
   what-if rescales only [dur - fixed] (the wire time), never the
   latency, and rescales the link occupancies alongside. *)
let is_transfer c = c = "h2d" || c = "d2h" || c = "p2p" || c = "spill"

let what_if_categories =
  [ "compute"; "xfer"; "h2d"; "d2h"; "p2p"; "link"; "barrier"; "host" ]

(* Predicted makespan if [category]'s cost were multiplied by
   [factor] (0 = removed entirely).  Bandwidth-like categories scale
   the variable part of matching transfers plus their link
   occupancies; "link" scales only occupancies (contention), leaving
   wire time alone; everything else scales the full duration of
   matching nodes. *)
let what_if d ~category ~factor =
  let variable n f = n.n_fixed +. ((duration n -. n.n_fixed) *. f) in
  let dur_of n =
    let c = n.n_category in
    match category with
    | "compute" -> if c = "compute" then duration n *. factor else duration n
    | "xfer" -> if is_transfer c then variable n factor else duration n
    | "h2d" | "d2h" | "p2p" | "spill" ->
      if c = category then variable n factor else duration n
    | "link" -> duration n
    | "host" ->
      if c = "issue" || c = "pattern" then duration n *. factor
      else duration n
    | cat -> if c = cat then duration n *. factor else duration n
  in
  let leg_of n _ occ =
    match category with
    | "link" -> occ *. factor
    | "xfer" -> if is_transfer n.n_category then occ *. factor else occ
    | "h2d" | "d2h" | "p2p" | "spill" ->
      if n.n_category = category then occ *. factor else occ
    | _ -> occ
  in
  (* Ratio estimator: the replay's backfill approximation biases both
     the identity and the transformed replay the same way, so predict
     the *relative* change and apply it to the recorded makespan.  On
     a drift-free DAG this is the raw replay unchanged. *)
  let raw = replay d ~dur_of ~leg_of in
  let id = identity_replay d in
  let recorded =
    Array.fold_left (fun acc n -> Float.max acc n.n_finish) 0.0 d.d_nodes
  in
  if id > 0.0 && recorded > 0.0 then raw *. recorded /. id else raw

(* --- JSON round-trip ---------------------------------------------------- *)

let node_to_json n =
  Json.Obj
    [
      ("id", Json.Int n.n_id);
      ("label", Json.Str n.n_label);
      ("category", Json.Str n.n_category);
      ("phase", Json.Str n.n_phase);
      ("resources", Json.List (List.map (fun r -> Json.Str r) n.n_resources));
      ("ready", Json.Float n.n_ready);
      ("start", Json.Float n.n_start);
      ("finish", Json.Float n.n_finish);
      ("fixed", Json.Float n.n_fixed);
      ("legs",
       Json.List
         (List.map
            (fun (l, occ) ->
               Json.Obj [ ("link", Json.Str l); ("occupancy", Json.Float occ) ])
            n.n_legs));
      ("deps", Json.List (List.map (fun i -> Json.Int i) n.n_deps));
      ("rpred", Json.List (List.map (fun i -> Json.Int i) n.n_rpred));
      ("wait", Json.Str n.n_wait);
    ]

let to_json d =
  Json.Obj
    [
      ("causal_dag", Json.Int 1);
      ("dropped", Json.Int d.d_dropped);
      ("nodes", Json.List (Array.to_list (Array.map node_to_json d.d_nodes)));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let err m = Error ("Causal.of_json: " ^ m) in
  let str k o =
    match Json.member k o with Some (Json.Str s) -> Ok s | _ -> err (k ^ " missing")
  in
  let num k o =
    match Option.bind (Json.member k o) Json.to_number with
    | Some f -> Ok f
    | None -> err (k ^ " missing")
  in
  let int k o =
    match Json.member k o with Some (Json.Int i) -> Ok i | _ -> err (k ^ " missing")
  in
  let ints k o =
    match Json.member k o with
    | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int i :: tl -> go (i :: acc) tl
        | _ -> err (k ^ " must hold integers")
      in
      go [] l
    | _ -> err (k ^ " missing")
  in
  let strs k o =
    match Json.member k o with
    | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: tl -> go (s :: acc) tl
        | _ -> err (k ^ " must hold strings")
      in
      go [] l
    | _ -> err (k ^ " missing")
  in
  let node_of o =
    let* id = int "id" o in
    let* label = str "label" o in
    let* category = str "category" o in
    let* phase = str "phase" o in
    let* resources = strs "resources" o in
    let* ready = num "ready" o in
    let* start = num "start" o in
    let* finish = num "finish" o in
    let* fixed = num "fixed" o in
    let* legs =
      match Json.member "legs" o with
      | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | leg :: tl ->
            let* link = str "link" leg in
            let* occ = num "occupancy" leg in
            go ((link, occ) :: acc) tl
        in
        go [] l
      | _ -> err "legs missing"
    in
    let* deps = ints "deps" o in
    let* rpred = ints "rpred" o in
    let* wait = str "wait" o in
    Ok
      {
        n_id = id;
        n_label = label;
        n_category = category;
        n_phase = phase;
        n_resources = resources;
        n_ready = ready;
        n_start = start;
        n_finish = finish;
        n_fixed = fixed;
        n_legs = legs;
        n_deps = deps;
        n_rpred = rpred;
        n_wait = wait;
      }
  in
  match Json.member "nodes" j with
  | Some (Json.List nodes) ->
    let* dropped =
      match Json.member "dropped" j with
      | Some (Json.Int i) -> Ok i
      | _ -> Ok 0
    in
    let rec go acc i = function
      | [] -> Ok (List.rev acc)
      | o :: tl ->
        let* n = node_of o in
        if n.n_id <> i then err (Printf.sprintf "node %d out of order" n.n_id)
        else go (n :: acc) (i + 1) tl
    in
    let* nodes = go [] 0 nodes in
    List.iter
      (fun n ->
         List.iter
           (fun dep ->
              if dep < 0 || dep >= n.n_id then
                failwith
                  (Printf.sprintf
                     "Causal.of_json: node %d depends on %d (not an earlier \
                      node)"
                     n.n_id dep))
           (n.n_deps @ n.n_rpred))
      nodes;
    Ok { d_nodes = Array.of_list nodes; d_dropped = dropped }
  | _ -> err "missing nodes array"

let of_json j = try of_json j with Failure m -> Error m
