(* Noise-aware comparison of two BENCH_<campaign>.json documents: the
   regression gate behind `bench compare OLD.json NEW.json`.

   Each document's "timings" array is keyed by its identity fields
   (every string field — kind / app / size / variant / fraction — plus
   gpus), and every time-valued "*_seconds" field is compared per key:

   - simulated fields ("sim_seconds", "capped_seconds", ...) come from
     the deterministic machine model, so any change is real: the noise
     bound is zero and the bare threshold applies.
   - "wall_seconds" is real wall clock: the noise bound is derived
     from the per-repeat samples shipped in the same entry (two
     relative standard deviations, the larger of the two runs), with a
     floor for single-sample entries where the spread is unknowable.

   A row regresses when its relative slowdown exceeds threshold +
   noise — "beyond noise", not "within it".  Keys present on only one
   side are reported (Added / Removed) but never gate. *)

type verdict = Improved | Unchanged | Regressed | Added | Removed

let verdict_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

type row = {
  rg_key : string;
  rg_metric : string;  (* the time field compared, e.g. "sim_seconds" *)
  rg_old : float;  (* nan when missing *)
  rg_new : float;  (* nan when missing *)
  rg_delta_pct : float;  (* 100 * (new - old) / old; nan when missing *)
  rg_noise_pct : float;  (* noise bound granted on top of the threshold *)
  rg_verdict : verdict;
}

type result = {
  rows : row list;  (* stable order: old document's key order *)
  regressions : int;
  threshold_pct : float;
}

(* Noise floor for wall-clock entries that carry no spread information
   (single repeat): one sample says nothing about variance, so grant a
   generous bound rather than gate on timer jitter. *)
let wall_noise_floor_pct = 20.0

let default_threshold_pct = 15.0

(* --- document access ---------------------------------------------------- *)

let num k j = Option.bind (Json.member k j) Json.to_number

let timings doc =
  match Json.member "timings" doc with Some (Json.List l) -> l | _ -> []

(* Identity of one timing entry: every string-valued field (kind, app,
   size, variant, fraction, ...) plus the numeric "gpus", sorted by
   field name so key text is stable across schema evolution.  Entries
   whose identity collides (repeated measurements of one
   configuration) keep first-wins semantics. *)
let key_of entry =
  let fields = match entry with Json.Obj fs -> fs | _ -> [] in
  let ids =
    List.filter_map
      (function
        | (k, Json.Str v) -> Some (k, k ^ "=" ^ v)
        | ("gpus", v) ->
          Option.map
            (fun n -> ("gpus", Printf.sprintf "gpus=%g" n))
            (Json.to_number v)
        | _ -> None)
      fields
  in
  String.concat " " (List.map snd (List.sort compare ids))

(* A measured (gated) field: time-valued, excluding the wall-spread
   descriptors that merely qualify "wall_seconds". *)
let measured k =
  (not
     (List.mem k
        [ "wall_min_seconds"; "wall_max_seconds"; "wall_stddev_seconds" ]))
  && String.length k > 8
  && String.sub k (String.length k - 8) 8 = "_seconds"

let measured_fields entry =
  match entry with
  | Json.Obj fs ->
    List.filter_map
      (fun (k, v) ->
         if measured k && Json.to_number v <> None then Some k else None)
      fs
  | _ -> []

let index doc =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
       let k = key_of e in
       if not (Hashtbl.mem tbl k) then begin
         Hashtbl.add tbl k e;
         order := k :: !order
       end)
    (timings doc);
  (tbl, List.rev !order)

(* Relative noise (in percent) of one entry's wall measurement: two
   relative standard deviations, or the floor when the entry has no
   usable spread. *)
let wall_noise_pct entry =
  match (num "wall_stddev_seconds" entry, num "wall_seconds" entry) with
  | Some sd, Some med when med > 0.0 && sd > 0.0 ->
    Float.max wall_noise_floor_pct (200.0 *. sd /. med)
  | _ -> wall_noise_floor_pct

let compare_docs ?(threshold_pct = default_threshold_pct) ~old_doc ~new_doc ()
  =
  let old_tbl, old_order = index old_doc in
  let new_tbl, new_order = index new_doc in
  let row key metric noise =
    let v tbl = Option.bind (Hashtbl.find_opt tbl key) (num metric) in
    match (v old_tbl, v new_tbl) with
    | None, None -> None
    | Some o, None ->
      Some
        {
          rg_key = key; rg_metric = metric; rg_old = o; rg_new = nan;
          rg_delta_pct = nan; rg_noise_pct = 0.0; rg_verdict = Removed;
        }
    | None, Some n ->
      Some
        {
          rg_key = key; rg_metric = metric; rg_old = nan; rg_new = n;
          rg_delta_pct = nan; rg_noise_pct = 0.0; rg_verdict = Added;
        }
    | Some o, Some n ->
      let delta = if o = 0.0 then 0.0 else 100.0 *. (n -. o) /. o in
      let bound = threshold_pct +. noise in
      let verdict =
        if delta > bound then Regressed
        else if delta < -.bound then Improved
        else Unchanged
      in
      Some
        {
          rg_key = key; rg_metric = metric; rg_old = o; rg_new = n;
          rg_delta_pct = delta; rg_noise_pct = noise; rg_verdict = verdict;
        }
  in
  let added =
    List.filter (fun k -> not (Hashtbl.mem old_tbl k)) new_order
  in
  let rows =
    List.concat_map
      (fun key ->
         let wall_noise =
           match Hashtbl.find_opt new_tbl key with
           | Some e -> (
               match Hashtbl.find_opt old_tbl key with
               | Some old_e ->
                 Float.max (wall_noise_pct e) (wall_noise_pct old_e)
               | None -> wall_noise_pct e)
           | None -> 0.0
         in
         (* Every time-valued field either side carries; only the wall
            clock gets a noise bound — everything else comes off the
            deterministic simulated machine. *)
         let metrics =
           List.sort_uniq compare
             (List.concat_map
                (fun tbl ->
                   match Hashtbl.find_opt tbl key with
                   | Some e -> measured_fields e
                   | None -> [])
                [ old_tbl; new_tbl ])
         in
         List.filter_map
           (fun metric ->
              row key metric
                (if metric = "wall_seconds" then wall_noise else 0.0))
           metrics)
      (old_order @ added)
  in
  let regressions =
    List.length (List.filter (fun r -> r.rg_verdict = Regressed) rows)
  in
  { rows; regressions; threshold_pct }

(* --- rendering ---------------------------------------------------------- *)

let to_json r =
  Json.Obj
    [
      ("threshold_pct", Json.Float r.threshold_pct);
      ("regressions", Json.Int r.regressions);
      ( "rows",
        Json.List
          (List.map
             (fun row ->
                Json.Obj
                  [
                    ("key", Json.Str row.rg_key);
                    ("metric", Json.Str row.rg_metric);
                    ("old", Json.Float row.rg_old);
                    ("new", Json.Float row.rg_new);
                    ("delta_pct", Json.Float row.rg_delta_pct);
                    ("noise_pct", Json.Float row.rg_noise_pct);
                    ("verdict", Json.Str (verdict_name row.rg_verdict));
                  ])
             r.rows) );
    ]

let pp fmt r =
  let p f = Format.fprintf fmt f in
  p "%-44s %-12s %12s %12s %8s %7s  %s@."
    "configuration" "metric" "old" "new" "delta" "noise" "verdict";
  List.iter
    (fun row ->
       p "%-44s %-12s %12.6f %12.6f %7.1f%% %6.1f%%  %s@." row.rg_key
         row.rg_metric row.rg_old row.rg_new row.rg_delta_pct
         row.rg_noise_pct
         (verdict_name row.rg_verdict))
    r.rows;
  if r.regressions > 0 then
    p "@.%d regression(s) beyond %.0f%%+noise@." r.regressions
      r.threshold_pct
  else p "@.no regressions beyond %.0f%%+noise@." r.threshold_pct
