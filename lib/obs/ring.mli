(** Bounded ring buffer: keeps the newest [capacity] entries, drops the
    oldest on overflow and counts the drops. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Entries evicted to make room since creation (or the last [clear]). *)

val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Surviving entries, oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
