(** Per-run profile report: device utilization, byte matrix, counters
    and span summary.  Plain data filled by collectors in higher
    layers; rendered as text or JSON. *)

type device_row = {
  dr_device : int;
  dr_compute : float;  (** busy seconds on the compute engine *)
  dr_copy_in : float;
  dr_copy_out : float;
  dr_idle : float;  (** span minus engine busy time, clamped at 0 *)
  dr_util : float;  (** busy fraction of the span, clamped to [0, 1] *)
  dr_lost : bool;
}

type t = {
  rp_elapsed : float;
  rp_devices : device_row list;
  rp_host_busy : (string * float) list;
  rp_fabric_busy : float;
  rp_matrix : ((int * int) * int) list;
      (** bytes per (src, dst) device pair; -1 is the host *)
  rp_counters : (string * float) list;
  rp_spans : Span.summary list;
  rp_trace_dropped : int;
}

val matrix_totals : t -> int * int * int
(** (h2d, d2h, p2p) byte totals of the matrix — must reconcile exactly
    with [Machine.stats]. *)

val endpoint_name : int -> string
(** ["host"] for -1, ["devN"] otherwise. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Json.t
