(** Causal DAG of one simulated run: every timeline operation is a
    node recording its scheduling constraints — causal predecessors
    (events, stream ordering, the issuing host op), the resources it
    occupied, and any contention stall between its constraint time and
    its actual start.  The recording order is a topological order, so
    the critical path is an exact backward walk (per-category
    attribution tiles [0, makespan] with no residual) and what-if
    replay is a single forward pass. *)

type node = {
  n_id : int;
  n_label : string;  (** display name *)
  n_category : string;  (** attribution bucket: compute, h2d, p2p, ... *)
  n_phase : string;  (** engine phase active at record time, "" = none *)
  n_resources : string list;  (** engines held for [start, finish] *)
  n_ready : float;  (** max over predecessor finishes (constraint time) *)
  n_start : float;  (** actual start; [start - ready] is contention wait *)
  n_finish : float;
  n_fixed : float;  (** bandwidth-invariant (latency) part of the duration *)
  n_legs : (string * float) list;  (** (link, occupancy seconds) held *)
  n_deps : int list;  (** causal predecessor node ids *)
  n_rpred : int list;  (** in-order predecessor per occupied resource *)
  n_wait : string;  (** category of a [ready, start) stall *)
}

type dag

val nodes : dag -> node array
val dag_dropped : dag -> int

(** {1 Builder} — bounded; past capacity nodes are dropped (newest
    lost) and counted, since a truncated DAG must be detectable. *)

type builder

val builder : ?capacity:int -> unit -> builder
(** Default capacity 1,048,576 nodes. *)

val add :
  builder ->
  label:string ->
  category:string ->
  phase:string ->
  resources:string list ->
  ready:float ->
  start:float ->
  finish:float ->
  fixed:float ->
  legs:(string * float) list ->
  deps:int list ->
  wait:string ->
  int
(** Record one operation; returns its node id, or -1 when dropped.
    Negative ids in [deps] are filtered out, so a dropped dependency
    degrades to a missing edge rather than an error.  Resource-order
    predecessors are derived from the last node recorded on each
    resource. *)

val node_at : builder -> float -> int option
(** Resolve a completion time to the node that produced it (the newest
    on ties); [None] for times no recorded node finishes at. *)

val last_on : builder -> string -> int option
(** Last node recorded on a resource. *)

val builder_dropped : builder -> int
val builder_count : builder -> int
val dag : builder -> dag

(** {1 Critical path} *)

type segment = {
  sg_start : float;
  sg_finish : float;
  sg_category : string;
  sg_label : string;
  sg_node : int;  (** node id, or -1 for gap (wait / idle) segments *)
}

type analysis = {
  an_makespan : float;
  an_segments : segment list;
      (** adjacent, earliest first; tiles [0, makespan] exactly *)
  an_by_category : (string * float) list;
      (** per-category attribution, largest first; sums to the makespan *)
  an_replay_drift : float;
      (** relative drift of the identity replay vs. the recorded
          makespan — the backfill approximation's fidelity bound *)
  an_nodes : int;
  an_dropped : int;  (** non-zero means the DAG is truncated: warn *)
}

val analyze : dag -> analysis

val critical_path_length : analysis -> float
(** Attributed time excluding idle — always <= the makespan. *)

(** {1 What-if} *)

val replay :
  dag ->
  dur_of:(node -> float) ->
  leg_of:(node -> string -> float -> float) ->
  float
(** Forward replay under a transform: [dur_of] gives each node's new
    duration, [leg_of] its new occupancy on one leg.  Links replay in
    recorded (admission) order — backfill reordering is approximated. *)

val identity_replay : dag -> float

val what_if : dag -> category:string -> factor:float -> float
(** Predicted makespan with [category]'s cost multiplied by [factor]
    (0 = removed).  Bandwidth-like categories ("h2d", "d2h", "p2p",
    "spill", "xfer") rescale the variable part of matching transfers
    plus their link occupancies; "link" rescales only occupancies
    (pure contention); "compute", "barrier", "host" and any literal
    category rescale full durations.  The prediction is
    drift-corrected: the replay estimates the {e relative} change and
    applies it to the recorded makespan, cancelling the backfill
    approximation's shared bias (a no-op on drift-free DAGs). *)

val what_if_categories : string list
(** The standard categories the CLI sweeps. *)

val to_json : dag -> Json.t
val of_json : Json.t -> (dag, string) result
