(** Registry of named counters, gauges and histograms with labels —
    the uniform read-out behind the tree's ad-hoc stats records (which
    stay in place as hot-path views; [publish_*] helpers in their
    owning modules snapshot them in here under stable names). *)

type t

val create : unit -> t

val default : t
(** Process-wide registry for points with nothing to thread through. *)

val reset : t -> unit

val incr : t -> ?labels:(string * string) list -> ?by:int -> string -> unit
(** Counter: cumulative. *)

val set : t -> ?labels:(string * string) list -> string -> float -> unit
(** Gauge: most recent value wins. *)

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Histogram: tracks count/sum/min/max. *)

type kind = Counter | Gauge | Histogram

type sample = {
  m_name : string;
  m_labels : (string * string) list;  (** sorted by key *)
  m_kind : kind;
  m_count : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_last : float;
}

val value : sample -> float
(** Headline value: cumulative sum for counters, last for gauges, sum
    for histograms. *)

val snapshot : t -> sample list
(** All series, sorted by (name, labels). *)

val find : t -> ?labels:(string * string) list -> string -> sample option
val kind_name : kind -> string

val to_json : t -> Json.t
(** One object per series (name, kind, labels, value; histograms add
    count/min/max). *)
