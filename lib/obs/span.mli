(** Hierarchical spans recording wall-clock and (optionally) simulated
    time.

    Disabled by default: every instrumentation point costs one
    load-and-branch until {!set_enabled}[ true].  Completed spans land
    in a bounded ring buffer (oldest dropped, drops counted).  The
    span stack lives on the calling domain; instrument host-side
    orchestration only, never worker-domain code. *)

type record = {
  sp_id : int;
  sp_parent : int;  (** id of the enclosing span, or -1 for roots *)
  sp_depth : int;
  sp_name : string;
  sp_cat : string;
  sp_wall_start : float;
  sp_wall_stop : float;
  sp_sim_start : float;  (** nan when the span carried no sim sampler *)
  sp_sim_stop : float;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val set_clock : (unit -> float) -> unit
(** Install the wall clock (default [Sys.time]; entry points linking
    unix install [Unix.gettimeofday]). *)

val set_capacity : int -> unit
(** Replace the store with an empty ring of the given capacity. *)

val with_span : ?cat:string -> ?sim:(unit -> float) -> string -> (unit -> 'a) -> 'a
(** Run the thunk under a span.  [sim] is sampled at entry and exit
    (e.g. the simulated host clock).  No-op indirection when spans are
    disabled; the span is recorded even when the thunk raises. *)

val records : unit -> record list
(** Completed spans, in completion order (children before parents). *)

val dropped : unit -> int
val reset : unit -> unit

(** Aggregation per (category, name). *)
type summary = {
  su_cat : string;
  su_name : string;
  su_count : int;
  su_wall : float;  (** total wall seconds *)
  su_sim : float;  (** total simulated seconds (spans with samplers) *)
}

val summarize : record list -> summary list
(** Sorted by (category, name). *)
