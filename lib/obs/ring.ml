(* A bounded ring buffer that drops the *oldest* entries on overflow
   and counts what it dropped.

   Every unbounded in-memory log in the tree (the machine's event
   trace, per-engine operation logs, the span store) sits on one of
   these so that enabling observability on a paper-scale sweep costs a
   fixed amount of memory: the newest [capacity] entries survive, and
   the report states how many fell off the front. *)

type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of the oldest live entry *)
  mutable length : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; length = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.length
let dropped t = t.dropped

let push t x =
  let cap = Array.length t.slots in
  if t.length = cap then begin
    (* Overwrite the oldest slot and advance the head. *)
    t.slots.(t.head) <- Some x;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.slots.((t.head + t.length) mod cap) <- Some x;
    t.length <- t.length + 1
  end

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.length <- 0;
  t.dropped <- 0

(* Oldest first. *)
let to_list t =
  let cap = Array.length t.slots in
  List.init t.length (fun i ->
      match t.slots.((t.head + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let iter t f = List.iter f (to_list t)
