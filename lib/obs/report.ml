(* Per-run profile report: where did the simulated time and the bytes
   go?  The report is plain data — collectors in the higher layers
   (Mekong.Profile) fill it from a machine and a run result — rendered
   either as text tables for the CLI or as JSON for the bench reports
   and CI artifacts. *)

type device_row = {
  dr_device : int;
  dr_compute : float; (* busy seconds on the compute engine *)
  dr_copy_in : float; (* busy seconds on the inbound copy engine *)
  dr_copy_out : float; (* busy seconds on the outbound copy engine *)
  dr_idle : float; (* span minus engine busy time, clamped at 0 *)
  dr_util : float; (* fraction of the span any engine was busy, <= 1 *)
  dr_lost : bool; (* device fell off the bus during the run *)
}

type t = {
  rp_elapsed : float; (* total simulated span of the run *)
  rp_devices : device_row list;
  rp_host_busy : (string * float) list; (* host seconds per category *)
  rp_fabric_busy : float;
  rp_matrix : ((int * int) * int) list;
      (* bytes moved per (src, dst) device pair; -1 is the host *)
  rp_counters : (string * float) list;
      (* flattened metric read-out: cache, executor, fault counters *)
  rp_spans : Span.summary list;
  rp_trace_dropped : int; (* events evicted from the bounded trace *)
}

let endpoint_name d = if d < 0 then "host" else Printf.sprintf "dev%d" d

(* Totals of the byte matrix split by transfer direction; these must
   reconcile exactly with Machine.stats (h2d/d2h/p2p bytes) — the
   acceptance check behind `mekongc profile`. *)
let matrix_totals t =
  List.fold_left
    (fun (h2d, d2h, p2p) ((src, dst), bytes) ->
       if src < 0 then (h2d + bytes, d2h, p2p)
       else if dst < 0 then (h2d, d2h + bytes, p2p)
       else (h2d, d2h, p2p + bytes))
    (0, 0, 0) t.rp_matrix

let line width = String.make width '-'

let pp fmt t =
  let p f = Format.fprintf fmt f in
  p "profile: %.6f s simulated@." t.rp_elapsed;
  p "@.per-device breakdown (seconds; idle = span - busy, util = busy/span)@.";
  p "%s@." (line 74);
  p "%-8s %10s %10s %10s %10s %8s %6s@." "device" "compute" "copy_in"
    "copy_out" "idle" "util" "state";
  p "%s@." (line 74);
  List.iter
    (fun d ->
       p "%-8s %10.6f %10.6f %10.6f %10.6f %7.1f%% %6s@."
         (endpoint_name d.dr_device) d.dr_compute d.dr_copy_in d.dr_copy_out
         d.dr_idle (d.dr_util *. 100.0)
         (if d.dr_lost then "LOST" else "ok"))
    t.rp_devices;
  p "%s@." (line 74);
  (match t.rp_host_busy with
   | [] -> ()
   | busy ->
     p "@.host busy (seconds per category)@.";
     List.iter (fun (cat, s) -> p "  %-12s %12.6f@." cat s) busy);
  if t.rp_fabric_busy > 0.0 then
    p "@.fabric busy: %.6f s@." t.rp_fabric_busy;
  (match t.rp_matrix with
   | [] -> p "@.no data movement recorded@."
   | matrix ->
     p "@.bytes moved per (src -> dst) pair@.";
     p "%s@." (line 40);
     List.iter
       (fun ((src, dst), bytes) ->
          p "  %-6s -> %-6s %14d B@." (endpoint_name src) (endpoint_name dst)
            bytes)
       matrix;
     p "%s@." (line 40);
     let h2d, d2h, p2p = matrix_totals t in
     p "  totals: h2d=%dB d2h=%dB p2p=%dB@." h2d d2h p2p);
  (match t.rp_counters with
   | [] -> ()
   | counters ->
     p "@.counters@.";
     List.iter
       (fun (name, v) ->
          if Float.is_integer v then p "  %-36s %14d@." name (int_of_float v)
          else p "  %-36s %14.6f@." name v)
       counters);
  (match t.rp_spans with
   | [] -> ()
   | spans ->
     p "@.span summary (per phase: count, wall seconds, simulated seconds)@.";
     p "%s@." (line 74);
     p "%-34s %8s %12s %12s@." "phase" "count" "wall(s)" "sim(s)";
     p "%s@." (line 74);
     List.iter
       (fun (s : Span.summary) ->
          p "%-34s %8d %12.6f %12.6f@."
            (if s.su_cat = "" then s.su_name else s.su_cat ^ "." ^ s.su_name)
            s.su_count s.su_wall s.su_sim)
       spans;
     p "%s@." (line 74));
  if t.rp_trace_dropped > 0 then
    p "@.trace ring overflowed: %d event(s) dropped@." t.rp_trace_dropped;
  (* Any dropped observability event means the tables above undercount:
     say so loudly rather than let a silently-truncated profile pass
     for a complete one. *)
  let dropped =
    List.filter
      (fun (name, v) ->
         v > 0.0 && String.length name > 12
         && String.sub name 0 12 = "obs.dropped.")
      t.rp_counters
  in
  match dropped with
  | [] -> ()
  | dropped ->
    p "@.WARNING: observability buffers overflowed; this report is \
       INCOMPLETE@.";
    List.iter
      (fun (name, v) ->
         p "  %-24s %d event(s) dropped@." name (int_of_float v))
      dropped

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let h2d, d2h, p2p = matrix_totals t in
  Json.Obj
    [
      ("elapsed_seconds", Json.Float t.rp_elapsed);
      ( "devices",
        Json.List
          (List.map
             (fun d ->
                Json.Obj
                  [
                    ("device", Json.Int d.dr_device);
                    ("compute_seconds", Json.Float d.dr_compute);
                    ("copy_in_seconds", Json.Float d.dr_copy_in);
                    ("copy_out_seconds", Json.Float d.dr_copy_out);
                    ("idle_seconds", Json.Float d.dr_idle);
                    ("utilization", Json.Float d.dr_util);
                    ("lost", Json.Bool d.dr_lost);
                  ])
             t.rp_devices) );
      ( "host_busy",
        Json.Obj (List.map (fun (c, s) -> (c, Json.Float s)) t.rp_host_busy) );
      ("fabric_busy_seconds", Json.Float t.rp_fabric_busy);
      ( "byte_matrix",
        Json.List
          (List.map
             (fun ((src, dst), bytes) ->
                Json.Obj
                  [
                    ("src", Json.Int src);
                    ("dst", Json.Int dst);
                    ("bytes", Json.Int bytes);
                  ])
             t.rp_matrix) );
      ( "byte_totals",
        Json.Obj
          [
            ("h2d", Json.Int h2d);
            ("d2h", Json.Int d2h);
            ("p2p", Json.Int p2p);
          ] );
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) ->
                ( name,
                  if Float.is_integer v && Float.abs v < 1e15 then
                    Json.Int (int_of_float v)
                  else Json.Float v ))
             t.rp_counters) );
      ( "spans",
        Json.List
          (List.map
             (fun (s : Span.summary) ->
                Json.Obj
                  [
                    ("cat", Json.Str s.su_cat);
                    ("name", Json.Str s.su_name);
                    ("count", Json.Int s.su_count);
                    ("wall_seconds", Json.Float s.su_wall);
                    ("sim_seconds", Json.Float s.su_sim);
                  ])
             t.rp_spans) );
      ("trace_dropped", Json.Int t.rp_trace_dropped);
    ]
