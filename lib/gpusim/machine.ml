(* The multi-GPU machine: devices with a compute stream and dual copy
   engines, a host thread, and a shared PCIe fabric, all advanced by a
   simple discrete-event scheme.

   Per device:
   - one compute timeline (the default stream's kernel work);
   - one inbound and one outbound copy engine (K80-style dual copy
     engines), so neighbour halo exchanges do not chain serially while
     a device's own sends still serialize.

   Transfers respect default-stream ordering (they wait for the compute
   work of the devices they touch) and contend for the shared fabric:
   every transfer occupies the fabric for bytes/fabric_bandwidth, which
   is what bounds all-gather-style redistribution.

   Kernels run at a throughput derated by the number of active devices
   (K80 autoboost clocks drop as more dies heat up).

   In functional mode buffers carry real data, kernels execute their
   element code, and results are bit-exact; in performance mode only
   clocks and statistics advance. *)

type device = {
  dev_id : int;
  compute : Timeline.t;
  copy_in : Timeline.t;
  copy_out : Timeline.t;
  buffers : (int, Buffer.t) Hashtbl.t;
  mutable mem_used : int; (* bytes currently charged against capacity *)
  mutable mem_high : int; (* high-water mark of [mem_used] *)
  mutable mem_pressure : bool;
      (* above the 90%-of-capacity threshold; trace events are emitted
         on crossings, not on every reserve *)
}

type stats = {
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable p2p_bytes : int;
  mutable n_transfers : int;
  mutable n_launches : int;
  mutable n_faults : int; (* transient faults and device losses observed *)
  mutable faulted_transfers : int;
      (* transfers that paid their wire time but failed transiently *)
  mutable faulted_bytes : int;
      (* bytes moved by those transfers; they are *included* in the
         h2d/d2h/p2p byte counters and the pair matrix (the traffic
         really crossed the fabric, and a retry legitimately pays it
         again), so seconds/bytes reconciliation stays exact under
         fault schedules *)
  mutable spill_bytes : int; (* bytes evicted device->host under pressure *)
  mutable n_spills : int; (* spill operations *)
  mutable kernel_seconds : float;
  mutable pattern_seconds : float;
  mutable transfer_seconds : float;
}

(* One entry of the optional execution trace. *)
type event = {
  ev_kind : [ `Kernel | `H2d | `D2h | `P2p | `Fault | `Mem ];
  ev_src : int; (* device id, or -1 for host *)
  ev_dst : int;
  ev_bytes : int; (* 0 for kernels; bytes in use for `Mem *)
  ev_start : float;
  ev_finish : float;
}

(* Typed fault surface: operations never corrupt silently.  A transient
   fault consumed its simulated time but produced nothing (retryable);
   a lost device is gone for good, with everything it exclusively
   owned. *)
exception Transient_fault of { op : string; device : int }
exception Device_lost of int

(* Raised when a reservation would push a device past its configured
   capacity; [free] is what remained at that point.  Callers (the
   runtime's spiller, the engine's chunker) treat it as a request to
   make room, not a crash. *)
exception Out_of_memory of { device : int; requested : int; free : int }

(* One contention lane of the fabric.  The timeline carries the busy
   accounting and the trace lane; the interval list is the admission
   index: links arbitrate by TIME, not by issue order, so a transfer
   whose dependencies resolve early may start before a later-starting
   reservation that happened to be issued first (backfill).  Without
   that, an asynchronous pipeline that eagerly issues a download
   chained behind a still-running kernel would park a far-future
   reservation on the bus and serialize every transfer issued after
   it.  Intervals wholly before the host clock can never constrain a
   future admission (a transfer's start is at least its host issue
   time, and the host clock is monotone), so they are pruned as the
   clock passes them and the index stays small. *)
type link = {
  l_tl : Timeline.t;
  mutable l_busy : (float * float) list; (* sorted by start, disjoint *)
}

let mk_link name = { l_tl = Timeline.create name; l_busy = [] }

(* Link-level fabric state for an [Config.Islands] topology: one
   intra-island link and one host/inter-island uplink per island.  The
   flat topology has no such state — it keeps the single shared
   [fabric] link below. *)
type topo = {
  t_island : link array; (* intra-island links, one per island *)
  t_uplink : link array; (* host/inter-island uplinks, one per island *)
  t_isl_size : int;
  t_link_bw : float;
  t_uplink_bw : float;
}

type t = {
  cfg : Config.t;
  functional : bool;
  devices : device array;
  host : Timeline.t;
  fabric : link;
  topo : topo option; (* None = flat shared bus *)
  stats : stats;
  pair_bytes : (int * int, int) Hashtbl.t;
      (* bytes moved per (src, dst) endpoint pair; -1 is the host.
         Always on: the profile report's byte matrix must reconcile
         exactly with [stats], so both are charged at the same sites. *)
  mutable next_buffer_id : int;
  mutable active_devices : int;
      (* devices that have executed kernels: drives the autoboost
         derate.  Multi-GPU runs use all devices from the first launch
         round, so we track the high-water mark of launch targets. *)
  mutable trace : event Obs.Ring.t option;
      (* bounded event log when tracing is enabled; oldest events are
         dropped on overflow and the drops are counted *)
  mutable faults : Faults.t option;
      (* fault-injection state; None = ideal hardware *)
  mutable lru_clock : int;
      (* monotone counter handed out by [lru_tick]; the runtime stamps
         resident segments with it to order evictions *)
  mutable causal : Obs.Causal.builder option;
      (* causal DAG recording when enabled: every scheduled op becomes
         a node carrying its dependency edges, resolved here at the
         source (events to producing nodes, stream ordering to engine
         predecessors) *)
  mutable phase : string;
      (* engine phase label stamped on causal nodes ("" = none); the
         spill phase also switches a d2h's attribution category *)
}

let issue_overhead = 1.5e-6 (* host-side cost of issuing one async op *)

let create ?(functional = false) cfg =
  let cfg = Config.validate cfg in
  {
    cfg;
    functional;
    devices =
      Array.init cfg.Config.n_devices (fun i ->
          {
            dev_id = i;
            compute = Timeline.create (Printf.sprintf "dev%d.compute" i);
            copy_in = Timeline.create (Printf.sprintf "dev%d.copy_in" i);
            copy_out = Timeline.create (Printf.sprintf "dev%d.copy_out" i);
            buffers = Hashtbl.create 16;
            mem_used = 0;
            mem_high = 0;
            mem_pressure = false;
          });
    host = Timeline.create "host";
    fabric = mk_link "fabric";
    topo =
      (match cfg.Config.topology with
       | Config.Flat -> None
       | Config.Islands { island_size; link_bandwidth; uplink_bandwidth } ->
         let n_islands =
           (cfg.Config.n_devices + island_size - 1) / island_size
         in
         Some
           {
             t_island =
               Array.init n_islands (fun i ->
                   mk_link (Printf.sprintf "isl%d.link" i));
             t_uplink =
               Array.init n_islands (fun i ->
                   mk_link (Printf.sprintf "isl%d.uplink" i));
             t_isl_size = island_size;
             t_link_bw = link_bandwidth;
             t_uplink_bw = uplink_bandwidth;
           });
    stats =
      {
        h2d_bytes = 0;
        d2h_bytes = 0;
        p2p_bytes = 0;
        n_transfers = 0;
        n_launches = 0;
        n_faults = 0;
        faulted_transfers = 0;
        faulted_bytes = 0;
        spill_bytes = 0;
        n_spills = 0;
        kernel_seconds = 0.0;
        pattern_seconds = 0.0;
        transfer_seconds = 0.0;
      };
    pair_bytes = Hashtbl.create 16;
    next_buffer_id = 0;
    active_devices = 1;
    trace = None;
    faults =
      (match cfg.Config.faults with
       | Some spec when not (Faults.is_null spec) -> Some (Faults.create spec)
       | _ -> None);
    lru_clock = 0;
    causal = None;
    phase = "";
  }

(* Enable event tracing.  Events land in a bounded ring buffer (the
   newest [capacity] survive; drops are counted and reported), so
   tracing is safe even on paper-scale sweeps.  Per-engine operation
   logging is switched on alongside, with the same capacity per
   engine, for the Chrome-trace lanes. *)
let default_trace_capacity = 65536

let enable_trace ?(capacity = default_trace_capacity) m =
  m.trace <- Some (Obs.Ring.create ~capacity);
  Timeline.enable_log ~capacity m.host;
  Timeline.enable_log ~capacity m.fabric.l_tl;
  (match m.topo with
   | None -> ()
   | Some topo ->
     Array.iter (fun l -> Timeline.enable_log ~capacity l.l_tl) topo.t_island;
     Array.iter (fun l -> Timeline.enable_log ~capacity l.l_tl) topo.t_uplink);
  Array.iter
    (fun d ->
       Timeline.enable_log ~capacity d.compute;
       Timeline.enable_log ~capacity d.copy_in;
       Timeline.enable_log ~capacity d.copy_out)
    m.devices

let trace m = match m.trace with None -> [] | Some r -> Obs.Ring.to_list r
let trace_enabled m = m.trace <> None
let trace_dropped m = match m.trace with None -> 0 | Some r -> Obs.Ring.dropped r

let record m ev =
  match m.trace with None -> () | Some r -> Obs.Ring.push r ev

(* --- Causal recording --------------------------------------------------- *)

let enable_causal ?capacity m =
  m.causal <- Some (Obs.Causal.builder ?capacity ())

let causal_enabled m = m.causal <> None
let causal_dag m = Option.map Obs.Causal.dag m.causal

let causal_dropped m =
  match m.causal with None -> 0 | Some b -> Obs.Causal.builder_dropped b

let set_phase m phase = m.phase <- phase

let with_phase m phase f =
  let saved = m.phase in
  m.phase <- phase;
  Fun.protect ~finally:(fun () -> m.phase <- saved) f

(* Record one op as a causal node; -1 when recording is off or the
   builder overflowed (callers pass it on as a dep, where it is
   filtered out). *)
let causal_add m ~label ~category ~resources ~ready ~start ~finish ~fixed
    ~legs ~deps ~wait =
  match m.causal with
  | None -> -1
  | Some b ->
    Obs.Causal.add b ~label ~category ~phase:m.phase ~resources ~ready ~start
      ~finish ~fixed ~legs ~deps ~wait

(* Resolve an awaited completion time to the node that produced it. *)
let causal_ev m t =
  match m.causal with
  | None -> -1
  | Some b -> Option.value ~default:(-1) (Obs.Causal.node_at b t)

(* Last causal node recorded on a timeline (stream-order edges). *)
let causal_last m tl =
  match m.causal with
  | None -> -1
  | Some b -> Option.value ~default:(-1) (Obs.Causal.last_on b (Timeline.name tl))

(* Byte-matrix accounting, charged exactly where [stats] bytes are. *)
let count_pair m ~src ~dst ~bytes =
  let key = (src, dst) in
  let old = Option.value ~default:0 (Hashtbl.find_opt m.pair_bytes key) in
  Hashtbl.replace m.pair_bytes key (old + bytes)

let byte_matrix m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.pair_bytes []
  |> List.sort compare

let config m = m.cfg
let is_functional m = m.functional
let n_devices m = Array.length m.devices
let stats m = m.stats

let device m i =
  if i < 0 || i >= Array.length m.devices then
    invalid_arg (Printf.sprintf "Machine.device: no device %d" i);
  m.devices.(i)

(* --- Fault injection --------------------------------------------------- *)

let inject_faults m f = m.faults <- Some f
let fault_state m = m.faults

let device_lost m d =
  match m.faults with None -> false | Some f -> Faults.device_lost f d

(* Devices still on the bus, in id order (all of them on ideal
   hardware). *)
let live_devices m =
  List.filter
    (fun d -> not (device_lost m d))
    (List.init (Array.length m.devices) Fun.id)

let record_fault m ~src ~dst =
  m.stats.n_faults <- m.stats.n_faults + 1;
  let now = Timeline.ready m.host in
  record m
    { ev_kind = `Fault; ev_src = src; ev_dst = dst; ev_bytes = 0;
      ev_start = now; ev_finish = now }

(* The clock a scheduled loss is checked against: the later of the
   host's issue time and the touched engines' queued work.  The host
   runs far ahead of the devices (it issues asynchronously), so an op
   *executing* at or after the death time must observe the loss even
   though it was issued earlier. *)
let fault_clock m ~devices =
  List.fold_left
    (fun acc d ->
       if d < 0 then acc
       else begin
         let dev = m.devices.(d) in
         Float.max acc
           (Float.max (Timeline.ready dev.compute)
              (Float.max (Timeline.ready dev.copy_in)
                 (Timeline.ready dev.copy_out)))
       end)
    (Timeline.ready m.host) devices

(* Fate of a transfer touching [devices], drawn at issue time.  A lost
   device fails the operation before any time is charged (the driver
   call errors immediately); a transient fault is resolved after the
   transfer's timing has been paid. *)
let transfer_fate m ~devices =
  match m.faults with
  | None -> `Ok
  | Some f -> Faults.transfer_outcome f ~devices ~now:(fault_clock m ~devices)

let fail_lost m ~op:_ d =
  record_fault m ~src:d ~dst:d;
  raise (Device_lost d)

(* --- Memory management ------------------------------------------------ *)

let mem_capacity m = m.cfg.Config.mem_capacity
let mem_used m d = (device m d).mem_used
let mem_free m d = mem_capacity m - (device m d).mem_used
let mem_high_water m d = (device m d).mem_high

(* MemPressure trace event: an instant carrying the device's current
   charge, emitted on 90%-threshold crossings and on OOM. *)
let record_mem m d =
  let now = Timeline.ready m.host in
  record m
    { ev_kind = `Mem; ev_src = d; ev_dst = d;
      ev_bytes = (device m d).mem_used; ev_start = now; ev_finish = now }

let under_pressure m dev =
  let cap = mem_capacity m in
  dev.mem_used > cap - (cap / 10)

(* Charge [bytes] against device [d]'s capacity.  The check is written
   as [bytes > free] (never [used + bytes > cap]) so an unlimited
   capacity of [max_int] cannot overflow. *)
let mem_reserve m ~device:d ~bytes =
  if bytes < 0 then invalid_arg "Machine.mem_reserve: negative bytes";
  let dev = device m d in
  let free = mem_capacity m - dev.mem_used in
  if bytes > free then begin
    record_mem m d;
    raise (Out_of_memory { device = d; requested = bytes; free })
  end;
  dev.mem_used <- dev.mem_used + bytes;
  if dev.mem_used > dev.mem_high then dev.mem_high <- dev.mem_used;
  let pressured = under_pressure m dev in
  if pressured && not dev.mem_pressure then record_mem m d;
  dev.mem_pressure <- pressured

let mem_release m ~device:d ~bytes =
  if bytes < 0 then invalid_arg "Machine.mem_release: negative bytes";
  let dev = device m d in
  if bytes > dev.mem_used then
    invalid_arg
      (Printf.sprintf
         "Machine.mem_release: releasing %d bytes but device %d holds %d"
         bytes d dev.mem_used);
  dev.mem_used <- dev.mem_used - bytes;
  dev.mem_pressure <- under_pressure m dev

(* Monotone stamp for LRU ordering of resident segments. *)
let lru_tick m =
  m.lru_clock <- m.lru_clock + 1;
  m.lru_clock

let note_spill m ~bytes =
  m.stats.n_spills <- m.stats.n_spills + 1;
  m.stats.spill_bytes <- m.stats.spill_bytes + bytes

(* [charge:false] creates a *virtual* buffer: address space without a
   capacity charge.  The runtime's [Vbuf] uses these for its full-size
   per-device instances and charges only the resident segments via
   [mem_reserve]/[mem_release]. *)
let alloc ?(charge = true) m ~device:d ~len =
  let dev = device m d in
  let bytes = if charge then len * m.cfg.Config.elem_bytes else 0 in
  if bytes > 0 then mem_reserve m ~device:d ~bytes;
  let id = m.next_buffer_id in
  m.next_buffer_id <- id + 1;
  let b =
    Buffer.create ~id ~device:d ~len ~charged_bytes:bytes
      ~functional:m.functional
  in
  Hashtbl.replace dev.buffers id b;
  b

let free m b =
  let dev = device m (Buffer.device b) in
  if Hashtbl.mem dev.buffers (Buffer.id b) then begin
    let bytes = Buffer.charged_bytes b in
    if bytes > 0 then mem_release m ~device:dev.dev_id ~bytes
  end;
  Hashtbl.remove dev.buffers (Buffer.id b)

(* --- Time -------------------------------------------------------------- *)

let host_time m = Timeline.ready m.host

let device_time m d =
  let dev = device m d in
  Float.max (Timeline.ready dev.compute)
    (Float.max (Timeline.ready dev.copy_in) (Timeline.ready dev.copy_out))

let elapsed m =
  Array.fold_left
    (fun acc d ->
       Float.max acc
         (Float.max (Timeline.ready d.compute)
            (Float.max (Timeline.ready d.copy_in) (Timeline.ready d.copy_out))))
    (Timeline.ready m.host) m.devices

(* Host-side synchronization with every device: the host serially
   synchronizes each context (cudaSetDevice + cudaDeviceSynchronize per
   device, paper §8.4).  The serial per-context cost is charged *after*
   the devices drain — the host spins inside the driver until the last
   engine finishes, then still pays each context call.  (Charging it at
   issue time would hide it entirely under device execution, making
   sync free in every timing and trace.) *)
let synchronize m =
  let serial =
    m.cfg.Config.sync_device_seconds *. float_of_int (n_devices m)
  in
  let drained = elapsed m in
  (* Barrier edges: the sync waits every device engine, so its causal
     predecessors are the last recorded node of each one. *)
  let deps =
    if m.causal = None then []
    else
      Array.fold_left
        (fun acc d ->
           causal_last m d.compute :: causal_last m d.copy_in
           :: causal_last m d.copy_out :: acc)
        [] m.devices
  in
  let sstart, sfinish =
    Timeline.schedule m.host ~after:drained ~duration:serial ~category:"sync"
  in
  ignore
    (causal_add m ~label:"sync" ~category:"barrier" ~resources:[ "host" ]
       ~ready:sstart ~start:sstart ~finish:sfinish ~fixed:serial ~legs:[]
       ~deps ~wait:"")

(* Charge host-side computation (e.g. dependency resolution) to the
   host timeline. *)
let host_work m ~seconds ~category =
  let hstart, hfinish =
    Timeline.schedule m.host ~after:0.0 ~duration:seconds ~category
  in
  (* Backoff sleeps attribute to "retry" — the time lost to fault
     recovery, not to useful host work. *)
  let ccat = if category = "backoff" then "retry" else category in
  ignore
    (causal_add m ~label:category ~category:ccat ~resources:[ "host" ]
       ~ready:hstart ~start:hstart ~finish:hfinish ~fixed:0.0 ~legs:[]
       ~deps:[] ~wait:"");
  if category = "pattern" then
    m.stats.pattern_seconds <- m.stats.pattern_seconds +. seconds

(* --- Transfers --------------------------------------------------------- *)

(* An event: the simulated completion time of an asynchronous
   operation.  The [*_async] operations below return one and accept a
   [deps] list of them, which is what lets an engine order transfers
   and launches against each other without a host barrier. *)
type evt = float

(* Plan the fabric route of one transfer between two endpoints (-1 =
   host): the contention legs it occupies — (link timeline, occupancy
   seconds) pairs — and the point-to-point bandwidth of its data path.

   Flat topology: every non-local transfer occupies the single shared
   bus; cross-device copies stage through host memory across root
   complexes, crossing it twice (2x bytes).  Islands topology:
   host<->device traffic occupies the device's island uplink;
   intra-island copies move point-to-point over the island link at the
   link's own bandwidth (no host staging); inter-island copies stage
   through the switch, occupying both islands' uplinks.  Same-device
   copies move through device memory and occupy no link at all on
   either topology. *)
let route m ~src ~dst ~bytes =
  let cfg = m.cfg in
  if src >= 0 && src = dst then ([], cfg.Config.dmem_bandwidth)
  else
    match m.topo with
    | None ->
      let fabric_bytes = if src >= 0 && dst >= 0 then 2 * bytes else bytes in
      let occupancy =
        float_of_int fabric_bytes /. cfg.Config.fabric_bandwidth
      in
      ( [ (m.fabric, occupancy) ],
        if src >= 0 && dst >= 0 then cfg.Config.p2p_bandwidth
        else cfg.Config.pcie_bandwidth )
    | Some topo ->
      let island d = d / topo.t_isl_size in
      let uplink i =
        (topo.t_uplink.(i), float_of_int bytes /. topo.t_uplink_bw)
      in
      if src < 0 then ([ uplink (island dst) ], cfg.Config.pcie_bandwidth)
      else if dst < 0 then ([ uplink (island src) ], cfg.Config.pcie_bandwidth)
      else if island src = island dst then
        ( [ (topo.t_island.(island src),
             float_of_int bytes /. topo.t_link_bw) ],
          topo.t_link_bw )
      else ([ uplink (island src); uplink (island dst) ], cfg.Config.p2p_bandwidth)

(* Earliest time >= [from] at which a link is continuously free for
   [dur] seconds.  [busy] is sorted by start and disjoint. *)
let earliest_free busy ~from ~dur =
  let rec go t = function
    | [] -> t
    | (s, e) :: rest ->
      if e <= t then go t rest
      else if s >= t +. dur then t
      else go (Float.max t e) rest
  in
  go from busy

let rec insert_interval ((s, _) as ivl) = function
  | [] -> [ ivl ]
  | (s', _) :: _ as l when s <= s' -> ivl :: l
  | hd :: rest -> hd :: insert_interval ivl rest

(* Per-link admission: the earliest time >= [start] at which every leg
   of the route is simultaneously free for its occupancy, by TIME
   rather than by issue order (see [link]): a transfer whose
   dependencies resolve early backfills around far-future reservations
   instead of queueing behind them.  [now] is the transfer's host
   issue time — a lower bound on every future admission — used to
   prune drained intervals. *)
let route_admit ~now ~start ~legs =
  match legs with
  | [] -> start
  | legs ->
    List.iter
      (fun (l, _) ->
         match l.l_busy with
         | (_, e) :: _ when e <= now ->
           l.l_busy <- List.filter (fun (_, e) -> e > now) l.l_busy
         | _ -> ())
      legs;
    let rec fix t =
      let t' =
        List.fold_left
          (fun acc (l, occupancy) ->
             Float.max acc (earliest_free l.l_busy ~from:acc ~dur:occupancy))
          t legs
      in
      if t' > t then fix t' else t'
    in
    let s = fix start in
    List.iter
      (fun (l, occupancy) ->
         l.l_busy <- insert_interval (s, s +. occupancy) l.l_busy;
         ignore
           (Timeline.schedule_at l.l_tl ~start:s ~duration:occupancy
              ~category:"bus"))
      legs;
    s

let count_transfer m ~seconds =
  m.stats.n_transfers <- m.stats.n_transfers + 1;
  m.stats.transfer_seconds <- m.stats.transfer_seconds +. seconds

(* Run one transfer: engines are the timelines held for the duration,
   deps the timelines whose completion must be awaited (default-stream
   ordering against compute), events extra completion times the caller
   wants awaited (explicit cross-stream dependencies).

   Stream semantics at the call sites below: a transfer issued with no
   explicit [?deps] runs on the device's default stream — it waits the
   compute engine, like a plain cudaMemcpyAsync.  A transfer issued
   *with* [?deps] (even [Some []]) runs on a separate stream ordered
   only by its copy engine and the given events, exactly a
   cudaStreamWaitEvent chain — the caller asserts those events capture
   every producer/consumer of the ranges it touches (double buffering
   is the usual way to make that true).  That is what lets a
   double-buffered pipeline fetch the next chunk underneath the
   current kernel. *)
let transfer m ~kind ~engines ~deps ~events ~bytes ~legs ~bandwidth =
  let issue_start, issue =
    Timeline.schedule m.host ~after:0.0 ~duration:issue_overhead
      ~category:"issue"
  in
  let issue_id =
    causal_add m ~label:(kind ^ ".issue") ~category:"issue"
      ~resources:[ "host" ] ~ready:issue_start ~start:issue_start ~finish:issue
      ~fixed:issue_overhead ~legs:[] ~deps:[] ~wait:""
  in
  (* Causal predecessors, resolved before the op is recorded: the host
     issue, every awaited event (mapped to the node that produced it)
     and the stream-order edge to each [deps] timeline's last op.
     Engine ordering is derived by the builder from [resources]. *)
  let causal_deps =
    if m.causal = None then []
    else
      issue_id
      :: (List.map (causal_ev m) events @ List.map (causal_last m) deps)
  in
  let ready = List.fold_left Float.max issue events in
  let ready =
    List.fold_left (fun acc t -> Float.max acc (Timeline.ready t)) ready deps
  in
  let ready =
    List.fold_left (fun acc t -> Float.max acc (Timeline.ready t)) ready engines
  in
  let start = route_admit ~now:issue ~start:ready ~legs in
  let dur =
    m.cfg.Config.transfer_latency +. (float_of_int bytes /. bandwidth)
  in
  List.iter
    (fun t ->
       Timeline.wait_until t start;
       ignore (Timeline.schedule t ~after:start ~duration:dur ~category:"transfer"))
    engines;
  (* A d2h issued while the runtime is evicting under memory pressure
     attributes to "spill", not to ordinary downloads. *)
  let category = if m.phase = "spill" && kind = "d2h" then "spill" else kind in
  ignore
    (causal_add m ~label:kind ~category
       ~resources:(List.map Timeline.name engines)
       ~ready ~start ~finish:(start +. dur)
       ~fixed:m.cfg.Config.transfer_latency
       ~legs:(List.map (fun (l, occ) -> (Timeline.name l.l_tl, occ)) legs)
       ~deps:causal_deps ~wait:"link_wait");
  count_transfer m ~seconds:dur;
  (start, start +. dur)

(* A transiently faulted transfer paid its wire time and its bytes
   really crossed the fabric, so it is charged to the byte counters and
   the pair matrix like any other transfer *before* the fault is
   raised (a retry then legitimately charges the traffic again); the
   dedicated faulted counters keep the failures visible. *)
let count_faulted m ~bytes =
  m.stats.faulted_transfers <- m.stats.faulted_transfers + 1;
  m.stats.faulted_bytes <- m.stats.faulted_bytes + bytes

(* Asynchronous host-to-device copy of [len] elements; returns the
   completion event. *)
let h2d_async ?deps m ~src ~src_off ~dst ~dst_off ~len : evt =
  Buffer.check_range dst ~off:dst_off ~len ~what:"h2d";
  let bytes = len * m.cfg.Config.elem_bytes in
  let dev = device m (Buffer.device dst) in
  let fate = transfer_fate m ~devices:[ dev.dev_id ] in
  (match fate with `Lost d -> fail_lost m ~op:"h2d" d | `Ok | `Transient -> ());
  let legs, bandwidth = route m ~src:(-1) ~dst:dev.dev_id ~bytes in
  let tl_deps, events =
    match deps with
    | None -> ([ dev.compute ], []) (* default stream *)
    | Some evs -> ([], evs) (* explicit stream: the events order it *)
  in
  let ev_start, ev_finish =
    transfer m ~kind:"h2d" ~engines:[ dev.copy_in ] ~deps:tl_deps ~events
      ~bytes ~legs ~bandwidth
  in
  record m
    { ev_kind = `H2d; ev_src = -1; ev_dst = dev.dev_id; ev_bytes = bytes;
      ev_start; ev_finish };
  m.stats.h2d_bytes <- m.stats.h2d_bytes + bytes;
  count_pair m ~src:(-1) ~dst:dev.dev_id ~bytes;
  if fate = `Transient then begin
    count_faulted m ~bytes;
    record_fault m ~src:(-1) ~dst:dev.dev_id;
    raise (Transient_fault { op = "h2d"; device = dev.dev_id })
  end;
  if m.functional then Buffer.blit_from_host ~src ~src_off dst ~dst_off ~len;
  ev_finish

let h2d ?deps m ~src ~src_off ~dst ~dst_off ~len =
  ignore (h2d_async ?deps m ~src ~src_off ~dst ~dst_off ~len)

(* Asynchronous device-to-host copy; returns the completion event. *)
let d2h_async ?deps m ~src ~src_off ~dst ~dst_off ~len : evt =
  Buffer.check_range src ~off:src_off ~len ~what:"d2h";
  let bytes = len * m.cfg.Config.elem_bytes in
  let dev = device m (Buffer.device src) in
  let fate = transfer_fate m ~devices:[ dev.dev_id ] in
  (match fate with `Lost d -> fail_lost m ~op:"d2h" d | `Ok | `Transient -> ());
  let legs, bandwidth = route m ~src:dev.dev_id ~dst:(-1) ~bytes in
  let tl_deps, events =
    match deps with
    | None -> ([ dev.compute ], [])
    | Some evs -> ([], evs)
  in
  let ev_start, ev_finish =
    transfer m ~kind:"d2h" ~engines:[ dev.copy_out ] ~deps:tl_deps ~events
      ~bytes ~legs ~bandwidth
  in
  record m
    { ev_kind = `D2h; ev_src = dev.dev_id; ev_dst = -1; ev_bytes = bytes;
      ev_start; ev_finish };
  m.stats.d2h_bytes <- m.stats.d2h_bytes + bytes;
  count_pair m ~src:dev.dev_id ~dst:(-1) ~bytes;
  if fate = `Transient then begin
    count_faulted m ~bytes;
    record_fault m ~src:dev.dev_id ~dst:(-1);
    raise (Transient_fault { op = "d2h"; device = dev.dev_id })
  end;
  if m.functional then Buffer.blit_to_host src ~src_off ~dst ~dst_off ~len;
  ev_finish

let d2h ?deps m ~src ~src_off ~dst ~dst_off ~len =
  ignore (d2h_async ?deps m ~src ~src_off ~dst ~dst_off ~len)

(* Shared body of [p2p] and [p2p_multi]: timing, routing and
   accounting of a device-to-device copy of [len] elements; [blit]
   performs the functional data movement. *)
let p2p_common ?deps m ~op ~src ~dst ~len ~blit : evt =
  let bytes = len * m.cfg.Config.elem_bytes in
  let sdev = device m (Buffer.device src) in
  let ddev = device m (Buffer.device dst) in
  let fate = transfer_fate m ~devices:[ sdev.dev_id; ddev.dev_id ] in
  (match fate with `Lost d -> fail_lost m ~op d | `Ok | `Transient -> ());
  let same_device = sdev.dev_id = ddev.dev_id in
  let engines =
    if same_device then [ sdev.copy_out ]
    else [ sdev.copy_out; ddev.copy_in ]
  in
  let legs, bandwidth = route m ~src:sdev.dev_id ~dst:ddev.dev_id ~bytes in
  let tl_deps, events =
    match deps with
    | None -> ([ sdev.compute; ddev.compute ], [])
    | Some evs -> ([], evs)
  in
  let ev_start, ev_finish =
    transfer m ~kind:"p2p" ~engines ~deps:tl_deps ~events ~bytes ~legs
      ~bandwidth
  in
  record m
    { ev_kind = `P2p; ev_src = sdev.dev_id; ev_dst = ddev.dev_id;
      ev_bytes = bytes; ev_start; ev_finish };
  m.stats.p2p_bytes <- m.stats.p2p_bytes + bytes;
  count_pair m ~src:sdev.dev_id ~dst:ddev.dev_id ~bytes;
  if fate = `Transient then begin
    count_faulted m ~bytes;
    record_fault m ~src:sdev.dev_id ~dst:ddev.dev_id;
    raise (Transient_fault { op = "p2p"; device = ddev.dev_id })
  end;
  if m.functional then blit ();
  ev_finish

(* Asynchronous device-to-device copy; returns the completion event. *)
let p2p_async ?deps m ~src ~src_off ~dst ~dst_off ~len : evt =
  Buffer.check_range src ~off:src_off ~len ~what:"p2p(src)";
  Buffer.check_range dst ~off:dst_off ~len ~what:"p2p(dst)";
  p2p_common ?deps m ~op:"p2p" ~src ~dst ~len ~blit:(fun () ->
      Buffer.blit ~src ~src_off ~dst ~dst_off ~len)

let p2p ?deps m ~src ~src_off ~dst ~dst_off ~len =
  ignore (p2p_async ?deps m ~src ~src_off ~dst ~dst_off ~len)

(* A packed device-to-device copy of several segments (the simulated
   counterpart of a pitched cudaMemcpy2D): one transfer event moves the
   summed bytes, paying the latency once.  Returns the completion
   event (the issue time when [segments] is empty — nothing moves). *)
let p2p_multi_async ?deps m ~src ~dst ~segments : evt =
  let len = List.fold_left (fun acc (_, _, l) -> acc + l) 0 segments in
  if len = 0 then Timeline.ready m.host
  else begin
    List.iter
      (fun (src_off, dst_off, l) ->
         Buffer.check_range src ~off:src_off ~len:l ~what:"p2p_multi(src)";
         Buffer.check_range dst ~off:dst_off ~len:l ~what:"p2p_multi(dst)")
      segments;
    p2p_common ?deps m ~op:"p2p_multi" ~src ~dst ~len ~blit:(fun () ->
        List.iter
          (fun (src_off, dst_off, l) ->
             Buffer.blit ~src ~src_off ~dst ~dst_off ~len:l)
          segments)
  end

let p2p_multi ?deps m ~src ~dst ~segments =
  ignore (p2p_multi_async ?deps m ~src ~dst ~segments)

(* --- Kernels ------------------------------------------------------------ *)

(* Duration of a kernel launch.  Blocks execute over the device's
   resident-block slots; below full occupancy the whole wave takes one
   block's time (latency bound), above it the duration grows linearly.
   The per-SM rate is derated by the autoboost factor for the number of
   currently active devices. *)
let kernel_duration ?device m ~blocks ~ops_per_block =
  if blocks = 0 then 0.0
  else begin
    let cfg = m.cfg in
    let slots = cfg.Config.sms_per_device * cfg.Config.blocks_per_sm in
    let boost = Config.boost_factor cfg ~active:m.active_devices in
    let speed =
      match device with None -> 1.0 | Some d -> Config.device_speed cfg d
    in
    let block_time =
      ops_per_block
      *. float_of_int cfg.Config.blocks_per_sm
      /. (cfg.Config.ops_per_sm *. speed *. boost)
    in
    block_time *. Float.max 1.0 (float_of_int blocks /. float_of_int slots)
  end

(* Launch a kernel asynchronously on a device.  [run] performs the
   functional element work and is invoked only in functional mode. *)
(* Declare how many devices the workload will keep busy (drives the
   autoboost derate deterministically from the first launch). *)
let set_active_devices m n =
  m.active_devices <- max 1 (min n (n_devices m))

let launch_async ?(deps = []) m ~device:d ~blocks ~ops_per_block ~run : evt =
  let dev = device m d in
  let fate =
    match m.faults with
    | None -> `Ok
    | Some f -> Faults.kernel_outcome f ~device:d ~now:(fault_clock m ~devices:[ d ])
  in
  (match fate with `Lost -> fail_lost m ~op:"kernel" d | `Ok | `Transient -> ());
  m.active_devices <- max m.active_devices (d + 1);
  let issue_start, issue =
    Timeline.schedule m.host ~after:0.0 ~duration:m.cfg.Config.launch_latency
      ~category:"issue"
  in
  let issue_id =
    causal_add m ~label:"launch.issue" ~category:"issue" ~resources:[ "host" ]
      ~ready:issue_start ~start:issue_start ~finish:issue
      ~fixed:m.cfg.Config.launch_latency ~legs:[] ~deps:[] ~wait:""
  in
  (* Launch-waits-copy-engine edges (default-stream ordering) plus the
     caller's explicit events, resolved before the kernel is recorded. *)
  let causal_deps =
    if m.causal = None then []
    else
      issue_id :: causal_last m dev.copy_in :: causal_last m dev.copy_out
      :: List.map (causal_ev m) deps
  in
  let after =
    Float.max issue
      (Float.max (Timeline.ready dev.copy_in) (Timeline.ready dev.copy_out))
  in
  let after = List.fold_left Float.max after deps in
  let dur = kernel_duration ~device:d m ~blocks ~ops_per_block in
  let kstart, kfinish =
    Timeline.schedule dev.compute ~after ~duration:dur ~category:"kernel"
  in
  ignore
    (causal_add m ~label:"kernel" ~category:"compute"
       ~resources:[ Timeline.name dev.compute ]
       ~ready:kstart ~start:kstart ~finish:kfinish ~fixed:0.0 ~legs:[]
       ~deps:causal_deps ~wait:"");
  m.stats.n_launches <- m.stats.n_launches + 1;
  m.stats.kernel_seconds <- m.stats.kernel_seconds +. dur;
  (* A transient fault consumes the launch's time but produces no
     writes: raise before the functional element work runs. *)
  if fate = `Transient then begin
    record_fault m ~src:d ~dst:d;
    raise (Transient_fault { op = "kernel"; device = d })
  end;
  record m
    { ev_kind = `Kernel; ev_src = dev.dev_id; ev_dst = dev.dev_id;
      ev_bytes = 0; ev_start = kstart; ev_finish = kfinish };
  if m.functional then run ();
  kfinish

let launch ?deps m ~device ~blocks ~ops_per_block ~run =
  ignore (launch_async ?deps m ~device ~blocks ~ops_per_block ~run)

(* Timeline accessors for reporting and calibration. *)
let host_timeline m = m.host
let fabric_timeline m = m.fabric.l_tl

(* Every contention lane of the fabric with its stable display name:
   the one shared bus on the flat topology, the per-island links and
   uplinks on an islands topology (in island order, link before
   uplink). *)
let link_timelines m =
  match m.topo with
  | None -> [ ("bus", m.fabric.l_tl) ]
  | Some topo ->
    List.concat
      (List.init (Array.length topo.t_island) (fun i ->
           [
             (Printf.sprintf "isl%d.link" i, topo.t_island.(i).l_tl);
             (Printf.sprintf "isl%d.uplink" i, topo.t_uplink.(i).l_tl);
           ]))

let device_timelines m d =
  let dev = device m d in
  (dev.compute, dev.copy_in, dev.copy_out)

(* Total per-engine log entries evicted from the bounded rings — a
   truncated log silently drops lanes from the Chrome trace and edges
   from the causal DAG, so the drop count is surfaced as a metric and
   a loud report warning. *)
let timeline_dropped m =
  let sum =
    Array.fold_left
      (fun acc d ->
         acc + Timeline.log_dropped d.compute + Timeline.log_dropped d.copy_in
         + Timeline.log_dropped d.copy_out)
      (Timeline.log_dropped m.host) m.devices
  in
  List.fold_left
    (fun acc (_, tl) -> acc + Timeline.log_dropped tl)
    sum (link_timelines m)

let pp_stats fmt s =
  Format.fprintf fmt
    "h2d=%dB d2h=%dB p2p=%dB transfers=%d launches=%d faults=%d \
     faulted_transfers=%d faulted=%dB spills=%d spill=%dB kernel=%.6fs \
     transfer=%.6fs pattern=%.6fs"
    s.h2d_bytes s.d2h_bytes s.p2p_bytes s.n_transfers s.n_launches s.n_faults
    s.faulted_transfers s.faulted_bytes s.n_spills s.spill_bytes
    s.kernel_seconds s.transfer_seconds s.pattern_seconds

(* Snapshot the stats record into a metrics registry under the stable
   "gpusim." names — the uniform read-out the profile report and the
   bench JSON consume.  The record stays the hot-path view. *)
let publish_metrics ?(into = Obs.Metrics.default) m =
  let s = m.stats in
  let set n v = Obs.Metrics.set into n v in
  let seti n v = set n (float_of_int v) in
  seti "gpusim.h2d_bytes" s.h2d_bytes;
  seti "gpusim.d2h_bytes" s.d2h_bytes;
  seti "gpusim.p2p_bytes" s.p2p_bytes;
  seti "gpusim.transfers" s.n_transfers;
  seti "gpusim.launches" s.n_launches;
  seti "gpusim.faults" s.n_faults;
  seti "gpusim.faulted_transfers" s.faulted_transfers;
  seti "gpusim.faulted_bytes" s.faulted_bytes;
  set "gpusim.kernel_seconds" s.kernel_seconds;
  set "gpusim.transfer_seconds" s.transfer_seconds;
  set "gpusim.pattern_seconds" s.pattern_seconds;
  seti "gpusim.devices" (n_devices m);
  seti "gpusim.devices_live" (List.length (live_devices m));
  seti "gpusim.trace_dropped" (trace_dropped m);
  seti "obs.dropped.trace" (trace_dropped m);
  seti "obs.dropped.timeline" (timeline_dropped m);
  seti "obs.dropped.causal" (causal_dropped m);
  seti "gpusim.mem.spills" s.n_spills;
  seti "gpusim.mem.spill_bytes" s.spill_bytes;
  (if mem_capacity m < max_int then
     set "gpusim.mem.capacity" (float_of_int (mem_capacity m)));
  Array.iter
    (fun d ->
       let labels = [ ("device", string_of_int d.dev_id) ] in
       Obs.Metrics.set into ~labels "gpusim.mem.used"
         (float_of_int d.mem_used);
       Obs.Metrics.set into ~labels "gpusim.mem.high_water"
         (float_of_int d.mem_high))
    m.devices;
  List.iter
    (fun (name, tl) ->
       Obs.Metrics.set into ~labels:[ ("link", name) ] "gpusim.link_busy"
         (Timeline.total_busy tl))
    (link_timelines m);
  List.iter
    (fun ((src, dst), bytes) ->
       Obs.Metrics.set into
         ~labels:
           [
             ("src", if src < 0 then "host" else string_of_int src);
             ("dst", if dst < 0 then "host" else string_of_int dst);
           ]
         "gpusim.pair_bytes" (float_of_int bytes))
    (byte_matrix m)
