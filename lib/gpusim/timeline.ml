(* A timeline models one in-order execution engine (a device stream or
   the host thread) in the discrete-event simulation.  Operations are
   appended with an issue time; the engine starts each operation no
   earlier than its previous completion and the issue time, and the
   completion time is returned.  Busy time is accumulated per
   user-supplied category for reporting. *)

type t = {
  name : string;
  mutable ready : float; (* completion time of the last scheduled op *)
  busy : (string, float) Hashtbl.t;
}

let create name = { name; ready = 0.0; busy = Hashtbl.create 8 }

let name t = t.name
let ready t = t.ready

let reset t =
  t.ready <- 0.0;
  Hashtbl.reset t.busy

(* Schedule an operation of the given duration that cannot start before
   [after].  Returns (start, finish). *)
let schedule t ~after ~duration ~category =
  if duration < 0.0 then invalid_arg "Timeline.schedule: negative duration";
  let start = Float.max t.ready after in
  let finish = start +. duration in
  t.ready <- finish;
  let old = Option.value ~default:0.0 (Hashtbl.find_opt t.busy category) in
  Hashtbl.replace t.busy category (old +. duration);
  (start, finish)

(* Force the engine to be idle until at least [time] (a synchronization
   barrier). *)
let wait_until t time = if time > t.ready then t.ready <- time

let busy_in t category =
  Option.value ~default:0.0 (Hashtbl.find_opt t.busy category)

let total_busy t = Hashtbl.fold (fun _ v acc -> acc +. v) t.busy 0.0

let categories t = Hashtbl.fold (fun k _ acc -> k :: acc) t.busy []

let pp fmt t =
  Format.fprintf fmt "%s: ready=%.6fs busy=%.6fs" t.name t.ready (total_busy t)
