(* A timeline models one in-order execution engine (a device stream or
   the host thread) in the discrete-event simulation.  Operations are
   appended with an issue time; the engine starts each operation no
   earlier than its previous completion and the issue time, and the
   completion time is returned.  Busy time is accumulated per
   user-supplied category for reporting.

   With logging enabled the timeline additionally keeps its individual
   operations in a bounded ring buffer — that log is what the Chrome
   trace exporter renders as this engine's lane. *)

type op = { op_start : float; op_finish : float; op_category : string }

type t = {
  name : string;
  mutable ready : float; (* completion time of the last scheduled op *)
  busy : (string, float) Hashtbl.t;
  mutable ops : op Obs.Ring.t option; (* per-op log when enabled *)
}

let create name = { name; ready = 0.0; busy = Hashtbl.create 8; ops = None }

let name t = t.name
let ready t = t.ready

let reset t =
  t.ready <- 0.0;
  Hashtbl.reset t.busy;
  match t.ops with None -> () | Some r -> Obs.Ring.clear r

(* Schedule an operation of the given duration that cannot start before
   [after].  Returns (start, finish). *)
let schedule t ~after ~duration ~category =
  if duration < 0.0 then invalid_arg "Timeline.schedule: negative duration";
  let start = Float.max t.ready after in
  let finish = start +. duration in
  t.ready <- finish;
  let old = Option.value ~default:0.0 (Hashtbl.find_opt t.busy category) in
  Hashtbl.replace t.busy category (old +. duration);
  (match t.ops with
   | None -> ()
   | Some r ->
     Obs.Ring.push r { op_start = start; op_finish = finish; op_category = category });
  (start, finish)

(* Record an operation at exactly [start], without clamping against
   the engine's ready time: for contention lanes whose admission is
   computed externally (time-based backfill), where a later-recorded
   operation may legitimately start before an earlier reservation
   ends.  The ready time still covers the operation's finish, so
   [elapsed]-style maxima stay correct. *)
let schedule_at t ~start ~duration ~category =
  if duration < 0.0 then invalid_arg "Timeline.schedule_at: negative duration";
  let finish = start +. duration in
  if finish > t.ready then t.ready <- finish;
  let old = Option.value ~default:0.0 (Hashtbl.find_opt t.busy category) in
  Hashtbl.replace t.busy category (old +. duration);
  (match t.ops with
   | None -> ()
   | Some r ->
     Obs.Ring.push r { op_start = start; op_finish = finish; op_category = category });
  (start, finish)

(* Force the engine to be idle until at least [time] (a synchronization
   barrier). *)
let wait_until t time = if time > t.ready then t.ready <- time

let busy_in t category =
  Option.value ~default:0.0 (Hashtbl.find_opt t.busy category)

let total_busy t = Hashtbl.fold (fun _ v acc -> acc +. v) t.busy 0.0

(* Sorted, so reports and JSON artifacts do not depend on hash-table
   iteration order (which varies across OCaml versions and hash
   seeds). *)
let categories t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.busy [])

(* Idle time within a span of [span] seconds: the span minus every
   busy second, clamped at zero (an engine can be scheduled past the
   span's end by in-flight work).  An empty, zero-length or undefined
   (NaN) window has no idle time — [Float.max] would propagate the NaN
   straight into reports otherwise. *)
let idle_in t ~span =
  if not (span > 0.0) then 0.0 else Float.max 0.0 (span -. total_busy t)

(* Busy fraction of a span, clamped to [0, 1]; 0 on an empty,
   zero-length or NaN window (the division would yield NaN/inf). *)
let utilization t ~span =
  if not (span > 0.0) then 0.0 else Float.min 1.0 (total_busy t /. span)

(* --- Per-operation log ------------------------------------------------- *)

let enable_log ?(capacity = 65536) t =
  match t.ops with
  | Some r when Obs.Ring.capacity r = capacity -> ()
  | _ -> t.ops <- Some (Obs.Ring.create ~capacity)

let log t = match t.ops with None -> [] | Some r -> Obs.Ring.to_list r
let log_dropped t = match t.ops with None -> 0 | Some r -> Obs.Ring.dropped r

let pp fmt t =
  Format.fprintf fmt "%s: ready=%.6fs busy=%.6fs" t.name t.ready (total_busy t)
