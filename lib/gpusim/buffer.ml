(* Device memory buffers.

   In functional mode a buffer carries real float data and copies move
   bytes; in performance mode only the extents exist, so that
   paper-sized problems (tens of GiB across 16 devices) can be
   simulated without allocating them. *)

type t = {
  id : int;
  device : int; (* owning device, or -1 for host-pinned staging *)
  len : int; (* elements *)
  charged_bytes : int;
      (* bytes charged against the device's capacity at creation; 0
         for virtual buffers whose residency is accounted segment-wise
         by the runtime *)
  data : float array option; (* Some in functional mode *)
}

let create ~id ~device ~len ~charged_bytes ~functional =
  if len < 0 then invalid_arg "Buffer.create: negative length";
  {
    id;
    device;
    len;
    charged_bytes;
    data = (if functional then Some (Array.make len 0.0) else None);
  }

let id b = b.id
let device b = b.device
let len b = b.len
let charged_bytes b = b.charged_bytes

let data_exn b =
  match b.data with
  | Some d -> d
  | None -> invalid_arg "Buffer.data_exn: performance-mode buffer has no data"

let has_data b = b.data <> None

(* Copy [len] elements between a host array and a device buffer or
   between two device buffers; no-ops in performance mode. *)
let blit_from_host ~src ~src_off b ~dst_off ~len =
  match b.data with
  | Some d -> Array.blit src src_off d dst_off len
  | None -> ()

let blit_to_host b ~src_off ~dst ~dst_off ~len =
  match b.data with
  | Some d -> Array.blit d src_off dst dst_off len
  | None -> ()

let blit ~src ~src_off ~dst ~dst_off ~len =
  match (src.data, dst.data) with
  | Some s, Some d -> Array.blit s src_off d dst_off len
  | None, None -> ()
  | _ -> invalid_arg "Buffer.blit: mixed functional/performance buffers"

let check_range b ~off ~len ~what =
  if off < 0 || len < 0 || off + len > b.len then
    invalid_arg
      (Printf.sprintf
         "%s: range [%d,%d) outside buffer %d of length %d on device %d" what
         off (off + len) b.id b.len b.device)
