(* Seeded, deterministic fault injection for the machine simulator.

   The fault model covers what K80-class production boards actually do
   at scale:

   - transient kernel faults (ECC events, sticky SM errors): the launch
     consumes its simulated time, produces nothing, and the machine
     raises a typed exception the engine can retry;
   - transient transfer faults (PCIe replay storms, DMA aborts) on
     h2d / d2h / p2p alike;
   - permanent device loss ("fell off the bus"), either scheduled at a
     simulated time or drawn per operation with a fixed probability.
     Once lost, a device stays lost and every operation touching it
     raises.

   All randomness flows from one splitmix64 stream seeded by the spec,
   so a fault schedule is a pure function of (seed, operation sequence):
   two runs over the same program see the identical schedule, which is
   what makes fault campaigns and the bit-identity property testable.

   A global cap on *consecutive* transient faults guarantees that an
   engine which retries always makes progress, whatever the rate. *)

type spec = {
  seed : int;
  kernel_fault_rate : float; (* per launch *)
  transfer_fault_rate : float; (* per transfer *)
  loss_rate : float; (* permanent loss per operation on the device *)
  scheduled_losses : (int * float) list; (* (device, simulated seconds) *)
  max_consecutive : int; (* forced success after this many in a row *)
}

let null_spec =
  {
    seed = 0;
    kernel_fault_rate = 0.0;
    transfer_fault_rate = 0.0;
    loss_rate = 0.0;
    scheduled_losses = [];
    max_consecutive = 8;
  }

let is_null s =
  s.kernel_fault_rate = 0.0 && s.transfer_fault_rate = 0.0
  && s.loss_rate = 0.0 && s.scheduled_losses = []

(* "seed,rate" with optional ",DEV@TIME" scheduled losses, e.g.
   "42,0.01,2@0.5": seed 42, 1% transient rate on kernels and
   transfers, device 2 lost at 0.5 simulated seconds. *)
let spec_of_string s =
  try
    match String.split_on_char ',' (String.trim s) with
    | seed :: rate :: rest ->
      let seed = int_of_string (String.trim seed) in
      let rate = float_of_string (String.trim rate) in
      if rate < 0.0 || rate >= 1.0 then failwith "rate must be in [0,1)";
      let losses =
        List.map
          (fun part ->
             match String.split_on_char '@' (String.trim part) with
             | [ d; t ] -> (int_of_string d, float_of_string t)
             | _ -> failwith "expected DEV@TIME")
          rest
      in
      Ok
        {
          null_spec with
          seed;
          kernel_fault_rate = rate;
          transfer_fault_rate = rate;
          scheduled_losses = losses;
        }
    | _ -> Error "expected SEED,RATE[,DEV@TIME...]"
  with Failure m -> Error ("bad fault spec: " ^ m)

type counters = {
  mutable kernel_faults : int;
  mutable transfer_faults : int;
  mutable losses : int;
}

type t = {
  spec : spec;
  mutable state : int64; (* splitmix64 stream state *)
  lost : (int, unit) Hashtbl.t;
  mutable consecutive : int;
  stats : counters;
}

let create spec =
  {
    spec;
    state = Int64.of_int (spec.seed lxor 0x5DEECE66D);
    lost = Hashtbl.create 4;
    consecutive = 0;
    stats = { kernel_faults = 0; transfer_faults = 0; losses = 0 };
  }

let spec t = t.spec
let counters t = t.stats

(* splitmix64: the standard finalizer over a Weyl sequence. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform float in [0, 1) from the top 53 bits. *)
let uniform t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0

let device_lost t d = Hashtbl.mem t.lost d
let n_lost t = Hashtbl.length t.lost

let mark_lost t d =
  if not (device_lost t d) then begin
    Hashtbl.replace t.lost d ();
    t.stats.losses <- t.stats.losses + 1
  end

type outcome = [ `Ok | `Transient | `Lost ]

(* A scheduled loss fires the first time an operation touches the
   device at or after its loss time. *)
let scheduled_loss_due t ~device ~now =
  List.exists
    (fun (d, when_) -> d = device && now >= when_ && not (device_lost t d))
    t.spec.scheduled_losses

let transient t rate =
  (* Draw even when the rate is 0 so enabling a fault class does not
     shift the stream consumed by the others?  No: a zero rate must
     leave the schedule of the *other* classes untouched relative to a
     run where this class never existed, so skip the draw entirely. *)
  if rate > 0.0 && uniform t < rate then
    if t.consecutive >= t.spec.max_consecutive then begin
      t.consecutive <- 0;
      false
    end
    else begin
      t.consecutive <- t.consecutive + 1;
      true
    end
  else begin
    t.consecutive <- 0;
    false
  end

let op_outcome t ~kind ~device ~now : outcome =
  if device < 0 then `Ok (* the host never faults *)
  else if device_lost t device then `Lost
  else if scheduled_loss_due t ~device ~now then begin
    mark_lost t device;
    `Lost
  end
  else if t.spec.loss_rate > 0.0 && uniform t < t.spec.loss_rate then begin
    mark_lost t device;
    `Lost
  end
  else begin
    let rate =
      match kind with
      | `Kernel -> t.spec.kernel_fault_rate
      | `Transfer -> t.spec.transfer_fault_rate
    in
    if transient t rate then begin
      (match kind with
       | `Kernel -> t.stats.kernel_faults <- t.stats.kernel_faults + 1
       | `Transfer -> t.stats.transfer_faults <- t.stats.transfer_faults + 1);
      `Transient
    end
    else `Ok
  end

let kernel_outcome t ~device ~now = op_outcome t ~kind:`Kernel ~device ~now

(* A transfer touches up to two devices; the first one due for a loss
   wins (deterministically: lower-numbered checks first). *)
let transfer_outcome t ~devices ~now =
  let devices = List.sort_uniq compare (List.filter (fun d -> d >= 0) devices) in
  let lost = List.find_opt (fun d -> device_lost t d) devices in
  match lost with
  | Some d -> `Lost d
  | None ->
    let due = List.find_opt (fun d -> scheduled_loss_due t ~device:d ~now) devices in
    (match due with
     | Some d ->
       mark_lost t d;
       `Lost d
     | None ->
       let prob_lost =
         if t.spec.loss_rate > 0.0 then
           List.find_opt (fun _ -> uniform t < t.spec.loss_rate) devices
         else None
       in
       (match prob_lost with
        | Some d ->
          mark_lost t d;
          `Lost d
        | None ->
          if transient t t.spec.transfer_fault_rate then begin
            t.stats.transfer_faults <- t.stats.transfer_faults + 1;
            `Transient
          end
          else `Ok))

let pp_counters fmt c =
  Format.fprintf fmt "kernel faults=%d transfer faults=%d devices lost=%d"
    c.kernel_faults c.transfer_faults c.losses
