(** Chrome-trace export of one simulated run: devices as processes,
    engines (compute stream, copy engines, fabric, host) as threads,
    plus a lane for host-side spans that carry simulated time and —
    when a causal analysis is supplied — a "critical path" lane whose
    segments tile the makespan, chained by flow arrows.  All
    timestamps are simulated microseconds.  Enable
    {!Machine.enable_trace} before the run for the device lanes. *)

val device_pid : int -> int
(** Process id a device's lanes appear under (host is 0, fabric 1). *)

val events :
  ?spans:Obs.Span.record list ->
  ?critpath:Obs.Causal.analysis ->
  Machine.t ->
  Obs.Chrome_trace.event list
(** Metadata first, then timing events sorted per lane. *)

val to_json :
  ?spans:Obs.Span.record list ->
  ?critpath:Obs.Causal.analysis ->
  Machine.t ->
  Obs.Json.t

val to_string :
  ?spans:Obs.Span.record list ->
  ?critpath:Obs.Causal.analysis ->
  Machine.t ->
  string

val write :
  ?spans:Obs.Span.record list ->
  ?critpath:Obs.Causal.analysis ->
  file:string ->
  Machine.t ->
  unit
