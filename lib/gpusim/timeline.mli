(** One in-order execution engine (a device stream, a copy engine, the
    host thread, or the shared fabric) in the discrete-event
    simulation. *)

type t

(** One logged operation (only kept when logging is enabled). *)
type op = { op_start : float; op_finish : float; op_category : string }

val create : string -> t
val name : t -> string

val ready : t -> float
(** Completion time of the last scheduled operation. *)

val reset : t -> unit

val schedule :
  t -> after:float -> duration:float -> category:string -> float * float
(** Append an operation that cannot start before [after]; returns
    (start, finish).  Busy time is accumulated per [category]. *)

val schedule_at :
  t -> start:float -> duration:float -> category:string -> float * float
(** Record an operation at exactly [start], without clamping against
    [ready] (the engine's ready still advances to at least the
    operation's finish).  For contention lanes whose admission is
    computed externally with backfill, where a later-recorded
    operation may start before an earlier reservation ends; the
    per-op log is then ordered by admission, not by start. *)

val wait_until : t -> float -> unit
(** Force the engine idle until at least the given time (a
    synchronization barrier). *)

val busy_in : t -> string -> float
(** Accumulated busy seconds in one category. *)

val total_busy : t -> float

val categories : t -> string list
(** Categories with accumulated busy time, in sorted order (stable
    across hash seeds). *)

val idle_in : t -> span:float -> float
(** [span] minus the total busy seconds, clamped at zero. *)

val utilization : t -> span:float -> float
(** Busy fraction of a span, clamped to [0, 1]; 0 for empty spans. *)

val enable_log : ?capacity:int -> t -> unit
(** Keep each scheduled operation in a bounded ring buffer (oldest
    dropped).  Idempotent for an unchanged capacity. *)

val log : t -> op list
(** Logged operations in schedule order ([] when logging is off). *)

val log_dropped : t -> int

val pp : Format.formatter -> t -> unit
