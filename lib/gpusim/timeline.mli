(** One in-order execution engine (a device stream, a copy engine, the
    host thread, or the shared fabric) in the discrete-event
    simulation. *)

type t

val create : string -> t
val name : t -> string

val ready : t -> float
(** Completion time of the last scheduled operation. *)

val reset : t -> unit

val schedule :
  t -> after:float -> duration:float -> category:string -> float * float
(** Append an operation that cannot start before [after]; returns
    (start, finish).  Busy time is accumulated per [category]. *)

val wait_until : t -> float -> unit
(** Force the engine idle until at least the given time (a
    synchronization barrier). *)

val busy_in : t -> string -> float
(** Accumulated busy seconds in one category. *)

val total_busy : t -> float
val categories : t -> string list
val pp : Format.formatter -> t -> unit
