(* Machine descriptions for the multi-GPU simulator.

   The paper's testbed is a Supermicro X10DRG with eight NVIDIA K80
   boards (16 GPU dies) behind PCIe 3.0 switches.  The constants below
   are calibrated to that class of machine; we reproduce scaling
   *shapes*, not absolute seconds (see DESIGN.md §4 and
   EXPERIMENTS.md). *)

type host_costs = {
  tracker_op_seconds : float;
      (* cost of one segment-tracker query or update (B-tree op) *)
  range_seconds : float;
      (* cost of emitting/handling one enumerator range *)
  dispatch_seconds : float;
      (* host-side bookkeeping per kernel-partition launch *)
}

type t = {
  name : string;
  n_devices : int;
  sms_per_device : int;
  ops_per_sm : float; (* simple kernel-IR operations per second per SM *)
  blocks_per_sm : int; (* concurrently resident blocks per SM *)
  autoboost_derate : float;
      (* K80 autoboost: per-die throughput lost when all dies are
         active; throughput scales linearly from 1.0 (one active die)
         to [1 - derate] (all [total_dies] active) *)
  total_dies : int; (* dies physically present (thermal envelope) *)
  pcie_bandwidth : float; (* host<->device link bytes per second *)
  p2p_bandwidth : float; (* device<->device link bytes per second *)
  dmem_bandwidth : float;
      (* device-local memory copy bytes per second: a copy whose source
         and destination live on the same die moves through device
         memory only and never touches the PCIe fabric *)
  fabric_bandwidth : float;
      (* aggregate PCIe fabric bytes per second, shared by all
         transfers in flight (root-complex bottleneck).  Only
         cross-device and host<->device traffic occupies the fabric —
         a cross-device copy stages through host memory and crosses it
         twice (2x bytes), a device-local copy not at all. *)
  transfer_latency : float; (* fixed seconds per transfer *)
  launch_latency : float; (* fixed host seconds per kernel launch *)
  sync_device_seconds : float;
      (* host cost of synchronizing with one device (cudaSetDevice +
         cudaDeviceSynchronize per context) *)
  elem_bytes : int; (* bytes per array element *)
  host : host_costs;
  faults : Faults.spec option;
      (* fault-injection spec applied to machines built over this
         config; None = ideal hardware (the default everywhere) *)
}

let k80_host_costs =
  {
    tracker_op_seconds = 6.0e-7;
    range_seconds = 4.0e-7;
    dispatch_seconds = 7.0e-6;
  }

(* K80-class box.  The per-SM operation rate is in units of kernel-IR
   operations (one "op" bundles an instruction and its share of memory
   traffic), calibrated so the Hotspot Medium iteration lands near the
   9 ms a memory-bound 16384^2 stencil takes on one K80 die. *)
let k80_box ?(n_devices = 16) () =
  {
    name = "supermicro-x10drg-k80";
    n_devices;
    sms_per_device = 13;
    ops_per_sm = 1.35e11;
    blocks_per_sm = 2;
    autoboost_derate = 0.15;
    total_dies = 16;
    pcie_bandwidth = 10.0e9;
    p2p_bandwidth = 6.0e9;
    (* K80 GDDR5 is ~240 GB/s peak per die; ~160 GB/s is the achievable
       device-to-device-memory copy rate. *)
    dmem_bandwidth = 160.0e9;
    fabric_bandwidth = 8.0e9;
    transfer_latency = 40.0e-6;
    launch_latency = 8.0e-6;
    sync_device_seconds = 10.0e-6;
    elem_bytes = 4;
    host = k80_host_costs;
    faults = None;
  }

(* A tiny machine for functional tests: timing constants are irrelevant
   there, device count is what matters. *)
let test_box ?(n_devices = 4) () =
  { (k80_box ~n_devices ()) with name = "test-box" }

(* Per-die throughput factor when [active] dies are busy out of the
   box's thermal envelope of [total_dies]. *)
let boost_factor t ~active =
  let total = max 1 (t.total_dies - 1) in
  1.0
  -. (t.autoboost_derate
      *. float_of_int (max 0 (min active t.total_dies - 1))
      /. float_of_int total)

let pp fmt t =
  Format.fprintf fmt
    "%s: %d devices x %d SMs, pcie %.1f GB/s, p2p %.1f GB/s, fabric %.1f GB/s"
    t.name t.n_devices t.sms_per_device
    (t.pcie_bandwidth /. 1e9)
    (t.p2p_bandwidth /. 1e9)
    (t.fabric_bandwidth /. 1e9)
