(* Machine descriptions for the multi-GPU simulator.

   The paper's testbed is a Supermicro X10DRG with eight NVIDIA K80
   boards (16 GPU dies) behind PCIe 3.0 switches.  The constants below
   are calibrated to that class of machine; we reproduce scaling
   *shapes*, not absolute seconds (see DESIGN.md §4 and
   EXPERIMENTS.md). *)

(* Fabric topology.  [Flat] is the classic single shared PCIe bus the
   paper's testbed exposes: every host<->device and cross-device byte
   contends for one aggregate [fabric_bandwidth] pipe.  [Islands]
   models an NVLink-style machine: devices are grouped into islands of
   [island_size] consecutive ids; each island has one intra-island
   link (direct device<->device traffic at [link_bandwidth]) and one
   uplink to the host/inter-island switch at [uplink_bandwidth].
   Transfers occupy every link on their route, so contention is
   per-link instead of machine-global. *)
type topology =
  | Flat
  | Islands of {
      island_size : int; (* devices per island (consecutive ids) *)
      link_bandwidth : float; (* intra-island link bytes per second *)
      uplink_bandwidth : float; (* per-island host uplink bytes per second *)
    }

type host_costs = {
  tracker_op_seconds : float;
      (* cost of one segment-tracker query or update (B-tree op) *)
  range_seconds : float;
      (* cost of emitting/handling one enumerator range *)
  dispatch_seconds : float;
      (* host-side bookkeeping per kernel-partition launch *)
}

type t = {
  name : string;
  n_devices : int;
  sms_per_device : int;
  ops_per_sm : float; (* simple kernel-IR operations per second per SM *)
  blocks_per_sm : int; (* concurrently resident blocks per SM *)
  autoboost_derate : float;
      (* K80 autoboost: per-die throughput lost when all dies are
         active; throughput scales linearly from 1.0 (one active die)
         to [1 - derate] (all [total_dies] active) *)
  total_dies : int; (* dies physically present (thermal envelope) *)
  pcie_bandwidth : float; (* host<->device link bytes per second *)
  p2p_bandwidth : float; (* device<->device link bytes per second *)
  dmem_bandwidth : float;
      (* device-local memory copy bytes per second: a copy whose source
         and destination live on the same die moves through device
         memory only and never touches the PCIe fabric *)
  fabric_bandwidth : float;
      (* aggregate PCIe fabric bytes per second, shared by all
         transfers in flight (root-complex bottleneck).  Only
         cross-device and host<->device traffic occupies the fabric —
         a cross-device copy stages through host memory and crosses it
         twice (2x bytes), a device-local copy not at all. *)
  transfer_latency : float; (* fixed seconds per transfer *)
  launch_latency : float; (* fixed host seconds per kernel launch *)
  sync_device_seconds : float;
      (* host cost of synchronizing with one device (cudaSetDevice +
         cudaDeviceSynchronize per context) *)
  elem_bytes : int; (* bytes per array element *)
  mem_capacity : int;
      (* device-memory capacity in bytes per die.  Allocations and
         resident segments are charged against it; exceeding it raises
         [Machine.Out_of_memory].  The default is [max_int]
         (effectively unlimited) so capacity is opt-in; a real K80 die
         has 12 GiB. *)
  topology : topology;
      (* fabric topology: the flat shared bus (the default, and the
         paper's testbed) or NVLink-style islands with per-link
         contention *)
  device_speeds : float array;
      (* per-device throughput multiplier on [ops_per_sm], for
         heterogeneous fleets (e.g. a box mixing K80 and K40 dies).
         [||] (the default) means every device runs at 1.0 — the
         homogeneous box, bit-identical to configs predating the
         field.  When non-empty the length must equal [n_devices] and
         every entry must be positive. *)
  host : host_costs;
  faults : Faults.spec option;
      (* fault-injection spec applied to machines built over this
         config; None = ideal hardware (the default everywhere) *)
}

(* Construction-time sanity checks.  Every rate and capacity below
   feeds a division or a comparison in the simulator; a zero or
   negative value there silently produces NaN/negative simulated times
   (or an accounting model where nothing ever fits), so reject them
   loudly instead. *)
let validate t =
  let reject field detail =
    invalid_arg
      (Printf.sprintf "Config %s: %s must be %s" t.name field detail)
  in
  let positive_int field v =
    if v <= 0 then reject field (Printf.sprintf "positive (got %d)" v)
  in
  let positive_rate field v =
    if not (v > 0.0) then
      reject field (Printf.sprintf "a positive rate (got %g)" v)
  in
  let non_negative field v =
    if not (v >= 0.0) then
      reject field (Printf.sprintf "non-negative (got %g)" v)
  in
  positive_int "n_devices" t.n_devices;
  positive_int "sms_per_device" t.sms_per_device;
  positive_int "blocks_per_sm" t.blocks_per_sm;
  positive_int "total_dies" t.total_dies;
  positive_int "elem_bytes" t.elem_bytes;
  positive_int "mem_capacity" t.mem_capacity;
  positive_rate "ops_per_sm" t.ops_per_sm;
  positive_rate "pcie_bandwidth" t.pcie_bandwidth;
  positive_rate "p2p_bandwidth" t.p2p_bandwidth;
  positive_rate "dmem_bandwidth" t.dmem_bandwidth;
  positive_rate "fabric_bandwidth" t.fabric_bandwidth;
  if not (t.autoboost_derate >= 0.0 && t.autoboost_derate < 1.0) then
    reject "autoboost_derate"
      (Printf.sprintf "in [0,1) (got %g)" t.autoboost_derate);
  (match t.topology with
   | Flat -> ()
   | Islands { island_size; link_bandwidth; uplink_bandwidth } ->
     positive_int "topology.island_size" island_size;
     positive_rate "topology.link_bandwidth" link_bandwidth;
     positive_rate "topology.uplink_bandwidth" uplink_bandwidth);
  (if Array.length t.device_speeds > 0 then begin
     if Array.length t.device_speeds <> t.n_devices then
       reject "device_speeds"
         (Printf.sprintf "of length n_devices=%d (got %d)" t.n_devices
            (Array.length t.device_speeds));
     Array.iteri
       (fun d s ->
          if not (s > 0.0) then
            reject "device_speeds"
              (Printf.sprintf "positive for every device (device %d: %g)" d s))
       t.device_speeds
   end);
  non_negative "transfer_latency" t.transfer_latency;
  non_negative "launch_latency" t.launch_latency;
  non_negative "sync_device_seconds" t.sync_device_seconds;
  non_negative "host.tracker_op_seconds" t.host.tracker_op_seconds;
  non_negative "host.range_seconds" t.host.range_seconds;
  non_negative "host.dispatch_seconds" t.host.dispatch_seconds;
  t

let k80_host_costs =
  {
    tracker_op_seconds = 6.0e-7;
    range_seconds = 4.0e-7;
    dispatch_seconds = 7.0e-6;
  }

(* K80-class box.  The per-SM operation rate is in units of kernel-IR
   operations (one "op" bundles an instruction and its share of memory
   traffic), calibrated so the Hotspot Medium iteration lands near the
   9 ms a memory-bound 16384^2 stencil takes on one K80 die. *)
let k80_box ?(n_devices = 16) ?(mem_capacity = max_int) ?(topology = Flat)
    ?(device_speeds = [||]) () =
  validate
    {
    name = "supermicro-x10drg-k80";
    n_devices;
    sms_per_device = 13;
    ops_per_sm = 1.35e11;
    blocks_per_sm = 2;
    autoboost_derate = 0.15;
    total_dies = 16;
    pcie_bandwidth = 10.0e9;
    p2p_bandwidth = 6.0e9;
    (* K80 GDDR5 is ~240 GB/s peak per die; ~160 GB/s is the achievable
       device-to-device-memory copy rate. *)
    dmem_bandwidth = 160.0e9;
    fabric_bandwidth = 8.0e9;
    transfer_latency = 40.0e-6;
    launch_latency = 8.0e-6;
    sync_device_seconds = 10.0e-6;
      elem_bytes = 4;
      mem_capacity;
      topology;
      device_speeds;
      host = k80_host_costs;
      faults = None;
    }

(* A tiny machine for functional tests: timing constants are irrelevant
   there, device count is what matters. *)
let test_box ?(n_devices = 4) ?mem_capacity ?topology ?device_speeds () =
  { (k80_box ~n_devices ?mem_capacity ?topology ?device_speeds ()) with
    name = "test-box" }

(* The config of a leased sub-machine: the same per-device constants
   over [n_devices] of the fleet's devices.  The fleet-level fault spec
   is dropped — a scheduler injects per-job faults and translates
   fleet-wide scheduled losses into lease-local ones itself.  The
   thermal envelope ([total_dies]) is kept: leased dies share the
   box. *)
let lease t ~n_devices =
  if n_devices < 1 || n_devices > t.n_devices then
    invalid_arg
      (Printf.sprintf "Config.lease: n_devices must be in [1,%d] (got %d)"
         t.n_devices n_devices)
  else
    validate
      {
        t with
        n_devices;
        name = Printf.sprintf "%s/lease%d" t.name n_devices;
        faults = None;
        (* A lease grabs whichever fleet devices are free, so a
           per-device speed map keyed by fleet id cannot be sliced
           meaningfully; leased sub-machines run homogeneous. *)
        device_speeds = [||];
      }

(* Throughput multiplier of one device; 1.0 everywhere on a
   homogeneous box (empty [device_speeds]) or for out-of-range ids. *)
let device_speed t d =
  if d >= 0 && d < Array.length t.device_speeds then t.device_speeds.(d)
  else 1.0

let heterogeneous t =
  Array.length t.device_speeds > 0
  && Array.exists (fun s -> s <> t.device_speeds.(0)) t.device_speeds

(* Per-die throughput factor when [active] dies are busy out of the
   box's thermal envelope of [total_dies]. *)
let boost_factor t ~active =
  let total = max 1 (t.total_dies - 1) in
  1.0
  -. (t.autoboost_derate
      *. float_of_int (max 0 (min active t.total_dies - 1))
      /. float_of_int total)

(* CLI spec for a topology: "flat", or "islands:SIZE,LINK,UPLINK" with
   the bandwidths in GB/s (e.g. "islands:4,80,12").  The inverse of
   [topology_to_string] up to number formatting. *)
let topology_of_string s =
  let s = String.trim s in
  if s = "flat" then Ok Flat
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "islands" -> (
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match String.split_on_char ',' rest with
        | [ size; link; uplink ] -> (
            match
              ( int_of_string_opt (String.trim size),
                float_of_string_opt (String.trim link),
                float_of_string_opt (String.trim uplink) )
            with
            | Some island_size, Some link_gbs, Some uplink_gbs
              when island_size > 0 && link_gbs > 0.0 && uplink_gbs > 0.0 ->
              Ok
                (Islands
                   {
                     island_size;
                     link_bandwidth = link_gbs *. 1e9;
                     uplink_bandwidth = uplink_gbs *. 1e9;
                   })
            | _ ->
              Error
                (Printf.sprintf
                   "bad islands spec %S: want islands:SIZE,LINK_GBS,UPLINK_GBS \
                    with positive numbers"
                   s))
        | _ ->
          Error
            (Printf.sprintf
               "bad islands spec %S: want islands:SIZE,LINK_GBS,UPLINK_GBS" s))
    | _ ->
      Error
        (Printf.sprintf
           "unknown topology %S: want \"flat\" or \"islands:SIZE,LINK,UPLINK\""
           s)

let topology_to_string = function
  | Flat -> "flat"
  | Islands { island_size; link_bandwidth; uplink_bandwidth } ->
    Printf.sprintf "islands:%d,%g,%g" island_size (link_bandwidth /. 1e9)
      (uplink_bandwidth /. 1e9)

let pp fmt t =
  Format.fprintf fmt
    "%s: %d devices x %d SMs, pcie %.1f GB/s, p2p %.1f GB/s, fabric %.1f GB/s, \
     topology %s"
    t.name t.n_devices t.sms_per_device
    (t.pcie_bandwidth /. 1e9)
    (t.p2p_bandwidth /. 1e9)
    (t.fabric_bandwidth /. 1e9)
    (topology_to_string t.topology)
