(** The multi-GPU machine simulator.

    Every device has a compute stream and dual (in/out) copy engines;
    all transfers contend for a shared PCIe fabric; kernels run at a
    throughput derated by the number of active devices (K80 autoboost).
    Transfers respect default-stream ordering against the compute work
    of the devices they touch.

    In functional mode buffers carry real data and kernels execute
    their element code (bit-exact results); in performance mode only
    clocks and statistics advance. *)

type t

(** One entry of the optional execution trace. *)
type event = {
  ev_kind : [ `Kernel | `H2d | `D2h | `P2p | `Fault ];
  ev_src : int;  (** device id, or -1 for the host *)
  ev_dst : int;
  ev_bytes : int;  (** 0 for kernels *)
  ev_start : float;
  ev_finish : float;
}

type stats = {
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable p2p_bytes : int;
  mutable n_transfers : int;
  mutable n_launches : int;
  mutable n_faults : int;  (** transient faults and device losses observed *)
  mutable kernel_seconds : float;
  mutable pattern_seconds : float;
  mutable transfer_seconds : float;
}

exception Transient_fault of { op : string; device : int }
(** The operation consumed its simulated time but produced nothing;
    retrying is safe and the fault layer bounds consecutive failures. *)

exception Device_lost of int
(** The device fell off the bus; it stays lost, and every subsequent
    operation touching it raises again. *)

val create : ?functional:bool -> Config.t -> t
val config : t -> Config.t
val is_functional : t -> bool
val n_devices : t -> int
val stats : t -> stats

val inject_faults : t -> Faults.t -> unit
(** Attach fault-injection state; without it the hardware is ideal. *)

val fault_state : t -> Faults.t option

val device_lost : t -> int -> bool
(** Has this device been permanently lost? *)

val live_devices : t -> int list
(** Devices still on the bus, in id order. *)

val alloc : t -> device:int -> len:int -> Buffer.t
val free : t -> Buffer.t -> unit

val host_time : t -> float
(** Current host-thread time. *)

val device_time : t -> int -> float
(** Latest engine time of one device. *)

val elapsed : t -> float
(** Latest time across every engine and the host. *)

val synchronize : t -> unit
(** Host-side synchronization with every device (serial
    cudaSetDevice/cudaDeviceSynchronize per context, then join). *)

val host_work : t -> seconds:float -> category:string -> unit
(** Charge host-side computation (e.g. dependency resolution). *)

val h2d :
  t -> src:float array -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous host-to-device copy of [len] elements. *)

val d2h :
  t -> src:Buffer.t -> src_off:int -> dst:float array -> dst_off:int ->
  len:int -> unit

val p2p :
  t -> src:Buffer.t -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous device-to-device copy; stages through host memory, so
    it crosses the shared fabric twice. *)

val p2p_multi :
  t -> src:Buffer.t -> dst:Buffer.t -> segments:(int * int * int) list -> unit
(** Packed device-to-device copy of [(src_off, dst_off, len)] segments
    (a pitched cudaMemcpy2D): the summed bytes move as one transfer,
    paying the latency once. *)

val kernel_duration : t -> blocks:int -> ops_per_block:float -> float
(** Modelled duration of a kernel launch (wave model with autoboost
    derating). *)

val set_active_devices : t -> int -> unit
(** Declare how many devices the workload keeps busy (drives the
    autoboost derate deterministically). *)

val launch :
  t -> device:int -> blocks:int -> ops_per_block:float ->
  run:(unit -> unit) -> unit
(** Launch a kernel asynchronously; [run] performs the functional
    element work and is invoked only in functional mode. *)

val enable_trace : ?capacity:int -> t -> unit
(** Record kernel, transfer and fault events in a bounded ring buffer
    (default capacity 65536; the newest events survive and drops are
    counted), and enable per-engine operation logs with the same
    capacity — safe even on paper-scale sweeps. *)

val trace : t -> event list
(** The recorded events in chronological order ([] when disabled). *)

val trace_enabled : t -> bool

val trace_dropped : t -> int
(** Events evicted from the bounded trace since it was enabled. *)

val byte_matrix : t -> ((int * int) * int) list
(** Bytes moved per (src, dst) endpoint pair, sorted; -1 is the host.
    Always accounted (independent of tracing), charged at exactly the
    sites that charge [stats], so the totals reconcile with
    h2d/d2h/p2p bytes. *)

val publish_metrics : ?into:Obs.Metrics.t -> t -> unit
(** Snapshot [stats], the live-device count and the byte matrix into a
    metrics registry under stable ["gpusim.*"] names (default:
    {!Obs.Metrics.default}). *)

val host_timeline : t -> Timeline.t
val fabric_timeline : t -> Timeline.t

val device_timelines : t -> int -> Timeline.t * Timeline.t * Timeline.t
(** (compute, copy-in, copy-out) engines of one device. *)

val pp_stats : Format.formatter -> stats -> unit
