(** The multi-GPU machine simulator.

    Every device has a compute stream and dual (in/out) copy engines;
    all transfers contend for a shared PCIe fabric; kernels run at a
    throughput derated by the number of active devices (K80 autoboost).
    Transfers respect default-stream ordering against the compute work
    of the devices they touch.

    In functional mode buffers carry real data and kernels execute
    their element code (bit-exact results); in performance mode only
    clocks and statistics advance. *)

type t

(** One entry of the optional execution trace. *)
type event = {
  ev_kind : [ `Kernel | `H2d | `D2h | `P2p | `Fault | `Mem ];
  ev_src : int;  (** device id, or -1 for the host *)
  ev_dst : int;
  ev_bytes : int;  (** 0 for kernels; bytes in use for [`Mem] *)
  ev_start : float;
  ev_finish : float;
}

type stats = {
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable p2p_bytes : int;
  mutable n_transfers : int;
  mutable n_launches : int;
  mutable n_faults : int;  (** transient faults and device losses observed *)
  mutable spill_bytes : int;  (** bytes evicted device->host under pressure *)
  mutable n_spills : int;  (** spill operations *)
  mutable kernel_seconds : float;
  mutable pattern_seconds : float;
  mutable transfer_seconds : float;
}

exception Transient_fault of { op : string; device : int }
(** The operation consumed its simulated time but produced nothing;
    retrying is safe and the fault layer bounds consecutive failures. *)

exception Device_lost of int
(** The device fell off the bus; it stays lost, and every subsequent
    operation touching it raises again. *)

exception Out_of_memory of { device : int; requested : int; free : int }
(** A reservation would push [device] past its configured capacity;
    [free] is what remained.  Callers treat it as a request to make
    room (spill, chunk), not a crash. *)

val create : ?functional:bool -> Config.t -> t
(** Build a machine over a config (validated via {!Config.validate}). *)

val config : t -> Config.t
val is_functional : t -> bool
val n_devices : t -> int
val stats : t -> stats

val inject_faults : t -> Faults.t -> unit
(** Attach fault-injection state; without it the hardware is ideal. *)

val fault_state : t -> Faults.t option

val device_lost : t -> int -> bool
(** Has this device been permanently lost? *)

val live_devices : t -> int list
(** Devices still on the bus, in id order. *)

val alloc : ?charge:bool -> t -> device:int -> len:int -> Buffer.t
(** Allocate a buffer on a device.  With [charge] (the default) its
    bytes are reserved against the device's capacity and
    [Out_of_memory] is raised when they do not fit; with [~charge:false]
    the buffer is *virtual* — address space only, accounted segment-wise
    by the caller through {!mem_reserve}/{!mem_release}. *)

val free : t -> Buffer.t -> unit
(** Free a buffer, releasing whatever bytes its allocation charged. *)

val mem_capacity : t -> int
(** Per-device capacity in bytes ([max_int] = unlimited). *)

val mem_used : t -> int -> int
(** Bytes currently charged against one device. *)

val mem_free : t -> int -> int
(** Remaining capacity of one device. *)

val mem_high_water : t -> int -> int
(** High-water mark of [mem_used] for one device. *)

val mem_reserve : t -> device:int -> bytes:int -> unit
(** Charge bytes against a device's capacity; raises [Out_of_memory]
    (after recording a [`Mem] trace event) when they do not fit.
    Crossing 90% of capacity records a MemPressure ([`Mem]) event. *)

val mem_release : t -> device:int -> bytes:int -> unit
(** Release previously reserved bytes; raises [Invalid_argument] when
    releasing more than is held (an accounting bug, never data). *)

val lru_tick : t -> int
(** Next value of a monotone counter; the runtime stamps resident
    segments with it to order evictions (higher = more recent). *)

val note_spill : t -> bytes:int -> unit
(** Account one spill operation of [bytes] evicted to the host. *)

val host_time : t -> float
(** Current host-thread time. *)

val device_time : t -> int -> float
(** Latest engine time of one device. *)

val elapsed : t -> float
(** Latest time across every engine and the host. *)

val synchronize : t -> unit
(** Host-side synchronization with every device (serial
    cudaSetDevice/cudaDeviceSynchronize per context, then join). *)

val host_work : t -> seconds:float -> category:string -> unit
(** Charge host-side computation (e.g. dependency resolution). *)

val h2d :
  t -> src:float array -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous host-to-device copy of [len] elements. *)

val d2h :
  t -> src:Buffer.t -> src_off:int -> dst:float array -> dst_off:int ->
  len:int -> unit

val p2p :
  t -> src:Buffer.t -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous device-to-device copy; stages through host memory, so
    it crosses the shared fabric twice. *)

val p2p_multi :
  t -> src:Buffer.t -> dst:Buffer.t -> segments:(int * int * int) list -> unit
(** Packed device-to-device copy of [(src_off, dst_off, len)] segments
    (a pitched cudaMemcpy2D): the summed bytes move as one transfer,
    paying the latency once. *)

val kernel_duration : t -> blocks:int -> ops_per_block:float -> float
(** Modelled duration of a kernel launch (wave model with autoboost
    derating). *)

val set_active_devices : t -> int -> unit
(** Declare how many devices the workload keeps busy (drives the
    autoboost derate deterministically). *)

val launch :
  t -> device:int -> blocks:int -> ops_per_block:float ->
  run:(unit -> unit) -> unit
(** Launch a kernel asynchronously; [run] performs the functional
    element work and is invoked only in functional mode. *)

val enable_trace : ?capacity:int -> t -> unit
(** Record kernel, transfer and fault events in a bounded ring buffer
    (default capacity 65536; the newest events survive and drops are
    counted), and enable per-engine operation logs with the same
    capacity — safe even on paper-scale sweeps. *)

val trace : t -> event list
(** The recorded events in chronological order ([] when disabled). *)

val trace_enabled : t -> bool

val trace_dropped : t -> int
(** Events evicted from the bounded trace since it was enabled. *)

val byte_matrix : t -> ((int * int) * int) list
(** Bytes moved per (src, dst) endpoint pair, sorted; -1 is the host.
    Always accounted (independent of tracing), charged at exactly the
    sites that charge [stats], so the totals reconcile with
    h2d/d2h/p2p bytes. *)

val publish_metrics : ?into:Obs.Metrics.t -> t -> unit
(** Snapshot [stats], the live-device count and the byte matrix into a
    metrics registry under stable ["gpusim.*"] names (default:
    {!Obs.Metrics.default}). *)

val host_timeline : t -> Timeline.t
val fabric_timeline : t -> Timeline.t

val device_timelines : t -> int -> Timeline.t * Timeline.t * Timeline.t
(** (compute, copy-in, copy-out) engines of one device. *)

val pp_stats : Format.formatter -> stats -> unit
