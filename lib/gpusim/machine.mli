(** The multi-GPU machine simulator.

    Every device has a compute stream and dual (in/out) copy engines;
    all transfers contend for a shared PCIe fabric; kernels run at a
    throughput derated by the number of active devices (K80 autoboost).
    Transfers respect default-stream ordering against the compute work
    of the devices they touch.

    In functional mode buffers carry real data and kernels execute
    their element code (bit-exact results); in performance mode only
    clocks and statistics advance. *)

type t

(** One entry of the optional execution trace. *)
type event = {
  ev_kind : [ `Kernel | `H2d | `D2h | `P2p | `Fault | `Mem ];
  ev_src : int;  (** device id, or -1 for the host *)
  ev_dst : int;
  ev_bytes : int;  (** 0 for kernels; bytes in use for [`Mem] *)
  ev_start : float;
  ev_finish : float;
}

type stats = {
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable p2p_bytes : int;
  mutable n_transfers : int;
  mutable n_launches : int;
  mutable n_faults : int;  (** transient faults and device losses observed *)
  mutable faulted_transfers : int;
      (** transfers that paid their wire time but failed transiently;
          their bytes are included in the h2d/d2h/p2p counters and the
          pair matrix (the traffic really crossed the fabric), so
          seconds/bytes reconciliation stays exact under faults *)
  mutable faulted_bytes : int;  (** bytes moved by those transfers *)
  mutable spill_bytes : int;  (** bytes evicted device->host under pressure *)
  mutable n_spills : int;  (** spill operations *)
  mutable kernel_seconds : float;
  mutable pattern_seconds : float;
  mutable transfer_seconds : float;
}

exception Transient_fault of { op : string; device : int }
(** The operation consumed its simulated time but produced nothing;
    retrying is safe and the fault layer bounds consecutive failures. *)

exception Device_lost of int
(** The device fell off the bus; it stays lost, and every subsequent
    operation touching it raises again. *)

exception Out_of_memory of { device : int; requested : int; free : int }
(** A reservation would push [device] past its configured capacity;
    [free] is what remained.  Callers treat it as a request to make
    room (spill, chunk), not a crash. *)

val create : ?functional:bool -> Config.t -> t
(** Build a machine over a config (validated via {!Config.validate}). *)

val config : t -> Config.t
val is_functional : t -> bool
val n_devices : t -> int
val stats : t -> stats

val inject_faults : t -> Faults.t -> unit
(** Attach fault-injection state; without it the hardware is ideal. *)

val fault_state : t -> Faults.t option

val device_lost : t -> int -> bool
(** Has this device been permanently lost? *)

val live_devices : t -> int list
(** Devices still on the bus, in id order. *)

val alloc : ?charge:bool -> t -> device:int -> len:int -> Buffer.t
(** Allocate a buffer on a device.  With [charge] (the default) its
    bytes are reserved against the device's capacity and
    [Out_of_memory] is raised when they do not fit; with [~charge:false]
    the buffer is *virtual* — address space only, accounted segment-wise
    by the caller through {!mem_reserve}/{!mem_release}. *)

val free : t -> Buffer.t -> unit
(** Free a buffer, releasing whatever bytes its allocation charged. *)

val mem_capacity : t -> int
(** Per-device capacity in bytes ([max_int] = unlimited). *)

val mem_used : t -> int -> int
(** Bytes currently charged against one device. *)

val mem_free : t -> int -> int
(** Remaining capacity of one device. *)

val mem_high_water : t -> int -> int
(** High-water mark of [mem_used] for one device. *)

val mem_reserve : t -> device:int -> bytes:int -> unit
(** Charge bytes against a device's capacity; raises [Out_of_memory]
    (after recording a [`Mem] trace event) when they do not fit.
    Crossing 90% of capacity records a MemPressure ([`Mem]) event. *)

val mem_release : t -> device:int -> bytes:int -> unit
(** Release previously reserved bytes; raises [Invalid_argument] when
    releasing more than is held (an accounting bug, never data). *)

val lru_tick : t -> int
(** Next value of a monotone counter; the runtime stamps resident
    segments with it to order evictions (higher = more recent). *)

val note_spill : t -> bytes:int -> unit
(** Account one spill operation of [bytes] evicted to the host. *)

val host_time : t -> float
(** Current host-thread time. *)

val device_time : t -> int -> float
(** Latest engine time of one device. *)

val elapsed : t -> float
(** Latest time across every engine and the host. *)

val synchronize : t -> unit
(** Host-side synchronization with every device: the host joins the
    latest engine, then pays the serial cudaSetDevice /
    cudaDeviceSynchronize cost per context — charged {e after} the
    devices drain, so sync cost is visible in timings and traces. *)

val host_work : t -> seconds:float -> category:string -> unit
(** Charge host-side computation (e.g. dependency resolution). *)

type evt = float
(** An event: the simulated completion time of an asynchronous
    operation.  The [*_async] operations return one and accept a
    [deps] list of them — explicit cross-stream dependencies, so a
    caller can order transfers and launches against each other without
    a host barrier.

    Stream semantics for transfers: with no [?deps], a transfer runs
    on the device's default stream — it waits the device's compute
    engine, like a plain cudaMemcpyAsync.  With [?deps] (even [[]]),
    it runs on a separate stream ordered only by its copy engine and
    the given events (a cudaStreamWaitEvent chain); the caller asserts
    those events cover every producer and consumer of the ranges it
    touches — double buffering is the usual way to make that true.
    Kernel launches always wait their device's copy engines
    (default-stream ordering); their [?deps] are additional. *)

val h2d : ?deps:evt list ->
  t -> src:float array -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous host-to-device copy of [len] elements. *)

val h2d_async : ?deps:evt list ->
  t -> src:float array -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> evt
(** [h2d] returning the completion event. *)

val d2h : ?deps:evt list ->
  t -> src:Buffer.t -> src_off:int -> dst:float array -> dst_off:int ->
  len:int -> unit

val d2h_async : ?deps:evt list ->
  t -> src:Buffer.t -> src_off:int -> dst:float array -> dst_off:int ->
  len:int -> evt

val p2p : ?deps:evt list ->
  t -> src:Buffer.t -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> unit
(** Asynchronous device-to-device copy.  On the flat topology it
    stages through host memory, crossing the shared fabric twice; on
    an islands topology intra-island copies move directly over the
    island link and inter-island copies occupy both uplinks. *)

val p2p_async : ?deps:evt list ->
  t -> src:Buffer.t -> src_off:int -> dst:Buffer.t -> dst_off:int ->
  len:int -> evt

val p2p_multi : ?deps:evt list ->
  t -> src:Buffer.t -> dst:Buffer.t -> segments:(int * int * int) list -> unit
(** Packed device-to-device copy of [(src_off, dst_off, len)] segments
    (a pitched cudaMemcpy2D): the summed bytes move as one transfer,
    paying the latency once. *)

val p2p_multi_async : ?deps:evt list ->
  t -> src:Buffer.t -> dst:Buffer.t -> segments:(int * int * int) list -> evt

val kernel_duration :
  ?device:int -> t -> blocks:int -> ops_per_block:float -> float
(** Modelled duration of a kernel launch (wave model with autoboost
    derating).  [device] applies that device's [Config.device_speed]
    multiplier; omitted = 1.0 (a homogeneous device). *)

val set_active_devices : t -> int -> unit
(** Declare how many devices the workload keeps busy (drives the
    autoboost derate deterministically). *)

val launch : ?deps:evt list ->
  t -> device:int -> blocks:int -> ops_per_block:float ->
  run:(unit -> unit) -> unit
(** Launch a kernel asynchronously; [run] performs the functional
    element work and is invoked only in functional mode.  [deps] are
    extra events the kernel must wait for, besides the device's copy
    engines (default-stream ordering). *)

val launch_async : ?deps:evt list ->
  t -> device:int -> blocks:int -> ops_per_block:float ->
  run:(unit -> unit) -> evt
(** [launch] returning the kernel's completion event. *)

val enable_trace : ?capacity:int -> t -> unit
(** Record kernel, transfer and fault events in a bounded ring buffer
    (default capacity 65536; the newest events survive and drops are
    counted), and enable per-engine operation logs with the same
    capacity — safe even on paper-scale sweeps. *)

val trace : t -> event list
(** The recorded events in chronological order ([] when disabled). *)

val trace_enabled : t -> bool

val trace_dropped : t -> int
(** Events evicted from the bounded trace since it was enabled. *)

val timeline_dropped : t -> int
(** Total per-engine log entries evicted from the bounded rings. *)

val enable_causal : ?capacity:int -> t -> unit
(** Record every scheduled operation as a node of a causal DAG, with
    its dependency edges resolved at the source: awaited events map to
    the nodes that produced them, default-stream ordering to the
    engines' preceding ops, launches to the copy engines they wait,
    transfers to their host issue op and the fabric legs they occupy
    (link-contention stalls are recorded per node).  Bounded (default
    1,048,576 nodes); overflow drops the newest nodes and counts them
    — a truncated DAG is flagged, never silently analyzed. *)

val causal_enabled : t -> bool

val causal_dag : t -> Obs.Causal.dag option
(** Snapshot the recorded DAG ([None] when recording is off). *)

val causal_dropped : t -> int

val set_phase : t -> string -> unit
(** Label subsequently recorded causal nodes with an engine phase
    (barrier, sync_reads, halo_exchange, ...); [""] clears it. *)

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** Run [f] with the phase label set, restoring the previous label
    (exception-safe).  The ["spill"] phase also switches a d2h's
    attribution category to spill. *)

val byte_matrix : t -> ((int * int) * int) list
(** Bytes moved per (src, dst) endpoint pair, sorted; -1 is the host.
    Always accounted (independent of tracing), charged at exactly the
    sites that charge [stats], so the totals reconcile with
    h2d/d2h/p2p bytes. *)

val publish_metrics : ?into:Obs.Metrics.t -> t -> unit
(** Snapshot [stats], the live-device count and the byte matrix into a
    metrics registry under stable ["gpusim.*"] names (default:
    {!Obs.Metrics.default}). *)

val host_timeline : t -> Timeline.t

val fabric_timeline : t -> Timeline.t
(** The flat shared bus.  Meaningful only on the [Config.Flat]
    topology; on an islands topology it stays empty — use
    {!link_timelines}. *)

val link_timelines : t -> (string * Timeline.t) list
(** Every contention lane of the fabric with its stable display name:
    [["bus", _]] on the flat topology; per-island [["isl<i>.link";
    "isl<i>.uplink"]] pairs (in island order) on an islands
    topology. *)

val device_timelines : t -> int -> Timeline.t * Timeline.t * Timeline.t
(** (compute, copy-in, copy-out) engines of one device. *)

val pp_stats : Format.formatter -> stats -> unit
