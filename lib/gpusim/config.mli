(** Machine descriptions for the multi-GPU simulator, calibrated to the
    paper's testbed (Supermicro X10DRG, eight NVIDIA K80 boards = 16
    dies behind PCIe 3.0 switches).  Shapes, not absolute seconds, are
    the reproduction target — see DESIGN.md §4. *)

(** Fabric topology.  [Flat] is the single shared PCIe bus of the
    paper's testbed (the default): every host<->device and cross-device
    byte contends for one aggregate [fabric_bandwidth] pipe.
    [Islands] models an NVLink-style machine: devices are grouped into
    islands of [island_size] consecutive ids, each with one
    intra-island link (direct device<->device traffic at
    [link_bandwidth]) and one host/inter-island uplink at
    [uplink_bandwidth]; transfers occupy every link on their route, so
    contention is per-link instead of machine-global. *)
type topology =
  | Flat
  | Islands of {
      island_size : int;
      link_bandwidth : float;
      uplink_bandwidth : float;
    }

type host_costs = {
  tracker_op_seconds : float;
      (** cost of one segment-tracker query or update (B-tree op) *)
  range_seconds : float;
      (** cost of emitting/handling one enumerator range *)
  dispatch_seconds : float;
      (** host-side bookkeeping per kernel-partition launch *)
}

type t = {
  name : string;
  n_devices : int;
  sms_per_device : int;
  ops_per_sm : float;
      (** simple kernel-IR operations per second per SM *)
  blocks_per_sm : int;  (** concurrently resident blocks per SM *)
  autoboost_derate : float;
      (** per-die throughput lost when all [total_dies] are active *)
  total_dies : int;  (** dies physically present (thermal envelope) *)
  pcie_bandwidth : float;  (** host<->device link bytes per second *)
  p2p_bandwidth : float;  (** device<->device link bytes per second *)
  dmem_bandwidth : float;
      (** device-local memory copy bytes per second (same-device copies
          never cross the PCIe fabric) *)
  fabric_bandwidth : float;
      (** aggregate PCIe fabric bytes per second, shared by all
          transfers in flight; device-local copies occupy none of it *)
  transfer_latency : float;  (** fixed seconds per transfer *)
  launch_latency : float;  (** fixed host seconds per kernel launch *)
  sync_device_seconds : float;
      (** host cost of synchronizing with one device context *)
  elem_bytes : int;  (** bytes per array element *)
  mem_capacity : int;
      (** device-memory bytes per die; allocations and resident
          segments are charged against it ([max_int] = unlimited, the
          default; a real K80 die has 12 GiB) *)
  topology : topology;
      (** fabric topology: the flat shared bus (the default, and the
          paper's testbed) or NVLink-style islands with per-link
          contention *)
  device_speeds : float array;
      (** per-device throughput multiplier on [ops_per_sm] for
          heterogeneous fleets; [[||]] (the default) = homogeneous.
          Non-empty arrays must have length [n_devices] with every
          entry positive. *)
  host : host_costs;
  faults : Faults.spec option;
      (** fault-injection spec applied to machines built over this
          config; [None] = ideal hardware (the default) *)
}

val k80_host_costs : host_costs

val validate : t -> t
(** Sanity-check a config, raising [Invalid_argument] with the field
    name on non-positive bandwidths, op rates, counts or
    [mem_capacity], a derate outside [0,1), or negative latencies.
    Returns the config unchanged when valid.  [Machine.create] calls
    this, so hand-built configs are checked too. *)

val k80_box :
  ?n_devices:int -> ?mem_capacity:int -> ?topology:topology ->
  ?device_speeds:float array -> unit -> t
(** The calibrated K80-class box (default 16 devices, unlimited
    device memory, flat fabric, homogeneous dies). *)

val test_box :
  ?n_devices:int -> ?mem_capacity:int -> ?topology:topology ->
  ?device_speeds:float array -> unit -> t
(** Machine for functional tests (timing constants irrelevant there). *)

val lease : t -> n_devices:int -> t
(** The config of a leased sub-machine: the same per-device constants
    over [n_devices] (1 <= [n_devices] <= [t.n_devices], else
    [Invalid_argument]) of the fleet's devices, with the fleet-level
    fault spec dropped — the serving scheduler injects per-job faults
    and translates fleet-wide scheduled losses into lease-local ones
    itself.  [total_dies] is kept: leased dies share the box's thermal
    envelope.  [device_speeds] is reset to homogeneous — a lease grabs
    whichever fleet devices are free, so a speed map keyed by fleet id
    cannot be sliced meaningfully. *)

val boost_factor : t -> active:int -> float
(** Per-die throughput factor when [active] dies are busy. *)

val device_speed : t -> int -> float
(** Throughput multiplier of one device: [device_speeds.(d)], or 1.0 on
    a homogeneous box (empty [device_speeds]) / out-of-range ids. *)

val heterogeneous : t -> bool
(** Whether [device_speeds] names at least two different speeds. *)

val topology_of_string : string -> (topology, string) result
(** Parse a CLI topology spec: ["flat"], or
    ["islands:SIZE,LINK_GBS,UPLINK_GBS"] with bandwidths in GB/s
    (e.g. ["islands:4,80,12"]). *)

val topology_to_string : topology -> string

val pp : Format.formatter -> t -> unit
