(* Chrome-trace export of one simulated run.

   Mapping (devices are processes, engines are threads):

     pid 0        "host"    tid 0 host timeline   tid 1 spans   tid 2 faults
     pid 1        "fabric"  one tid per contention lane (tid 0 "bus" on
                            the flat topology; per-island link/uplink
                            lanes on an islands topology)
     pid 2 + d    "dev d"   tid 0 compute   tid 1 copy_in   tid 2 copy_out

   Device lanes are built from the machine's event trace (which knows
   the endpoints and byte counts); the host and fabric lanes come from
   their per-operation timeline logs; host-side spans that carried a
   simulated-time sampler are rendered on the spans lane.  Everything
   is on the *simulated* clock (microseconds) — wall-clock-only spans
   (toolchain phases) belong to the profile report, not the trace.

   Requires [Machine.enable_trace] before the run; with tracing off
   the export degrades to metadata plus host/fabric lanes only. *)

let host_pid = 0
let fabric_pid = 1
let device_pid d = 2 + d

let host_tid_timeline = 0
let host_tid_spans = 1
let host_tid_faults = 2
let host_tid_critpath = 3

let tid_compute = 0
let tid_copy_in = 1
let tid_copy_out = 2

let us seconds = seconds *. 1e6

let metadata m =
  let open Obs.Chrome_trace in
  [
    Process_name { pid = host_pid; name = "host" };
    Thread_name { pid = host_pid; tid = host_tid_timeline; name = "host thread" };
    Thread_name { pid = host_pid; tid = host_tid_spans; name = "engine spans" };
    Thread_name { pid = host_pid; tid = host_tid_faults; name = "faults" };
    Process_name { pid = fabric_pid; name = "fabric" };
  ]
  @ List.mapi
      (fun tid (name, _) -> Thread_name { pid = fabric_pid; tid; name })
      (Machine.link_timelines m)
  @ List.concat
      (List.init (Machine.n_devices m) (fun d ->
           [
             Process_name
               { pid = device_pid d; name = Printf.sprintf "dev%d" d };
             Thread_name { pid = device_pid d; tid = tid_compute; name = "compute" };
             Thread_name { pid = device_pid d; tid = tid_copy_in; name = "copy_in" };
             Thread_name
               { pid = device_pid d; tid = tid_copy_out; name = "copy_out" };
           ]))

let endpoint d = if d < 0 then "host" else Printf.sprintf "dev%d" d

(* One machine event, spread onto the engine lane(s) it occupied. *)
let event_lanes (e : Machine.event) =
  let open Obs.Chrome_trace in
  let ts = us e.Machine.ev_start in
  let dur = us (e.Machine.ev_finish -. e.Machine.ev_start) in
  let transfer name lanes =
    let args =
      [
        ("bytes", Obs.Json.Int e.Machine.ev_bytes);
        ("src", Obs.Json.Str (endpoint e.Machine.ev_src));
        ("dst", Obs.Json.Str (endpoint e.Machine.ev_dst));
      ]
    in
    List.map
      (fun (pid, tid) ->
         Complete { name; cat = "transfer"; pid; tid; ts; dur; args })
      lanes
  in
  match e.Machine.ev_kind with
  | `Kernel ->
    [
      Complete
        {
          name = "kernel";
          cat = "kernel";
          pid = device_pid e.Machine.ev_src;
          tid = tid_compute;
          ts;
          dur;
          args = [];
        };
    ]
  | `H2d -> transfer "h2d" [ (device_pid e.Machine.ev_dst, tid_copy_in) ]
  | `D2h -> transfer "d2h" [ (device_pid e.Machine.ev_src, tid_copy_out) ]
  | `P2p ->
    let src_lane = (device_pid e.Machine.ev_src, tid_copy_out) in
    if e.Machine.ev_src = e.Machine.ev_dst then transfer "p2p" [ src_lane ]
    else
      transfer "p2p"
        [ src_lane; (device_pid e.Machine.ev_dst, tid_copy_in) ]
  | `Fault ->
    [
      Instant
        {
          name = "fault";
          cat = "fault";
          pid = host_pid;
          tid = host_tid_faults;
          ts;
          args =
            [
              ("src", Obs.Json.Str (endpoint e.Machine.ev_src));
              ("dst", Obs.Json.Str (endpoint e.Machine.ev_dst));
            ];
        };
    ]
  | `Mem ->
    (* Memory-pressure marker on the device's compute lane: emitted on
       90%-of-capacity crossings and on out-of-memory, carrying the
       bytes charged at that moment. *)
    [
      Instant
        {
          name = "mem_pressure";
          cat = "mem";
          pid = device_pid e.Machine.ev_src;
          tid = tid_compute;
          ts;
          args = [ ("used_bytes", Obs.Json.Int e.Machine.ev_bytes) ];
        };
    ]

let timeline_lane ~pid ~tid ~cat tl =
  List.map
    (fun (op : Timeline.op) ->
       Obs.Chrome_trace.Complete
         {
           name = op.Timeline.op_category;
           cat;
           pid;
           tid;
           ts = us op.Timeline.op_start;
           dur = us (op.Timeline.op_finish -. op.Timeline.op_start);
           args = [];
         })
    (Timeline.log tl)

let span_events spans =
  List.filter_map
    (fun (s : Obs.Span.record) ->
       if Float.is_nan s.Obs.Span.sp_sim_start then None
       else
         Some
           (Obs.Chrome_trace.Complete
              {
                name =
                  (if s.Obs.Span.sp_cat = "" then s.Obs.Span.sp_name
                   else s.Obs.Span.sp_cat ^ "." ^ s.Obs.Span.sp_name);
                cat = "span";
                pid = host_pid;
                tid = host_tid_spans;
                ts = us s.Obs.Span.sp_sim_start;
                dur = us (s.Obs.Span.sp_sim_stop -. s.Obs.Span.sp_sim_start);
                args =
                  [
                    ( "wall_us",
                      Obs.Json.Float
                        (us (s.Obs.Span.sp_wall_stop -. s.Obs.Span.sp_wall_start))
                    );
                    ("depth", Obs.Json.Int s.Obs.Span.sp_depth);
                  ];
              }))
    spans

(* Critical-path lane: the analysis segments tile [0, makespan], so
   the lane renders as one unbroken bar colored by category, with flow
   arrows chaining consecutive segments (the causal hand-off the
   validator checks never points backwards in time). *)
let critpath_events (an : Obs.Causal.analysis) =
  let open Obs.Chrome_trace in
  let segs = Array.of_list an.Obs.Causal.an_segments in
  List.concat
    (List.init (Array.length segs) (fun i ->
         let s = segs.(i) in
         let seg =
           Complete
             {
               name = s.Obs.Causal.sg_label;
               cat = s.Obs.Causal.sg_category;
               pid = host_pid;
               tid = host_tid_critpath;
               ts = us s.Obs.Causal.sg_start;
               dur = us (s.Obs.Causal.sg_finish -. s.Obs.Causal.sg_start);
               args =
                 [
                   ("category", Obs.Json.Str s.Obs.Causal.sg_category);
                   ("node", Obs.Json.Int s.Obs.Causal.sg_node);
                 ];
             }
         in
         if i + 1 >= Array.length segs then [ seg ]
         else
           let boundary = us s.Obs.Causal.sg_finish in
           [
             seg;
             Flow_start
               {
                 name = "critpath";
                 cat = "critpath";
                 pid = host_pid;
                 tid = host_tid_critpath;
                 ts = boundary;
                 id = i;
               };
             Flow_finish
               {
                 name = "critpath";
                 cat = "critpath";
                 pid = host_pid;
                 tid = host_tid_critpath;
                 ts = boundary;
                 id = i;
               };
           ]))

(* Lane, then time; longer events first on ties so nested spans render
   (and validate) properly.  This also guarantees per-lane monotone
   timestamps regardless of the order events were gathered in.  Flow
   starts sort before finishes on ties, preserving pairing order. *)
let lane_order a b =
  let open Obs.Chrome_trace in
  let key = function
    | Complete e -> (e.pid, e.tid, e.ts, -.e.dur)
    | Instant e -> (e.pid, e.tid, e.ts, 0.0)
    | Flow_start e -> (e.pid, e.tid, e.ts, 1.0)
    | Flow_finish e -> (e.pid, e.tid, e.ts, 2.0)
    | Process_name e -> (e.pid, -1, neg_infinity, 0.0)
    | Thread_name e -> (e.pid, e.tid, neg_infinity, 0.0)
  in
  compare (key a) (key b)

let events ?(spans = []) ?critpath m =
  let timing =
    List.concat_map event_lanes (Machine.trace m)
    @ timeline_lane ~pid:host_pid ~tid:host_tid_timeline ~cat:"host"
        (Machine.host_timeline m)
    @ List.concat
        (List.mapi
           (fun tid (_, tl) -> timeline_lane ~pid:fabric_pid ~tid ~cat:"fabric" tl)
           (Machine.link_timelines m))
    @ span_events spans
    @ (match critpath with None -> [] | Some an -> critpath_events an)
  in
  let meta =
    metadata m
    @
    match critpath with
    | None -> []
    | Some _ ->
      [
        Obs.Chrome_trace.Thread_name
          { pid = host_pid; tid = host_tid_critpath; name = "critical path" };
      ]
  in
  meta @ List.stable_sort lane_order timing

let to_json ?spans ?critpath m =
  Obs.Chrome_trace.to_json (events ?spans ?critpath m)

let to_string ?spans ?critpath m =
  Obs.Chrome_trace.to_string (events ?spans ?critpath m)

let write ?spans ?critpath ~file m =
  Obs.Chrome_trace.write ~file (events ?spans ?critpath m)
