(* Chrome-trace export of one simulated run.

   Mapping (devices are processes, engines are threads):

     pid 0        "host"    tid 0 host timeline   tid 1 spans   tid 2 faults
     pid 1        "fabric"  one tid per contention lane (tid 0 "bus" on
                            the flat topology; per-island link/uplink
                            lanes on an islands topology)
     pid 2 + d    "dev d"   tid 0 compute   tid 1 copy_in   tid 2 copy_out

   Device lanes are built from the machine's event trace (which knows
   the endpoints and byte counts); the host and fabric lanes come from
   their per-operation timeline logs; host-side spans that carried a
   simulated-time sampler are rendered on the spans lane.  Everything
   is on the *simulated* clock (microseconds) — wall-clock-only spans
   (toolchain phases) belong to the profile report, not the trace.

   Requires [Machine.enable_trace] before the run; with tracing off
   the export degrades to metadata plus host/fabric lanes only. *)

let host_pid = 0
let fabric_pid = 1
let device_pid d = 2 + d

let host_tid_timeline = 0
let host_tid_spans = 1
let host_tid_faults = 2

let tid_compute = 0
let tid_copy_in = 1
let tid_copy_out = 2

let us seconds = seconds *. 1e6

let metadata m =
  let open Obs.Chrome_trace in
  [
    Process_name { pid = host_pid; name = "host" };
    Thread_name { pid = host_pid; tid = host_tid_timeline; name = "host thread" };
    Thread_name { pid = host_pid; tid = host_tid_spans; name = "engine spans" };
    Thread_name { pid = host_pid; tid = host_tid_faults; name = "faults" };
    Process_name { pid = fabric_pid; name = "fabric" };
  ]
  @ List.mapi
      (fun tid (name, _) -> Thread_name { pid = fabric_pid; tid; name })
      (Machine.link_timelines m)
  @ List.concat
      (List.init (Machine.n_devices m) (fun d ->
           [
             Process_name
               { pid = device_pid d; name = Printf.sprintf "dev%d" d };
             Thread_name { pid = device_pid d; tid = tid_compute; name = "compute" };
             Thread_name { pid = device_pid d; tid = tid_copy_in; name = "copy_in" };
             Thread_name
               { pid = device_pid d; tid = tid_copy_out; name = "copy_out" };
           ]))

let endpoint d = if d < 0 then "host" else Printf.sprintf "dev%d" d

(* One machine event, spread onto the engine lane(s) it occupied. *)
let event_lanes (e : Machine.event) =
  let open Obs.Chrome_trace in
  let ts = us e.Machine.ev_start in
  let dur = us (e.Machine.ev_finish -. e.Machine.ev_start) in
  let transfer name lanes =
    let args =
      [
        ("bytes", Obs.Json.Int e.Machine.ev_bytes);
        ("src", Obs.Json.Str (endpoint e.Machine.ev_src));
        ("dst", Obs.Json.Str (endpoint e.Machine.ev_dst));
      ]
    in
    List.map
      (fun (pid, tid) ->
         Complete { name; cat = "transfer"; pid; tid; ts; dur; args })
      lanes
  in
  match e.Machine.ev_kind with
  | `Kernel ->
    [
      Complete
        {
          name = "kernel";
          cat = "kernel";
          pid = device_pid e.Machine.ev_src;
          tid = tid_compute;
          ts;
          dur;
          args = [];
        };
    ]
  | `H2d -> transfer "h2d" [ (device_pid e.Machine.ev_dst, tid_copy_in) ]
  | `D2h -> transfer "d2h" [ (device_pid e.Machine.ev_src, tid_copy_out) ]
  | `P2p ->
    let src_lane = (device_pid e.Machine.ev_src, tid_copy_out) in
    if e.Machine.ev_src = e.Machine.ev_dst then transfer "p2p" [ src_lane ]
    else
      transfer "p2p"
        [ src_lane; (device_pid e.Machine.ev_dst, tid_copy_in) ]
  | `Fault ->
    [
      Instant
        {
          name = "fault";
          cat = "fault";
          pid = host_pid;
          tid = host_tid_faults;
          ts;
          args =
            [
              ("src", Obs.Json.Str (endpoint e.Machine.ev_src));
              ("dst", Obs.Json.Str (endpoint e.Machine.ev_dst));
            ];
        };
    ]
  | `Mem ->
    (* Memory-pressure marker on the device's compute lane: emitted on
       90%-of-capacity crossings and on out-of-memory, carrying the
       bytes charged at that moment. *)
    [
      Instant
        {
          name = "mem_pressure";
          cat = "mem";
          pid = device_pid e.Machine.ev_src;
          tid = tid_compute;
          ts;
          args = [ ("used_bytes", Obs.Json.Int e.Machine.ev_bytes) ];
        };
    ]

let timeline_lane ~pid ~tid ~cat tl =
  List.map
    (fun (op : Timeline.op) ->
       Obs.Chrome_trace.Complete
         {
           name = op.Timeline.op_category;
           cat;
           pid;
           tid;
           ts = us op.Timeline.op_start;
           dur = us (op.Timeline.op_finish -. op.Timeline.op_start);
           args = [];
         })
    (Timeline.log tl)

let span_events spans =
  List.filter_map
    (fun (s : Obs.Span.record) ->
       if Float.is_nan s.Obs.Span.sp_sim_start then None
       else
         Some
           (Obs.Chrome_trace.Complete
              {
                name =
                  (if s.Obs.Span.sp_cat = "" then s.Obs.Span.sp_name
                   else s.Obs.Span.sp_cat ^ "." ^ s.Obs.Span.sp_name);
                cat = "span";
                pid = host_pid;
                tid = host_tid_spans;
                ts = us s.Obs.Span.sp_sim_start;
                dur = us (s.Obs.Span.sp_sim_stop -. s.Obs.Span.sp_sim_start);
                args =
                  [
                    ( "wall_us",
                      Obs.Json.Float
                        (us (s.Obs.Span.sp_wall_stop -. s.Obs.Span.sp_wall_start))
                    );
                    ("depth", Obs.Json.Int s.Obs.Span.sp_depth);
                  ];
              }))
    spans

(* Lane, then time; longer events first on ties so nested spans render
   (and validate) properly.  This also guarantees per-lane monotone
   timestamps regardless of the order events were gathered in. *)
let lane_order a b =
  let open Obs.Chrome_trace in
  let key = function
    | Complete e -> (e.pid, e.tid, e.ts, -.e.dur)
    | Instant e -> (e.pid, e.tid, e.ts, 0.0)
    | Process_name e -> (e.pid, -1, neg_infinity, 0.0)
    | Thread_name e -> (e.pid, e.tid, neg_infinity, 0.0)
  in
  compare (key a) (key b)

let events ?(spans = []) m =
  let timing =
    List.concat_map event_lanes (Machine.trace m)
    @ timeline_lane ~pid:host_pid ~tid:host_tid_timeline ~cat:"host"
        (Machine.host_timeline m)
    @ List.concat
        (List.mapi
           (fun tid (_, tl) -> timeline_lane ~pid:fabric_pid ~tid ~cat:"fabric" tl)
           (Machine.link_timelines m))
    @ span_events spans
  in
  metadata m @ List.stable_sort lane_order timing

let to_json ?spans m = Obs.Chrome_trace.to_json (events ?spans m)
let to_string ?spans m = Obs.Chrome_trace.to_string (events ?spans m)
let write ?spans ~file m = Obs.Chrome_trace.write ~file (events ?spans m)
