(** Device memory buffers.  In functional mode a buffer carries real
    float data; in performance mode only the extents exist, so
    paper-sized problems never allocate tens of GiB. *)

type t

val create :
  id:int -> device:int -> len:int -> charged_bytes:int -> functional:bool -> t

val id : t -> int

val device : t -> int
(** Owning device id. *)

val len : t -> int
(** Element count. *)

val charged_bytes : t -> int
(** Bytes charged against the owning device's capacity at creation; 0
    for virtual buffers accounted segment-wise by the runtime. *)

val data_exn : t -> float array
(** The backing data; raises [Invalid_argument] on performance-mode
    buffers. *)

val has_data : t -> bool

val blit_from_host :
  src:float array -> src_off:int -> t -> dst_off:int -> len:int -> unit
(** Copy host data in; a no-op in performance mode. *)

val blit_to_host :
  t -> src_off:int -> dst:float array -> dst_off:int -> len:int -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Device-to-device copy; both buffers must be in the same mode. *)

val check_range : t -> off:int -> len:int -> what:string -> unit
(** Raise [Invalid_argument] when the range leaves the buffer. *)
