(** Seeded, deterministic fault injection for the machine simulator.

    Covers transient kernel faults, transient transfer faults and
    permanent device loss (scheduled at a simulated time or drawn per
    operation).  All randomness comes from one splitmix64 stream seeded
    by the spec, so the fault schedule is a pure function of
    (seed, operation sequence) — two runs over the same program see the
    identical schedule.  A cap on consecutive transient faults
    guarantees that a retrying engine always makes progress. *)

type spec = {
  seed : int;
  kernel_fault_rate : float;  (** transient-fault probability per launch *)
  transfer_fault_rate : float;  (** per transfer (h2d/d2h/p2p) *)
  loss_rate : float;  (** permanent-loss probability per operation *)
  scheduled_losses : (int * float) list;
      (** (device, simulated seconds): the device is lost at the first
          operation touching it whose issue time — or whose engines'
          queued work — reaches that time (work executing at or after
          the death instant must fail even if issued earlier) *)
  max_consecutive : int;
      (** forced success after this many transient faults in a row *)
}

val null_spec : spec
(** Seed 0, all rates zero, no scheduled losses. *)

val is_null : spec -> bool
(** True when the spec can never produce a fault. *)

val spec_of_string : string -> (spec, string) result
(** Parse ["SEED,RATE[,DEV@TIME...]"]: [RATE] applies to kernels and
    transfers alike, each [DEV@TIME] schedules a permanent loss. *)

type counters = {
  mutable kernel_faults : int;
  mutable transfer_faults : int;
  mutable losses : int;
}

type t

val create : spec -> t
val spec : t -> spec
val counters : t -> counters

val uniform : t -> float
(** Next uniform float in [0, 1) from the stream (exposed for tests). *)

val device_lost : t -> int -> bool
val n_lost : t -> int

val mark_lost : t -> int -> unit
(** Force a permanent loss (test support). *)

type outcome = [ `Ok | `Transient | `Lost ]

val kernel_outcome : t -> device:int -> now:float -> outcome
(** Fate of a kernel launch on [device] issued at simulated [now].
    [`Lost] marks the device lost as a side effect. *)

val transfer_outcome :
  t -> devices:int list -> now:float -> [ `Ok | `Transient | `Lost of int ]
(** Fate of a transfer touching [devices] (negative ids — the host —
    are ignored).  [`Lost d] names the device that failed. *)

val pp_counters : Format.formatter -> counters -> unit
