(** Per-tenant SLO aggregation: outcome counts, queue-latency and
    turnaround percentiles, device-seconds consumed. *)

type tenant = {
  t_name : string;
  t_submitted : int;
  t_completed : int;
  t_rejected : int;
  t_timed_out : int;
  t_quarantined : int;
  t_retries : int;  (** failure retries across the tenant's jobs *)
  t_preemptions : int;  (** loss-preempt/requeue cycles *)
  t_queue_p50 : float;  (** seconds; 0 when nothing completed *)
  t_queue_p99 : float;
  t_turnaround_p50 : float;
  t_turnaround_p99 : float;
  t_device_seconds : float;  (** lease occupancy, all attempts *)
  t_burn_queue : float;
      (** summed queue wait of the tenant's completed jobs, seconds *)
  t_burn_run : float;  (** summed engine time of completed jobs *)
  t_burn_stall : float;
      (** turnaround not explained by queue or engine time (requeue
          gaps, retry backoff), clamped at 0 per job *)
}

val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [0,100], linearly interpolated
    over the sorted samples; 0 on an empty array. *)

val collect :
  jobs:Job.report list -> device_seconds:(string * float) list ->
  tenant list
(** Aggregate job reports (plus per-tenant device-second contributions
    from lease segments) into one row per tenant, sorted by name. *)

val to_json : tenant list -> Obs.Json.t
val pp : Format.formatter -> tenant list -> unit
(** An aligned table, one tenant per row. *)
