(** Jobs of the serving layer: what tenants submit and what they get
    back.  Every submitted job ends in exactly one typed {!outcome} —
    the scheduler never drops work silently. *)

type spec = {
  name : string;  (** unique within one scheduler run *)
  tenant : string;
  prog : Host_ir.t;
  exe : Mekong.Multi_gpu.exe option;
      (** pre-linked binary; [None] makes the scheduler compile the
          program on arrival (a [Compile_error] rejection on failure) *)
  priority : int;  (** higher dispatches first *)
  arrival : float;  (** submission time, simulated seconds *)
  deadline : float option;
      (** turnaround budget relative to [arrival]; when it expires the
          job is preempted and reported [Timed_out] *)
  devices : int;  (** requested lease size (clamped to the live fleet) *)
  faults : Gpusim.Faults.spec option;
      (** job-local fault injection on the leased sub-machine *)
}

val make :
  ?exe:Mekong.Multi_gpu.exe ->
  ?priority:int ->
  ?arrival:float ->
  ?deadline:float ->
  ?devices:int ->
  ?faults:Gpusim.Faults.spec ->
  name:string ->
  tenant:string ->
  Host_ir.t ->
  spec
(** Defaults: priority 0, arrival 0.0, no deadline, 1 device, no
    faults.  Raises [Invalid_argument] on a negative arrival, a
    non-positive deadline or a non-positive device request. *)

type reject_reason =
  | Queue_full of int  (** the bounded queue's limit *)
  | Infeasible of string
      (** footprint cannot fit the live fleet under the capacity *)
  | Compile_error of string
  | Fleet_lost  (** no device survives *)

val reject_reason_to_string : reject_reason -> string

type outcome =
  | Completed of {
      started : float;  (** first dispatch *)
      finished : float;
      queue_latency : float;  (** started - arrival *)
      turnaround : float;  (** finished - arrival *)
      engine_time : float;  (** simulated engine seconds, all attempts *)
      attempts : int;  (** dispatches, including preempted/failed ones *)
      preemptions : int;  (** device-loss preempt/requeue cycles *)
      retries : int;  (** failure retries (circuit-breaker strikes) *)
    }
  | Rejected of { at : float; reason : reject_reason }
  | Timed_out of { at : float; started : float option }
  | Quarantined of { at : float; strikes : int; last_error : string }
      (** the circuit breaker gave up on a poison job *)

val outcome_name : outcome -> string
(** ["completed"], ["rejected"], ["timed_out"] or ["quarantined"]. *)

type report = {
  r_name : string;
  r_tenant : string;
  r_priority : int;
  r_arrival : float;
  r_outcome : outcome;
}

val report_to_json : report -> Obs.Json.t
val pp_outcome : Format.formatter -> outcome -> unit
