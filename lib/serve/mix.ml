(* Deterministic synthetic job mixes for the serving campaigns. *)

type built = {
  b_spec : Job.spec;
  b_key : string;
  b_output : float array;
  b_solo : unit -> Mekong.Multi_gpu.exe * float array;
  b_poison : bool;
}

(* Small functional instances: inputs are pure functions of the index,
   so two builds of one key are bit-identical. *)
let menu : (string * (unit -> Host_ir.t * float array)) list =
  let third (p, o, _) = (p, o) in
  [
    ("vecadd-1024", fun () -> third (Apps.Workloads.functional_vecadd ~n:1024));
    ("vecadd-4096", fun () -> third (Apps.Workloads.functional_vecadd ~n:4096));
    ("matmul-24", fun () -> third (Apps.Workloads.functional_matmul ~n:24));
    ("matmul-32", fun () -> third (Apps.Workloads.functional_matmul ~n:32));
    ( "hotspot-32",
      fun () -> third (Apps.Workloads.functional_hotspot ~n:32 ~iterations:2) );
    ( "hotspot-48",
      fun () -> third (Apps.Workloads.functional_hotspot ~n:48 ~iterations:2) );
    ( "nbody-64",
      fun () -> third (Apps.Workloads.functional_nbody ~n:64 ~iterations:1) );
    ( "nbody-96",
      fun () -> third (Apps.Workloads.functional_nbody ~n:96 ~iterations:2) );
  ]

let keys = List.map fst menu

(* Polyhedral analysis depends only on kernel structure and scalar
   arguments — identical across instances of one key — so pass 1 runs
   once per key and pass 2 links each instance against the cached
   model. *)
let model_cache : (string, Mekong.Model.t) Hashtbl.t = Hashtbl.create 8

let link key (prog : Host_ir.t) =
  let model =
    match Hashtbl.find_opt model_cache key with
    | Some m -> m
    | None -> (
        match Mekong.Toolchain.pass1 prog with
        | Ok (m, _) ->
          Hashtbl.add model_cache key m;
          m
        | Error e -> failwith (Mekong.Toolchain.error_message e))
  in
  Mekong.Toolchain.pass2 model prog

let build key =
  let prog, out = (List.assoc key menu) () in
  (prog, out)

let poison_faults seed =
  {
    Gpusim.Faults.seed;
    kernel_fault_rate = 1.0;
    transfer_fault_rate = 0.0;
    loss_rate = 0.0;
    scheduled_losses = [];
    max_consecutive = max_int;
  }

let generate ?(seed = 1) ?(tenants = 3) ?(poison = 0) ?deadline
    ?(mean_gap = 2e-4) ~jobs () =
  if jobs < 1 then invalid_arg "Mix.generate: jobs must be positive";
  if tenants < 1 then invalid_arg "Mix.generate: tenants must be positive";
  if poison < 0 || poison > jobs then
    invalid_arg "Mix.generate: poison must be in [0, jobs]";
  let rng = Gpusim.Faults.create { Gpusim.Faults.null_spec with seed } in
  let u () = Gpusim.Faults.uniform rng in
  let draw n = min (n - 1) (int_of_float (u () *. float_of_int n)) in
  let menu_arr = Array.of_list menu in
  (* Poison jobs spread evenly through the stream, never at index 0 (a
     cold scheduler start should see a healthy job first). *)
  let poison_at =
    List.init poison (fun k -> ((2 * k) + 1) * jobs / (2 * poison))
    |> List.map (fun i -> max 1 (min (jobs - 1) i))
  in
  let t = ref 0.0 in
  List.init jobs (fun i ->
      t := !t +. (2.0 *. mean_gap *. u ());
      let arrival = !t in
      let tenant = Printf.sprintf "tenant-%d" (draw tenants) in
      let priority = draw 3 in
      let devices = [| 1; 2; 4 |].(draw 3) in
      let is_poison = List.mem i poison_at in
      let key =
        if is_poison then "vecadd-1024" else fst menu_arr.(draw (Array.length menu_arr))
      in
      let prog, out = build key in
      let exe = link key prog in
      let name =
        if is_poison then Printf.sprintf "j%03d-poison" i
        else Printf.sprintf "j%03d-%s" i key
      in
      let faults = if is_poison then Some (poison_faults (seed + i)) else None in
      {
        b_spec =
          Job.make ~exe ~priority ~arrival ?deadline ~devices ?faults ~name
            ~tenant prog;
        b_key = key;
        b_output = out;
        b_solo =
          (fun () ->
            let prog', out' = build key in
            (link key prog', out'));
        b_poison = is_poison;
      })
