(* The serving scheduler: a discrete-event loop over global simulated
   time.  Each dispatched job runs a partitioned engine on a fresh
   sub-machine sized to its device lease (Config.lease); fleet-wide
   scheduled losses are translated into lease-local scheduled losses
   plus an engine preemption bound, so an in-flight job hit by a loss
   self-heals through the PR-2 machinery, checkpoints into a portable
   handoff, and re-queues for the surviving devices. *)

type config = {
  fleet : Gpusim.Config.t;
  functional : bool;
  max_queue : int;
  max_strikes : int;
  retry_base : float;
  retry_cap : float;
  losses : (int * float) list;
  checkpoint_every : int;
  domains : int option;
}

let config ?(functional = true) ?(max_queue = 64) ?(max_strikes = 3)
    ?(retry_base = 1e-3) ?(retry_cap = 0.25) ?(losses = [])
    ?(checkpoint_every = 4) ?domains fleet =
  let fleet = Gpusim.Config.validate fleet in
  let reject what = invalid_arg ("Scheduler.config: " ^ what) in
  if max_queue < 1 then reject "max_queue must be positive";
  if max_strikes < 1 then reject "max_strikes must be positive";
  if not (retry_base > 0.0) then reject "retry_base must be positive";
  if not (retry_cap >= retry_base) then
    reject "retry_cap must be at least retry_base";
  if checkpoint_every < 1 then reject "checkpoint_every must be positive";
  List.iter
    (fun (d, t) ->
       if d < 0 || d >= fleet.Gpusim.Config.n_devices then
         reject
           (Printf.sprintf "loss device %d out of range [0,%d)" d
              fleet.Gpusim.Config.n_devices);
       if not (t >= 0.0) then
         reject (Printf.sprintf "loss time %g must be non-negative" t))
    losses;
  (* One loss per device: the earliest wins (a device dies once). *)
  let losses =
    List.sort compare losses
    |> List.fold_left
      (fun acc (d, t) ->
         if List.mem_assoc d acc then acc else (d, t) :: acc)
      []
    |> List.rev
  in
  {
    fleet;
    functional;
    max_queue;
    max_strikes;
    retry_base;
    retry_cap;
    losses;
    checkpoint_every;
    domains;
  }

type segment = {
  sg_job : string;
  sg_tenant : string;
  sg_devices : int list;
  sg_start : float;
  sg_stop : float;
  sg_outcome : [ `Done | `Preempted | `Timed_out | `Failed ];
}

type report = {
  r_fleet : int;
  r_jobs : Job.report list;
  r_segments : segment list;
  r_queue_log : (float * string * string) list;
  r_losses : (int * float) list;
  r_makespan : float;
  r_utilization : float;
  r_devices_lost : int;
  r_peak_queue : int;
}

(* Mutable per-job serving state. *)
type jstate = {
  js_spec : Job.spec;
  js_seq : int;  (* submission index, the final tie-breaker *)
  js_predicted : float;  (* static runtime estimate (EDF queue key) *)
  mutable js_exe : Mekong.Multi_gpu.exe option;
  mutable js_handoff : Mekong.Multi_gpu.handoff option;
  mutable js_strikes : int;
  mutable js_attempts : int;
  mutable js_preemptions : int;
  mutable js_retries : int;
  mutable js_started : float option;
  mutable js_engine_time : float;
  mutable js_outcome : Job.outcome option;
}

type fate =
  | Fate_done
  | Fate_preempt of Mekong.Multi_gpu.handoff * [ `Loss | `Deadline ]
  | Fate_fail of string

type ev =
  | Arrive of jstate
  | Release of { job : jstate; lease : int list; fate : fate }
  | Lose of int
  | Requeue of jstate

(* Admission estimate: the high-water mark of live Malloc'd elements.
   Under the linear scatter a lease of k devices holds ~1/k of every
   buffer per device, so the smallest feasible lease is
   ceil(footprint_bytes / mem_capacity).  An estimate, not a proof —
   the engine's own chunking and spilling absorb the slack, and a live
   OOM surfaces as a typed failure into the retry/quarantine path. *)
let footprint_elems (prog : Host_ir.t) =
  let live : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let cur = ref 0 and hw = ref 0 in
  let rec go (s : Host_ir.stmt) =
    match s with
    | Host_ir.Malloc (name, len) ->
      if not (Hashtbl.mem live name) then begin
        Hashtbl.replace live name len;
        cur := !cur + len;
        if !cur > !hw then hw := !cur
      end
    | Host_ir.Free name -> (
        match Hashtbl.find_opt live name with
        | Some len ->
          Hashtbl.remove live name;
          cur := !cur - len
        | None -> ())
    | Host_ir.Repeat (_, body) -> List.iter go body
    | _ -> ()
  in
  List.iter go prog.Host_ir.body;
  !hw

(* Static runtime estimate for deadline-aware admission: each launch's
   ops-per-block through the simulator's wave/autoboost formula on the
   job's requested lease size, each memcpy's bytes over the host link,
   Repeat-multiplied.  The same static walk the partition autotuner
   scores candidates with, collapsed to a single number — an ordering
   heuristic for the queue, never a promise to the job. *)
let predicted_runtime (fleet : Gpusim.Config.t) (spec : Job.spec) =
  let n = max 1 (min spec.Job.devices fleet.Gpusim.Config.n_devices) in
  let slots =
    fleet.Gpusim.Config.sms_per_device * fleet.Gpusim.Config.blocks_per_sm
  in
  let boost = Gpusim.Config.boost_factor fleet ~active:n in
  let total = ref 0.0 in
  let rec go ~mult (s : Host_ir.stmt) =
    match s with
    | Host_ir.Launch { kernel; grid; block; args } ->
      let blocks = grid.Dim3.x * grid.Dim3.y * grid.Dim3.z in
      let per_dev = (blocks + n - 1) / n in
      let scalar_env =
        Mekong.Multi_gpu.launch_bindings kernel ~grid ~block ~args
      in
      let opb = Costmodel.ops_per_block kernel ~scalar_env ~block in
      let block_time =
        opb
        *. float_of_int fleet.Gpusim.Config.blocks_per_sm
        /. (fleet.Gpusim.Config.ops_per_sm *. boost)
      in
      let t =
        block_time *. Float.max 1.0 (float_of_int per_dev /. float_of_int slots)
      in
      total := !total +. (mult *. (t +. fleet.Gpusim.Config.launch_latency))
    | Host_ir.Memcpy_h2d { src = a; _ } | Host_ir.Memcpy_d2h { dst = a; _ } ->
      total :=
        !total
        +. mult
           *. ((float_of_int (a.Host_ir.len * fleet.Gpusim.Config.elem_bytes)
                /. fleet.Gpusim.Config.pcie_bandwidth)
               +. fleet.Gpusim.Config.transfer_latency)
    | Host_ir.Repeat (k, body) ->
      List.iter (go ~mult:(mult *. float_of_int k)) body
    | _ -> ()
  in
  List.iter (go ~mult:1.0) spec.Job.prog.Host_ir.body;
  !total

let run (cfg : config) (specs : Job.spec list) : report =
  let fleet_n = cfg.fleet.Gpusim.Config.n_devices in
  (* Duplicate names would make per-job reporting (and the bench's
     bit-identity bookkeeping) ambiguous. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Job.spec) ->
       if Hashtbl.mem seen s.Job.name then
         invalid_arg ("Scheduler.run: duplicate job name " ^ s.Job.name);
       Hashtbl.add seen s.Job.name ())
    specs;
  let dead = Array.make fleet_n false in
  let freedev = Array.make fleet_n true in
  let live_count () =
    Array.fold_left (fun acc d -> if d then acc else acc + 1) 0 dead
  in
  let free_list () =
    let acc = ref [] in
    for d = fleet_n - 1 downto 0 do
      if freedev.(d) && not dead.(d) then acc := d :: !acc
    done;
    !acc
  in
  let devices_lost = ref 0 in
  let pending : jstate list ref = ref [] in
  let peak_queue = ref 0 in
  let segments = ref [] in
  let queue_log = ref [] in
  let makespan = ref 0.0 in
  let events : (float * int * ev) list ref = ref [] in
  let eseq = ref 0 in
  let push t ev =
    incr eseq;
    let entry = (t, !eseq, ev) in
    let rec ins = function
      | [] -> [ entry ]
      | ((t', _, _) as hd) :: tl -> if t < t' then entry :: hd :: tl else hd :: ins tl
    in
    events := ins !events
  in
  let qlog now kind (j : jstate) =
    makespan := Float.max !makespan now;
    queue_log := (now, kind, j.js_spec.Job.name) :: !queue_log
  in
  let finish now kind (j : jstate) outcome =
    assert (j.js_outcome = None);
    j.js_outcome <- Some outcome;
    qlog now kind j
  in
  let reject now j reason =
    finish now "reject" j (Job.Rejected { at = now; reason })
  in
  let time_out now j =
    finish now "timeout" j (Job.Timed_out { at = now; started = j.js_started })
  in
  let expired now (j : jstate) =
    match j.js_spec.Job.deadline with
    | Some d -> now >= j.js_spec.Job.arrival +. d
    | None -> false
  in
  let min_lease (j : jstate) =
    let cap = cfg.fleet.Gpusim.Config.mem_capacity in
    if cap = max_int then 1
    else
      let bytes =
        footprint_elems j.js_spec.Job.prog
        * cfg.fleet.Gpusim.Config.elem_bytes
      in
      max 1 ((bytes + cap - 1) / cap)
  in
  let enqueue (j : jstate) =
    (* Deadline-aware admission order.  Within a priority band, jobs
       carrying a deadline come first, ordered by latest feasible start
       (arrival + deadline - predicted runtime): earliest-deadline-
       first weighted by each job's own predicted length, so a short-
       deadline job is not pinned behind a long job that merely
       arrived earlier.  With no deadlines pending the key collapses
       to the original (priority, arrival, seq) FIFO exactly. *)
    let key (x : jstate) =
      let deadline = x.js_spec.Job.deadline in
      let cls = if deadline = None then 1 else 0 in
      let urgency =
        match deadline with
        | Some d -> x.js_spec.Job.arrival +. d -. x.js_predicted
        | None -> x.js_spec.Job.arrival
      in
      (-x.js_spec.Job.priority, cls, urgency, x.js_seq)
    in
    pending :=
      List.merge (fun a b -> compare (key a) (key b)) !pending [ j ];
    peak_queue := max !peak_queue (List.length !pending)
  in
  let dispatch now (j : jstate) (lease : int list) =
    List.iter (fun d -> freedev.(d) <- false) lease;
    j.js_attempts <- j.js_attempts + 1;
    if j.js_started = None then j.js_started <- Some now;
    let exe = Option.get j.js_exe in
    let sub_cfg =
      Gpusim.Config.lease cfg.fleet ~n_devices:(List.length lease)
    in
    let m = Gpusim.Machine.create ~functional:cfg.functional sub_cfg in
    (* Fleet-wide scheduled losses that will hit this lease, in lease-
       local device ids and machine-local time.  Injecting them makes
       the sub-machine physically honest: data on a dying device is
       only recoverable through the engine's own replica/checkpoint
       machinery, never by reading the corpse. *)
    let slot_of d =
      let rec go i = function
        | [] -> None
        | d' :: tl -> if d' = d then Some i else go (i + 1) tl
      in
      go 0 lease
    in
    let local_losses =
      List.filter_map
        (fun (d, t) ->
           if t > now && not dead.(d) then
             match slot_of d with
             | Some li -> Some (li, t -. now)
             | None -> None
           else None)
        cfg.losses
    in
    let spec_faults =
      Option.value ~default:Gpusim.Faults.null_spec j.js_spec.Job.faults
    in
    let merged =
      {
        spec_faults with
        Gpusim.Faults.scheduled_losses =
          spec_faults.Gpusim.Faults.scheduled_losses @ local_losses;
      }
    in
    if not (Gpusim.Faults.is_null merged) then
      Gpusim.Machine.inject_faults m (Gpusim.Faults.create merged);
    let deadline_left =
      Option.map
        (fun d -> j.js_spec.Job.arrival +. d -. now)
        j.js_spec.Job.deadline
    in
    let earliest_loss =
      List.fold_left
        (fun acc (_, t) ->
           match acc with
           | None -> Some t
           | Some a -> Some (Float.min a t))
        None local_losses
    in
    let abort_at, abort_kind =
      match (deadline_left, earliest_loss) with
      | None, None -> (None, `Deadline)
      | Some d, None -> (Some d, `Deadline)
      | None, Some l -> (Some l, `Loss)
      | Some d, Some l -> if l <= d then (Some l, `Loss) else (Some d, `Deadline)
    in
    let fate =
      try
        match
          Mekong.Multi_gpu.run_bounded
            ~checkpoint_every:cfg.checkpoint_every ?domains:cfg.domains
            ?abort_at ?resume:j.js_handoff ~machine:m exe
        with
        | Mekong.Multi_gpu.Done _ -> Fate_done
        | Mekong.Multi_gpu.Preempted (_, h) -> Fate_preempt (h, abort_kind)
      with
      | Mekong.Multi_gpu.All_devices_lost ->
        Fate_fail "every leased device lost"
      | Failure msg -> Fate_fail msg
      | Gpusim.Machine.Out_of_memory { device; requested; free } ->
        Fate_fail
          (Printf.sprintf
             "out of device memory: %d bytes requested on lease slot %d \
              (%d free)"
             requested device free)
    in
    let duration = Gpusim.Machine.elapsed m in
    j.js_engine_time <- j.js_engine_time +. duration;
    let stop = now +. duration in
    makespan := Float.max !makespan stop;
    segments :=
      {
        sg_job = j.js_spec.Job.name;
        sg_tenant = j.js_spec.Job.tenant;
        sg_devices = lease;
        sg_start = now;
        sg_stop = stop;
        sg_outcome =
          (match fate with
           | Fate_done -> `Done
           | Fate_preempt (_, `Loss) -> `Preempted
           | Fate_preempt (_, `Deadline) -> `Timed_out
           | Fate_fail _ -> `Failed);
      }
      :: !segments;
    push stop (Release { job = j; lease; fate })
  in
  let take n l =
    let rec go n = function
      | _ when n = 0 -> []
      | [] -> []
      | x :: tl -> x :: go (n - 1) tl
    in
    go n l
  in
  let try_dispatch now =
    let keep = ref [] in
    List.iter
      (fun (j : jstate) ->
         if live_count () = 0 then reject now j Job.Fleet_lost
         else if expired now j then time_out now j
         else begin
           let mink = min_lease j in
           let live = live_count () in
           if mink > live then
             reject now j
               (Job.Infeasible
                  (Printf.sprintf
                     "footprint needs a %d-device lease but only %d \
                      device%s alive"
                     mink live
                     (if live = 1 then " is" else "s are")))
           else begin
             let want = max mink (min j.js_spec.Job.devices live) in
             let free = free_list () in
             if List.length free >= want then
               dispatch now j (take want free)
             else keep := j :: !keep
           end
         end)
      !pending;
    pending := List.rev !keep
  in
  let arrive now (j : jstate) =
    qlog now "arrive" j;
    if live_count () = 0 then reject now j Job.Fleet_lost
    else if List.length !pending >= cfg.max_queue then
      reject now j (Job.Queue_full cfg.max_queue)
    else begin
      (match j.js_exe with
       | Some _ -> ()
       | None -> (
           match Mekong.Toolchain.compile j.js_spec.Job.prog with
           | Ok art -> j.js_exe <- Some art.Mekong.Toolchain.exe
           | Error e ->
             reject now j
               (Job.Compile_error (Mekong.Toolchain.error_message e))));
      if j.js_outcome = None then begin
        enqueue j;
        try_dispatch now
      end
    end
  in
  let release now (j : jstate) lease fate =
    List.iter (fun d -> if not dead.(d) then freedev.(d) <- true) lease;
    (match fate with
     | Fate_done ->
       let started = Option.get j.js_started in
       j.js_handoff <- None;
       finish now "complete" j
         (Job.Completed
            {
              started;
              finished = now;
              queue_latency = started -. j.js_spec.Job.arrival;
              turnaround = now -. j.js_spec.Job.arrival;
              engine_time = j.js_engine_time;
              attempts = j.js_attempts;
              preemptions = j.js_preemptions;
              retries = j.js_retries;
            })
     | Fate_preempt (h, `Loss) ->
       j.js_handoff <- Some h;
       j.js_preemptions <- j.js_preemptions + 1;
       push now (Requeue j)
     | Fate_preempt (_, `Deadline) -> time_out now j
     | Fate_fail msg ->
       j.js_strikes <- j.js_strikes + 1;
       if j.js_strikes >= cfg.max_strikes then
         finish now "quarantine" j
           (Job.Quarantined
              { at = now; strikes = j.js_strikes; last_error = msg })
       else begin
         j.js_retries <- j.js_retries + 1;
         let delay =
           Float.min cfg.retry_cap
             (cfg.retry_base *. (2.0 ** float_of_int (j.js_strikes - 1)))
         in
         push (now +. delay) (Requeue j)
       end);
    try_dispatch now
  in
  let lose now d =
    if not dead.(d) then begin
      dead.(d) <- true;
      freedev.(d) <- false;
      incr devices_lost;
      if live_count () = 0 then begin
        List.iter (fun j -> reject now j Job.Fleet_lost) !pending;
        pending := []
      end
      else try_dispatch now
    end
  in
  let requeue now (j : jstate) =
    if live_count () = 0 then reject now j Job.Fleet_lost
    else begin
      qlog now "requeue" j;
      enqueue j;
      try_dispatch now
    end
  in
  let jobs =
    List.mapi
      (fun i (s : Job.spec) ->
         {
           js_spec = s;
           js_seq = i;
           js_predicted = predicted_runtime cfg.fleet s;
           js_exe = s.Job.exe;
           js_handoff = None;
           js_strikes = 0;
           js_attempts = 0;
           js_preemptions = 0;
           js_retries = 0;
           js_started = None;
           js_engine_time = 0.0;
           js_outcome = None;
         })
      specs
  in
  List.iter (fun j -> push j.js_spec.Job.arrival (Arrive j)) jobs;
  List.iter (fun (d, t) -> push t (Lose d)) cfg.losses;
  let rec loop () =
    match !events with
    | [] -> ()
    | (t, _, ev) :: rest ->
      events := rest;
      (match ev with
       | Arrive j -> arrive t j
       | Release { job; lease; fate } -> release t job lease fate
       | Lose d -> lose t d
       | Requeue j -> requeue t j);
      loop ()
  in
  loop ();
  let r_jobs =
    List.map
      (fun (j : jstate) ->
         match j.js_outcome with
         | Some outcome ->
           {
             Job.r_name = j.js_spec.Job.name;
             r_tenant = j.js_spec.Job.tenant;
             r_priority = j.js_spec.Job.priority;
             r_arrival = j.js_spec.Job.arrival;
             r_outcome = outcome;
           }
         | None ->
           (* Cannot happen: the queue always drains (a pending job
              either dispatches once enough leases free up, or is
              rejected/timed out), and we only return once the event
              list is empty. *)
           failwith
             ("Scheduler.run: job without terminal outcome: "
              ^ j.js_spec.Job.name))
      jobs
  in
  let segments = List.rev !segments in
  let busy =
    List.fold_left
      (fun acc s ->
         acc
         +. ((s.sg_stop -. s.sg_start) *. float_of_int (List.length s.sg_devices)))
      0.0 segments
  in
  let live_capacity =
    let total = ref 0.0 in
    for d = 0 to fleet_n - 1 do
      let death =
        match List.assoc_opt d cfg.losses with
        | Some t -> Float.min t !makespan
        | None -> !makespan
      in
      total := !total +. death
    done;
    !total
  in
  {
    r_fleet = fleet_n;
    r_jobs;
    r_segments = segments;
    r_queue_log = List.rev !queue_log;
    r_losses = cfg.losses;
    r_makespan = !makespan;
    r_utilization = (if live_capacity > 0.0 then busy /. live_capacity else 0.0);
    r_devices_lost = !devices_lost;
    r_peak_queue = !peak_queue;
  }

let device_seconds_by_tenant (r : report) =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let secs =
         (s.sg_stop -. s.sg_start) *. float_of_int (List.length s.sg_devices)
       in
       let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl s.sg_tenant) in
       Hashtbl.replace tbl s.sg_tenant (prev +. secs))
    r.r_segments;
  Hashtbl.fold (fun t s acc -> (t, s) :: acc) tbl []
  |> List.sort compare

let tenants (r : report) =
  Slo.collect ~jobs:r.r_jobs ~device_seconds:(device_seconds_by_tenant r)

(* Post-hoc causal DAG of one run, built from the lease segments: one
   queue node per dispatched job covering [arrival, first dispatch]
   (category "queue_wait"), then one "run" node per lease segment on
   its devices, chained job-locally so a requeue gap (preemption,
   retry backoff) shows up as a "requeue_wait" stall.  Nodes are added
   in (finish, job, order) order — a topological order, since a job
   occupies one lease at a time and its queue node ends exactly when
   its first segment starts — so the analysis and what-if machinery
   from Obs.Causal applies unchanged to scheduler runs. *)
let causal_dag (r : report) : Obs.Causal.dag =
  let b = Obs.Causal.builder () in
  let segs_of : (string, segment list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
       let prev = Option.value ~default:[] (Hashtbl.find_opt segs_of s.sg_job) in
       Hashtbl.replace segs_of s.sg_job (s :: prev))
    r.r_segments;
  (* (time, job, job-local rank) items; rank 0 is the queue node. *)
  let items = ref [] in
  List.iter
    (fun (j : Job.report) ->
       match Hashtbl.find_opt segs_of j.Job.r_name with
       | None -> () (* never dispatched: nothing ran, nothing to blame *)
       | Some rev_segs ->
         let segs = List.rev rev_segs in
         let first = List.hd segs in
         items :=
           ((first.sg_start, j.Job.r_name, 0), `Queue (j, first.sg_start))
           :: !items;
         List.iteri
           (fun i s ->
              items := ((s.sg_stop, j.Job.r_name, i + 1), `Run s) :: !items)
           segs)
    r.r_jobs;
  let items = List.sort (fun (ka, _) (kb, _) -> compare ka kb) !items in
  let last : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, item) ->
       match item with
       | `Queue ((j : Job.report), first_start) ->
         let id =
           Obs.Causal.add b
             ~label:(j.Job.r_name ^ ".queue")
             ~category:"queue_wait" ~phase:j.Job.r_tenant
             ~resources:[ "job:" ^ j.Job.r_name ]
             ~ready:j.Job.r_arrival ~start:j.Job.r_arrival ~finish:first_start
             ~fixed:0.0 ~legs:[] ~deps:[] ~wait:""
         in
         Hashtbl.replace last j.Job.r_name (id, first_start)
       | `Run s ->
         let deps, ready =
           match Hashtbl.find_opt last s.sg_job with
           | Some (id, fin) -> ([ id ], fin)
           | None -> ([], s.sg_start)
         in
         let id =
           Obs.Causal.add b ~label:s.sg_job ~category:"run" ~phase:s.sg_tenant
             ~resources:
               (("job:" ^ s.sg_job)
                :: List.map (Printf.sprintf "dev%d") s.sg_devices)
             ~ready ~start:s.sg_start ~finish:s.sg_stop ~fixed:0.0 ~legs:[]
             ~deps ~wait:"requeue_wait"
         in
         Hashtbl.replace last s.sg_job (id, s.sg_stop))
    items;
  Obs.Causal.dag b

let count_outcomes (r : report) =
  List.fold_left
    (fun (c, rj, t, q) (j : Job.report) ->
       match j.Job.r_outcome with
       | Job.Completed _ -> (c + 1, rj, t, q)
       | Job.Rejected _ -> (c, rj + 1, t, q)
       | Job.Timed_out _ -> (c, rj, t + 1, q)
       | Job.Quarantined _ -> (c, rj, t, q + 1))
    (0, 0, 0, 0) r.r_jobs

let report_to_json (r : report) : Obs.Json.t =
  let open Obs.Json in
  let completed, rejected, timed_out, quarantined = count_outcomes r in
  Obj
    [ ("fleet", Int r.r_fleet);
      ("submitted", Int (List.length r.r_jobs));
      ("completed", Int completed);
      ("rejected", Int rejected);
      ("timed_out", Int timed_out);
      ("quarantined", Int quarantined);
      ("devices_lost", Int r.r_devices_lost);
      ("peak_queue", Int r.r_peak_queue);
      ("makespan_seconds", Float r.r_makespan);
      ("utilization", Float r.r_utilization);
      ("losses",
       List
         (List.map
            (fun (d, t) -> Obj [ ("device", Int d); ("at", Float t) ])
            r.r_losses));
      ("tenants", Slo.to_json (tenants r));
      ("jobs", List (List.map Job.report_to_json r.r_jobs)) ]

let publish_metrics ?(into = Obs.Metrics.default) (r : report) =
  let set ?labels n v = Obs.Metrics.set into ?labels n v in
  let seti ?labels n v = set ?labels n (float_of_int v) in
  let completed, rejected, timed_out, quarantined = count_outcomes r in
  seti "serve.jobs.submitted" (List.length r.r_jobs);
  seti "serve.jobs.completed" completed;
  seti "serve.jobs.rejected" rejected;
  seti "serve.jobs.timed_out" timed_out;
  seti "serve.jobs.quarantined" quarantined;
  seti "serve.devices_lost" r.r_devices_lost;
  seti "serve.peak_queue" r.r_peak_queue;
  set "serve.makespan_seconds" r.r_makespan;
  set "serve.utilization" r.r_utilization;
  List.iter
    (fun (t : Slo.tenant) ->
       let labels = [ ("tenant", t.Slo.t_name) ] in
       seti ~labels "serve.tenant.submitted" t.Slo.t_submitted;
       seti ~labels "serve.tenant.completed" t.Slo.t_completed;
       seti ~labels "serve.tenant.rejected" t.Slo.t_rejected;
       seti ~labels "serve.tenant.timed_out" t.Slo.t_timed_out;
       seti ~labels "serve.tenant.quarantined" t.Slo.t_quarantined;
       seti ~labels "serve.tenant.retries" t.Slo.t_retries;
       seti ~labels "serve.tenant.preemptions" t.Slo.t_preemptions;
       set ~labels "serve.tenant.queue_p50_seconds" t.Slo.t_queue_p50;
       set ~labels "serve.tenant.queue_p99_seconds" t.Slo.t_queue_p99;
       set ~labels "serve.tenant.turnaround_p50_seconds" t.Slo.t_turnaround_p50;
       set ~labels "serve.tenant.turnaround_p99_seconds" t.Slo.t_turnaround_p99;
       set ~labels "serve.tenant.device_seconds" t.Slo.t_device_seconds;
       set ~labels "serve.tenant.burn.queue_seconds" t.Slo.t_burn_queue;
       set ~labels "serve.tenant.burn.run_seconds" t.Slo.t_burn_run;
       set ~labels "serve.tenant.burn.stall_seconds" t.Slo.t_burn_stall)
    (tenants r)

let pp fmt (r : report) =
  let completed, rejected, timed_out, quarantined = count_outcomes r in
  Format.fprintf fmt
    "fleet %d (%d lost) | jobs %d: %d completed, %d rejected, %d timed out, \
     %d quarantined | makespan %.3gs | utilization %.0f%% | peak queue %d@\n"
    r.r_fleet r.r_devices_lost (List.length r.r_jobs) completed rejected
    timed_out quarantined r.r_makespan
    (100.0 *. r.r_utilization)
    r.r_peak_queue;
  Slo.pp fmt (tenants r)
