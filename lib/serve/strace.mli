(** Chrome-trace lanes for one scheduler run: the queue as thread 0
    (arrive/requeue/reject/timeout/quarantine/complete instants) and
    one thread per fleet device carrying its lease segments as
    complete events plus a "lost" instant at its death.  All
    timestamps are simulated microseconds; lanes satisfy
    {!Obs.Chrome_trace.validate}. *)

val pid : int
(** Process id of the scheduler's lanes — distinct from the host (0),
    fabric (1) and device ({!Gpusim.Trace_export.device_pid}) pids, so
    a scheduler trace can be merged with machine traces. *)

val events : Scheduler.report -> Obs.Chrome_trace.event list
val to_json : Scheduler.report -> Obs.Json.t
val write : file:string -> Scheduler.report -> unit
