(* Per-tenant SLO aggregation over one scheduler run. *)

type tenant = {
  t_name : string;
  t_submitted : int;
  t_completed : int;
  t_rejected : int;
  t_timed_out : int;
  t_quarantined : int;
  t_retries : int;
  t_preemptions : int;
  t_queue_p50 : float;
  t_queue_p99 : float;
  t_turnaround_p50 : float;
  t_turnaround_p99 : float;
  t_device_seconds : float;
  (* SLO burn attribution: where each tenant's completed-job turnaround
     went.  queue + run + stall = total turnaround (stall clamped at 0
     when multi-device leases make engine_time exceed wall time). *)
  t_burn_queue : float;
  t_burn_run : float;
  t_burn_stall : float;
}

(* Same interpolation bench/main.ml uses, so the campaign's gate
   numbers and the per-tenant rows agree on what "p99" means. *)
let percentile samples p =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

type acc = {
  mutable a_submitted : int;
  mutable a_completed : int;
  mutable a_rejected : int;
  mutable a_timed_out : int;
  mutable a_quarantined : int;
  mutable a_retries : int;
  mutable a_preemptions : int;
  mutable a_queue : float list;
  mutable a_turnaround : float list;
  mutable a_device_seconds : float;
  mutable a_burn_queue : float;
  mutable a_burn_run : float;
  mutable a_burn_stall : float;
}

let collect ~(jobs : Job.report list) ~device_seconds =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 8 in
  let acc_of name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None ->
      let a =
        {
          a_submitted = 0;
          a_completed = 0;
          a_rejected = 0;
          a_timed_out = 0;
          a_quarantined = 0;
          a_retries = 0;
          a_preemptions = 0;
          a_queue = [];
          a_turnaround = [];
          a_device_seconds = 0.0;
          a_burn_queue = 0.0;
          a_burn_run = 0.0;
          a_burn_stall = 0.0;
        }
      in
      Hashtbl.add tbl name a;
      a
  in
  List.iter
    (fun (r : Job.report) ->
       let a = acc_of r.Job.r_tenant in
       a.a_submitted <- a.a_submitted + 1;
       match r.Job.r_outcome with
       | Job.Completed
           { queue_latency; turnaround; engine_time; retries; preemptions; _ }
         ->
         a.a_completed <- a.a_completed + 1;
         a.a_retries <- a.a_retries + retries;
         a.a_preemptions <- a.a_preemptions + preemptions;
         a.a_queue <- queue_latency :: a.a_queue;
         a.a_turnaround <- turnaround :: a.a_turnaround;
         a.a_burn_queue <- a.a_burn_queue +. queue_latency;
         a.a_burn_run <- a.a_burn_run +. engine_time;
         a.a_burn_stall <-
           a.a_burn_stall
           +. Float.max 0.0 (turnaround -. queue_latency -. engine_time)
       | Job.Rejected _ -> a.a_rejected <- a.a_rejected + 1
       | Job.Timed_out _ -> a.a_timed_out <- a.a_timed_out + 1
       | Job.Quarantined { strikes; _ } ->
         a.a_quarantined <- a.a_quarantined + 1;
         a.a_retries <- a.a_retries + strikes - 1)
    jobs;
  List.iter
    (fun (tenant, secs) ->
       let a = acc_of tenant in
       a.a_device_seconds <- a.a_device_seconds +. secs)
    device_seconds;
  Hashtbl.fold
    (fun name a rows ->
       let queue = Array.of_list a.a_queue in
       let turnaround = Array.of_list a.a_turnaround in
       {
         t_name = name;
         t_submitted = a.a_submitted;
         t_completed = a.a_completed;
         t_rejected = a.a_rejected;
         t_timed_out = a.a_timed_out;
         t_quarantined = a.a_quarantined;
         t_retries = a.a_retries;
         t_preemptions = a.a_preemptions;
         t_queue_p50 = percentile queue 50.0;
         t_queue_p99 = percentile queue 99.0;
         t_turnaround_p50 = percentile turnaround 50.0;
         t_turnaround_p99 = percentile turnaround 99.0;
         t_device_seconds = a.a_device_seconds;
         t_burn_queue = a.a_burn_queue;
         t_burn_run = a.a_burn_run;
         t_burn_stall = a.a_burn_stall;
       }
       :: rows)
    tbl []
  |> List.sort (fun a b -> compare a.t_name b.t_name)

let to_json rows : Obs.Json.t =
  let open Obs.Json in
  List
    (List.map
       (fun t ->
          Obj
            [ ("tenant", Str t.t_name);
              ("submitted", Int t.t_submitted);
              ("completed", Int t.t_completed);
              ("rejected", Int t.t_rejected);
              ("timed_out", Int t.t_timed_out);
              ("quarantined", Int t.t_quarantined);
              ("retries", Int t.t_retries);
              ("preemptions", Int t.t_preemptions);
              ("queue_p50_seconds", Float t.t_queue_p50);
              ("queue_p99_seconds", Float t.t_queue_p99);
              ("turnaround_p50_seconds", Float t.t_turnaround_p50);
              ("turnaround_p99_seconds", Float t.t_turnaround_p99);
              ("device_seconds", Float t.t_device_seconds);
              ("burn_queue_seconds", Float t.t_burn_queue);
              ("burn_run_seconds", Float t.t_burn_run);
              ("burn_stall_seconds", Float t.t_burn_stall) ])
       rows)

let pp fmt rows =
  Format.fprintf fmt
    "%-12s %5s %5s %5s %5s %5s %8s %8s %8s %8s %8s %8s %8s@\n"
    "tenant" "subm" "done" "rej" "tout" "quar" "q_p50" "q_p99" "t_p50" "t_p99"
    "burn_q" "burn_r" "burn_s";
  List.iter
    (fun t ->
       Format.fprintf fmt
         "%-12s %5d %5d %5d %5d %5d %8.2g %8.2g %8.2g %8.2g %8.2g %8.2g \
          %8.2g@\n"
         t.t_name t.t_submitted t.t_completed t.t_rejected t.t_timed_out
         t.t_quarantined t.t_queue_p50 t.t_queue_p99 t.t_turnaround_p50
         t.t_turnaround_p99 t.t_burn_queue t.t_burn_run t.t_burn_stall)
    rows
