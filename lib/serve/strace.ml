(* Chrome-trace export of one scheduler run. *)

(* Far above Trace_export's device pids (host 0, fabric 1, devices
   2..), so merged scheduler + machine traces never collide. *)
let pid = 1000

let us t = t *. 1e6

let events (r : Scheduler.report) : Obs.Chrome_trace.event list =
  let open Obs.Chrome_trace in
  let meta =
    Process_name { pid; name = "scheduler" }
    :: Thread_name { pid; tid = 0; name = "queue" }
    :: List.init r.Scheduler.r_fleet (fun d ->
        Thread_name { pid; tid = d + 1; name = Printf.sprintf "dev%d" d })
  in
  let queue =
    List.map
      (fun (t, kind, job) ->
         Instant
           {
             name = kind;
             cat = "serve";
             pid;
             tid = 0;
             ts = us t;
             args = [ ("job", Obs.Json.Str job) ];
           })
      r.Scheduler.r_queue_log
  in
  let outcome_name = function
    | `Done -> "done"
    | `Preempted -> "preempted"
    | `Timed_out -> "timed_out"
    | `Failed -> "failed"
  in
  let device_events =
    List.concat_map
      (fun (s : Scheduler.segment) ->
         List.map
           (fun d ->
              Complete
                {
                  name = s.Scheduler.sg_job;
                  cat = "serve";
                  pid;
                  tid = d + 1;
                  ts = us s.Scheduler.sg_start;
                  dur = us (s.Scheduler.sg_stop -. s.Scheduler.sg_start);
                  args =
                    [ ("tenant", Obs.Json.Str s.Scheduler.sg_tenant);
                      ("outcome",
                       Obs.Json.Str (outcome_name s.Scheduler.sg_outcome)) ];
                })
           s.Scheduler.sg_devices)
      r.Scheduler.r_segments
    @ List.map
      (fun (d, t) ->
         Instant
           { name = "lost"; cat = "serve"; pid; tid = d + 1; ts = us t; args = [] })
      r.Scheduler.r_losses
  in
  let ts_of = function
    | Complete { ts; _ } | Instant { ts; _ }
    | Flow_start { ts; _ } | Flow_finish { ts; _ } -> ts
    | Process_name _ | Thread_name _ -> 0.0
  in
  let tid_of = function
    | Complete { tid; _ } | Instant { tid; _ }
    | Flow_start { tid; _ } | Flow_finish { tid; _ } -> tid
    | Process_name _ | Thread_name _ -> -1
  in
  (* The validator wants per-lane monotone timestamps; a stable sort by
     (lane, ts) gives every lane a monotone stream. *)
  let timing =
    List.stable_sort
      (fun a b -> compare (tid_of a, ts_of a) (tid_of b, ts_of b))
      (queue @ device_events)
  in
  meta @ timing

let to_json r = Obs.Chrome_trace.to_json (events r)
let write ~file r = Obs.Chrome_trace.write ~file (events r)
