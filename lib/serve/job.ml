(* Jobs of the serving layer.  A job is a host program plus serving
   metadata; every submitted job ends in exactly one typed outcome. *)

type spec = {
  name : string;
  tenant : string;
  prog : Host_ir.t;
  exe : Mekong.Multi_gpu.exe option;
  priority : int;
  arrival : float;
  deadline : float option;
  devices : int;
  faults : Gpusim.Faults.spec option;
}

let make ?exe ?(priority = 0) ?(arrival = 0.0) ?deadline ?(devices = 1)
    ?faults ~name ~tenant prog =
  if not (arrival >= 0.0) then
    invalid_arg
      (Printf.sprintf "Job.make %s: arrival must be non-negative (got %g)"
         name arrival);
  (match deadline with
   | Some d when not (d > 0.0) ->
     invalid_arg
       (Printf.sprintf "Job.make %s: deadline must be positive (got %g)" name d)
   | _ -> ());
  if devices < 1 then
    invalid_arg
      (Printf.sprintf "Job.make %s: devices must be positive (got %d)" name
         devices);
  { name; tenant; prog; exe; priority; arrival; deadline; devices; faults }

type reject_reason =
  | Queue_full of int
  | Infeasible of string
  | Compile_error of string
  | Fleet_lost

let reject_reason_to_string = function
  | Queue_full limit -> Printf.sprintf "queue full (limit %d)" limit
  | Infeasible why -> "infeasible: " ^ why
  | Compile_error why -> "compile error: " ^ why
  | Fleet_lost -> "fleet lost"

type outcome =
  | Completed of {
      started : float;
      finished : float;
      queue_latency : float;
      turnaround : float;
      engine_time : float;
      attempts : int;
      preemptions : int;
      retries : int;
    }
  | Rejected of { at : float; reason : reject_reason }
  | Timed_out of { at : float; started : float option }
  | Quarantined of { at : float; strikes : int; last_error : string }

let outcome_name = function
  | Completed _ -> "completed"
  | Rejected _ -> "rejected"
  | Timed_out _ -> "timed_out"
  | Quarantined _ -> "quarantined"

type report = {
  r_name : string;
  r_tenant : string;
  r_priority : int;
  r_arrival : float;
  r_outcome : outcome;
}

let report_to_json (r : report) : Obs.Json.t =
  let open Obs.Json in
  let outcome_fields =
    match r.r_outcome with
    | Completed c ->
      [ ("started", Float c.started);
        ("finished", Float c.finished);
        ("queue_latency", Float c.queue_latency);
        ("turnaround", Float c.turnaround);
        ("engine_time", Float c.engine_time);
        ("attempts", Int c.attempts);
        ("preemptions", Int c.preemptions);
        ("retries", Int c.retries) ]
    | Rejected { at; reason } ->
      [ ("at", Float at); ("reason", Str (reject_reason_to_string reason)) ]
    | Timed_out { at; started } ->
      [ ("at", Float at);
        ("started",
         match started with Some s -> Float s | None -> Null) ]
    | Quarantined { at; strikes; last_error } ->
      [ ("at", Float at);
        ("strikes", Int strikes);
        ("last_error", Str last_error) ]
  in
  Obj
    ([ ("job", Str r.r_name);
       ("tenant", Str r.r_tenant);
       ("priority", Int r.r_priority);
       ("arrival", Float r.r_arrival);
       ("outcome", Str (outcome_name r.r_outcome)) ]
     @ outcome_fields)

let pp_outcome fmt = function
  | Completed c ->
    Format.fprintf fmt
      "completed in %.3gs (queued %.3gs, %d attempt%s, %d preemption%s, %d \
       retr%s)"
      c.turnaround c.queue_latency c.attempts
      (if c.attempts = 1 then "" else "s")
      c.preemptions
      (if c.preemptions = 1 then "" else "s")
      c.retries
      (if c.retries = 1 then "y" else "ies")
  | Rejected { reason; _ } ->
    Format.fprintf fmt "rejected: %s" (reject_reason_to_string reason)
  | Timed_out { at; _ } -> Format.fprintf fmt "timed out at %.3gs" at
  | Quarantined { strikes; last_error; _ } ->
    Format.fprintf fmt "quarantined after %d strikes (%s)" strikes last_error
