(** Deterministic synthetic job mixes for the serving campaigns: a
    seeded stream of small functional workloads (vecadd, matmul,
    hotspot, nbody at a couple of sizes each) with drawn tenants,
    priorities, arrival gaps and lease requests, plus optional poison
    jobs whose kernels always fault (exercising the circuit breaker).

    Identical (seed, parameters) produce the identical mix, including
    buffer contents — the basis for the bench's bit-identity gate. *)

type built = {
  b_spec : Job.spec;  (** pre-linked: [spec.exe] is populated *)
  b_key : string;
      (** workload identity ("matmul-32", ...): two jobs with the same
          key compute bit-identical outputs from bit-identical inputs *)
  b_output : float array;
      (** the array this job's program writes its result into *)
  b_solo : unit -> Mekong.Multi_gpu.exe * float array;
      (** a fresh identical instance, for solo-run comparison *)
  b_poison : bool;
}

val keys : string list
(** The workload menu, for reporting. *)

val poison_faults : int -> Gpusim.Faults.spec
(** A fault spec whose kernels always fault transiently (rate 1.0, no
    forced-success cap): the engine's backoff budget deterministically
    exhausts, so every attempt fails — a poison job. *)

val generate :
  ?seed:int ->
  ?tenants:int ->
  ?poison:int ->
  ?deadline:float ->
  ?mean_gap:float ->
  jobs:int ->
  unit ->
  built list
(** Defaults: seed 1, 3 tenants, no poison jobs, no deadline, mean
    arrival gap 200µs.  [poison] poison jobs are spread evenly through
    the stream.  Raises [Invalid_argument] on non-positive [jobs] /
    [tenants] or [poison] outside [0, jobs]. *)
