(** The serving scheduler: a discrete-event loop over simulated time
    that admits a stream of jobs under the fleet's memory capacity,
    packs them onto disjoint device leases, and runs one partitioned
    engine per dispatched job on a leased sub-machine.

    Robustness invariants (DESIGN.md §17):
    - every submitted job ends in exactly one typed {!Job.outcome};
      overflow and infeasibility are typed rejections, never drops;
    - per-job deadlines preempt in simulated time ([Timed_out]);
    - repeated failures trip a circuit breaker ([Quarantined]) after
      [max_strikes], with capped-exponential retry backoff in between;
    - a permanent fleet device loss degrades gracefully: in-flight
      jobs on the dead device preempt into a checkpoint handoff and
      re-queue, later re-admitted onto the surviving devices;
      scheduling continues while at least one device survives;
    - per-job functional output is bit-identical to running the job
      alone on the full machine, under any schedule. *)

type config = {
  fleet : Gpusim.Config.t;
      (** the whole box; [n_devices] is the fleet size and
          [mem_capacity] drives admission *)
  functional : bool;
  max_queue : int;  (** bounded pending queue (backpressure) *)
  max_strikes : int;  (** circuit breaker: failures before quarantine *)
  retry_base : float;  (** first retry delay, simulated seconds *)
  retry_cap : float;  (** retry delay ceiling *)
  losses : (int * float) list;
      (** fleet-level permanent losses: (device, simulated seconds) *)
  checkpoint_every : int;  (** engine checkpoint cadence per lease *)
  domains : int option;  (** worker-domain cap passed to the engines *)
}

val config :
  ?functional:bool ->
  ?max_queue:int ->
  ?max_strikes:int ->
  ?retry_base:float ->
  ?retry_cap:float ->
  ?losses:(int * float) list ->
  ?checkpoint_every:int ->
  ?domains:int ->
  Gpusim.Config.t ->
  config
(** Defaults: functional, queue bound 64, 3 strikes, retries at
    1ms doubling to a 250ms cap, no losses, checkpoints every 4
    launches.  Raises [Invalid_argument] on a non-positive bound or
    rate, an out-of-range loss device, a negative loss time, or an
    invalid fleet config.  Duplicate losses of one device keep the
    earliest. *)

(** One lease occupancy: a job running on a device subset for a span
    of simulated time. *)
type segment = {
  sg_job : string;
  sg_tenant : string;
  sg_devices : int list;  (** fleet device ids, ascending *)
  sg_start : float;
  sg_stop : float;
  sg_outcome : [ `Done | `Preempted | `Timed_out | `Failed ];
}

type report = {
  r_fleet : int;  (** fleet size at start *)
  r_jobs : Job.report list;  (** submission order, one per spec *)
  r_segments : segment list;  (** chronological *)
  r_queue_log : (float * string * string) list;
      (** (time, kind, job): arrive / requeue / reject / timeout /
          quarantine / complete instants, chronological *)
  r_losses : (int * float) list;  (** the schedule that was applied *)
  r_makespan : float;
  r_utilization : float;
      (** busy device-seconds over live device-seconds *)
  r_devices_lost : int;
  r_peak_queue : int;
}

val predicted_runtime : Gpusim.Config.t -> Job.spec -> float
(** Static runtime estimate of one job on its requested lease size:
    each launch's {!Costmodel.ops_per_block} through the simulator's
    wave/autoboost formula, each memcpy's bytes over the host link,
    [Repeat]-multiplied.  Orders deadline admission (see {!run}); an
    ordering heuristic, never a promise to the job. *)

val run : config -> Job.spec list -> report
(** Drive every job to a terminal outcome.  Specs may arrive in any
    order; duplicate job names raise [Invalid_argument].

    Admission order: within a priority band, jobs carrying a deadline
    are served first, ordered by latest feasible start time
    (arrival + deadline - {!predicted_runtime}) — earliest-deadline-
    first weighted by each job's own predicted length, so a
    short-deadline job is not pinned behind a long job that merely
    arrived earlier.  With no deadlines pending the order is exactly
    the original (priority, arrival, submission) FIFO. *)

val tenants : report -> Slo.tenant list
(** Per-tenant SLO aggregation of a run. *)

val causal_dag : report -> Obs.Causal.dag
(** Causal DAG of the run, built from the lease segments: a
    "queue_wait" node per dispatched job (arrival to first dispatch),
    a "run" node per lease segment on its devices, chained job-locally
    with requeue gaps surfacing as "requeue_wait" stalls.  Feed it to
    {!Obs.Causal.analyze} / {!Obs.Causal.what_if} for critical-path
    and bottleneck analysis of a serving run. *)

val report_to_json : report -> Obs.Json.t
(** Everything: summary, per-tenant SLOs, per-job outcomes. *)

val publish_metrics : ?into:Obs.Metrics.t -> report -> unit
(** Snapshot the run into a metrics registry under stable ["serve.*"]
    names, with per-tenant labels (default {!Obs.Metrics.default}). *)

val pp : Format.formatter -> report -> unit
(** Human summary: outcome counts, utilization, per-tenant SLO table. *)
