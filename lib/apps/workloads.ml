(* Benchmark workload configurations (paper Table 1).

   | Benchmark | Small  | Medium  | Large   | Iterations |
   | Hotspot   | 8,192  | 16,384  | 36,864  | 1,500      |
   | N-Body    | 65,536 | 131,072 | 327,680 | 96         |
   | Matmul    | 8,192  | 16,384  | 30,656  | N/A        |

   Performance runs build the host programs at these sizes without
   touching element data (the machine runs in performance mode, so the
   huge host arrays are never filled). *)

type size = Small | Medium | Large

let size_name = function Small -> "Small" | Medium -> "Medium" | Large -> "Large"
let sizes = [ Small; Medium; Large ]

type benchmark = Hotspot_b | Nbody_b | Matmul_b

let benchmarks = [ Hotspot_b; Nbody_b; Matmul_b ]

let benchmark_name = function
  | Hotspot_b -> "Hotspot"
  | Nbody_b -> "N-Body"
  | Matmul_b -> "Matmul"

let problem_size bench size =
  match (bench, size) with
  | Hotspot_b, Small -> 8_192
  | Hotspot_b, Medium -> 16_384
  | Hotspot_b, Large -> 36_864
  | Nbody_b, Small -> 65_536
  | Nbody_b, Medium -> 131_072
  | Nbody_b, Large -> 327_680
  | Matmul_b, Small -> 8_192
  | Matmul_b, Medium -> 16_384
  | Matmul_b, Large -> 30_656

let iterations = function Hotspot_b -> 1_500 | Nbody_b -> 96 | Matmul_b -> 1

let nbody_dt = 1.0e-3

(* Build the paper-scale host program for a benchmark.  Host arrays are
   phantoms: performance mode never materializes them (the Large
   problems would need tens of GiB).  [iterations_override] shrinks
   iterative benchmarks for quick runs. *)
let program ?iterations:iterations_override bench size =
  let n = problem_size bench size in
  let iters =
    match iterations_override with Some i -> i | None -> iterations bench
  in
  let ph len = Host_ir.host_phantom len in
  match bench with
  | Hotspot_b ->
    Hotspot.program_h ~n ~iterations:iters ~init:(ph (n * n))
      ~result:(ph (n * n))
  | Nbody_b ->
    Nbody.program_h ~n ~iterations:iters ~dt:nbody_dt ~pos:(ph (n * 4))
      ~vel:(ph (n * 4)) ~pos_result:(ph (n * 4))
  | Matmul_b ->
    Matmul.program_h ~n ~a:(ph (n * n)) ~b:(ph (n * n)) ~result:(ph (n * n))

let kernel = function
  | Hotspot_b -> Hotspot.kernel
  | Nbody_b -> Nbody.kernel
  | Matmul_b -> Matmul.kernel

(* Small functional instances (real data, bit-exact checks) used by the
   test suite and the examples. *)
let functional_hotspot ~n ~iterations =
  let init = Hotspot.initial ~n in
  let result = Array.make (n * n) nan in
  let prog = Hotspot.program ~n ~iterations ~init ~result in
  (prog, result, fun () -> Hotspot.reference ~n ~iterations init)

let functional_nbody ~n ~iterations =
  let pos, vel = Nbody.initial ~n in
  let pos_result = Array.make (n * 4) nan in
  let prog =
    Nbody.program ~n ~iterations ~dt:nbody_dt ~pos ~vel ~pos_result
  in
  (prog, pos_result, fun () -> fst (Nbody.reference ~n ~iterations ~dt:nbody_dt pos vel))

let functional_matmul ~n =
  let a, b = Matmul.initial ~n in
  let result = Array.make (n * n) nan in
  let prog = Matmul.program ~n ~a ~b ~result in
  (prog, result, fun () -> Matmul.reference ~n a b)

let functional_vecadd ~n =
  let a = Array.init n (fun idx -> float_of_int idx *. 0.25) in
  let b = Array.init n (fun idx -> 100.0 -. float_of_int idx) in
  let result = Array.make n nan in
  let prog = Vecadd.program ~n ~a ~b ~result in
  (prog, result, fun () -> Vecadd.reference a b)

(* The irregular (atomic/reducible) instances use exact-arithmetic
   data on purpose: accumulation grouping differs across partition
   counts, and integer-valued floats make every grouping produce the
   same bits (see DESIGN.md §20). *)
let functional_dot ~n =
  let a, b = Dot.initial ~n in
  let result = Array.make 1 nan in
  let prog = Dot.program ~n ~a ~b ~result in
  (prog, result, fun () -> Dot.reference a b)

let functional_histogram ~n ~nbins =
  let data = Histogram.initial ~n ~nbins in
  let result = Array.make nbins nan in
  let prog = Histogram.program ~n ~nbins ~data ~result in
  (prog, result, fun () -> Histogram.reference ~nbins data)
