(* Sparse matrix-vector product in CSR format: y = A * x.

   This is the kind of workload the paper's related-work section defers
   to page-migration approaches ("workloads with dynamic, data-driven
   memory access patterns like graph computation, sparse linear
   algebra"), and it exercises the degradation path of the analysis:

   - the row loop bounds come from row_ptr loads (data-dependent), so
     every read inside the loop is over-approximated to the whole
     array — correct, but each device gathers all of vals/cols/x;
   - the write y[row] is affine and injective, so the kernel is still
     accepted and partitions safely.

   One thread per row (scalar CSR kernel). *)

(* __global__ void spmv(int n, int nnz, float *row_ptr, float *cols,
                        float *vals, float *x, float *y) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let row = v "row" in
  Kir.kernel ~name:"spmv"
    ~params:
      [
        Scalar "n";
        Scalar "nnz";
        Array { name = "row_ptr"; dims = [| Dim_param "n1" |] };
        Scalar "n1";
        Array { name = "cols"; dims = [| Dim_param "nnz" |] };
        Array { name = "vals"; dims = [| Dim_param "nnz" |] };
        Array { name = "x"; dims = [| Dim_param "n" |] };
        Array { name = "y"; dims = [| Dim_param "n" |] };
      ]
    [
      Local ("row", global_id Dim3.X);
      If
        ( row < n,
          [
            Local ("acc", f 0.0);
            For
              {
                var = "j";
                from_ = load "row_ptr" [ row ];
                to_ = load "row_ptr" [ row + i 1 ];
                body =
                  [
                    Assign
                      ( "acc",
                        v "acc"
                        + (load "vals" [ v "j" ] * load "x" [ load "cols" [ v "j" ] ])
                      );
                  ];
              };
            store "y" [ row ] (v "acc");
          ],
          [] );
    ]

let block = Dim3.make 64

let grid_for n = Dim3.make (Stdlib.( / ) (Stdlib.( + ) n 63) 64)

(* A CSR matrix with float-encoded integer metadata (the kernel IR's
   buffers are float arrays; row_ptr/cols hold exact small integers). *)
type csr = {
  n : int;
  nnz : int;
  row_ptr : float array; (* length n+1 *)
  cols : float array; (* length nnz *)
  vals : float array; (* length nnz *)
}

let program ~(m : csr) ~(x : float array) ~(result : float array) =
  if Array.length x <> m.n || Array.length result <> m.n then
    invalid_arg "Spmv.program: size mismatch";
  Host_ir.program ~name:"spmv"
    [
      Host_ir.Malloc ("row_ptr", m.n + 1);
      Host_ir.Malloc ("cols", m.nnz);
      Host_ir.Malloc ("vals", m.nnz);
      Host_ir.Malloc ("x", m.n);
      Host_ir.Malloc ("y", m.n);
      Host_ir.Memcpy_h2d { dst = "row_ptr"; src = Host_ir.host_data m.row_ptr };
      Host_ir.Memcpy_h2d { dst = "cols"; src = Host_ir.host_data m.cols };
      Host_ir.Memcpy_h2d { dst = "vals"; src = Host_ir.host_data m.vals };
      Host_ir.Memcpy_h2d { dst = "x"; src = Host_ir.host_data x };
      Host_ir.Launch
        {
          kernel;
          grid = grid_for m.n;
          block;
          args =
            [
              Host_ir.HInt m.n; Host_ir.HInt m.nnz; Host_ir.HBuf "row_ptr";
              Host_ir.HInt (m.n + 1); Host_ir.HBuf "cols"; Host_ir.HBuf "vals";
              Host_ir.HBuf "x"; Host_ir.HBuf "y";
            ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "y" };
      Host_ir.Free "row_ptr";
      Host_ir.Free "cols";
      Host_ir.Free "vals";
      Host_ir.Free "x";
      Host_ir.Free "y";
    ]

(* CPU reference mirroring the kernel arithmetic exactly. *)
let reference ~(m : csr) (x : float array) =
  Array.init m.n (fun row ->
      let acc = ref 0.0 in
      for j = int_of_float m.row_ptr.(row) to int_of_float m.row_ptr.(row + 1) - 1 do
        acc := !acc +. (m.vals.(j) *. x.(int_of_float m.cols.(j)))
      done;
      !acc)

(* A deterministic banded sparse matrix: each row has up to [band]
   entries at pseudo-random columns near the diagonal. *)
let banded ~n ~band =
  let row_ptr = Array.make (n + 1) 0.0 in
  let cols = ref [] and vals = ref [] in
  let nnz = ref 0 in
  for row = 0 to n - 1 do
    row_ptr.(row) <- float_of_int !nnz;
    let deg = 1 + ((row * 13) mod band) in
    for k = 0 to deg - 1 do
      let col = (row + (k * 7) + 1) mod n in
      cols := float_of_int col :: !cols;
      vals := (1.0 +. (0.125 *. float_of_int ((row + k) mod 9))) :: !vals;
      incr nnz
    done
  done;
  row_ptr.(n) <- float_of_int !nnz;
  {
    n;
    nnz = !nnz;
    row_ptr;
    cols = Array.of_list (List.rev !cols);
    vals = Array.of_list (List.rev !vals);
  }
