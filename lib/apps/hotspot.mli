(** Hotspot: a 5-point stencil on a quadratic grid (paper §9.1,
    structured-grid dwarf).  The read map of [inp] is the halo pattern
    of the paper's Figure 3; the write map is 1:1. *)

val diffusion : float

val kernel : Kir.t
(** [hotspot(n, inp, out)] with [inp]/[out] of shape [n][n]. *)

val block : Dim3.t
(** 16 x 16 threads. *)

val grid_for : int -> Dim3.t

val program_h :
  n:int -> iterations:int -> init:Host_ir.host_array ->
  result:Host_ir.host_array -> Host_ir.t
(** Host program over host arrays (real or phantom): upload, iterate
    with ping-pong buffers, download. *)

val program :
  n:int -> iterations:int -> init:float array -> result:float array ->
  Host_ir.t

val reference : n:int -> iterations:int -> float array -> float array
(** CPU reference mirroring the kernel arithmetic exactly (results are
    bit-identical). *)

val initial : n:int -> float array
(** A deterministic initial temperature field. *)
