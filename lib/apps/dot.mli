(** Dot product via [atomicAdd] into a single output element: the
    irregular-accumulation kernel the boolean race gate had to reject.
    The verifier proves it reducible and the engine runs it with
    partition-local accumulation plus an ordered merge
    (DESIGN.md §20). *)

val kernel : Kir.t
(** [dot(n, a, b, out)] with [out] a one-element array. *)

val block : Dim3.t
val grid_for : int -> Dim3.t

val program :
  n:int -> a:float array -> b:float array -> result:float array -> Host_ir.t

val initial : n:int -> float array * float array
(** Exact-arithmetic inputs (small integers), so every grouping of the
    additions produces identical bits. *)

val reference : float array -> float array -> float array
(** One-element array holding the sequential dot product. *)
