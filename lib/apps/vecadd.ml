(* Vector addition: the minimal data-parallel kernel, used by the
   quickstart example and as the simplest analysis target in tests.
   Reads and writes are 1:1 with the thread grid, so the tracker holds
   exactly one segment per partition (the paper's §8.1 extreme case). *)

(* __global__ void vecadd(int n, float *a, float *b, float *c) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let gi = v "gi" in
  Kir.kernel ~name:"vecadd"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "b"; dims = [| Dim_param "n" |] };
        Array { name = "c"; dims = [| Dim_param "n" |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( gi < n,
          [ store "c" [ gi ] (load "a" [ gi ] + load "b" [ gi ]) ],
          [] );
    ]

let block = Dim3.make 128

let grid_for n = Dim3.make ((n + 127) / 128)

let program ~n ~(a : float array) ~(b : float array) ~(result : float array) =
  Host_ir.program ~name:"vecadd"
    [
      Host_ir.Malloc ("a", n);
      Host_ir.Malloc ("b", n);
      Host_ir.Malloc ("c", n);
      Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
      Host_ir.Memcpy_h2d { dst = "b"; src = Host_ir.host_data b };
      Host_ir.Launch
        {
          kernel;
          grid = grid_for n;
          block;
          args =
            [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "b";
              Host_ir.HBuf "c" ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "c" };
      Host_ir.Free "a";
      Host_ir.Free "b";
      Host_ir.Free "c";
    ]

let reference (a : float array) (b : float array) =
  Array.init (Array.length a) (fun idx -> a.(idx) +. b.(idx))
