(* Hotspot: a 5-point stencil on a quadratic grid (paper §9.1, a proxy
   for the structured-grid dwarf).  Each thread computes one element of
   the result array from its own cell and the four neighbours, with
   boundary cells reusing the centre value.  The computation per thread
   is constant and low, making the benchmark sensitive to distribution
   overheads.

   The read map of [inp] is the union of five shifted copies of the
   partition's cell block — the halo pattern of the paper's Figure 3 —
   while the write map is a 1:1 mapping, so partitions along the y axis
   write contiguous row bands. *)

let diffusion = 0.2

(* __global__ void hotspot(int n, float *inp, float *out) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let gx = v "gx" and gy = v "gy" in
  Kir.kernel ~name:"hotspot"
    ~params:
      [
        Scalar "n";
        Array { name = "inp"; dims = [| Dim_param "n"; Dim_param "n" |] };
        Array { name = "out"; dims = [| Dim_param "n"; Dim_param "n" |] };
      ]
    [
      Local ("gx", global_id Dim3.X);
      Local ("gy", global_id Dim3.Y);
      If
        ( gx < n && gy < n,
          [
            Local ("c", load "inp" [ gy; gx ]);
            Local ("top", v "c");
            If (gy > i 0, [ Assign ("top", load "inp" [ gy - i 1; gx ]) ], []);
            Local ("bottom", v "c");
            If
              ( gy < n - i 1,
                [ Assign ("bottom", load "inp" [ gy + i 1; gx ]) ],
                [] );
            Local ("left", v "c");
            If (gx > i 0, [ Assign ("left", load "inp" [ gy; gx - i 1 ]) ], []);
            Local ("right", v "c");
            If
              ( gx < n - i 1,
                [ Assign ("right", load "inp" [ gy; gx + i 1 ]) ],
                [] );
            store "out" [ gy; gx ]
              (v "c"
               + f diffusion
                 * (v "top" + v "bottom" + v "left" + v "right"
                    - f 4.0 * v "c"));
          ],
          [] );
    ]

let block = Dim3.make 16 ~y:16

let grid_for n =
  let g = (n + 15) / 16 in
  Dim3.make g ~y:g

(* The host program: upload, iterate with ping-pong buffers, download.
   After each launch the buffers swap, so the final result is always in
   the binding named "t_in". *)
(* Builder over host arrays (real or phantom). *)
let program_h ~n ~iterations ~(init : Host_ir.host_array)
    ~(result : Host_ir.host_array) =
  if init.Host_ir.len <> n * n || result.Host_ir.len <> n * n then
    invalid_arg "Hotspot.program: size mismatch";
  Host_ir.program ~name:"hotspot"
    [
      Host_ir.Malloc ("t_in", n * n);
      Host_ir.Malloc ("t_out", n * n);
      Host_ir.Memcpy_h2d { dst = "t_in"; src = init };
      Host_ir.Repeat
        ( iterations,
          [
            Host_ir.Launch
              {
                kernel;
                grid = grid_for n;
                block;
                args =
                  [ Host_ir.HInt n; Host_ir.HBuf "t_in"; Host_ir.HBuf "t_out" ];
              };
            Host_ir.Swap ("t_in", "t_out");
          ] );
      Host_ir.Memcpy_d2h { dst = result; src = "t_in" };
      Host_ir.Free "t_in";
      Host_ir.Free "t_out";
    ]

let program ~n ~iterations ~(init : float array) ~(result : float array) =
  program_h ~n ~iterations ~init:(Host_ir.host_data init)
    ~result:(Host_ir.host_data result)

(* CPU reference mirroring the kernel arithmetic exactly (same
   operation order, so results are bit-identical). *)
let reference ~n ~iterations (init : float array) =
  let cur = Array.copy init in
  let nxt = Array.make (n * n) 0.0 in
  let cur = ref cur and nxt = ref nxt in
  for _ = 1 to iterations do
    let a = !cur and b = !nxt in
    for gy = 0 to n - 1 do
      for gx = 0 to n - 1 do
        let c = a.((gy * n) + gx) in
        let top = if gy > 0 then a.(((gy - 1) * n) + gx) else c in
        let bottom = if gy < n - 1 then a.(((gy + 1) * n) + gx) else c in
        let left = if gx > 0 then a.((gy * n) + gx - 1) else c in
        let right = if gx < n - 1 then a.((gy * n) + gx + 1) else c in
        b.((gy * n) + gx) <-
          c +. (diffusion *. (top +. bottom +. left +. right -. (4.0 *. c)))
      done
    done;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

(* A deterministic initial temperature field: a hot spot off-centre on
   a 20-degree ambient plate. *)
let initial ~n =
  Array.init (n * n) (fun idx ->
      let y = idx / n and x = idx mod n in
      let dx = x - (n / 2) and dy = y - (n / 3) in
      let d2 = float_of_int ((dx * dx) + (dy * dy)) in
      20.0 +. (60.0 *. exp (-0.001 *. d2)))
