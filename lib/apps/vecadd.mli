(** Vector addition: the minimal data-parallel kernel (quickstart and
    simplest analysis target).  Reads and writes are 1:1 with the
    thread grid — one tracker segment per partition (paper §8.1's
    extreme case). *)

val kernel : Kir.t
(** [vecadd(n, a, b, c)]. *)

val block : Dim3.t
val grid_for : int -> Dim3.t

val program :
  n:int -> a:float array -> b:float array -> result:float array -> Host_ir.t

val reference : float array -> float array -> float array
