(* Matmul: dense product of two quadratic matrices (paper §9.1, the
   dense-linear-algebra dwarf).  One thread computes one element of C
   with a k-loop over a row of A and a column of B.

   Under a row-band partition (the suggested strategy: split along y),
   each device reads only its rows of A — matching the linear H2D
   distribution — but the column-wise reads of B touch the whole
   matrix, so the runtime corrects the mismatched distribution with an
   all-gather before the kernel starts (paper §9.1: "this mismatched
   data distribution is corrected by the runtime").  The lack of
   iterative execution makes this one-time cost hard to amortize,
   limiting scalability exactly as in the paper. *)

(* __global__ void matmul(int n, float *a, float *b, float *c) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let gx = v "gx" and gy = v "gy" in
  let dims = [| Dim_param "n"; Dim_param "n" |] in
  Kir.kernel ~name:"matmul"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims };
        Array { name = "b"; dims };
        Array { name = "c"; dims };
      ]
    [
      Local ("gx", global_id Dim3.X);
      Local ("gy", global_id Dim3.Y);
      If
        ( gx < n && gy < n,
          [
            Local ("acc", f 0.0);
            For
              {
                var = "k";
                from_ = i 0;
                to_ = n;
                body =
                  [
                    Assign
                      ( "acc",
                        v "acc" + (load "a" [ gy; v "k" ] * load "b" [ v "k"; gx ])
                      );
                  ];
              };
            store "c" [ gy; gx ] (v "acc");
          ],
          [] );
    ]

let block = Dim3.make 16 ~y:16

let grid_for n =
  let g = (n + 15) / 16 in
  Dim3.make g ~y:g

(* Builder over host arrays (real or phantom). *)
let program_h ~n ~(a : Host_ir.host_array) ~(b : Host_ir.host_array)
    ~(result : Host_ir.host_array) =
  if a.Host_ir.len <> n * n || b.Host_ir.len <> n * n then
    invalid_arg "Matmul.program: size mismatch";
  Host_ir.program ~name:"matmul"
    [
      Host_ir.Malloc ("a", n * n);
      Host_ir.Malloc ("b", n * n);
      Host_ir.Malloc ("c", n * n);
      Host_ir.Memcpy_h2d { dst = "a"; src = a };
      Host_ir.Memcpy_h2d { dst = "b"; src = b };
      Host_ir.Launch
        {
          kernel;
          grid = grid_for n;
          block;
          args =
            [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "b";
              Host_ir.HBuf "c" ];
        };
      Host_ir.Memcpy_d2h { dst = result; src = "c" };
      Host_ir.Free "a";
      Host_ir.Free "b";
      Host_ir.Free "c";
    ]

let program ~n ~(a : float array) ~(b : float array) ~(result : float array) =
  program_h ~n ~a:(Host_ir.host_data a) ~b:(Host_ir.host_data b)
    ~result:(Host_ir.host_data result)

(* CPU reference mirroring the kernel arithmetic exactly. *)
let reference ~n (a : float array) (b : float array) =
  let c = Array.make (n * n) 0.0 in
  for gy = 0 to n - 1 do
    for gx = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a.((gy * n) + k) *. b.((k * n) + gx))
      done;
      c.((gy * n) + gx) <- !acc
    done
  done;
  c

(* Deterministic inputs. *)
let initial ~n =
  let a =
    Array.init (n * n) (fun idx ->
        let y = idx / n and x = idx mod n in
        0.5 +. (0.25 *. float_of_int ((x + (3 * y)) mod 11)))
  in
  let b =
    Array.init (n * n) (fun idx ->
        let y = idx / n and x = idx mod n in
        -1.0 +. (0.125 *. float_of_int (((5 * x) + y) mod 13)))
  in
  (a, b)
