(** Histogram: the canonical irregular workload.  Each thread
    atomically increments a {e data-dependent} bin, so the polyhedral
    analysis cannot model the atomic's targets (inexact access) — yet
    the verifier still proves the array reducible, because atomicAdd
    never observes old values.  Executes via partition-local
    accumulation plus an ordered merge (DESIGN.md §20). *)

val kernel : Kir.t
(** [histogram(n, nbins, data, hist)]; [data] values are the bin
    indices (integral floats in [[0, nbins)]). *)

val block : Dim3.t
val grid_for : int -> Dim3.t

val program :
  n:int -> nbins:int -> data:float array -> result:float array -> Host_ir.t

val initial : n:int -> nbins:int -> float array
(** Scrambled integral bin indices in [[0, nbins)]. *)

val reference : nbins:int -> float array -> float array
(** Sequential bin counts. *)
