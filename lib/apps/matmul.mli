(** Matmul: dense product of two quadratic matrices (paper §9.1).  Under
    the suggested row-band partition, A reads match the linear H2D
    distribution but the column-wise reads of B require the runtime's
    all-gather redistribution before the kernel starts. *)

val kernel : Kir.t
(** [matmul(n, a, b, c)] computing [c = a * b], one thread per element
    of [c]. *)

val block : Dim3.t
val grid_for : int -> Dim3.t

val program_h :
  n:int -> a:Host_ir.host_array -> b:Host_ir.host_array ->
  result:Host_ir.host_array -> Host_ir.t

val program :
  n:int -> a:float array -> b:float array -> result:float array -> Host_ir.t

val reference : n:int -> float array -> float array -> float array
(** CPU reference mirroring the kernel arithmetic exactly. *)

val initial : n:int -> float array * float array
(** Deterministic input matrices (A, B). *)
