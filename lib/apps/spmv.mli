(** Sparse matrix-vector product in CSR format: the degradation path of
    the analysis (paper §4): data-dependent loop bounds over-approximate
    every read inside the row loop to the whole array, while the affine
    injective write of [y] keeps the kernel partitionable. *)

val kernel : Kir.t
(** [spmv(n, nnz, row_ptr, n1, cols, vals, x, y)]; one thread per
    row. *)

val block : Dim3.t
val grid_for : int -> Dim3.t

type csr = {
  n : int;
  nnz : int;
  row_ptr : float array;  (** length n+1; float-encoded integers *)
  cols : float array;  (** length nnz *)
  vals : float array;
}

val program : m:csr -> x:float array -> result:float array -> Host_ir.t

val reference : m:csr -> float array -> float array
(** CPU reference mirroring the kernel arithmetic exactly. *)

val banded : n:int -> band:int -> csr
(** A deterministic banded sparse matrix with up to [band] entries per
    row. *)
