(** N-Body: direct gravitational simulation (paper §9.1).  Bodies are
    rows of an [n x 4] array (x, y, z, mass / vx, vy, vz, padding); the
    j-loop makes the read map of [pos_in] cover the whole array (an
    all-gather per iteration) while writes stay row-contiguous. *)

val softening : float

val kernel : Kir.t
(** [nbody(n, dt, pos_in, vel_in, pos_out, vel_out)]. *)

val block : Dim3.t
(** 256 threads. *)

val grid_for : int -> Dim3.t

val program_h :
  n:int -> iterations:int -> dt:float -> pos:Host_ir.host_array ->
  vel:Host_ir.host_array -> pos_result:Host_ir.host_array -> Host_ir.t

val program :
  n:int -> iterations:int -> dt:float -> pos:float array ->
  vel:float array -> pos_result:float array -> Host_ir.t

val reference :
  n:int -> iterations:int -> dt:float -> float array -> float array ->
  float array * float array
(** CPU reference mirroring the kernel arithmetic exactly; returns the
    final (positions, velocities). *)

val initial : n:int -> float array * float array
(** Deterministic initial (positions, velocities). *)
