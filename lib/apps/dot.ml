(* Dot product: every block accumulates into the single output element
   through atomicAdd, so the write sets of distinct blocks are NOT
   disjoint — the classic kernel the boolean race gate had to reject.
   The verifier classifies the conflict as reducible (one commutative
   operator, exact atomic map), and the engine runs it with
   partition-local accumulation plus an ordered merge (DESIGN.md §20). *)

(* __global__ void dot(int n, float *a, float *b, float *out) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let gi = v "gi" in
  Kir.kernel ~name:"dot"
    ~params:
      [
        Scalar "n";
        Array { name = "a"; dims = [| Dim_param "n" |] };
        Array { name = "b"; dims = [| Dim_param "n" |] };
        Array { name = "out"; dims = [| Dim_const 1 |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( gi < n,
          [ atomic_add "out" [ i 0 ] (load "a" [ gi ] * load "b" [ gi ]) ],
          [] );
    ]

let block = Dim3.make 128

let grid_for n = Dim3.make ((n + 127) / 128)

let program ~n ~(a : float array) ~(b : float array)
    ~(result : float array) =
  Host_ir.program ~name:"dot"
    [
      Host_ir.Malloc ("a", n);
      Host_ir.Malloc ("b", n);
      Host_ir.Malloc ("out", 1);
      Host_ir.Memcpy_h2d { dst = "a"; src = Host_ir.host_data a };
      Host_ir.Memcpy_h2d { dst = "b"; src = Host_ir.host_data b };
      Host_ir.Memcpy_h2d { dst = "out"; src = Host_ir.host_data [| 0.0 |] };
      Host_ir.Launch
        {
          kernel;
          grid = grid_for n;
          block;
          args =
            [ Host_ir.HInt n; Host_ir.HBuf "a"; Host_ir.HBuf "b";
              Host_ir.HBuf "out" ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "out" };
      Host_ir.Free "a";
      Host_ir.Free "b";
      Host_ir.Free "out";
    ]

(* Exact-arithmetic inputs: small integers keep every partial sum
   exactly representable, so any grouping of the additions produces
   the same bits (what the cross-device bit-identity tests rely on). *)
let initial ~n =
  let a = Array.init n (fun idx -> float_of_int ((idx mod 13) - 6)) in
  let b = Array.init n (fun idx -> float_of_int ((idx mod 7) + 1)) in
  (a, b)

let reference (a : float array) (b : float array) =
  let acc = ref 0.0 in
  Array.iteri (fun idx av -> acc := !acc +. (av *. b.(idx))) a;
  [| !acc |]
