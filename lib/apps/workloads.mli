(** Benchmark workload configurations (paper Table 1) and functional
    test instances. *)

type size = Small | Medium | Large

val size_name : size -> string
val sizes : size list

type benchmark = Hotspot_b | Nbody_b | Matmul_b

val benchmarks : benchmark list
val benchmark_name : benchmark -> string

val problem_size : benchmark -> size -> int
(** Table 1 problem sizes. *)

val iterations : benchmark -> int
(** Table 1 iteration counts (1 for Matmul). *)

val nbody_dt : float

val program : ?iterations:int -> benchmark -> size -> Host_ir.t
(** Paper-scale host program with phantom host arrays (performance
    runs never materialize them); [iterations] shrinks iterative
    benchmarks for quick runs. *)

val kernel : benchmark -> Kir.t

(** Small functional instances (real data, bit-exact checks): each
    returns the program, the output array it writes, and a thunk
    computing the CPU reference. *)

val functional_hotspot :
  n:int -> iterations:int -> Host_ir.t * float array * (unit -> float array)

val functional_nbody :
  n:int -> iterations:int -> Host_ir.t * float array * (unit -> float array)

val functional_matmul : n:int -> Host_ir.t * float array * (unit -> float array)

val functional_vecadd : n:int -> Host_ir.t * float array * (unit -> float array)

val functional_dot : n:int -> Host_ir.t * float array * (unit -> float array)
(** Exact-arithmetic dot product (reducible atomics; DESIGN.md §20). *)

val functional_histogram :
  n:int -> nbins:int -> Host_ir.t * float array * (unit -> float array)
(** Data-dependent histogram (inexact reducible atomics). *)
