(* Histogram: the canonical irregular workload.  The bin each thread
   increments is *data-dependent* (read from the input), so the
   polyhedral analysis cannot model the atomic's target elements at
   all — the access is inexact.  That is still fine: atomicAdd never
   observes the old value, so whatever elements it hits, accumulation
   through partition-local buffers plus an ordered merge is exact.
   The verifier classifies the array reducible and the engine takes
   the DESIGN.md §20 path. *)

(* __global__ void histogram(int n, int nbins, float *data, float *hist) *)
let kernel =
  let open Kir in
  let n = p "n" in
  let gi = v "gi" in
  Kir.kernel ~name:"histogram"
    ~params:
      [
        Scalar "n";
        Scalar "nbins";
        Array { name = "data"; dims = [| Dim_param "n" |] };
        Array { name = "hist"; dims = [| Dim_param "nbins" |] };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( gi < n,
          [ atomic_add "hist" [ load "data" [ gi ] ] (f 1.0) ],
          [] );
    ]

let block = Dim3.make 128

let grid_for n = Dim3.make ((n + 127) / 128)

let program ~n ~nbins ~(data : float array) ~(result : float array) =
  Host_ir.program ~name:"histogram"
    [
      Host_ir.Malloc ("data", n);
      Host_ir.Malloc ("hist", nbins);
      Host_ir.Memcpy_h2d { dst = "data"; src = Host_ir.host_data data };
      Host_ir.Memcpy_h2d
        { dst = "hist"; src = Host_ir.host_data (Array.make nbins 0.0) };
      Host_ir.Launch
        {
          kernel;
          grid = grid_for n;
          block;
          args =
            [ Host_ir.HInt n; Host_ir.HInt nbins; Host_ir.HBuf "data";
              Host_ir.HBuf "hist" ];
        };
      Host_ir.Memcpy_d2h { dst = Host_ir.host_data result; src = "hist" };
      Host_ir.Free "data";
      Host_ir.Free "hist";
    ]

(* Data values ARE the bin indices: integral floats in [0, nbins), with
   a scrambled distribution so neighboring threads hit scattered bins.
   Counts are small integers — exactly representable, so any grouping
   of the increments produces the same bits. *)
let initial ~n ~nbins =
  Array.init n (fun idx -> float_of_int ((idx * 7 + (idx / 11)) mod nbins))

let reference ~nbins (data : float array) =
  let hist = Array.make nbins 0.0 in
  Array.iter
    (fun v ->
       let bin = int_of_float v in
       hist.(bin) <- hist.(bin) +. 1.0)
    data;
  hist
