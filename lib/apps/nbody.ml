(* N-Body: direct gravitational simulation (paper §9.1, the dense
   particle-interaction dwarf).  Each thread advances one body by
   accumulating the force from every other body — O(n) work per thread
   against O(1) written data, which gives the excellent scaling
   behaviour the paper reports (up to 12.4x on 16 GPUs).

   Bodies are stored as rows of an [n x 4] array: x, y, z, mass for
   positions and vx, vy, vz, padding for velocities.  The j-loop makes
   the read map of [pos_in] cover the whole array (an all-gather per
   iteration), while writes are row-contiguous and injective. *)

let softening = 1.0e-3

(* __global__ void nbody(int n, float dt, float *pos_in, float *vel_in,
                         float *pos_out, float *vel_out) *)
let kernel =
  let open Kir in
  let n = p "n" and dt = p "dt" in
  let gi = v "gi" in
  let dims = [| Dim_param "n"; Dim_const 4 |] in
  Kir.kernel ~name:"nbody"
    ~params:
      [
        Scalar "n";
        Fscalar "dt";
        Array { name = "pos_in"; dims };
        Array { name = "vel_in"; dims };
        Array { name = "pos_out"; dims };
        Array { name = "vel_out"; dims };
      ]
    [
      Local ("gi", global_id Dim3.X);
      If
        ( gi < n,
          [
            Local ("xi", load "pos_in" [ gi; i 0 ]);
            Local ("yi", load "pos_in" [ gi; i 1 ]);
            Local ("zi", load "pos_in" [ gi; i 2 ]);
            Local ("ax", f 0.0);
            Local ("ay", f 0.0);
            Local ("az", f 0.0);
            For
              {
                var = "j";
                from_ = i 0;
                to_ = n;
                body =
                  [
                    Local ("dx", load "pos_in" [ v "j"; i 0 ] - v "xi");
                    Local ("dy", load "pos_in" [ v "j"; i 1 ] - v "yi");
                    Local ("dz", load "pos_in" [ v "j"; i 2 ] - v "zi");
                    Local
                      ( "r2",
                        (v "dx" * v "dx") + (v "dy" * v "dy")
                        + (v "dz" * v "dz") + f softening );
                    Local ("inv", rsqrt (v "r2"));
                    Local
                      ( "s",
                        load "pos_in" [ v "j"; i 3 ]
                        * (v "inv" * v "inv" * v "inv") );
                    Assign ("ax", v "ax" + (v "dx" * v "s"));
                    Assign ("ay", v "ay" + (v "dy" * v "s"));
                    Assign ("az", v "az" + (v "dz" * v "s"));
                  ];
              };
            Local ("vx", load "vel_in" [ gi; i 0 ] + (v "ax" * dt));
            Local ("vy", load "vel_in" [ gi; i 1 ] + (v "ay" * dt));
            Local ("vz", load "vel_in" [ gi; i 2 ] + (v "az" * dt));
            (* float4-style vectorized load: the padding lane is read
               too (and discarded), keeping the per-body read set a
               full contiguous row rather than a 3-of-4 stride. *)
            Local ("pad", load "vel_in" [ gi; i 3 ]);
            store "pos_out" [ gi; i 0 ] (v "xi" + (v "vx" * dt));
            store "pos_out" [ gi; i 1 ] (v "yi" + (v "vy" * dt));
            store "pos_out" [ gi; i 2 ] (v "zi" + (v "vz" * dt));
            store "pos_out" [ gi; i 3 ] (load "pos_in" [ gi; i 3 ]);
            store "vel_out" [ gi; i 0 ] (v "vx");
            store "vel_out" [ gi; i 1 ] (v "vy");
            store "vel_out" [ gi; i 2 ] (v "vz");
            store "vel_out" [ gi; i 3 ] (f 0.0);
          ],
          [] );
    ]

let block = Dim3.make 256

let grid_for n = Dim3.make ((n + 255) / 256)

(* Builder over host arrays (real or phantom). *)
let program_h ~n ~iterations ~dt ~(pos : Host_ir.host_array)
    ~(vel : Host_ir.host_array) ~(pos_result : Host_ir.host_array) =
  if pos.Host_ir.len <> n * 4 || vel.Host_ir.len <> n * 4 then
    invalid_arg "Nbody.program: size mismatch";
  let launch =
    Host_ir.Launch
      {
        kernel;
        grid = grid_for n;
        block;
        args =
          [
            Host_ir.HInt n; Host_ir.HFloat dt; Host_ir.HBuf "pos_in";
            Host_ir.HBuf "vel_in"; Host_ir.HBuf "pos_out";
            Host_ir.HBuf "vel_out";
          ];
      }
  in
  Host_ir.program ~name:"nbody"
    [
      Host_ir.Malloc ("pos_in", n * 4);
      Host_ir.Malloc ("vel_in", n * 4);
      Host_ir.Malloc ("pos_out", n * 4);
      Host_ir.Malloc ("vel_out", n * 4);
      Host_ir.Memcpy_h2d { dst = "pos_in"; src = pos };
      Host_ir.Memcpy_h2d { dst = "vel_in"; src = vel };
      Host_ir.Repeat
        ( iterations,
          [
            launch;
            Host_ir.Swap ("pos_in", "pos_out");
            Host_ir.Swap ("vel_in", "vel_out");
          ] );
      Host_ir.Memcpy_d2h { dst = pos_result; src = "pos_in" };
      Host_ir.Free "pos_in";
      Host_ir.Free "vel_in";
      Host_ir.Free "pos_out";
      Host_ir.Free "vel_out";
    ]

let program ~n ~iterations ~dt ~(pos : float array) ~(vel : float array)
    ~(pos_result : float array) =
  program_h ~n ~iterations ~dt ~pos:(Host_ir.host_data pos)
    ~vel:(Host_ir.host_data vel) ~pos_result:(Host_ir.host_data pos_result)

(* CPU reference mirroring the kernel arithmetic exactly. *)
let reference ~n ~iterations ~dt (pos0 : float array) (vel0 : float array) =
  let pos = ref (Array.copy pos0) and vel = ref (Array.copy vel0) in
  let pos' = ref (Array.make (n * 4) 0.0) and vel' = ref (Array.make (n * 4) 0.0) in
  for _ = 1 to iterations do
    let p = !pos and v = !vel and np = !pos' and nv = !vel' in
    for gi = 0 to n - 1 do
      let xi = p.(gi * 4) and yi = p.((gi * 4) + 1) and zi = p.((gi * 4) + 2) in
      let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
      for j = 0 to n - 1 do
        let dx = p.(j * 4) -. xi in
        let dy = p.((j * 4) + 1) -. yi in
        let dz = p.((j * 4) + 2) -. zi in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
        let inv = 1.0 /. sqrt r2 in
        let s = p.((j * 4) + 3) *. (inv *. inv *. inv) in
        ax := !ax +. (dx *. s);
        ay := !ay +. (dy *. s);
        az := !az +. (dz *. s)
      done;
      let vx = v.(gi * 4) +. (!ax *. dt) in
      let vy = v.((gi * 4) + 1) +. (!ay *. dt) in
      let vz = v.((gi * 4) + 2) +. (!az *. dt) in
      np.(gi * 4) <- xi +. (vx *. dt);
      np.((gi * 4) + 1) <- yi +. (vy *. dt);
      np.((gi * 4) + 2) <- zi +. (vz *. dt);
      np.((gi * 4) + 3) <- p.((gi * 4) + 3);
      nv.(gi * 4) <- vx;
      nv.((gi * 4) + 1) <- vy;
      nv.((gi * 4) + 2) <- vz;
      nv.((gi * 4) + 3) <- 0.0
    done;
    let t = !pos in
    pos := !pos';
    pos' := t;
    let t = !vel in
    vel := !vel';
    vel' := t
  done;
  (!pos, !vel)

(* Deterministic initial conditions: bodies on a spiral shell. *)
let initial ~n =
  let pos = Array.make (n * 4) 0.0 and vel = Array.make (n * 4) 0.0 in
  for b = 0 to n - 1 do
    let t = float_of_int b *. 0.61803398875 in
    let r = 1.0 +. (0.25 *. float_of_int (b mod 17)) in
    pos.(b * 4) <- r *. cos t;
    pos.((b * 4) + 1) <- r *. sin t;
    pos.((b * 4) + 2) <- 0.05 *. float_of_int (b mod 29);
    pos.((b * 4) + 3) <- 1.0 +. (0.01 *. float_of_int (b mod 7));
    vel.(b * 4) <- -0.1 *. sin t;
    vel.((b * 4) + 1) <- 0.1 *. cos t
  done;
  (pos, vel)
