(* Exact integer arithmetic helpers for the polyhedral library.

   All polyhedral computations in this library are performed on native
   63-bit integers.  Fourier-Motzkin elimination multiplies coefficients
   together, so intermediate values can grow; every arithmetic operation
   used during elimination goes through the checked variants below, which
   raise [Overflow] instead of wrapping silently.  Constraint
   normalization (gcd division) keeps coefficients small in practice. *)

exception Overflow

let add a b =
  let r = a + b in
  (* Overflow happened iff both operands have the same sign and the
     result's sign differs. *)
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow;
  r

let sub a b = if b = min_int then raise Overflow else add a (-b)

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a || (a = min_int && b = -1) then raise Overflow;
    r

let neg a = if a = min_int then raise Overflow else -a

let gcd a b =
  (* [abs min_int] is negative, which would make the "gcd" negative (and
     [gcd min_int min_int] loop); treat it like the other checked ops. *)
  if a = min_int || b = min_int then raise Overflow;
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go (abs a) (abs b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else
    let p = mul (a / gcd a b) b in
    (* [mul] permits an exact [min_int] product (e.g. [2^61 * -2]), but
       its absolute value is not representable. *)
    if p = min_int then raise Overflow;
    abs p

(* Floor division: rounds toward negative infinity. *)
let fdiv a b =
  assert (b <> 0);
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

(* Ceiling division: rounds toward positive infinity. *)
let cdiv a b =
  assert (b <> 0);
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

(* Euclidean remainder: always in [0, |b|). *)
let emod a b =
  let r = a mod b in
  if r < 0 then r + abs b else r

let sign a = compare a 0

(* Gcd of an array, ignoring zeros; 0 if all elements are zero. *)
let gcd_array arr = Array.fold_left gcd 0 arr

let pp_int fmt n = Format.fprintf fmt "%d" n
