(* Polyhedral relations (maps) between two spaces sharing parameters.

   A map from a domain space D to a range space R is stored as a set
   over the combined space [params; dims(D) ++ dims(R)].  Memory access
   maps in the partitioning compiler are maps from the 6-dimensional
   grid space (blockOff.{z,y,x}, blockIdx.{z,y,x}) to array index
   spaces. *)

type t = {
  dom_space : Space.t;
  ran_space : Space.t;
  rel : Pset.t; (* over the combined space *)
}

let combined_space dom ran =
  if Space.params dom <> Space.params ran then
    invalid_arg "Pmap: domain and range must share parameters";
  Space.make ~params:(Space.params dom)
    ~dims:(Array.append (Space.dims dom) (Space.dims ran))

(* Remap array embedding a set over [dom] into the combined space. *)
let embed_dom_remap dom _ran =
  Array.init (Space.n_total dom) (fun i -> i)

let make ~dom ~ran rel =
  let comb = combined_space dom ran in
  if not (Space.equal (Pset.space rel) comb) then
    invalid_arg "Pmap.make: relation space mismatch";
  { dom_space = dom; ran_space = ran; rel }

(* Build a map given by affine output functions of the input dims:
   out_i = affs.(i), with the domain restricted by [guards] (constraints
   over the combined space; typically they only mention input dims). *)
let of_affs ~dom ~ran ~affs ~guards =
  let comb = combined_space dom ran in
  if Array.length affs <> Space.n_dims ran then invalid_arg "Pmap.of_affs: arity";
  let dom_remap = embed_dom_remap dom ran in
  let np = Space.n_params dom in
  let eqs =
    Array.to_list
      (Array.mapi
         (fun i aff_in ->
            (* out_i - aff = 0 in the combined space *)
            let aff = Aff.rebase aff_in comb dom_remap in
            let out_idx = np + Space.n_dims dom + i in
            Constr.eq (Aff.sub (Aff.var_i comb out_idx) aff))
         affs)
  in
  { dom_space = dom; ran_space = ran;
    rel = Pset.of_poly (Poly.make comb (eqs @ guards)) }

let dom_space m = m.dom_space
let ran_space m = m.ran_space
let rel m = m.rel
let combined m = Pset.space m.rel

let is_empty m = Pset.is_empty m.rel

let union a b =
  if not (Space.equal a.dom_space b.dom_space && Space.equal a.ran_space b.ran_space)
  then invalid_arg "Pmap.union: space mismatch";
  { a with rel = Pset.union a.rel b.rel }

let union_all ~dom ~ran maps =
  let init = { dom_space = dom; ran_space = ran; rel = Pset.empty (combined_space dom ran) } in
  List.fold_left union init maps

(* Local dim indices (in the combined space) of the domain dims. *)
let dom_local_dims m = List.init (Space.n_dims m.dom_space) (fun i -> i)

let ran_local_dims m =
  let nd = Space.n_dims m.dom_space in
  List.init (Space.n_dims m.ran_space) (fun i -> nd + i)

let domain m = Pset.project_onto m.rel (dom_local_dims m)
let range m = Pset.project_onto m.rel (ran_local_dims m)

(* Intersect the domain with a set over the domain space. *)
let constrain_domain m set =
  if not (Space.equal (Pset.space set) m.dom_space) then
    invalid_arg "Pmap.constrain_domain: space mismatch";
  let comb = combined m in
  let remap = embed_dom_remap m.dom_space m.ran_space in
  let embedded =
    Pset.of_polys comb
      (List.map (fun p -> Poly.rebase p comb remap) (Pset.pieces set))
  in
  { m with rel = Pset.intersect m.rel embedded }

(* Image of a set under the map. *)
let image m set = range (constrain_domain m set)

(* Restrict the domain with raw constraints over the combined space. *)
let constrain m constrs = { m with rel = Pset.add_constrs m.rel constrs }

(* The relation with domain and range swapped. *)
let inverse m =
  let comb = combined m in
  let comb' = combined_space m.ran_space m.dom_space in
  let np = Space.n_params m.dom_space in
  let nd = Space.n_dims m.dom_space and nr = Space.n_dims m.ran_space in
  let remap =
    Array.init (Space.n_total comb) (fun i ->
        if i < np then i
        else if i < np + nd then i + nr (* dom dim -> after ran dims *)
        else i - nd)
  in
  { dom_space = m.ran_space; ran_space = m.dom_space;
    rel = Pset.of_polys comb'
        (List.map (fun p -> Poly.rebase p comb' remap) (Pset.pieces m.rel)) }

let preimage m set = image (inverse m) set

(* --- Injectivity ------------------------------------------------------

   A write map must be injective: no two distinct grid points may write
   the same array element (paper §4.1).  M is non-injective iff the
   system  (i1,o) ∈ M, (i2,o) ∈ M, i1 ≠ i2  is satisfiable for some
   parameter valuation.  i1 ≠ i2 is checked dimension-wise as the union
   of strict inequalities. *)

(* [param_ge] gives additional context constraints of the form
   [sum terms + const >= 0] over parameter names (e.g. [n >= 1]); they
   are instantiated in the doubled space by name. *)
let is_injective ?(param_ge = []) m =
  let np = Space.n_params m.dom_space in
  let nd = Space.n_dims m.dom_space and nr = Space.n_dims m.ran_space in
  let dnames = Space.dims m.dom_space in
  let rnames = Space.dims m.ran_space in
  let dims2 =
    Array.concat
      [ Array.map (fun n -> n ^ "$1") dnames;
        Array.map (fun n -> n ^ "$2") dnames;
        rnames ]
  in
  let sp2 = Space.make ~params:(Space.params m.dom_space) ~dims:dims2 in
  (* Remaps from the combined (in ++ out) space to sp2. *)
  let remap1 =
    Array.init (np + nd + nr) (fun i ->
        if i < np then i else if i < np + nd then i else i + nd)
  in
  let remap2 =
    Array.init (np + nd + nr) (fun i ->
        if i < np then i else if i < np + nd then i + nd else i + nd)
  in
  let copy remap =
    List.map (fun p -> Poly.rebase p sp2 remap) (Pset.pieces m.rel)
  in
  let c1 = copy remap1 and c2 = copy remap2 in
  let context2 =
    List.map
      (fun (terms, const) -> Constr.ge (Aff.of_terms sp2 terms ~const))
      param_ge
  in
  let differs d strict_gt =
    (* i1_d > i2_d  or  i1_d < i2_d *)
    let v1 = Aff.var_i sp2 (np + d) and v2 = Aff.var_i sp2 (np + nd + d) in
    if strict_gt then Constr.gt2 v1 v2 else Constr.lt2 v1 v2
  in
  let violation_exists =
    List.exists
      (fun p1 ->
         List.exists
           (fun p2 ->
              let base = Poly.add_constrs (Poly.intersect p1 p2) context2 in
              List.exists
                (fun d ->
                   (not (Poly.is_empty (Poly.add_constrs base [ differs d true ])))
                   || not (Poly.is_empty (Poly.add_constrs base [ differs d false ])))
                (List.init nd (fun d -> d)))
           c2)
      c1
  in
  not violation_exists

let pp fmt m =
  Format.fprintf fmt "%a -> %a : %a" Space.pp m.dom_space Space.pp m.ran_space
    Pset.pp m.rel

let to_string m = Format.asprintf "%a" pp m
