(** Unions of convex polyhedra over a common space. *)

type t

val of_polys : Space.t -> Poly.t list -> t
val of_poly : Poly.t -> t
val empty : Space.t -> t
val universe : Space.t -> t

val space : t -> Space.t
val pieces : t -> Poly.t list
val n_pieces : t -> int

val is_empty : t -> bool
val mem : t -> int array -> bool

val coalesce : t -> t
(** Drop pieces subsumed by other pieces. *)

val union : t -> t -> t
val union_all : Space.t -> t list -> t
val intersect : t -> t -> t
val intersect_poly : t -> Poly.t -> t
val add_constrs : t -> Constr.t list -> t

val subtract : t -> t -> t
(** Integer set difference (exact). *)

val subsumes : t -> t -> bool
(** [subsumes a b]: [b ⊆ a]. *)

val equal : t -> t -> bool

val project_out : t -> int list -> t
val project_onto : t -> int list -> t

val sample : ?default_radius:int -> t -> int array option

val enumerate : ?default_radius:int -> t -> int list list
(** All integer points of a bounded set, sorted; test helper. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
