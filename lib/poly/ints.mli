(** Exact integer arithmetic helpers used throughout the polyhedral
    library.  Arithmetic during Fourier-Motzkin elimination must not wrap
    silently; the checked variants raise {!Overflow} instead. *)

exception Overflow

val add : int -> int -> int
(** Checked addition; raises {!Overflow} on wrap. *)

val sub : int -> int -> int
(** Checked subtraction; raises {!Overflow} on wrap. *)

val mul : int -> int -> int
(** Checked multiplication; raises {!Overflow} on wrap. *)

val neg : int -> int
(** Checked negation; raises {!Overflow} on [min_int]. *)

val gcd : int -> int -> int
(** Greatest common divisor of absolute values; [gcd 0 0 = 0].  Raises
    {!Overflow} if either argument is [min_int] (whose absolute value is
    not representable). *)

val lcm : int -> int -> int
(** Least common multiple; [lcm a 0 = 0].  Raises {!Overflow} when the
    result is not representable (including [min_int] arguments). *)

val fdiv : int -> int -> int
(** Floor division, rounding toward negative infinity. *)

val cdiv : int -> int -> int
(** Ceiling division, rounding toward positive infinity. *)

val emod : int -> int -> int
(** Euclidean remainder, always in [\[0, |b|)]. *)

val sign : int -> int
(** [-1], [0] or [1] according to the sign of the argument. *)

val gcd_array : int array -> int
(** Gcd of all elements (zeros ignored); [0] when all are zero. *)

val pp_int : Format.formatter -> int -> unit
