(* isl-style code generation: turn polyhedra into loop-nest ASTs.

   The generator follows the classic "project and bound" scheme: for
   each dimension, the polyhedron is projected onto the outer
   dimensions, and the dimension's loop bounds are the max of its lower
   bounds and the min of its upper bounds, each a closed-form expression
   over parameters and outer loop variables (paper §6.1).  ASTs can be
   pretty-printed as C-like text or "compiled" into OCaml closures. *)

type expr =
  | Int of int
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Fdiv of expr * expr (* floor division *)
  | Cdiv of expr * expr (* ceiling division *)
  | Min of expr * expr
  | Max of expr * expr

type stmt =
  | Seq of stmt list
  | For of { var : string; lb : expr; ub : expr; body : stmt } (* ub inclusive *)
  | Guard of expr list * stmt (* all exprs >= 0 *)
  | Emit of expr array (* one point of the set *)
  | Emit_range of expr array * expr * expr
    (* row coordinates, then inclusive bounds of the innermost dim *)

(* --- Expression simplification ---------------------------------------- *)

let rec simp e =
  match e with
  | Int _ | Var _ -> e
  | Add (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y -> Int (x + y)
      | Int 0, b -> b
      | a, Int 0 -> a
      (* Canonical form keeps the constant on the right. *)
      | Int c, b -> simp (Add (b, Int c))
      | Add (x, Int c1), Int c2 -> simp (Add (x, Int (c1 + c2)))
      | a, Add (x, Int c) -> simp (Add (Add (a, x), Int c))
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y -> Int (x - y)
      | a, Int 0 -> a
      | a, b when a = b -> Int 0
      | a, Int c -> simp (Add (a, Int (-c)))
      | a, b -> Sub (a, b))
  | Mul (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y -> Int (x * y)
      | Int 0, _ | _, Int 0 -> Int 0
      | Int 1, b -> b
      | a, Int 1 -> a
      | a, b -> Mul (a, b))
  | Fdiv (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y when y <> 0 -> Int (Ints.fdiv x y)
      | a, Int 1 -> a
      | a, b -> Fdiv (a, b))
  | Cdiv (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y when y <> 0 -> Int (Ints.cdiv x y)
      | a, Int 1 -> a
      | a, b -> Cdiv (a, b))
  | Min (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y -> Int (min x y)
      | a, b when a = b -> a
      | a, b -> Min (a, b))
  | Max (a, b) -> (
      match (simp a, simp b) with
      | Int x, Int y -> Int (max x y)
      | a, b when a = b -> a
      | a, b -> Max (a, b))

(* Expression for an affine form, naming variables through the space. *)
let expr_of_aff aff =
  let space = Aff.space aff in
  let acc = ref (Int (Aff.constant aff)) in
  for i = 0 to Space.n_total space - 1 do
    let c = Aff.coeff aff i in
    if c <> 0 then
      acc := Add (!acc, Mul (Int c, Var (Space.var_name space i)))
  done;
  simp !acc

(* --- Bound expressions ------------------------------------------------ *)

(* Lower-bound expression for a variable from (a, rest) pairs meaning
   x >= ceil(rest / a): the max over all pairs, or None if unbounded. *)
let lower_bound_expr pairs =
  List.fold_left
    (fun acc (a, rest) ->
       let e = simp (Cdiv (expr_of_aff rest, Int a)) in
       match acc with None -> Some e | Some m -> Some (simp (Max (m, e))))
    None pairs

let upper_bound_expr pairs =
  List.fold_left
    (fun acc (a, rest) ->
       let e = simp (Fdiv (expr_of_aff rest, Int a)) in
       match acc with None -> Some e | Some m -> Some (simp (Min (m, e))))
    None pairs

exception Unbounded of string

(* --- Loop-nest generation --------------------------------------------- *)

(* Generate a loop nest scanning all integer points of a convex
   polyhedron, dims in declaration order (outermost first).
   [emit_ranges] replaces the innermost loop with an [Emit_range].
   Raises [Unbounded] if a dimension has no lower or upper bound. *)
let scan_poly ?(emit_ranges = false) p =
  let space = Poly.space p in
  let np = Space.n_params space in
  let nd = Space.n_dims space in
  if Poly.is_trivially_empty p then Seq []
  else begin
    (* proj.(i): the polyhedron with dims > i eliminated. *)
    let proj = Array.make nd p in
    for i = nd - 2 downto 0 do
      proj.(i) <- Poly.eliminate_var proj.(i + 1) (np + i + 1)
    done;
    let dim_name i = Space.var_name space (np + i) in
    let bound i =
      let lows, ups = Poly.bounds_of_var proj.(i) (np + i) in
      let lb =
        match lower_bound_expr lows with
        | Some e -> e
        | None -> raise (Unbounded (dim_name i))
      and ub =
        match upper_bound_expr ups with
        | Some e -> e
        | None -> raise (Unbounded (dim_name i))
      in
      (lb, ub)
    in
    let rec build i =
      if i = nd - 1 && emit_ranges then
        let lb, ub = bound i in
        Emit_range (Array.init (nd - 1) (fun j -> Var (dim_name j)), lb, ub)
      else if i = nd then Emit (Array.init nd (fun j -> Var (dim_name j)))
      else
        let lb, ub = bound i in
        For { var = dim_name i; lb; ub; body = build (i + 1) }
    in
    if nd = 0 then
      (* Zero-dimensional: the set is a single point if the (parameter)
         constraints hold.  Equalities contribute both sides. *)
      let conds =
        List.concat_map
          (fun c ->
             let e = expr_of_aff (Constr.aff c) in
             match Constr.kind c with
             | Constr.Ge -> [ e ]
             | Constr.Eq -> [ e; simp (Sub (Int 0, e)) ])
          (Poly.constraints p)
      in
      Guard (conds, Emit [||])
    else build 0
  end

(* Scan a union: one loop nest per piece, in sequence (paper §6.1 notes
   that applying the scheme per convex piece avoids the union
   over-approximation). *)
let scan_set ?emit_ranges s =
  Seq (List.map (fun p -> scan_poly ?emit_ranges p) (Pset.pieces s))

(* --- Evaluation -------------------------------------------------------- *)

type env = (string, int) Hashtbl.t

let rec eval_expr env e =
  match e with
  | Int n -> n
  | Var v -> (
      match Hashtbl.find_opt env v with
      | Some n -> n
      | None -> invalid_arg ("Ast.eval_expr: unbound variable " ^ v))
  | Add (a, b) -> eval_expr env a + eval_expr env b
  | Sub (a, b) -> eval_expr env a - eval_expr env b
  | Mul (a, b) -> eval_expr env a * eval_expr env b
  | Fdiv (a, b) -> Ints.fdiv (eval_expr env a) (eval_expr env b)
  | Cdiv (a, b) -> Ints.cdiv (eval_expr env a) (eval_expr env b)
  | Min (a, b) -> min (eval_expr env a) (eval_expr env b)
  | Max (a, b) -> max (eval_expr env a) (eval_expr env b)

(* --- Compiled closures -------------------------------------------------- *)

(* Compile an expression into a closure over a slot-indexed environment.
   [slot] maps a variable name to its index in the int-array environment
   (allocating a fresh slot on first sight); the compiled closure never
   touches the name again, so repeated evaluation pays no hashing. *)
let rec compile_expr ~slot e =
  match e with
  | Int n -> fun (_ : int array) -> n
  | Var v ->
    let i = slot v in
    fun env -> Array.unsafe_get env i
  | Add (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> ca env + cb env
  | Sub (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> ca env - cb env
  | Mul (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> ca env * cb env
  | Fdiv (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> Ints.fdiv (ca env) (cb env)
  | Cdiv (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> Ints.cdiv (ca env) (cb env)
  | Min (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> min (ca env) (cb env)
  | Max (a, b) ->
    let ca = compile_expr ~slot a and cb = compile_expr ~slot b in
    fun env -> max (ca env) (cb env)

(* Execute a statement.  [on_point] receives every emitted point;
   [on_range] receives (row coordinates, inclusive lo, inclusive hi) for
   every emitted range. *)
let rec exec env ~on_point ~on_range stmt =
  match stmt with
  | Seq l -> List.iter (exec env ~on_point ~on_range) l
  | Guard (conds, body) ->
    if List.for_all (fun e -> eval_expr env e >= 0) conds then
      exec env ~on_point ~on_range body
  | For { var; lb; ub; body } ->
    let lo = eval_expr env lb and hi = eval_expr env ub in
    let saved = Hashtbl.find_opt env var in
    for v = lo to hi do
      Hashtbl.replace env var v;
      exec env ~on_point ~on_range body
    done;
    (match saved with
     | Some v -> Hashtbl.replace env var v
     | None -> Hashtbl.remove env var)
  | Emit exprs -> on_point (Array.map (eval_expr env) exprs)
  | Emit_range (rows, lb, ub) ->
    let lo = eval_expr env lb and hi = eval_expr env ub in
    if lo <= hi then on_range (Array.map (eval_expr env) rows) lo hi

(* --- Pretty printing ---------------------------------------------------- *)

let rec pp_expr fmt e =
  let open Format in
  match e with
  | Int n -> fprintf fmt "%d" n
  | Var v -> fprintf fmt "%s" v
  | Add (a, b) -> fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | Fdiv (a, b) -> fprintf fmt "floord(%a, %a)" pp_expr a pp_expr b
  | Cdiv (a, b) -> fprintf fmt "ceild(%a, %a)" pp_expr a pp_expr b
  | Min (a, b) -> fprintf fmt "min(%a, %a)" pp_expr a pp_expr b
  | Max (a, b) -> fprintf fmt "max(%a, %a)" pp_expr a pp_expr b

let rec pp_stmt ?(indent = 0) fmt stmt =
  let open Format in
  let pad = String.make indent ' ' in
  match stmt with
  | Seq l -> List.iter (pp_stmt ~indent fmt) l
  | Guard (conds, body) ->
    fprintf fmt "%sif (%s) {\n" pad
      (String.concat " && "
         (List.map (fun e -> asprintf "%a >= 0" pp_expr e) conds));
    pp_stmt ~indent:(indent + 2) fmt body;
    fprintf fmt "%s}\n" pad
  | For { var; lb; ub; body } ->
    fprintf fmt "%sfor (int %s = %a; %s <= %a; %s++) {\n" pad var pp_expr lb var
      pp_expr ub var;
    pp_stmt ~indent:(indent + 2) fmt body;
    fprintf fmt "%s}\n" pad
  | Emit exprs ->
    fprintf fmt "%semit(%s);\n" pad
      (String.concat ", "
         (Array.to_list (Array.map (fun e -> asprintf "%a" pp_expr e) exprs)))
  | Emit_range (rows, lb, ub) ->
    fprintf fmt "%semit_range([%s], %a, %a);\n" pad
      (String.concat ", "
         (Array.to_list (Array.map (fun e -> asprintf "%a" pp_expr e) rows)))
      pp_expr lb pp_expr ub

let stmt_to_string s = Format.asprintf "%a" (pp_stmt ~indent:0) s
let expr_to_string e = Format.asprintf "%a" pp_expr e
