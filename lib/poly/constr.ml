(* Affine constraints.

   A constraint is either [aff = 0] or [aff >= 0].  Normalization divides
   by the gcd of the variable coefficients and, for inequalities,
   tightens the constant toward the integer hull:  g*x + c >= 0 with
   g = gcd of coefficients is equivalent (over Z) to  x + floor(c/g) >= 0. *)

type kind = Eq | Ge

type t = { kind : kind; aff : Aff.t }

let make kind aff = { kind; aff }
let eq aff = { kind = Eq; aff }
let ge aff = { kind = Ge; aff }

(* a >= b  as  a - b >= 0 *)
let ge2 a b = ge (Aff.sub a b)

(* a <= b  as  b - a >= 0 *)
let le2 a b = ge (Aff.sub b a)

(* a = b *)
let eq2 a b = eq (Aff.sub a b)

(* a > b  over Z as  a - b - 1 >= 0 *)
let gt2 a b = ge (Aff.add_const (Aff.sub a b) (-1))
let lt2 a b = gt2 b a

let kind c = c.kind
let aff c = c.aff
let space c = Aff.space c.aff

(* The negation of an inequality over Z: not(aff >= 0)  is  -aff - 1 >= 0.
   Equalities have no single-constraint negation (callers split into the
   two strict sides). *)
let negate_ge c =
  assert (c.kind = Ge);
  ge (Aff.add_const (Aff.neg c.aff) (-1))

type triviality = Trivially_true | Trivially_false | Nontrivial

let triviality c =
  if Aff.is_constant c.aff then
    let k = Aff.constant c.aff in
    match c.kind with
    | Eq -> if k = 0 then Trivially_true else Trivially_false
    | Ge -> if k >= 0 then Trivially_true else Trivially_false
  else Nontrivial

(* Normalize: divide by gcd of variable coefficients; tighten the
   constant of inequalities; canonicalize the sign of equalities so the
   first nonzero coefficient is positive. *)
let normalize c =
  let g = Aff.gcd_coeffs c.aff in
  if g = 0 then c
  else
    match c.kind with
    | Ge ->
      if g = 1 then c
      else
        let aff = Aff.divide_exact (Aff.add_const c.aff (- Aff.constant c.aff)) g in
        ge (Aff.add_const aff (Ints.fdiv (Aff.constant c.aff) g))
    | Eq ->
      let aff = if g = 1 then c.aff else
          (* An equality g*x + c = 0 with g not dividing c is infeasible;
             represent that as the trivially-false constraint 0 = c'. *)
          if Aff.constant c.aff mod g <> 0 then
            Aff.const (Aff.space c.aff) 1
          else Aff.divide_exact c.aff g
      in
      (* Canonical sign. *)
      let n = Space.n_total (Aff.space aff) in
      let rec first_nonzero i =
        if i >= n then 0 else if Aff.coeff aff i <> 0 then Aff.coeff aff i else first_nonzero (i + 1)
      in
      if first_nonzero 0 < 0 then eq (Aff.neg aff) else eq aff

let equal a b = a.kind = b.kind && Aff.equal a.aff b.aff

let eval c env =
  let v = Aff.eval c.aff env in
  match c.kind with Eq -> v = 0 | Ge -> v >= 0

let rebase c space remap = { c with aff = Aff.rebase c.aff space remap }

let substitute c i e = { c with aff = Aff.substitute c.aff i e }

let pp fmt c =
  Format.fprintf fmt "%a %s 0" Aff.pp c.aff (match c.kind with Eq -> "=" | Ge -> ">=")

let to_string c = Format.asprintf "%a" pp c

(* Total order used for deduplication. *)
let compare a b =
  match (a.kind, b.kind) with
  | Eq, Ge -> -1
  | Ge, Eq -> 1
  | _ ->
    let ca = Aff.constant a.aff and cb = Aff.constant b.aff in
    let n = Space.n_total (space a) in
    let rec go i =
      if i >= n then compare ca cb
      else
        let d = compare (Aff.coeff a.aff i) (Aff.coeff b.aff i) in
        if d <> 0 then d else go (i + 1)
    in
    go 0
