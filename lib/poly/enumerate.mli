(** Enumerator generation (paper §6): compile the set of array elements
    an access map touches within a grid partition into a closure that
    emits half-open linear ranges in the row-major array layout.

    Only the first and last element of each row is computed (per-row
    lexmin/lexmax, paper §6.1); contiguous bands of full-width rows are
    additionally collapsed into single ranges, which makes stencil read
    sets O(1) to enumerate. *)

type plan =
  | P_seq of plan list
  | P_for of string * Ast.expr * Ast.expr * plan
  | P_guard of Ast.expr list * plan
  | P_point of Ast.expr array
  | P_ranges of Ast.expr array * Ast.expr * Ast.expr
      (** row coordinates, inclusive bounds of the last dim *)
  | P_row_block of Ast.expr array * Ast.expr * Ast.expr
      (** outer row coordinates, inclusive bounds of the last row dim;
          the innermost dim spans a full row *)

type rect = {
  row_lb : Ast.expr;
  row_ub : Ast.expr;
  col_lb : Ast.expr;
  col_ub : Ast.expr;
}
(** A rank-2 convex piece scanned as a rectangle with loop-invariant
    column bounds.  Rectangles are evaluated to corners and merged with
    each other before emission, so stencil halos and per-column
    accesses collapse to O(1) ranges per partition. *)

type piece = Rect of rect | General of plan

type compiled
(** Slot-indexed closure form of an enumerator (see {!precompile}). *)

type t = {
  pieces : piece list;
  plan : plan;  (** the unoptimized general plan (documentation, [pp]) *)
  sizes : Ast.expr array;
  rank : int;
  mutable compiled : compiled option;
      (** closure form, memoized by the first evaluation *)
}

val merge_rects :
  (int * int * int * int) list -> (int * int * int * int) list
(** Merge evaluated rectangles (row0, row1, col0, col1, inclusive):
    subsumption plus row-wise and column-wise coalescing to fixpoint. *)

val of_set : ?rectangles:bool -> sizes:Ast.expr array -> Pset.t -> t
(** Build an enumerator for a set over array index dims; [sizes] are the
    array dimension sizes (outermost first) as expressions over the
    parameters. *)

val precompile : t -> unit
(** Compile the enumerator's expressions into slot-indexed closures and
    memoize them on [t].  Evaluation compiles lazily anyway; calling
    this eagerly (e.g. at kernel link time) moves the one-time cost out
    of the first launch. *)

val eval_raw : t -> Ast.env -> f:(int -> int -> unit) -> unit
(** Emit raw (start, stop) half-open linear ranges through [f] — the
    callback interface of paper §6.2.  Evaluation runs through the
    memoized compiled closures; emission order and count are identical
    to the reference interpretation of [plan]'s pieces. *)

val canonicalize : (int * int) list -> (int * int) list
(** Sort and merge overlapping/adjacent ranges; drop empty ones. *)

val eval : t -> Ast.env -> (int * int) list
(** Evaluate to a canonical list of half-open linear ranges. *)

val eval_counted : t -> Ast.env -> (int * int) list * int
(** Like {!eval}, plus the number of raw ranges emitted before
    canonicalization (the enumeration cost driver). *)

val env_of_bindings : (string * int) list -> Ast.env

val pp : Format.formatter -> t -> unit
