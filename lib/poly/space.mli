(** Dimension spaces: the named variables a polyhedron ranges over.

    The variable vector is ordered [params ++ dims].  Parameters are
    symbolic constants (problem sizes, block dimensions, scalar kernel
    arguments); dims are set dimensions proper.  All indices exposed here
    are indices into the combined vector unless noted otherwise. *)

type t

val make : params:string array -> dims:string array -> t
(** Create a space; raises [Invalid_argument] on duplicate names. *)

val set_space : ?params:string array -> string array -> t
(** [set_space ~params dims] is [make ~params ~dims] with params
    defaulting to none. *)

val n_params : t -> int
val n_dims : t -> int

val n_total : t -> int
(** [n_params + n_dims]: the length of coefficient vectors over this
    space. *)

val params : t -> string array
val dims : t -> string array

val param_index : t -> string -> int option
(** Combined-vector index of a parameter. *)

val dim_index : t -> string -> int option
(** Combined-vector index of a dim (i.e. [n_params + local index]). *)

val var_index : t -> string -> int option
(** Combined-vector index, searching params then dims. *)

val var_index_exn : t -> string -> int

val var_name : t -> int -> string
(** Name of the variable at a combined-vector index. *)

val equal : t -> t -> bool

val drop_dim : t -> int -> t
(** Remove the dim at a combined-vector index.  Raises
    [Invalid_argument] if the index denotes a parameter. *)

val add_dims : t -> string array -> t
(** Append dims at the end of the dim block. *)

val filter_dims : t -> (int -> bool) -> t
(** Keep only dims whose dim-local index satisfies the predicate. *)

val pp : Format.formatter -> t -> unit
