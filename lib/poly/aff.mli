(** Affine expressions [sum coeffs.(i) * var_i + const] over a
    {!Space}. *)

type t

val zero : Space.t -> t
val const : Space.t -> int -> t

val var : Space.t -> string -> t
(** Unit-coefficient expression for a named variable. *)

val var_i : Space.t -> int -> t
(** Unit-coefficient expression for a combined-vector index. *)

val of_terms : Space.t -> (int * string) list -> const:int -> t
(** Build from [(coefficient, variable-name)] terms plus a constant. *)

val space : t -> Space.t
val coeff : t -> int -> int
val coeff_of : t -> string -> int
val constant : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val add_const : t -> int -> t
val set_coeff : t -> int -> int -> t

val is_constant : t -> bool
(** All variable coefficients zero. *)

val is_param_only : t -> bool
(** No dim has a nonzero coefficient (parameters allowed). *)

val equal : t -> t -> bool

val eval : t -> int array -> int
(** Evaluate under a full assignment of the combined vector. *)

val substitute : t -> int -> t -> t
(** [substitute a i e] replaces variable [i] by expression [e]. *)

val rebase : t -> Space.t -> int array -> t
(** [rebase a space remap] moves [a] into [space]; [remap.(i)] is the
    new index of old variable [i], or [-1] if dropped (its coefficient
    must be zero). *)

val gcd_content : t -> int
(** Gcd of all coefficients and the constant. *)

val gcd_coeffs : t -> int
(** Gcd of variable coefficients only. *)

val divide_exact : t -> int -> t
(** Divide all coefficients and the constant by a positive divisor that
    is assumed to divide them exactly. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
