(* Enumerator generation (paper §6).

   An access map constrained to a grid partition yields a set of array
   elements.  Rather than enumerating every element, the generated code
   walks the rows of the (row-major) array and emits the first and last
   linear offset of each row — and, when a whole contiguous band of
   full-width rows is accessed, a single range for the band (the
   "row-block collapse", which makes stencil read sets O(1) to
   enumerate instead of O(rows)).

   The runtime-facing interface is a compiled closure from parameter
   values (scalar kernel arguments, block dimensions, partition box
   corners) to a canonical list of half-open linear ranges. *)

type plan =
  | P_seq of plan list
  | P_for of string * Ast.expr * Ast.expr * plan
  | P_guard of Ast.expr list * plan
  | P_point of Ast.expr array
  | P_ranges of Ast.expr array * Ast.expr * Ast.expr
    (* row coordinates, inclusive bounds of the last dim *)
  | P_row_block of Ast.expr array * Ast.expr * Ast.expr
    (* outer row coordinates (all but the last row dim), then inclusive
       bounds of the last row dim; the innermost dim spans a full row *)

(* A convex piece whose scan is a 2-D rectangle with loop-invariant
   column bounds.  Rectangles are evaluated to their four corners and
   merged with each other before emission, so that stencil halos,
   per-column accesses and full-array reads all collapse to O(1)
   ranges per partition instead of O(rows). *)
type rect = {
  row_lb : Ast.expr;
  row_ub : Ast.expr;
  col_lb : Ast.expr;
  col_ub : Ast.expr;
}

type piece = Rect of rect | General of plan

(* Compiled form: every expression is a closure over a slot-indexed
   int-array environment (see Ast.compile_expr), so repeated evaluation
   of the same enumerator pays no AST walking or name hashing. *)
type cpiece =
  | C_rect of
      (int array -> int)
      * (int array -> int)
      * (int array -> int)
      * (int array -> int)
  | C_gen of (int array -> int array -> (int -> int -> unit) -> unit)
    (* slot env, evaluated sizes, raw-range sink *)

type compiled = {
  c_params : (string * int * bool) list;
      (* variable name, slot index, and whether the name is bound by an
         enclosing loop (loop-bound slots need no external binding) *)
  c_n_slots : int;
  c_sizes : (int array -> int) array;
  c_pieces : cpiece list;
}

type t = {
  pieces : piece list;
  plan : plan; (* the general plan, used by [pp] and as documentation *)
  sizes : Ast.expr array; (* array dimension sizes, outermost first *)
  rank : int;
  mutable compiled : compiled option; (* memoized by the first evaluation *)
}

(* Does the expression mention variable [v]? *)
let rec mentions v = function
  | Ast.Int _ -> false
  | Ast.Var x -> x = v
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
  | Ast.Fdiv (a, b) | Ast.Cdiv (a, b) | Ast.Min (a, b) | Ast.Max (a, b) ->
    mentions v a || mentions v b

(* Structural equality after simplification. *)
let expr_eq a b = Ast.simp a = Ast.simp b

(* Try to recognize a full-width innermost range: lb == 0 and
   ub + 1 == width. *)
let full_width ~width lb ub =
  expr_eq lb (Ast.Int 0) && expr_eq (Ast.Add (ub, Ast.Int 1)) width

let rec plan_of_stmt ~sizes stmt =
  let rank = Array.length sizes in
  match stmt with
  | Ast.Seq l -> P_seq (List.map (plan_of_stmt ~sizes) l)
  | Ast.Guard (conds, body) -> P_guard (conds, plan_of_stmt ~sizes body)
  | Ast.Emit exprs -> P_point exprs
  | Ast.Emit_range (rows, lb, ub) -> P_ranges (rows, lb, ub)
  | Ast.For { var; lb; ub; body } -> (
      match body with
      | Ast.Emit_range (rows, rlb, rub)
        when rank >= 2
          && Array.length rows = rank - 1
          && rows.(rank - 2) = Ast.Var var
          && Array.for_all (fun e -> not (mentions var e))
               (Array.sub rows 0 (rank - 2))
          && full_width ~width:sizes.(rank - 1) rlb rub ->
        (* The loop enumerates full rows indexed by [var]; collapse the
           whole band into one linear range. *)
        P_row_block (Array.sub rows 0 (rank - 2), lb, ub)
      | _ -> P_for (var, lb, ub, plan_of_stmt ~sizes body))

(* Classify one piece's scan: a rank-2 loop whose body is a range with
   loop-invariant bounds is a rectangle. *)
let piece_of_stmt ~sizes ~rank stmt =
  match stmt with
  | Ast.For { var; lb; ub; body = Ast.Emit_range (rows, clb, cub) }
    when rank = 2
      && Array.length rows = 1
      && rows.(0) = Ast.Var var
      && (not (mentions var clb))
      && not (mentions var cub) ->
    Rect { row_lb = lb; row_ub = ub; col_lb = clb; col_ub = cub }
  | _ -> General (plan_of_stmt ~sizes stmt)

(* Build an enumerator for a set over array index dims.  [sizes] are
   the array dimension sizes as expressions over the parameters.
   [rectangles:false] disables the rectangle-union optimization (used
   by the ablation benchmark; evaluation then walks the per-row scan
   plans). *)
let of_set ?(rectangles = true) ~sizes set =
  let rank = Array.length sizes in
  if rank = 0 then invalid_arg "Enumerate.of_set: rank-0 array";
  if Space.n_dims (Pset.space set) <> rank then
    invalid_arg "Enumerate.of_set: set dimensionality does not match rank";
  let ast = Ast.scan_set ~emit_ranges:true set in
  let piece_stmts = match ast with Ast.Seq l -> l | s -> [ s ] in
  {
    pieces =
      (if rectangles then List.map (piece_of_stmt ~sizes ~rank) piece_stmts
       else List.map (fun s -> General (plan_of_stmt ~sizes s)) piece_stmts);
    plan = plan_of_stmt ~sizes ast;
    sizes;
    rank;
    compiled = None;
  }

(* --- Evaluation -------------------------------------------------------- *)

(* Merge a list of evaluated rectangles (r0, r1, c0, c1), all bounds
   inclusive: drop subsumed rectangles and coalesce along rows and
   columns until a fixpoint.  Quadratic in the (small) piece count. *)
let merge_rects rects =
  let subsumed (r0, r1, c0, c1) (s0, s1, d0, d1) =
    s0 >= r0 && s1 <= r1 && d0 >= c0 && d1 <= c1
  in
  let try_merge (r0, r1, c0, c1) (s0, s1, d0, d1) =
    if r0 = s0 && r1 = s1 && s0 <= s1 && max c0 d0 <= min c1 d1 + 1 then
      Some (r0, r1, min c0 d0, max c1 d1)
    else if c0 = d0 && c1 = d1 && max r0 s0 <= min r1 s1 + 1 then
      Some (min r0 s0, max r1 s1, c0, c1)
    else None
  in
  let rec fix rects =
    let rec step acc = function
      | [] -> (List.rev acc, false)
      | r :: rest ->
        if List.exists (fun q -> q <> r && subsumed q r) (acc @ rest) then
          (List.rev_append acc rest, true)
        else begin
          let merged = ref None in
          let rest' =
            List.filter
              (fun q ->
                 match !merged with
                 | Some _ -> true
                 | None -> (
                     match try_merge r q with
                     | Some m ->
                       merged := Some m;
                       false
                     | None -> true))
              rest
          in
          match !merged with
          | Some m -> (List.rev_append acc (m :: rest'), true)
          | None -> step (r :: acc) rest
        end
    in
    let rects', changed = step [] rects in
    if changed then fix rects' else rects'
  in
  fix rects

(* Compile every expression of the enumerator into slot-indexed
   closures.  The compiled pieces replicate the interpreter exactly —
   same emission order, same emission count — so swapping the backends
   is invisible to callers (including the raw count of eval_counted). *)
let compile t =
  let slots = Hashtbl.create 16 in
  let n_slots = ref 0 in
  let slot v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
      let i = !n_slots in
      incr n_slots;
      Hashtbl.replace slots v i;
      i
  in
  let loop_bound = Hashtbl.create 8 in
  let rank = t.rank in
  let flatten_c sizes_len cexprs =
    (* Linear offset of a row prefix: evaluate the row coordinates and
       multiply through the remaining dims (row-major layout). *)
    fun env sizes_v ->
      let acc = ref 0 in
      Array.iteri (fun i c -> acc := (!acc * sizes_v.(i)) + c env) cexprs;
      for i = Array.length cexprs to sizes_len - 1 do
        acc := !acc * sizes_v.(i)
      done;
      !acc
  in
  let rec comp plan =
    match plan with
    | P_seq l ->
      let cs = List.map comp l in
      fun env sizes_v f -> List.iter (fun c -> c env sizes_v f) cs
    | P_guard (conds, body) ->
      let cc = List.map (Ast.compile_expr ~slot) conds in
      let cb = comp body in
      fun env sizes_v f ->
        if List.for_all (fun c -> c env >= 0) cc then cb env sizes_v f
    | P_for (var, lb, ub, body) ->
      let i = slot var in
      Hashtbl.replace loop_bound var ();
      let clb = Ast.compile_expr ~slot lb
      and cub = Ast.compile_expr ~slot ub in
      let cb = comp body in
      fun env sizes_v f ->
        let lo = clb env and hi = cub env in
        let saved = env.(i) in
        for v = lo to hi do
          env.(i) <- v;
          cb env sizes_v f
        done;
        env.(i) <- saved
    | P_point exprs ->
      let ce = Array.map (Ast.compile_expr ~slot) exprs in
      let flat = flatten_c rank ce in
      fun env sizes_v f ->
        let off = flat env sizes_v in
        f off (off + 1)
    | P_ranges (rows, lb, ub) ->
      let crows = Array.map (Ast.compile_expr ~slot) rows in
      let flat = flatten_c rank crows in
      let clb = Ast.compile_expr ~slot lb
      and cub = Ast.compile_expr ~slot ub in
      fun env sizes_v f ->
        let lo = clb env and hi = cub env in
        if lo <= hi then begin
          let base = flat env sizes_v in
          f (base + lo) (base + hi + 1)
        end
    | P_row_block (outer, rlb, rub) ->
      let couter = Array.map (Ast.compile_expr ~slot) outer in
      let clb = Ast.compile_expr ~slot rlb
      and cub = Ast.compile_expr ~slot rub in
      fun env sizes_v f ->
        let lo = clb env and hi = cub env in
        if lo <= hi then begin
          let prefix = ref 0 in
          Array.iteri
            (fun i c -> prefix := (!prefix * sizes_v.(i)) + c env)
            couter;
          let slab = !prefix * sizes_v.(rank - 2) in
          let last = sizes_v.(rank - 1) in
          f ((slab + lo) * last) ((slab + hi + 1) * last)
        end
  in
  let c_pieces =
    List.map
      (function
        | General p -> C_gen (comp p)
        | Rect { row_lb; row_ub; col_lb; col_ub } ->
          C_rect
            ( Ast.compile_expr ~slot row_lb,
              Ast.compile_expr ~slot row_ub,
              Ast.compile_expr ~slot col_lb,
              Ast.compile_expr ~slot col_ub ))
      t.pieces
  in
  let c_sizes = Array.map (Ast.compile_expr ~slot) t.sizes in
  let c_params =
    Hashtbl.fold
      (fun v i acc -> (v, i, Hashtbl.mem loop_bound v) :: acc)
      slots []
  in
  { c_params; c_n_slots = !n_slots; c_sizes; c_pieces }

let compiled t =
  match t.compiled with
  | Some c -> c
  | None ->
    let c = compile t in
    t.compiled <- Some c;
    c

let precompile t = ignore (compiled t)

(* Emit raw (start, stop) half-open linear ranges through [f]. *)
let eval_raw t env ~f =
  let c = compiled t in
  let slots_v = Array.make (max 1 c.c_n_slots) 0 in
  List.iter
    (fun (v, i, loop) ->
       match Hashtbl.find_opt env v with
       | Some x -> slots_v.(i) <- x
       | None ->
         if not loop then
           invalid_arg ("Ast.eval_expr: unbound variable " ^ v))
    c.c_params;
  let sizes_v = Array.map (fun g -> g slots_v) c.c_sizes in
  let last = sizes_v.(t.rank - 1) in
  (* Rectangle pieces are evaluated to corners and merged before
     emission; full-width rectangles become single block ranges. *)
  let rects = ref [] in
  List.iter
    (fun piece ->
       match piece with
       | C_gen go -> go slots_v sizes_v f
       | C_rect (row_lb, row_ub, col_lb, col_ub) ->
         let r0 = row_lb slots_v and r1 = row_ub slots_v in
         let c0 = max 0 (col_lb slots_v) in
         let c1 = min (last - 1) (col_ub slots_v) in
         if r0 <= r1 && c0 <= c1 then rects := (r0, r1, c0, c1) :: !rects)
    c.c_pieces;
  List.iter
    (fun (r0, r1, c0, c1) ->
       if c0 = 0 && c1 = last - 1 then f (r0 * last) ((r1 + 1) * last)
       else
         for r = r0 to r1 do
           f ((r * last) + c0) ((r * last) + c1 + 1)
         done)
    (merge_rects !rects)

(* Canonicalize a range list: sort, merge overlapping and adjacent. *)
let canonicalize ranges =
  let sorted = List.sort compare ranges in
  let rec merge acc = function
    | [] -> List.rev acc
    | (s, e) :: rest when s >= e -> merge acc rest
    | (s, e) :: rest -> (
        match acc with
        | (ps, pe) :: acc' when s <= pe -> merge ((ps, max pe e) :: acc') rest
        | _ -> merge ((s, e) :: acc) rest)
  in
  merge [] sorted

(* Evaluate to a canonical list of half-open linear ranges. *)
let eval t env =
  let out = ref [] in
  eval_raw t env ~f:(fun s e -> out := (s, e) :: !out);
  canonicalize !out

(* Like {!eval}, but also report how many raw ranges were emitted before
   canonicalization (the runtime's enumeration cost is proportional to
   this count, not to the merged result). *)
let eval_counted t env =
  let out = ref [] in
  let raw = ref 0 in
  eval_raw t env ~f:(fun s e ->
      incr raw;
      out := (s, e) :: !out);
  (canonicalize !out, !raw)

let env_of_bindings bindings =
  let env = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace env k v) bindings;
  env

let pp fmt t =
  let rec pp_plan indent fmt = function
    | P_seq l -> List.iter (pp_plan indent fmt) l
    | P_guard (conds, body) ->
      Format.fprintf fmt "%sguard(%d conds)\n" (String.make indent ' ')
        (List.length conds);
      pp_plan (indent + 2) fmt body
    | P_for (v, lb, ub, body) ->
      Format.fprintf fmt "%sfor %s = %a .. %a\n" (String.make indent ' ') v
        Ast.pp_expr lb Ast.pp_expr ub;
      pp_plan (indent + 2) fmt body
    | P_point e ->
      Format.fprintf fmt "%spoint(%d dims)\n" (String.make indent ' ')
        (Array.length e)
    | P_ranges (_, lb, ub) ->
      Format.fprintf fmt "%srange %a .. %a\n" (String.make indent ' ')
        Ast.pp_expr lb Ast.pp_expr ub
    | P_row_block (_, lb, ub) ->
      Format.fprintf fmt "%srow-block %a .. %a\n" (String.make indent ' ')
        Ast.pp_expr lb Ast.pp_expr ub
  in
  pp_plan 0 fmt t.plan
