(* Affine expressions over a {!Space}.

   An affine expression is  sum_i coeffs.(i) * var_i + const  where the
   variable vector is the space's combined [params ++ dims] vector. *)

type t = { space : Space.t; coeffs : int array; const : int }

let zero space = { space; coeffs = Array.make (Space.n_total space) 0; const = 0 }

let const space c = { (zero space) with const = c }

let var space name =
  let a = zero space in
  a.coeffs.(Space.var_index_exn space name) <- 1;
  a

let var_i space i =
  let a = zero space in
  a.coeffs.(i) <- 1;
  a

let of_terms space terms ~const =
  let a = zero space in
  List.iter (fun (c, name) ->
      let i = Space.var_index_exn space name in
      a.coeffs.(i) <- Ints.add a.coeffs.(i) c)
    terms;
  { a with const }

let space t = t.space
let coeff t i = t.coeffs.(i)
let coeff_of t name = t.coeffs.(Space.var_index_exn t.space name)
let constant t = t.const

let check_same a b =
  if not (Space.equal a.space b.space) then invalid_arg "Aff: space mismatch"

let map2 f a b =
  check_same a b;
  { space = a.space;
    coeffs = Array.init (Array.length a.coeffs) (fun i -> f a.coeffs.(i) b.coeffs.(i));
    const = f a.const b.const }

let add a b = map2 Ints.add a b
let sub a b = map2 Ints.sub a b

let scale k a =
  { a with coeffs = Array.map (Ints.mul k) a.coeffs; const = Ints.mul k a.const }

let neg a = scale (-1) a

let add_const a c = { a with const = Ints.add a.const c }

let set_coeff a i c =
  let coeffs = Array.copy a.coeffs in
  coeffs.(i) <- c;
  { a with coeffs }

let is_constant a = Array.for_all (fun c -> c = 0) a.coeffs

(* True when the expression involves no dims (params allowed). *)
let is_param_only a =
  let np = Space.n_params a.space in
  let ok = ref true in
  Array.iteri (fun i c -> if i >= np && c <> 0 then ok := false) a.coeffs;
  !ok

let equal a b =
  Space.equal a.space b.space && a.coeffs = b.coeffs && a.const = b.const

(* Evaluate under a full assignment of the combined vector. *)
let eval a env =
  let acc = ref a.const in
  Array.iteri (fun i c -> if c <> 0 then acc := Ints.add !acc (Ints.mul c env.(i))) a.coeffs;
  !acc

(* Substitute variable [i] by affine expression [e] (over the same
   space). *)
let substitute a i e =
  let c = a.coeffs.(i) in
  if c = 0 then a
  else
    let a' = set_coeff a i 0 in
    add a' (scale c e)

(* Move the expression into a new space: [remap.(i)] gives the index in
   the new space of old variable [i], or [-1] if the variable is gone
   (its coefficient must then be zero). *)
let rebase a new_space remap =
  let coeffs = Array.make (Space.n_total new_space) 0 in
  Array.iteri (fun i c ->
      if c <> 0 then begin
        let j = remap.(i) in
        if j < 0 then invalid_arg "Aff.rebase: dropped variable has nonzero coefficient";
        coeffs.(j) <- Ints.add coeffs.(j) c
      end)
    a.coeffs;
  { space = new_space; coeffs; const = a.const }

let gcd_content a =
  Ints.gcd (Ints.gcd_array a.coeffs) a.const

(* Gcd of variable coefficients only (constant excluded). *)
let gcd_coeffs a = Ints.gcd_array a.coeffs

let divide_exact a g =
  assert (g > 0);
  { a with coeffs = Array.map (fun c -> c / g) a.coeffs; const = a.const / g }

let pp fmt a =
  let open Format in
  let first = ref true in
  let term c name =
    if c <> 0 then begin
      if !first then begin
        if c = 1 then fprintf fmt "%s" name
        else if c = -1 then fprintf fmt "-%s" name
        else fprintf fmt "%d%s" c name;
        first := false
      end
      else if c > 0 then
        if c = 1 then fprintf fmt " + %s" name else fprintf fmt " + %d%s" c name
      else if c = -1 then fprintf fmt " - %s" name
      else fprintf fmt " - %d%s" (-c) name
    end
  in
  Array.iteri (fun i c -> term c (Space.var_name a.space i)) a.coeffs;
  if !first then fprintf fmt "%d" a.const
  else if a.const > 0 then fprintf fmt " + %d" a.const
  else if a.const < 0 then fprintf fmt " - %d" (-a.const)

let to_string a = Format.asprintf "%a" pp a
