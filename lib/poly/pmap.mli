(** Polyhedral relations (maps) between two spaces sharing parameters.

    Memory access maps in the partitioning compiler are maps from the
    6-dimensional grid space (blockOff.{z,y,x}, blockIdx.{z,y,x}) to
    array index spaces (paper §4). *)

type t

val combined_space : Space.t -> Space.t -> Space.t
(** The space [params; dims(dom) ++ dims(ran)] the relation lives in. *)

val make : dom:Space.t -> ran:Space.t -> Pset.t -> t
(** Wrap a set over the combined space as a map. *)

val of_affs :
  dom:Space.t -> ran:Space.t -> affs:Aff.t array -> guards:Constr.t list -> t
(** Map given by affine output functions [out_i = affs.(i)] of the
    domain dims; [guards] are constraints over the combined space
    restricting the domain. *)

val dom_space : t -> Space.t
val ran_space : t -> Space.t

val rel : t -> Pset.t
(** The underlying set over the combined space. *)

val combined : t -> Space.t

val is_empty : t -> bool

val union : t -> t -> t
val union_all : dom:Space.t -> ran:Space.t -> t list -> t

val domain : t -> Pset.t
val range : t -> Pset.t

val constrain_domain : t -> Pset.t -> t
(** Intersect the domain with a set over the domain space. *)

val image : t -> Pset.t -> Pset.t
(** Image of a set under the map. *)

val constrain : t -> Constr.t list -> t
(** Add raw constraints over the combined space. *)

val inverse : t -> t
val preimage : t -> Pset.t -> Pset.t

val is_injective : ?param_ge:((int * string) list * int) list -> t -> bool
(** Write-map check from paper §4.1: no two distinct domain points map
    to a common range point.  [param_ge] lists context constraints
    [sum terms + const >= 0] over parameter names (e.g. problem size
    at least 1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
