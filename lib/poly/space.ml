(* Dimension spaces.

   A space names the variables an affine expression or polyhedron ranges
   over.  The variable vector is ordered [params ++ dims]: parameters are
   symbolic constants (problem sizes, block dimensions, scalar kernel
   arguments); dims are the set dimensions proper (grid coordinates,
   array subscripts, loop counters).  Coefficient arrays in {!Aff} are
   indexed by this combined vector. *)

type t = { params : string array; dims : string array }

let make ~params ~dims =
  let seen = Hashtbl.create 16 in
  let check n =
    if Hashtbl.mem seen n then invalid_arg ("Space.make: duplicate name " ^ n);
    Hashtbl.add seen n ()
  in
  Array.iter check params;
  Array.iter check dims;
  { params = Array.copy params; dims = Array.copy dims }

let set_space ?(params = [||]) dims = make ~params ~dims

let n_params t = Array.length t.params
let n_dims t = Array.length t.dims
let n_total t = n_params t + n_dims t

let params t = t.params
let dims t = t.dims

let find_index arr name =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if arr.(i) = name then Some i else go (i + 1) in
  go 0

let param_index t name = find_index t.params name

let dim_index t name =
  match find_index t.dims name with
  | Some i -> Some (n_params t + i)
  | None -> None

(* Index of [name] in the combined vector, searching params then dims. *)
let var_index t name =
  match param_index t name with Some i -> Some i | None -> dim_index t name

let var_index_exn t name =
  match var_index t name with
  | Some i -> i
  | None -> invalid_arg ("Space.var_index_exn: unknown variable " ^ name)

let var_name t i =
  let np = n_params t in
  if i < np then t.params.(i) else t.dims.(i - np)

let equal a b = a.params = b.params && a.dims = b.dims

(* Remove the dim at combined-vector index [i] (must denote a dim, not a
   param). *)
let drop_dim t i =
  let np = n_params t in
  if i < np then invalid_arg "Space.drop_dim: cannot drop a parameter";
  let j = i - np in
  let dims =
    Array.init (n_dims t - 1) (fun k -> if k < j then t.dims.(k) else t.dims.(k + 1))
  in
  { t with dims }

(* Append extra dims at the end of the dim block. *)
let add_dims t extra = make ~params:t.params ~dims:(Array.append t.dims extra)

(* Keep only the dims whose (dim-local) index satisfies [f]; params kept. *)
let filter_dims t f =
  let dims = Array.of_list (List.filteri (fun i _ -> f i) (Array.to_list t.dims)) in
  { t with dims }

let pp fmt t =
  Format.fprintf fmt "[%s] -> {%s}"
    (String.concat ", " (Array.to_list t.params))
    (String.concat ", " (Array.to_list t.dims))
