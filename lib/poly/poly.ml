(* Convex polyhedra: conjunctions of affine constraints over a space.

   The central algorithm is Fourier-Motzkin variable elimination, used
   for projection (computing images of access maps) and for emptiness
   tests (feasibility over Q; exact enough for the unimodular access
   functions produced by data-parallel kernels, and validated against
   brute-force enumeration in the test suite).  Equalities are
   eliminated by substitution, which is exact.

   Parameters take part in elimination during emptiness tests (a
   polyhedron is "empty" when no parameter valuation admits a point),
   but are never projected away by [project_dims]. *)

type t = {
  space : Space.t;
  constrs : Constr.t list;
  (* A constraint reduced to a false constant was found at construction
     time; [constrs] is then irrelevant. *)
  trivially_empty : bool;
}

let space p = p.space
let constraints p = if p.trivially_empty then [] else p.constrs

(* Deduplicate and keep, for each coefficient vector, only the tightest
   inequality (an inequality [v + k >= 0] with larger [k] is weaker). *)
let simplify_list constrs =
  let module M = Map.Make (struct
    type t = Constr.kind * int array * int option
    let compare = compare
  end) in
  let add acc c =
    let coeffs =
      Array.init (Space.n_total (Constr.space c)) (fun i -> Aff.coeff (Constr.aff c) i)
    in
    (* Inequalities with the same coefficient vector are merged (keep the
       tightest, i.e. smallest constant).  Equalities are only deduped
       when exactly identical; conflicting equalities are both kept and
       left for elimination to expose. *)
    let key =
      match Constr.kind c with
      | Constr.Ge -> (Constr.Ge, coeffs, None)
      | Constr.Eq -> (Constr.Eq, coeffs, Some (Aff.constant (Constr.aff c)))
    in
    match M.find_opt key acc with
    | None -> M.add key c acc
    | Some c' ->
      let k = Aff.constant (Constr.aff c) and k' = Aff.constant (Constr.aff c') in
      if Constr.kind c = Constr.Ge && k < k' then M.add key c acc else acc
  in
  let m = List.fold_left add M.empty constrs in
  M.fold (fun _ c l -> c :: l) m []

let make space constrs =
  let rec go acc = function
    | [] -> { space; constrs = simplify_list acc; trivially_empty = false }
    | c :: rest ->
      if not (Space.equal (Constr.space c) space) then invalid_arg "Poly.make: space mismatch";
      let c = Constr.normalize c in
      (match Constr.triviality c with
       | Constr.Trivially_true -> go acc rest
       | Constr.Trivially_false -> { space; constrs = []; trivially_empty = true }
       | Constr.Nontrivial -> go (c :: acc) rest)
  in
  go [] constrs

let universe space = make space []
let empty space = { space; constrs = []; trivially_empty = true }
let is_trivially_empty p = p.trivially_empty

let add_constrs p cs =
  if p.trivially_empty then p else make p.space (cs @ p.constrs)

let intersect a b =
  if not (Space.equal a.space b.space) then invalid_arg "Poly.intersect: space mismatch";
  if a.trivially_empty || b.trivially_empty then empty a.space
  else make a.space (a.constrs @ b.constrs)

let mem p env =
  (not p.trivially_empty) && List.for_all (fun c -> Constr.eval c env) p.constrs

(* --- Fourier-Motzkin elimination ------------------------------------ *)

(* Split [constrs] into (equalities with nonzero coeff on i,
   lower inequalities, upper inequalities, constraints without i). *)
let split_on constrs i =
  List.fold_left
    (fun (eqs, lows, ups, rest) c ->
       let a = Aff.coeff (Constr.aff c) i in
       if a = 0 then (eqs, lows, ups, c :: rest)
       else
         match Constr.kind c with
         | Constr.Eq -> (c :: eqs, lows, ups, rest)
         | Constr.Ge ->
           if a > 0 then (eqs, c :: lows, ups, rest) else (eqs, lows, c :: ups, rest))
    ([], [], [], []) constrs

(* Affine part of [c] with the coefficient on [i] zeroed. *)
let rest_of c i = Aff.set_coeff (Constr.aff c) i 0

(* Eliminate variable [i] from a constraint list.  The space is
   unchanged; the result has no occurrence of variable [i].  Exact over
   Q; exact over Z when an equality with unit coefficient is available. *)
let eliminate_from_list constrs i =
  let eqs, lows, ups, rest = split_on constrs i in
  match eqs with
  | e :: other_eqs ->
    (* Substitute using the equality  a*x + R = 0. *)
    let a = Aff.coeff (Constr.aff e) i in
    let r = rest_of e i in
    let subst c =
      let b = Aff.coeff (Constr.aff c) i in
      if b = 0 then c
      else
        (* |a| * c  with  b*x  replaced using  a*x = -R:
           new_aff = |a| * rest(c) - sign(a)*b*R *)
        let aff =
          Aff.add
            (Aff.scale (abs a) (rest_of c i))
            (Aff.scale (- Ints.sign a * b) r)
        in
        Constr.make (Constr.kind c) aff
    in
    List.map subst (other_eqs @ lows @ ups) @ rest
  | [] ->
    let combos =
      List.concat_map
        (fun l ->
           let al = Aff.coeff (Constr.aff l) i in
           List.map
             (fun u ->
                let au = Aff.coeff (Constr.aff u) i in
                (* al > 0, au < 0:  al*rest(u) + (-au)*rest(l) >= 0 *)
                Constr.ge
                  (Aff.add (Aff.scale al (rest_of u i)) (Aff.scale (- au) (rest_of l i))))
             ups)
        lows
    in
    combos @ rest

(* Number of new constraints elimination of [i] would create; used to
   pick a cheap elimination order. *)
let elimination_cost constrs i =
  let eqs, lows, ups, _ = split_on constrs i in
  if eqs <> [] then List.length lows + List.length ups
  else List.length lows * List.length ups

exception Found_empty

(* Normalize a raw constraint list, raising [Found_empty] on a trivially
   false constraint. *)
let renormalize constrs =
  let step acc c =
    let c = Constr.normalize c in
    match Constr.triviality c with
    | Constr.Trivially_true -> acc
    | Constr.Trivially_false -> raise Found_empty
    | Constr.Nontrivial -> c :: acc
  in
  simplify_list (List.fold_left step [] constrs)

let eliminate_var p i =
  if p.trivially_empty then p
  else
    try { p with constrs = renormalize (eliminate_from_list p.constrs i) }
    with Found_empty -> empty p.space

(* Q-feasibility: eliminate every variable (cheapest first); the system
   is infeasible iff a false constant constraint appears. *)
let is_empty p =
  if p.trivially_empty then true
  else
    let n = Space.n_total p.space in
    let rec go constrs remaining =
      match constrs with
      | [] -> false
      | _ ->
        (match remaining with
         | [] -> false
         | _ ->
           let occurring =
             List.filter
               (fun i -> List.exists (fun c -> Aff.coeff (Constr.aff c) i <> 0) constrs)
               remaining
           in
           (match occurring with
            | [] ->
              (* only constant constraints remain; renormalize already
                 raised if any was false *)
              false
            | _ ->
              let i =
                List.fold_left
                  (fun best j ->
                     if elimination_cost constrs j < elimination_cost constrs best then j
                     else best)
                  (List.hd occurring) (List.tl occurring)
              in
              let constrs' = renormalize (eliminate_from_list constrs i) in
              go constrs' (List.filter (fun j -> j <> i) occurring)))
    in
    (try go p.constrs (List.init n (fun i -> i)) with Found_empty -> true)

(* --- Projection ------------------------------------------------------ *)

(* Eliminate the dims at the given combined-vector indices and remove
   them from the space.  The result is the rational shadow, an
   over-approximation of the integer projection. *)
let project_out p idxs =
  let idxs = List.sort_uniq compare idxs in
  List.iter
    (fun i -> if i < Space.n_params p.space then invalid_arg "Poly.project_out: parameter")
    idxs;
  if p.trivially_empty then
    let space =
      List.fold_left (fun sp i -> Space.drop_dim sp i) p.space (List.rev idxs)
    in
    empty space
  else begin
    let constrs =
      try
        Some
          (List.fold_left
             (fun cs i -> renormalize (eliminate_from_list cs i))
             p.constrs idxs)
      with Found_empty -> None
    in
    (* Build the reduced space and the index remap. *)
    let n = Space.n_total p.space in
    let keep = Array.make n true in
    List.iter (fun i -> keep.(i) <- false) idxs;
    let space =
      Space.filter_dims p.space (fun dim_local ->
          keep.(Space.n_params p.space + dim_local))
    in
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    match constrs with
    | None -> empty space
    | Some cs ->
      { space; constrs = List.map (fun c -> Constr.rebase c space remap) cs;
        trivially_empty = false }
  end

(* Keep only the dims whose dim-local index is in [keep]; eliminate all
   others. *)
let project_onto p keep_local =
  let np = Space.n_params p.space in
  let nd = Space.n_dims p.space in
  let drop = ref [] in
  for d = nd - 1 downto 0 do
    if not (List.mem d keep_local) then drop := (np + d) :: !drop
  done;
  project_out p !drop

(* --- Bounds extraction (for code generation) ------------------------- *)

(* Lower/upper bound pairs for variable [i]:  each lower is (a, rest)
   meaning  x >= ceil(-rest / a)  with a > 0;  each upper is (a, rest)
   meaning  x <= floor(rest / a)  with a > 0 (sign already folded). *)
let bounds_of_var p i =
  let lows = ref [] and ups = ref [] in
  List.iter
    (fun c ->
       let a = Aff.coeff (Constr.aff c) i in
       if a <> 0 then begin
         let r = rest_of c i in
         match Constr.kind c with
         | Constr.Ge ->
           if a > 0 then lows := (a, Aff.neg r) :: !lows
           else ups := (-a, r) :: !ups
         | Constr.Eq ->
           if a > 0 then begin
             lows := (a, Aff.neg r) :: !lows;
             ups := (a, Aff.neg r) :: !ups
           end
           else begin
             lows := (-a, r) :: !lows;
             ups := (-a, r) :: !ups
           end
       end)
    (constraints p);
  (!lows, !ups)

(* Constraints not involving variable [i]. *)
let constrs_without p i =
  List.filter (fun c -> Aff.coeff (Constr.aff c) i = 0) (constraints p)

(* --- Integer sampling (bounded search; used by tests) ----------------- *)

(* Numeric bounds of variable [i] given values for variables already
   fixed in [env] (unfixed = None contributions must be zero). *)
let numeric_bounds p i env =
  let lows, ups = bounds_of_var p i in
  let eval_rest aff =
    let acc = ref (Aff.constant aff) in
    let ok = ref true in
    Array.iteri
      (fun j v ->
         let c = Aff.coeff aff j in
         if c <> 0 then (match v with Some x -> acc := !acc + (c * x) | None -> ok := false))
      env;
    if !ok then Some !acc else None
  in
  let lo =
    List.fold_left
      (fun acc (a, r) ->
         match eval_rest r with
         | None -> acc
         | Some v ->
           let b = Ints.cdiv v a in
           (match acc with None -> Some b | Some x -> Some (max x b)))
      None lows
  in
  let hi =
    List.fold_left
      (fun acc (a, r) ->
         match eval_rest r with
         | None -> acc
         | Some v ->
           let b = Ints.fdiv v a in
           (match acc with None -> Some b | Some x -> Some (min x b)))
      None ups
  in
  (lo, hi)

(* Search for an integer point; all variables (params included) must be
   bounded, otherwise [default_radius] caps the search.  Returns the
   full assignment. *)
let sample ?(default_radius = 64) p =
  if p.trivially_empty then None
  else
    let n = Space.n_total p.space in
    let env = Array.make n None in
    let rec go i =
      if i >= n then
        let point = Array.map (function Some v -> v | None -> 0) env in
        if mem p point then Some point else None
      else begin
        let lo, hi = numeric_bounds p i env in
        let lo = match lo with Some v -> v | None -> -default_radius in
        let hi = match hi with Some v -> v | None -> default_radius in
        let rec try_v v =
          if v > hi then None
          else begin
            env.(i) <- Some v;
            match go (i + 1) with
            | Some pt -> Some pt
            | None ->
              env.(i) <- None;
              try_v (v + 1)
          end
        in
        try_v lo
      end
    in
    go 0

(* --- Containment ------------------------------------------------------ *)

(* [subsumes a b]: does [a] contain [b]?  True when for every constraint
   c of [a], b ∩ ¬c is empty.  Equalities are split into their two
   strict negations.  Sound over Z (uses integer negation). *)
let subsumes a b =
  if b.trivially_empty then true
  else if a.trivially_empty then is_empty b
  else
    List.for_all
      (fun c ->
         match Constr.kind c with
         | Constr.Ge -> is_empty (add_constrs b [ Constr.negate_ge c ])
         | Constr.Eq ->
           let aff = Constr.aff c in
           is_empty (add_constrs b [ Constr.ge (Aff.add_const aff (-1)) ])
           && is_empty (add_constrs b [ Constr.ge (Aff.add_const (Aff.neg aff) (-1)) ])
      )
      a.constrs

let equal_set a b = subsumes a b && subsumes b a

(* --- Substitution / rebasing ----------------------------------------- *)

let substitute p i e =
  if p.trivially_empty then p
  else
    try { p with constrs = renormalize (List.map (fun c -> Constr.substitute c i e) p.constrs) }
    with Found_empty -> empty p.space

let rebase p space remap =
  { space;
    constrs = (if p.trivially_empty then [] else List.map (fun c -> Constr.rebase c space remap) p.constrs);
    trivially_empty = p.trivially_empty }

let pp fmt p =
  if p.trivially_empty then Format.fprintf fmt "{ false }"
  else if p.constrs = [] then Format.fprintf fmt "{ true }"
  else
    Format.fprintf fmt "{ %a }"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt " and ")
         Constr.pp)
      p.constrs

let to_string p = Format.asprintf "%a" pp p
