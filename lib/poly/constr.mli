(** Affine constraints: [aff = 0] (equality) or [aff >= 0]
    (inequality). *)

type kind = Eq | Ge

type t

val make : kind -> Aff.t -> t
val eq : Aff.t -> t
val ge : Aff.t -> t

val ge2 : Aff.t -> Aff.t -> t
(** [ge2 a b] is the constraint [a >= b]. *)

val le2 : Aff.t -> Aff.t -> t
(** [le2 a b] is [a <= b]. *)

val eq2 : Aff.t -> Aff.t -> t
(** [eq2 a b] is [a = b]. *)

val gt2 : Aff.t -> Aff.t -> t
(** [gt2 a b] is the integer-strict [a > b], i.e. [a - b - 1 >= 0]. *)

val lt2 : Aff.t -> Aff.t -> t

val kind : t -> kind
val aff : t -> Aff.t
val space : t -> Space.t

val negate_ge : t -> t
(** Integer negation of an inequality: [not (aff >= 0)] is
    [-aff - 1 >= 0].  Must not be applied to equalities. *)

type triviality = Trivially_true | Trivially_false | Nontrivial

val triviality : t -> triviality
(** Classification of constraints with no variable coefficients. *)

val normalize : t -> t
(** Divide by the gcd of variable coefficients, tighten inequality
    constants toward the integer hull, canonicalize equality sign.  An
    unsatisfiable equality (gcd does not divide the constant) becomes a
    trivially-false constraint. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val eval : t -> int array -> bool
(** Does the assignment satisfy the constraint? *)

val rebase : t -> Space.t -> int array -> t
val substitute : t -> int -> Aff.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
