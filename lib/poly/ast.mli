(** isl-style code generation: loop-nest ASTs scanning polyhedra.

    The generator follows the classic "project and bound" scheme
    (paper §6): for each dimension, project the polyhedron onto the
    outer dimensions and compute closed-form loop bounds.  ASTs can be
    pretty-printed as C-like text or executed directly against an
    environment. *)

type expr =
  | Int of int
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Fdiv of expr * expr  (** floor division *)
  | Cdiv of expr * expr  (** ceiling division *)
  | Min of expr * expr
  | Max of expr * expr

type stmt =
  | Seq of stmt list
  | For of { var : string; lb : expr; ub : expr; body : stmt }
      (** [ub] inclusive *)
  | Guard of expr list * stmt  (** all exprs must be [>= 0] *)
  | Emit of expr array  (** one point of the set *)
  | Emit_range of expr array * expr * expr
      (** row coordinates, then inclusive bounds of the innermost dim *)

val simp : expr -> expr
(** Constant folding and algebraic simplification. *)

val expr_of_aff : Aff.t -> expr
(** Expression for an affine form, variables named through its space. *)

val lower_bound_expr : (int * Aff.t) list -> expr option
(** Max over [ceil(rest/a)] bound expressions; [None] if unbounded. *)

val upper_bound_expr : (int * Aff.t) list -> expr option

exception Unbounded of string
(** Raised by scanning when a dimension has no finite bound; carries the
    dimension name. *)

val scan_poly : ?emit_ranges:bool -> Poly.t -> stmt
(** Loop nest scanning all integer points of a convex polyhedron, dims
    outermost-first.  With [emit_ranges] the innermost loop becomes an
    [Emit_range]. *)

val scan_set : ?emit_ranges:bool -> Pset.t -> stmt
(** One loop nest per convex piece, in sequence. *)

type env = (string, int) Hashtbl.t

val eval_expr : env -> expr -> int

val compile_expr : slot:(string -> int) -> expr -> int array -> int
(** Compile an expression into a closure over a slot-indexed int-array
    environment.  [slot] maps each variable name to its array index
    (allocating on first sight); repeated evaluation pays no hashing. *)

val exec :
  env ->
  on_point:(int array -> unit) ->
  on_range:(int array -> int -> int -> unit) ->
  stmt ->
  unit
(** Execute a statement; [on_range] receives (row coordinates,
    inclusive lo, inclusive hi). *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : ?indent:int -> Format.formatter -> stmt -> unit
val stmt_to_string : stmt -> string
val expr_to_string : expr -> string
