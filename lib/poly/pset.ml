(* Unions of convex polyhedra ("Presburger sets", without existentials
   or divs).  All pieces share one space.  Operations keep the piece
   list small with cheap pairwise subsumption. *)

type t = { space : Space.t; pieces : Poly.t list }

let of_polys space pieces =
  List.iter
    (fun p -> if not (Space.equal (Poly.space p) space) then invalid_arg "Pset: space mismatch")
    pieces;
  { space; pieces = List.filter (fun p -> not (Poly.is_trivially_empty p)) pieces }

let of_poly p = of_polys (Poly.space p) [ p ]
let empty space = { space; pieces = [] }
let universe space = of_poly (Poly.universe space)

let space s = s.space
let pieces s = s.pieces
let n_pieces s = List.length s.pieces

let is_empty s = List.for_all Poly.is_empty s.pieces

let mem s env = List.exists (fun p -> Poly.mem p env) s.pieces

(* Drop pieces subsumed by another piece (quadratic; piece counts are
   small in this code base). *)
let coalesce s =
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
      if Poly.is_empty p then go kept rest
      else if
        List.exists (fun q -> Poly.subsumes q p) kept
        || List.exists (fun q -> Poly.subsumes q p) rest
      then go kept rest
      else go (p :: kept) rest
  in
  { s with pieces = go [] s.pieces }

let union a b =
  if not (Space.equal a.space b.space) then invalid_arg "Pset.union: space mismatch";
  { space = a.space; pieces = a.pieces @ b.pieces }

let union_all space sets = List.fold_left union (empty space) sets

let intersect a b =
  if not (Space.equal a.space b.space) then invalid_arg "Pset.intersect: space mismatch";
  let pieces =
    List.concat_map
      (fun p -> List.map (fun q -> Poly.intersect p q) b.pieces)
      a.pieces
  in
  of_polys a.space pieces

let intersect_poly s p = intersect s (of_poly p)

let add_constrs s cs =
  { s with pieces = List.map (fun p -> Poly.add_constrs p cs) s.pieces }

(* Set difference.  piece \ Q is the union over constraints c of Q of
   piece ∩ ¬c (with earlier constraints asserted, to keep the result
   disjoint).  Equalities split into the two strict sides. *)
let subtract_poly piece q =
  let space = Poly.space piece in
  let negations_of c =
    match Constr.kind c with
    | Constr.Ge -> [ Constr.negate_ge c ]
    | Constr.Eq ->
      let aff = Constr.aff c in
      [ Constr.ge (Aff.add_const aff (-1));
        Constr.ge (Aff.add_const (Aff.neg aff) (-1)) ]
  in
  let rec go asserted acc = function
    | [] -> acc
    | c :: rest ->
      let here =
        List.map
          (fun neg -> Poly.add_constrs piece (neg :: asserted))
          (negations_of c)
      in
      go (c :: asserted) (here @ acc) rest
  in
  of_polys space (go [] [] (Poly.constraints q))

let subtract a b =
  if not (Space.equal a.space b.space) then invalid_arg "Pset.subtract: space mismatch";
  let sub_piece piece =
    List.fold_left
      (fun remaining q ->
         List.concat_map (fun p -> (subtract_poly p q).pieces) remaining)
      [ piece ] b.pieces
  in
  of_polys a.space (List.concat_map sub_piece a.pieces)

let subsumes a b = is_empty (subtract b a)

let equal a b = subsumes a b && subsumes b a

let project_out s idxs =
  let pieces = List.map (fun p -> Poly.project_out p idxs) s.pieces in
  match pieces with
  | [] ->
    (* Compute the reduced space from an empty piece. *)
    let p = Poly.project_out (Poly.empty s.space) idxs in
    empty (Poly.space p)
  | p :: _ -> of_polys (Poly.space p) pieces

let project_onto s keep_local =
  let pieces = List.map (fun p -> Poly.project_onto p keep_local) s.pieces in
  match pieces with
  | [] ->
    let p = Poly.project_onto (Poly.empty s.space) keep_local in
    empty (Poly.space p)
  | p :: _ -> of_polys (Poly.space p) pieces

let sample ?default_radius s =
  List.fold_left
    (fun acc p -> match acc with Some _ -> acc | None -> Poly.sample ?default_radius p)
    None s.pieces

(* Enumerate all integer points of a bounded set (test helper; the
   search radius caps unbounded directions). *)
let enumerate ?(default_radius = 32) s =
  let points = Hashtbl.create 64 in
  let each_piece p =
    if not (Poly.is_trivially_empty p) then begin
      let n = Space.n_total s.space in
      let env = Array.make n None in
      let rec go i =
        if i >= n then begin
          let pt = Array.map (function Some v -> v | None -> 0) env in
          if Poly.mem p pt then Hashtbl.replace points (Array.to_list pt) ()
        end
        else begin
          let lo, hi = Poly.numeric_bounds p i env in
          let lo = match lo with Some v -> v | None -> -default_radius in
          let hi = match hi with Some v -> v | None -> default_radius in
          for v = lo to hi do
            env.(i) <- Some v;
            go (i + 1)
          done;
          env.(i) <- None
        end
      in
      go 0
    end
  in
  List.iter each_piece s.pieces;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) points [])

let pp fmt s =
  match s.pieces with
  | [] -> Format.fprintf fmt "{}"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt " u ")
      Poly.pp fmt s.pieces

let to_string s = Format.asprintf "%a" pp s
