(** Convex polyhedra: conjunctions of affine constraints.

    Projection and emptiness are computed with Fourier-Motzkin
    elimination; equalities are eliminated by substitution.  Projection
    yields the rational shadow (an over-approximation of the integer
    projection, exact for the unimodular access functions produced by
    data-parallel kernels).  Emptiness is rational feasibility treating
    parameters as ordinary variables: a polyhedron is empty when no
    parameter valuation admits a point. *)

type t

val make : Space.t -> Constr.t list -> t
(** Normalizes, deduplicates, and detects trivially false constraints. *)

val universe : Space.t -> t
val empty : Space.t -> t

val space : t -> Space.t

val constraints : t -> Constr.t list
(** The normalized constraint list ([] for trivially-empty polyhedra). *)

val is_trivially_empty : t -> bool
(** Syntactic emptiness only; see {!is_empty} for the real test. *)

val add_constrs : t -> Constr.t list -> t
val intersect : t -> t -> t

val mem : t -> int array -> bool
(** Membership of a full assignment of the combined variable vector. *)

val is_empty : t -> bool
(** Feasibility over Q via full Fourier-Motzkin elimination. *)

val eliminate_var : t -> int -> t
(** Remove every occurrence of one variable (space unchanged). *)

val project_out : t -> int list -> t
(** Eliminate the dims at the given combined-vector indices and drop
    them from the space. *)

val project_onto : t -> int list -> t
(** Keep only the dims whose dim-local indices are listed. *)

val bounds_of_var : t -> int -> (int * Aff.t) list * (int * Aff.t) list
(** [(lowers, uppers)] for a variable: a lower [(a, e)] means
    [x >= ceil(e / a)], an upper [(a, e)] means [x <= floor(e / a)],
    with [a > 0] in both. *)

val constrs_without : t -> int -> Constr.t list
(** Constraints not involving the given variable. *)

val numeric_bounds : t -> int -> int option array -> int option * int option
(** Numeric bounds of a variable given partial assignment [env]
    (constraints mentioning unassigned variables are ignored). *)

val sample : ?default_radius:int -> t -> int array option
(** Search for an integer point by bounded backtracking; unbounded
    directions are searched within [default_radius]. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: does [a] contain [b] (over Z)? *)

val equal_set : t -> t -> bool

val substitute : t -> int -> Aff.t -> t
val rebase : t -> Space.t -> int array -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
