(* Runtime configuration switches for the overhead methodology of paper
   §9.2.  The three measurement configurations are:

     alpha: regular execution of the multi-GPU application;
     beta:  transfers disabled, but dependency resolution and tracker
            updates still performed;
     gamma: dependency resolution and tracker updates disabled (which
            also disables the transfers they would generate).

   beta and gamma runs are performance-mode only: their buffer contents
   are not meaningful. *)

type t = {
  transfers : bool; (* issue inter-device transfers *)
  patterns : bool; (* run enumerators, tracker queries and updates *)
}

let alpha = { transfers = true; patterns = true }
let beta = { transfers = false; patterns = true }
let gamma = { transfers = false; patterns = false }

let name c =
  match (c.transfers, c.patterns) with
  | true, true -> "alpha"
  | false, true -> "beta"
  | false, false -> "gamma"
  | true, false -> "invalid"

let is_valid c = c.patterns || not c.transfers
