(** A mutable B-tree map (CLRS-style).

    The paper's segment tracker stores its non-overlapping segment list
    in "a B-Tree map using the start of each segment as the key"
    (§8.1); this module is that map, functorized over the key order. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type key = Ord.t

  type 'v tree
  (** A mutable map from [key] to ['v]. *)

  val create : unit -> 'v tree
  val size : 'v tree -> int
  val is_empty : 'v tree -> bool

  val add : 'v tree -> key -> 'v -> unit
  (** Insert or replace. *)

  val find_opt : 'v tree -> key -> 'v option
  val mem : 'v tree -> key -> bool

  val floor : 'v tree -> key -> (key * 'v) option
  (** Largest entry with key [<= k]. *)

  val min_binding : 'v tree -> (key * 'v) option
  val max_binding : 'v tree -> (key * 'v) option

  val iter : 'v tree -> (key -> 'v -> unit) -> unit
  (** In-order traversal. *)

  val iter_from : 'v tree -> key -> (key -> 'v -> bool) -> unit
  (** In-order visit of entries with key [>= k]; the callback returns
      [false] to stop. *)

  val to_list : 'v tree -> (key * 'v) list

  val remove : 'v tree -> key -> unit
  (** Delete a key if present. *)

  val validate : 'v tree -> int
  (** Check the B-tree invariants (key order, node fill, balance);
      returns the depth.  Raises [Failure] on violation. *)
end

module Int_ord : ORDERED with type t = int

module Int_map : module type of Make (Int_ord)
(** The instantiation used by the segment tracker. *)
