(** The segment tracker (paper §8.1): which device owns the most
    recently written copy of each element range of a virtual buffer.

    Segments are non-overlapping half-open intervals covering the whole
    index space, stored in a B-tree keyed by segment start.  One owner
    per segment — shared copies are not representable, which is the
    paper's stated limitation (redundant transfers for shared data). *)

type segment = { start : int; stop : int; owner : int }

type t

val host : int
(** Owner value meaning "freshest copy is in host memory". *)

val create : len:int -> initial_owner:int -> t
(** A tracker covering [0, len) with a single segment. *)

val len : t -> int
val segment_count : t -> int

val ops : t -> int
(** Number of B-tree operations performed so far (cost accounting). *)

val reset_ops : t -> unit

val query : t -> start:int -> stop:int -> segment list
(** The segments overlapping [start, stop), clipped to it, in order.
    The result covers every element of the range. *)

val owner_at : t -> int -> int
(** Owner of a single element. *)

val write : t -> start:int -> stop:int -> owner:int -> unit
(** Record that [owner] wrote [start, stop): existing segments are
    split or absorbed and equal-owner neighbours are merged. *)

val owned_by : t -> owner:int -> segment list
(** The segments [owner] holds, in order.  One owner per segment, so
    for a device id this is exactly what that device *exclusively*
    owns — the recovery metadata consulted when it is lost. *)

val owned_count : t -> owner:int -> int
(** Number of elements [owner] holds. *)

val segments : t -> segment list
(** All segments, in order. *)

val check_invariants : t -> unit
(** Verify full coverage, no overlap, sortedness and maximal merging;
    raises [Failure] on violation.  Test support. *)

val pp : Format.formatter -> t -> unit
