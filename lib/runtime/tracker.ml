(* The segment tracker (paper §8.1).

   For each virtual buffer the tracker records, as a sorted list of
   non-overlapping half-open segments, which device instance holds the
   most recently written copy of every element.  The list lives in a
   B-tree map keyed by segment start.  Shared copies are not
   representable (one owner per segment), which is exactly the paper's
   stated limitation: applications with widely shared read data pay
   redundant transfers.

   Owners are small integers: a device id, or {!host} for data whose
   freshest copy is in host memory. *)

module M = Btree.Int_map

let host = -1

type segment = { start : int; stop : int; owner : int }

type t = {
  len : int; (* extent of the tracked index space *)
  map : (int * int) M.tree; (* start -> (stop, owner) *)
  mutable ops : int; (* B-tree operations performed, for cost accounting *)
}

let create ~len ~initial_owner =
  if len <= 0 then invalid_arg "Tracker.create: empty index space";
  let map = M.create () in
  M.add map 0 (len, initial_owner);
  { len; map; ops = 1 }

let len t = t.len
let segment_count t = M.size t.map

let ops t = t.ops
let reset_ops t = t.ops <- 0

let bump t n = t.ops <- t.ops + n

let check_range t ~start ~stop ~what =
  if start < 0 || stop > t.len || start >= stop then
    invalid_arg
      (Printf.sprintf "Tracker.%s: bad range [%d,%d) in space of %d" what start
         stop t.len)

(* The segments overlapping [start, stop), clipped to it, in order.
   Every element of the range is covered (the tracker always covers the
   whole index space). *)
let query t ~start ~stop =
  check_range t ~start ~stop ~what:"query";
  bump t 1;
  let out = ref [] in
  let from_key =
    match M.floor t.map start with Some (k, _) -> k | None -> start
  in
  M.iter_from t.map from_key (fun s (e, owner) ->
      bump t 1;
      if s >= stop then false
      else begin
        if e > start then
          out := { start = max s start; stop = min e stop; owner } :: !out;
        true
      end);
  List.rev !out

(* Owner of a single element. *)
let owner_at t idx =
  match query t ~start:idx ~stop:(idx + 1) with
  | [ s ] -> s.owner
  | _ -> invalid_arg "Tracker.owner_at: uncovered index"

(* Record that [owner] has written [start, stop): existing segments are
   split/absorbed and the new segment is merged with equal-owner
   neighbors. *)
let write t ~start ~stop ~owner =
  check_range t ~start ~stop ~what:"write";
  (* Split a segment straddling [at]. *)
  let split at =
    match M.floor t.map at with
    | Some (s, (e, o)) when s < at && at < e ->
      bump t 3;
      M.add t.map s (at, o);
      M.add t.map at (e, o)
    | _ -> bump t 1
  in
  split start;
  split stop;
  (* Remove all segments fully inside [start, stop). *)
  let doomed = ref [] in
  M.iter_from t.map start (fun s (_, _) ->
      bump t 1;
      if s < stop then begin
        doomed := s :: !doomed;
        true
      end
      else false);
  List.iter
    (fun s ->
       bump t 1;
       M.remove t.map s)
    !doomed;
  (* Insert, then merge with equal-owner neighbors. *)
  let seg_start = ref start and seg_stop = ref stop in
  (match M.floor t.map (start - 1) with
   | Some (s, (e, o)) when e = start && o = owner ->
     bump t 1;
     M.remove t.map s;
     seg_start := s
   | _ -> bump t 1);
  (match M.floor t.map stop with
   | Some (s, (e, o)) when s = stop && o = owner ->
     bump t 1;
     M.remove t.map s;
     seg_stop := e
   | _ -> bump t 1);
  bump t 1;
  M.add t.map !seg_start (!seg_stop, owner)

(* The segments a given owner holds, in order — for owner = a device
   id, exactly the ranges whose only fresh copy that device has (one
   owner per segment, so ownership here means exclusive ownership).
   This is the recovery metadata: everything device [d] owns when it
   dies must be re-synced from elsewhere or recomputed. *)
let owned_by t ~owner =
  let out = ref [] in
  M.iter t.map (fun s (e, o) ->
      bump t 1;
      if o = owner then out := { start = s; stop = e; owner = o } :: !out);
  List.rev !out

(* Elements a given owner holds (sum of its segment lengths). *)
let owned_count t ~owner =
  List.fold_left (fun acc s -> acc + (s.stop - s.start)) 0 (owned_by t ~owner)

(* All segments, in order. *)
let segments t =
  let out = ref [] in
  M.iter t.map (fun s (e, o) -> out := { start = s; stop = e; owner = o } :: !out);
  List.rev !out

(* Verify the tracker invariants: full coverage, no overlap, sorted,
   maximal merging.  Raises [Failure] on violation. *)
let check_invariants t =
  ignore (M.validate t.map);
  let segs = segments t in
  let rec go pos = function
    | [] -> if pos <> t.len then failwith "Tracker: space not fully covered"
    | { start; stop; owner = _ } :: rest ->
      if start <> pos then failwith "Tracker: gap or overlap";
      if stop <= start then failwith "Tracker: empty segment";
      go stop rest
  in
  let rec merged = function
    | a :: (b :: _ as rest) ->
      if a.stop = b.start && a.owner = b.owner then
        failwith "Tracker: unmerged neighbors";
      merged rest
    | _ -> ()
  in
  go 0 segs;
  merged segs

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (List.map
          (fun s -> Printf.sprintf "[%d,%d)->%d" s.start s.stop s.owner)
          (segments t)))
