(* A persistent pool of worker domains with chunked self-scheduling.

   Spawning a domain costs far more than a typical kernel launch, so
   the pool is created once and reused: workers block on a condition
   variable between jobs.  A job is a half-open index range [0, n)
   split into chunks that workers (and the submitting domain, which
   participates) claim from a shared atomic counter — cheap dynamic
   load balancing without per-chunk task allocation.

   Jobs are strictly serial: [parallel_for] returns only after every
   participant has retired, and only then can a new job be installed,
   so workers can never observe two jobs racing.  Nested
   [parallel_for] from inside a job callback would deadlock; the
   executor never nests. *)

type job = {
  f : int -> int -> unit;  (* process the half-open range [lo, hi) *)
  n : int;
  chunk : int;
  next : int Atomic.t;  (* next unclaimed index *)
  claims : int Atomic.t;  (* participants that took up the job *)
  max_claims : int;  (* cap on participants (the [domains] knob) *)
  mutable pending : int;  (* participants not yet retired *)
  mutable error : exn option;  (* first exception raised by a chunk *)
}

type t = {
  size : int;  (* worker domains + the submitting domain *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable job : job option;
  mutable epoch : int;  (* bumped once per installed job *)
  mutable stop : bool;
}

let size t = t.size

(* Claim and run chunks until the range is exhausted.  The first
   exception is recorded (and re-raised by the submitter); remaining
   chunks still run so [pending] reliably reaches zero. *)
let drain job =
  if Atomic.fetch_and_add job.claims 1 < job.max_claims then
    try
      let continue_ = ref true in
      while !continue_ do
        let lo = Atomic.fetch_and_add job.next job.chunk in
        if lo >= job.n then continue_ := false
        else job.f lo (min job.n (lo + job.chunk))
      done
    with e -> if job.error = None then job.error <- Some e

let retire t job =
  Mutex.lock t.m;
  job.pending <- job.pending - 1;
  if job.pending = 0 then Condition.broadcast t.done_cv;
  Mutex.unlock t.m

let rec worker_loop t last_epoch =
  Mutex.lock t.m;
  while (not t.stop) && t.epoch = last_epoch do
    Condition.wait t.work_cv t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let job = Option.get t.job in
    Mutex.unlock t.m;
    drain job;
    retire t job;
    worker_loop t epoch
  end

let create ?domains () =
  let n =
    match domains with
    | Some d ->
      if d < 1 then
        invalid_arg
          (Printf.sprintf "Dpool: domains must be a positive integer, got %d" d);
      d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      size = n;
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let parallel_for ?(max_domains = max_int) t ~n f =
  (* The span lives on the submitting domain only; worker-domain code
     must not touch the (domain-unsafe) span stack. *)
  Obs.Span.with_span ~cat:"dpool" "parallel_for" @@ fun () ->
  if n <= 0 then 0
  else begin
    let participants = min (min t.size (max 1 max_domains)) n in
    if participants <= 1 || Array.length t.workers = 0 then begin
      f 0 n;
      1
    end
    else begin
      (* ~4 chunks per participant: coarse enough to amortize the
         atomic claim, fine enough to balance uneven chunk costs. *)
      let chunk = max 1 (n / (participants * 4)) in
      let job =
        {
          f;
          n;
          chunk;
          next = Atomic.make 0;
          claims = Atomic.make 0;
          max_claims = participants;
          (* every pool member retires, even those over the claim cap *)
          pending = t.size;
          error = None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      drain job;
      retire t job;
      Mutex.lock t.m;
      while job.pending > 0 do
        Condition.wait t.done_cv t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      (match job.error with Some e -> raise e | None -> ());
      participants
    end
  end

(* --- The shared global pool ------------------------------------------- *)

let default_override = ref None

let set_default_domains n =
  if n < 1 then
    invalid_arg
      (Printf.sprintf "Dpool: domains must be a positive integer, got %d" n);
  default_override := Some n

let default_domains () =
  match !default_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "MEKONG_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ ->
            invalid_arg
              ("Dpool: MEKONG_DOMAINS must be a positive integer, got " ^ s))
      | None -> Domain.recommended_domain_count ())

let global = ref None

let get () =
  match !global with
  | Some t -> t
  | None ->
    let t = create ~domains:(default_domains ()) () in
    global := Some t;
    (* Leaving worker domains blocked on a condition variable at
       process exit is harmless but noisy under some runtimes; join
       them deterministically. *)
    at_exit (fun () ->
        match !global with
        | Some p ->
          global := None;
          shutdown p
        | None -> ());
    t
