(** A persistent pool of worker domains with chunked self-scheduling.

    Workers are spawned once and block between jobs, so submitting a
    job costs two mutex round-trips rather than a [Domain.spawn].  A
    job splits the index range [0, n) into chunks claimed from a
    shared atomic counter; the submitting domain participates.  Jobs
    are serial — [parallel_for] returns only after every participant
    retired — and must not nest (a job callback calling [parallel_for]
    on the same pool deadlocks). *)

type t

val create : ?domains:int -> unit -> t
(** Pool with [domains] total participants (the submitter plus
    [domains - 1] spawned workers); defaults to
    [Domain.recommended_domain_count ()].  Raises [Invalid_argument]
    with a one-line diagnostic when [domains] is not positive; with
    [domains:1] nothing is spawned and jobs run inline. *)

val size : t -> int
(** Total participants, including the submitting domain. *)

val parallel_for : ?max_domains:int -> t -> n:int -> (int -> int -> unit) -> int
(** [parallel_for t ~n f] covers the half-open range [0, n) exactly
    once by calls [f lo hi] over disjoint chunks, possibly from
    several domains, and returns the number of domains allowed to
    take chunks (1 when the range or pool degenerates and [f] ran
    inline on the submitter).  [max_domains] caps participation
    without resizing the pool.  If a chunk raises, the first
    exception is re-raised in the submitter after all chunks retire. *)

val shutdown : t -> unit
(** Join all workers.  The pool must be idle; using it afterwards
    runs jobs inline on the submitter only. *)

(** {2 The shared global pool}

    Engines use one process-wide pool so repeated runs don't re-spawn
    domains.  Its size is decided at first use: the
    [set_default_domains] override if set, else the [MEKONG_DOMAINS]
    environment variable, else [Domain.recommended_domain_count ()]. *)

val get : unit -> t
(** The global pool, created on first use and joined at process
    exit. *)

val default_domains : unit -> int
(** The size the global pool would be created with.  Raises
    [Invalid_argument] if [MEKONG_DOMAINS] is set but not a positive
    integer. *)

val set_default_domains : int -> unit
(** Override the global pool size (CLI knob).  Takes effect only if
    called before the first [get].  Raises [Invalid_argument] with a
    one-line diagnostic when the value is not positive. *)
