(* A mutable B-tree map (CLRS-style, minimum degree [t]).

   The paper's segment tracker stores its non-overlapping segment list
   in "a B-Tree map using the start of each segment as the key"
   (§8.1); this module is that map.  It is a functor over the key
   order, with the operations the tracker needs: point lookup,
   predecessor ([floor]) lookup, in-order iteration from a key, insert
   and delete. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type key = Ord.t

  (* Minimum degree: nodes hold between t-1 and 2t-1 keys (root
     excepted) and internal nodes between t and 2t children. *)
  let t = 8

  let max_keys = (2 * t) - 1

  type 'v node = {
    mutable n : int; (* number of live keys *)
    keys : key array; (* length max_keys; slots >= n are stale *)
    vals : 'v array;
    children : 'v node option array; (* length max_keys + 1 *)
    mutable leaf : bool;
  }

  type 'v tree = { mutable root : 'v node option; mutable size : int }


  let create () = { root = None; size = 0 }

  let size tr = tr.size
  let is_empty tr = tr.size = 0

  let make_node ~leaf ~fill_key ~fill_val =
    {
      n = 0;
      keys = Array.make max_keys fill_key;
      vals = Array.make max_keys fill_val;
      children = Array.make (max_keys + 1) None;
      leaf;
    }

  let child x i =
    match x.children.(i) with
    | Some c -> c
    | None -> invalid_arg "Btree: missing child"

  (* Index of the first key in [x] that is >= k, in [0, x.n]. *)
  let lower_bound x k =
    let lo = ref 0 and hi = ref x.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Ord.compare x.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* --- Search ---------------------------------------------------------- *)

  let rec find_node x k =
    let i = lower_bound x k in
    if i < x.n && Ord.compare x.keys.(i) k = 0 then Some (x.vals.(i))
    else if x.leaf then None
    else find_node (child x i) k

  let find_opt tr k =
    match tr.root with None -> None | Some r -> find_node r k

  let mem tr k = find_opt tr k <> None

  (* Largest entry with key <= k. *)
  let rec floor_node x k best =
    let i = lower_bound x k in
    if i < x.n && Ord.compare x.keys.(i) k = 0 then Some (x.keys.(i), x.vals.(i))
    else
      (* keys.(i-1) < k < keys.(i); the best candidate in this node is
         keys.(i-1), but a larger one may hide in children.(i). *)
      let best =
        if i > 0 then Some (x.keys.(i - 1), x.vals.(i - 1)) else best
      in
      if x.leaf then best else floor_node (child x i) k best

  let floor tr k =
    match tr.root with None -> None | Some r -> floor_node r k None

  let rec min_node x =
    if x.leaf then
      if x.n = 0 then None else Some (x.keys.(0), x.vals.(0))
    else min_node (child x 0)

  let min_binding tr =
    match tr.root with None -> None | Some r -> min_node r

  let rec max_node x =
    if x.leaf then
      if x.n = 0 then None else Some (x.keys.(x.n - 1), x.vals.(x.n - 1))
    else max_node (child x x.n)

  let max_binding tr =
    match tr.root with None -> None | Some r -> max_node r

  (* --- Iteration --------------------------------------------------------- *)

  exception Stop

  let rec iter_node x f =
    for i = 0 to x.n - 1 do
      if not x.leaf then iter_node (child x i) f;
      f x.keys.(i) x.vals.(i)
    done;
    if not x.leaf then iter_node (child x x.n) f

  let iter tr f = match tr.root with None -> () | Some r -> iter_node r f

  (* In-order visit of entries with key >= k; [f] returns false to
     stop. *)
  let iter_from tr k f =
    let rec go x =
      let i = lower_bound x k in
      (* Entries before index i are < k; skip them and their left
         subtrees entirely, but the subtree at index i may straddle. *)
      if not x.leaf then go (child x i);
      for j = i to x.n - 1 do
        if not (f x.keys.(j) x.vals.(j)) then raise Stop;
        if not x.leaf then
          iter_node_stop (child x (j + 1)) f
      done
    and iter_node_stop x f =
      for i = 0 to x.n - 1 do
        if not x.leaf then iter_node_stop (child x i) f;
        if not (f x.keys.(i) x.vals.(i)) then raise Stop
      done;
      if not x.leaf then iter_node_stop (child x x.n) f
    in
    match tr.root with
    | None -> ()
    | Some r -> ( try go r with Stop -> ())

  let to_list tr =
    let acc = ref [] in
    iter tr (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc

  (* --- Insertion ----------------------------------------------------------- *)

  (* Split the full child [i] of non-full node [x]. *)
  let split_child x i =
    let y = child x i in
    assert (y.n = max_keys);
    let z = make_node ~leaf:y.leaf ~fill_key:y.keys.(0) ~fill_val:y.vals.(0) in
    z.n <- t - 1;
    for j = 0 to t - 2 do
      z.keys.(j) <- y.keys.(j + t);
      z.vals.(j) <- y.vals.(j + t)
    done;
    if not y.leaf then
      for j = 0 to t - 1 do
        z.children.(j) <- y.children.(j + t);
        y.children.(j + t) <- None
      done;
    y.n <- t - 1;
    (* shift x's children and keys right to make room *)
    for j = x.n downto i + 1 do
      x.children.(j + 1) <- x.children.(j)
    done;
    x.children.(i + 1) <- Some z;
    for j = x.n - 1 downto i do
      x.keys.(j + 1) <- x.keys.(j);
      x.vals.(j + 1) <- x.vals.(j)
    done;
    x.keys.(i) <- y.keys.(t - 1);
    x.vals.(i) <- y.vals.(t - 1);
    x.n <- x.n + 1

  (* Insert into a non-full subtree; returns true if a new key was
     added (false if an existing key was replaced). *)
  let rec insert_nonfull x k v =
    let i = lower_bound x k in
    if i < x.n && Ord.compare x.keys.(i) k = 0 then begin
      x.vals.(i) <- v;
      false
    end
    else if x.leaf then begin
      for j = x.n - 1 downto i do
        x.keys.(j + 1) <- x.keys.(j);
        x.vals.(j + 1) <- x.vals.(j)
      done;
      x.keys.(i) <- k;
      x.vals.(i) <- v;
      x.n <- x.n + 1;
      true
    end
    else begin
      let i =
        if (child x i).n = max_keys then begin
          split_child x i;
          (* the median moved up to x.keys.(i) *)
          let c = Ord.compare x.keys.(i) k in
          if c = 0 then -1 (* replace below *)
          else if c < 0 then i + 1
          else i
        end
        else i
      in
      if i = -1 then begin
        (* key equals the promoted median *)
        let j = lower_bound x k in
        x.vals.(j) <- v;
        false
      end
      else insert_nonfull (child x i) k v
    end

  let add tr k v =
    match tr.root with
    | None ->
      let r = make_node ~leaf:true ~fill_key:k ~fill_val:v in
      r.keys.(0) <- k;
      r.vals.(0) <- v;
      r.n <- 1;
      tr.root <- Some r;
      tr.size <- 1
    | Some r ->
      let r =
        if r.n = max_keys then begin
          let s = make_node ~leaf:false ~fill_key:r.keys.(0) ~fill_val:r.vals.(0) in
          s.children.(0) <- Some r;
          split_child s 0;
          tr.root <- Some s;
          s
        end
        else r
      in
      if insert_nonfull r k v then tr.size <- tr.size + 1

  (* --- Deletion ---------------------------------------------------------- *)

  (* All helpers assume the CLRS invariant: when descending into a
     child, that child has at least [t] keys (fixed up on the way
     down). *)

  let remove_from_leaf x i =
    for j = i to x.n - 2 do
      x.keys.(j) <- x.keys.(j + 1);
      x.vals.(j) <- x.vals.(j + 1)
    done;
    x.n <- x.n - 1

  (* Merge child i+1 and the separator key i into child i. *)
  let merge_children x i =
    let y = child x i and z = child x (i + 1) in
    y.keys.(y.n) <- x.keys.(i);
    y.vals.(y.n) <- x.vals.(i);
    for j = 0 to z.n - 1 do
      y.keys.(y.n + 1 + j) <- z.keys.(j);
      y.vals.(y.n + 1 + j) <- z.vals.(j)
    done;
    if not y.leaf then
      for j = 0 to z.n do
        y.children.(y.n + 1 + j) <- z.children.(j)
      done;
    y.n <- y.n + 1 + z.n;
    for j = i to x.n - 2 do
      x.keys.(j) <- x.keys.(j + 1);
      x.vals.(j) <- x.vals.(j + 1)
    done;
    for j = i + 1 to x.n - 1 do
      x.children.(j) <- x.children.(j + 1)
    done;
    x.children.(x.n) <- None;
    x.n <- x.n - 1

  (* Ensure child [i] of [x] has at least t keys, borrowing from a
     sibling or merging.  Returns the (possibly changed) index of the
     child to descend into. *)
  let fixup_child x i =
    let c = child x i in
    if c.n >= t then i
    else if i > 0 && (child x (i - 1)).n >= t then begin
      (* borrow from the left sibling through the separator *)
      let left = child x (i - 1) in
      for j = c.n - 1 downto 0 do
        c.keys.(j + 1) <- c.keys.(j);
        c.vals.(j + 1) <- c.vals.(j)
      done;
      if not c.leaf then
        for j = c.n downto 0 do
          c.children.(j + 1) <- c.children.(j)
        done;
      c.keys.(0) <- x.keys.(i - 1);
      c.vals.(0) <- x.vals.(i - 1);
      if not c.leaf then c.children.(0) <- left.children.(left.n);
      if not left.leaf then left.children.(left.n) <- None;
      x.keys.(i - 1) <- left.keys.(left.n - 1);
      x.vals.(i - 1) <- left.vals.(left.n - 1);
      left.n <- left.n - 1;
      c.n <- c.n + 1;
      i
    end
    else if i < x.n && (child x (i + 1)).n >= t then begin
      (* borrow from the right sibling *)
      let right = child x (i + 1) in
      c.keys.(c.n) <- x.keys.(i);
      c.vals.(c.n) <- x.vals.(i);
      if not c.leaf then c.children.(c.n + 1) <- right.children.(0);
      x.keys.(i) <- right.keys.(0);
      x.vals.(i) <- right.vals.(0);
      for j = 0 to right.n - 2 do
        right.keys.(j) <- right.keys.(j + 1);
        right.vals.(j) <- right.vals.(j + 1)
      done;
      if not right.leaf then begin
        for j = 0 to right.n - 1 do
          right.children.(j) <- right.children.(j + 1)
        done;
        right.children.(right.n) <- None
      end;
      right.n <- right.n - 1;
      c.n <- c.n + 1;
      i
    end
    else if i > 0 then begin
      merge_children x (i - 1);
      i - 1
    end
    else begin
      merge_children x i;
      i
    end

  let rec remove_node x k =
    let i = lower_bound x k in
    if i < x.n && Ord.compare x.keys.(i) k = 0 then
      if x.leaf then begin
        remove_from_leaf x i;
        true
      end
      else begin
        let left = child x i and right = child x (i + 1) in
        if left.n >= t then begin
          (* replace by predecessor, then delete it below *)
          match max_node left with
          | Some (pk, pv) ->
            x.keys.(i) <- pk;
            x.vals.(i) <- pv;
            let j = fixup_child x i in
            ignore (remove_node (child x j) pk);
            true
          | None -> assert false
        end
        else if right.n >= t then begin
          match min_node right with
          | Some (sk, sv) ->
            x.keys.(i) <- sk;
            x.vals.(i) <- sv;
            let j = fixup_child x (i + 1) in
            ignore (remove_node (child x j) sk);
            true
          | None -> assert false
        end
        else begin
          merge_children x i;
          remove_node (child x i) k
        end
      end
    else if x.leaf then false
    else begin
      let j = fixup_child x i in
      (* after fixup the key may have moved into x itself *)
      let i2 = lower_bound x k in
      if i2 < x.n && Ord.compare x.keys.(i2) k = 0 then remove_node x k
      else remove_node (child x (min j (x.n))) k
    end

  let remove tr k =
    match tr.root with
    | None -> ()
    | Some r ->
      if remove_node r k then begin
        tr.size <- tr.size - 1;
        if r.n = 0 then tr.root <- (if r.leaf then None else r.children.(0))
      end
      else if r.n = 0 && not r.leaf then tr.root <- r.children.(0)

  (* --- Validation (test support) ------------------------------------------- *)

  (* Check the B-tree invariants; returns the depth. *)
  let validate tr =
    let rec go x ~is_root ~lo ~hi =
      if not is_root && x.n < t - 1 then failwith "Btree: underfull node";
      if x.n > max_keys then failwith "Btree: overfull node";
      for i = 0 to x.n - 2 do
        if Ord.compare x.keys.(i) x.keys.(i + 1) >= 0 then
          failwith "Btree: keys out of order"
      done;
      (match lo with
       | Some l ->
         if x.n > 0 && Ord.compare x.keys.(0) l <= 0 then
           failwith "Btree: key below lower bound"
       | None -> ());
      (match hi with
       | Some h ->
         if x.n > 0 && Ord.compare x.keys.(x.n - 1) h >= 0 then
           failwith "Btree: key above upper bound"
       | None -> ());
      if x.leaf then 1
      else begin
        let depths =
          List.init (x.n + 1) (fun i ->
              let lo = if i = 0 then lo else Some x.keys.(i - 1) in
              let hi = if i = x.n then hi else Some x.keys.(i) in
              go (child x i) ~is_root:false ~lo ~hi)
        in
        match depths with
        | d :: rest ->
          if List.exists (fun d' -> d' <> d) rest then
            failwith "Btree: unbalanced";
          d + 1
        | [] -> 1
      end
    in
    match tr.root with
    | None -> 0
    | Some r -> go r ~is_root:true ~lo:None ~hi:None
end

(* The instantiation used by the segment tracker. *)
module Int_ord = struct
  type t = int

  let compare = Int.compare
end

module Int_map = Make (Int_ord)
