(** Runtime configuration switches for the overhead methodology of
    paper §9.2 (the alpha / beta / gamma measurement configurations). *)

type t = {
  transfers : bool;  (** issue inter-device transfers *)
  patterns : bool;  (** run enumerators, tracker queries and updates *)
}

val alpha : t
(** Regular execution. *)

val beta : t
(** Transfers disabled; dependency resolution and tracker updates still
    performed.  Performance-mode only. *)

val gamma : t
(** Dependency resolution and tracker updates disabled (which also
    disables the transfers they would generate).  Performance-mode
    only. *)

val name : t -> string

val is_valid : t -> bool
(** Transfers without patterns is not a meaningful configuration. *)
