(* Virtual buffers (paper §8.1-8.3).

   A cudaMalloc in the original program becomes, in the partitioned
   program, one device-local instance per device plus a segment
   tracker.  Memcopies and kernel launches keep the instances coherent:

   - host-to-device becomes a 1:n scatter in a fixed linear
     distribution (the "predefined pattern" of §8.2);
   - device-to-host becomes an n:1 gather directed by the tracker;
   - before a kernel partition runs, its read set is walked and stale
     ranges are fetched from their owners (§8.3);
   - after it is launched, its write set is recorded in the tracker.

   The tracker does not represent shared copies, so repeatedly read
   shared data is re-transferred — the redundancy the paper calls out. *)

type t = {
  name : string;
  len : int; (* elements *)
  machine : Gpusim.Machine.t;
  instances : Gpusim.Buffer.t array; (* one full-size instance per device *)
  tracker : Tracker.t;
  residency : Tracker.t array;
      (* per-device segment residency under the machine's memory
         capacity.  The instances above are *virtual* (they charge no
         capacity); only resident segments are charged, and the owner
         field here is an LRU stamp: 0 = not resident, >0 = resident,
         higher = touched more recently. *)
  charged : int array;
      (* bytes this vbuf currently holds reserved per device; mirrors
         the residency trackers exactly (checked by
         [check_residency]) *)
  mutable distributed : bool;
      (* an h2d has assigned real owners; before that the tracker's
         initial owner (device 0) is a placeholder that no residency
         invariant should be read into *)
  mutable host_copy : float array option;
      (* functional mirror of the last h2d source: segments owned by
         [Tracker.host] are served from here, never from a device
         instance (whose copy may be stale) *)
  mutable validity : Tracker.t array option;
      (* replica-freshness metadata, allocated only under fault
         injection: one tracker per device plus one for the host (last
         slot), owner 1 = that replica matches the buffer's current
         logical content over the segment, 0 = stale.  The ownership
         tracker has one owner per segment; this is what lets recovery
         find *other* fresh copies of what a lost device owned. *)
}

let create machine ~name ~len =
  let n = Gpusim.Machine.n_devices machine in
  {
    name;
    len;
    machine;
    instances =
      Array.init n (fun d ->
          Gpusim.Machine.alloc ~charge:false machine ~device:d ~len);
    tracker = Tracker.create ~len ~initial_owner:0;
    residency = Array.init n (fun _ -> Tracker.create ~len ~initial_owner:0);
    charged = Array.make n 0;
    distributed = false;
    host_copy = None;
    validity = None;
  }

let name t = t.name
let len t = t.len
let tracker t = t.tracker
let instance t d = t.instances.(d)
let n_devices t = Array.length t.instances

let elem_bytes t =
  (Gpusim.Machine.config t.machine).Gpusim.Config.elem_bytes

(* Forget every resident segment of device [dev] without any writeback
   (used when a device dies, on restore, and on free). *)
let drop_residency t ~dev =
  if t.charged.(dev) > 0 then
    Gpusim.Machine.mem_release t.machine ~device:dev ~bytes:t.charged.(dev);
  t.charged.(dev) <- 0;
  Tracker.write t.residency.(dev) ~start:0 ~stop:t.len ~owner:0

let free t =
  for d = 0 to Array.length t.instances - 1 do
    drop_residency t ~dev:d
  done;
  Array.iter (fun b -> Gpusim.Machine.free t.machine b) t.instances

(* --- Replica-freshness tracking (fault tolerance only) ----------------- *)

(* Lazily allocated so fault-free runs pay nothing: the trackers exist
   only when the machine has fault injection attached.  Device
   instances start zero-filled and identical, so every device replica
   is born fresh; the host has no copy yet. *)
let validity t =
  match t.validity with
  | Some v -> Some v
  | None ->
    if Gpusim.Machine.fault_state t.machine = None then None
    else begin
      let n = n_devices t in
      let v =
        Array.init (n + 1) (fun i ->
            Tracker.create ~len:t.len ~initial_owner:(if i < n then 1 else 0))
      in
      t.validity <- Some v;
      Some v
    end

let host_slot t = n_devices t

(* [who] is a device id or [host_slot]: its replica of [start, stop) now
   matches the buffer's logical content. *)
let mark_fresh t ~who ~start ~stop =
  match validity t with
  | None -> ()
  | Some v -> Tracker.write v.(who) ~start ~stop ~owner:1

(* Every replica except [who]'s (a device id or [host_slot]) goes stale
   over [start, stop). *)
let mark_stale_others t ~who ~start ~stop =
  match validity t with
  | None -> ()
  | Some v ->
    Array.iteri
      (fun i tr -> if i <> who then Tracker.write tr ~start ~stop ~owner:0)
      v

(* The linear distribution: device d owns the d-th of n equal chunks
   (the last chunk absorbs the remainder). *)
let linear_chunk ~len ~n_devices d =
  let chunk = (len + n_devices - 1) / n_devices in
  let start = min len (d * chunk) in
  let stop = min len ((d + 1) * chunk) in
  (start, stop)

(* Host-array length check: a mismatch would otherwise surface as an
   off-by-some blit failure deep inside the scatter/gather loop; fail
   up front, naming the buffer. *)
let check_host_array t ~what a =
  if Array.length a <> t.len then
    invalid_arg
      (Printf.sprintf
         "Vbuf.%s(%s): host array has %d elements, buffer has %d across %d \
          devices"
         what t.name (Array.length a) t.len (n_devices t))

(* Clamp a range list to the buffer: enumerators over-approximate, so a
   range may start below 0 or reach past [len]; empty and fully
   out-of-bounds ranges are dropped (the tracker rejects them). *)
let clamp_ranges t ranges =
  List.filter_map
    (fun (start, stop) ->
       let start = max 0 start and stop = min stop t.len in
       if stop > start then Some (start, stop) else None)
    ranges

(* --- Segment residency and spill-to-host ------------------------------- *)

(* Because the per-device instances are virtual, device memory is
   accounted segment-wise: [ensure_resident] charges the missing parts
   of a range (evicting the globally coldest resident segments of a
   caller-supplied pool of vbufs when the device is full) and [spill]
   evicts explicitly.  Evicting a segment the coherence tracker says
   this device *owns* must not lose the buffer's only fresh copy, so
   it is written back to the host copy first — a simulated d2h, which
   is exactly the traffic a real spill pays — and its ownership moves
   to [Tracker.host]; resident segments owned elsewhere are dropped
   free, since the protocol re-fetches them on the next read anyway.
   On an unlimited machine nothing ever triggers eviction and the only
   cost is the stamp bookkeeping, which never touches the simulated
   clock. *)

let resident_bytes t ~dev =
  if dev < 0 || dev >= Array.length t.charged then 0 else t.charged.(dev)

(* Lazily materialize the host copy as a spill target.  Fresh zeroes
   are correct for any segment never written: instances are born
   zero-filled. *)
let spill_target t =
  match t.host_copy with
  | Some h -> h
  | None ->
    if Gpusim.Machine.is_functional t.machine then begin
      let h = Array.make t.len 0.0 in
      t.host_copy <- Some h;
      h
    end
    else [||]

(* Evict the resident parts of [start, stop) on [dev]; returns the
   bytes released.  Device-owned parts are written back to the host
   copy (simulated d2h + ownership handover) and counted as spill
   traffic; the rest is dropped free. *)
let spill_range ?(cfg = Rconfig.alpha) t ~dev ~start ~stop =
  let eb = elem_bytes t in
  let do_data =
    cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
  in
  let released = ref 0 in
  let resident =
    List.filter
      (fun (seg : Tracker.segment) -> seg.owner > 0)
      (Tracker.query t.residency.(dev) ~start ~stop)
  in
  if resident <> [] then
    Obs.Span.with_span ~cat:"engine"
      ~sim:(fun () -> Gpusim.Machine.host_time t.machine)
      "spill"
      (fun () ->
         Gpusim.Machine.with_phase t.machine "spill" @@ fun () ->
         List.iter
           (fun (seg : Tracker.segment) ->
              let s = seg.Tracker.start and e = seg.Tracker.stop in
              List.iter
                (fun (o : Tracker.segment) ->
                   if o.owner = dev then begin
                     let os = o.Tracker.start and oe = o.Tracker.stop in
                     let bytes = (oe - os) * eb in
                     (* d2h first: a transient fault aborts the spill
                        before any tracker state changes, so a retry
                        redoes it. *)
                     if do_data then
                       Gpusim.Machine.d2h t.machine ~src:t.instances.(dev)
                         ~src_off:os ~dst:(spill_target t) ~dst_off:os
                         ~len:(oe - os);
                     Tracker.write t.tracker ~start:os ~stop:oe
                       ~owner:Tracker.host;
                     mark_fresh t ~who:(host_slot t) ~start:os ~stop:oe;
                     Gpusim.Machine.note_spill t.machine ~bytes
                   end)
                (Tracker.query t.tracker ~start:s ~stop:e);
              (* The device's bytes are gone either way: its replica of
                 the whole evicted range is stale from here on. *)
              (match validity t with
               | Some v -> Tracker.write v.(dev) ~start:s ~stop:e ~owner:0
               | None -> ());
              let bytes = (e - s) * eb in
              Gpusim.Machine.mem_release t.machine ~device:dev ~bytes;
              t.charged.(dev) <- t.charged.(dev) - bytes;
              released := !released + bytes;
              Tracker.write t.residency.(dev) ~start:s ~stop:e ~owner:0)
           resident);
  !released

let spill ?cfg t ~dev ~ranges =
  List.fold_left
    (fun acc (start, stop) -> acc + spill_range ?cfg t ~dev ~start ~stop)
    0 (clamp_ranges t ranges)

(* The globally coldest resident segment on [dev] across [pool] that
   is older than [stamp] (segments stamped by the in-progress ensure
   are never eviction candidates). *)
let coldest pool ~dev ~stamp =
  List.fold_left
    (fun acc v ->
       if dev >= Array.length v.instances then acc
       else
         List.fold_left
           (fun acc (seg : Tracker.segment) ->
              if seg.owner > 0 && seg.owner < stamp then
                match acc with
                | Some (_, best) when best.Tracker.owner <= seg.owner -> acc
                | _ -> Some (v, seg)
              else acc)
           acc
           (Tracker.query v.residency.(dev) ~start:0 ~stop:v.len))
    None pool

let non_resident_len t ~dev ~start ~stop =
  List.fold_left
    (fun acc (seg : Tracker.segment) ->
       if seg.owner = 0 then acc + (seg.Tracker.stop - seg.Tracker.start)
       else acc)
    0
    (Tracker.query t.residency.(dev) ~start ~stop)

(* Make the ranges resident on [dev], evicting coldest-first from
   [pool] (plus this vbuf) when the device is full.  All ranges of one
   launch should share a [stamp] (one [Machine.lru_tick]) so none of
   them can evict another; raises [Machine.Out_of_memory] when even a
   full eviction of everything older cannot make room. *)
let ensure_resident ?(cfg = Rconfig.alpha) ?(pool = []) ?stamp t ~dev ~ranges =
  let stamp =
    match stamp with Some s -> s | None -> Gpusim.Machine.lru_tick t.machine
  in
  let pool = if List.memq t pool then pool else t :: pool in
  let eb = elem_bytes t in
  List.iter
    (fun (start, stop) ->
       (* Re-stamp the already-resident parts first: from now on the
          eviction loop below cannot pick them. *)
       List.iter
         (fun (seg : Tracker.segment) ->
            if seg.owner > 0 then
              Tracker.write t.residency.(dev) ~start:seg.Tracker.start
                ~stop:seg.Tracker.stop ~owner:stamp)
         (Tracker.query t.residency.(dev) ~start ~stop);
       let needed = non_resident_len t ~dev ~start ~stop * eb in
       if needed > 0 then begin
         while Gpusim.Machine.mem_free t.machine dev < needed do
           match coldest pool ~dev ~stamp with
           | Some (v, seg) ->
             ignore
               (spill_range ~cfg v ~dev ~start:seg.Tracker.start
                  ~stop:seg.Tracker.stop)
           | None ->
             raise
               (Gpusim.Machine.Out_of_memory
                  {
                    device = dev;
                    requested = needed;
                    free = Gpusim.Machine.mem_free t.machine dev;
                  })
         done;
         Gpusim.Machine.mem_reserve t.machine ~device:dev ~bytes:needed;
         t.charged.(dev) <- t.charged.(dev) + needed;
         Tracker.write t.residency.(dev) ~start ~stop ~owner:stamp
       end
       else Tracker.write t.residency.(dev) ~start ~stop ~owner:stamp)
    (clamp_ranges t ranges)

(* How many elements of [start, stop) could be made resident on [dev]
   if everything evictable were evicted: the h2d scatter uses this to
   upload only the prefix that can exist on the device at all, leaving
   the remainder host-owned. *)
let resident_budget t ~pool ~dev ~start ~stop =
  let pool = if List.memq t pool then pool else t :: pool in
  let eb = elem_bytes t in
  let stamp = Gpusim.Machine.lru_tick t.machine in
  let evictable =
    List.fold_left
      (fun acc v ->
         if dev >= Array.length v.instances then acc
         else
           List.fold_left
             (fun acc (seg : Tracker.segment) ->
                if seg.owner > 0 && seg.owner < stamp then begin
                  let len = seg.Tracker.stop - seg.Tracker.start in
                  (* Resident parts of the target range itself cost
                     nothing to keep, so they are not budget. *)
                  let overlap =
                    if v == t then
                      max 0
                        (min seg.Tracker.stop stop - max seg.Tracker.start start)
                    else 0
                  in
                  acc + ((len - overlap) * eb)
                end
                else acc)
             acc
             (Tracker.query v.residency.(dev) ~start:0 ~stop:v.len))
      0 pool
  in
  let budget = ref (Gpusim.Machine.mem_free t.machine dev + evictable) in
  let fit = ref start in
  (try
     List.iter
       (fun (seg : Tracker.segment) ->
          let len = seg.Tracker.stop - seg.Tracker.start in
          if seg.owner > 0 then fit := seg.Tracker.stop
          else begin
            let affordable = !budget / eb in
            if affordable >= len then begin
              budget := !budget - (len * eb);
              fit := seg.Tracker.stop
            end
            else begin
              fit := seg.Tracker.start + affordable;
              raise Exit
            end
          end)
       (Tracker.query t.residency.(dev) ~start ~stop)
   with Exit -> ());
  max start (min stop !fit)

(* Residency invariants, checked by tests after every step of a random
   schedule:
   - the residency trackers are structurally sound;
   - the charged bytes mirror the resident element counts exactly;
   - once distributed, every segment the coherence tracker assigns to a
     device is resident there (we never account away the only copy). *)
let check_residency t =
  Array.iteri
    (fun d res ->
       Tracker.check_invariants res;
       let resident =
         List.fold_left
           (fun acc (s : Tracker.segment) ->
              if s.owner > 0 then acc + (s.Tracker.stop - s.Tracker.start)
              else acc)
           0
           (Tracker.query res ~start:0 ~stop:t.len)
       in
       if resident * elem_bytes t <> t.charged.(d) then
         failwith
           (Printf.sprintf
              "Vbuf.check_residency(%s): device %d charges %d bytes for %d \
               resident elements"
              t.name d t.charged.(d) resident))
    t.residency;
  if t.distributed then
    List.iter
      (fun (s : Tracker.segment) ->
         if s.owner >= 0 then
           List.iter
             (fun (r : Tracker.segment) ->
                if r.owner = 0 then
                  failwith
                    (Printf.sprintf
                       "Vbuf.check_residency(%s): [%d,%d) owned by device %d \
                        but not resident there"
                       t.name r.Tracker.start r.Tracker.stop s.owner))
             (Tracker.query t.residency.(s.owner) ~start:s.Tracker.start
                ~stop:s.Tracker.stop))
      (Tracker.segments t.tracker)

(* The devices a scatter targets: all of them on ideal hardware, the
   survivors under fault injection (a lost device can accept no data). *)
let scatter_targets t =
  match Gpusim.Machine.fault_state t.machine with
  | None -> List.init (n_devices t) Fun.id
  | Some _ -> (
      match Gpusim.Machine.live_devices t.machine with
      | [] -> invalid_arg ("Vbuf.h2d(" ^ t.name ^ "): all devices lost")
      | live -> live)

(* Host-to-device memcpy: scatter [src] linearly over the (live)
   devices and record ownership.  [src = None] is a phantom host array
   (performance runs at paper scale never materialize host data). *)
let h2d ?(cfg = Rconfig.alpha) ?(pool = []) t ~src =
  (match src with
   | Some a -> check_host_array t ~what:"h2d" a
   | None ->
     if Gpusim.Machine.is_functional t.machine then
       invalid_arg ("Vbuf.h2d(" ^ t.name ^ "): phantom host array in a functional run"));
  (match src with
   | Some a -> t.host_copy <- Some (Array.copy a)
   | None -> ());
  let src = Option.value src ~default:[||] in
  let do_data =
    cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
  in
  let live = scatter_targets t in
  let n = List.length live in
  List.iteri
    (fun i d ->
       let start, stop = linear_chunk ~len:t.len ~n_devices:n i in
       if stop > start then begin
         (* Under a finite capacity only the prefix of the chunk that
            can exist on the device at all is uploaded; the remainder
            stays host-owned (the source array *is* the fresh copy), so
            a scatter chunk larger than the device is never fatal. *)
         let fit =
           if cfg.Rconfig.patterns then begin
             let fit = resident_budget t ~pool ~dev:d ~start ~stop in
             if fit > start then
               ensure_resident ~cfg ~pool t ~dev:d ~ranges:[ (start, fit) ];
             fit
           end
           else stop
         in
         if do_data && fit > start then
           Gpusim.Machine.h2d t.machine ~src ~src_off:start ~dst:t.instances.(d)
             ~dst_off:start ~len:(fit - start);
         if cfg.Rconfig.patterns then begin
           t.distributed <- true;
           Tracker.write t.tracker ~start ~stop:fit ~owner:d;
           if stop > fit then
             Tracker.write t.tracker ~start:fit ~stop ~owner:Tracker.host
         end;
         (* The chunk's new logical content lives on its target device
            (up to [fit]) and in host memory; every other replica is
            now stale. *)
         mark_stale_others t ~who:d ~start ~stop;
         (if fit > start then mark_fresh t ~who:d ~start ~stop:fit);
         mark_fresh t ~who:(host_slot t) ~start ~stop
       end)
    live

(* Device-to-host memcpy: gather every segment from its owner. *)
let d2h ?(cfg = Rconfig.alpha) t ~dst =
  (match dst with
   | Some a -> check_host_array t ~what:"d2h" a
   | None ->
     if Gpusim.Machine.is_functional t.machine then
       invalid_arg ("Vbuf.d2h(" ^ t.name ^ "): phantom host array in a functional run"));
  let dst = Option.value dst ~default:[||] in
  let segs =
    if cfg.Rconfig.patterns then Tracker.query t.tracker ~start:0 ~stop:t.len
    else [ { Tracker.start = 0; stop = t.len; owner = 0 } ]
  in
  List.iter
    (fun { Tracker.start; stop; owner } ->
       if owner = Tracker.host then begin
         (* The host copy is already fresh: no device gather, no
            simulated transfer.  Functional runs still materialize the
            segment in [dst]. *)
         if Gpusim.Machine.is_functional t.machine then
           match t.host_copy with
           | Some h -> Array.blit h start dst start (stop - start)
           | None ->
             invalid_arg
               ("Vbuf.d2h: host-owned segment of " ^ t.name
                ^ " has no host data")
       end
       else if cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
       then
         Gpusim.Machine.d2h t.machine ~src:t.instances.(owner) ~src_off:start
           ~dst ~dst_off:start ~len:(stop - start))
    segs

(* Bring the given element ranges up to date on device [dev] by copying
   stale segments from their owners (paper §8.3).  Returns the number
   of transfers issued.

   With [batch] the stale segments are grouped per owner and moved as
   one packed transfer each (a pitched cudaMemcpy2D) — used by the 2-D
   tiling extension, whose column halos fragment into thousands of
   tiny row segments that would otherwise pay a latency each. *)
(* Upload one host-owned segment onto device [dev]: host data never
   lives in a device instance, so it moves over PCIe, not peer-to-peer. *)
let fetch_from_host t ~dev ~start ~len ~do_data =
  if do_data then begin
    let src =
      match t.host_copy with
      | Some h -> h
      | None ->
        if Gpusim.Machine.is_functional t.machine then
          invalid_arg
            ("Vbuf.sync_for_read: host-owned segment of " ^ t.name
             ^ " has no host data")
        else [||]
    in
    Gpusim.Machine.h2d t.machine ~src ~src_off:start ~dst:t.instances.(dev)
      ~dst_off:start ~len
  end

let sync_for_read ?(cfg = Rconfig.alpha) ?(batch = false) ?(pool = []) ?stamp
    t ~dev ~ranges =
  if not cfg.Rconfig.patterns then 0
  else begin
    let transfers = ref 0 in
    let do_data =
      cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
    in
    let ranges = clamp_ranges t ranges in
    (* Fetched segments will land in this device's instance: charge the
       whole read set as resident before any data moves. *)
    ensure_resident ~cfg ~pool ?stamp t ~dev ~ranges;
    if batch then begin
      let per_owner : (int, (int * int * int) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (start, stop) ->
           List.iter
             (fun { Tracker.start = s; stop = e; owner } ->
                if owner = Tracker.host then begin
                  (* Host-owned segments cannot join a packed
                     device-to-device transfer; upload each directly. *)
                  incr transfers;
                  fetch_from_host t ~dev ~start:s ~len:(e - s) ~do_data;
                  mark_fresh t ~who:dev ~start:s ~stop:e
                end
                else if owner <> dev then begin
                  let slot =
                    match Hashtbl.find_opt per_owner owner with
                    | Some l -> l
                    | None ->
                      let l = ref [] in
                      Hashtbl.replace per_owner owner l;
                      l
                  in
                  slot := (s, s, e - s) :: !slot
                end)
             (Tracker.query t.tracker ~start ~stop))
        ranges;
      Hashtbl.iter
        (fun owner segs ->
           incr transfers;
           if do_data then
             Gpusim.Machine.p2p_multi t.machine ~src:t.instances.(owner)
               ~dst:t.instances.(dev) ~segments:!segs;
           List.iter
             (fun (s, _, l) -> mark_fresh t ~who:dev ~start:s ~stop:(s + l))
             !segs)
        per_owner
    end
    else
      List.iter
        (fun (start, stop) ->
           List.iter
             (fun { Tracker.start = s; stop = e; owner } ->
                if owner = Tracker.host then begin
                  incr transfers;
                  fetch_from_host t ~dev ~start:s ~len:(e - s) ~do_data;
                  mark_fresh t ~who:dev ~start:s ~stop:e
                end
                else if owner <> dev then begin
                  incr transfers;
                  if do_data then
                    Gpusim.Machine.p2p t.machine ~src:t.instances.(owner)
                      ~src_off:s ~dst:t.instances.(dev) ~dst_off:s
                      ~len:(e - s);
                  mark_fresh t ~who:dev ~start:s ~stop:e
                end)
             (Tracker.query t.tracker ~start ~stop))
        ranges;
    !transfers
  end

(* Record that device [dev] wrote the given element ranges.  The
   written bytes necessarily exist on the device, so the ranges are
   made resident first — a backstop that raises [Out_of_memory] if the
   engine's footprint planning under-estimated, rather than letting
   the accounting drift from reality. *)
let update_for_write ?(cfg = Rconfig.alpha) ?(pool = []) ?stamp t ~dev ~ranges
  =
  if cfg.Rconfig.patterns then begin
    let ranges = clamp_ranges t ranges in
    ensure_resident ~cfg ~pool ?stamp t ~dev ~ranges;
    List.iter
      (fun (start, stop) ->
         Tracker.write t.tracker ~start ~stop ~owner:dev;
         (* The write invalidates every other replica. *)
         mark_stale_others t ~who:dev ~start ~stop;
         mark_fresh t ~who:dev ~start ~stop)
      ranges
  end

(* --- Checkpoint / restore / recovery (fault tolerance) ----------------- *)

(* A host-side snapshot of the buffer's logical content.  Taking one is
   a tracker-directed d2h gather, so it charges the simulated transfer
   time it would really cost; in performance mode only the clocks
   move. *)
type snapshot = { ck_name : string; ck_len : int; ck_data : float array option }

let checkpoint ?(cfg = Rconfig.alpha) t =
  let data =
    if Gpusim.Machine.is_functional t.machine then begin
      let a = Array.make t.len 0.0 in
      d2h ~cfg t ~dst:(Some a);
      Some a
    end
    else begin
      d2h ~cfg t ~dst:None;
      None
    end
  in
  { ck_name = t.name; ck_len = t.len; ck_data = data }

(* Roll the buffer back to a snapshot: the host copy becomes the
   freshest (and only fresh) replica, so subsequent reads re-upload
   over PCIe — replay pays the realistic re-distribution cost. *)
let restore t ck =
  if ck.ck_len <> t.len || ck.ck_name <> t.name then
    invalid_arg
      (Printf.sprintf "Vbuf.restore(%s): snapshot is of %s (%d elements)"
         t.name ck.ck_name ck.ck_len);
  (match ck.ck_data with
   | Some a -> t.host_copy <- Some (Array.copy a)
   | None -> ());
  Tracker.write t.tracker ~start:0 ~stop:t.len ~owner:Tracker.host;
  (* Every device copy is now stale, so nothing is worth keeping
     resident: replayed reads re-upload (and re-charge) on demand. *)
  for d = 0 to Array.length t.instances - 1 do
    drop_residency t ~dev:d
  done;
  match validity t with
  | None -> ()
  | Some v ->
    let host = host_slot t in
    Array.iteri
      (fun i tr ->
         Tracker.write tr ~start:0 ~stop:t.len
           ~owner:(if i = host then 1 else 0))
      v

(* Device [dev] is gone.  Re-home every segment it owned onto a live
   replica that is still fresh there (no data moves — the bytes are
   already in place); return the ranges for which no fresh replica
   exists anywhere.  Those are truly lost and force a replay. *)
let recover t ~dev ~live =
  (* The device's memory is gone with it; stop charging for it. *)
  drop_residency t ~dev;
  let owned = Tracker.owned_by t.tracker ~owner:dev in
  match validity t with
  | None ->
    (* No replica metadata: everything the device owned is lost. *)
    List.map (fun s -> (s.Tracker.start, s.Tracker.stop)) owned
  | Some v ->
    let host = host_slot t in
    let candidates =
      List.filter (fun d -> d <> dev) live @ [ host ]
    in
    let lost = ref [] in
    List.iter
      (fun { Tracker.start; stop; _ } ->
         let pos = ref start in
         while !pos < stop do
           (* First candidate fresh at [pos] wins, for as far as its
              freshness extends. *)
           let found =
             List.find_map
               (fun c ->
                  match Tracker.query v.(c) ~start:!pos ~stop with
                  | { Tracker.owner = 1; stop = e; _ } :: _ ->
                    Some ((if c = host then Tracker.host else c), min e stop)
                  | _ -> None)
               candidates
           in
           match found with
           | Some (owner, upto) ->
             Tracker.write t.tracker ~start:!pos ~stop:upto ~owner;
             pos := upto
           | None ->
             (* Hole: extend to the next point where any candidate
                turns fresh again. *)
             let next =
               List.fold_left
                 (fun acc c ->
                    let fresh_start =
                      List.find_map
                        (fun s ->
                           if s.Tracker.owner = 1 then Some s.Tracker.start
                           else None)
                        (Tracker.query v.(c) ~start:!pos ~stop)
                    in
                    match fresh_start with
                    | Some s -> min acc s
                    | None -> acc)
                 stop candidates
             in
             lost := (!pos, next) :: !lost;
             pos := next
         done)
      owned;
    List.rev !lost

let pp fmt t =
  Format.fprintf fmt "vbuf %s (%d elements, %d instances) %a" t.name t.len
    (n_devices t) Tracker.pp t.tracker
