(* Virtual buffers (paper §8.1-8.3).

   A cudaMalloc in the original program becomes, in the partitioned
   program, one device-local instance per device plus a segment
   tracker.  Memcopies and kernel launches keep the instances coherent:

   - host-to-device becomes a 1:n scatter in a fixed linear
     distribution (the "predefined pattern" of §8.2);
   - device-to-host becomes an n:1 gather directed by the tracker;
   - before a kernel partition runs, its read set is walked and stale
     ranges are fetched from their owners (§8.3);
   - after it is launched, its write set is recorded in the tracker.

   The tracker does not represent shared copies, so repeatedly read
   shared data is re-transferred — the redundancy the paper calls out. *)

type t = {
  name : string;
  len : int; (* elements *)
  machine : Gpusim.Machine.t;
  instances : Gpusim.Buffer.t array; (* one full-size instance per device *)
  tracker : Tracker.t;
  mutable host_copy : float array option;
      (* functional mirror of the last h2d source: segments owned by
         [Tracker.host] are served from here, never from a device
         instance (whose copy may be stale) *)
}

let create machine ~name ~len =
  let n = Gpusim.Machine.n_devices machine in
  {
    name;
    len;
    machine;
    instances =
      Array.init n (fun d -> Gpusim.Machine.alloc machine ~device:d ~len);
    tracker = Tracker.create ~len ~initial_owner:0;
    host_copy = None;
  }

let name t = t.name
let len t = t.len
let tracker t = t.tracker
let instance t d = t.instances.(d)
let n_devices t = Array.length t.instances

let free t = Array.iter (fun b -> Gpusim.Machine.free t.machine b) t.instances

(* The linear distribution: device d owns the d-th of n equal chunks
   (the last chunk absorbs the remainder). *)
let linear_chunk ~len ~n_devices d =
  let chunk = (len + n_devices - 1) / n_devices in
  let start = min len (d * chunk) in
  let stop = min len ((d + 1) * chunk) in
  (start, stop)

(* Host-to-device memcpy: scatter [src] linearly over all devices and
   record ownership.  [src = None] is a phantom host array (performance
   runs at paper scale never materialize host data). *)
let h2d ?(cfg = Rconfig.alpha) t ~src =
  (match src with
   | Some a when Array.length a <> t.len -> invalid_arg "Vbuf.h2d: size mismatch"
   | Some _ -> ()
   | None ->
     if Gpusim.Machine.is_functional t.machine then
       invalid_arg "Vbuf.h2d: phantom host array in a functional run");
  (match src with
   | Some a -> t.host_copy <- Some (Array.copy a)
   | None -> ());
  let src = Option.value src ~default:[||] in
  let n = n_devices t in
  for d = 0 to n - 1 do
    let start, stop = linear_chunk ~len:t.len ~n_devices:n d in
    if stop > start then begin
      if cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine then
        Gpusim.Machine.h2d t.machine ~src ~src_off:start ~dst:t.instances.(d)
          ~dst_off:start ~len:(stop - start);
      if cfg.Rconfig.patterns then
        Tracker.write t.tracker ~start ~stop ~owner:d
    end
  done

(* Device-to-host memcpy: gather every segment from its owner. *)
let d2h ?(cfg = Rconfig.alpha) t ~dst =
  (match dst with
   | Some a when Array.length a <> t.len -> invalid_arg "Vbuf.d2h: size mismatch"
   | Some _ -> ()
   | None ->
     if Gpusim.Machine.is_functional t.machine then
       invalid_arg "Vbuf.d2h: phantom host array in a functional run");
  let dst = Option.value dst ~default:[||] in
  let segs =
    if cfg.Rconfig.patterns then Tracker.query t.tracker ~start:0 ~stop:t.len
    else [ { Tracker.start = 0; stop = t.len; owner = 0 } ]
  in
  List.iter
    (fun { Tracker.start; stop; owner } ->
       if owner = Tracker.host then begin
         (* The host copy is already fresh: no device gather, no
            simulated transfer.  Functional runs still materialize the
            segment in [dst]. *)
         if Gpusim.Machine.is_functional t.machine then
           match t.host_copy with
           | Some h -> Array.blit h start dst start (stop - start)
           | None ->
             invalid_arg
               ("Vbuf.d2h: host-owned segment of " ^ t.name
                ^ " has no host data")
       end
       else if cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
       then
         Gpusim.Machine.d2h t.machine ~src:t.instances.(owner) ~src_off:start
           ~dst ~dst_off:start ~len:(stop - start))
    segs

(* Bring the given element ranges up to date on device [dev] by copying
   stale segments from their owners (paper §8.3).  Returns the number
   of transfers issued.

   With [batch] the stale segments are grouped per owner and moved as
   one packed transfer each (a pitched cudaMemcpy2D) — used by the 2-D
   tiling extension, whose column halos fragment into thousands of
   tiny row segments that would otherwise pay a latency each. *)
(* Clamp a range list to the buffer: enumerators over-approximate, so a
   range may start below 0 or reach past [len]; empty and fully
   out-of-bounds ranges are dropped (the tracker rejects them). *)
let clamp_ranges t ranges =
  List.filter_map
    (fun (start, stop) ->
       let start = max 0 start and stop = min stop t.len in
       if stop > start then Some (start, stop) else None)
    ranges

(* Upload one host-owned segment onto device [dev]: host data never
   lives in a device instance, so it moves over PCIe, not peer-to-peer. *)
let fetch_from_host t ~dev ~start ~len ~do_data =
  if do_data then begin
    let src =
      match t.host_copy with
      | Some h -> h
      | None ->
        if Gpusim.Machine.is_functional t.machine then
          invalid_arg
            ("Vbuf.sync_for_read: host-owned segment of " ^ t.name
             ^ " has no host data")
        else [||]
    in
    Gpusim.Machine.h2d t.machine ~src ~src_off:start ~dst:t.instances.(dev)
      ~dst_off:start ~len
  end

let sync_for_read ?(cfg = Rconfig.alpha) ?(batch = false) t ~dev ~ranges =
  if not cfg.Rconfig.patterns then 0
  else begin
    let transfers = ref 0 in
    let do_data =
      cfg.Rconfig.transfers || Gpusim.Machine.is_functional t.machine
    in
    let ranges = clamp_ranges t ranges in
    if batch then begin
      let per_owner : (int, (int * int * int) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (start, stop) ->
           List.iter
             (fun { Tracker.start = s; stop = e; owner } ->
                if owner = Tracker.host then begin
                  (* Host-owned segments cannot join a packed
                     device-to-device transfer; upload each directly. *)
                  incr transfers;
                  fetch_from_host t ~dev ~start:s ~len:(e - s) ~do_data
                end
                else if owner <> dev then begin
                  let slot =
                    match Hashtbl.find_opt per_owner owner with
                    | Some l -> l
                    | None ->
                      let l = ref [] in
                      Hashtbl.replace per_owner owner l;
                      l
                  in
                  slot := (s, s, e - s) :: !slot
                end)
             (Tracker.query t.tracker ~start ~stop))
        ranges;
      Hashtbl.iter
        (fun owner segs ->
           incr transfers;
           if do_data then
             Gpusim.Machine.p2p_multi t.machine ~src:t.instances.(owner)
               ~dst:t.instances.(dev) ~segments:!segs)
        per_owner
    end
    else
      List.iter
        (fun (start, stop) ->
           List.iter
             (fun { Tracker.start = s; stop = e; owner } ->
                if owner = Tracker.host then begin
                  incr transfers;
                  fetch_from_host t ~dev ~start:s ~len:(e - s) ~do_data
                end
                else if owner <> dev then begin
                  incr transfers;
                  if do_data then
                    Gpusim.Machine.p2p t.machine ~src:t.instances.(owner)
                      ~src_off:s ~dst:t.instances.(dev) ~dst_off:s
                      ~len:(e - s)
                end)
             (Tracker.query t.tracker ~start ~stop))
        ranges;
    !transfers
  end

(* Record that device [dev] wrote the given element ranges. *)
let update_for_write ?(cfg = Rconfig.alpha) t ~dev ~ranges =
  if cfg.Rconfig.patterns then
    List.iter
      (fun (start, stop) -> Tracker.write t.tracker ~start ~stop ~owner:dev)
      (clamp_ranges t ranges)

let pp fmt t =
  Format.fprintf fmt "vbuf %s (%d elements, %d instances) %a" t.name t.len
    (n_devices t) Tracker.pp t.tracker
