(** Virtual buffers (paper §8.1–8.3): one device-local instance per
    device plus a segment tracker, kept coherent across kernel launches
    and memcopies.

    - host-to-device scatters linearly over all devices (§8.2);
    - device-to-host gathers each segment from its owner;
    - {!sync_for_read} fetches stale ranges before a kernel partition
      runs; {!update_for_write} records its writes (§8.3). *)

type t

val create : Gpusim.Machine.t -> name:string -> len:int -> t
(** Allocate one full-size *virtual* instance on every device of the
    machine: instances charge no device memory; only resident segments
    do (see {!ensure_resident}). *)

val name : t -> string
val len : t -> int
val tracker : t -> Tracker.t

val instance : t -> int -> Gpusim.Buffer.t
(** The device-local instance for one device. *)

val n_devices : t -> int
val free : t -> unit

val linear_chunk : len:int -> n_devices:int -> int -> (int * int)
(** The half-open element range device [d] owns under the linear
    distribution (the "predefined pattern" of §8.2). *)

val h2d : ?cfg:Rconfig.t -> ?pool:t list -> t -> src:float array option -> unit
(** Host-to-device memcpy: linear scatter plus tracker update.  Under
    fault injection the scatter targets only the surviving devices.
    Under a finite memory capacity each chunk's resident prefix is
    limited to what the target device can hold after evicting
    everything evictable from [pool]; the remainder stays host-owned
    and is uploaded on demand.  [src = None] is a phantom host array
    (performance runs only).  Raises [Invalid_argument] naming the
    buffer, lengths and device count if the host array's length
    differs from [len t]. *)

val d2h : ?cfg:Rconfig.t -> t -> dst:float array option -> unit
(** Device-to-host memcpy: gather every segment from its owner.
    Segments owned by [Tracker.host] are served from the buffer's host
    copy (already fresh — no device transfer).  Raises
    [Invalid_argument] naming the buffer if the host array's length
    differs from [len t]. *)

val sync_for_read :
  ?cfg:Rconfig.t -> ?batch:bool -> ?pool:t list -> ?stamp:int -> t ->
  dev:int -> ranges:(int * int) list -> int
(** Bring the element ranges up to date on device [dev], copying stale
    segments from their owners; returns the number of transfers issued.
    Ranges are clamped to the buffer (enumerators over-approximate);
    segments owned by [Tracker.host] are uploaded over PCIe from the
    host copy.  The read set is made resident first (see
    {!ensure_resident}; [pool]/[stamp] are passed through).  [batch]
    groups stale segments per owner into packed transfers (pitched
    cudaMemcpy2D), which the 2-D tiling extension needs for its
    fragmented column halos. *)

val update_for_write :
  ?cfg:Rconfig.t -> ?pool:t list -> ?stamp:int -> t -> dev:int ->
  ranges:(int * int) list -> unit
(** Record that device [dev] wrote the ranges (clamped to the buffer).
    The ranges are made resident first — written bytes necessarily
    exist on the device — raising [Gpusim.Machine.Out_of_memory] if
    they cannot fit, rather than letting accounting drift. *)

(** {2 Segment residency under finite device memory}

    With a finite [Config.mem_capacity] only resident segments occupy
    device memory.  Residency is LRU-stamped; eviction writes
    device-owned segments back to the host copy (a simulated d2h — the
    traffic a real spill pays) and hands their ownership to
    [Tracker.host], while segments owned elsewhere are dropped free.
    Results stay bit-identical: the coherence protocol re-fetches
    whatever a read needs, from the host copy if need be. *)

val ensure_resident :
  ?cfg:Rconfig.t -> ?pool:t list -> ?stamp:int -> t -> dev:int ->
  ranges:(int * int) list -> unit
(** Make the ranges resident on [dev], evicting the globally coldest
    resident segments across [pool] (plus this vbuf) when the device
    is full.  All ranges of one launch should share a [stamp] (one
    {!Gpusim.Machine.lru_tick}) so none of them can evict another.
    Raises [Gpusim.Machine.Out_of_memory] when a full eviction of
    everything older still cannot make room. *)

val spill :
  ?cfg:Rconfig.t -> t -> dev:int -> ranges:(int * int) list -> int
(** Evict the resident parts of the ranges from [dev]; returns the
    bytes released.  Device-owned parts are written back to the host
    copy and counted as spill traffic. *)

val resident_bytes : t -> dev:int -> int
(** Bytes this vbuf currently holds resident on one device. *)

val check_residency : t -> unit
(** Validate the residency invariants (trackers sound, charges mirror
    resident elements, owned segments resident); raises [Failure] on
    violation.  Meaningful once the buffer has been distributed by an
    {!h2d}. *)

(** {2 Checkpoint / restore / recovery (fault tolerance)}

    Replica-freshness metadata is maintained only when the machine has
    fault injection attached, so fault-free runs pay nothing. *)

type snapshot
(** A host-side snapshot of the buffer's logical content. *)

val checkpoint : ?cfg:Rconfig.t -> t -> snapshot
(** Snapshot the buffer: a tracker-directed d2h gather that charges its
    simulated transfer time (data only in functional mode). *)

val restore : t -> snapshot -> unit
(** Roll back to a snapshot: the host copy becomes the only fresh
    replica, so replayed reads re-upload over PCIe. *)

val recover : t -> dev:int -> live:int list -> (int * int) list
(** Device [dev] was permanently lost.  Re-home every segment it owned
    onto a live device (or the host) whose replica is still fresh there
    — no data moves — and return the ranges with no fresh copy
    anywhere: those are lost and the engine must replay their
    producers. *)

val pp : Format.formatter -> t -> unit
