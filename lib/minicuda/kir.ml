(* The kernel intermediate representation.

   This deep embedding plays the role LLVM IR plays for gpucc: kernels
   written in it can be executed directly (bit-exact functional runs,
   {!Keval}), statically analyzed (polyhedral access extraction in
   lib/mekong), cost-estimated ({!Costmodel}) and transformed (the
   kernel-partitioning rewrite of paper §7).

   Expressions are dynamically typed over integers, floats and
   booleans; array subscripts must evaluate to integers and, for the
   polyhedral analysis to succeed, must be affine in the grid
   coordinates, loop counters and scalar parameters. *)

type special =
  | Thread_idx of Dim3.axis
  | Block_idx of Dim3.axis
  | Block_dim of Dim3.axis
  | Grid_dim of Dim3.axis

type unop = Neg | Sqrt | Abs | Rsqrt | Not

type binop =
  | Add | Sub | Mul | Div (* arithmetic; Div is float division *)
  | Idiv | Imod (* integer-only *)
  | Minb | Maxb
  | Lt | Le | Gt | Ge | Eq | Ne (* comparisons, yield booleans *)
  | And | Or

type exp =
  | Iconst of int
  | Fconst of float
  | Special of special
  | Param of string (* scalar kernel argument (int or float at runtime) *)
  | Var of string (* loop counter or local variable *)
  | Load of string * exp list (* array argument, one index per dimension *)
  | Unop of unop * exp
  | Binop of binop * exp * exp

(* The commutative-associative read-modify-write operators.  Their
   device semantics (one indivisible load-combine-store per call) is
   what makes cross-block conflicts on the same element reducible
   instead of racy: any interleaving yields a result obtainable by
   SOME combining order, and the engines pin one deterministic order. *)
type atomic_op = AAdd | AMin | AMax

type stmt =
  | Store of string * exp list * exp
  | Atomic of atomic_op * string * exp list * exp
    (* atomicAdd(&a[i]..., e); combines the old element with e *)
  | Local of string * exp (* declare-and-initialize a mutable local *)
  | Assign of string * exp (* update a local *)
  | If of exp * stmt list * stmt list
  | For of { var : string; from_ : exp; to_ : exp; body : stmt list }
    (* for (var = from_; var < to_; var++) *)
  | Syncthreads (* barrier within a thread block; a no-op for analysis *)

type dim = Dim_const of int | Dim_param of string

type param =
  | Scalar of string (* integer scalar argument *)
  | Fscalar of string (* float scalar argument *)
  | Array of { name : string; dims : dim array }

type t = { name : string; params : param list; body : stmt list }

let kernel ~name ~params body = { name; params; body }

let param_names k =
  List.map
    (function Scalar n -> n | Fscalar n -> n | Array { name; _ } -> name)
    k.params

let scalar_params k =
  List.filter_map (function Scalar n -> Some n | _ -> None) k.params

let array_params k =
  List.filter_map
    (function Array { name; dims } -> Some (name, dims) | _ -> None)
    k.params

let find_array k name = List.assoc_opt name (array_params k)

(* --- Convenience constructors (the kernel-building eDSL) -------------- *)

let i n = Iconst n
let f x = Fconst x
let p n = Param n
let v n = Var n
let tid a = Special (Thread_idx a)
let bid a = Special (Block_idx a)
let bdim a = Special (Block_dim a)
let gdim a = Special (Grid_dim a)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let load name idx = Load (name, idx)
let store name idx e = Store (name, idx, e)
let atomic_add name idx e = Atomic (AAdd, name, idx, e)
let atomic_min name idx e = Atomic (AMin, name, idx, e)
let atomic_max name idx e = Atomic (AMax, name, idx, e)
let sqrt_ e = Unop (Sqrt, e)
let rsqrt e = Unop (Rsqrt, e)
let min_ a b = Binop (Minb, a, b)
let max_ a b = Binop (Maxb, a, b)

(* Global thread position along an axis:
   threadIdx.a + blockIdx.a * blockDim.a  (paper Eq. 5). *)
let global_id a = Binop (Add, tid a, Binop (Mul, bid a, bdim a))

(* --- Generic traversal / transformation -------------------------------- *)

(* Bottom-up expression rewriting: [f] is applied to every node after
   its children have been rewritten. *)
let rec map_exp f e =
  let e' =
    match e with
    | Iconst _ | Fconst _ | Special _ | Param _ | Var _ -> e
    | Load (a, idx) -> Load (a, List.map (map_exp f) idx)
    | Unop (op, x) -> Unop (op, map_exp f x)
    | Binop (op, x, y) -> Binop (op, map_exp f x, map_exp f y)
  in
  f e'

let rec map_stmt f s =
  match s with
  | Store (a, idx, e) -> Store (a, List.map (map_exp f) idx, map_exp f e)
  | Atomic (op, a, idx, e) ->
    Atomic (op, a, List.map (map_exp f) idx, map_exp f e)
  | Local (n, e) -> Local (n, map_exp f e)
  | Assign (n, e) -> Assign (n, map_exp f e)
  | If (c, t, e) ->
    If (map_exp f c, List.map (map_stmt f) t, List.map (map_stmt f) e)
  | For { var; from_; to_; body } ->
    For
      { var; from_ = map_exp f from_; to_ = map_exp f to_;
        body = List.map (map_stmt f) body }
  | Syncthreads -> Syncthreads

let map_kernel f k = { k with body = List.map (map_stmt f) k.body }

(* Fold over every expression in a statement list (loads inside stores
   included). *)
let rec fold_exp_in_exp f acc e =
  let acc =
    match e with
    | Iconst _ | Fconst _ | Special _ | Param _ | Var _ -> acc
    | Load (_, idx) -> List.fold_left (fold_exp_in_exp f) acc idx
    | Unop (_, x) -> fold_exp_in_exp f acc x
    | Binop (_, x, y) -> fold_exp_in_exp f (fold_exp_in_exp f acc x) y
  in
  f acc e

let rec fold_exp_in_stmt f acc s =
  match s with
  | Store (_, idx, e) | Atomic (_, _, idx, e) ->
    fold_exp_in_exp f (List.fold_left (fold_exp_in_exp f) acc idx) e
  | Local (_, e) | Assign (_, e) -> fold_exp_in_exp f acc e
  | If (c, t, e) ->
    let acc = fold_exp_in_exp f acc c in
    let acc = List.fold_left (fold_exp_in_stmt f) acc t in
    List.fold_left (fold_exp_in_stmt f) acc e
  | For { from_; to_; body; _ } ->
    let acc = fold_exp_in_exp f acc from_ in
    let acc = fold_exp_in_exp f acc to_ in
    List.fold_left (fold_exp_in_stmt f) acc body
  | Syncthreads -> acc

(* --- Pretty printing ---------------------------------------------------- *)

let special_name = function
  | Thread_idx a -> "threadIdx." ^ Dim3.axis_name a
  | Block_idx a -> "blockIdx." ^ Dim3.axis_name a
  | Block_dim a -> "blockDim." ^ Dim3.axis_name a
  | Grid_dim a -> "gridDim." ^ Dim3.axis_name a

let unop_name = function
  | Neg -> "-" | Sqrt -> "sqrtf" | Abs -> "fabsf" | Rsqrt -> "rsqrtf" | Not -> "!"

let atomic_name = function
  | AAdd -> "atomicAdd" | AMin -> "atomicMin" | AMax -> "atomicMax"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Idiv -> "/" | Imod -> "%"
  | Minb -> "min" | Maxb -> "max"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let rec pp_exp fmt e =
  let open Format in
  match e with
  | Iconst n -> fprintf fmt "%d" n
  | Fconst x -> fprintf fmt "%gf" x
  | Special s -> fprintf fmt "%s" (special_name s)
  | Param n | Var n -> fprintf fmt "%s" n
  | Load (a, idx) ->
    fprintf fmt "%s%a" a
      (pp_print_list ~pp_sep:(fun _ () -> ()) (fun fmt i ->
           fprintf fmt "[%a]" pp_exp i))
      idx
  | Unop (Neg, x) -> fprintf fmt "(-%a)" pp_exp x
  | Unop (Not, x) -> fprintf fmt "(!%a)" pp_exp x
  | Unop (op, x) -> fprintf fmt "%s(%a)" (unop_name op) pp_exp x
  | Binop ((Minb | Maxb) as op, x, y) ->
    fprintf fmt "%s(%a, %a)" (binop_name op) pp_exp x pp_exp y
  | Binop (op, x, y) ->
    fprintf fmt "(%a %s %a)" pp_exp x (binop_name op) pp_exp y

let rec pp_stmt ~indent fmt s =
  let open Format in
  let pad = String.make indent ' ' in
  match s with
  | Store (a, idx, e) ->
    fprintf fmt "%s%s%s = %a;\n" pad a
      (String.concat ""
         (List.map (fun i -> asprintf "[%a]" pp_exp i) idx))
      pp_exp e
  | Atomic (op, a, idx, e) ->
    fprintf fmt "%s%s(&%s%s, %a);\n" pad (atomic_name op) a
      (String.concat ""
         (List.map (fun i -> asprintf "[%a]" pp_exp i) idx))
      pp_exp e
  | Local (n, e) -> fprintf fmt "%sauto %s = %a;\n" pad n pp_exp e
  | Assign (n, e) -> fprintf fmt "%s%s = %a;\n" pad n pp_exp e
  | If (c, t, []) ->
    fprintf fmt "%sif (%a) {\n" pad pp_exp c;
    List.iter (pp_stmt ~indent:Stdlib.(indent + 2) fmt) t;
    fprintf fmt "%s}\n" pad
  | If (c, t, e) ->
    fprintf fmt "%sif (%a) {\n" pad pp_exp c;
    List.iter (pp_stmt ~indent:Stdlib.(indent + 2) fmt) t;
    fprintf fmt "%s} else {\n" pad;
    List.iter (pp_stmt ~indent:Stdlib.(indent + 2) fmt) e;
    fprintf fmt "%s}\n" pad
  | For { var; from_; to_; body } ->
    fprintf fmt "%sfor (int %s = %a; %s < %a; %s++) {\n" pad var pp_exp from_
      var pp_exp to_ var;
    List.iter (pp_stmt ~indent:Stdlib.(indent + 2) fmt) body;
    fprintf fmt "%s}\n" pad
  | Syncthreads -> fprintf fmt "%s__syncthreads();\n" pad

let pp fmt k =
  let open Format in
  let pp_dim fmt = function
    | Dim_const n -> fprintf fmt "[%d]" n
    | Dim_param p -> fprintf fmt "[%s]" p
  in
  let pp_param fmt = function
    | Scalar n -> fprintf fmt "int %s" n
    | Fscalar n -> fprintf fmt "float %s" n
    | Array { name; dims } ->
      (* extents as a trailing comment so the textual pipeline can
         recover the array shapes *)
      fprintf fmt "float *%s /* %a */" name
        (fun fmt -> Array.iter (pp_dim fmt))
        dims
  in
  fprintf fmt "__global__ void %s(%a) {\n" k.name
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt ", ") pp_param)
    k.params;
  List.iter (pp_stmt ~indent:2 fmt) k.body;
  fprintf fmt "}\n"

let to_string k = Format.asprintf "%a" pp k
