(** The kernel intermediate representation — the role LLVM IR plays for
    gpucc.  Kernels in this IR can be executed ({!Keval}), statically
    analyzed (polyhedral access extraction), cost-estimated
    ({!Costmodel}), optimized ({!Kopt}) and transformed (the kernel
    partitioning of paper §7). *)

type special =
  | Thread_idx of Dim3.axis
  | Block_idx of Dim3.axis
  | Block_dim of Dim3.axis
  | Grid_dim of Dim3.axis

type unop = Neg | Sqrt | Abs | Rsqrt | Not

type binop =
  | Add | Sub | Mul | Div  (** [Div] is float division *)
  | Idiv | Imod  (** integer-only *)
  | Minb | Maxb
  | Lt | Le | Gt | Ge | Eq | Ne  (** comparisons yield booleans *)
  | And | Or

type exp =
  | Iconst of int
  | Fconst of float
  | Special of special
  | Param of string  (** scalar kernel argument *)
  | Var of string  (** loop counter or local variable *)
  | Load of string * exp list  (** array argument, one index per dim *)
  | Unop of unop * exp
  | Binop of binop * exp * exp

type atomic_op = AAdd | AMin | AMax
(** Commutative-associative read-modify-write operators.  One call is
    an indivisible load-combine-store, so cross-block conflicts on the
    same element are reducible (any combining order is a legal result)
    rather than racy. *)

type stmt =
  | Store of string * exp list * exp
  | Atomic of atomic_op * string * exp list * exp
      (** [atomicAdd(&a[i]..., e);] — combine the old element with [e] *)
  | Local of string * exp  (** declare-and-initialize a mutable local *)
  | Assign of string * exp
  | If of exp * stmt list * stmt list
  | For of { var : string; from_ : exp; to_ : exp; body : stmt list }
      (** [for (var = from_; var < to_; var++)] *)
  | Syncthreads

type dim = Dim_const of int | Dim_param of string
(** An array dimension size: a constant or a scalar parameter. *)

type param =
  | Scalar of string  (** integer scalar argument *)
  | Fscalar of string  (** float scalar argument *)
  | Array of { name : string; dims : dim array }

type t = { name : string; params : param list; body : stmt list }

val kernel : name:string -> params:param list -> stmt list -> t

val param_names : t -> string list

val scalar_params : t -> string list
(** Names of the integer scalar parameters. *)

val array_params : t -> (string * dim array) list
val find_array : t -> string -> dim array option

(** {2 Construction eDSL}

    Infix operators build IR expressions and therefore shadow the
    stdlib operators — scope [open Kir] to kernel definitions. *)

val i : int -> exp
val f : float -> exp
val p : string -> exp
val v : string -> exp
val tid : Dim3.axis -> exp
val bid : Dim3.axis -> exp
val bdim : Dim3.axis -> exp
val gdim : Dim3.axis -> exp
val ( + ) : exp -> exp -> exp
val ( - ) : exp -> exp -> exp
val ( * ) : exp -> exp -> exp
val ( / ) : exp -> exp -> exp
val ( < ) : exp -> exp -> exp
val ( <= ) : exp -> exp -> exp
val ( > ) : exp -> exp -> exp
val ( >= ) : exp -> exp -> exp
val ( = ) : exp -> exp -> exp
val ( <> ) : exp -> exp -> exp
val ( && ) : exp -> exp -> exp
val ( || ) : exp -> exp -> exp
val load : string -> exp list -> exp
val store : string -> exp list -> exp -> stmt
val atomic_add : string -> exp list -> exp -> stmt
val atomic_min : string -> exp list -> exp -> stmt
val atomic_max : string -> exp list -> exp -> stmt
val sqrt_ : exp -> exp
val rsqrt : exp -> exp
val min_ : exp -> exp -> exp
val max_ : exp -> exp -> exp

val global_id : Dim3.axis -> exp
(** [threadIdx.a + blockIdx.a * blockDim.a] (paper Eq. 5). *)

(** {2 Traversal} *)

val map_exp : (exp -> exp) -> exp -> exp
(** Bottom-up rewriting: the function sees every node after its
    children were rewritten. *)

val map_stmt : (exp -> exp) -> stmt -> stmt
val map_kernel : (exp -> exp) -> t -> t

val fold_exp_in_exp : ('a -> exp -> 'a) -> 'a -> exp -> 'a
val fold_exp_in_stmt : ('a -> exp -> 'a) -> 'a -> stmt -> 'a

(** {2 Printing (toy CUDA syntax)} *)

val special_name : special -> string
val atomic_name : atomic_op -> string
val pp_exp : Format.formatter -> exp -> unit
val pp_stmt : indent:int -> Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
