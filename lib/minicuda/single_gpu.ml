(* The single-GPU reference engine.

   Executes a host program against device 0 of a simulated machine,
   exactly as NVCC-compiled binaries do on one GPU in the paper's
   baseline measurements.  Functional runs produce bit-exact buffer
   contents; performance runs produce the simulated reference time the
   speedup figures divide by. *)

type result = {
  machine : Gpusim.Machine.t;
  time : float; (* simulated end-to-end seconds (after final sync) *)
  exec : Kcompile.stats; (* executor counters for the functional runs *)
}

let run ?(machine : Gpusim.Machine.t option)
    ?(executor = `Compiled) (prog : Host_ir.t) : result =
  let m =
    match machine with
    | Some m -> m
    | None -> Gpusim.Machine.create ~functional:true (Gpusim.Config.test_box ~n_devices:1 ())
  in
  Host_ir.validate prog;
  (* A reused machine may carry the previous run's active-device
     high-water mark; a single-GPU run keeps exactly one die busy and
     must not inherit the derate. *)
  Gpusim.Machine.set_active_devices m 1;
  let bufs : (string, Gpusim.Buffer.t) Hashtbl.t = Hashtbl.create 16 in
  let find b =
    match Hashtbl.find_opt bufs b with
    | Some buf -> buf
    | None -> invalid_arg ("Single_gpu: unallocated buffer " ^ b)
  in
  (* Compiled kernels, memoized per launch shape for the life of this
     run (the reference engine has no launch-plan cache to hang them
     off).  The engine runs blocks sequentially: without a polyhedral
     model there is no race-freedom proof to justify a domain pool. *)
  let compiled :
      ( string * Dim3.t * Dim3.t * Keval.arg list,
        (Kcompile.t, string) Stdlib.result )
      Hashtbl.t =
    Hashtbl.create 8
  in
  let exec_stats = Kcompile.new_stats () in
  let rec exec (s : Host_ir.stmt) =
    match s with
    | Host_ir.Malloc (name, len) ->
      Hashtbl.replace bufs name (Gpusim.Machine.alloc m ~device:0 ~len)
    | Host_ir.Memcpy_h2d { dst; src } ->
      let b = find dst in
      let data =
        if Gpusim.Machine.is_functional m then Host_ir.host_data_exn src
        else Option.value src.Host_ir.data ~default:[||]
      in
      Gpusim.Machine.h2d m ~src:data ~src_off:0 ~dst:b ~dst_off:0
        ~len:src.Host_ir.len
    | Host_ir.Memcpy_d2h { dst; src } ->
      let b = find src in
      (* The reference binary synchronizes implicitly on blocking
         cudaMemcpy D2H. *)
      Gpusim.Machine.synchronize m;
      let data =
        if Gpusim.Machine.is_functional m then Host_ir.host_data_exn dst
        else Option.value dst.Host_ir.data ~default:[||]
      in
      Gpusim.Machine.d2h m ~src:b ~src_off:0 ~dst:data ~dst_off:0
        ~len:dst.Host_ir.len;
      Gpusim.Machine.synchronize m
    | Host_ir.Launch { kernel; grid; block; args } ->
      let bindings = Host_ir.array_bindings kernel args in
      let buffer_of name = find (List.assoc name bindings) in
      let scalar_env = Host_ir.scalar_bindings kernel args in
      let ops = Costmodel.ops_per_block kernel ~scalar_env ~block in
      let scalars = Host_ir.scalar_args args in
      Gpusim.Machine.launch m ~device:0 ~blocks:(Dim3.volume grid)
        ~ops_per_block:ops ~run:(fun () ->
          let interpret () =
            let load a off = (Gpusim.Buffer.data_exn (buffer_of a)).(off) in
            let store a off v =
              (Gpusim.Buffer.data_exn (buffer_of a)).(off) <- v
            in
            exec_stats.Kcompile.st_interpreted <-
              exec_stats.Kcompile.st_interpreted + 1;
            Keval.run kernel ~grid ~block ~args:scalars ~load ~store
          in
          match executor with
          | `Interpreter -> interpret ()
          | `Compiled -> (
              let key = (kernel.Kir.name, grid, block, scalars) in
              let ck =
                match Hashtbl.find_opt compiled key with
                | Some ck ->
                  exec_stats.Kcompile.st_cache_hits <-
                    exec_stats.Kcompile.st_cache_hits + 1;
                  ck
                | None ->
                  let ck = Kcompile.compile kernel ~grid ~block ~args:scalars in
                  exec_stats.Kcompile.st_compiles <-
                    exec_stats.Kcompile.st_compiles + 1;
                  Hashtbl.replace compiled key ck;
                  ck
              in
              match ck with
              | Ok ck ->
                (* Resolve each array to its backing data once per
                   launch, not per access. *)
                let load a =
                  let data = Gpusim.Buffer.data_exn (buffer_of a) in
                  fun off -> data.(off)
                in
                let store a =
                  let data = Gpusim.Buffer.data_exn (buffer_of a) in
                  fun off v -> data.(off) <- v
                in
                Kcompile.record_path exec_stats
                  (Kcompile.run ck ~load ~store)
              | Error _ -> interpret ()))
    | Host_ir.Repeat (n, body) ->
      for _ = 1 to n do
        List.iter exec body
      done
    | Host_ir.Swap (a, b) ->
      let ba = find a and bb = find b in
      Hashtbl.replace bufs a bb;
      Hashtbl.replace bufs b ba
    | Host_ir.Free name ->
      Gpusim.Machine.free m (find name);
      Hashtbl.remove bufs name
    | Host_ir.Sync -> Gpusim.Machine.synchronize m
  in
  List.iter exec prog.Host_ir.body;
  Gpusim.Machine.synchronize m;
  { machine = m; time = Gpusim.Machine.host_time m; exec = exec_stats }
