(** The single-GPU reference engine: runs a host program against device
    0 of a simulated machine, as NVCC-compiled binaries do in the
    paper's baseline measurements. *)

type result = {
  machine : Gpusim.Machine.t;
  time : float;  (** simulated end-to-end seconds (after final sync) *)
  exec : Kcompile.stats;
      (** executor counters: compilations, cache hits, fallbacks (all
          zero on performance machines, which skip functional work) *)
}

val run :
  ?machine:Gpusim.Machine.t ->
  ?executor:[ `Compiled | `Interpreter ] ->
  Host_ir.t ->
  result
(** Defaults to a fresh functional single-device test machine.
    [executor] (default [`Compiled]) selects the {!Kcompile} closure
    executor with automatic interpreter fallback, or forces the
    {!Keval} interpreter (the bench baseline); functional results are
    bit-identical either way. *)
