(** The single-GPU reference engine: runs a host program against device
    0 of a simulated machine, as NVCC-compiled binaries do in the
    paper's baseline measurements. *)

type result = {
  machine : Gpusim.Machine.t;
  time : float;  (** simulated end-to-end seconds (after final sync) *)
}

val run : ?machine:Gpusim.Machine.t -> Host_ir.t -> result
(** Defaults to a fresh functional single-device test machine. *)
