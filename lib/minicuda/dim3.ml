(* 3-dimensional extents, mirroring CUDA's dim3.  The axis order used
   throughout the code base is (z, y, x) when iterating hierarchically
   and named fields otherwise. *)

type t = { x : int; y : int; z : int }

type axis = X | Y | Z

let make ?(y = 1) ?(z = 1) x =
  if x < 1 || y < 1 || z < 1 then invalid_arg "Dim3.make: extents must be >= 1";
  { x; y; z }

let one = { x = 1; y = 1; z = 1 }

let volume d = d.x * d.y * d.z

let get d = function X -> d.x | Y -> d.y | Z -> d.z

let set d axis v =
  match axis with X -> { d with x = v } | Y -> { d with y = v } | Z -> { d with z = v }

let axes = [ Z; Y; X ]

let axis_name = function X -> "x" | Y -> "y" | Z -> "z"

let equal a b = a.x = b.x && a.y = b.y && a.z = b.z

(* Iterate over all coordinates in (z, y, x) lexicographic order. *)
let iter d f =
  for z = 0 to d.z - 1 do
    for y = 0 to d.y - 1 do
      for x = 0 to d.x - 1 do
        f { x; y; z }
      done
    done
  done

let pp fmt d = Format.fprintf fmt "(%d, %d, %d)" d.x d.y d.z
let to_string d = Format.asprintf "%a" pp d
