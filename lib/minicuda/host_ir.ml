(* Host programs.

   A host program is the abstract counterpart of a single-GPU CUDA host
   source file: allocations, host<->device copies, kernel launches, an
   iteration loop with buffer swapping, and synchronization.  The same
   program is executed by the single-GPU reference engine
   ({!Single_gpu}) and by the partitioning runtime (lib/mekong), which
   is exactly the situation of the paper: one source, two binaries. *)

type harg = HInt of int | HFloat of float | HBuf of string

(* A host-side array: real data for functional runs, or a phantom of
   the right extent for performance runs at paper scale (tens of GiB
   that must never be allocated). *)
type host_array = { len : int; data : float array option }

let host_data a = { len = Array.length a; data = Some a }
let host_phantom len = { len; data = None }

let host_data_exn ha =
  match ha.data with
  | Some a -> a
  | None -> invalid_arg "Host_ir: phantom host array used in a functional run"

type stmt =
  | Malloc of string * int (* buffer name, element count *)
  | Memcpy_h2d of { dst : string; src : host_array }
  | Memcpy_d2h of { dst : host_array; src : string }
  | Launch of { kernel : Kir.t; grid : Dim3.t; block : Dim3.t; args : harg list }
  | Repeat of int * stmt list
  | Swap of string * string (* exchange two buffer bindings (ping-pong) *)
  | Free of string
  | Sync

type t = { name : string; body : stmt list }

let program ~name body = { name; body }

(* Scalar argument values in kernel-parameter order (arrays omitted),
   as consumed by {!Keval.run}. *)
let scalar_args args =
  List.filter_map
    (function
      | HInt n -> Some (Keval.AInt n)
      | HFloat f -> Some (Keval.AFloat f)
      | HBuf _ -> None)
    args

(* Pair each array parameter of the kernel with the buffer name bound
   to it at this launch. *)
let array_bindings kernel args =
  let rec go params args acc =
    match (params, args) with
    | [], [] -> List.rev acc
    | Kir.Array { name; _ } :: ps, HBuf b :: as_ -> go ps as_ ((name, b) :: acc)
    | Kir.Array _ :: _, _ ->
      invalid_arg "Host_ir: array parameter not bound to a buffer"
    | (Kir.Scalar _ | Kir.Fscalar _) :: ps, (HInt _ | HFloat _) :: as_ ->
      go ps as_ acc
    | (Kir.Scalar _ | Kir.Fscalar _) :: _, _ ->
      invalid_arg "Host_ir: scalar parameter not bound to a scalar"
    | [], _ :: _ -> invalid_arg "Host_ir: argument count mismatch"
  in
  go kernel.Kir.params args []

(* Scalar bindings (name, value) for the launch, used by the analysis
   and the cost model. *)
let scalar_bindings kernel args =
  let rec go params args acc =
    match (params, args) with
    | [], [] -> List.rev acc
    | Kir.Scalar n :: ps, HInt v :: as_ -> go ps as_ ((n, v) :: acc)
    | Kir.Scalar n :: ps, HFloat v :: as_ -> go ps as_ ((n, int_of_float v) :: acc)
    | Kir.Fscalar _ :: ps, (HInt _ | HFloat _) :: as_ -> go ps as_ acc
    | Kir.Array _ :: ps, HBuf _ :: as_ -> go ps as_ acc
    | _ -> invalid_arg "Host_ir: argument count mismatch"
  in
  go kernel.Kir.params args []

(* Static checks: buffers are allocated before use, freed at most once,
   launch arguments match kernel signatures.  Raises
   [Invalid_argument] describing the first problem found. *)
let validate t =
  let live = Hashtbl.create 16 in
  let need b what =
    if not (Hashtbl.mem live b) then
      invalid_arg (Printf.sprintf "Host_ir.validate(%s): %s uses unallocated buffer %s" t.name what b)
  in
  let rec go s =
    match s with
    | Malloc (b, len) ->
      if len <= 0 then
        invalid_arg (Printf.sprintf "Host_ir.validate(%s): malloc %s of %d elements" t.name b len);
      if Hashtbl.mem live b then
        invalid_arg (Printf.sprintf "Host_ir.validate(%s): double malloc of %s" t.name b);
      Hashtbl.replace live b len
    | Memcpy_h2d { dst; src } ->
      need dst "h2d";
      if src.len <> Hashtbl.find live dst then
        invalid_arg (Printf.sprintf "Host_ir.validate(%s): h2d size mismatch for %s" t.name dst)
    | Memcpy_d2h { dst; src } ->
      need src "d2h";
      if dst.len <> Hashtbl.find live src then
        invalid_arg (Printf.sprintf "Host_ir.validate(%s): d2h size mismatch for %s" t.name src)
    | Launch { kernel; args; _ } ->
      (* arity/type check *)
      ignore (array_bindings kernel args);
      List.iter (fun (_, b) -> need b "launch") (array_bindings kernel args)
    | Repeat (n, body) ->
      if n < 0 then invalid_arg "Host_ir.validate: negative repeat count";
      List.iter go body
    | Swap (a, b) ->
      need a "swap";
      need b "swap"
    | Free b ->
      need b "free";
      Hashtbl.remove live b
    | Sync -> ()
  in
  List.iter go t.body

(* All kernels launched by the program (used by the toolchain's
   analysis pass), deduplicated by name. *)
let kernels t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Launch { kernel; _ } ->
      if not (Hashtbl.mem seen kernel.Kir.name) then begin
        Hashtbl.replace seen kernel.Kir.name ();
        out := kernel :: !out
      end
    | Repeat (_, body) -> List.iter go body
    | Malloc _ | Memcpy_h2d _ | Memcpy_d2h _ | Swap _ | Free _ | Sync -> ()
  in
  List.iter go t.body;
  List.rev !out
