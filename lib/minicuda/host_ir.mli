(** Host programs: the abstract counterpart of a single-GPU CUDA host
    source file.  The same program is executed by the single-GPU
    reference engine ({!Single_gpu}) and by the partitioning runtime —
    one source, two binaries, as in the paper. *)

type harg = HInt of int | HFloat of float | HBuf of string

type host_array = { len : int; data : float array option }
(** Real data for functional runs, or a phantom of the right extent for
    performance runs at paper scale. *)

val host_data : float array -> host_array
val host_phantom : int -> host_array

val host_data_exn : host_array -> float array
(** Raises [Invalid_argument] on phantoms. *)

type stmt =
  | Malloc of string * int  (** buffer name, element count *)
  | Memcpy_h2d of { dst : string; src : host_array }
  | Memcpy_d2h of { dst : host_array; src : string }
  | Launch of { kernel : Kir.t; grid : Dim3.t; block : Dim3.t; args : harg list }
  | Repeat of int * stmt list
  | Swap of string * string  (** exchange two buffer bindings *)
  | Free of string
  | Sync

type t = { name : string; body : stmt list }

val program : name:string -> stmt list -> t

val scalar_args : harg list -> Keval.arg list
(** Scalar argument values in kernel-parameter order (arrays omitted). *)

val array_bindings : Kir.t -> harg list -> (string * string) list
(** Pair each array parameter with the buffer name bound to it. *)

val scalar_bindings : Kir.t -> harg list -> (string * int) list
(** Integer scalar bindings (name, value) for analysis and costing. *)

val validate : t -> unit
(** Static checks: buffers allocated before use, freed at most once,
    launch arguments matching kernel signatures.  Raises
    [Invalid_argument] on the first problem. *)

val kernels : t -> Kir.t list
(** All kernels launched by the program, deduplicated by name. *)
