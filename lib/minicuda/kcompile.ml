(* Launch-time compilation of kernel IR to OCaml closures.

   [Keval] interprets the tree per thread: boxed [value]s, per-thread
   [Hashtbl] locals, [List]-based subscript linearization.  That is
   the dominant cost of every functional run.  Here we partially
   evaluate a kernel against everything known at launch time — grid
   and block dimensions, scalar arguments, resolved array extents —
   and emit closures over a flat mutable environment:

   - locals live in slot-indexed [int array]/[float array]
     environments (booleans as 0/1 ints), assigned by a static typing
     pass over the body;
   - parameters and [gridDim]/[blockDim] are constants baked into the
     closures;
   - subscript linearization is unrolled per rank with the extents
     (hence strides) precomputed, keeping the interpreter's bounds
     checks and its exact diagnostics (shared via
     {!Keval.bounds_error});
   - expressions compile through separate int/float/bool compilers
     ([texp]), so the hot loop passes unboxed values between closures
     and allocates nothing.

   The IR is dynamically typed and the static pass is deliberately
   simple, so anything it cannot type (a local rebound at a different
   type, a use the analysis cannot prove bound, booleans in numeric
   position) falls back to the interpreter via [Error]: [Keval] stays
   the semantics oracle and the fallback is always bit-identical.

   Parallel execution: [run] can split the launched block range over a
   {!Gpu_runtime.Dpool}.  Each participating domain gets its own local
   environment; array loads/stores go straight to the shared backing
   arrays.  The *caller* is responsible for only passing a pool when
   the kernel's verdict proves distinct blocks never touch overlapping
   elements (see [Verify.verdict] / [Model.parallel_safe]); under that
   gate any block interleaving writes each element exactly once from
   one domain and reads only elements no other block writes, so the
   result is bit-identical to the sequential order.  [Atomic] compiles
   to a plain load-combine-store, which is NOT indivisible across
   domains — kernels whose conflicts are merely atomic-reducible must
   run their blocks sequentially within one address space (the engine
   gives each partition a private accumulation buffer instead). *)

type env = {
  mutable bx : int;
  mutable by : int;
  mutable bz : int;
  mutable tx : int;
  mutable ty : int;
  mutable tz : int;
  ienv : int array;
  fenv : float array;
  aload : (int -> float) array;
  astore : (int -> float -> unit) array;
}

type t = {
  kname : string;
  grid : Dim3.t;
  block : Dim3.t;
  arrays : string array;  (* array parameter names, slot-indexed *)
  n_ints : int;
  n_floats : int;
  body : env -> unit;
}

let name t = t.kname

(* Raised during compilation when the kernel leaves the statically
   typable fragment; surfaces as [Error reason] and the caller runs
   the interpreter instead. *)
exception Fallback of string

let fallback fmt = Printf.ksprintf (fun m -> raise (Fallback m)) fmt

type vtype = TInt | TFloat | TBool

let vtype_name = function TInt -> "int" | TFloat -> "float" | TBool -> "bool"

type texp =
  | EI of (env -> int)
  | EF of (env -> float)
  | EB of (env -> bool)

module S = Set.Make (String)

type sctx = {
  cgrid : Dim3.t;
  cblock : Dim3.t;
  scalars : (string, Keval.value) Hashtbl.t;
  slots : (string, vtype * int) Hashtbl.t;
  mutable nints : int;
  mutable nfloats : int;
  arr_slots : (string, int * int array) Hashtbl.t;  (* name -> slot, extents *)
}

let slot_for c name ty =
  match Hashtbl.find_opt c.slots name with
  | Some (ty', s) ->
    if ty' <> ty then
      fallback "local %s rebound at type %s (was %s)" name (vtype_name ty)
        (vtype_name ty');
    s
  | None ->
    let s =
      match ty with
      | TFloat ->
        let s = c.nfloats in
        c.nfloats <- s + 1;
        s
      | TInt | TBool ->
        let s = c.nints in
        c.nints <- s + 1;
        s
    in
    Hashtbl.add c.slots name (ty, s);
    s

(* Coercions mirror Keval.as_int/as_float/as_bool.  Boolean operands
   in numeric position raise in the interpreter, so they leave the
   compiled fragment. *)

let as_iexp = function
  | EI f -> f
  | EF f ->
    fun env ->
      let x = f env in
      let n = int_of_float x in
      if float_of_int n = x then n else invalid_arg "Keval: non-integer index"
  | EB _ -> fallback "boolean used as integer"

let as_fexp = function
  | EF f -> f
  | EI f -> fun env -> float_of_int (f env)
  | EB _ -> fallback "boolean used as float"

let as_bexp = function
  | EB f -> f
  | EI f -> fun env -> f env <> 0
  | EF _ -> fallback "float used as condition"

(* Type-specialized min/max, spelled exactly like the Stdlib
   polymorphic versions the interpreter uses so ties (e.g.
   [max 0.0 (-0.0)]) and NaNs resolve to the same bit patterns. *)
let imin (x : int) y = if x <= y then x else y
let imax (x : int) y = if x >= y then x else y
let fmin (x : float) y = if x <= y then x else y
let fmax (x : float) y = if x >= y then x else y

let rec compile_exp c bound (e : Kir.exp) : texp =
  match e with
  | Kir.Iconst n -> EI (fun _ -> n)
  | Kir.Fconst x -> EF (fun _ -> x)
  | Kir.Special s -> (
      match s with
      | Kir.Thread_idx Dim3.X -> EI (fun env -> env.tx)
      | Kir.Thread_idx Dim3.Y -> EI (fun env -> env.ty)
      | Kir.Thread_idx Dim3.Z -> EI (fun env -> env.tz)
      | Kir.Block_idx Dim3.X -> EI (fun env -> env.bx)
      | Kir.Block_idx Dim3.Y -> EI (fun env -> env.by)
      | Kir.Block_idx Dim3.Z -> EI (fun env -> env.bz)
      | Kir.Block_dim a ->
        let n = Dim3.get c.cblock a in
        EI (fun _ -> n)
      | Kir.Grid_dim a ->
        let n = Dim3.get c.cgrid a in
        EI (fun _ -> n))
  | Kir.Param n -> (
      match Hashtbl.find_opt c.scalars n with
      | Some (Keval.VInt v) -> EI (fun _ -> v)
      | Some (Keval.VFloat x) -> EF (fun _ -> x)
      | Some (Keval.VBool _) | None -> fallback "unbound parameter %s" n)
  | Kir.Var n -> (
      if not (S.mem n bound) then fallback "possibly-unbound local %s" n;
      match Hashtbl.find_opt c.slots n with
      | Some (TInt, s) -> EI (fun env -> Array.unsafe_get env.ienv s)
      | Some (TBool, s) -> EB (fun env -> Array.unsafe_get env.ienv s <> 0)
      | Some (TFloat, s) -> EF (fun env -> Array.unsafe_get env.fenv s)
      | None -> fallback "possibly-unbound local %s" n)
  | Kir.Load (a, idx) ->
    let s, off = compile_offset c bound a idx in
    EF (fun env -> (Array.unsafe_get env.aload s) (off env))
  | Kir.Unop (op, x) -> compile_unop c bound op x
  | Kir.Binop (op, x, y) -> compile_binop c bound op x y

(* Returns the array's slot and a closure computing the (bounds
   checked) linear offset.  Index expressions evaluate left to right,
   all before any bounds check, matching the interpreter. *)
and compile_offset c bound a idx : int * (env -> int) =
  let slot, dims =
    match Hashtbl.find_opt c.arr_slots a with
    | Some x -> x
    | None -> fallback "unknown array %s" a
  in
  let rank = Array.length dims in
  if List.length idx <> rank then begin
    (* Always fails at run time; keep the interpreter's lazy raise. *)
    let got = List.length idx in
    (slot, fun _ -> Keval.arity_error ~arr:a ~expected:rank ~got)
  end
  else begin
    let ixs =
      Array.of_list (List.map (fun e -> as_iexp (compile_exp c bound e)) idx)
    in
    let off =
      match dims with
      | [| d0 |] ->
        let i0 = ixs.(0) in
        fun env ->
          let v0 = i0 env in
          if v0 < 0 || v0 >= d0 then
            Keval.bounds_error ~arr:a ~dim:0 ~extent:d0 v0;
          v0
      | [| d0; d1 |] ->
        let i0 = ixs.(0) and i1 = ixs.(1) in
        fun env ->
          let v0 = i0 env in
          let v1 = i1 env in
          if v0 < 0 || v0 >= d0 then
            Keval.bounds_error ~arr:a ~dim:0 ~extent:d0 v0;
          if v1 < 0 || v1 >= d1 then
            Keval.bounds_error ~arr:a ~dim:1 ~extent:d1 v1;
          (v0 * d1) + v1
      | [| d0; d1; d2 |] ->
        let i0 = ixs.(0) and i1 = ixs.(1) and i2 = ixs.(2) in
        fun env ->
          let v0 = i0 env in
          let v1 = i1 env in
          let v2 = i2 env in
          if v0 < 0 || v0 >= d0 then
            Keval.bounds_error ~arr:a ~dim:0 ~extent:d0 v0;
          if v1 < 0 || v1 >= d1 then
            Keval.bounds_error ~arr:a ~dim:1 ~extent:d1 v1;
          if v2 < 0 || v2 >= d2 then
            Keval.bounds_error ~arr:a ~dim:2 ~extent:d2 v2;
          (((v0 * d1) + v1) * d2) + v2
      | _ ->
        fun env ->
          let vs = Array.make rank 0 in
          for i = 0 to rank - 1 do
            vs.(i) <- ixs.(i) env
          done;
          let acc = ref 0 in
          for i = 0 to rank - 1 do
            let v = vs.(i) in
            if v < 0 || v >= dims.(i) then
              Keval.bounds_error ~arr:a ~dim:i ~extent:dims.(i) v;
            acc := (!acc * dims.(i)) + v
          done;
          !acc
    in
    (slot, off)
  end

and compile_unop c bound op x =
  let tx = compile_exp c bound x in
  match (op, tx) with
  | Kir.Neg, EI f -> EI (fun env -> -f env)
  | Kir.Neg, EF f -> EF (fun env -> -.f env)
  | Kir.Neg, EB _ -> fallback "negating a boolean"
  | Kir.Sqrt, _ ->
    let f = as_fexp tx in
    EF (fun env -> sqrt (f env))
  | Kir.Rsqrt, _ ->
    let f = as_fexp tx in
    EF (fun env -> 1.0 /. sqrt (f env))
  | Kir.Abs, EI f -> EI (fun env -> abs (f env))
  | Kir.Abs, _ ->
    let f = as_fexp tx in
    EF (fun env -> Float.abs (f env))
  | Kir.Not, _ ->
    let f = as_bexp tx in
    EB (fun env -> not (f env))

and compile_binop c bound op x y =
  let a = compile_exp c bound x in
  let b = compile_exp c bound y in
  (* Arithmetic stays integer only when both operands are; otherwise
     both sides coerce to float, exactly as [Keval.eval_binop]. *)
  let arith fi ff =
    match (a, b) with
    | EI f, EI g -> EI (fun env -> fi (f env) (g env))
    | _ ->
      let f = as_fexp a and g = as_fexp b in
      EF (fun env -> ff (f env) (g env))
  in
  (* Comparisons always compare as floats in the interpreter. *)
  let cmp op =
    let f = as_fexp a and g = as_fexp b in
    EB (fun env -> op (f env) (g env))
  in
  match op with
  | Kir.Add -> arith ( + ) ( +. )
  | Kir.Sub -> arith ( - ) ( -. )
  | Kir.Mul -> arith ( * ) ( *. )
  | Kir.Div ->
    let f = as_fexp a and g = as_fexp b in
    EF (fun env -> f env /. g env)
  | Kir.Idiv ->
    let f = as_iexp a and g = as_iexp b in
    EI (fun env -> f env / g env)
  | Kir.Imod ->
    let f = as_iexp a and g = as_iexp b in
    EI (fun env -> f env mod g env)
  | Kir.Minb -> arith imin fmin
  | Kir.Maxb -> arith imax fmax
  | Kir.Lt -> cmp (fun (u : float) v -> u < v)
  | Kir.Le -> cmp (fun (u : float) v -> u <= v)
  | Kir.Gt -> cmp (fun (u : float) v -> u > v)
  | Kir.Ge -> cmp (fun (u : float) v -> u >= v)
  | Kir.Eq -> cmp (fun (u : float) v -> u = v)
  | Kir.Ne -> cmp (fun (u : float) v -> u <> v)
  | Kir.And ->
    (* No short circuit: the interpreter evaluates both operands. *)
    let f = as_bexp a and g = as_bexp b in
    EB
      (fun env ->
        let u = f env in
        let v = g env in
        u && v)
  | Kir.Or ->
    let f = as_bexp a and g = as_bexp b in
    EB
      (fun env ->
        let u = f env in
        let v = g env in
        u || v)

(* Statement compilation threads the set of locals provably bound at
   that program point (per thread, since every thread runs the whole
   body): a straight-line [Local]/[Assign] binds, an [If] binds the
   intersection of its branches, a [For] binds its counter only inside
   the body (the interpreter unbinds a previously-unbound counter on
   exit).  Slots persist across threads where the interpreter's
   hashtable is fresh, but a use never precedes a bind in the same
   thread, so stale slot values are unobservable. *)
let rec compile_stmt c bound (s : Kir.stmt) : (env -> unit) * S.t =
  match s with
  | Kir.Store (a, idx, e) ->
    let slot, off = compile_offset c bound a idx in
    let v = as_fexp (compile_exp c bound e) in
    ( (fun env ->
        let o = off env in
        let x = v env in
        (Array.unsafe_get env.astore slot) o x),
      bound )
  | Kir.Atomic (op, a, idx, e) ->
    let slot, off = compile_offset c bound a idx in
    let v = as_fexp (compile_exp c bound e) in
    let combine =
      match op with
      | Kir.AAdd -> ( +. )
      | Kir.AMin -> fmin
      | Kir.AMax -> fmax
    in
    ( (fun env ->
        let o = off env in
        let x = v env in
        let old = (Array.unsafe_get env.aload slot) o in
        (Array.unsafe_get env.astore slot) o (combine old x)),
      bound )
  | Kir.Local (n, e) | Kir.Assign (n, e) -> (
      let bound' = S.add n bound in
      match compile_exp c bound e with
      | EI f ->
        let s = slot_for c n TInt in
        ((fun env -> Array.unsafe_set env.ienv s (f env)), bound')
      | EF f ->
        let s = slot_for c n TFloat in
        ((fun env -> Array.unsafe_set env.fenv s (f env)), bound')
      | EB f ->
        let s = slot_for c n TBool in
        ((fun env -> Array.unsafe_set env.ienv s (if f env then 1 else 0)), bound'))
  | Kir.If (cexp, ts, es) ->
    let cnd = as_bexp (compile_exp c bound cexp) in
    let tf, bt = compile_seq c bound ts in
    let ef, be = compile_seq c bound es in
    ( (fun env -> if cnd env then tf env else ef env),
      S.union bound (S.inter bt be) )
  | Kir.For { var; from_; to_; body } ->
    let lo = as_iexp (compile_exp c bound from_) in
    let hi = as_iexp (compile_exp c bound to_) in
    let s = slot_for c var TInt in
    let bf, _ = compile_seq c (S.add var bound) body in
    ( (fun env ->
        let l = lo env in
        let h = hi env in
        let saved = Array.unsafe_get env.ienv s in
        for iv = l to h - 1 do
          Array.unsafe_set env.ienv s iv;
          bf env
        done;
        Array.unsafe_set env.ienv s saved),
      bound )
  | Kir.Syncthreads -> ((fun _ -> ()), bound)

and compile_seq c bound = function
  | [] -> ((fun _ -> ()), bound)
  | [ s ] -> compile_stmt c bound s
  | s :: rest ->
    let f, b1 = compile_stmt c bound s in
    let g, b2 = compile_seq c b1 rest in
    ((fun env -> f env; g env), b2)

let compile kernel ~grid ~block ~args =
  Obs.Span.with_span ~cat:"kcompile" kernel.Kir.name @@ fun () ->
  (* Argument binding and extent resolution share the interpreter's
     code, so a bad launch raises here exactly what [Keval.run] would
     raise (both happen before any thread executes). *)
  let scalars = Keval.bind_scalars kernel ~args in
  let dims = Keval.resolve_dims kernel ~scalars in
  let arr_slots = Hashtbl.create 8 in
  List.iteri (fun i (name, d) -> Hashtbl.add arr_slots name (i, d)) dims;
  let c =
    {
      cgrid = grid;
      cblock = block;
      scalars;
      slots = Hashtbl.create 16;
      nints = 0;
      nfloats = 0;
      arr_slots;
    }
  in
  match compile_seq c S.empty kernel.Kir.body with
  | body, _ ->
    Ok
      {
        kname = kernel.Kir.name;
        grid;
        block;
        arrays = Array.of_list (List.map fst dims);
        n_ints = c.nints;
        n_floats = c.nfloats;
        body;
      }
  | exception Fallback reason -> Error reason

(* --- Execution --------------------------------------------------------- *)

let make_env t ~load ~store =
  let n = Array.length t.arrays in
  {
    bx = 0;
    by = 0;
    bz = 0;
    tx = 0;
    ty = 0;
    tz = 0;
    ienv = Array.make (max 1 t.n_ints) 0;
    fenv = Array.make (max 1 t.n_floats) 0.0;
    aload = Array.init n (fun i -> load t.arrays.(i));
    astore = Array.init n (fun i -> store t.arrays.(i));
  }

(* Fresh local slots, shared array accessors: what each extra domain
   needs. *)
let clone_env t env =
  {
    env with
    ienv = Array.make (max 1 t.n_ints) 0;
    fenv = Array.make (max 1 t.n_floats) 0.0;
  }

let exec_block t env bz by bx =
  env.bz <- bz;
  env.by <- by;
  env.bx <- bx;
  let b = t.block in
  for tz = 0 to b.Dim3.z - 1 do
    env.tz <- tz;
    for ty = 0 to b.Dim3.y - 1 do
      env.ty <- ty;
      for tx = 0 to b.Dim3.x - 1 do
        env.tx <- tx;
        t.body env
      done
    done
  done

let run_range t env (lo : Dim3.t) (hi : Dim3.t) =
  for z = lo.Dim3.z to hi.Dim3.z do
    for y = lo.Dim3.y to hi.Dim3.y do
      for x = lo.Dim3.x to hi.Dim3.x do
        exec_block t env z y x
      done
    done
  done

let run ?pool ?max_domains ?block_range t ~load ~store =
  let lo, hi =
    match block_range with
    | Some r -> r
    | None ->
      ( { Dim3.x = 0; y = 0; z = 0 },
        {
          Dim3.x = t.grid.Dim3.x - 1;
          y = t.grid.Dim3.y - 1;
          z = t.grid.Dim3.z - 1;
        } )
  in
  let ex = hi.Dim3.x - lo.Dim3.x + 1 in
  let ey = hi.Dim3.y - lo.Dim3.y + 1 in
  let ez = hi.Dim3.z - lo.Dim3.z + 1 in
  if ex <= 0 || ey <= 0 || ez <= 0 then `Seq
  else
    let nblocks = ex * ey * ez in
    let cap = match max_domains with Some d -> d | None -> max_int in
    match pool with
    | Some pool when nblocks > 1 && cap > 1 && Gpu_runtime.Dpool.size pool > 1 ->
      let base = make_env t ~load ~store in
      let plane = ey * ex in
      let used =
        Gpu_runtime.Dpool.parallel_for ~max_domains:cap pool ~n:nblocks
          (fun clo chi ->
            (* Chunks are linearized in the same z, y, x-major order
               the sequential loops use; each chunk gets fresh local
               slots. *)
            let env = clone_env t base in
            for i = clo to chi - 1 do
              let z = lo.Dim3.z + (i / plane) in
              let r = i mod plane in
              let y = lo.Dim3.y + (r / ex) in
              let x = lo.Dim3.x + (r mod ex) in
              exec_block t env z y x
            done)
      in
      if used <= 1 then `Seq else `Par used
    | _ ->
      run_range t (make_env t ~load ~store) lo hi;
      `Seq

(* --- Executor counters ------------------------------------------------- *)

type stats = {
  mutable st_compiles : int;
  mutable st_cache_hits : int;
  mutable st_interpreted : int;
  mutable st_seq : int;
  mutable st_par : int;
  mutable st_domains : int;
}

let new_stats () =
  {
    st_compiles = 0;
    st_cache_hits = 0;
    st_interpreted = 0;
    st_seq = 0;
    st_par = 0;
    st_domains = 1;
  }

let record_path st = function
  | `Seq -> st.st_seq <- st.st_seq + 1
  | `Par d ->
    st.st_par <- st.st_par + 1;
    if d > st.st_domains then st.st_domains <- d

let add_stats ~into s =
  into.st_compiles <- into.st_compiles + s.st_compiles;
  into.st_cache_hits <- into.st_cache_hits + s.st_cache_hits;
  into.st_interpreted <- into.st_interpreted + s.st_interpreted;
  into.st_seq <- into.st_seq + s.st_seq;
  into.st_par <- into.st_par + s.st_par;
  if s.st_domains > into.st_domains then into.st_domains <- s.st_domains

let publish_metrics ?(into = Obs.Metrics.default) s =
  let set n v = Obs.Metrics.set into n (float_of_int v) in
  set "exec.compiles" s.st_compiles;
  set "exec.cache_hits" s.st_cache_hits;
  set "exec.interpreted" s.st_interpreted;
  set "exec.seq_launches" s.st_seq;
  set "exec.par_launches" s.st_par;
  set "exec.max_domains" s.st_domains

let pp_stats fmt s =
  Format.fprintf fmt
    "executor: %d compiled (%d cache hits), %d launches sequential, %d \
     parallel (max %d domains), %d interpreted"
    s.st_compiles s.st_cache_hits s.st_seq s.st_par s.st_domains
    s.st_interpreted
