(** Kernel IR optimization passes: constant folding, exact algebraic
    simplification (no float reassociation, no [x *. 0.0] folding),
    dead-branch pruning and dead-local elimination, iterated to a
    fixpoint. *)

val fold_exp : Kir.exp -> Kir.exp
(** Bottom-up constant folding and algebraic simplification. *)

val fold_stmt : Kir.stmt -> Kir.stmt list
(** Fold one statement; statically-dead branches and empty loops
    disappear. *)

val eliminate_dead : Kir.stmt list -> Kir.stmt list
(** Remove [Local]/[Assign] bindings never used anywhere in the body. *)

val optimize_body : Kir.stmt list -> Kir.stmt list
(** Folding + dead-code elimination to a fixpoint. *)

val optimize : Kir.t -> Kir.t

val size : Kir.t -> int
(** Statement count (code metric). *)
