(* Static cost estimation of kernels from their IR.

   The simulator charges kernels by "simple operations"; this module
   counts them per thread.  Memory accesses are weighted heavier than
   ALU operations (the proxy apps are memory-bound on real hardware).
   Loop trip counts are evaluated from the launch's scalar arguments;
   data-dependent control flow falls back to counting both branches'
   maximum. *)

let memory_op_weight = 4.0
let alu_op_weight = 1.0

(* Best-effort integer evaluation of an expression under the scalar
   environment; [None] for anything depending on runtime values. *)
let rec try_eval_int env (e : Kir.exp) : int option =
  match e with
  | Kir.Iconst n -> Some n
  | Kir.Fconst f ->
    let n = int_of_float f in
    if float_of_int n = f then Some n else None
  | Kir.Param n -> List.assoc_opt n env
  | Kir.Var _ | Kir.Special _ | Kir.Load _ -> None
  | Kir.Unop (Kir.Neg, x) -> Option.map (fun v -> -v) (try_eval_int env x)
  | Kir.Unop (_, _) -> None
  | Kir.Binop (op, a, b) -> (
      match (try_eval_int env a, try_eval_int env b) with
      | Some x, Some y -> (
          match op with
          | Kir.Add -> Some (x + y)
          | Kir.Sub -> Some (x - y)
          | Kir.Mul -> Some (x * y)
          | Kir.Idiv -> if y <> 0 then Some (x / y) else None
          | Kir.Imod -> if y <> 0 then Some (x mod y) else None
          | Kir.Minb -> Some (min x y)
          | Kir.Maxb -> Some (max x y)
          | _ -> None)
      | _ -> None)

let rec exp_ops (e : Kir.exp) : float =
  match e with
  | Kir.Iconst _ | Kir.Fconst _ | Kir.Special _ | Kir.Param _ | Kir.Var _ -> 0.0
  | Kir.Load (_, idx) ->
    memory_op_weight +. List.fold_left (fun a i -> a +. exp_ops i) 0.0 idx
  | Kir.Unop (_, x) -> alu_op_weight +. exp_ops x
  | Kir.Binop (_, x, y) -> alu_op_weight +. exp_ops x +. exp_ops y

let rec stmt_ops env (s : Kir.stmt) : float =
  match s with
  | Kir.Store (_, idx, e) ->
    memory_op_weight
    +. List.fold_left (fun a i -> a +. exp_ops i) 0.0 idx
    +. exp_ops e
  | Kir.Atomic (_, _, idx, e) ->
    (* read-modify-write: charge both memory ops plus the combine *)
    (2.0 *. memory_op_weight) +. alu_op_weight
    +. List.fold_left (fun a i -> a +. exp_ops i) 0.0 idx
    +. exp_ops e
  | Kir.Local (_, e) | Kir.Assign (_, e) -> alu_op_weight +. exp_ops e
  | Kir.If (c, t, e) ->
    exp_ops c +. Float.max (stmts_ops env t) (stmts_ops env e)
  | Kir.For { from_; to_; body; _ } ->
    let trip =
      match (try_eval_int env from_, try_eval_int env to_) with
      | Some lo, Some hi -> float_of_int (max 0 (hi - lo))
      | _ -> 1.0 (* unknown trip count: charge one iteration *)
    in
    (alu_op_weight +. exp_ops from_ +. exp_ops to_) +. (trip *. stmts_ops env body)
  | Kir.Syncthreads -> 0.0

and stmts_ops env l = List.fold_left (fun a s -> a +. stmt_ops env s) 0.0 l

(* Estimated operations per thread for one launch, given the scalar
   argument bindings. *)
let ops_per_thread kernel ~scalar_env =
  stmts_ops scalar_env kernel.Kir.body

let ops_per_block kernel ~scalar_env ~block =
  ops_per_thread kernel ~scalar_env *. float_of_int (Dim3.volume block)
