(** Direct interpreter for the kernel IR: executes every thread of a
    grid (or a sub-range of its blocks) sequentially.  Used for the
    bit-exact functional runs that validate the partitioning
    compiler. *)

type value = VInt of int | VFloat of float | VBool of bool

val as_int : value -> int
val as_float : value -> float
val as_bool : value -> bool

type arg = AInt of int | AFloat of float
(** Launch-time values for the scalar kernel parameters, in parameter
    order (array parameters are bound through [load]/[store]). *)

val run :
  ?block_range:Dim3.t * Dim3.t ->
  Kir.t ->
  grid:Dim3.t ->
  block:Dim3.t ->
  args:arg list ->
  load:(string -> int -> float) ->
  store:(string -> int -> float -> unit) ->
  unit
(** Run a kernel over its grid.  [load]/[store] receive the array
    parameter name and a linear element offset (row-major).
    [block_range] restricts execution to the inclusive block-coordinate
    range. *)
