(** Direct interpreter for the kernel IR: executes every thread of a
    grid (or a sub-range of its blocks) sequentially.  Used for the
    bit-exact functional runs that validate the partitioning
    compiler. *)

type value = VInt of int | VFloat of float | VBool of bool

val as_int : value -> int
val as_float : value -> float
val as_bool : value -> bool

type arg = AInt of int | AFloat of float
(** Launch-time values for the scalar kernel parameters, in parameter
    order (array parameters are bound through [load]/[store]). *)

(** {2 Pieces shared with the compiled executor ({!Kcompile})}

    Both engines resolve launch arguments and report access errors
    through the same code, so diagnostics and binding semantics cannot
    drift apart. *)

val bind_scalars : Kir.t -> args:arg list -> (string, value) Hashtbl.t
(** Bind the scalar parameters to the launch arguments, with the
    interpreter's dynamic-typing rules (an integer [Scalar] bound to
    [AFloat] stays a float; [Fscalar] coerces integer arguments).
    Raises [Invalid_argument] on an argument-count mismatch. *)

val resolve_dims :
  Kir.t -> scalars:(string, value) Hashtbl.t -> (string * int array) list
(** Resolve every array parameter's dimensions ([Dim_param] via the
    bound scalars) to concrete extents. *)

val arity_error : arr:string -> expected:int -> got:int -> 'a
(** Raise the subscript-arity diagnostic, naming the offending
    array. *)

val bounds_error : arr:string -> dim:int -> extent:int -> int -> 'a
(** Raise the out-of-bounds diagnostic, naming the offending array. *)

type trace_event = {
  te_kind : [ `Load | `Store | `Atomic of Kir.atomic_op ];
  te_arr : string;
  te_off : int;  (** linear element offset *)
  te_block : Dim3.t;
  te_thread : Dim3.t;
}
(** One global-memory access, as seen by the [trace] hook of {!run}.
    The data-race sanitizer and the witness validator replay kernels
    through the interpreter and watch this stream. *)

val run :
  ?block_range:Dim3.t * Dim3.t ->
  ?trace:(trace_event -> unit) ->
  Kir.t ->
  grid:Dim3.t ->
  block:Dim3.t ->
  args:arg list ->
  load:(string -> int -> float) ->
  store:(string -> int -> float -> unit) ->
  unit
(** Run a kernel over its grid.  [load]/[store] receive the array
    parameter name and a linear element offset (row-major).
    [block_range] restricts execution to the inclusive block-coordinate
    range.  [trace] observes every global-memory access, before the
    access's own [load]/[store] callbacks fire. *)
