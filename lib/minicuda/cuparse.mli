(** Parser for the toy CUDA surface syntax emitted by {!Cusrc.render},
    so the toolchain can be driven from .cu text files.  Array
    parameters carry their extents in a trailing comment
    ([float *a] followed by [[n][n]] in a block comment); host data
    referenced by memcpys becomes phantom arrays (text carries no
    element values). *)

exception Error of string

val parse_cu : name:string -> string -> Kir.t list * Host_ir.t
(** Parse a full translation unit: kernels, then [main()].  Raises
    {!Error} with a description on malformed input. *)
