(** Rendering host programs and kernels as a toy CUDA surface syntax —
    the text the regex-based source-to-source rewriter (paper §5)
    operates on. *)

val render_harg : Host_ir.harg -> string
val render_dim3 : Dim3.t -> string

val render : Host_ir.t -> string
(** The full toy .cu translation unit: kernels, then [main()] with the
    host program. *)
