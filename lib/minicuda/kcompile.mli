(** Launch-time compilation of kernel IR to OCaml closures.

    A kernel plus everything resolved at launch (grid, block, scalar
    arguments, array extents) partially evaluates into closures over
    flat slot-indexed int/float environments: no boxed values, no
    hashtable locals, unrolled subscript linearization with
    precomputed extents.  {!Keval} remains the semantics oracle —
    compiled execution is bit-identical, and kernels outside the
    statically-typable fragment return [Error] so callers fall back
    to the interpreter (see DESIGN.md §13). *)

type t
(** A kernel specialized to one (grid, block, args) launch shape. *)

val compile :
  Kir.t ->
  grid:Dim3.t ->
  block:Dim3.t ->
  args:Keval.arg list ->
  (t, string) result
(** Specialize a kernel.  [Error reason] means the kernel left the
    compilable fragment and must run under {!Keval.run}.  Raises
    [Invalid_argument] exactly when [Keval.run] would raise before
    executing any thread (argument-count mismatch, unbound dimension
    parameter). *)

val name : t -> string

val run :
  ?pool:Gpu_runtime.Dpool.t ->
  ?max_domains:int ->
  ?block_range:Dim3.t * Dim3.t ->
  t ->
  load:(string -> int -> float) ->
  store:(string -> int -> float -> unit) ->
  [ `Seq | `Par of int ]
(** Execute over the full grid or the inclusive [block_range], with
    {!Keval.run}'s access-callback contract — except that [load a] /
    [store a] are applied once per array per participating domain, so
    callers can resolve the array name to its backing buffer once
    instead of per access.

    With [pool], the block range is split across domains ([`Par d]
    reports how many were engaged; degenerate ranges still run
    sequentially as [`Seq]).  Only pass a pool for kernels whose write
    maps prove distinct blocks disjoint (see [Model.parallel_safe]):
    under that gate results are bit-identical to sequential order.
    The callbacks must then be safe to call from several domains. *)

(** {2 Executor counters} *)

type stats = {
  mutable st_compiles : int;  (** kernels compiled (cache misses) *)
  mutable st_cache_hits : int;  (** compiled kernels reused *)
  mutable st_interpreted : int;  (** launches run by the Keval fallback *)
  mutable st_seq : int;  (** compiled sequential launches *)
  mutable st_par : int;  (** compiled parallel launches *)
  mutable st_domains : int;  (** max domains engaged by any launch *)
}

val new_stats : unit -> stats
val record_path : stats -> [ `Seq | `Par of int ] -> unit
val add_stats : into:stats -> stats -> unit
val pp_stats : Format.formatter -> stats -> unit

val publish_metrics : ?into:Obs.Metrics.t -> stats -> unit
(** Snapshot the counters into a metrics registry under stable
    ["exec.*"] names (default: {!Obs.Metrics.default}). *)
