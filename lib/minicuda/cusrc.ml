(* Rendering host programs and kernels as a toy CUDA surface syntax.

   The paper's source-to-source rewriter (a lua preprocessor) operates
   on CUDA C++ text with regular expressions.  To demonstrate the same
   mechanism, this module prints a host program as a small .cu file
   that lib/mekong's textual rewriter then transforms. *)

let render_harg = function
  | Host_ir.HInt n -> string_of_int n
  | Host_ir.HFloat f -> Printf.sprintf "%gf" f
  | Host_ir.HBuf b -> b

let render_dim3 (d : Dim3.t) =
  if d.Dim3.y = 1 && d.Dim3.z = 1 then string_of_int d.Dim3.x
  else Printf.sprintf "dim3(%d, %d, %d)" d.Dim3.x d.Dim3.y d.Dim3.z

let render_stmt buf ~indent (s : Host_ir.stmt) =
  let pad = String.make indent ' ' in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let rec go ~pad s =
    match s with
    | Host_ir.Malloc (name, len) ->
      add "%sfloat *%s;\n" pad name;
      add "%scudaMalloc(&%s, %d * sizeof(float));\n" pad name len
    | Host_ir.Memcpy_h2d { dst; src } ->
      add "%scudaMemcpy(%s, host_%s, %d * sizeof(float), cudaMemcpyHostToDevice);\n"
        pad dst dst src.Host_ir.len
    | Host_ir.Memcpy_d2h { dst; src } ->
      add "%scudaMemcpy(host_out_%s, %s, %d * sizeof(float), cudaMemcpyDeviceToHost);\n"
        pad src src dst.Host_ir.len
    | Host_ir.Launch { kernel; grid; block; args } ->
      add "%s%s<<<%s, %s>>>(%s);\n" pad kernel.Kir.name (render_dim3 grid)
        (render_dim3 block)
        (String.concat ", " (List.map render_harg args))
    | Host_ir.Repeat (n, body) ->
      add "%sfor (int it = 0; it < %d; it++) {\n" pad n;
      List.iter (go ~pad:(pad ^ "  ")) body;
      add "%s}\n" pad
    | Host_ir.Swap (a, b) -> add "%sstd::swap(%s, %s);\n" pad a b
    | Host_ir.Free name -> add "%scudaFree(%s);\n" pad name
    | Host_ir.Sync -> add "%scudaDeviceSynchronize();\n" pad
  in
  go ~pad s

(* The full toy .cu translation unit: kernels then a main() with the
   host program. *)
let render (prog : Host_ir.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#include <cuda_runtime.h>\n#include <utility>\n\n";
  List.iter
    (fun k -> Buffer.add_string buf (Kir.to_string k ^ "\n"))
    (Host_ir.kernels prog);
  Buffer.add_string buf "int main() {\n";
  List.iter (render_stmt buf ~indent:2) prog.Host_ir.body;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf
